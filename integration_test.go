package cloudburst_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMultiProcessDeployment builds the real command binaries and runs
// a complete cloud-bursting job as eight separate OS processes: two
// cbstore servers, one cbhead, two cbmaster (one per site), and two
// cbslave, over loopback TCP — the deployment shape the paper ran
// across OSU and EC2.
func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	data := t.TempDir()
	localDir := filepath.Join(data, "local")
	cloudDir := filepath.Join(data, "cloud")
	index := filepath.Join(data, "index.cbix")

	// Generate a split data set.
	gen := exec.Command(filepath.Join(bin, "cbgen"),
		"-app", "wordcount", "-records", "60000", "-files", "8", "-local-files", "3",
		"-local-dir", localDir, "-cloud-dir", cloudDir, "-index", index, "-jobs", "48")
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("cbgen: %v\n%s", err, out)
	}

	port := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	storeL, storeC := port(), port()
	headAddr := port()
	masterL, masterC := port(), port()

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout = &logWriter{t: t, name: name}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		return cmd
	}

	sl := start("cbstore", "-dir", localDir, "-listen", storeL)
	sc := start("cbstore", "-dir", cloudDir, "-listen", storeC)
	defer sl.Process.Kill()
	defer sc.Process.Kill()
	time.Sleep(200 * time.Millisecond)

	head := exec.Command(filepath.Join(bin, "cbhead"),
		"-index", index, "-app", "wordcount", "-clusters", "2", "-listen", headAddr, "-q")
	headOut := &strings.Builder{}
	head.Stdout = headOut
	head.Stderr = headOut
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	ml := start("cbmaster", "-site", "local", "-head", headAddr, "-listen", masterL,
		"-app", "wordcount", "-slaves", "2", "-q")
	mc := start("cbmaster", "-site", "cloud", "-head", headAddr, "-listen", masterC,
		"-app", "wordcount", "-slaves", "2", "-q")
	time.Sleep(200 * time.Millisecond)

	wl := start("cbslave", "-site", "local", "-master", masterL, "-cores", "2",
		"-app", "wordcount", "-data-dir", localDir, "-remote", "cloud="+storeC)
	wc := start("cbslave", "-site", "cloud", "-master", masterC, "-cores", "2",
		"-app", "wordcount", "-data-dir", cloudDir, "-remote", "local="+storeL)

	done := make(chan error, 1)
	go func() { done <- head.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cbhead failed: %v\n%s", err, headOut.String())
		}
	case <-time.After(60 * time.Second):
		head.Process.Kill()
		t.Fatalf("deployment timed out\nhead output:\n%s", headOut.String())
	}
	for _, cmd := range []*exec.Cmd{ml, mc, wl, wc} {
		cmd.Wait()
	}

	out := headOut.String()
	if !strings.Contains(out, "wordcount: 60000 words") {
		t.Fatalf("head did not report the full result:\n%s", out)
	}
	if !strings.Contains(out, "cluster local") || !strings.Contains(out, "cluster cloud") {
		t.Fatalf("head missing cluster reports:\n%s", out)
	}
}

// logWriter forwards subprocess output to the test log.
type logWriter struct {
	t    *testing.T
	name string
}

func (w *logWriter) Write(p []byte) (int, error) {
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		w.t.Logf("[%s] %s", w.name, line)
	}
	return len(p), nil
}
