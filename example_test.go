package cloudburst_test

import (
	"fmt"
	"log"

	"cloudburst"
)

// ExampleDeploy runs a complete cloud-bursting word count over two
// sites with the data split evenly between them.
func ExampleDeploy() {
	app, err := cloudburst.NewApp("wordcount", map[string]string{"width": "12"})
	if err != nil {
		log.Fatal(err)
	}
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	files, err := cloudburst.Materialize(
		cloudburst.WordsGen{Width: 12, Vocab: 100, Seed: 9},
		cloudburst.DataSpec{Records: 10_000, Files: 4, LocalFiles: 2},
		stores,
	)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files, cloudburst.BuildOptions{RecordSize: 12, ChunkBytes: 4 << 10},
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cloudburst.Deploy(cloudburst.DeployConfig{
		App: app, Index: idx,
		Sites: []cloudburst.SiteSpec{
			{Name: "local", Cores: 2, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]}},
			{Name: "cloud", Cores: 2, HomeStore: stores["cloud"],
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	counts := res.Final.(cloudburst.Counter).Counts()
	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Println("words counted:", total)
	fmt.Println("distinct words:", len(counts))
	// Output:
	// words counted: 10000
	// distinct words: 98
}

// ExampleNewEngine shows the generalized-reduction engine on its own:
// local reduction over raw records without any cluster machinery.
func ExampleNewEngine() {
	app, err := cloudburst.NewApp("knn", map[string]string{"k": "3", "dims": "2"})
	if err != nil {
		log.Fatal(err)
	}
	gen := cloudburst.PointsGen{Dims: 2, Seed: 11, WithID: true}
	data := make([]byte, 1000*app.RecordSize())
	for i := int64(0); i < 1000; i++ {
		gen.Gen(i, data[int(i)*app.RecordSize():int(i+1)*app.RecordSize()])
	}

	engine := cloudburst.NewEngine(app, cloudburst.EngineOptions{})
	red := app.NewReduction()
	units, err := engine.ProcessChunk(red, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("units reduced:", units)
	fmt.Println("neighbors kept:", len(red.(cloudburst.Neighborer).Neighbors()))
	// Output:
	// units reduced: 1000
	// neighbors kept: 3
}

// ExampleKMeansDriver converges Lloyd's algorithm over repeated
// deployments.
func ExampleKMeansDriver() {
	app, err := cloudburst.NewApp("kmeans", map[string]string{"k": "2", "dims": "1"})
	if err != nil {
		log.Fatal(err)
	}
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	files, err := cloudburst.Materialize(
		cloudburst.PointsGen{Dims: 1, Seed: 2},
		cloudburst.DataSpec{Records: 4000, Files: 2, LocalFiles: 1},
		stores,
	)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files, cloudburst.BuildOptions{RecordSize: 4, ChunkBytes: 1 << 10},
	)
	if err != nil {
		log.Fatal(err)
	}
	it, err := cloudburst.KMeansDriver(cloudburst.DeployConfig{
		App: app, Index: idx,
		Sites: []cloudburst.SiteSpec{
			{Name: "local", Cores: 1, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]}},
			{Name: "cloud", Cores: 1, HomeStore: stores["cloud"],
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]}},
		},
	}, 1e-10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := it.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	// Output:
	// converged: true
}
