package cloudburst_test

import (
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"time"

	"cloudburst"
)

// twoSiteFixture builds the documented quickstart flow: a word-count
// data set split across two memory stores with its index.
func twoSiteFixture(t *testing.T, records int64, localFiles int) (cloudburst.App, *cloudburst.Index, map[string]*cloudburst.MemStore) {
	t.Helper()
	app, err := cloudburst.NewApp("wordcount", map[string]string{"width": "12"})
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	files, err := cloudburst.Materialize(
		cloudburst.WordsGen{Width: 12, Vocab: 200, Seed: 1},
		cloudburst.DataSpec{Records: records, Files: 8, LocalFiles: localFiles},
		stores,
	)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files,
		cloudburst.BuildOptions{RecordSize: 12, ChunkBytes: 8 << 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	return app, idx, stores
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	app, idx, stores := twoSiteFixture(t, 50_000, 4)
	res, err := cloudburst.Deploy(cloudburst.DeployConfig{
		App: app, Index: idx,
		Sites: []cloudburst.SiteSpec{
			{Name: "local", Cores: 2, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]}},
			{Name: "cloud", Cores: 2, HomeStore: stores["cloud"],
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Final.(cloudburst.Counter).Counts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 50_000 {
		t.Fatalf("total words = %d", total)
	}
	if !strings.Contains(res.Report.FinalResult, "50000 words") {
		t.Fatalf("digest = %q", res.Report.FinalResult)
	}
}

func TestPublicAPICustomApp(t *testing.T) {
	// A downstream user can register an application and run it through
	// the whole stack without touching internal packages.
	cloudburst.RegisterApp("test-bytesum", func(params map[string]string) (cloudburst.App, error) {
		return byteSumApp{}, nil
	})
	found := false
	for _, name := range cloudburst.Apps() {
		if name == "test-bytesum" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered app not listed")
	}

	app, err := cloudburst.NewApp("test-bytesum", nil)
	if err != nil {
		t.Fatal(err)
	}
	engine := cloudburst.NewEngine(app, cloudburst.EngineOptions{})
	red := app.NewReduction()
	if _, err := engine.ProcessChunk(red, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	merged, err := cloudburst.MergeAll(app, []cloudburst.Reduction{red})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.(*byteSum).total; got != 10 {
		t.Fatalf("sum = %d", got)
	}
}

func TestPublicAPIBuiltinsPresent(t *testing.T) {
	names := cloudburst.Apps()
	for _, want := range []string{"knn", "kmeans", "pagerank", "wordcount"} {
		ok := false
		for _, n := range names {
			if n == want {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("built-in %q missing from %v", want, names)
		}
	}
}

func TestPublicAPIShapedDeploy(t *testing.T) {
	app, idx, stores := twoSiteFixture(t, 20_000, 2)
	wan := cloudburst.Link{Name: "wan", Latency: 10 * time.Millisecond, PerStream: 4 << 20}
	res, err := cloudburst.Deploy(cloudburst.DeployConfig{
		App: app, Index: idx,
		Clock: cloudburst.ScaledClock(0.01),
		Sites: []cloudburst.SiteSpec{
			{Name: "local", Cores: 2, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]},
				HeadLink:     wan},
			{Name: "cloud", Cores: 2, HomeStore: stores["cloud"],
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]},
				HeadLink:     wan},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.TotalWall <= 0 {
		t.Fatal("paced run reported no emulated time")
	}
}

func TestPublicAPIFaultInjectionRecovers(t *testing.T) {
	// The documented fault-injection flow: a faulty simulated object
	// store, retrieval retries, heartbeats — and an exact result.
	app, idx, stores := twoSiteFixture(t, 20_000, 4)
	plan := cloudburst.NewFaultPlan(42,
		cloudburst.FaultSpec{Kind: cloudburst.FaultTransient, FirstN: 2, Prob: 0.02},
		cloudburst.FaultSpec{Kind: cloudburst.FaultSlowDown, Prob: 0.02},
	)
	s3 := cloudburst.NewSimS3(stores["cloud"], nil, 0, 0, nil).WithFaults(plan, "cloud")
	retry := cloudburst.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Microsecond}
	res, err := cloudburst.Deploy(cloudburst.DeployConfig{
		App: app, Index: idx,
		Sites: []cloudburst.SiteSpec{
			{Name: "local", Cores: 2, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": s3}},
			{Name: "cloud", Cores: 2, HomeStore: s3, HomeFetch: true,
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]}},
		},
		Fetch:             cloudburst.FetchOptions{Threads: 4, RangeSize: 2 << 10, Retry: retry},
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Report.FinalResult, "20000 words") {
		t.Fatalf("digest = %q", res.Report.FinalResult)
	}
	if plan.Total() == 0 {
		t.Fatal("plan injected nothing")
	}
	if res.Report.Faults.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", res.Report.Faults)
	}
}

// byteSum is the minimal custom application for the public-API test.
type byteSumApp struct{}

func (byteSumApp) Name() string                       { return "test-bytesum" }
func (byteSumApp) RecordSize() int                    { return 1 }
func (byteSumApp) UnitCost() time.Duration            { return 0 }
func (byteSumApp) NewReduction() cloudburst.Reduction { return &byteSum{} }

type byteSum struct{ total int64 }

func (b *byteSum) Update(unit []byte) error { b.total += int64(unit[0]); return nil }
func (b *byteSum) Merge(other cloudburst.Reduction) error {
	b.total += other.(*byteSum).total
	return nil
}
func (b *byteSum) Encode(w io.Writer) error { return binary.Write(w, binary.LittleEndian, b.total) }
func (b *byteSum) Decode(r io.Reader) error { return binary.Read(r, binary.LittleEndian, &b.total) }
func (b *byteSum) Bytes() int               { return 8 }
