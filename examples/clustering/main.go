// clustering: iterative k-means over a hybrid deployment. Each Lloyd
// iteration is one complete cloud-bursting job; between iterations the
// new centroids (the globally reduced result) are installed into the
// application, exactly how the paper's applications run multi-pass
// algorithms on top of single-pass generalized reductions.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"cloudburst"
)

func main() {
	app, err := cloudburst.NewApp("kmeans", map[string]string{
		"k": "8", "dims": "2", "cseed": "99",
	})
	if err != nil {
		log.Fatal(err)
	}
	km := app.(*cloudburst.KMeans)

	gen := cloudburst.PointsGen{Dims: 2, Seed: 5}
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	files, err := cloudburst.Materialize(gen, cloudburst.DataSpec{
		Records: 120_000, Files: 6, LocalFiles: 3,
	}, stores)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files,
		cloudburst.BuildOptions{RecordSize: int32(app.RecordSize()), ChunkBytes: 16 << 10},
	)
	if err != nil {
		log.Fatal(err)
	}

	deploy := cloudburst.DeployConfig{
		App:   app,
		Index: idx,
		Sites: []cloudburst.SiteSpec{
			{Name: "local", Cores: 3, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]}},
			{Name: "cloud", Cores: 3, HomeStore: stores["cloud"],
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]}},
		},
	}

	// Iterate until centroids stop moving.
	const tolerance = 1e-7
	for iter := 1; iter <= 25; iter++ {
		res, err := cloudburst.Deploy(deploy)
		if err != nil {
			log.Fatal(err)
		}
		move, err := km.Iterate(res.Final)
		if err != nil {
			log.Fatal(err)
		}
		counts := res.Final.(cloudburst.Meaner).Counts()
		nonEmpty := 0
		for _, c := range counts {
			if c > 0 {
				nonEmpty++
			}
		}
		fmt.Printf("iteration %2d: max centroid movement %.2e, %d/%d clusters populated\n",
			iter, move, nonEmpty, km.K)
		if move < tolerance {
			fmt.Println("converged")
			break
		}
	}

	fmt.Println("final centroids:")
	for i, c := range km.Centroids() {
		fmt.Printf("  cluster %d: (%.4f, %.4f)\n", i, c[0], c[1])
	}
}
