// pagerank: multi-iteration PageRank over a web graph whose edge list
// is split between the local cluster and the cloud. Each power
// iteration is one cloud-bursting job; the globally reduced rank
// vector feeds the next iteration through SetRanks — the exchange of
// that large reduction object is exactly the overhead the paper's
// Section IV-B analyzes.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"cloudburst"
)

func main() {
	app, err := cloudburst.NewApp("pagerank", map[string]string{
		"pages": "20000", "mindeg": "4", "maxdeg": "12", "damping": "0.85",
	})
	if err != nil {
		log.Fatal(err)
	}
	pr := app.(*cloudburst.PageRank)

	// The app's graph parameters define the edge generator; the edge
	// count follows from the per-page out-degrees.
	gen := pr.Graph
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	files, err := cloudburst.Materialize(gen, cloudburst.DataSpec{
		Records: gen.TotalEdges(), Files: 8, LocalFiles: 3,
	}, stores)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files,
		cloudburst.BuildOptions{RecordSize: int32(app.RecordSize()), ChunkBytes: 32 << 10},
	)
	if err != nil {
		log.Fatal(err)
	}

	deploy := cloudburst.DeployConfig{
		App:   app,
		Index: idx,
		Sites: []cloudburst.SiteSpec{
			{Name: "local", Cores: 3, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]}},
			{Name: "cloud", Cores: 3, HomeStore: stores["cloud"],
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]}},
		},
	}

	fmt.Printf("pagerank over %d pages / %d edges\n", gen.Pages, gen.TotalEdges())
	for iter := 1; iter <= 20; iter++ {
		res, err := cloudburst.Deploy(deploy)
		if err != nil {
			log.Fatal(err)
		}
		next := res.Final.(cloudburst.Ranker).NextRanks()
		var delta float64
		for i, v := range next {
			delta += math.Abs(v - pr.Ranks()[i])
		}
		if err := pr.SetRanks(next); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %2d: L1 delta %.3e (reduction object %d bytes exchanged)\n",
			iter, delta, res.Final.Bytes())
		if delta < 1e-6 {
			fmt.Println("converged")
			break
		}
	}

	// Report the top-ranked pages.
	type ranked struct {
		page int
		rank float64
	}
	all := make([]ranked, len(pr.Ranks()))
	for i, r := range pr.Ranks() {
		all[i] = ranked{i, r}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank > all[j].rank })
	fmt.Println("top pages:")
	for _, r := range all[:5] {
		fmt.Printf("  page %5d  rank %.8f\n", r.page, r.rank)
	}
}
