// faulttolerance: a worker dies mid-run holding assigned jobs, and the
// run still produces the complete, correct result.
//
// This demonstrates the re-execution extension this reproduction adds
// beyond the paper (which defers fault tolerance): completed jobs are
// only acknowledged upstream once the covering reduction object is
// safe, so everything a dead worker held — including chunks it had
// already reduced into its private object — is re-executed by the
// survivors.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"net"

	"cloudburst"
	"cloudburst/internal/cluster"
	"cloudburst/internal/wire"
)

func main() {
	app, err := cloudburst.NewApp("wordcount", map[string]string{"width": "12"})
	if err != nil {
		log.Fatal(err)
	}
	gen := cloudburst.WordsGen{Width: 12, Vocab: 500, Seed: 3}
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	const records = 300_000
	files, err := cloudburst.Materialize(gen, cloudburst.DataSpec{
		Records: records, Files: 6, LocalFiles: 6,
	}, stores)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files, cloudburst.BuildOptions{RecordSize: 12, ChunkBytes: 32 << 10},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the deployment by hand so a doomed worker can join.
	head, err := cluster.NewHead(cluster.HeadConfig{
		App: app, Index: idx, Clusters: 1,
		Logf: func(f string, a ...any) { fmt.Printf("  [head] "+f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	headLn := listen()
	head.Serve(headLn)

	master, err := cluster.NewMaster(cluster.MasterConfig{
		Site: "local", App: app, Cores: 3, Slaves: 3,
		Logf: func(f string, a ...any) { fmt.Printf("  [master] "+f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	masterLn := listen()
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headLn.Addr().String(), net.Dial, masterLn)
		masterDone <- err
	}()

	// The doomed worker registers, grabs a batch of jobs, and dies.
	doomed := wire.NewConn(dial(masterLn.Addr().String()))
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		log.Fatal(err)
	}
	grant, err := doomed.Call(&wire.Message{Kind: wire.KindRequestJob, Max: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doomed worker took %d jobs and is now killed\n", len(grant.Jobs))
	doomed.Close()

	// Two healthy workers (one slave with 2 cores) finish everything,
	// including the dead worker's batch.
	slave, err := cluster.NewSlave(cluster.SlaveConfig{
		Site: "local", App: app, Cores: 2, HomeStore: stores["local"],
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := slave.Run(masterLn.Addr().String(), net.Dial)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-masterDone; err != nil {
		log.Fatal(err)
	}
	report, final, err := head.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("survivors processed %d jobs (%d total in the index)\n",
		stats.Snapshot().JobsProcessed, len(idx.Chunks))
	fmt.Println("result:", report.FinalResult)

	// Verify nothing was lost or double counted.
	var total int64
	for _, c := range final.(cloudburst.Counter).Counts() {
		total += c
	}
	if total == records {
		fmt.Printf("all %d records accounted for exactly once ✓\n", total)
	} else {
		log.Fatalf("LOST DATA: counted %d of %d records", total, records)
	}
}

func listen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

func dial(addr string) net.Conn {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
