// Quickstart: count words in a data set split between a "local" and a
// "cloud" site, processed by both sites at once.
//
// This is the smallest complete cloudburst program: generate a
// deterministic synthetic data set, split it across two in-memory
// stores, build the chunk index, and deploy a head + two clusters in
// process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudburst"
)

func main() {
	// An application is instantiated from the registry by name.
	app, err := cloudburst.NewApp("wordcount", map[string]string{"width": "12"})
	if err != nil {
		log.Fatal(err)
	}

	// Generate 400k twelve-byte word records into 8 files: 4 on the
	// local site's store, 4 on the cloud's.
	gen := cloudburst.WordsGen{Width: 12, Vocab: 1000, Seed: 7}
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	files, err := cloudburst.Materialize(gen, cloudburst.DataSpec{
		Records: 400_000, Files: 8, LocalFiles: 4,
	}, stores)
	if err != nil {
		log.Fatal(err)
	}

	// The index records every file, chunk, and unit; the head node
	// turns it into the job pool (one job per chunk).
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files,
		cloudburst.BuildOptions{RecordSize: 12, ChunkBytes: 64 << 10},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy: one head, one master per site, 4 virtual cores each.
	// Each site reads its own data directly and can steal the other
	// site's jobs through the cross-registered remote stores.
	res, err := cloudburst.Deploy(cloudburst.DeployConfig{
		App:   app,
		Index: idx,
		Sites: []cloudburst.SiteSpec{
			{
				Name: "local", Cores: 4, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]},
			},
			{
				Name: "cloud", Cores: 4, HomeStore: stores["cloud"],
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Report.FinalResult)
	for _, c := range res.Report.Clusters {
		fmt.Printf("  %-6s processed %3d jobs (%d stolen from the other site)\n",
			c.Site, c.Workers.JobsProcessed, c.Workers.JobsStolen)
	}

	// The final reduction object is the merged word histogram.
	counts := res.Final.(cloudburst.Counter).Counts()
	fmt.Printf("  distinct words: %d\n", len(counts))
}
