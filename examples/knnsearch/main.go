// knnsearch: the paper's first evaluation application — find the k
// points nearest a query in a data set that is mostly stored in the
// cloud, using compute on both sides of the WAN.
//
// The deployment mirrors the paper's env-17/83 configuration: 17% of
// the files on the local cluster's storage, 83% in the simulated S3,
// with shaped links so that remote retrieval has realistic relative
// costs. Watch the local cluster finish its own files and start
// stealing S3-resident jobs.
//
//	go run ./examples/knnsearch
package main

import (
	"fmt"
	"log"
	"time"

	"cloudburst"
)

func main() {
	app, err := cloudburst.NewApp("knn", map[string]string{
		"k": "25", "dims": "3", "cost": "50us",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 200k points, ids embedded so results name their neighbors.
	gen := cloudburst.PointsGen{Dims: 3, Seed: 42, WithID: true}
	stores := map[string]*cloudburst.MemStore{
		"local": cloudburst.NewMemStore(),
		"cloud": cloudburst.NewMemStore(),
	}
	files, err := cloudburst.Materialize(gen, cloudburst.DataSpec{
		Records: 200_000, Files: 12, LocalFiles: 2, // ~17% local
	}, stores)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cloudburst.BuildIndex(
		map[string]cloudburst.Store{"local": stores["local"], "cloud": stores["cloud"]},
		files,
		cloudburst.BuildOptions{RecordSize: int64ToInt32(int64(app.RecordSize())), ChunkBytes: 40 << 10},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Compress emulated time 50x so the shaped links cost real-but-
	// bounded wall time.
	clk := cloudburst.ScaledClock(0.02)
	wan := cloudburst.Link{Name: "wan", Latency: 30 * time.Millisecond, PerStream: 2 << 20}
	lan := cloudburst.Link{Name: "lan", Latency: time.Millisecond, PerStream: 100 << 20}

	start := time.Now()
	res, err := cloudburst.Deploy(cloudburst.DeployConfig{
		App:   app,
		Index: idx,
		Clock: clk,
		Sites: []cloudburst.SiteSpec{
			{
				Name: "local", Cores: 4, HomeStore: stores["local"],
				RemoteStores: map[string]cloudburst.Store{"cloud": stores["cloud"]},
				HeadLink:     lan, SlaveLink: lan,
			},
			{
				Name: "cloud", Cores: 4, HomeStore: stores["cloud"], HomeFetch: true,
				RemoteStores: map[string]cloudburst.Store{"local": stores["local"]},
				HeadLink:     wan, SlaveLink: lan,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("knn search over %d points finished in %v\n", 200_000, time.Since(start).Round(time.Millisecond))
	for _, c := range res.Report.Clusters {
		fmt.Printf("  %-6s jobs=%-3d stolen=%-3d remote bytes=%d\n",
			c.Site, c.Workers.JobsProcessed, c.Workers.JobsStolen, c.Workers.BytesRemote)
	}
	neighbors := res.Final.(cloudburst.Neighborer).Neighbors()
	fmt.Println("nearest neighbors of the query point:")
	for i, n := range neighbors[:5] {
		fmt.Printf("  #%d point %d at squared distance %.6f\n", i+1, n.ID, n.Score)
	}
}

// int64ToInt32 keeps the example honest about the narrow conversion.
func int64ToInt32(v int64) int32 {
	if v > 1<<31-1 {
		panic("record size overflow")
	}
	return int32(v)
}
