// Command cbgen materializes a deterministic synthetic data set for an
// application onto disk, split into files across two site directories
// (the local cluster's storage node and the simulated S3 bucket), and
// writes the matching index file the head node loads.
//
//	cbgen -app knn -records 600000 -files 32 -local-files 16 \
//	      -local-dir ./data/local -cloud-dir ./data/cloud \
//	      -index ./data/index.cbix
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cloudburst/internal/bench"
	"cloudburst/internal/chunk"
	"cloudburst/internal/cli"
	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

func main() {
	var (
		appName    = flag.String("app", "wordcount", "application (knn, kmeans, pagerank, wordcount)")
		params     = flag.String("params", "", "application parameters, k=v,k2=v2")
		records    = flag.Int64("records", 1_000_000, "total record count (pagerank derives it from the graph)")
		files      = flag.Int("files", 32, "number of data files")
		localFiles = flag.Int("local-files", 16, "files placed in -local-dir; the rest go to -cloud-dir")
		localDir   = flag.String("local-dir", "data/local", "local site directory")
		cloudDir   = flag.String("cloud-dir", "data/cloud", "cloud site directory")
		indexPath  = flag.String("index", "data/index.cbix", "index file to write")
		chunkJobs  = flag.Int("jobs", 960, "total job (chunk) count the index should target")
	)
	flag.Parse()

	p, err := cli.ParseParams(*params)
	if err != nil {
		fatal(err)
	}
	app, err := gr.New(*appName, p)
	if err != nil {
		fatal(err)
	}
	gen, n, err := bench.GeneratorFor(app, *records)
	if err != nil {
		fatal(err)
	}
	if *files < 1 || *localFiles < 0 || *localFiles > *files {
		fatal(fmt.Errorf("bad file split: %d files, %d local", *files, *localFiles))
	}
	if n < int64(*files) {
		fatal(fmt.Errorf("%d records cannot fill %d files", n, *files))
	}
	for _, dir := range []string{*localDir, *cloudDir, filepath.Dir(*indexPath)} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}

	rs := int64(gen.RecordSize())
	per := n / int64(*files)
	extra := n % int64(*files)
	var metas []chunk.FileMeta
	var next int64
	var localBytes, cloudBytes int64
	for f := 0; f < *files; f++ {
		cnt := per
		if int64(f) < extra {
			cnt++
		}
		buf := make([]byte, cnt*rs)
		workload.GenInto(gen, next, buf)
		next += cnt

		site, dir := "cloud", *cloudDir
		if f < *localFiles {
			site, dir = "local", *localDir
			localBytes += int64(len(buf))
		} else {
			cloudBytes += int64(len(buf))
		}
		name := fmt.Sprintf("%s-%02d.bin", *appName, f)
		if err := os.WriteFile(filepath.Join(dir, name), buf, 0o644); err != nil {
			fatal(err)
		}
		metas = append(metas, chunk.FileMeta{Name: name, Site: site, Size: int64(len(buf))})
	}

	totalBytes := localBytes + cloudBytes
	chunkBytes := totalBytes / int64(*chunkJobs)
	chunkBytes -= chunkBytes % rs
	if chunkBytes < rs {
		chunkBytes = rs
	}
	idx := &chunk.Index{RecordSize: int32(rs)}
	var id int32
	for fi, m := range metas {
		idx.Files = append(idx.Files, m)
		for off := int64(0); off < m.Size; off += chunkBytes {
			length := chunkBytes
			if off+length > m.Size {
				length = m.Size - off
			}
			idx.Chunks = append(idx.Chunks, chunk.Chunk{
				ID: id, File: int32(fi), Offset: off, Length: length, Units: length / rs,
			})
			id++
		}
	}
	if err := idx.Validate(); err != nil {
		fatal(err)
	}
	if err := cli.WriteIndexFile(*indexPath, idx); err != nil {
		fatal(err)
	}
	fmt.Printf("cbgen: %s: %d records (%d B each), %d files (%d local / %d cloud), %d jobs\n",
		*appName, n, rs, *files, *localFiles, *files-*localFiles, len(idx.Chunks))
	fmt.Printf("cbgen: local %s (%d B), cloud %s (%d B), index %s\n",
		*localDir, localBytes, *cloudDir, cloudBytes, *indexPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbgen:", err)
	os.Exit(1)
}
