// Command cbrun executes a complete cloud-bursting job in a single
// process: it materializes (or loads) the data set, deploys a head,
// two masters, and the configured virtual cores over loopback TCP, and
// prints the result and the timing breakdown. With -emulate it applies
// the calibrated network/compute emulation (the environment the
// benchmarks run in); without it, everything runs at full host speed.
//
//	cbrun -app wordcount -records 2000000 -local-pct 50 \
//	      -local-cores 4 -cloud-cores 4
//	cbrun -app knn -emulate -local-pct 17 -local-cores 16 -cloud-cores 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudburst/internal/bench"
	"cloudburst/internal/cli"
)

func main() {
	var (
		appName    = flag.String("app", "wordcount", "application (knn, kmeans, pagerank, wordcount)")
		params     = flag.String("params", "", "application parameters, k=v,k2=v2")
		records    = flag.Int64("records", 0, "record count (0 = the app's calibrated default)")
		files      = flag.Int("files", 32, "data files")
		jobs       = flag.Int("jobs", 960, "jobs (chunks)")
		localPct   = flag.Int("local-pct", 50, "percent of files stored at the local site")
		localCores = flag.Int("local-cores", 4, "local cluster cores")
		cloudCores = flag.Int("cloud-cores", 4, "cloud cluster cores")
		emulate    = flag.Bool("emulate", false, "apply the calibrated network/compute emulation")
		verbose    = flag.Bool("v", false, "log cluster progress")
	)
	flag.Parse()

	var spec bench.AppSpec
	switch *appName {
	case "knn":
		spec = bench.KNNSpec()
	case "kmeans":
		spec = bench.KMeansSpec()
	case "pagerank":
		spec = bench.PageRankSpec()
	case "wordcount":
		spec = bench.WordCountSpec()
	default:
		fatal(fmt.Errorf("unknown app %q", *appName))
	}
	if *params != "" {
		p, err := cli.ParseParams(*params)
		if err != nil {
			fatal(err)
		}
		for k, v := range p {
			spec.Params[k] = v
		}
	}
	if *records > 0 {
		spec.Records = *records
	}
	spec.Files = *files
	spec.Jobs = *jobs

	sim := bench.DefaultSim()
	if !*emulate {
		// Full host speed: no pacing, no shaping.
		sim = bench.SimParams{Scale: 0, ScaleForced: true, FetchThreads: 8, FetchRange: 256 << 10, GroupUnits: 4096}
		spec.Params["cost"] = "0s"
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	start := time.Now()
	res, err := bench.Execute(bench.RunConfig{
		Spec: spec, LocalPct: *localPct,
		LocalCores: *localCores, CloudCores: *cloudCores,
		Sim: sim, Logf: logf,
	})
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	r := res.Report
	fmt.Printf("cbrun: %s %s cores=(%d,%d)\n", res.App, res.Env, res.LocalCores, res.CloudCores)
	if *emulate {
		fmt.Printf("cbrun: emulated execution %.1f s (wall %v)\n", r.TotalWall.Seconds(), wall.Round(time.Millisecond))
	} else {
		fmt.Printf("cbrun: execution %v\n", wall.Round(time.Millisecond))
	}
	for _, c := range r.Clusters {
		fmt.Printf("cbrun: %-6s cores=%-3d jobs=%-4d stolen=%-4d proc=%.1fs retr=%.1fs sync=%.1fs idle=%.1fs\n",
			c.Site, c.Cores, c.Workers.JobsProcessed, c.Workers.JobsStolen,
			c.Workers.DivideTimes(c.Cores).Processing.Seconds(),
			c.Workers.DivideTimes(c.Cores).Retrieval.Seconds(),
			c.Workers.DivideTimes(c.Cores).Sync.Seconds(),
			c.IdleAtEnd.Seconds())
	}
	fmt.Printf("cbrun: global reduction %.3fs\n", r.GlobalRed.Seconds())
	if r.FinalResult != "" {
		fmt.Println("cbrun: result:", r.FinalResult)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbrun:", err)
	os.Exit(1)
}
