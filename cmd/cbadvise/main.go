// Command cbadvise scores a burst plan from the run-history database
// without running anything: it loads the records cbhead (or cbbench)
// persisted under -history-dir, matches runs of the same application
// and link class, and prints the advisor's recommendation — burst or
// not, how many cloud cores, expected wall time and dollar cost, with
// a confidence grade and the derivation.
//
//	cbadvise -history-dir ./history -app knn -env env-50/50 \
//	         -deadline 90s -budget 2.50
//	cbadvise -history-dir ./history -list
//	cbadvise -history-dir ./history -compact 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cloudburst/internal/advisor"
	"cloudburst/internal/cli"
)

func main() {
	var (
		historyDir = flag.String("history-dir", ".cloudburst-history", "run-history database directory")
		appName    = flag.String("app", "", "application name to plan for")
		env        = flag.String("env", "", "link class to match (as recorded, e.g. env-50/50)")
		dataBytes  = flag.Int64("data-bytes", 0, "input size of the upcoming run (0 = same as history)")
		indexPath  = flag.String("index", "", "derive -data-bytes from this index file instead")
		deadline   = flag.Duration("deadline", 0, "deadline of the upcoming run (0 plans without one)")
		budget     = flag.Float64("budget", 0, "USD cap on the plan's expected cost (0 = uncapped)")
		maxCloud   = flag.Int("max-cloud", 16, "largest cloud fleet to recommend")
		boot       = flag.Duration("boot", 60*time.Second, "instance boot latency assumed for new capacity")
		instRate   = flag.Float64("instance-rate", 0.17, "USD per worker-hour")
		egrRate    = flag.Float64("egress-rate", 0.12, "USD per GiB crossing sites")
		jsonOut    = flag.Bool("json", false, "print the plan as JSON")
		list       = flag.Bool("list", false, "list the history records and exit")
		compactTo  = flag.Int("compact", 0, "keep only the newest N records per (app, env) and exit")
	)
	flag.Parse()

	st, err := advisor.Open(*historyDir)
	if err != nil {
		fatal(err)
	}

	if *compactTo > 0 {
		if err := st.Compact(*compactTo); err != nil {
			fatal(err)
		}
		recs, err := st.Load()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cbadvise: compacted %s to %d record(s)\n", st.Dir(), len(recs))
		return
	}
	if *list {
		recs, err := st.Load()
		if err != nil {
			fatal(err)
		}
		if len(recs) == 0 {
			fmt.Printf("cbadvise: no history in %s\n", st.Dir())
			return
		}
		fmt.Printf("  %4s %-10s %-12s %10s %6s %8s %6s %9s %9s\n",
			"seq", "app", "env", "data", "jobs", "wall", "peak", "cost $", "wallerr%")
		for _, r := range recs {
			errPct := "-"
			if r.PredictedWallSecs > 0 {
				errPct = fmt.Sprintf("%+.1f", r.WallErrPct)
			}
			fmt.Printf("  %4d %-10s %-12s %10d %6d %8.1f %6d %9.4f %9s\n",
				r.Seq, r.App, r.Env, r.DataBytes, r.Jobs, r.WallSecs,
				r.PeakCloud, r.CostUSD, errPct)
		}
		return
	}

	if *appName == "" {
		fatal(fmt.Errorf("-app is required (or use -list / -compact)"))
	}
	size := *dataBytes
	if *indexPath != "" {
		idx, err := cli.ReadIndexFile(*indexPath)
		if err != nil {
			fatal(err)
		}
		size = 0
		for _, f := range idx.Files {
			size += f.Size
		}
	}

	history, err := st.Load()
	if err != nil {
		fatal(err)
	}
	plan := advisor.Advise(history, advisor.Request{
		App: *appName, Env: *env, DataBytes: size,
		Deadline: *deadline, BudgetUSD: *budget, MaxCloud: *maxCloud,
		BootLatency: *boot, InstanceRate: *instRate, EgressRate: *egrRate,
	})
	if *jsonOut {
		out, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println(plan.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbadvise:", err)
	os.Exit(1)
}
