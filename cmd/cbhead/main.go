// Command cbhead runs the head node: it loads the index, generates the
// job pool, serves job requests from the clusters' masters (locality
// first, then work stealing), performs the global reduction, and
// prints the run report.
//
//	cbhead -index ./data/index.cbix -app knn -params k=1000,dims=3 \
//	       -clusters 2 -listen :7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"cloudburst/internal/advisor"
	_ "cloudburst/internal/apps" // register built-in applications
	"cloudburst/internal/cli"
	"cloudburst/internal/cluster"
	"cloudburst/internal/elastic"
	"cloudburst/internal/gr"
	"cloudburst/internal/netsim"
)

func main() {
	var (
		indexPath = flag.String("index", "index.cbix", "index file")
		appName   = flag.String("app", "", "application name (required)")
		params    = flag.String("params", "", "application parameters, k=v,k2=v2")
		clusters  = flag.Int("clusters", 2, "number of masters expected")
		listen    = flag.String("listen", ":7070", "listen address")
		heartbeat = flag.Duration("heartbeat", 0, "declare a silent master lost after 3 missed intervals (0 disables)")
		syncMode  = flag.String("sync-mode", "", "global-reduction sync: monolithic, streamed, streamed-parallel (default), or streamed-sharded")
		quiet     = flag.Bool("q", false, "suppress progress logging")

		deadline     = flag.Duration("deadline", 0, "run deadline; enables the elastic scaling controller (0 disables)")
		elasticSite  = flag.String("elastic-site", "cloud", "site the elastic controller scales")
		elasticMin   = flag.Int("elastic-min", 1, "elastic: minimum workers at the scaled site")
		elasticMax   = flag.Int("elastic-max", 16, "elastic: maximum workers at the scaled site")
		elasticBoot  = flag.Duration("elastic-boot", 60*time.Second, "elastic: boot latency assumed for new instances")
		elasticWork  = flag.String("elastic-workers", "", "elastic: initial workers per site, site=count,... (required with -deadline)")
		instanceRate = flag.Float64("elastic-instance-rate", 0.17, "elastic: USD per worker-hour (on-demand)")
		egressRate   = flag.Float64("elastic-egress-rate", 0.12, "elastic: USD per GiB crossing sites")
		spotRate     = flag.Float64("elastic-spot-rate", 0, "elastic: USD per spot worker-hour; boots ride the revocable spot tier (0 disables)")
		odFallback   = flag.Int("elastic-od-fallback", 3, "elastic: revocations before replacements switch to on-demand")
		costCap      = flag.Float64("elastic-cost-cap", 0, "elastic: refuse scale-ups whose projected bill exceeds this USD cap (0 disables)")

		advise     = flag.String("advise", "", "plan the burst from run history: the advised fleet warm-starts the elastic controller; value is the link class to match (e.g. prod-wan); requires -history-dir and -deadline")
		historyDir = flag.String("history-dir", "", "run-history database: completed runs are recorded here, and -advise plans from it")
		budget     = flag.Float64("advise-budget", 0, "advise: USD cap on the plan's expected cost (0 = uncapped)")
	)
	flag.Parse()
	if *appName == "" {
		fatal(fmt.Errorf("-app is required (one of %v)", gr.Apps()))
	}

	p, err := cli.ParseParams(*params)
	if err != nil {
		fatal(err)
	}
	app, err := gr.New(*appName, p)
	if err != nil {
		fatal(err)
	}
	idx, err := cli.ReadIndexFile(*indexPath)
	if err != nil {
		fatal(err)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	cfg := cluster.HeadConfig{
		App: app, Index: idx, Clusters: *clusters,
		Clock: netsim.Real(), Logf: logf,
		HeartbeatInterval: *heartbeat,
		SyncMode:          *syncMode,
	}
	// The history database: -advise plans from it before the run, and
	// every completed run is recorded into it afterwards.
	var (
		hist *advisor.Store
		plan *advisor.Plan
	)
	dataBytes := int64(0)
	for _, f := range idx.Files {
		dataBytes += f.Size
	}
	if *historyDir != "" {
		var err error
		if hist, err = advisor.Open(*historyDir); err != nil {
			fatal(err)
		}
	}
	if *advise != "" {
		if hist == nil {
			fatal(fmt.Errorf("-advise requires -history-dir"))
		}
		if *deadline <= 0 {
			fatal(fmt.Errorf("-advise requires -deadline (the plan sizes a fleet against it)"))
		}
		history, err := hist.Load()
		if err != nil {
			fatal(err)
		}
		p := advisor.Advise(history, advisor.Request{
			App: *appName, Env: *advise, DataBytes: dataBytes,
			Deadline: *deadline, BudgetUSD: *budget, MaxCloud: *elasticMax,
			BootLatency: *elasticBoot, InstanceRate: *instanceRate,
			EgressRate: *egressRate,
		})
		plan = &p
		fmt.Println("cbhead:", p.String())
	}

	if *deadline > 0 {
		workers, err := cli.ParseParams(*elasticWork)
		if err != nil || len(workers) == 0 {
			fatal(fmt.Errorf("-deadline requires -elastic-workers site=count,... (%v)", err))
		}
		wmap := make(map[string]int, len(workers))
		for s, v := range workers {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				fatal(fmt.Errorf("-elastic-workers %s=%q: not a worker count", s, v))
			}
			wmap[s] = n
		}
		seed := 0
		if plan != nil && plan.Burst {
			seed = plan.CloudCores
		}
		cfg.Elastic = elastic.New(elastic.Config{
			Site: *elasticSite, Deadline: *deadline,
			MinWorkers: *elasticMin, MaxWorkers: *elasticMax,
			SeedWorkers:  seed,
			BootLatency:  *elasticBoot,
			InstanceRate: *instanceRate, EgressRate: *egressRate,
			SpotRate: *spotRate, OnDemandFallback: *odFallback,
			CostCapUSD: *costCap,
			Workers:    wmap, Logf: logf,
		})
		// The head cannot boot machines itself: surface scale-up
		// decisions as operator instructions. Scale-downs need no
		// operator action — the site's master drains the surplus and
		// the drained cbslave processes exit on their own.
		cfg.ScaleUp = func(site string, n int, onDemand bool) {
			tier := "spot"
			if onDemand {
				tier = "on-demand"
			}
			fmt.Printf("cbhead: ELASTIC: start %d more %s worker(s) at site %s: cbslave -join -site %s -master <%s master addr> ...\n",
				n, tier, site, site, site)
		}
	}
	head, err := cluster.NewHead(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cbhead: %s over %d jobs (%d files), awaiting %d masters on %s\n",
		*appName, len(idx.Chunks), len(idx.Files), *clusters, ln.Addr())
	head.Serve(ln)

	report, _, err := head.Wait()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cbhead: done in %v, global reduction %v\n",
		report.TotalWall.Round(time.Millisecond), report.GlobalRed.Round(time.Millisecond))
	for _, c := range report.Clusters {
		fmt.Printf("cbhead: cluster %-8s jobs=%d stolen=%d proc=%v retr=%v sync=%v idle=%v\n",
			c.Site, c.Workers.JobsProcessed, c.Workers.JobsStolen,
			c.Workers.Processing.Round(time.Millisecond),
			c.Workers.Retrieval.Round(time.Millisecond),
			c.Workers.Sync.Round(time.Millisecond),
			c.IdleAtEnd.Round(time.Millisecond))
	}
	if report.Elastic != nil {
		fmt.Println("cbhead:", elastic.String(report.Elastic))
	}
	if hist != nil {
		// Record the run (with the plan's prediction error when it was
		// advised) so the next plan learns from this one.
		env := *advise
		if env == "" {
			env = "default"
		}
		report.Env = env
		rec, err := advisor.FromReport(report, advisor.ExtractOptions{
			DataBytes: dataBytes, Deadline: *deadline, Plan: plan,
		})
		if err != nil {
			fatal(err)
		}
		if err := hist.Append(rec); err != nil {
			fatal(err)
		}
		fmt.Printf("cbhead: run recorded as %s history seq %d (wall %.1fs", env, rec.Seq, rec.WallSecs)
		if plan != nil {
			fmt.Printf(", prediction error %+.1f%%", rec.WallErrPct)
		}
		fmt.Printf(") in %s\n", hist.Dir())
	}
	if report.FinalResult != "" {
		fmt.Println("cbhead: result:", report.FinalResult)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbhead:", err)
	os.Exit(1)
}
