// Command cbhead runs the head node: it loads the index, generates the
// job pool, serves job requests from the clusters' masters (locality
// first, then work stealing), performs the global reduction, and
// prints the run report.
//
//	cbhead -index ./data/index.cbix -app knn -params k=1000,dims=3 \
//	       -clusters 2 -listen :7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	_ "cloudburst/internal/apps" // register built-in applications
	"cloudburst/internal/cli"
	"cloudburst/internal/cluster"
	"cloudburst/internal/gr"
	"cloudburst/internal/netsim"
)

func main() {
	var (
		indexPath = flag.String("index", "index.cbix", "index file")
		appName   = flag.String("app", "", "application name (required)")
		params    = flag.String("params", "", "application parameters, k=v,k2=v2")
		clusters  = flag.Int("clusters", 2, "number of masters expected")
		listen    = flag.String("listen", ":7070", "listen address")
		heartbeat = flag.Duration("heartbeat", 0, "declare a silent master lost after 3 missed intervals (0 disables)")
		quiet     = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	if *appName == "" {
		fatal(fmt.Errorf("-app is required (one of %v)", gr.Apps()))
	}

	p, err := cli.ParseParams(*params)
	if err != nil {
		fatal(err)
	}
	app, err := gr.New(*appName, p)
	if err != nil {
		fatal(err)
	}
	idx, err := cli.ReadIndexFile(*indexPath)
	if err != nil {
		fatal(err)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	head, err := cluster.NewHead(cluster.HeadConfig{
		App: app, Index: idx, Clusters: *clusters,
		Clock: netsim.Real(), Logf: logf,
		HeartbeatInterval: *heartbeat,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cbhead: %s over %d jobs (%d files), awaiting %d masters on %s\n",
		*appName, len(idx.Chunks), len(idx.Files), *clusters, ln.Addr())
	head.Serve(ln)

	report, _, err := head.Wait()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cbhead: done in %v, global reduction %v\n",
		report.TotalWall.Round(time.Millisecond), report.GlobalRed.Round(time.Millisecond))
	for _, c := range report.Clusters {
		fmt.Printf("cbhead: cluster %-8s jobs=%d stolen=%d proc=%v retr=%v sync=%v idle=%v\n",
			c.Site, c.Workers.JobsProcessed, c.Workers.JobsStolen,
			c.Workers.Processing.Round(time.Millisecond),
			c.Workers.Retrieval.Round(time.Millisecond),
			c.Workers.Sync.Round(time.Millisecond),
			c.IdleAtEnd.Round(time.Millisecond))
	}
	if report.FinalResult != "" {
		fmt.Println("cbhead: result:", report.FinalResult)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbhead:", err)
	os.Exit(1)
}
