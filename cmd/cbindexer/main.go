// Command cbindexer is the data organizer (Section III-B): it analyzes
// existing data files across site directories and generates the binary
// index file — physical locations, starting offsets, chunk sizes, and
// unit counts — that the head node turns into the job pool.
//
//	cbindexer -record-size 20 -chunk-bytes 131072 \
//	          -local-dir ./data/local -cloud-dir ./data/cloud \
//	          -out ./data/index.cbix
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudburst/internal/chunk"
	"cloudburst/internal/cli"
	"cloudburst/internal/store"
)

func main() {
	var (
		recordSize = flag.Int("record-size", 0, "data unit size in bytes (required)")
		chunkBytes = flag.Int64("chunk-bytes", 128<<10, "target chunk (job) size in bytes")
		localDir   = flag.String("local-dir", "", "local site directory (optional)")
		cloudDir   = flag.String("cloud-dir", "", "cloud site directory (optional)")
		out        = flag.String("out", "index.cbix", "index file to write")
	)
	flag.Parse()
	if *recordSize <= 0 {
		fatal(fmt.Errorf("-record-size is required and must be positive"))
	}
	if *localDir == "" && *cloudDir == "" {
		fatal(fmt.Errorf("at least one of -local-dir / -cloud-dir is required"))
	}

	stores := make(map[string]store.Store)
	var files []chunk.FileMeta
	add := func(site, dir string) error {
		if dir == "" {
			return nil
		}
		st := store.NewLocal(dir)
		stores[site] = st
		names, err := st.List()
		if err != nil {
			return err
		}
		for _, name := range names {
			files = append(files, chunk.FileMeta{Name: name, Site: site})
		}
		return nil
	}
	if err := add("local", *localDir); err != nil {
		fatal(err)
	}
	if err := add("cloud", *cloudDir); err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no data files found"))
	}

	idx, err := chunk.Build(stores, files, chunk.BuildOptions{
		RecordSize: int32(*recordSize), ChunkBytes: *chunkBytes,
	})
	if err != nil {
		fatal(err)
	}
	if err := cli.WriteIndexFile(*out, idx); err != nil {
		fatal(err)
	}
	fmt.Printf("cbindexer: %d files, %d chunks, %d units, %d bytes -> %s\n",
		len(idx.Files), len(idx.Chunks), idx.TotalUnits(), idx.TotalBytes(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbindexer:", err)
	os.Exit(1)
}
