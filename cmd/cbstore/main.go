// Command cbstore serves a directory of data files over the store
// protocol, so slaves at other sites can retrieve stolen jobs' chunks
// with ranged reads. It stands in for the storage node's export (or an
// S3 endpoint) in multi-node deployments.
//
//	cbstore -dir ./data/local -listen :7075
//
// With -mode buffer it instead serves a site-shared burst buffer
// fronting another store server: reads fault chunks in from the
// backing store under singleflight (so N slaves missing the same chunk
// cost one backing fetch), answer with the buffer-hit flag, and accept
// KindStage requests from the site's master to pre-pull upcoming
// chunks.
//
//	cbstore -mode buffer -backing s3host:7075 -buffer-mb 512 -listen :7076
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
)

func main() {
	var (
		dir      = flag.String("dir", "data", "directory to serve (mode store)")
		listen   = flag.String("listen", ":7075", "listen address")
		mode     = flag.String("mode", "store", "store (serve -dir) or buffer (front -backing with a burst buffer)")
		backing  = flag.String("backing", "", "backing store server address (mode buffer)")
		site     = flag.String("site", "cloud", "site name the buffer belongs to (mode buffer)")
		bufferMB = flag.Int64("buffer-mb", 512, "buffer capacity in MiB (mode buffer)")
		threads  = flag.Int("threads", 0, "concurrent range readers per backing fetch (0 = default; mode buffer)")
		autotune = flag.Bool("autotune", false, "AIMD-tune the site-wide backing fetch concurrency (mode buffer)")
	)
	flag.Parse()

	var served store.Store
	var closer func()
	switch *mode {
	case "store":
		st := store.NewLocal(*dir)
		served = st
		closer = func() { st.Close() }
	case "buffer":
		if *backing == "" {
			fatal(fmt.Errorf("-mode buffer needs -backing"))
		}
		client := store.NewClient(*backing, nil)
		fetch := store.DefaultFetchOptions()
		fetch.Clock = netsim.Real()
		if *threads > 0 {
			fetch.Threads = *threads
		}
		buf := store.NewSiteBuffer(store.SiteBufferConfig{
			Site: *site, Backing: client, Capacity: *bufferMB << 20,
			Fetch: fetch, Autotune: *autotune,
		})
		served = buf
		closer = func() {
			buf.Drain()
			client.Close()
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	defer closer()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := store.Serve(ln, served)
	if *mode == "buffer" {
		fmt.Printf("cbstore: buffering %s (%d MiB) on %s\n", *backing, *bufferMB, srv.Addr())
	} else {
		fmt.Printf("cbstore: serving %s on %s\n", *dir, srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbstore:", err)
	os.Exit(1)
}
