// Command cbstore serves a directory of data files over the store
// protocol, so slaves at other sites can retrieve stolen jobs' chunks
// with ranged reads. It stands in for the storage node's export (or an
// S3 endpoint) in multi-node deployments.
//
//	cbstore -dir ./data/local -listen :7075
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"cloudburst/internal/store"
)

func main() {
	var (
		dir    = flag.String("dir", "data", "directory to serve")
		listen = flag.String("listen", ":7075", "listen address")
	)
	flag.Parse()

	st := store.NewLocal(*dir)
	defer st.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := store.Serve(ln, st)
	fmt.Printf("cbstore: serving %s on %s\n", *dir, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbstore:", err)
	os.Exit(1)
}
