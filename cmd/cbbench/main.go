// Command cbbench regenerates the paper's evaluation: Figure 3 (the
// five cloud-bursting configurations), Tables I and II (job assignment
// and slowdowns), Figure 4 (scalability), and the Figure 1 API
// ablation.
//
// Usage:
//
//	cbbench -experiment all
//	cbbench -experiment fig3a            # knn panel only
//	cbbench -experiment fig4b -scale 0.001
//	cbbench -experiment table2 -records-divisor 10
//	cbbench -experiment overlap -records-divisor 10 -json BENCH_overlap.json
//
// The -records-divisor flag shrinks every data set (and job count) by
// the given factor for quick runs; shapes are preserved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudburst/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"one of: all, fig1, fig3a, fig3b, fig3c, fig3, table1, table2, fig4a, fig4b, fig4c, fig4, summary, ablation, cost, chaos, overlap, autotune, elastic, advisor, spot, wire, buffer, sync")
		scale   = flag.Float64("scale", 0, "clock scale override (wall s per emulated s)")
		divisor = flag.Int64("records-divisor", 1, "shrink data sets (and jobs) by this factor")
		verbose = flag.Bool("v", false, "log cluster progress")

		overlapIters = flag.Int("overlap-iters", 3, "overlap/buffer: pagerank power iterations")
		jsonPath     = flag.String("json", "", "overlap/autotune/elastic/advisor/spot/wire/buffer/sync: also write results as JSON to this file")
		checkWin     = flag.Bool("check-win", false, "autotune/elastic/advisor/spot/wire/buffer/sync: fail unless the acceptance criteria are met")
		historyDir   = flag.String("history-dir", "", "advisor: burst-history database directory (empty = throwaway temp dir)")
		benchtime    = flag.Duration("benchtime", time.Second, "wire: microbench duration per (scenario, codec) cell")

		faultSeed      = flag.Int64("fault-seed", 42, "chaos: fault plan seed")
		faultTransient = flag.Float64("fault-transient", 0.02, "chaos: per-request transient fault probability")
		faultSlowdown  = flag.Float64("fault-slowdown", 0.02, "chaos: per-request SlowDown throttle probability")
		heartbeat      = flag.Duration("heartbeat", 50*time.Millisecond, "chaos: liveness heartbeat interval (0 disables)")
	)
	flag.Parse()

	sim := bench.DefaultSim()
	if *scale > 0 {
		sim.Scale = *scale
		sim.ScaleForced = true
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	specs := map[string]bench.AppSpec{
		"a": bench.KNNSpec().Shrink(*divisor),
		"b": bench.KMeansSpec().Shrink(*divisor),
		"c": bench.PageRankSpec().Shrink(*divisor),
	}

	runFig3 := func(panel string) []bench.EnvResult {
		spec := specs[panel]
		results, err := bench.Fig3(spec, sim, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderFig3(spec.Name, results))
		return results
	}
	runFig4 := func(panel string) []bench.EnvResult {
		spec := specs[panel]
		results, err := bench.Fig4(spec, sim, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderFig4(spec.Name, results))
		return results
	}
	runFig3All := func() [][]bench.EnvResult {
		var all [][]bench.EnvResult
		for _, p := range []string{"a", "b", "c"} {
			all = append(all, runFig3(p))
		}
		return all
	}
	runFig4All := func() [][]bench.EnvResult {
		var all [][]bench.EnvResult
		for _, p := range []string{"a", "b", "c"} {
			all = append(all, runFig4(p))
		}
		return all
	}
	runFig1 := func() {
		rows, err := bench.Fig1(500_000/maxI64(*divisor, 1), 8)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderFig1(rows))
	}

	runAblations := func() {
		knn := specs["a"]
		rows, err := bench.AblationConsecutive(knn, sim, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderAblation("consecutive vs scattered job assignment (knn, env-local)", rows))

		rows, err = bench.AblationFetchThreads(knn, sim, []int{1, 2, 4, 8, 16}, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderAblation("retrieval thread count (knn, env-cloud)", rows))

		rows, err = bench.AblationBatch(knn, sim, []int{4, 16, 64, 240}, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderAblation("master refill batch size (knn, env-50/50)", rows))

		pages := []int64{25_000, 75_000, 150_000, 300_000}
		if *divisor > 1 {
			for i := range pages {
				pages[i] /= *divisor
			}
		}
		rows, err = bench.AblationObjectSize(sim, pages, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderAblation("reduction object size (pagerank, env-50/50)", rows))

		rows, err = bench.AblationPooling(specs["b"], sim, 0.6, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderAblation("dynamic pooling vs static partition under ±60% core jitter (kmeans, env-50/50)", rows))
	}

	runOverlap := func() {
		knn, err := bench.OverlapSinglePass(specs["a"], sim, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderOverlap("knn single pass, all data in S3", knn))
		pr, err := bench.OverlapPageRank(specs["c"], sim, *overlapIters, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderOverlap("pagerank power iterations, all data in S3", pr))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(map[string]*bench.OverlapResult{
				"knn": knn, "pagerank": pr,
			}, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("overlap results written to %s\n", *jsonPath)
		}
		if !knn.Match || !pr.Match {
			fatal(fmt.Errorf("overlap variants diverged from the baseline result"))
		}
	}

	runAutotune := func() {
		res, err := bench.AutotuneGrid(specs["a"], sim, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderAutotune("knn, static thread counts vs AIMD controller", res))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("autotune results written to %s\n", *jsonPath)
		}
		if !res.Match() {
			fatal(fmt.Errorf("autotune variants diverged from the baseline result"))
		}
		if *checkWin {
			cell := res.Cell("env-cloud")
			if cell == nil {
				fatal(fmt.Errorf("autotune grid has no env-cloud cell"))
			}
			auto := cell.Row("autotune")
			s2, s8 := cell.Row("static-2"), cell.Row("static-8")
			if auto == nil || s2 == nil || s8 == nil {
				fatal(fmt.Errorf("autotune grid is missing rows"))
			}
			best := s2.Seconds()
			if s8.Seconds() < best {
				best = s8.Seconds()
			}
			if auto.Seconds() > best/0.95 {
				fatal(fmt.Errorf("autotune %.1fs is worse than 0.95x the best static %.1fs",
					auto.Seconds(), best))
			}
			if auto.Seconds()*1.2 > s2.Seconds() {
				fatal(fmt.Errorf("autotune %.1fs is not 1.2x faster than static-2 %.1fs",
					auto.Seconds(), s2.Seconds()))
			}
			fmt.Printf("autotune win check: %.1fs vs best static %.1fs (%.2fx) and static-2 %.1fs (%.2fx) ✓\n",
				auto.Seconds(), best, best/auto.Seconds(), s2.Seconds(), s2.Seconds()/auto.Seconds())
		}
	}

	runElastic := func() {
		scaleUp := 10_000.0 / float64(maxI64(*divisor, 1))
		res, err := bench.ElasticSweep(specs["a"], sim, scaleUp, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderElastic("knn, deadline-driven cloud provisioning", res))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("elastic results written to %s\n", *jsonPath)
		}
		if !res.Match {
			fatal(fmt.Errorf("elastic variants diverged from the baseline result"))
		}
		if *checkWin {
			local := res.Row("local-only")
			static := res.Row("static-over")
			el := res.Row("elastic")
			drain := res.Row("elastic-drain")
			if local == nil || static == nil || el == nil || drain == nil {
				fatal(fmt.Errorf("elastic sweep is missing rows"))
			}
			if local.MetDeadline {
				fatal(fmt.Errorf("local-only met the %.1fs deadline (%.1fs) — deadline is not binding",
					res.Deadline.Seconds(), local.Seconds()))
			}
			if !static.MetDeadline {
				fatal(fmt.Errorf("static-over missed the %.1fs deadline (%.1fs)",
					res.Deadline.Seconds(), static.Seconds()))
			}
			if !el.MetDeadline {
				fatal(fmt.Errorf("elastic missed the %.1fs deadline (%.1fs)",
					res.Deadline.Seconds(), el.Seconds()))
			}
			if el.Boots == 0 {
				fatal(fmt.Errorf("elastic booted no workers — the controller never scaled up"))
			}
			if el.TotalUSD >= static.TotalUSD {
				fatal(fmt.Errorf("elastic cost $%.4f is not below static-over $%.4f",
					el.TotalUSD, static.TotalUSD))
			}
			if drain.Drains == 0 {
				fatal(fmt.Errorf("elastic-drain drained no workers — the controller never scaled down"))
			}
			if !drain.MetDeadline {
				fatal(fmt.Errorf("elastic-drain missed the %.1fs deadline (%.1fs)",
					res.Deadline.Seconds(), drain.Seconds()))
			}
			fmt.Printf("elastic win check: local-only %.1fs misses, elastic %.1fs at $%.4f beats static-over %.1fs at $%.4f, drain variant sheds %d ✓\n",
				local.Seconds(), el.Seconds(), el.TotalUSD,
				static.Seconds(), static.TotalUSD, drain.Drains)
		}
	}

	runAdvisor := func() {
		scaleUp := 10_000.0 / float64(maxI64(*divisor, 1))
		res, err := bench.AdvisorSweep(specs["a"], sim, scaleUp, *historyDir, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderAdvisor("knn, history-warmed vs cold-start elastic", res))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("advisor results written to %s\n", *jsonPath)
		}
		if !res.Match {
			fatal(fmt.Errorf("advisor runs diverged from the cold-start result"))
		}
		if *checkWin {
			cold := res.Row("cold")
			warm := res.Row("warm")
			warm2 := res.Row("warm-2")
			if cold == nil || warm == nil || warm2 == nil {
				fatal(fmt.Errorf("advisor sequence is missing rows"))
			}
			if cold.RampEvents == 0 {
				fatal(fmt.Errorf("cold run needed no reactive ramp — the deadline is not binding"))
			}
			if !res.Plan.Burst || res.Plan.CloudCores <= 0 {
				fatal(fmt.Errorf("advisor did not recommend a burst from the cold run's history: %s", res.Plan))
			}
			// The warm start's claim is the ramp replacement, so ramp
			// events are strict for every warm run. Wall clock is owned
			// by the live controller after the seed, whose late-run
			// drain/re-ramp hysteresis is timing noise at bench scale:
			// require the best warm run to beat cold outright and bound
			// the rest at 1.10x so a real regression still fails.
			best := warm
			if warm2.TotalEmu < best.TotalEmu {
				best = warm2
			}
			if best.TotalEmu > cold.TotalEmu {
				fatal(fmt.Errorf("best warm run %.1fs is slower than cold-start %.1fs",
					best.Seconds(), cold.Seconds()))
			}
			for _, w := range []*bench.AdvisorRow{warm, warm2} {
				if w.RampEvents >= cold.RampEvents {
					fatal(fmt.Errorf("%s run still needed %d reactive ramp events (cold: %d) — warm start did not replace the ramp",
						w.Label, w.RampEvents, cold.RampEvents))
				}
				if float64(w.TotalEmu) > 1.10*float64(cold.TotalEmu) {
					fatal(fmt.Errorf("%s run %.1fs is >1.10x cold-start %.1fs",
						w.Label, w.Seconds(), cold.Seconds()))
				}
			}
			// No absolute-deadline assertion: at aggressive shrink
			// factors the derived deadline can be unreachable for every
			// variant; the win is the ramp replacement, not the deadline.
			fmt.Printf("advisor win check: plan %d cores (conf %.2f); warm %.1fs vs cold %.1fs, ramp events %d vs %d (%.1fs of discovery saved), cost delta %+.4f $, wall prediction err %+.1f%% ✓\n",
				res.Plan.CloudCores, res.Plan.Confidence,
				warm.Seconds(), cold.Seconds(), warm.RampEvents, cold.RampEvents,
				res.RampSecsSaved, res.CostDeltaUSD, warm.WallErrPct)
		}
	}

	runSpot := func() {
		scaleUp := 10_000.0 / float64(maxI64(*divisor, 1))
		res, err := bench.SpotSweep(specs["a"], sim, scaleUp, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderSpot("knn, spot-preemption-tolerant bursting", res))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("spot results written to %s\n", *jsonPath)
		}
		if !res.Match {
			fatal(fmt.Errorf("spot variants diverged from the clean result"))
		}
		if *checkWin {
			clean := res.Row("clean")
			warned := res.Row("warned-drain")
			ckpt := res.Row("unwarned-kill")
			nockpt := res.Row("unwarned-nockpt")
			if clean == nil || warned == nil || ckpt == nil || nockpt == nil {
				fatal(fmt.Errorf("spot sweep is missing rows"))
			}
			for _, r := range []*bench.SpotRow{warned, ckpt, nockpt} {
				if r.Revocations == 0 {
					fatal(fmt.Errorf("%s revoked no workers — the trace never fired", r.Label))
				}
			}
			if warned.DrainsCompleted == 0 {
				fatal(fmt.Errorf("warned-drain completed no drains — every warning window closed mid-flush"))
			}
			if ckpt.JobsRecovered == 0 {
				fatal(fmt.Errorf("unwarned-kill adopted no checkpointed work"))
			}
			if ckpt.JobsRequeued >= nockpt.JobsRequeued {
				fatal(fmt.Errorf("checkpointing did not cut re-execution: %d requeued vs %d without",
					ckpt.JobsRequeued, nockpt.JobsRequeued))
			}
			// Late revocations leave no runway to re-provision, so full
			// re-execution extends the tail past the deadline while
			// checkpointed recovery stays inside it — the headline win.
			if ckpt.TotalEmu >= nockpt.TotalEmu {
				fatal(fmt.Errorf("checkpointing did not cut wall time: %.1fs vs %.1fs without",
					ckpt.Seconds(), nockpt.Seconds()))
			}
			if !ckpt.MetDeadline {
				fatal(fmt.Errorf("unwarned-kill missed the %.1fs deadline (%.1fs) despite checkpoints and fallback",
					res.Deadline.Seconds(), ckpt.Seconds()))
			}
			if nockpt.MetDeadline {
				fatal(fmt.Errorf("unwarned-nockpt met the deadline anyway (%.1fs <= %.1fs) — the trace is too gentle to discriminate",
					nockpt.Seconds(), res.Deadline.Seconds()))
			}
			// Cost is the controller's noisy dual of wall time (it spends
			// replacements to chase the deadline), so guard against a
			// blowup rather than asserting a strict win.
			if ckpt.TotalUSD > nockpt.TotalUSD*1.25 {
				fatal(fmt.Errorf("checkpointed recovery cost blew up: $%.4f vs $%.4f without",
					ckpt.TotalUSD, nockpt.TotalUSD))
			}
			if ckpt.OnDemandWorkers == 0 && nockpt.OnDemandWorkers == 0 {
				fatal(fmt.Errorf("no variant fell back to on-demand replacements after %d revocations",
					ckpt.Revocations))
			}
			fmt.Printf("spot win check: %d revocations; drains %d/%d; checkpoints save %d jobs (%d vs %d requeued), meet the deadline (%.1fs vs %.1fs MISS); on-demand fallback %d ✓\n",
				ckpt.Revocations, warned.DrainsCompleted, warned.DrainsAborted,
				ckpt.JobsRecovered, ckpt.JobsRequeued, nockpt.JobsRequeued,
				ckpt.Seconds(), nockpt.Seconds(), ckpt.OnDemandWorkers)
		}
	}

	runWire := func() {
		res, err := bench.WireMicrobench(*benchtime, logf)
		if err != nil {
			fatal(err)
		}
		if err := bench.WirePipelineCompare(res, specs["a"], sim, logf); err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderWire("binary codec vs gob baseline", res))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wire results written to %s\n", *jsonPath)
		}
		if !res.Match {
			fatal(fmt.Errorf("pipeline digests diverged between codecs"))
		}
		if *checkWin {
			for _, sc := range []string{"jobgrant", "readresp"} {
				if res.Speedup[sc] < 2 {
					fatal(fmt.Errorf("wire %s speedup %.2fx is below the required 2x", sc, res.Speedup[sc]))
				}
				if res.AllocReduction[sc] < 5 {
					fatal(fmt.Errorf("wire %s alloc reduction %.2fx is below the required 5x", sc, res.AllocReduction[sc]))
				}
			}
			fmt.Printf("wire win check: jobgrant %.1fx/%.1fx, readresp %.1fx/%.1fx (throughput/allocs), digests identical ✓\n",
				res.Speedup["jobgrant"], res.AllocReduction["jobgrant"],
				res.Speedup["readresp"], res.AllocReduction["readresp"])
		}
	}

	runBuffer := func() {
		knn, err := bench.BufferSinglePass(specs["a"], sim, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderBuffer("knn single pass, all data in S3", knn))
		pr, err := bench.BufferPageRank(specs["c"], sim, *overlapIters, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderBuffer("pagerank power iterations, all data in S3", pr))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(map[string]*bench.BufferResult{
				"knn": knn, "pagerank": pr,
			}, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("buffer results written to %s\n", *jsonPath)
		}
		if !knn.Match || !pr.Match {
			fatal(fmt.Errorf("buffer variants diverged from the baseline result"))
		}
		if *checkWin {
			for _, res := range []*bench.BufferResult{knn, pr} {
				for _, label := range []string{"cold-buffer", "staged-buffer"} {
					r := res.Row(label)
					if r == nil {
						fatal(fmt.Errorf("buffer %s ablation is missing the %s row", res.App, label))
					}
					if r.Retrieval.BufferHits+r.Retrieval.BufferMisses == 0 {
						fatal(fmt.Errorf("buffer %s %s routed no reads through the buffer", res.App, label))
					}
				}
				if res.Row("staged-buffer").Retrieval.StagedBytes == 0 {
					fatal(fmt.Errorf("buffer %s staged-buffer staged nothing", res.App))
				}
			}
			// The headline win: over multiple pagerank iterations, the
			// staged buffer must beat the bufferless baseline on both
			// wall clock and S3 egress.
			base, staged := pr.Row("no-buffer"), pr.Row("staged-buffer")
			if staged.TotalEmu >= base.TotalEmu {
				fatal(fmt.Errorf("staged buffer did not cut wall time: %.1fs vs %.1fs without",
					staged.Seconds(), base.Seconds()))
			}
			if staged.EgressBytes >= base.EgressBytes {
				fatal(fmt.Errorf("staged buffer did not cut S3 egress: %d vs %d bytes without",
					staged.EgressBytes, base.EgressBytes))
			}
			fmt.Printf("buffer win check: pagerank staged %.1fs vs %.1fs no-buffer (%.2fx), egress %.1f MB vs %.1f MB (%.0f%% saved), digests identical ✓\n",
				staged.Seconds(), base.Seconds(), base.TotalEmu.Seconds()/staged.TotalEmu.Seconds(),
				float64(staged.EgressBytes)/(1<<20), float64(base.EgressBytes)/(1<<20),
				100*(1-float64(staged.EgressBytes)/float64(base.EgressBytes)))
		}
	}

	runSync := func() {
		res, err := bench.SyncPageRank(specs["c"], sim, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderSync("pagerank, all data in S3, 32 cloud cores", res))
		if *jsonPath != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("sync results written to %s\n", *jsonPath)
		}
		if !res.Match {
			fatal(fmt.Errorf("sync variants diverged from the baseline result"))
		}
		if *checkWin {
			mono := res.Row("monolithic-serial")
			par := res.Row("streamed-parallel")
			shard := res.Row("streamed-sharded")
			if mono == nil || par == nil || shard == nil {
				fatal(fmt.Errorf("sync ablation is missing rows"))
			}
			if mono.Sync.Parts != 0 {
				fatal(fmt.Errorf("monolithic-serial streamed %d parts — the baseline is contaminated", mono.Sync.Parts))
			}
			for _, r := range []*bench.SyncRow{par, shard} {
				if r.Sync.Parts == 0 {
					fatal(fmt.Errorf("sync %s streamed no object parts", r.Label))
				}
				if r.Sync.StreamedBytes == 0 {
					fatal(fmt.Errorf("sync %s counted no streamed bytes", r.Label))
				}
				if r.TotalEmu >= mono.TotalEmu {
					fatal(fmt.Errorf("sync %s did not beat monolithic-serial: %.1fs vs %.1fs",
						r.Label, r.Seconds(), mono.Seconds()))
				}
			}
			if par.Sync.MaxParallel < 2 {
				fatal(fmt.Errorf("streamed-parallel never merged concurrently (max parallelism %d)",
					par.Sync.MaxParallel))
			}
			fmt.Printf("sync win check: streamed-parallel %.1fs and streamed-sharded %.1fs vs monolithic %.1fs (%.2fx / %.2fx), %d parts, max merge parallelism %d, digests identical ✓\n",
				par.Seconds(), shard.Seconds(), mono.Seconds(),
				mono.Seconds()/par.Seconds(), mono.Seconds()/shard.Seconds(),
				par.Sync.Parts, par.Sync.MaxParallel)
		}
	}

	runChaos := func() {
		params := bench.DefaultChaos(*faultSeed)
		params.TransientProb = *faultTransient
		params.SlowDownProb = *faultSlowdown
		params.Heartbeat = *heartbeat
		r, err := bench.Chaos(specs["a"], sim, params, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderChaos(r))
		if !r.Match {
			fatal(fmt.Errorf("chaos run diverged from clean run"))
		}
	}

	switch strings.ToLower(*experiment) {
	case "ablation":
		runAblations()
	case "chaos":
		runChaos()
	case "overlap":
		runOverlap()
	case "autotune":
		runAutotune()
	case "elastic":
		runElastic()
	case "advisor":
		runAdvisor()
	case "spot":
		runSpot()
	case "wire":
		runWire()
	case "buffer":
		runBuffer()
	case "sync":
		runSync()
	case "cost":
		results := runFig3("a")
		scaleUp := 10_000.0 / float64(maxI64(*divisor, 1))
		fmt.Println(bench.RenderCost(results, bench.AWS2011(), scaleUp))
	case "fig1":
		runFig1()
	case "fig3a", "fig3b", "fig3c":
		runFig3(strings.TrimPrefix(strings.ToLower(*experiment), "fig3"))
	case "fig3":
		all := runFig3All()
		fmt.Println(bench.RenderTable1(all))
		fmt.Println(bench.RenderTable2(all))
	case "table1":
		fmt.Println(bench.RenderTable1(runFig3All()))
	case "table2":
		fmt.Println(bench.RenderTable2(runFig3All()))
	case "fig4a", "fig4b", "fig4c":
		runFig4(strings.TrimPrefix(strings.ToLower(*experiment), "fig4"))
	case "fig4", "summary":
		fig3 := runFig3All()
		fig4 := runFig4All()
		fmt.Println(bench.RenderSummary(fig3, fig4))
	case "all":
		runFig1()
		fig3 := runFig3All()
		fmt.Println(bench.RenderTable1(fig3))
		fmt.Println(bench.RenderTable2(fig3))
		fig4 := runFig4All()
		fmt.Println(bench.RenderSummary(fig3, fig4))
	default:
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbbench:", err)
	os.Exit(1)
}
