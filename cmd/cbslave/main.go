// Command cbslave runs one slave node: its cores connect to the
// cluster's master, retrieve assigned chunks (sequential reads from
// the local data directory; multi-threaded ranged retrieval from
// remote cbstore endpoints for stolen jobs), run local reduction, and
// ship their reduction objects.
//
//	cbslave -site local -master masterhost:7071 -cores 8 \
//	        -app knn -params k=1000,dims=3 \
//	        -data-dir ./data/local -remote cloud=cloudhost:7075
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	_ "cloudburst/internal/apps" // register built-in applications
	"cloudburst/internal/cli"
	"cloudburst/internal/cluster"
	"cloudburst/internal/gr"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
)

func main() {
	var (
		site       = flag.String("site", "", "this slave's site name (required)")
		masterAddr = flag.String("master", "", "master address (required)")
		cores      = flag.Int("cores", 1, "worker goroutines (virtual cores)")
		appName    = flag.String("app", "", "application name (required)")
		params     = flag.String("params", "", "application parameters")
		dataDir    = flag.String("data-dir", "", "directory holding this site's data files (required)")
		remotes    = flag.String("remote", "", "remote stores, site=host:port,...")
		threads    = flag.Int("fetch-threads", 8, "retrieval threads for remote chunks")
		autotune   = flag.Bool("fetch-autotune", false, "adapt the retrieval thread count per link with an AIMD controller (-fetch-threads seeds it)")
		rangeKB    = flag.Int("fetch-range-kb", 256, "range size per remote request (KiB)")
		retries    = flag.Int("fetch-retries", 4, "attempts per sub-range before a retrieval fails (1 disables retry)")
		beat       = flag.Duration("heartbeat", 0, "heartbeat the master at this interval (0 disables)")
		prefetch   = flag.Bool("prefetch", false, "pipeline retrieval: fetch the next grant while the current one reduces")
		budgetMB   = flag.Int64("prefetch-budget-mb", 0, "cap on in-flight prefetched data (0 = default 64 MiB, negative = unlimited)")
		cacheMB    = flag.Int64("cache-mb", 0, "chunk cache size (0 disables; useful for re-running over the same data)")
		homeFetch  = flag.Bool("home-fetch", false, "use multi-threaded ranged retrieval for home data (the site's data lives in an object store)")
		bufferAddr = flag.String("buffer", "", "site burst-buffer address (a cbstore -mode buffer daemon) consulted before the home store; needs -home-fetch")
		join       = flag.Bool("join", false, "join a running cluster mid-run (elastic scale-up) instead of counting against the deploy-time membership")
		ckptJobs   = flag.Int("checkpoint-jobs", 0, "ship a partial-reduction checkpoint to the master every N processed jobs (0 disables; bounds work lost to spot revocation)")
		syncMode   = flag.String("sync-mode", "", "global-reduction sync: monolithic, streamed, streamed-parallel (default), or streamed-sharded (must match the master's)")
	)
	flag.Parse()
	if *site == "" || *masterAddr == "" || *appName == "" || *dataDir == "" {
		fatal(fmt.Errorf("-site, -master, -app, and -data-dir are required"))
	}

	p, err := cli.ParseParams(*params)
	if err != nil {
		fatal(err)
	}
	app, err := gr.New(*appName, p)
	if err != nil {
		fatal(err)
	}
	addrs, err := cli.ParseSiteAddrs(*remotes)
	if err != nil {
		fatal(err)
	}
	remoteStores := make(map[string]store.Store, len(addrs))
	for s, addr := range addrs {
		c := store.NewClient(addr, nil)
		defer c.Close()
		remoteStores[s] = c
	}
	home := store.NewLocal(*dataDir)
	defer home.Close()

	retry := store.DefaultRetryPolicy()
	retry.MaxAttempts = *retries
	var cache *store.ChunkCache
	if *cacheMB > 0 {
		cache = store.NewChunkCache(*cacheMB<<20, store.NewBufferPool())
	}
	budget := *budgetMB
	if budget > 0 {
		budget <<= 20
	}
	slaveCfg := cluster.SlaveConfig{
		Site: *site, App: app, Cores: *cores,
		HomeStore: home, RemoteStores: remoteStores,
		Fetch: store.FetchOptions{
			Threads: *threads, RangeSize: *rangeKB << 10, Retry: retry,
		},
		FetchAutotune: *autotune,
		HomeFetch:     *homeFetch,
		Prefetch:      *prefetch, PrefetchBudget: budget,
		Cache:             cache,
		CheckpointJobs:    *ckptJobs,
		HeartbeatInterval: *beat,
		Join:              *join,
		Clock:             netsim.Real(),
		SyncMode:          *syncMode,
	}
	if *bufferAddr != "" {
		if !*homeFetch {
			fatal(fmt.Errorf("-buffer needs -home-fetch (the buffer fronts an object-store home)"))
		}
		bc := store.NewClient(*bufferAddr, nil)
		defer bc.Close()
		slaveCfg.Buffer = bc
	}
	slave, err := cluster.NewSlave(slaveCfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cbslave: site %s, %d cores, app %s, master %s\n", *site, *cores, *appName, *masterAddr)
	stats, err := slave.Run(*masterAddr, net.Dial)
	if err != nil {
		fatal(err)
	}
	s := stats.Snapshot()
	fmt.Printf("cbslave: done: jobs=%d stolen=%d units=%d proc=%v retr=%v sync=%v\n",
		s.JobsProcessed, s.JobsStolen, s.UnitsReduced,
		s.Processing.Round(time.Millisecond), s.Retrieval.Round(time.Millisecond),
		s.Sync.Round(time.Millisecond))
	if s.PrefetchedJobs > 0 || s.CacheHits > 0 || s.CacheMisses > 0 {
		fmt.Printf("cbslave: pipeline: prefetched=%d hidden=%v skips=%d cache=%d/%d\n",
			s.PrefetchedJobs, s.PrefetchSavedEmu.Round(time.Millisecond),
			s.PrefetchSkips, s.CacheHits, s.CacheHits+s.CacheMisses)
	}
	if s.AutotuneSamples > 0 || s.HintsReceived > 0 {
		fmt.Printf("cbslave: adaptive: tuned=%d raises=%d drops=%d hints=%d warmed=%d denied=%d\n",
			s.AutotuneSamples, s.AutotuneRaises, s.AutotuneDrops,
			s.HintsReceived, s.HintsWarmed, s.HintsDenied)
	}
	if s.BufferHits > 0 || s.BufferMisses > 0 {
		fmt.Printf("cbslave: buffer: hits=%d misses=%d bytes=%d\n",
			s.BufferHits, s.BufferMisses, s.BufferBytes)
	}
	if chunks, bytes := slave.HintWaste(); chunks > 0 {
		fmt.Printf("cbslave: hint waste: %d chunk(s), %d bytes warmed but never granted\n", chunks, bytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbslave:", err)
	os.Exit(1)
}
