// Command cbmaster runs one cluster's master node: it registers with
// the head, keeps the cluster's job pool topped up on demand, serves
// jobs to slaves, combines their reduction objects, and ships the
// cluster result.
//
//	cbmaster -site local -head headhost:7070 -listen :7071 \
//	         -app knn -params k=1000,dims=3 -slaves 4 -cores 32
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	_ "cloudburst/internal/apps" // register built-in applications
	"cloudburst/internal/cli"
	"cloudburst/internal/cluster"
	"cloudburst/internal/gr"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
)

func main() {
	var (
		site     = flag.String("site", "", "this cluster's site name (required)")
		headAddr = flag.String("head", "", "head node address (required)")
		listen   = flag.String("listen", ":7071", "listen address for slaves")
		appName  = flag.String("app", "", "application name (required)")
		params   = flag.String("params", "", "application parameters")
		slaves   = flag.Int("slaves", 1, "slave worker connections expected (sum of slave -cores)")
		cores    = flag.Int("cores", 0, "total cores (reported to the head; defaults to -slaves)")
		batch    = flag.Int("batch", 0, "jobs per head request (default 2x cores)")
		hints    = flag.Int("hint-depth", 0, "piggyback up to this many likely-next jobs as prefetch hints on every grant (0 disables)")
		beat     = flag.Duration("heartbeat", 0, "heartbeat the head and declare silent slaves lost after 3 missed intervals (0 disables)")
		buffer   = flag.String("buffer", "", "site burst-buffer address (a cbstore -mode buffer daemon) to stage hinted chunks into (0 disables)")
		stageMB  = flag.Int64("stage-budget-mb", 0, "cap on bytes staged into the buffer over the run (0 = unlimited)")
		syncMode = flag.String("sync-mode", "", "global-reduction sync: monolithic, streamed, streamed-parallel (default), or streamed-sharded (must match the head's)")
		quiet    = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	if *site == "" || *headAddr == "" || *appName == "" {
		fatal(fmt.Errorf("-site, -head, and -app are required"))
	}
	if *cores == 0 {
		*cores = *slaves
	}

	p, err := cli.ParseParams(*params)
	if err != nil {
		fatal(err)
	}
	app, err := gr.New(*appName, p)
	if err != nil {
		fatal(err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	masterCfg := cluster.MasterConfig{
		Site: *site, App: app, Cores: *cores, Slaves: *slaves, Batch: *batch,
		HintDepth: *hints,
		Clock: netsim.Real(), Logf: logf,
		HeartbeatInterval: *beat,
		StageBudget:       *stageMB << 20,
		SyncMode:          *syncMode,
	}
	if *buffer != "" {
		bc := store.NewClient(*buffer, nil)
		defer bc.Close()
		masterCfg.Buffer = bc
	}
	master, err := cluster.NewMaster(masterCfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cbmaster: site %s serving slaves on %s, head %s\n", *site, ln.Addr(), *headAddr)
	final, err := master.Run(*headAddr, net.Dial, ln)
	if err != nil {
		fatal(err)
	}
	if s, ok := app.(gr.Summarizer); ok {
		if digest, err := s.Summarize(final); err == nil {
			fmt.Println("cbmaster: final result:", digest)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbmaster:", err)
	os.Exit(1)
}
