// Package cloudburst is a framework for data-intensive computing with
// cloud bursting: MapReduce-style processing — expressed through the
// generalized reduction API — over a data set split between a local
// cluster and cloud storage, using compute resources at both ends,
// with pooling-based load balancing and inter-cluster work stealing.
//
// It is an independent reproduction of the system described in
// T. Bicer, D. Chiu, G. Agrawal, "A Framework for Data-Intensive
// Computing with Cloud Bursting", IEEE CLUSTER 2011.
//
// # Programming model
//
// An application implements App: a fixed record size, a per-unit
// compute cost, and a Reduction — the reduction object updated in
// place by local reduction (the paper's proc(e)) and folded by global
// reduction:
//
//	type App interface {
//		Name() string
//		RecordSize() int
//		NewReduction() Reduction
//		UnitCost() time.Duration
//	}
//
// Ready-made applications (k-nearest neighbors, k-means, PageRank,
// word count) live in this package's apps subtree and register
// themselves with the registry; NewApp instantiates them by name.
//
// # Running
//
// Deploy runs a complete hybrid job in process: a head node holding
// the global job pool, one master per site, and each site's virtual
// cores as slaves, all communicating over (optionally shaped) loopback
// TCP. For real multi-node deployments, use the cbhead / cbmaster /
// cbslave commands, which speak the same protocol over the network.
package cloudburst

import (
	"cloudburst/internal/advisor"
	"cloudburst/internal/chunk"
	"cloudburst/internal/cluster"
	"cloudburst/internal/driver"
	"cloudburst/internal/elastic"
	"cloudburst/internal/faults"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/workload"

	// The built-in applications (knn, kmeans, pagerank, wordcount)
	// register themselves with the registry on import.
	"cloudburst/internal/apps"
)

// Core generalized-reduction API.
type (
	// App couples a record format with its reduction; see package gr.
	App = gr.App
	// Reduction is a reduction object: Update (local reduction),
	// Merge (global reduction), and a codec.
	Reduction = gr.Reduction
	// Engine runs local reduction over chunk data.
	Engine = gr.Engine
	// EngineOptions configure an Engine.
	EngineOptions = gr.EngineOptions
	// Summarizer renders final results.
	Summarizer = gr.Summarizer
)

// NewEngine builds a local-reduction engine for app.
func NewEngine(app App, opts EngineOptions) *Engine { return gr.NewEngine(app, opts) }

// NewApp instantiates a registered application ("knn", "kmeans",
// "pagerank", "wordcount") from string parameters.
func NewApp(name string, params map[string]string) (App, error) { return gr.New(name, params) }

// RegisterApp installs a custom application factory.
func RegisterApp(name string, f func(params map[string]string) (App, error)) {
	gr.Register(name, f)
}

// Apps lists the registered application names.
func Apps() []string { return gr.Apps() }

// MergeAll folds reduction objects into one (global reduction).
func MergeAll(app App, objs []Reduction) (Reduction, error) { return gr.MergeAll(app, objs) }

// Data organization.
type (
	// Index is the data set metadata: files, chunks, units.
	Index = chunk.Index
	// FileMeta names one data file and its site.
	FileMeta = chunk.FileMeta
	// Chunk is one logical chunk (one job).
	Chunk = chunk.Chunk
	// BuildOptions configure index generation.
	BuildOptions = chunk.BuildOptions
)

// BuildIndex scans data files and produces the index the head node's
// job pool is generated from.
func BuildIndex(stores map[string]Store, files []FileMeta, opts BuildOptions) (*Index, error) {
	return chunk.Build(stores, files, opts)
}

// ReadIndex deserializes an index file.
var ReadIndex = chunk.ReadIndex

// Storage substrate.
type (
	// Store is the read-only object store interface.
	Store = store.Store
	// MemStore is an in-memory store.
	MemStore = store.Mem
	// LocalStore is a directory-backed store.
	LocalStore = store.Local
	// FetchOptions tune multi-threaded ranged retrieval.
	FetchOptions = store.FetchOptions
	// ChunkCache is a byte-capped, refcounted LRU over fetched chunks;
	// install one per site (SiteSpec.Cache) to keep chunks warm across
	// the iterations of a multi-pass algorithm.
	ChunkCache = store.ChunkCache
	// ChunkKey identifies one cached chunk (site, file, offset, length).
	ChunkKey = store.ChunkKey
	// CacheStats counts cache hits, misses, evictions, and bytes saved.
	CacheStats = store.CacheStats
	// BufferPool recycles fetch buffers through size-classed sync.Pools.
	BufferPool = store.BufferPool
	// PoolStats counts buffer-pool gets, misses, and puts.
	PoolStats = store.PoolStats
	// Autotuner is the per-link AIMD controller over retrieval thread
	// counts; install one via FetchOptions.Tuner (shared by every fetch
	// on the same link) or let the cluster layer do it with
	// SlaveConfig.FetchAutotune / DeployConfig.FetchAutotune.
	Autotuner = store.Autotuner
	// AutotuneStats is a point-in-time controller snapshot.
	AutotuneStats = store.AutotuneStats
	// SiteBuffer is the site-shared burst buffer: a chunk cache service
	// between a site's slaves and its backing object store, with
	// singleflight read-through and master-driven staging. Install one
	// per site (SiteSpec.Buffer) or let DeployConfig.BufferBytes build
	// per-run buffers.
	SiteBuffer = store.SiteBuffer
	// SiteBufferConfig parameterizes NewSiteBuffer.
	SiteBufferConfig = store.SiteBufferConfig
	// BufferStats is a point-in-time site-buffer counter snapshot.
	BufferStats = store.BufferStats
)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return store.NewMem() }

// NewLocalStore returns a store over the files in dir.
func NewLocalStore(dir string) *LocalStore { return store.NewLocal(dir) }

// NewChunkCache builds a chunk cache holding at most capBytes of chunk
// data; evicted and released buffers recycle through pool (nil is
// fine). A cap below one disables caching but keeps recycling.
func NewChunkCache(capBytes int64, pool *BufferPool) *ChunkCache {
	return store.NewChunkCache(capBytes, pool)
}

// NewBufferPool builds an empty size-classed buffer pool.
func NewBufferPool() *BufferPool { return store.NewBufferPool() }

// NewAutotuner builds an AIMD fetch autotuner starting at initial
// concurrent readers and growing to at most max (values below 1 pick
// defaults; see store.NewAutotuner).
func NewAutotuner(initial, max int) *Autotuner { return store.NewAutotuner(initial, max) }

// NewSiteBuffer builds a site-shared burst buffer fronting the backing
// store described by cfg.
func NewSiteBuffer(cfg SiteBufferConfig) *SiteBuffer { return store.NewSiteBuffer(cfg) }

// Cluster runtime.
type (
	// DeployConfig describes an in-process hybrid deployment.
	DeployConfig = cluster.DeployConfig
	// SiteSpec describes one cluster of a deployment.
	SiteSpec = cluster.SiteSpec
	// RunResult carries the final object and the run report.
	RunResult = cluster.RunResult
	// RunReport is the per-run metrics summary.
	RunReport = metrics.RunReport
	// ClusterReport is one cluster's metrics.
	ClusterReport = metrics.ClusterReport
	// RetrievalReport summarizes retrieval-pipeline activity (cache,
	// prefetch overlap, buffer pooling) for a run.
	RetrievalReport = metrics.RetrievalReport
)

// Deploy executes one complete job across the configured sites and
// returns the globally reduced result with its run report.
func Deploy(cfg DeployConfig) (*RunResult, error) { return cluster.Run(cfg) }

// Elastic bursting: deadline/cost-driven dynamic provisioning.
type (
	// ElasticConfig parameterizes the head-side scaling controller;
	// install one via DeployConfig.Elastic to scale a site's worker
	// count against a run deadline and cost model mid-run.
	ElasticConfig = elastic.Config
	// ElasticController watches per-site progress and issues scale-up
	// (boot) and scale-down (drain) decisions.
	ElasticController = elastic.Controller
	// ScaleDecision is one scaling action (Delta > 0 boots workers,
	// Delta < 0 drains them).
	ScaleDecision = elastic.Decision
	// ElasticReport summarizes a run's membership churn, deadline
	// outcome, and cost accounting.
	ElasticReport = metrics.ElasticReport
	// ScaleEvent records one controller decision.
	ScaleEvent = metrics.ScaleEvent
)

// NewElasticController builds a scaling controller; the cluster layer
// calls this itself when DeployConfig.Elastic is set.
func NewElasticController(cfg ElasticConfig) *ElasticController { return elastic.New(cfg) }

// History-driven burst advisor: persisted run records and plan scoring.
type (
	// BurstAdvisorStore is the append-only JSONL database of run
	// records the advisor plans from.
	BurstAdvisorStore = advisor.Store
	// BurstRecord is one completed run's compact history entry.
	BurstRecord = advisor.Record
	// BurstRequest describes the upcoming run (app, link class, data
	// size, deadline, budget) a plan is scored for.
	BurstRequest = advisor.Request
	// BurstPlan is the advisor's recommendation; its CloudCores seeds
	// ElasticConfig.SeedWorkers to warm-start the controller.
	BurstPlan = advisor.Plan
	// BurstExtractOptions carries run context into RecordRun.
	BurstExtractOptions = advisor.ExtractOptions
)

// OpenBurstHistory opens (creating if needed) the run-history database
// in dir.
func OpenBurstHistory(dir string) (*BurstAdvisorStore, error) { return advisor.Open(dir) }

// AdviseBurst scores the request against matched history and returns a
// burst plan with rationale.
func AdviseBurst(history []BurstRecord, req BurstRequest) BurstPlan {
	return advisor.Advise(history, req)
}

// RecordRun projects a completed run's report into a history record
// (append it to a BurstAdvisorStore to close the feedback loop).
func RecordRun(rep *RunReport, opt BurstExtractOptions) (*BurstRecord, error) {
	return advisor.FromReport(rep, opt)
}

// Spot preemption tolerance.
type (
	// RevocationSpec shapes a deterministic spot-revocation schedule.
	RevocationSpec = faults.RevocationSpec
	// RevocationTrace is the materialized schedule; install one via
	// DeployConfig.Revocations to preempt provisioned spot workers.
	RevocationTrace = faults.RevocationTrace
	// RevocationEvent is one scheduled revocation (with an optional
	// warning window).
	RevocationEvent = faults.RevocationEvent
	// PreemptionReport summarizes revocations, drains, checkpoints,
	// and the re-execution they saved or caused.
	PreemptionReport = metrics.PreemptionReport
)

// NewRevocationTrace materializes a reproducible revocation schedule:
// the same seed and spec always produce the same events.
func NewRevocationTrace(seed int64, spec RevocationSpec) *RevocationTrace {
	return faults.NewRevocationTrace(seed, spec)
}

// ErrRevoked marks a slave killed by spot revocation; the deployment
// harness recovers its work instead of failing the run.
var ErrRevoked = cluster.ErrRevoked

// ElasticCost prices instance time (emulated seconds, per-second
// billing) and cross-site egress under the given rates.
func ElasticCost(instanceSecs float64, egressBytes int64, instanceRate, egressRate float64) (instUSD, egressUSD, totalUSD float64) {
	return elastic.Cost(instanceSecs, egressBytes, instanceRate, egressRate)
}

// Fault injection and recovery.
type (
	// FaultPlan is a seeded, deterministic fault-injection plan
	// consulted by simulated stores, store servers, and shaped links.
	FaultPlan = faults.Plan
	// FaultSpec selects which requests fault and how.
	FaultSpec = faults.Spec
	// FaultKind is a fault class (transient, reset, stall, slowdown).
	FaultKind = faults.Kind
	// RetryPolicy retries transient store failures with capped
	// exponential backoff and deterministic jitter.
	RetryPolicy = store.RetryPolicy
	// SimS3 is the simulated object store view (latency, per-stream
	// and aggregate bandwidth shaping, optional fault injection).
	SimS3 = store.SimS3
	// FaultReport summarizes injection and recovery for a run.
	FaultReport = metrics.FaultReport
)

// Fault kinds.
const (
	FaultTransient = faults.Transient
	FaultReset     = faults.Reset
	FaultStall     = faults.Stall
	FaultSlowDown  = faults.SlowDown
)

// NewFaultPlan builds a reproducible fault plan: the same seed and
// specs always produce the same fault sequence.
func NewFaultPlan(seed int64, specs ...FaultSpec) *FaultPlan {
	return faults.NewPlan(seed, specs...)
}

// NewSimS3 wraps a backing store with object-store access shaping;
// chain WithFaults to inject failures from a plan.
var NewSimS3 = store.NewSimS3

// DefaultRetryPolicy is a sensible retrieval retry policy: 4 attempts,
// 20 ms base backoff, 1 s cap.
func DefaultRetryPolicy() RetryPolicy { return store.DefaultRetryPolicy() }

// Retryable reports whether an error is worth retrying (injected
// transients, S3-style SlowDown throttles, timeouts, resets).
func Retryable(err error) bool { return store.Retryable(err) }

// Iterative algorithms.
type (
	// Iterative drives repeated deployments until convergence.
	Iterative = driver.Iterative
	// IterResult summarizes an iterative run.
	IterResult = driver.Result
	// StepFunc consumes one iteration's globally reduced object.
	StepFunc = driver.StepFunc
)

// KMeansDriver builds an Iterative running Lloyd's algorithm to
// convergence over repeated deployments.
func KMeansDriver(deploy DeployConfig, tolerance float64) (*Iterative, error) {
	return driver.KMeans(deploy, tolerance)
}

// PageRankDriver builds an Iterative running PageRank power iterations
// to convergence.
func PageRankDriver(deploy DeployConfig, tolerance float64) (*Iterative, error) {
	return driver.PageRank(deploy, tolerance)
}

// Network emulation and pacing.
type (
	// Clock is the scalable virtual clock pacing a deployment.
	Clock = netsim.Clock
	// Link is a network path profile (latency + bandwidth).
	Link = netsim.Link
)

// ScaledClock returns a clock compressing emulated time by scale
// (1.0 = real time; 0 disables pacing).
func ScaledClock(scale float64) Clock { return netsim.Scaled(scale) }

// Built-in applications and their result accessors.
type (
	// KNN searches the k nearest neighbors of a fixed query point.
	KNN = apps.KNN
	// KMeans runs one Lloyd iteration per job.
	KMeans = apps.KMeans
	// PageRank runs one power iteration per job.
	PageRank = apps.PageRank
	// WordCount counts fixed-width text records.
	WordCount = apps.WordCount
	// Scored is one (id, score) element of a knn result.
	Scored = gr.Scored
)

// Neighborer is implemented by knn reduction objects.
type Neighborer interface{ Neighbors() []Scored }

// Meaner is implemented by kmeans reduction objects.
type Meaner interface {
	Means() [][]float64
	Counts() []int64
}

// Ranker is implemented by pagerank reduction objects.
type Ranker interface{ NextRanks() []float64 }

// Counter is implemented by wordcount reduction objects.
type Counter interface{ Counts() map[string]int64 }

// Workload generation.
type (
	// Generator produces deterministic synthetic records.
	Generator = workload.Generator
	// PointsGen generates d-dimensional float32 points.
	PointsGen = workload.Points
	// EdgesGen generates a link graph as (src, dst) records.
	EdgesGen = workload.Edges
	// WordsGen generates fixed-width text records.
	WordsGen = workload.Words
	// DataSpec shapes a materialized data set.
	DataSpec = workload.Spec
)

// Materialize generates a data set into per-site memory stores.
func Materialize(gen Generator, spec DataSpec, stores map[string]*MemStore) ([]FileMeta, error) {
	return workload.Materialize(gen, spec, stores)
}
