// Benchmarks regenerating the paper's evaluation. One benchmark per
// table/figure; each iteration executes the experiment end-to-end
// through the full middleware (head, masters, paced slave cores,
// shaped links) at the full calibrated workload sizes — identical to
// `cbbench`. A complete `go test -bench=.` pass takes several minutes;
// its emulated-seconds metrics read directly against the paper's
// figures (see EXPERIMENTS.md).
//
// Custom metrics reported alongside ns/op:
//
//	emu-s/run      emulated seconds of the measured configuration
//	slowdown-%     mean hybrid slowdown vs env-local (paper: 15.55)
//	speedup-%      mean per-doubling speedup (paper: 81)
//	stolen-%       share of hybrid jobs processed across sites
package cloudburst_test

import (
	"sync"
	"testing"

	"cloudburst/internal/bench"
)

// fig3Memo shares one full Fig3 sweep per application across the
// benchmarks that derive from it (Fig3x, Table1, Table2), so the
// table benchmarks do not re-run 15 experiments each. The first
// benchmark touching an application pays its wall time.
var fig3Memo struct {
	mu sync.Mutex
	m  map[string][]bench.EnvResult
}

func fig3Results(b *testing.B, spec bench.AppSpec) []bench.EnvResult {
	b.Helper()
	spec = spec.Shrink(benchDivisor)
	fig3Memo.mu.Lock()
	defer fig3Memo.mu.Unlock()
	if fig3Memo.m == nil {
		fig3Memo.m = make(map[string][]bench.EnvResult)
	}
	if r, ok := fig3Memo.m[spec.Name]; ok {
		return r
	}
	results, err := bench.Fig3(spec, benchSim(), nil)
	if err != nil {
		b.Fatal(err)
	}
	fig3Memo.m[spec.Name] = results
	return results
}

// benchDivisor optionally shrinks the calibrated workloads; 1 runs the
// experiments at full calibrated size (the reproduction setting).
const benchDivisor = 1

func benchSim() bench.SimParams {
	// The calibrated environment with each application's preferred
	// clock scale (set per app so real host overhead stays a small
	// fraction of emulated time).
	return bench.DefaultSim()
}

func benchFig3(b *testing.B, spec bench.AppSpec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		results := fig3Results(b, spec)
		var emu float64
		for _, r := range results {
			emu += r.Report.TotalWall.Seconds()
		}
		b.ReportMetric(emu/float64(len(results)), "emu-s/run")
		b.ReportMetric(bench.MeanHybridSlowdownPct([][]bench.EnvResult{results}), "slowdown-%")
	}
}

func benchFig4(b *testing.B, spec bench.AppSpec) {
	b.Helper()
	spec = spec.Shrink(benchDivisor)
	sim := benchSim()
	for i := 0; i < b.N; i++ {
		results, err := bench.Fig4(spec, sim, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[len(results)-1].Report.TotalWall.Seconds(), "emu-s/run")
		b.ReportMetric(bench.MeanSpeedupPct([][]bench.EnvResult{results}), "speedup-%")
	}
}

// BenchmarkFig3a regenerates Figure 3(a): knn over the five
// environment configurations.
func BenchmarkFig3a(b *testing.B) { benchFig3(b, bench.KNNSpec()) }

// BenchmarkFig3b regenerates Figure 3(b): kmeans.
func BenchmarkFig3b(b *testing.B) { benchFig3(b, bench.KMeansSpec()) }

// BenchmarkFig3c regenerates Figure 3(c): pagerank.
func BenchmarkFig3c(b *testing.B) { benchFig3(b, bench.PageRankSpec()) }

// BenchmarkTable1 regenerates Table I (job assignment); the jobs
// metric is the fraction of hybrid-run jobs that were stolen.
func BenchmarkTable1(b *testing.B) {
	specs := []bench.AppSpec{bench.KNNSpec(), bench.KMeansSpec(), bench.PageRankSpec()}
	for i := 0; i < b.N; i++ {
		var stolen, processed int
		for _, spec := range specs {
			results := fig3Results(b, spec)
			for _, r := range results {
				if r.Env == "env-local" || r.Env == "env-cloud" {
					continue
				}
				for _, c := range r.Report.Clusters {
					stolen += c.Workers.JobsStolen
					processed += c.Workers.JobsProcessed
				}
			}
		}
		b.ReportMetric(float64(stolen)/float64(processed)*100, "stolen-%")
	}
}

// BenchmarkTable2 regenerates Table II (slowdowns): the mean hybrid
// slowdown across all three applications.
func BenchmarkTable2(b *testing.B) {
	specs := []bench.AppSpec{bench.KNNSpec(), bench.KMeansSpec(), bench.PageRankSpec()}
	for i := 0; i < b.N; i++ {
		var all [][]bench.EnvResult
		for _, spec := range specs {
			all = append(all, fig3Results(b, spec))
		}
		b.ReportMetric(bench.MeanHybridSlowdownPct(all), "slowdown-%")
	}
}

// BenchmarkFig4a regenerates Figure 4(a): knn scalability.
func BenchmarkFig4a(b *testing.B) { benchFig4(b, bench.KNNSpec()) }

// BenchmarkFig4b regenerates Figure 4(b): kmeans scalability.
func BenchmarkFig4b(b *testing.B) { benchFig4(b, bench.KMeansSpec()) }

// BenchmarkFig4c regenerates Figure 4(c): pagerank scalability.
func BenchmarkFig4c(b *testing.B) { benchFig4(b, bench.PageRankSpec()) }

// BenchmarkFig1 regenerates the Figure 1 comparison: generalized
// reduction vs Map-Reduce (with and without combiner) on the same
// workload. The metric is Map-Reduce's peak buffered intermediate
// pairs — generalized reduction's is zero by construction.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig1(200_000, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Engine == "map-reduce" {
				b.ReportMetric(float64(r.PeakPairs), "mr-peak-pairs")
			}
		}
	}
}
