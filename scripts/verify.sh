#!/usr/bin/env bash
# Full verification: build, vet, all tests, plus a race pass over the
# concurrency-heavy packages (cluster, store, chunk, driver) and smoke
# runs of the overlap ablation and the autotune grid (heavily shrunk)
# to prove the retrieval pipeline and the AIMD fetch controller
# end-to-end. This is a superset of the tier-1 gate in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/cluster/ ./internal/store/ ./internal/chunk/ ./internal/driver/ ./internal/elastic/ ./internal/gr/ ./internal/advisor/
# Dynamic membership (mid-run joins, drain-vs-steal races, elastic
# end-to-end) is the most race-prone surface, and streamed sync adds
# concurrent merges fed from connection handlers: run both twice under
# the race detector so a lucky interleaving can't hide a regression.
go test -race -count=2 -run 'Join|Drain|Elastic|Spot|Preempt|Checkpoint|Revocation|Buffer|Merge|Sync' ./internal/cluster/ ./internal/gr/
# The wire codec owns every byte on every connection: fuzz the decoder
# briefly (corrupt frames must error, never panic) and run the codec
# microbench as a correctness smoke (both codecs, round trips checked,
# full-pipeline digest equality binary vs gob).
go test -run '^$' -fuzz FuzzDecode -fuzztime 5s ./internal/wire/
go run ./cmd/cbbench -experiment wire -records-divisor 100 -scale 0.0001 -benchtime 50ms >/dev/null
go run ./cmd/cbbench -experiment overlap -records-divisor 100 -scale 0.0001 >/dev/null
# Digest invariance across the autotune grid; win ratios are asserted
# by scripts/bench.sh at full benchmark scale, not at smoke scale.
go run ./cmd/cbbench -experiment autotune -records-divisor 100 -scale 0.0001 >/dev/null
# Elastic deadline sweep at smoke scale: validates dynamic membership
# digests (no lost/double-counted chunk across joins and drains); the
# deadline/cost win is asserted by scripts/bench.sh at real scale.
go run ./cmd/cbbench -experiment elastic -records-divisor 100 -scale 0.0001 >/dev/null
# Spot preemption sweep at smoke scale: validates that revocation
# recovery (checkpoint adoption, drain flushes, full re-execution)
# never loses or double-counts a chunk. At this scale real loopback
# latencies dwarf the scaled warning window, so drain completions and
# the wall/cost win are asserted by scripts/bench.sh at real scale.
go run ./cmd/cbbench -experiment spot -records-divisor 100 -scale 0.0001 >/dev/null
# Burst-buffer ablation at smoke scale: validates digest invariance of
# the site buffer tier (read-through, staging, tiered fallback); the
# wall-clock/egress win is asserted by scripts/bench.sh at real scale,
# where emulated S3 latency dominates loopback noise.
go run ./cmd/cbbench -experiment buffer -records-divisor 100 -scale 0.0001 >/dev/null
# Sync ablation at smoke scale: validates digest invariance across
# monolithic and the three streamed merge strategies (transport and
# merge scheduling must never change results); the wall-clock win and
# merge concurrency are asserted by scripts/bench.sh at real scale.
go run ./cmd/cbbench -experiment sync -records-divisor 100 -scale 0.0001 >/dev/null
# Advisor warm-vs-cold sequence at smoke scale: validates that the
# history store round-trips records, the warm-started controller keeps
# digests identical to cold-start, and the prediction feedback lands.
# The ramp/wall/cost win is asserted by scripts/bench.sh at real scale.
# ADVISOR_HISTORY_DIR keeps the history database after the run (CI
# uploads it as an artifact); unset, it lands in a throwaway tempdir.
ADVHIST="${ADVISOR_HISTORY_DIR:-}"
if [ -z "$ADVHIST" ]; then
	ADVHIST="$(mktemp -d)"
	trap 'rm -rf "$ADVHIST"' EXIT
fi
go run ./cmd/cbbench -experiment advisor -records-divisor 100 -scale 0.0001 -history-dir "$ADVHIST" >/dev/null
# cbadvise must read the history the smoke run just wrote and print a
# burst plan for the same app/link class without running anything.
go run ./cmd/cbadvise -history-dir "$ADVHIST" -list | grep -q knn
go run ./cmd/cbadvise -history-dir "$ADVHIST" -app knn -env env-50/50 -deadline 60s | grep -q advisor
echo "verify: ok"
