#!/usr/bin/env bash
# Full verification: build, vet, all tests, plus a race pass over the
# concurrency-heavy packages (cluster, store). This is a superset of
# the tier-1 gate in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/cluster/ ./internal/store/
echo "verify: ok"
