#!/usr/bin/env bash
# Full verification: build, vet, all tests, plus a race pass over the
# concurrency-heavy packages (cluster, store, chunk, driver) and smoke
# runs of the overlap ablation and the autotune grid (heavily shrunk)
# to prove the retrieval pipeline and the AIMD fetch controller
# end-to-end. This is a superset of the tier-1 gate in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/cluster/ ./internal/store/ ./internal/chunk/ ./internal/driver/
go run ./cmd/cbbench -experiment overlap -records-divisor 100 -scale 0.0001 >/dev/null
# Digest invariance across the autotune grid; win ratios are asserted
# by scripts/bench.sh at full benchmark scale, not at smoke scale.
go run ./cmd/cbbench -experiment autotune -records-divisor 100 -scale 0.0001 >/dev/null
echo "verify: ok"
