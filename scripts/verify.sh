#!/usr/bin/env bash
# Full verification: build, vet, all tests, plus a race pass over the
# concurrency-heavy packages (cluster, store, driver) and a smoke run
# of the overlap ablation (heavily shrunk) to prove the retrieval
# pipeline end-to-end. This is a superset of the tier-1 gate in
# ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/cluster/ ./internal/store/ ./internal/driver/
go run ./cmd/cbbench -experiment overlap -records-divisor 100 -scale 0.0001 >/dev/null
echo "verify: ok"
