#!/usr/bin/env bash
# Reproduce the retrieval-pipeline experiments and leave machine-
# readable records:
#
#   - `cbbench -experiment overlap` (prefetch on/off x chunk cache
#     on/off, on knn single-pass and pagerank power iterations, all
#     data in S3) -> BENCH_overlap.json
#   - `cbbench -experiment autotune` (static-2 / static-8 fetch threads
#     vs the AIMD controller, env-cloud and split deployments,
#     digest-checked, with the controller's win ratios enforced)
#     -> BENCH_autotune.json
#   - `cbbench -experiment elastic` (deadline sweep: local-only misses
#     the deadline, the elastic controller bursts to meet it at lower
#     cost than an over-provisioned static fleet, and a drain variant
#     sheds surplus workers mid-run; digest-checked, win enforced)
#     -> BENCH_elastic.json
#   - `cbbench -experiment spot` (seeded revocation trace replayed
#     against warned drains, checkpointed recovery, and full
#     re-execution; digest-checked, checkpoint deadline/requeue win
#     enforced) -> BENCH_spot.json
#   - `cbbench -experiment wire` (binary codec vs gob baseline:
#     encode+decode microbench on job-grant and read-response round
#     trips, plus a digest-checked full-pipeline comparison; >=2x
#     throughput and >=5x allocs/op reduction enforced)
#     -> BENCH_wire.json
#   - `cbbench -experiment buffer` (site burst-buffer tier: no-buffer
#     vs cold-buffer vs master-staged buffer on knn single-pass and
#     pagerank power iterations, all data in S3; digest-checked, with
#     the staged variant's wall-clock and S3-egress win enforced on
#     the multi-iteration run) -> BENCH_buffer.json
#   - `cbbench -experiment sync` (global-reduction sync ablation:
#     monolithic single-frame baseline vs streamed part frames with
#     serial / parallel / shard-level merging, on the large-rank-vector
#     pagerank in env-cloud; digest-checked, with the streamed-parallel
#     and streamed-sharded wall-clock wins and merge concurrency
#     enforced) -> BENCH_sync.json
#   - `cbbench -experiment advisor` (history-driven burst advisor:
#     cold-start elastic run recorded into the history database, then
#     two advisor-planned runs warm-started from it; digest-checked,
#     with the warm runs' reactive-ramp elimination and
#     equal-or-better wall clock enforced) -> BENCH_advisor.json
#
# Usage:
#   scripts/bench.sh                # default: -records-divisor 10
#   DIVISOR=1 scripts/bench.sh      # full-size (slow, paced run)
#   DIVISOR=50 ITERS=5 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DIVISOR="${DIVISOR:-10}"
ITERS="${ITERS:-3}"
OUT="${OUT:-BENCH_overlap.json}"
AUTOTUNE_OUT="${AUTOTUNE_OUT:-BENCH_autotune.json}"
ELASTIC_OUT="${ELASTIC_OUT:-BENCH_elastic.json}"
SPOT_OUT="${SPOT_OUT:-BENCH_spot.json}"
WIRE_OUT="${WIRE_OUT:-BENCH_wire.json}"
BUFFER_OUT="${BUFFER_OUT:-BENCH_buffer.json}"
SYNC_OUT="${SYNC_OUT:-BENCH_sync.json}"
ADVISOR_OUT="${ADVISOR_OUT:-BENCH_advisor.json}"
HISTORY_DIR="${HISTORY_DIR:-.cloudburst-history}"
BENCHTIME="${BENCHTIME:-1s}"
# The sync ablation needs pages >= 2 shard units for shard-level merge
# parallelism to engage, which caps its divisor at 9 (see
# internal/gr/combiners.go); it runs one notch below the default.
SYNC_DIVISOR="${SYNC_DIVISOR:-8}"

go run ./cmd/cbbench -experiment overlap \
	-records-divisor "$DIVISOR" \
	-overlap-iters "$ITERS" \
	-json "$OUT"

go run ./cmd/cbbench -experiment autotune \
	-records-divisor "$DIVISOR" \
	-check-win \
	-json "$AUTOTUNE_OUT"

go run ./cmd/cbbench -experiment elastic \
	-records-divisor "$DIVISOR" \
	-check-win \
	-json "$ELASTIC_OUT"

go run ./cmd/cbbench -experiment spot \
	-records-divisor "$DIVISOR" \
	-check-win \
	-json "$SPOT_OUT"

go run ./cmd/cbbench -experiment wire \
	-records-divisor "$DIVISOR" \
	-benchtime "$BENCHTIME" \
	-check-win \
	-json "$WIRE_OUT"

go run ./cmd/cbbench -experiment buffer \
	-records-divisor "$DIVISOR" \
	-overlap-iters "$ITERS" \
	-check-win \
	-json "$BUFFER_OUT"

go run ./cmd/cbbench -experiment sync \
	-records-divisor "$SYNC_DIVISOR" \
	-check-win \
	-json "$SYNC_OUT"

# A fresh history per invocation keeps the cold run genuinely cold
# (records from earlier bench runs would warm it and deflate the
# measured ramp savings).
rm -rf "$HISTORY_DIR"
go run ./cmd/cbbench -experiment advisor \
	-records-divisor "$DIVISOR" \
	-history-dir "$HISTORY_DIR" \
	-check-win \
	-json "$ADVISOR_OUT"
