#!/usr/bin/env bash
# Reproduce the retrieval-pipeline ablation and leave a machine-readable
# record: runs `cbbench -experiment overlap` (prefetch on/off x chunk
# cache on/off, on knn single-pass and pagerank power iterations, all
# data in S3) and writes BENCH_overlap.json next to the table output.
#
# Usage:
#   scripts/bench.sh                # default: -records-divisor 10
#   DIVISOR=1 scripts/bench.sh      # full-size (slow, paced run)
#   DIVISOR=50 ITERS=5 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DIVISOR="${DIVISOR:-10}"
ITERS="${ITERS:-3}"
OUT="${OUT:-BENCH_overlap.json}"

go run ./cmd/cbbench -experiment overlap \
	-records-divisor "$DIVISOR" \
	-overlap-iters "$ITERS" \
	-json "$OUT"
