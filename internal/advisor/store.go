package advisor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// historyFile is the database file name inside the history directory.
const historyFile = "history.jsonl"

// Store is the on-disk run-history database: one JSON record per line,
// append-only, under a directory the operator passes as -history-dir.
// JSONL keeps the database greppable and crash-tolerant — a torn final
// line (the only corruption an append-only writer can leave) is
// skipped on load rather than poisoning the whole history. A Store is
// safe for concurrent use within one process; cross-process writers
// rely on O_APPEND line atomicity for the short records involved.
type Store struct {
	mu   sync.Mutex
	dir  string
	path string
}

// Open returns the store rooted at dir, creating the directory if
// needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("advisor: empty history dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("advisor: history dir: %w", err)
	}
	return &Store{dir: dir, path: filepath.Join(dir, historyFile)}, nil
}

// Dir returns the history directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// Append assigns the record the next sequence number and appends it to
// the database.
func (s *Store) Append(r *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, err := s.loadLocked()
	if err != nil {
		return err
	}
	r.Seq = 1
	if n := len(recs); n > 0 {
		r.Seq = recs[n-1].Seq + 1
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("advisor: encode record: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("advisor: open history: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("advisor: append history: %w", err)
	}
	return nil
}

// Load returns every record in the database, oldest first. A missing
// file is an empty history, not an error; unparseable lines are
// skipped.
func (s *Store) Load() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked()
}

func (s *Store) loadLocked() ([]Record, error) {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("advisor: open history: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn or hand-mangled line: skip, don't poison
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return recs, fmt.Errorf("advisor: read history: %w", err)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, nil
}

// Match returns the records for one (app, env) key, oldest first.
func (s *Store) Match(app, env string) ([]Record, error) {
	recs, err := s.Load()
	if err != nil {
		return nil, err
	}
	return Filter(recs, app, env), nil
}

// Filter selects the records matching one (app, env) key, preserving
// order.
func Filter(recs []Record, app, env string) []Record {
	var out []Record
	for _, r := range recs {
		if r.App == app && r.Env == env {
			out = append(out, r)
		}
	}
	return out
}

// Compact rewrites the database keeping only the newest keepPerKey
// records per (app, env) key, bounding growth for long-lived history
// directories. Sequence numbers are preserved. The rewrite goes
// through a temp file + rename so a crash leaves either the old or
// the new database, never a half one.
func (s *Store) Compact(keepPerKey int) error {
	if keepPerKey < 1 {
		return fmt.Errorf("advisor: compact keepPerKey %d < 1", keepPerKey)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, err := s.loadLocked()
	if err != nil {
		return err
	}
	seen := make(map[string]int)
	var keep []Record
	for i := len(recs) - 1; i >= 0; i-- { // newest first
		k := recs[i].Key()
		if seen[k] >= keepPerKey {
			continue
		}
		seen[k]++
		keep = append(keep, recs[i])
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].Seq < keep[j].Seq })
	tmp, err := os.CreateTemp(s.dir, historyFile+".tmp*")
	if err != nil {
		return fmt.Errorf("advisor: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for i := range keep {
		line, err := json.Marshal(&keep[i])
		if err != nil {
			tmp.Close()
			return fmt.Errorf("advisor: compact encode: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("advisor: compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("advisor: compact flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("advisor: compact close: %w", err)
	}
	return os.Rename(tmp.Name(), s.path)
}
