package advisor

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cloudburst/internal/metrics"
)

// hybridRecord builds a 50/50 run record: 8 local workers at localRate
// jobs/s/worker, a cloud site at cloudRate, 960 jobs split evenly,
// 12 MB of input.
func hybridRecord(cloudRate float64) Record {
	return Record{
		App: "knn", Env: "env-50/50",
		DataBytes: 12 << 20, Jobs: 960,
		CloudSite: "cloud", PeakCloud: 8,
		WallSecs: 250,
		Sites: []SiteStats{
			{Site: "local", Workers: 8, Jobs: 480, RatePerWorker: 0.25, WallSecs: 240},
			{Site: "cloud", Workers: 8, Jobs: 480, RatePerWorker: cloudRate, WallSecs: 250,
				BytesRemote: 1 << 20},
		},
	}
}

func baseRequest() Request {
	return Request{
		App: "knn", Env: "env-50/50",
		DataBytes:    12 << 20,
		Deadline:     300 * time.Second,
		MaxCloud:     24,
		BootLatency:  10 * time.Second,
		InstanceRate: 0.17, EgressRate: 0.12,
	}
}

func TestAdviseEmptyHistory(t *testing.T) {
	plan := Advise(nil, baseRequest())
	if plan.Burst {
		t.Fatalf("empty history recommended a burst: %+v", plan)
	}
	if plan.CloudCores != 0 || plan.BasedOn != 0 || plan.Confidence != 0 {
		t.Fatalf("empty history plan is not conservative: %+v", plan)
	}
	if len(plan.Rationale) == 0 {
		t.Fatalf("empty history plan has no rationale")
	}
}

func TestAdviseSingleRunMatch(t *testing.T) {
	plan := Advise([]Record{hybridRecord(0.25)}, baseRequest())
	if !plan.Burst {
		t.Fatalf("deadline-missing history did not recommend bursting: %+v", plan)
	}
	// Local side alone runs 960/(8*0.25) = 480s against a 300/1.15 =
	// 260.9s budget, so the burst is required; the cloud backlog of 480
	// jobs needs 480/(n*0.25) + 10s boot <= 260.9 => n = 8.
	if plan.CloudCores != 8 {
		t.Fatalf("single-run match sized %d cores, want 8: %s", plan.CloudCores, plan)
	}
	// Expected wall = max(local side 240s, boot 10 + 480/(8*0.25) = 250s).
	if got := plan.ExpectedWall.Seconds(); got < 245 || got > 255 {
		t.Fatalf("expected wall %.1fs, want ~250s", got)
	}
	if plan.ExpectedCost <= 0 {
		t.Fatalf("burst plan carries no cost estimate: %+v", plan)
	}
	if plan.BasedOn != 1 || plan.Confidence <= 0 {
		t.Fatalf("single-run plan bookkeeping wrong: %+v", plan)
	}
}

func TestAdviseSizeScaledExtrapolation(t *testing.T) {
	small := Advise([]Record{hybridRecord(0.25)}, baseRequest())

	req := baseRequest()
	req.DataBytes *= 2
	req.Deadline *= 2
	big := Advise([]Record{hybridRecord(0.25)}, req)
	if !big.Burst {
		t.Fatalf("scaled request did not burst: %+v", big)
	}
	ratio := big.ExpectedWall.Seconds() / small.ExpectedWall.Seconds()
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("doubling data scaled expected wall by %.2fx, want ~2x (%.1fs -> %.1fs)",
			ratio, small.ExpectedWall.Seconds(), big.ExpectedWall.Seconds())
	}
}

func TestAdviseStaleHistoryDecay(t *testing.T) {
	slow, fast := hybridRecord(0.05), hybridRecord(0.25)
	slow.Seq, fast.Seq = 1, 2
	freshFast := Advise([]Record{slow, fast}, baseRequest())

	slow2, fast2 := hybridRecord(0.05), hybridRecord(0.25)
	fast2.Seq, slow2.Seq = 1, 2
	freshSlow := Advise([]Record{fast2, slow2}, baseRequest())

	if !freshFast.Burst || !freshSlow.Burst {
		t.Fatalf("decay variants did not both burst: %+v / %+v", freshFast, freshSlow)
	}
	// The newest record must dominate: with the fast run freshest the
	// blended rate is high and the fleet small; with the slow run
	// freshest the same two records size a much larger fleet.
	if freshFast.CloudCores >= freshSlow.CloudCores {
		t.Fatalf("stale history not decayed: fresh-fast %d cores vs fresh-slow %d",
			freshFast.CloudCores, freshSlow.CloudCores)
	}
}

func TestAdviseNoBurstInsideDeadline(t *testing.T) {
	req := baseRequest()
	req.Deadline = 700 * time.Second // local-only 480s fits 700/1.15
	plan := Advise([]Record{hybridRecord(0.25)}, req)
	if plan.Burst || plan.CloudCores != 0 {
		t.Fatalf("loose deadline still burst: %+v", plan)
	}
	if got := plan.ExpectedWall.Seconds(); got < 470 || got > 490 {
		t.Fatalf("no-burst expected wall %.1fs, want ~480s", got)
	}
}

func TestAdviseCostCapped(t *testing.T) {
	// A long boot makes fleet size matter to the bill: each booted core
	// pays 100s before working, so trimming genuinely saves money.
	req := baseRequest()
	req.BootLatency = 100 * time.Second
	req.Deadline = 500 * time.Second // local-only 480s misses 500/1.15
	uncapped := Advise([]Record{hybridRecord(0.25)}, req)
	if !uncapped.Burst || uncapped.CostCapped {
		t.Fatalf("uncapped plan wrong: %+v", uncapped)
	}

	// A budget below the deadline-fitting fleet's bill but above a
	// single core's trims the fleet: budget wins over deadline.
	capped := req
	capped.BudgetUSD = uncapped.ExpectedCost * 0.97
	trimmed := Advise([]Record{hybridRecord(0.25)}, capped)
	if !trimmed.CostCapped || !trimmed.Burst {
		t.Fatalf("under-budget plan not marked cost-capped: %+v", trimmed)
	}
	if trimmed.CloudCores >= uncapped.CloudCores {
		t.Fatalf("cost cap did not trim the fleet: %d vs uncapped %d",
			trimmed.CloudCores, uncapped.CloudCores)
	}
	if trimmed.ExpectedCost > capped.BudgetUSD {
		t.Fatalf("trimmed plan still projects $%.4f against a $%.4f budget",
			trimmed.ExpectedCost, capped.BudgetUSD)
	}

	// A budget no fleet fits refuses the burst entirely.
	broke := req
	broke.BudgetUSD = uncapped.ExpectedCost / 4
	refusal := Advise([]Record{hybridRecord(0.25)}, broke)
	if refusal.Burst || refusal.CloudCores != 0 || !refusal.CostCapped {
		t.Fatalf("unaffordable budget still burst: %+v", refusal)
	}
}

func TestStoreAppendLoadMatchCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, env := range []string{"env-50/50", "env-50/50", "env-local"} {
		r := hybridRecord(0.2 + float64(i)/10)
		r.Env = env
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
		if r.Seq != i+1 {
			t.Fatalf("append %d assigned seq %d", i, r.Seq)
		}
	}
	recs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	m, err := s.Match("knn", "env-50/50")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0].Seq != 1 || m[1].Seq != 2 {
		t.Fatalf("match returned %+v", m)
	}
	if err := s.Compact(1); err != nil {
		t.Fatal(err)
	}
	recs, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("compact kept %d records, want 2 (newest per key)", len(recs))
	}
	if recs[0].Seq != 2 || recs[1].Seq != 3 {
		t.Fatalf("compact kept seqs %d/%d, want 2/3", recs[0].Seq, recs[1].Seq)
	}
}

func TestStoreSkipsTornLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := hybridRecord(0.25)
	if err := s.Append(&r); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, historyFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"app":"knn","env`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("torn line not skipped: %+v", recs)
	}
	// The next append must still hand out a fresh sequence number.
	r2 := hybridRecord(0.3)
	if err := s.Append(&r2); err != nil {
		t.Fatal(err)
	}
	if r2.Seq != 2 {
		t.Fatalf("append after torn line assigned seq %d, want 2", r2.Seq)
	}
}

func TestFromReportExtraction(t *testing.T) {
	rep := &metrics.RunReport{
		App: "knn", Env: "env-50/50",
		TotalWall: 250 * time.Second,
		Clusters: []metrics.ClusterReport{
			{Site: "local", Cores: 8, Wall: 240 * time.Second,
				Workers: metrics.Snapshot{JobsProcessed: 480, BytesRead: 6 << 20}},
			{Site: "cloud", Cores: 2, Wall: 250 * time.Second,
				Workers: metrics.Snapshot{JobsProcessed: 480, BytesRead: 6 << 20, BytesRemote: 1 << 20}},
		},
		Elastic: &metrics.ElasticReport{
			Site: "cloud", Peak: 10, Boots: 8, Drains: 0,
			InstanceSecs: 1920, TotalUSD: 0.09,
		},
	}
	plan := &Plan{ExpectedWall: 240 * time.Second, ExpectedCost: 0.10}
	rec, err := FromReport(rep, ExtractOptions{
		DataBytes: 12 << 20, Deadline: 300 * time.Second, Plan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.App != "knn" || rec.Env != "env-50/50" || rec.Jobs != 960 {
		t.Fatalf("extraction lost identity: %+v", rec)
	}
	if !rec.MetDeadline || rec.CloudSite != "cloud" || rec.PeakCloud != 10 {
		t.Fatalf("extraction lost elastic shape: %+v", rec)
	}
	if rec.CostUSD != 0.09 {
		t.Fatalf("extraction did not take the elastic bill: %+v", rec)
	}
	cloud := rec.Site("cloud")
	if cloud == nil || cloud.Workers != 10 {
		t.Fatalf("cloud site did not use elastic peak: %+v", cloud)
	}
	// Elastic site rate uses the billing integral: 480 jobs / 1920
	// instance-seconds = 0.25 jobs/s/worker.
	if cloud.RatePerWorker < 0.24 || cloud.RatePerWorker > 0.26 {
		t.Fatalf("cloud rate %.3f, want 0.25", cloud.RatePerWorker)
	}
	local := rec.Site("local")
	// Static site rate: 480 jobs / (8 cores x 240s) = 0.25.
	if local == nil || local.RatePerWorker < 0.24 || local.RatePerWorker > 0.26 {
		t.Fatalf("local rate wrong: %+v", local)
	}
	// Prediction feedback: predicted 240s vs actual 250s = -4%.
	if rec.PredictedWallSecs != 240 || rec.WallErrPct > -3 || rec.WallErrPct < -5 {
		t.Fatalf("wall feedback wrong: %+v", rec)
	}
	if rec.CostErrPct < 10 || rec.CostErrPct > 12.5 {
		t.Fatalf("cost feedback wrong: %+v", rec)
	}
}
