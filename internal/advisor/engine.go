package advisor

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cloudburst/internal/elastic"
)

// Request describes the run about to start: what is being run, over
// which link shape, how much data, and the deadline/budget envelope
// the plan must fit.
type Request struct {
	App string
	// Env is the link class matched against history (the bench harness
	// uses its env names: env-local, env-50/50, ...).
	Env string
	// DataBytes is the input size; matched runs are scaled by the size
	// ratio. Zero means "same size as history".
	DataBytes int64
	// Deadline is the emulated wall-time target. Zero plans without a
	// deadline: the advisor reports expectations but never bursts.
	Deadline time.Duration
	// BudgetUSD caps the plan's expected cost; the advisor trims the
	// fleet to fit (0 = uncapped).
	BudgetUSD float64
	// MaxCloud bounds the recommended cloud fleet (default 16).
	MaxCloud int
	// LocalWorkers overrides the in-house core count (0 = from
	// history).
	LocalWorkers int
	// BootLatency, InstanceRate, EgressRate, and Margin mirror
	// elastic.Config: boots arrive late, instance time and egress are
	// priced per elastic.Cost, and the sizing aims Margin times inside
	// the deadline (default 1.15).
	BootLatency  time.Duration
	InstanceRate float64
	EgressRate   float64
	Margin       float64
}

// Plan is the advisor's recommendation, sized from history.
type Plan struct {
	// Burst reports whether cloud capacity is needed at all;
	// CloudCores is the fleet to start with (the elastic controller's
	// warm seed).
	Burst        bool          `json:"burst"`
	CloudCores   int           `json:"cloud_cores"`
	CloudSite    string        `json:"cloud_site,omitempty"`
	ExpectedWall time.Duration `json:"expected_wall"`
	ExpectedCost float64       `json:"expected_cost_usd"`
	// Confidence grades the prediction in [0, 1] from how much history
	// backed it and how well that history agreed with itself.
	Confidence float64 `json:"confidence"`
	// BasedOn counts the matched history records; CostCapped marks a
	// fleet trimmed to fit BudgetUSD.
	BasedOn    int  `json:"based_on"`
	CostCapped bool `json:"cost_capped,omitempty"`
	// Rationale is the human-readable derivation, one step per line.
	Rationale []string `json:"rationale"`
}

// String renders the plan for operators.
func (p Plan) String() string {
	var b strings.Builder
	verb := "do not burst"
	if p.Burst {
		verb = fmt.Sprintf("burst with %d cloud cores", p.CloudCores)
	}
	fmt.Fprintf(&b, "advisor: %s (expect %.1fs, $%.4f, confidence %.2f, %d run(s) of history)",
		verb, p.ExpectedWall.Seconds(), p.ExpectedCost, p.Confidence, p.BasedOn)
	for _, line := range p.Rationale {
		fmt.Fprintf(&b, "\n  - %s", line)
	}
	return b.String()
}

// decayPerRun is the weight multiplier per run of staleness: the
// newest matched record carries weight 1, the one before it decayPerRun,
// and so on. Recency is counted in runs, not wall time, so history
// ages identically under emulated and real clocks.
const decayPerRun = 0.6

// Advise scores the request against the matched history and returns a
// plan. The model mirrors the elastic controller's own no-sharing
// makespan estimate: the cloud site is sized against its own backlog
// (WAN stealing is too slow for either side to absorb the other's
// work), booted capacity arrives BootLatency late, and instance time
// is priced with elastic.Cost so the plan and the controller it seeds
// bill identically.
func Advise(history []Record, req Request) Plan {
	if req.Margin <= 1 {
		req.Margin = 1.15
	}
	if req.MaxCloud <= 0 {
		req.MaxCloud = 16
	}

	matched := Filter(history, req.App, req.Env)
	plan := Plan{BasedOn: len(matched)}
	if len(matched) == 0 {
		// Nothing comparable on file: recommend the conservative path —
		// no burst, let the elastic controller's cold-start ramp learn
		// the rates the hard way.
		plan.Rationale = append(plan.Rationale,
			fmt.Sprintf("no history for %s over %s: conservative no-burst plan, elastic ramp will learn rates live", req.App, req.Env))
		return plan
	}

	// Fold the matched runs newest-first under per-run decay, so a
	// changed link or fixed regression stops haunting plans within a
	// couple of runs.
	var (
		wSum, wCloud     float64
		jobs, cloudShare float64
		rLocal, rCloud   float64
		localWorkers     float64
		egressRatio      float64 // remote bytes per input byte
		cloudRates       []float64
		cloudWeights     []float64
		cloudSite        string
	)
	for i := len(matched) - 1; i >= 0; i-- {
		rec := matched[i]
		w := math.Pow(decayPerRun, float64(len(matched)-1-i))
		ratio := 1.0
		if req.DataBytes > 0 && rec.DataBytes > 0 {
			ratio = float64(req.DataBytes) / float64(rec.DataBytes)
		}
		wSum += w
		jobs += w * float64(rec.Jobs) * ratio

		cs := rec.CloudSite
		if cs == "" && rec.Site("cloud") != nil {
			cs = "cloud"
		}
		var remote int64
		for _, s := range rec.Sites {
			remote += s.BytesRemote
			if s.Site == cs {
				continue
			}
			if s.RatePerWorker > 0 {
				rLocal += w * s.RatePerWorker
				localWorkers += w * float64(s.Workers)
			}
		}
		if rec.DataBytes > 0 {
			egressRatio += w * float64(remote) / float64(rec.DataBytes)
		}
		if c := rec.Site(cs); c != nil && c.RatePerWorker > 0 {
			if cloudSite == "" {
				cloudSite = cs
			}
			wCloud += w
			rCloud += w * c.RatePerWorker
			cloudShare += w * float64(c.Jobs) / math.Max(1, float64(rec.Jobs))
			cloudRates = append(cloudRates, c.RatePerWorker)
			cloudWeights = append(cloudWeights, w)
		}
	}
	jobs /= wSum
	egressRatio /= wSum
	if rLocal > 0 {
		rLocal /= wSum
		localWorkers /= wSum
	}
	if wCloud > 0 {
		rCloud /= wCloud
		cloudShare /= wCloud
	}
	if req.LocalWorkers > 0 {
		localWorkers = float64(req.LocalWorkers)
	}
	if cloudSite == "" {
		cloudSite = "cloud"
	}
	plan.CloudSite = cloudSite
	plan.Confidence = confidence(len(matched), cloudRates, cloudWeights)

	egressBytes := int64(egressRatio * float64(req.DataBytes))
	if req.DataBytes == 0 && len(matched) > 0 {
		// No size given: reuse the newest record's absolute egress.
		var remote int64
		for _, s := range matched[len(matched)-1].Sites {
			remote += s.BytesRemote
		}
		egressBytes = remote
	}

	// Local-only projection: can the in-house fleet alone make the
	// budgeted deadline? (The budget aims Margin inside the deadline,
	// absorbing estimation error exactly like the controller.)
	localOnlyWall := math.Inf(1)
	if rLocal > 0 && localWorkers > 0 {
		localOnlyWall = jobs / (rLocal * localWorkers)
	}
	budget := math.Inf(1)
	if req.Deadline > 0 {
		budget = req.Deadline.Seconds() / req.Margin
	}

	if req.Deadline <= 0 {
		plan.ExpectedWall = secs(math.Min(localOnlyWall, matched[len(matched)-1].WallSecs))
		plan.Rationale = append(plan.Rationale,
			"no deadline given: nothing to burst for; expectation is the history-scaled wall")
		return plan
	}
	if localOnlyWall <= budget {
		plan.ExpectedWall = secs(localOnlyWall)
		plan.Rationale = append(plan.Rationale,
			fmt.Sprintf("local fleet of %.0f at %.2f jobs/s/worker finishes %.0f jobs in %.1fs, inside the %.1fs budget (deadline %.1fs / margin %.2f): no burst needed",
				localWorkers, rLocal, jobs, localOnlyWall, budget, req.Deadline.Seconds(), req.Margin))
		return plan
	}
	plan.Rationale = append(plan.Rationale,
		fmt.Sprintf("local-only projection %.1fs misses the %.1fs budget (deadline %.1fs / margin %.2f): burst required",
			localOnlyWall, budget, req.Deadline.Seconds(), req.Margin))

	if rCloud <= 0 {
		// History shows the deadline needs help but carries no cloud
		// rate to size with. Recommend a minimal presence and let the
		// controller ramp — still better than nothing, flagged low
		// confidence.
		plan.Burst = true
		plan.CloudCores = 1
		plan.ExpectedWall = secs(localOnlyWall)
		plan.Confidence = math.Min(plan.Confidence, 0.2)
		plan.Rationale = append(plan.Rationale,
			"matched history has no cloud-rate signal: seeding a single core for the elastic ramp to grow")
		return plan
	}

	// Size the cloud fleet against its own backlog, like the
	// controller: find the smallest fleet whose boot-delayed finish
	// fits the budget.
	cloudJobs := cloudShare * jobs
	localSideWall := (jobs - cloudJobs) / math.Max(rLocal*localWorkers, 1e-9)
	boot := req.BootLatency.Seconds()
	cloudWallAt := func(n int) float64 {
		return boot + cloudJobs/(float64(n)*rCloud)
	}
	wallAt := func(n int) float64 {
		return math.Max(localSideWall, cloudWallAt(n))
	}
	costAt := func(n int) float64 {
		// Cloud workers bill until their own side's backlog clears —
		// the elastic controller drains surplus once its ETA shows
		// slack — plus one retained worker to the end of the run (a
		// site master always keeps a live worker).
		cw := cloudWallAt(n)
		instSecs := float64(n)*cw + math.Max(0, wallAt(n)-cw)
		_, _, total := elastic.Cost(instSecs, egressBytes, req.InstanceRate, req.EgressRate)
		return total
	}
	n := req.MaxCloud
	for k := 1; k <= req.MaxCloud; k++ {
		if wallAt(k) <= budget {
			n = k
			break
		}
	}
	if wallAt(n) > budget {
		plan.Rationale = append(plan.Rationale,
			fmt.Sprintf("even %d cloud cores project %.1fs > %.1fs budget: recommending max and hoping the margin absorbs it",
				n, wallAt(n), budget))
	} else {
		plan.Rationale = append(plan.Rationale,
			fmt.Sprintf("%d cloud cores at %.2f jobs/s/worker clear the %.0f-job cloud backlog (%.0f%% of pool) in %.1fs after a %.1fs boot",
				n, rCloud, cloudJobs, 100*cloudShare, wallAt(n), boot))
	}
	if req.BudgetUSD > 0 && costAt(n) > req.BudgetUSD {
		// The budget wins over the deadline: shrink the fleet to the
		// largest one the money buys, even though the projected wall
		// slips past the budgeted deadline — and when even one core is
		// unaffordable, stay local.
		plan.CostCapped = true
		for n > 0 && costAt(n) > req.BudgetUSD {
			n--
		}
		if n == 0 {
			plan.CloudCores = 0
			plan.ExpectedWall = secs(localOnlyWall)
			plan.ExpectedCost = 0
			plan.Rationale = append(plan.Rationale,
				fmt.Sprintf("no fleet fits the $%.4f budget: staying local and accepting the %.1fs wall", req.BudgetUSD, localOnlyWall))
			return plan
		}
		plan.Rationale = append(plan.Rationale,
			fmt.Sprintf("fleet trimmed to %d cores to fit the $%.4f budget (projected $%.4f, wall %.1fs): budget wins over deadline",
				n, req.BudgetUSD, costAt(n), wallAt(n)))
	}
	plan.Burst = true
	plan.CloudCores = n
	plan.ExpectedWall = secs(wallAt(n))
	plan.ExpectedCost = costAt(n)
	return plan
}

// confidence grades a plan from how much history backed it and how
// well the matched runs' cloud rates agreed: more runs raise it,
// dispersion lowers it.
func confidence(matches int, rates, weights []float64) float64 {
	if matches == 0 {
		return 0
	}
	conf := float64(matches) / float64(matches+1)
	if len(rates) > 1 {
		var wSum, mean float64
		for i, r := range rates {
			wSum += weights[i]
			mean += weights[i] * r
		}
		mean /= wSum
		var variance float64
		for i, r := range rates {
			variance += weights[i] * (r - mean) * (r - mean)
		}
		variance /= wSum
		if mean > 0 {
			cv := math.Sqrt(variance) / mean
			conf *= math.Max(0.2, 1-cv)
		}
	}
	return math.Min(0.95, math.Max(0.05, conf))
}

func secs(s float64) time.Duration {
	if math.IsInf(s, 0) || s < 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}
