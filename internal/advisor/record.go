// Package advisor is the history-driven burst planner: it persists one
// compact record per completed run, and before the next run starts it
// matches similar past runs (same application and link class, scaled by
// data size) against a deadline and budget to recommend a burst plan —
// whether to burst at all, how many cloud cores to buy, and what wall
// time and dollar cost to expect, with a confidence grade and a
// human-readable rationale. The plan's core count warm-starts the
// elastic controller (replacing its cold-start ramp); the live
// controller retains authority to correct a bad prediction mid-run, and
// the prediction error is written back into the history so the next
// plan learns from this one's miss.
//
// The decision layer deliberately reuses the run's own telemetry
// (metrics.RunReport) and the elastic package's pricing model rather
// than introducing a parallel cost model: a plan is priced exactly the
// way the controller it seeds will bill.
package advisor

import (
	"fmt"
	"time"

	"cloudburst/internal/metrics"
)

// SiteStats is one site's share of a recorded run: how many workers it
// ran, how much of the pool it processed, and the measured per-worker
// throughput the planner extrapolates from.
type SiteStats struct {
	Site    string `json:"site"`
	Workers int    `json:"workers"` // peak commanded workers (elastic) or cores (static)
	Jobs    int    `json:"jobs"`    // jobs this site processed
	// RatePerWorker is jobs per emulated second per worker. For the
	// elastically scaled site it is jobs / billed instance-seconds — a
	// slightly conservative figure (boot time bills before it works),
	// which errs the planner toward over-provisioning, the cheap
	// direction under a deadline.
	RatePerWorker float64 `json:"rate_per_worker"`
	WallSecs      float64 `json:"wall_secs"`
	BytesRead     int64   `json:"bytes_read"`
	BytesRemote   int64   `json:"bytes_remote"`
}

// Record is one run's history entry — the compact projection of a
// RunReport the planner actually needs. Fields are plain JSON types
// (durations in float seconds) so the on-disk database stays readable
// and stable; TestRunReportJSONRoundTrip guards the RunReport side of
// the extraction.
type Record struct {
	// Seq is the store-assigned sequence number (1-based, newest
	// highest). Recency is measured in runs, not wall-clock time, so
	// history ages the same way under emulated and real clocks.
	Seq int `json:"seq"`
	// App and Env form the match key: runs of the same application over
	// the same link shape (env-local / env-50/50 / a cbhead-supplied
	// link class) are comparable; everything else is not.
	App string `json:"app"`
	Env string `json:"env"`
	// DataBytes is the total input size; the planner scales a matched
	// run's wall time and backlog linearly by the size ratio.
	DataBytes int64 `json:"data_bytes"`
	Jobs      int   `json:"jobs"`

	Sites []SiteStats `json:"sites"`

	WallSecs     float64 `json:"wall_secs"`
	DeadlineSecs float64 `json:"deadline_secs,omitempty"`
	MetDeadline  bool    `json:"met_deadline,omitempty"`
	CostUSD      float64 `json:"cost_usd,omitempty"`

	// CloudSite names the elastically scaled site when the run had one;
	// the per-site entry under that name carries its measured rate.
	CloudSite string `json:"cloud_site,omitempty"`
	PeakCloud int    `json:"peak_cloud,omitempty"`
	Boots     int    `json:"boots,omitempty"`
	Drains    int    `json:"drains,omitempty"`

	// Prediction feedback: when the run was planned by the advisor, the
	// plan's expectations and their error against what actually
	// happened are recorded here on completion, closing the loop.
	PredictedWallSecs float64 `json:"predicted_wall_secs,omitempty"`
	PredictedCostUSD  float64 `json:"predicted_cost_usd,omitempty"`
	WallErrPct        float64 `json:"wall_err_pct,omitempty"`
	CostErrPct        float64 `json:"cost_err_pct,omitempty"`
}

// Key returns the match key (application + link class).
func (r Record) Key() string { return r.App + "|" + r.Env }

// Site returns the stats for the named site, or nil.
func (r *Record) Site(name string) *SiteStats {
	for i := range r.Sites {
		if r.Sites[i].Site == name {
			return &r.Sites[i]
		}
	}
	return nil
}

// ExtractOptions carries the run context a RunReport does not know:
// the input size, the deadline the run aimed at, and (for advisor-
// planned runs) the plan whose prediction error should be fed back.
type ExtractOptions struct {
	DataBytes int64
	Deadline  time.Duration
	// CostUSD prices the run when it had no elastic controller (static
	// deployments); ignored when the report carries an ElasticReport,
	// whose own billing wins.
	CostUSD float64
	// Plan, when non-nil, records the prediction this run was launched
	// under and its error against the measured outcome.
	Plan *Plan
}

// FromReport projects a completed run's RunReport into a history
// Record. Per-site rates are derived from the report's own counters:
// jobs over worker-seconds, using the elastic billing integral for the
// scaled site (workers varied mid-run) and cores x wall for static
// ones.
func FromReport(rep *metrics.RunReport, opt ExtractOptions) (*Record, error) {
	if rep == nil {
		return nil, fmt.Errorf("advisor: nil run report")
	}
	r := &Record{
		App:          rep.App,
		Env:          rep.Env,
		DataBytes:    opt.DataBytes,
		Jobs:         rep.JobsProcessed(),
		WallSecs:     rep.TotalWall.Seconds(),
		DeadlineSecs: opt.Deadline.Seconds(),
		MetDeadline:  opt.Deadline <= 0 || rep.TotalWall <= opt.Deadline,
		CostUSD:      opt.CostUSD,
	}
	el := rep.Elastic
	if el != nil {
		r.CloudSite = el.Site
		r.PeakCloud = el.Peak
		r.Boots = el.Boots
		r.Drains = el.Drains
		r.CostUSD = el.TotalUSD
	}
	for _, c := range rep.Clusters {
		s := SiteStats{
			Site:        c.Site,
			Workers:     c.Cores,
			Jobs:        c.Workers.JobsProcessed,
			WallSecs:    c.Wall.Seconds(),
			BytesRead:   c.Workers.BytesRead,
			BytesRemote: c.Workers.BytesRemote,
		}
		workerSecs := float64(c.Cores) * c.Wall.Seconds()
		if el != nil && c.Site == el.Site {
			s.Workers = el.Peak
			if el.InstanceSecs > 0 {
				workerSecs = el.InstanceSecs
			}
		}
		if workerSecs > 0 {
			s.RatePerWorker = float64(s.Jobs) / workerSecs
		}
		r.Sites = append(r.Sites, s)
	}
	if p := opt.Plan; p != nil {
		r.PredictedWallSecs = p.ExpectedWall.Seconds()
		r.PredictedCostUSD = p.ExpectedCost
		if r.WallSecs > 0 {
			r.WallErrPct = 100 * (r.PredictedWallSecs - r.WallSecs) / r.WallSecs
		}
		if r.CostUSD > 0 {
			r.CostErrPct = 100 * (r.PredictedCostUSD - r.CostUSD) / r.CostUSD
		}
	}
	return r, nil
}
