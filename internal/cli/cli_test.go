package cli

import (
	"path/filepath"
	"reflect"
	"testing"

	"cloudburst/internal/chunk"
	"cloudburst/internal/store"
)

func TestParseParams(t *testing.T) {
	got, err := ParseParams(" k=1000 , dims=3,cost=2.9ms ")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"k": "1000", "dims": "3", "cost": "2.9ms"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if got, err := ParseParams(""); err != nil || len(got) != 0 {
		t.Fatalf("empty = %v, %v", got, err)
	}
	for _, bad := range []string{"noequals", "=v", " = "} {
		if _, err := ParseParams(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParseSiteAddrs(t *testing.T) {
	got, err := ParseSiteAddrs("cloud=10.0.0.1:7072, local=10.0.0.2:7072")
	if err != nil {
		t.Fatal(err)
	}
	if got["cloud"] != "10.0.0.1:7072" || got["local"] != "10.0.0.2:7072" {
		t.Fatalf("got %v", got)
	}
	if _, err := ParseSiteAddrs("=x"); err == nil {
		t.Fatal("bad addr accepted")
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	m := store.NewMem()
	m.Put("f.bin", make([]byte, 1024))
	idx, err := chunk.Build(map[string]store.Store{"local": m},
		[]chunk.FileMeta{{Name: "f.bin", Site: "local"}},
		chunk.BuildOptions{RecordSize: 16, ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.cbix")
	if err := WriteIndexFile(path, idx); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, idx) {
		t.Fatal("round trip mismatch")
	}
	if _, err := ReadIndexFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}
