// Package cli holds small helpers shared by the command-line tools:
// parameter-list parsing and index file I/O.
package cli

import (
	"fmt"
	"os"
	"strings"

	"cloudburst/internal/chunk"
)

// ParseParams parses "k=v,k2=v2" application parameter lists.
func ParseParams(s string) (map[string]string, error) {
	params := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return params, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok || strings.TrimSpace(k) == "" {
			return nil, fmt.Errorf("cli: bad parameter %q (want key=value)", kv)
		}
		params[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return params, nil
}

// ParseSiteAddrs parses "site=addr,site2=addr2" lists (remote store
// endpoints for cbslave).
func ParseSiteAddrs(s string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		site, addr, ok := strings.Cut(kv, "=")
		if !ok || site == "" || addr == "" {
			return nil, fmt.Errorf("cli: bad site address %q (want site=host:port)", kv)
		}
		out[site] = addr
	}
	return out, nil
}

// WriteIndexFile serializes idx to path.
func WriteIndexFile(path string, idx *chunk.Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := idx.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadIndexFile loads and validates an index file.
func ReadIndexFile(path string) (*chunk.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return chunk.ReadIndex(f)
}
