package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScaledClockToWall(t *testing.T) {
	c := Scaled(0.5)
	if got := c.ToWall(2 * time.Second); got != time.Second {
		t.Fatalf("ToWall(2s) at scale 0.5 = %v, want 1s", got)
	}
	if got := c.ToEmu(time.Second); got != 2*time.Second {
		t.Fatalf("ToEmu(1s) at scale 0.5 = %v, want 2s", got)
	}
}

func TestInstantClockNoops(t *testing.T) {
	c := Instant()
	start := time.Now()
	c.Sleep(time.Hour)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("Instant clock slept")
	}
	if c.ToWall(time.Hour) != 0 {
		t.Fatal("Instant ToWall should be 0")
	}
	if c.ToEmu(time.Hour) != 0 {
		t.Fatal("Instant ToEmu should be 0")
	}
}

func TestRealClockIsScaleOne(t *testing.T) {
	c := Real()
	if c.Scale != 1.0 {
		t.Fatalf("Real clock scale = %v, want 1", c.Scale)
	}
	if got := c.ToWall(3 * time.Second); got != 3*time.Second {
		t.Fatalf("Real ToWall(3s) = %v", got)
	}
}

func TestScaledClockSleepApproximate(t *testing.T) {
	c := Scaled(0.001) // 1 emulated second = 1ms wall
	start := time.Now()
	c.Sleep(10 * time.Second) // should be ~10ms wall
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond {
		t.Fatalf("scaled sleep too short: %v", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("scaled sleep too long: %v", elapsed)
	}
}

func TestClockNegativeDurations(t *testing.T) {
	c := Scaled(0.5)
	if c.ToWall(-time.Second) != 0 {
		t.Fatal("negative ToWall should clamp to 0")
	}
	if c.ToEmu(-time.Second) != 0 {
		t.Fatal("negative ToEmu should clamp to 0")
	}
	c.Sleep(-time.Hour) // must not block
}

// Property: ToEmu(ToWall(d)) round-trips within rounding error for any
// positive duration and positive scale.
func TestClockRoundTripProperty(t *testing.T) {
	f := func(ms uint16, scaleTenths uint8) bool {
		scale := float64(scaleTenths%50+1) / 10.0
		c := Scaled(scale)
		d := time.Duration(ms) * time.Millisecond
		rt := c.ToEmu(c.ToWall(d))
		diff := rt - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond || float64(diff)/float64(d+1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
