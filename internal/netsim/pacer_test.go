package netsim

import (
	"testing"
	"time"
)

func TestPacerPadsToModeledCost(t *testing.T) {
	clk := Scaled(0.001) // 1 emulated ms = 1 us wall
	p := NewPacer(clk, time.Millisecond)
	start := p.Begin()
	charged := p.End(start, 5000) // 5 emulated s -> 5ms wall
	if charged < 5*time.Second {
		t.Fatalf("charged %v, want >= 5s emulated", charged)
	}
}

func TestPacerChargesRealTimeWhenSlower(t *testing.T) {
	clk := Scaled(1.0)
	p := NewPacer(clk, time.Nanosecond) // model is ~free
	start := p.Begin()
	time.Sleep(5 * time.Millisecond) // real work dominates
	charged := p.End(start, 1)
	if charged < 4*time.Millisecond {
		t.Fatalf("charged %v, want >= real elapsed ~5ms", charged)
	}
}

func TestPacerNilClock(t *testing.T) {
	p := NewPacer(nil, time.Second)
	start := p.Begin()
	wall := time.Now()
	charged := p.End(start, 1000)
	if time.Since(wall) > 100*time.Millisecond {
		t.Fatal("instant-clock pacer slept")
	}
	if charged != 1000*time.Second {
		t.Fatalf("instant pacer should charge the model: %v", charged)
	}
}

func TestPacerUnitCostAccessor(t *testing.T) {
	p := NewPacer(Instant(), 42*time.Microsecond)
	if p.UnitCost() != 42*time.Microsecond {
		t.Fatal("UnitCost accessor mismatch")
	}
}

func TestPacerZeroUnits(t *testing.T) {
	p := NewPacer(Scaled(0.001), time.Second)
	start := p.Begin()
	if charged := p.End(start, 0); charged < 0 {
		t.Fatalf("zero units charged negative: %v", charged)
	}
}
