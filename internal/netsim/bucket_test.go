package netsim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNilBucketUnlimited(t *testing.T) {
	var b *Bucket
	b.Take(1 << 30) // must not block or panic
	if !b.TryTake(1 << 30) {
		t.Fatal("nil bucket TryTake should succeed")
	}
	if b.Rate() != 0 {
		t.Fatal("nil bucket rate should be 0")
	}
}

func TestNewBucketZeroRateIsNil(t *testing.T) {
	if b := NewBucket(Real(), 0, 100); b != nil {
		t.Fatal("zero-rate bucket should be nil (unlimited)")
	}
	if b := NewBucket(Real(), -5, 100); b != nil {
		t.Fatal("negative-rate bucket should be nil")
	}
}

func TestBucketStartsFull(t *testing.T) {
	b := NewBucket(Real(), 1000, 500)
	if !b.TryTake(500) {
		t.Fatal("bucket should start with a full burst")
	}
	if b.TryTake(500) {
		t.Fatal("bucket should be empty after draining the burst")
	}
}

func TestBucketRefills(t *testing.T) {
	c := Scaled(0.001) // emulated seconds pass 1000x faster
	b := NewBucket(c, 1000, 100)
	b.Take(100) // drain
	// After 1 emulated second (1ms wall) the bucket should have
	// refilled to its burst.
	time.Sleep(20 * time.Millisecond)
	if got := b.Available(); got < 99 {
		t.Fatalf("bucket available after refill = %v, want ~100", got)
	}
}

func TestBucketTakePacesLargeTransfer(t *testing.T) {
	// 1 MB/s emulated, scale 0.001: taking 5 MB should take ~5ms wall.
	c := Scaled(0.001)
	b := NewBucket(c, 1<<20, 64<<10)
	start := time.Now()
	b.Take(5 << 20)
	// The sleep happens on the *next* taker in debt-mode; take again
	// to observe pacing.
	b.Take(1)
	elapsed := time.Since(start)
	if elapsed < 3*time.Millisecond {
		t.Fatalf("large take not paced: %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("large take paced too slowly: %v", elapsed)
	}
}

func TestBucketConcurrentTakesAggregate(t *testing.T) {
	// Total bytes through a shared bucket must take at least
	// total/rate emulated time regardless of concurrency.
	c := Scaled(0.0005)
	b := NewBucket(c, 1<<20, 32<<10) // 1 MB per emulated second
	const workers = 8
	const each = 512 << 10 // 4 MB total -> >= 4 emulated s -> >= ~2ms wall
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rem := each; rem > 0; rem -= 64 << 10 {
				b.Take(64 << 10)
			}
		}()
	}
	wg.Wait()
	minWall := c.ToWall(3 * time.Second) // allow slack below the 4s ideal
	if elapsed := time.Since(start); elapsed < minWall {
		t.Fatalf("aggregate cap violated: %d bytes in %v (min %v)", workers*each, elapsed, minWall)
	}
}

// Property: TryTake never hands out more tokens than rate*time+burst.
func TestBucketNeverOverIssuesProperty(t *testing.T) {
	f := func(takes []uint16) bool {
		c := Instant() // no time passes -> only the initial burst is available
		b := NewBucket(c, 1000, 1000)
		issued := 0
		for _, n := range takes {
			if b.TryTake(int(n % 300)) {
				issued += int(n % 300)
			}
		}
		return issued <= 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketAvailableNeverExceedsBurst(t *testing.T) {
	c := Scaled(0.0001)
	b := NewBucket(c, 1e9, 500)
	time.Sleep(5 * time.Millisecond) // huge refill opportunity
	if got := b.Available(); got > 500 {
		t.Fatalf("available %v exceeds burst 500", got)
	}
}
