package netsim

import (
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter operating in emulated time.
// Tokens accrue at Rate tokens per emulated second up to Burst. Take
// removes tokens, blocking (through the clock) when the bucket runs
// dry. A Bucket may be shared between connections to model an
// aggregate bandwidth cap (e.g. the total egress of the simulated S3
// service), or owned by a single connection to model a per-stream cap.
//
// The zero value is not usable; construct with NewBucket. A nil
// *Bucket is a valid "unlimited" limiter: all its methods are no-ops.
type Bucket struct {
	mu     sync.Mutex
	clk    Clock
	rate   float64 // tokens per emulated second
	burst  float64
	tokens float64
	last   time.Time // wall time of last refill
}

// NewBucket returns a bucket producing rate tokens per emulated second
// with the given burst capacity. The bucket starts full. A rate <= 0
// returns nil, meaning unlimited.
func NewBucket(clk Clock, rate float64, burst float64) *Bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &Bucket{clk: clk, rate: rate, burst: burst, tokens: burst, last: clk.Now()}
}

// Rate returns the configured token rate per emulated second, or 0 for
// an unlimited (nil) bucket.
func (b *Bucket) Rate() float64 {
	if b == nil {
		return 0
	}
	return b.rate
}

// refillLocked adds tokens for emulated time elapsed since last refill.
func (b *Bucket) refillLocked(now time.Time) {
	elapsed := b.clk.ToEmu(now.Sub(b.last))
	b.last = now
	if elapsed <= 0 {
		return
	}
	b.tokens += elapsed.Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Take consumes n tokens, sleeping on the clock until the debt would
// be repaid. Take allows the bucket to go negative (a single large
// take larger than the burst is paid for by one proportional sleep),
// which keeps large chunk transfers from being artificially serialized
// into burst-sized pieces.
func (b *Bucket) Take(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.refillLocked(b.clk.Now())
	b.tokens -= float64(n)
	var wait time.Duration
	if b.tokens < 0 {
		wait = time.Duration(-b.tokens / b.rate * float64(time.Second))
	}
	b.mu.Unlock()
	if wait > 0 {
		b.clk.Sleep(wait)
	}
}

// TryTake consumes n tokens only if they are available now, returning
// whether it succeeded. Used by tests and opportunistic senders.
func (b *Bucket) TryTake(n int) bool {
	if b == nil || n <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.clk.Now())
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Available reports the token balance right now (may be negative if a
// large Take is still being paid off).
func (b *Bucket) Available() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.clk.Now())
	return b.tokens
}
