package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"

	"cloudburst/internal/faults"
	"time"
)

func TestBufferedPipeRoundTrip(t *testing.T) {
	a, b := bufferedPipe()
	defer a.Close()
	defer b.Close()

	msg := []byte("hello over the pipe")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestBufferedPipeWriteDoesNotBlock(t *testing.T) {
	a, b := bufferedPipe()
	defer a.Close()
	defer b.Close()
	// Unlike net.Pipe, a write with no pending reader must complete.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			if _, err := a.Write(make([]byte, 1024)); err != nil {
				t.Error(err)
				break
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("buffered pipe write blocked")
	}
}

func TestBufferedPipeCloseUnblocksReader(t *testing.T) {
	a, b := bufferedPipe()
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 10)
		_, err := b.Read(buf)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != io.EOF {
			t.Fatalf("read after close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestBufferedPipeBidirectional(t *testing.T) {
	a, b := bufferedPipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Write([]byte("ping"))
		buf := make([]byte, 4)
		io.ReadFull(a, buf)
		if string(buf) != "pong" {
			t.Errorf("a read %q", buf)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 4)
		io.ReadFull(b, buf)
		if string(buf) != "ping" {
			t.Errorf("b read %q", buf)
		}
		b.Write([]byte("pong"))
	}()
	wg.Wait()
}

func TestShapedConnDataIntegrity(t *testing.T) {
	s := NewShaper(Instant(), Link{Name: "test", Latency: time.Millisecond, PerStream: 1 << 20})
	a, b := s.Pipe()
	defer a.Close()
	defer b.Close()

	payload := make([]byte, 128<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		a.Write(payload)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("shaped conn corrupted the payload")
	}
}

func TestShapedConnBandwidthPacing(t *testing.T) {
	// 1 MB per emulated second, scale 0.001: 4 MB should need >= ~3ms.
	clk := Scaled(0.001)
	s := NewShaper(clk, Link{Name: "slow", PerStream: 1 << 20, Burst: 64 << 10})
	a, b := s.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)

	start := time.Now()
	chunk := make([]byte, 256<<10)
	for sent := 0; sent < 4<<20; sent += len(chunk) {
		if _, err := a.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("4MB through 1MB/s link finished in %v, too fast", elapsed)
	}
}

func TestShapedConnLatencyOnIdle(t *testing.T) {
	// 100 emulated ms latency at scale 0.01 = 1ms wall per idle burst.
	clk := Scaled(0.01)
	s := NewShaper(clk, Link{Name: "lagged", Latency: 100 * time.Millisecond})
	a, b := s.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)

	start := time.Now()
	a.Write([]byte("x")) // idle -> pays latency
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Fatalf("first write skipped latency: %v", elapsed)
	}
	// A back-to-back write should not pay latency again.
	start = time.Now()
	a.Write([]byte("y"))
	if elapsed := time.Since(start); elapsed > 500*time.Microsecond {
		t.Fatalf("pipelined write paid latency: %v", elapsed)
	}
}

func TestShaperAggregateShared(t *testing.T) {
	clk := Scaled(0.001)
	link := Link{Name: "agg", Aggregate: 1 << 20, Burst: 32 << 10}
	s := NewShaper(clk, link)
	// Two independent conns share the aggregate bucket: pushing 2 MB
	// on each (4 MB total) must take >= ~3 emulated seconds = 3ms.
	a1, b1 := s.Pipe()
	a2, b2 := s.Pipe()
	defer a1.Close()
	defer b1.Close()
	defer a2.Close()
	defer b2.Close()
	go io.Copy(io.Discard, b1)
	go io.Copy(io.Discard, b2)

	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range []net.Conn{a1, a2} {
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			buf := make([]byte, 128<<10)
			for sent := 0; sent < 2<<20; sent += len(buf) {
				c.Write(buf)
			}
		}(c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("aggregate cap not enforced across conns: %v", elapsed)
	}
}

func TestShaperTCPListener(t *testing.T) {
	clk := Instant()
	s := NewShaper(clk, DefaultLAN())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shaped := s.Listener(ln)
	defer shaped.Close()

	go func() {
		conn, err := shaped.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(conn, conn) // echo
	}()

	dial := s.Dialer()
	conn, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("echo me through shaped tcp")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestDefaultLinkProfiles(t *testing.T) {
	lan, wan := DefaultLAN(), DefaultWAN()
	s3i, s3e := DefaultS3Internal(), DefaultS3External()
	if lan.Latency >= wan.Latency {
		t.Fatal("LAN latency should be below WAN latency")
	}
	if lan.PerStream <= wan.PerStream {
		t.Fatal("LAN per-stream bandwidth should exceed WAN")
	}
	if s3i.PerStream <= s3e.PerStream {
		t.Fatal("S3-internal should be faster than S3-external")
	}
	for _, l := range []Link{lan, wan, s3i, s3e} {
		if l.Name == "" {
			t.Fatal("link profile missing name")
		}
		if b := l.burstFor(l.PerStream); b <= 0 {
			t.Fatalf("link %s has non-positive burst", l.Name)
		}
	}
}

func TestShapeBothPacesReads(t *testing.T) {
	// Duplex shaping: an unshaped writer's traffic is paced on the
	// shaped reader's side (how deployments shape the head->master
	// direction without wrapping the head's listener).
	clk := Scaled(0.001)
	s := NewShaper(clk, Link{Name: "duplex", PerStream: 1 << 20, Burst: 32 << 10})
	a, b := bufferedPipe()
	shaped := s.ShapeBoth(a)
	defer shaped.Close()
	defer b.Close()

	go func() {
		payload := make([]byte, 4<<20)
		b.Write(payload) // unshaped sender
	}()
	start := time.Now()
	got := 0
	buf := make([]byte, 256<<10)
	for got < 4<<20 {
		n, err := shaped.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	// 4 MB at 1 MB/emulated-second, scale 0.001 -> >= ~3ms wall.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("duplex read not paced: %v", elapsed)
	}
}

func TestShapeBothPreservesData(t *testing.T) {
	s := NewShaper(Instant(), Link{Latency: time.Millisecond, PerStream: 1 << 30})
	a, b := bufferedPipe()
	shaped := s.ShapeBoth(a)
	defer shaped.Close()
	defer b.Close()

	want := make([]byte, 64<<10)
	for i := range want {
		want[i] = byte(i * 13)
	}
	go b.Write(want)
	got := make([]byte, len(want))
	if _, err := io.ReadFull(shaped, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("duplex shaping corrupted data")
	}
}

func TestDialerBothTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(conn, conn)
	}()
	s := NewShaper(Instant(), DefaultLAN())
	conn, err := s.DialerBoth()("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("duplex echo")
	conn.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q", got)
	}
}

func TestShaperInjectFaults(t *testing.T) {
	plan := faults.NewPlan(4,
		faults.Spec{Kind: faults.Transient, FirstN: 1},
	)
	s := NewShaper(Instant(), Link{Name: "wan"}).InjectFaults(plan, "local")
	a, b := s.Pipe()
	defer a.Close()
	defer b.Close()

	// First write fails with a retryable error; the next goes through.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("first write should be failed by the plan")
	} else if !faults.IsInjected(err) {
		t.Fatalf("unexpected error type: %v", err)
	}
	msg := []byte("second write")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("post-fault write corrupted")
	}
	if plan.Total() != 1 {
		t.Fatalf("injected = %d", plan.Total())
	}
}

func TestShaperInjectReset(t *testing.T) {
	plan := faults.NewPlan(8, faults.Spec{Kind: faults.Reset, FirstN: 1})
	s := NewShaper(Instant(), Link{Name: "wan"}).InjectFaults(plan, "local")
	a, b := s.Pipe()
	defer a.Close()
	defer b.Close()

	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("reset write should error")
	}
	// The peer sees the severed connection as EOF.
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err == nil {
		t.Fatal("peer of a reset conn should see EOF")
	}
}
