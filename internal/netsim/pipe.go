package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// bufferedPipe returns a full-duplex in-memory connection pair. Unlike
// net.Pipe, writes complete without waiting for a matching read, which
// matches TCP semantics closely enough for protocol code that may have
// both ends writing concurrently.
func bufferedPipe() (net.Conn, net.Conn) {
	ab := newPipeHalf()
	ba := newPipeHalf()
	a := &pipeConn{r: ba, w: ab, name: "pipe-a"}
	b := &pipeConn{r: ab, w: ba, name: "pipe-b"}
	return a, b
}

// pipeHalf is a one-directional byte queue.
type pipeHalf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipeHalf() *pipeHalf {
	h := &pipeHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *pipeHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, errors.New("netsim: write on closed pipe")
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *pipeHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 && !h.closed {
		h.cond.Wait()
	}
	if len(h.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	return n, nil
}

func (h *pipeHalf) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

type pipeConn struct {
	r, w *pipeHalf
	name string
}

func (c *pipeConn) Read(p []byte) (int, error)  { return c.r.read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.w.write(p) }

func (c *pipeConn) Close() error {
	c.w.close()
	c.r.close()
	return nil
}

type pipeAddr string

func (a pipeAddr) Network() string { return "pipe" }
func (a pipeAddr) String() string  { return string(a) }

func (c *pipeConn) LocalAddr() net.Addr                { return pipeAddr(c.name) }
func (c *pipeConn) RemoteAddr() net.Addr               { return pipeAddr(c.name) }
func (c *pipeConn) SetDeadline(t time.Time) error      { return nil }
func (c *pipeConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *pipeConn) SetWriteDeadline(t time.Time) error { return nil }
