package netsim

import (
	"net"
	"sync"
	"time"

	"cloudburst/internal/faults"
)

// ShapedConn wraps a net.Conn so that writes are paced by a link
// profile: a one-way latency charged once per message burst, a
// per-stream bandwidth bucket, and (optionally) a bucket shared with
// other connections on the same link for an aggregate cap.
//
// Shaping is applied on the write side only; applying it on both sides
// would double-charge every byte. Reads pass through untouched.
type ShapedConn struct {
	net.Conn

	clk       Clock
	latency   time.Duration
	perStream *Bucket
	aggregate *Bucket
	// readPerStream, when non-nil, paces the read side too (duplex
	// shaping for connections whose peer is not itself shaped).
	readPerStream *Bucket
	readLatency   time.Duration

	faultPlan *faults.Plan
	faultSite string
	faultObj  string

	mu        sync.Mutex
	lastWrite time.Time
	lastRead  time.Time
}

// Shape wraps conn with this shaper's link policy on the write side.
func (s *Shaper) Shape(conn net.Conn) *ShapedConn {
	return &ShapedConn{
		Conn:      conn,
		clk:       s.clk,
		latency:   s.link.Latency,
		perStream: NewBucket(s.clk, s.link.PerStream, s.link.burstFor(s.link.PerStream)),
		aggregate: s.aggregate,
		faultPlan: s.faultPlan,
		faultSite: s.faultSite,
		faultObj:  s.link.Name,
	}
}

// ShapeBoth wraps conn with the link policy on both directions, for
// use when only one endpoint of the connection is wrapped (e.g. a
// client dialing an unshaped server): inbound traffic is paced on
// delivery, outbound on send.
func (s *Shaper) ShapeBoth(conn net.Conn) *ShapedConn {
	c := s.Shape(conn)
	c.readPerStream = NewBucket(s.clk, s.link.PerStream, s.link.burstFor(s.link.PerStream))
	c.readLatency = s.link.Latency
	return c
}

// Read paces inbound bytes when duplex shaping is enabled.
func (c *ShapedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && (c.readPerStream != nil || c.readLatency > 0) {
		if c.readLatency > 0 {
			now := c.clk.Now()
			c.mu.Lock()
			idle := c.lastRead.IsZero() || c.clk.ToEmu(now.Sub(c.lastRead)) >= c.readLatency
			c.mu.Unlock()
			if idle {
				c.clk.Sleep(c.readLatency)
			}
		}
		c.readPerStream.Take(n)
		c.aggregate.Take(n)
		c.mu.Lock()
		c.lastRead = c.clk.Now()
		c.mu.Unlock()
	}
	return n, err
}

// DialerBoth is like Dialer but shapes both directions of the
// resulting connections.
func (s *Shaper) DialerBoth() func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return s.ShapeBoth(conn), nil
	}
}

// Write paces the payload through the link and then writes it to the
// underlying connection. Latency is charged only when the connection
// has been idle for at least one latency period: back-to-back writes
// model a pipelined stream whose propagation delay is already hidden.
func (c *ShapedConn) Write(p []byte) (int, error) {
	if d := c.faultPlan.Decide(c.faultSite, c.faultObj); d.Kind != faults.None {
		switch d.Kind {
		case faults.Stall:
			c.clk.Sleep(d.Stall)
		case faults.Reset:
			// Sever the path abruptly: the peer sees EOF, this side an
			// error — the shape of a mid-stream connection reset.
			c.Conn.Close()
			return 0, faults.RequestError(d, c.faultSite, c.faultObj)
		default:
			return 0, faults.RequestError(d, c.faultSite, c.faultObj)
		}
	}
	if c.latency > 0 {
		now := c.clk.Now()
		c.mu.Lock()
		idle := c.lastWrite.IsZero() || c.clk.ToEmu(now.Sub(c.lastWrite)) >= c.latency
		c.mu.Unlock()
		if idle {
			c.clk.Sleep(c.latency)
		}
	}
	c.perStream.Take(len(p))
	c.aggregate.Take(len(p))
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.lastWrite = c.clk.Now()
	c.mu.Unlock()
	return n, err
}

// Dialer produces connections whose writes are shaped by this shaper.
// It is shaped on the dialing side, so it models the client's uplink;
// for symmetric paths wrap the accepting side too (see Listener).
func (s *Shaper) Dialer() func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return s.Shape(conn), nil
	}
}

// Listener wraps l so every accepted connection is shaped by s (the
// server's downlink toward each peer).
func (s *Shaper) Listener(l net.Listener) net.Listener {
	return &shapedListener{Listener: l, s: s}
}

type shapedListener struct {
	net.Listener
	s *Shaper
}

func (l *shapedListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.s.Shape(conn), nil
}

// Pipe returns an in-memory, buffered connection pair whose a->b and
// b->a directions are both shaped by s. It is used by in-process
// deployments and tests that do not want to open TCP sockets.
func (s *Shaper) Pipe() (net.Conn, net.Conn) {
	a, b := bufferedPipe()
	return s.Shape(a), s.Shape(b)
}
