package netsim

import (
	"time"

	"cloudburst/internal/faults"
)

// Link describes the characteristics of a network path between two
// sites. Bandwidth figures are bytes per emulated second; Latency is
// the one-way emulated delay charged to a message burst.
//
// A Link with zero values everywhere imposes no shaping at all.
type Link struct {
	// Name identifies the link in logs and metrics ("lan", "wan", ...).
	Name string
	// Latency is the one-way delay added to the first write of a burst.
	Latency time.Duration
	// PerStream caps each individual connection, in bytes per emulated
	// second. Zero means unlimited per stream.
	PerStream float64
	// Aggregate caps the sum of all connections sharing this link, in
	// bytes per emulated second. Zero means unlimited.
	Aggregate float64
	// Burst is the token burst for both caps, in bytes. Zero picks a
	// default of 64 KiB or 1/20th of a second of the rate, whichever is
	// larger.
	Burst float64
}

func (l Link) burstFor(rate float64) float64 {
	if l.Burst > 0 {
		return l.Burst
	}
	b := rate / 20
	if b < 64<<10 {
		b = 64 << 10
	}
	return b
}

// Shaper applies one Link's policy to any number of connections. The
// aggregate bucket is shared by every connection attached to the
// shaper; each connection additionally gets its own per-stream bucket.
type Shaper struct {
	clk       Clock
	link      Link
	aggregate *Bucket

	faultPlan *faults.Plan
	faultSite string
}

// InjectFaults makes every connection subsequently shaped by s consult
// plan on writes, with faults attributed to site and keyed by the link
// name. Reset decisions sever the connection; Stall decisions freeze
// the write for the spec's duration; Transient and SlowDown fail the
// write with a retryable error. Returns s for chaining.
func (s *Shaper) InjectFaults(plan *faults.Plan, site string) *Shaper {
	s.faultPlan = plan
	s.faultSite = site
	return s
}

// NewShaper builds a Shaper for the given link on the given clock.
func NewShaper(clk Clock, link Link) *Shaper {
	if clk == nil {
		clk = Instant()
	}
	return &Shaper{
		clk:       clk,
		link:      link,
		aggregate: NewBucket(clk, link.Aggregate, link.burstFor(link.Aggregate)),
	}
}

// Link returns the link profile this shaper enforces.
func (s *Shaper) Link() Link { return s.link }

// Clock returns the clock the shaper paces on.
func (s *Shaper) Clock() Clock { return s.clk }

// Common link profiles, scaled down ~1000x from the paper's hardware
// alongside the ~1000x dataset scale-down (120 GB -> ~120 MB), so the
// retrieval:compute:communication ratios match the 2011 testbed:
//
//   - LAN: intra-cluster Infiniband / local disk path. Effectively
//     unconstrained relative to the others.
//   - WAN: the path between the local cluster and the cloud (used for
//     head<->master control traffic, reduction-object exchange, and
//     stolen-job data retrieval).
//   - S3Internal: EC2 instances reading from S3 inside AWS.
//   - S3External: the local cluster reading from S3 across the WAN.

// DefaultLAN returns the intra-cluster link profile.
func DefaultLAN() Link {
	return Link{Name: "lan", Latency: 200 * time.Microsecond, PerStream: 400 << 20, Aggregate: 2 << 30}
}

// DefaultWAN returns the inter-site control/data link profile.
func DefaultWAN() Link {
	return Link{Name: "wan", Latency: 40 * time.Millisecond, PerStream: 16 << 20, Aggregate: 64 << 20}
}

// DefaultS3Internal returns the cloud-local S3 access profile.
func DefaultS3Internal() Link {
	return Link{Name: "s3-internal", Latency: 10 * time.Millisecond, PerStream: 24 << 20, Aggregate: 96 << 20}
}

// DefaultS3External returns the S3-over-WAN access profile used when
// the local cluster steals jobs whose data lives in the cloud.
func DefaultS3External() Link {
	return Link{Name: "s3-external", Latency: 50 * time.Millisecond, PerStream: 10 << 20, Aggregate: 40 << 20}
}
