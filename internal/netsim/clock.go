// Package netsim provides the network and time emulation substrate used
// to reproduce the paper's hybrid local-cluster / cloud environment on a
// single machine.
//
// Three facilities live here:
//
//   - Clock: a scalable virtual clock. All pacing in the system (compute
//     pacing, bandwidth shaping, latency injection) sleeps through a
//     Clock, so a single scale factor compresses the paper's
//     minutes-long runs into seconds without changing any ratios.
//   - Bucket: a token-bucket rate limiter expressed in emulated time,
//     used for per-connection and aggregate bandwidth caps.
//   - Link / shaped connections: net.Conn wrappers that impose a link
//     profile (latency + bandwidth) on all traffic crossing them.
package netsim

import (
	"time"
)

// Clock abstracts time so that emulated durations can be compressed.
// Durations handed to Sleep, buckets, and pacers are in emulated time;
// Now always reports wall time (used only for measuring elapsed wall
// durations, which callers convert back with ToEmu).
type Clock interface {
	// Now returns the current wall-clock time.
	Now() time.Time
	// Sleep blocks for the emulated duration d.
	Sleep(d time.Duration)
	// ToWall converts an emulated duration to the wall duration it
	// occupies under this clock.
	ToWall(d time.Duration) time.Duration
	// ToEmu converts a measured wall duration back to emulated time.
	ToEmu(d time.Duration) time.Duration
}

// ScaledClock is a Clock that runs emulated time at a fixed multiple of
// wall time. Scale 1.0 is real time; Scale 0.01 makes one emulated
// second take 10ms of wall time. Scale 0 disables pacing entirely
// (Sleep returns immediately), which unit tests use to exercise logic
// without waiting.
type ScaledClock struct {
	// Scale is the wall seconds consumed per emulated second.
	Scale float64
}

// Real returns a real-time clock (scale 1.0).
func Real() *ScaledClock { return &ScaledClock{Scale: 1.0} }

// Scaled returns a clock that compresses emulated time by the given
// factor (e.g. 0.01 runs 100x faster than real time).
func Scaled(scale float64) *ScaledClock { return &ScaledClock{Scale: scale} }

// Instant returns a clock whose sleeps return immediately. ToEmu on an
// Instant clock returns 0 for any wall duration, as no wall time maps
// back to emulated time meaningfully.
func Instant() *ScaledClock { return &ScaledClock{Scale: 0} }

// Now implements Clock.
func (c *ScaledClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (c *ScaledClock) Sleep(d time.Duration) {
	if c.Scale <= 0 || d <= 0 {
		return
	}
	time.Sleep(c.ToWall(d))
}

// ToWall implements Clock.
func (c *ScaledClock) ToWall(d time.Duration) time.Duration {
	if c.Scale <= 0 || d <= 0 {
		return 0
	}
	return time.Duration(float64(d) * c.Scale)
}

// ToEmu implements Clock.
func (c *ScaledClock) ToEmu(d time.Duration) time.Duration {
	if c.Scale <= 0 || d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / c.Scale)
}
