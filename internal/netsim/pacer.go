package netsim

import (
	"time"
)

// Pacer models the compute throughput of one virtual core. The host
// machine may have a single physical CPU, so the paper's 32-64 core
// configurations cannot produce real parallel speedup here; instead
// each slave worker computes its reduction for real (correctness) and
// then pads the elapsed time so the group took exactly the emulated
// duration implied by the application's per-unit compute cost.
//
// This makes processing time deterministic and proportional to the
// configured per-core throughput while results stay exact.
type Pacer struct {
	clk Clock
	// UnitCost is the emulated compute time one core spends on one
	// data unit.
	unitCost time.Duration
}

// NewPacer returns a pacer for a core that spends unitCost of emulated
// time per data unit. A nil clock disables pacing.
func NewPacer(clk Clock, unitCost time.Duration) *Pacer {
	if clk == nil {
		clk = Instant()
	}
	return &Pacer{clk: clk, unitCost: unitCost}
}

// UnitCost returns the configured emulated cost per unit.
func (p *Pacer) UnitCost() time.Duration { return p.unitCost }

// Begin marks the start of processing a group of units and returns a
// token to pass to End.
func (p *Pacer) Begin() time.Time { return p.clk.Now() }

// End pads the wall time since start so that processing units data
// units took at least the emulated duration units*UnitCost. It returns
// the emulated duration charged for the group (the larger of the real
// elapsed emulated time and the modeled cost).
func (p *Pacer) End(start time.Time, units int) time.Duration {
	modeled := time.Duration(units) * p.unitCost
	elapsedWall := p.clk.Now().Sub(start)
	targetWall := p.clk.ToWall(modeled)
	if pad := targetWall - elapsedWall; pad > 0 {
		time.Sleep(pad)
		return modeled
	}
	emu := p.clk.ToEmu(elapsedWall)
	if emu < modeled {
		// Instant clock: no wall time maps back, charge the model.
		return modeled
	}
	return emu
}
