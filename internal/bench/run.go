package bench

import (
	"fmt"
	"sync"
	"time"

	"cloudburst/internal/apps"
	"cloudburst/internal/chunk"
	"cloudburst/internal/cluster"
	"cloudburst/internal/elastic"
	"cloudburst/internal/faults"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/workload"
)

// Dataset is a materialized workload: the file contents, independent
// of where the files are later placed. Building the bytes once lets a
// sweep over data distributions reuse them.
type Dataset struct {
	Spec       AppSpec
	RecordSize int
	Records    int64
	Names      []string
	Files      [][]byte
}

// GeneratorFor picks the deterministic generator matching an
// instantiated application. records is the requested record count;
// the returned count may differ (pagerank's edge count follows from
// its graph parameters).
func GeneratorFor(app gr.App, records int64) (workload.Generator, int64, error) {
	switch a := app.(type) {
	case *apps.KNN:
		return workload.Points{Dims: a.Dims, Seed: 1001, WithID: true}, records, nil
	case *apps.KMeans:
		return workload.Points{Dims: a.Dims, Seed: 2002}, records, nil
	case *apps.PageRank:
		return a.Graph, a.Graph.TotalEdges(), nil
	case *apps.WordCount:
		return workload.Words{Width: a.Width, Vocab: 5000, Seed: 3003}, records, nil
	default:
		return nil, 0, fmt.Errorf("bench: no generator for app %T", app)
	}
}

// BuildDataset instantiates the app and materializes its data set.
func BuildDataset(spec AppSpec) (*Dataset, error) {
	spec = spec.withDefaults()
	app, err := gr.New(spec.Name, spec.Params)
	if err != nil {
		return nil, err
	}
	gen, records, err := GeneratorFor(app, spec.Records)
	if err != nil {
		return nil, err
	}
	if records < int64(spec.Files) {
		return nil, fmt.Errorf("bench: %d records over %d files", records, spec.Files)
	}
	rs := int64(gen.RecordSize())
	if gen.RecordSize() != app.RecordSize() {
		return nil, fmt.Errorf("bench: generator record size %d != app %d", gen.RecordSize(), app.RecordSize())
	}
	d := &Dataset{Spec: spec, RecordSize: int(rs), Records: records}
	per := records / int64(spec.Files)
	extra := records % int64(spec.Files)
	var next int64
	for f := 0; f < spec.Files; f++ {
		n := per
		if int64(f) < extra {
			n++
		}
		buf := make([]byte, n*rs)
		workload.GenInto(gen, next, buf)
		next += n
		d.Files = append(d.Files, buf)
		d.Names = append(d.Names, fmt.Sprintf("%s-%02d.bin", spec.Name, f))
	}
	return d, nil
}

// datasetCache memoizes materialized datasets across runs of a sweep.
var datasetCache struct {
	mu sync.Mutex
	m  map[string]*Dataset
}

// CachedDataset returns (building if needed) the dataset for spec.
func CachedDataset(spec AppSpec) (*Dataset, error) {
	spec = spec.withDefaults()
	key := fmt.Sprintf("%s|%v|%d|%d", spec.Name, spec.Params, spec.Records, spec.Files)
	datasetCache.mu.Lock()
	defer datasetCache.mu.Unlock()
	if datasetCache.m == nil {
		datasetCache.m = make(map[string]*Dataset)
	}
	if d, ok := datasetCache.m[key]; ok {
		return d, nil
	}
	d, err := BuildDataset(spec)
	if err != nil {
		return nil, err
	}
	datasetCache.m[key] = d
	return d, nil
}

// ChaosParams turns a run into a chaos scenario: every S3-backed
// store view consults a seeded fault plan, slaves retry transient
// failures with capped exponential backoff, and heartbeats detect
// stalled peers. The local storage node stays fault-free — the faults
// model object-store flakiness (throttles, dropped connections), not
// disk corruption.
type ChaosParams struct {
	// Seed makes the injected fault sequence reproducible.
	Seed int64
	// TransientProb / SlowDownProb are per-request fault probabilities
	// on the S3 views, applied after FirstN guaranteed transients.
	TransientProb float64
	SlowDownProb  float64
	// FirstN fires that many transient faults up front per (site,
	// object), so even tiny runs see injection.
	FirstN int
	// Heartbeat is the liveness interval (wall time; zero disables
	// stall detection); Misses silent intervals declare a peer lost
	// (default 3).
	Heartbeat time.Duration
	Misses    int
	// Retry overrides the retrieval retry policy; the zero value uses
	// DefaultRetryPolicy seeded from Seed.
	Retry store.RetryPolicy
}

// DefaultChaos returns a moderate chaos configuration: a few
// guaranteed transients, 2% transient and 2% throttle probability,
// and 50 ms heartbeats.
func DefaultChaos(seed int64) ChaosParams {
	return ChaosParams{
		Seed:          seed,
		TransientProb: 0.02,
		SlowDownProb:  0.02,
		FirstN:        4,
		Heartbeat:     50 * time.Millisecond,
	}
}

// plan builds the seeded fault plan the S3 views consult.
func (p ChaosParams) plan() *faults.Plan {
	return faults.NewPlan(p.Seed,
		faults.Spec{Kind: faults.Transient, FirstN: p.FirstN, Prob: p.TransientProb},
		faults.Spec{Kind: faults.SlowDown, Prob: p.SlowDownProb},
	)
}

// retry resolves the retrieval retry policy.
func (p ChaosParams) retry() store.RetryPolicy {
	if p.Retry.Enabled() {
		return p.Retry
	}
	r := store.DefaultRetryPolicy()
	r.Seed = uint64(p.Seed)
	return r
}

// RunConfig describes one experiment run.
type RunConfig struct {
	Spec AppSpec
	// Dataset reuses a prebuilt data set; nil builds (and caches) one.
	Dataset *Dataset
	// LocalPct is the percentage of files stored at the local site
	// (100 = all local; the paper's env-33/67 stores 33% locally).
	LocalPct int
	// LocalCores / CloudCores are the virtual core counts; a zero
	// count omits that cluster entirely (env-local / env-cloud).
	LocalCores int
	CloudCores int
	Sim        SimParams
	// Scatter disables consecutive-job assignment (ablation knob).
	Scatter bool
	// Batch overrides the master's refill batch size (0 = default).
	Batch int
	// JobsPerRequest overrides the slaves' per-request job count
	// (large values approximate static partitioning; ablation knob).
	JobsPerRequest int
	// CloudJitter spreads cloud core speeds by ±CloudJitter, modeling
	// EC2 performance variability.
	CloudJitter float64
	// Prefetch turns on the slave retrieval pipeline: each core
	// requests and fetches its next grant while the current one
	// reduces, hiding retrieval behind compute.
	Prefetch bool
	// PrefetchBudget caps per-slave in-flight prefetched bytes (zero
	// picks the slave default, negative is unlimited).
	PrefetchBudget int64
	// FetchAutotune replaces the static Sim.FetchThreads with per-link
	// AIMD controllers on every slave (Sim.FetchThreads seeds them).
	FetchAutotune bool
	// HintDepth piggybacks up to this many likely-next jobs as
	// prefetch hints on every master grant (zero disables hints).
	HintDepth int
	// CacheBytes gives every site a chunk cache of this many bytes
	// (zero disables caching).
	CacheBytes int64
	// BufferBytes gives every HomeFetch site a burst buffer of this
	// capacity between its slaves and S3 (zero disables the tier).
	BufferBytes int64
	// StageBudget caps the bytes each master stages into its site's
	// buffer (zero = unlimited; meaningful with BufferBytes+HintDepth).
	StageBudget int64
	// Chaos, when set, injects faults into the run (see ChaosParams).
	Chaos *ChaosParams
	// Elastic, when set, runs the deadline/cost scaling controller for
	// one site (see cluster.DeployConfig.Elastic).
	Elastic *elastic.Config
	// Revocations, when set, preempts provisioned spot workers on the
	// trace's schedule (see cluster.DeployConfig.Revocations).
	Revocations *faults.RevocationTrace
	// CheckpointJobs ships a partial-reduction checkpoint from every
	// slave each N processed jobs (zero disables).
	CheckpointJobs int
	// SyncMode selects the global-reduction sync strategy (see
	// cluster.DeployConfig.SyncMode); empty picks streamed-parallel.
	SyncMode string
	// MergeCost charges combine folds an emulated duration per byte
	// (see cluster.DeployConfig.MergeCost); zero charges nothing.
	MergeCost time.Duration
	Logf      func(format string, args ...any)
}

// EnvResult is one configuration's outcome.
type EnvResult struct {
	Env        string
	App        string
	LocalCores int
	CloudCores int
	Report     *metrics.RunReport
}

// Deployment is everything BuildDeploy derives from a RunConfig:
// the cluster deployment ready for cluster.Run (or an iterative
// driver), plus the fault plan behind its S3 views for reporting.
type Deployment struct {
	Deploy cluster.DeployConfig
	Plan   *faults.Plan
}

// BuildDeploy assembles the full middleware stack for one
// configuration — workload placement, index generation, shaped store
// views, site specs — without running it. Execute feeds the result to
// cluster.Run; iterative experiments hand it to a driver instead so
// one placement serves many passes.
func BuildDeploy(cfg RunConfig) (*Deployment, error) {
	spec := cfg.Spec.withDefaults()
	if cfg.LocalCores == 0 && cfg.CloudCores == 0 {
		return nil, fmt.Errorf("bench: no cores configured")
	}
	d := cfg.Dataset
	if d == nil {
		var err error
		if d, err = CachedDataset(spec); err != nil {
			return nil, err
		}
	}
	app, err := gr.New(spec.Name, spec.Params)
	if err != nil {
		return nil, err
	}

	scale := cfg.Sim.Scale
	if spec.Scale > 0 && !cfg.Sim.ScaleForced {
		scale = spec.Scale
	}
	clk := netsim.Scaled(scale)

	// Stores: the local storage node and the simulated S3 service,
	// each a Service whose views share the site's egress budget.
	localSvc := store.NewService(clk, cfg.Sim.LocalEgress)
	s3Svc := store.NewService(clk, cfg.Sim.S3Egress)

	localFiles := (len(d.Files)*cfg.LocalPct + 50) / 100
	if cfg.LocalCores == 0 {
		localFiles = 0 // env-cloud stores everything in S3
	}
	if cfg.CloudCores == 0 {
		localFiles = len(d.Files) // env-local stores everything locally
	}
	var metas []chunk.FileMeta
	for f, buf := range d.Files {
		site := "cloud"
		svc := s3Svc
		if f < localFiles {
			site = "local"
			svc = localSvc
		}
		svc.Objects.Put(d.Names[f], buf)
		metas = append(metas, chunk.FileMeta{Name: d.Names[f], Site: site, Size: int64(len(buf))})
	}

	// Chunk size targeting spec.Jobs total jobs.
	totalBytes := int64(0)
	for _, buf := range d.Files {
		totalBytes += int64(len(buf))
	}
	chunkBytes := totalBytes / int64(spec.Jobs)
	chunkBytes -= chunkBytes % int64(d.RecordSize)
	if chunkBytes < int64(d.RecordSize) {
		chunkBytes = int64(d.RecordSize)
	}
	stores := map[string]store.Store{"local": localSvc.Objects, "cloud": s3Svc.Objects}
	idx, err := chunk.Build(stores, metas, chunk.BuildOptions{
		RecordSize: int32(d.RecordSize), ChunkBytes: chunkBytes,
	})
	if err != nil {
		return nil, err
	}

	// Chaos runs inject faults into every S3-backed view (the paths
	// that model a flaky object store) and enable retries + liveness.
	var plan *faults.Plan
	fetch := store.FetchOptions{
		Threads: cfg.Sim.FetchThreads, RangeSize: cfg.Sim.FetchRange,
	}
	var heartbeat time.Duration
	misses := 0
	if cfg.Chaos != nil {
		plan = cfg.Chaos.plan()
		fetch.Retry = cfg.Chaos.retry()
		heartbeat = cfg.Chaos.Heartbeat
		misses = cfg.Chaos.Misses
	}

	var sites []cluster.SiteSpec
	if cfg.LocalCores > 0 {
		sites = append(sites, cluster.SiteSpec{
			Name:  "local",
			Cores: cfg.LocalCores,
			// The local cluster reads its storage node per-stream
			// bound; stolen jobs cross to S3 over the WAN.
			HomeStore: localSvc.View(cfg.Sim.LocalDisk).WithSeekPenalty(cfg.Sim.LocalSeek),
			RemoteStores: map[string]store.Store{
				"cloud": s3Svc.View(cfg.Sim.S3External).WithFaults(plan, "local"),
			},
			HeadLink:  cfg.Sim.HeadLAN,
			SlaveLink: cfg.Sim.SlaveLAN,
		})
	}
	if cfg.CloudCores > 0 {
		scale := cfg.Sim.CloudCostScale
		if spec.CloudCostScale > 0 {
			scale = spec.CloudCostScale
		}
		sites = append(sites, cluster.SiteSpec{
			Name:  "cloud",
			Cores: cfg.CloudCores,
			// EC2 reads S3 with concurrent range requests even for its
			// own jobs; stolen jobs pull from the local storage node
			// across the WAN.
			HomeStore: s3Svc.View(cfg.Sim.S3Internal).WithFaults(plan, "cloud"),
			HomeFetch: true,
			RemoteStores: map[string]store.Store{
				"local": localSvc.View(cfg.Sim.LocalFromCloud),
			},
			HeadLink:      cfg.Sim.HeadWAN,
			SlaveLink:     cfg.Sim.SlaveLAN,
			UnitCostScale: scale,
			CostJitter:    cfg.CloudJitter,
		})
	}

	return &Deployment{
		Deploy: cluster.DeployConfig{
			App: app, Index: idx, Sites: sites, Clock: clk,
			GroupUnits:        cfg.Sim.GroupUnits,
			Fetch:             fetch,
			Scatter:           cfg.Scatter,
			Batch:             cfg.Batch,
			JobsPerRequest:    cfg.JobsPerRequest,
			Prefetch:          cfg.Prefetch,
			PrefetchBudget:    cfg.PrefetchBudget,
			FetchAutotune:     cfg.FetchAutotune,
			HintDepth:         cfg.HintDepth,
			CacheBytes:        cfg.CacheBytes,
			BufferBytes:       cfg.BufferBytes,
			StageBudget:       cfg.StageBudget,
			HeartbeatInterval: heartbeat,
			HeartbeatMisses:   misses,
			Elastic:           cfg.Elastic,
			Revocations:       cfg.Revocations,
			CheckpointJobs:    cfg.CheckpointJobs,
			SyncMode:          cfg.SyncMode,
			MergeCost:         cfg.MergeCost,
			Logf:              cfg.Logf,
		},
		Plan: plan,
	}, nil
}

// Execute runs one configuration through the full middleware stack:
// workload placement, index generation, head/master/slave deployment
// over shaped loopback links, and global reduction.
func Execute(cfg RunConfig) (*EnvResult, error) {
	dep, err := BuildDeploy(cfg)
	if err != nil {
		return nil, err
	}
	res, err := cluster.Run(dep.Deploy)
	if err != nil {
		return nil, err
	}
	res.Report.Env = envName(cfg)
	if dep.Plan != nil {
		res.Report.Faults.Injected = dep.Plan.Total()
	}
	return &EnvResult{
		Env: res.Report.Env, App: cfg.Spec.withDefaults().Name,
		LocalCores: cfg.LocalCores, CloudCores: cfg.CloudCores,
		Report: res.Report,
	}, nil
}

func envName(cfg RunConfig) string {
	switch {
	case cfg.CloudCores == 0:
		return "env-local"
	case cfg.LocalCores == 0:
		return "env-cloud"
	default:
		return fmt.Sprintf("env-%d/%d", cfg.LocalPct, 100-cfg.LocalPct)
	}
}
