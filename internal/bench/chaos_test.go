package bench

import (
	"strings"
	"testing"
	"time"

	"cloudburst/internal/store"
)

func tinyChaos(seed int64) ChaosParams {
	p := DefaultChaos(seed)
	p.Heartbeat = 25 * time.Millisecond
	// Back off in microseconds: the tiny specs run unpaced.
	p.Retry = store.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Microsecond}
	p.Retry.Seed = uint64(seed)
	return p
}

func TestChaosMatchesCleanRun(t *testing.T) {
	r, err := Chaos(tinySpec(), tinySim(), tinyChaos(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Fatalf("faulted digest %q != clean %q",
			r.Faulted.Report.FinalResult, r.Baseline.Report.FinalResult)
	}
	f := r.Faulted.Report.Faults
	if f.Injected == 0 {
		t.Fatal("chaos run injected nothing")
	}
	if f.Retries == 0 || f.BackoffEmu <= 0 {
		t.Fatalf("no retries recorded: %+v", f)
	}
	if b := r.Baseline.Report.Faults; b.Any() {
		t.Fatalf("baseline saw faults: %+v", b)
	}
	out := RenderChaos(r)
	if !strings.Contains(out, "results match") || !strings.Contains(out, "injected:") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestChaosInjectionReproducible(t *testing.T) {
	a, err := Chaos(tinySpec(), tinySim(), tinyChaos(21), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(tinySpec(), tinySim(), tinyChaos(21), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Match || !b.Match {
		t.Fatal("chaos run diverged from clean run")
	}
	// FirstN injections are deterministic in the plan seed regardless
	// of request interleaving; both runs must see at least that many.
	if a.Faulted.Report.Faults.Injected < int64(a.Params.FirstN) ||
		b.Faulted.Report.Faults.Injected < int64(b.Params.FirstN) {
		t.Fatalf("injected %d / %d < firstN %d",
			a.Faulted.Report.Faults.Injected,
			b.Faulted.Report.Faults.Injected, a.Params.FirstN)
	}
}
