package bench

import (
	"strings"
	"testing"
	"time"
)

// tinySpec returns a minimal wordcount spec that exercises the full
// pipeline in milliseconds (Instant-equivalent scale).
func tinySpec() AppSpec {
	return AppSpec{
		Name:    "wordcount",
		Params:  map[string]string{"width": "12", "cost": "0s"},
		Records: 20_000,
		Files:   8,
		Jobs:    40,
		Scale:   0, // fall back to sim's scale
	}
}

// tinySim disables pacing entirely.
func tinySim() SimParams {
	return SimParams{Scale: 0, ScaleForced: true, FetchThreads: 4, FetchRange: 8 << 10, GroupUnits: 1024}
}

func TestBuildDatasetShapes(t *testing.T) {
	d, err := BuildDataset(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Files) != 8 || len(d.Names) != 8 {
		t.Fatalf("files = %d", len(d.Files))
	}
	var total int64
	for _, f := range d.Files {
		if int64(len(f))%int64(d.RecordSize) != 0 {
			t.Fatal("file not record-aligned")
		}
		total += int64(len(f))
	}
	if total != 20_000*int64(d.RecordSize) {
		t.Fatalf("total bytes %d", total)
	}
}

func TestBuildDatasetPageRankDerivesRecords(t *testing.T) {
	spec := AppSpec{
		Name:   "pagerank",
		Params: map[string]string{"pages": "500", "mindeg": "2", "maxdeg": "4"},
		Files:  4, Jobs: 16,
	}
	d, err := BuildDataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Records < 1000 || d.Records > 2000 {
		t.Fatalf("derived records = %d", d.Records)
	}
}

func TestCachedDatasetReuses(t *testing.T) {
	a, err := CachedDataset(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedDataset(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss for identical spec")
	}
	other := tinySpec()
	other.Records = 24_000
	c, err := CachedDataset(other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("cache collision for different spec")
	}
}

func TestExecuteEnvironments(t *testing.T) {
	spec, sim := tinySpec(), tinySim()
	cases := []struct {
		name       string
		localPct   int
		lc, cc     int
		wantEnv    string
		wantStolen bool
	}{
		{"local-only", 100, 4, 0, "env-local", false},
		{"cloud-only", 0, 0, 4, "env-cloud", false},
		{"even", 50, 2, 2, "env-50/50", false},
		{"skewed", 17, 2, 2, "env-17/83", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Execute(RunConfig{
				Spec: spec, LocalPct: tc.localPct,
				LocalCores: tc.lc, CloudCores: tc.cc, Sim: sim,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Env != tc.wantEnv {
				t.Fatalf("env = %q, want %q", res.Env, tc.wantEnv)
			}
			if got := res.Report.JobsProcessed(); got < spec.Jobs {
				t.Fatalf("jobs processed %d < %d", got, spec.Jobs)
			}
			if !strings.Contains(res.Report.FinalResult, "20000 words") {
				t.Fatalf("result %q", res.Report.FinalResult)
			}
			if tc.wantStolen {
				local := res.Report.Cluster("local")
				if local == nil || local.Workers.JobsStolen == 0 {
					t.Fatal("skewed run did not steal")
				}
			}
		})
	}
}

func TestExecuteRejectsNoCores(t *testing.T) {
	if _, err := Execute(RunConfig{Spec: tinySpec(), Sim: tinySim()}); err == nil {
		t.Fatal("no cores accepted")
	}
}

func TestFig3ProducesFiveEnvironments(t *testing.T) {
	spec := tinySpec()
	results, err := Fig3(spec, tinySim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("fig3 results = %d", len(results))
	}
	wantEnvs := []string{"env-local", "env-cloud", "env-50/50", "env-33/67", "env-17/83"}
	for i, r := range results {
		if r.Env != wantEnvs[i] {
			t.Fatalf("env %d = %q, want %q", i, r.Env, wantEnvs[i])
		}
		// Every configuration must compute the same answer.
		if !strings.Contains(r.Report.FinalResult, "20000 words") {
			t.Fatalf("%s result %q", r.Env, r.Report.FinalResult)
		}
	}
}

func TestFig4SweepAndSpeedups(t *testing.T) {
	results, err := Fig4(tinySpec(), tinySim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("fig4 results = %d", len(results))
	}
	if results[0].Env != "(4,4)" || results[3].Env != "(32,32)" {
		t.Fatalf("envs = %v, %v", results[0].Env, results[3].Env)
	}
	if got := Speedups(results); len(got) != 3 {
		t.Fatalf("speedups = %v", got)
	}
}

func TestSlowdownAndSummaryHelpers(t *testing.T) {
	spec := tinySpec()
	results, err := Fig3(spec, tinySim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	slow := SlowdownVsLocal(results)
	if len(slow) != 3 {
		t.Fatalf("slowdowns = %v", slow)
	}
	all := [][]EnvResult{results}
	_ = MeanHybridSlowdownPct(all) // must not panic; sign unconstrained at tiny scale
	if MeanHybridSlowdownPct(nil) != 0 {
		t.Fatal("empty slowdown should be 0")
	}
	if MeanSpeedupPct(nil) != 0 {
		t.Fatal("empty speedup should be 0")
	}
}

func TestFig1RowsConsistent(t *testing.T) {
	rows, err := Fig1(50_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All engines agree on the answer.
	for _, r := range rows {
		if !strings.Contains(r.ResultDigest, "50000 words") {
			t.Fatalf("%s digest %q", r.Engine, r.ResultDigest)
		}
	}
	// Map-Reduce materializes pairs; GR does not. The combiner cuts
	// the shuffle.
	var plain, combined Fig1Row
	for _, r := range rows {
		switch r.Engine {
		case "map-reduce":
			plain = r
		case "map-reduce+combine":
			combined = r
		default:
			if r.PeakPairs != 0 || r.ShuffledPairs != 0 {
				t.Fatalf("GR reported pairs: %+v", r)
			}
		}
	}
	if plain.PeakPairs == 0 || plain.ShuffledPairs != 50_000 {
		t.Fatalf("plain MR stats: %+v", plain)
	}
	if combined.ShuffledPairs >= plain.ShuffledPairs {
		t.Fatal("combiner did not shrink shuffle")
	}
}

func TestRendererOutputs(t *testing.T) {
	spec := tinySpec()
	fig3, err := Fig3(spec, tinySim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := Fig4(spec, tinySim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	all := [][]EnvResult{fig3}
	for name, out := range map[string]string{
		"fig3":    RenderFig3("wordcount", fig3),
		"table1":  RenderTable1(all),
		"table2":  RenderTable2(all),
		"fig4":    RenderFig4("wordcount", fig4),
		"summary": RenderSummary(all, [][]EnvResult{fig4}),
	} {
		if len(out) == 0 {
			t.Fatalf("%s renderer produced nothing", name)
		}
	}
	if !strings.Contains(RenderTable2(all), "15.55%") {
		t.Fatal("table2 should cite the paper's headline")
	}
	rows, err := Fig1(10_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderFig1(rows), "generalized-reduction") {
		t.Fatal("fig1 renderer missing engines")
	}
}

func TestShrinkPreservesStructure(t *testing.T) {
	spec := KNNSpec()
	s := spec.Shrink(10)
	if s.Records != spec.Records/10 {
		t.Fatalf("records = %d", s.Records)
	}
	if s.Jobs < 32 || s.Jobs > 960 {
		t.Fatalf("jobs = %d", s.Jobs)
	}
	if s.Files > s.Jobs {
		t.Fatal("more files than jobs")
	}
	// Shrinking must not mutate the original.
	if spec.Records != KNNSpec().Records {
		t.Fatal("Shrink mutated its receiver")
	}
	pr := PageRankSpec().Shrink(100)
	if pr.Params["pages"] == PageRankSpec().Params["pages"] {
		t.Fatal("pagerank pages not shrunk")
	}
	if got := KNNSpec().Shrink(1); got.Records != KNNSpec().Records {
		t.Fatal("divisor 1 should be identity")
	}
}

func TestDefaultSimRelativeSpeeds(t *testing.T) {
	sim := DefaultSim()
	if sim.LocalDisk.PerStream <= sim.S3External.PerStream {
		t.Fatal("local disk should beat WAN S3")
	}
	if sim.S3Internal.Latency >= sim.S3External.Latency {
		t.Fatal("in-cloud S3 latency should be below WAN S3")
	}
	if sim.Scale <= 0 {
		t.Fatal("default scale must be positive")
	}
	for _, spec := range EvalApps() {
		if spec.Scale <= 0 {
			t.Fatalf("%s has no preferred scale", spec.Name)
		}
		c := spec.withDefaults()
		if c.Files != 32 || c.Jobs != 960 {
			t.Fatalf("%s geometry = %d files %d jobs", spec.Name, c.Files, c.Jobs)
		}
	}
	// kmeans needs more cloud cores, like the paper's 16 -> 22.
	km := KMeansSpec()
	if km.CloudCores(16) != 22 || km.CloudCores(32) != 44 {
		t.Fatalf("kmeans cloud cores: 16->%d 32->%d", km.CloudCores(16), km.CloudCores(32))
	}
}

func TestGeneratorForRecordSizesMatch(t *testing.T) {
	for _, spec := range append(EvalApps(), WordCountSpec()) {
		d, err := CachedDataset(spec.Shrink(100))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if d.RecordSize <= 0 {
			t.Fatalf("%s record size %d", spec.Name, d.RecordSize)
		}
	}
}

func TestExecuteEmulatedTimingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// A briefly paced run must report non-zero emulated durations.
	spec := tinySpec()
	spec.Params = map[string]string{"width": "12", "cost": "100us"}
	sim := tinySim()
	sim.Scale = 0.005
	sim.LocalDisk.PerStream = 200 << 10
	res, err := Execute(RunConfig{Spec: spec, LocalPct: 100, LocalCores: 4, Sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.TotalWall <= 0 {
		t.Fatal("no emulated wall time")
	}
	c := res.Report.Cluster("local")
	if c.Workers.Processing < 100*time.Millisecond {
		t.Fatalf("processing = %v", c.Workers.Processing)
	}
}
