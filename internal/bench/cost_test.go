package bench

import (
	"strings"
	"testing"
	"time"

	"cloudburst/internal/metrics"
)

func costFixture(env string, localCores, cloudCores int, wall time.Duration, localRemote, cloudRead int64) EnvResult {
	r := EnvResult{
		Env: env, App: "knn", LocalCores: localCores, CloudCores: cloudCores,
		Report: &metrics.RunReport{Env: env, TotalWall: wall},
	}
	if localCores > 0 {
		r.Report.Clusters = append(r.Report.Clusters, metrics.ClusterReport{
			Site: "local", Cores: localCores,
			Workers: metrics.Snapshot{BytesRead: localRemote, BytesRemote: localRemote},
		})
	}
	if cloudCores > 0 {
		r.Report.Clusters = append(r.Report.Clusters, metrics.ClusterReport{
			Site: "cloud", Cores: cloudCores,
			Workers: metrics.Snapshot{BytesRead: cloudRead},
		})
	}
	return r
}

func TestEstimateCostLocalOnlyIsFree(t *testing.T) {
	r := costFixture("env-local", 32, 0, 190*time.Second, 0, 0)
	c := EstimateCost(r, AWS2011(), 10_000)
	if c.TotalUSD != 0 {
		t.Fatalf("env-local cost = %+v", c)
	}
}

func TestEstimateCostCloudInstanceHours(t *testing.T) {
	// 32 cloud cores = 16 m1.large for a 190 s run -> billed one full
	// hour each = 16 instance-hours at $0.34.
	r := costFixture("env-cloud", 0, 32, 190*time.Second, 0, 12<<20)
	c := EstimateCost(r, AWS2011(), 10_000)
	if c.InstanceHours != 16 {
		t.Fatalf("instance hours = %v", c.InstanceHours)
	}
	if got, want := c.InstanceUSD, 16*0.34; got != want {
		t.Fatalf("instance cost = %v, want %v", got, want)
	}
	if c.EgressUSD != 0 {
		t.Fatalf("EC2->S3 reads must be free, got %v", c.EgressUSD)
	}
	if c.RequestsUSD <= 0 {
		t.Fatal("S3 requests should cost something")
	}
}

func TestEstimateCostEgressScalesUp(t *testing.T) {
	// 1 MiB of stolen bytes at scale-up 10,000 = ~9.77 GiB of egress.
	r := costFixture("env-17/83", 16, 16, time.Hour, 1<<20, 0)
	c := EstimateCost(r, AWS2011(), 10_000)
	wantGB := float64(1<<20) * 10_000 / (1 << 30)
	if c.EgressGB < wantGB*0.99 || c.EgressGB > wantGB*1.01 {
		t.Fatalf("egress = %v GB, want ~%v", c.EgressGB, wantGB)
	}
	if c.EgressUSD <= 0 {
		t.Fatal("egress should cost")
	}
}

func TestEstimateCostHourlyRounding(t *testing.T) {
	prices := AWS2011()
	r := costFixture("env-cloud", 0, 2, 61*time.Minute, 0, 0)
	c := EstimateCost(r, prices, 1)
	if c.InstanceHours != 2 { // 1 instance x 2 billed hours
		t.Fatalf("rounded hours = %v", c.InstanceHours)
	}
	prices.BillByFullHour = false
	c = EstimateCost(r, prices, 1)
	if c.InstanceHours <= 1 || c.InstanceHours >= 1.1 {
		t.Fatalf("fractional hours = %v", c.InstanceHours)
	}
}

func TestRenderCost(t *testing.T) {
	results := []EnvResult{
		costFixture("env-local", 32, 0, 190*time.Second, 0, 0),
		costFixture("env-cloud", 0, 32, 170*time.Second, 0, 12<<20),
		costFixture("env-17/83", 16, 16, 235*time.Second, 2<<20, 10<<20),
	}
	out := RenderCost(results, AWS2011(), 10_000)
	for _, want := range []string{"env-local", "env-cloud", "env-17/83", "total $"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
