package bench

import (
	"fmt"
	"strings"
	"time"

	"cloudburst/internal/elastic"
	"cloudburst/internal/metrics"
)

// The elastic experiment is the deadline sweep: the same workload under
// a run deadline, with the cloud site provisioned three different ways.
// local-only keeps everything in-house and misses the deadline;
// static-over provisions enough cloud cores up front to meet it, paying
// for the full fleet wall-to-wall; elastic starts from a token cloud
// presence and lets the controller boot capacity mid-run until the ETA
// fits, meeting the deadline at lower cost; elastic-drain starts
// over-provisioned under the same deadline and must shed the surplus
// mid-run through the drain protocol. Results must be digest-identical
// across every variant — membership churn reshuffles who computes what,
// never what is computed.

const (
	// elasticLocalCores is the fixed in-house capacity every variant
	// keeps; the deadline is derived from its solo run.
	elasticLocalCores = 8
	// elasticCloudOver is the static over-provisioned fleet (and the
	// controller's MaxWorkers); elasticCloudSeed is the token presence
	// the elastic variant starts from. 24 cores sit past the knee of
	// the measured wall-vs-cores curve (the S3 link and WAN stealing
	// saturate around 16), so the static fleet pays for capacity that
	// buys almost no time — the over-provisioning the controller's
	// minimal-fleet search avoids.
	elasticCloudOver = 24
	elasticCloudSeed = 2
	// elasticStepUp caps workers booted per controller decision; a
	// steep ramp keeps the seed fleet's head start from eating the
	// deadline slack.
	elasticStepUp = 8
	// elasticDeadlineFrac sets the deadline as a fraction of the
	// measured local-only wall: tight enough that in-house capacity
	// cannot meet it, loose enough that a burst fleet can.
	elasticDeadlineFrac = 0.85
	// elasticBootFrac sets the emulated instance boot latency as a
	// fraction of the local-only wall, keeping the boot-vs-run-length
	// ratio invariant across workload shrink factors.
	elasticBootFrac = 0.05
	// elasticBatch / elasticJobsPer shrink the master refill batches:
	// the head's scale pushes and the masters' progress gauges both
	// ride the refill exchange, so small batches keep the control loop
	// live for the whole run instead of the masters hoovering the pool
	// up front and going silent.
	elasticBatch   = 4
	elasticJobsPer = 1
)

// ElasticRow is one provisioning variant's outcome under the deadline.
type ElasticRow struct {
	Label string
	// CloudCores is the variant's initial cloud worker count; Elastic
	// marks the scaling controller as active.
	CloudCores int
	Elastic    bool
	TotalEmu   time.Duration
	// MetDeadline records TotalEmu against the shared deadline.
	MetDeadline bool
	// Membership churn (zero for static variants).
	Boots, Drains, WastedBoots int
	// Peak is the largest commanded cloud worker count.
	Peak int
	// InstanceSecs integrates commanded cloud workers over emulated
	// seconds (static variants: cores x wall). EgressGiB is cross-site
	// traffic projected to paper scale.
	InstanceSecs float64
	EgressGiB    float64
	InstanceUSD  float64
	EgressUSD    float64
	TotalUSD     float64
	// Events is the controller's decision trace (elastic variants).
	Events []metrics.ScaleEvent
	// Digest is the application result digest.
	Digest string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r ElasticRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// ElasticResult is the whole sweep for one application.
type ElasticResult struct {
	App        string
	LocalCores int
	// BaselineEmu is the measured local-only wall the deadline derives
	// from; Deadline = elasticDeadlineFrac x BaselineEmu.
	BaselineEmu time.Duration
	Deadline    time.Duration
	Rows        []ElasticRow
	// Match is true when every row produced the same digest.
	Match bool
}

// Row returns the row with the given label, or nil.
func (e *ElasticResult) Row(label string) *ElasticRow {
	for i := range e.Rows {
		if e.Rows[i].Label == label {
			return &e.Rows[i]
		}
	}
	return nil
}

// finish verifies digest invariance and fills the Match flag.
func (e *ElasticResult) finish() {
	e.Match = true
	for _, r := range e.Rows[1:] {
		if r.Digest != e.Rows[0].Digest {
			e.Match = false
		}
	}
}

// ElasticSweep measures the local-only baseline, derives the deadline
// from it, and runs the static-over / elastic / elastic-drain variants
// against that deadline. scaleUp projects egress bytes back to paper
// scale for the dollar figures (instance time needs no projection:
// emulated seconds already read at paper scale). Cloud instance time is
// priced per emulated second — AWS moved to per-second billing after
// the paper's 2011 testbed, and full-hour rounding would flatten every
// sub-hour scaling decision this experiment exists to compare.
func ElasticSweep(spec AppSpec, sim SimParams, scaleUp float64, logf func(string, ...any)) (*ElasticResult, error) {
	spec = spec.withDefaults()
	prices := AWS2011()
	coreRate := prices.InstancePerHour / float64(prices.CoresPerInstance)

	base := RunConfig{
		Spec: spec, LocalPct: 100, LocalCores: elasticLocalCores,
		Sim: sim, Batch: elasticBatch, JobsPerRequest: elasticJobsPer,
		Logf: logf,
	}
	out := &ElasticResult{App: spec.Name, LocalCores: elasticLocalCores}

	res, err := Execute(base)
	if err != nil {
		return nil, fmt.Errorf("bench: elastic %s local-only: %w", spec.Name, err)
	}
	out.BaselineEmu = res.Report.TotalWall
	out.Deadline = time.Duration(float64(out.BaselineEmu) * elasticDeadlineFrac)
	boot := time.Duration(float64(out.BaselineEmu) * elasticBootFrac)
	out.Rows = append(out.Rows, staticElasticRow("local-only", res, out.Deadline, scaleUp, coreRate, prices.EgressPerGB))

	// Workers is left nil: the deployment seeds it from the site specs,
	// so each variant's initial cloud cores become the starting target.
	ctrl := func() *elastic.Config {
		return &elastic.Config{
			Site:         "cloud",
			Deadline:     out.Deadline,
			MinWorkers:   1,
			MaxWorkers:   elasticCloudOver,
			StepUp:       elasticStepUp,
			BootLatency:  boot,
			InstanceRate: coreRate,
			EgressRate:   prices.EgressPerGB,
			Logf:         logf,
		}
	}
	variants := []struct {
		label      string
		cloudCores int
		elastic    bool
	}{
		{"static-over", elasticCloudOver, false},
		{"elastic", elasticCloudSeed, true},
		{"elastic-drain", elasticCloudOver, true},
	}
	for _, v := range variants {
		cfg := RunConfig{
			Spec: spec, LocalPct: 50, LocalCores: elasticLocalCores,
			CloudCores: v.cloudCores, Sim: sim,
			Batch: elasticBatch, JobsPerRequest: elasticJobsPer,
			Logf: logf,
		}
		if v.elastic {
			cfg.Elastic = ctrl()
		}
		res, err := Execute(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: elastic %s %s: %w", spec.Name, v.label, err)
		}
		if v.elastic {
			el := res.Report.Elastic
			if el == nil {
				return nil, fmt.Errorf("bench: elastic %s %s: run produced no elastic report", spec.Name, v.label)
			}
			row := ElasticRow{
				Label: v.label, CloudCores: v.cloudCores, Elastic: true,
				TotalEmu:    res.Report.TotalWall,
				MetDeadline: res.Report.TotalWall <= out.Deadline,
				Boots:       el.Boots, Drains: el.Drains,
				WastedBoots: el.WastedBoots, Peak: el.Peak,
				Events: el.Events,
				Digest: res.Report.FinalResult,
			}
			fillElasticCost(&row, el.InstanceSecs, egressBytes(res.Report), scaleUp, coreRate, prices.EgressPerGB)
			out.Rows = append(out.Rows, row)
		} else {
			out.Rows = append(out.Rows, staticElasticRow(v.label, res, out.Deadline, scaleUp, coreRate, prices.EgressPerGB))
		}
	}
	out.finish()
	return out, nil
}

// staticElasticRow prices a fixed-membership run the same way the
// controller prices itself: cloud cores billed wall-to-wall.
func staticElasticRow(label string, res *EnvResult, deadline time.Duration, scaleUp, coreRate, egressRate float64) ElasticRow {
	row := ElasticRow{
		Label: label, CloudCores: res.CloudCores,
		TotalEmu:    res.Report.TotalWall,
		MetDeadline: res.Report.TotalWall <= deadline,
		Peak:        res.CloudCores,
		Digest:      res.Report.FinalResult,
	}
	instSecs := float64(res.CloudCores) * res.Report.TotalWall.Seconds()
	fillElasticCost(&row, instSecs, egressBytes(res.Report), scaleUp, coreRate, egressRate)
	return row
}

// egressBytes sums cross-site traffic over every cluster, matching the
// head's own egress accounting for the in-run elastic report.
func egressBytes(rep *metrics.RunReport) int64 {
	var total int64
	for _, c := range rep.Clusters {
		total += c.Workers.BytesRemote
	}
	return total
}

func fillElasticCost(row *ElasticRow, instSecs float64, egress int64, scaleUp, coreRate, egressRate float64) {
	scaled := int64(float64(egress) * scaleUp)
	row.InstanceSecs = instSecs
	row.EgressGiB = float64(scaled) / (1 << 30)
	row.InstanceUSD, row.EgressUSD, row.TotalUSD = elastic.Cost(instSecs, scaled, coreRate, egressRate)
}

// RenderElastic prints the deadline sweep with each variant's
// membership churn and projected dollar cost.
func RenderElastic(title string, res *ElasticResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deadline sweep — %s (local %d cores; deadline %.1fs = %.0f%% of local-only %.1fs)\n",
		title, res.LocalCores, res.Deadline.Seconds(),
		elasticDeadlineFrac*100, res.BaselineEmu.Seconds())
	fmt.Fprintf(&b, "  %-14s %6s %8s %9s %6s %7s %5s %8s %8s %8s %9s\n",
		"variant", "cloud", "total", "deadline", "boots", "drains", "peak", "inst-s", "inst $", "egress $", "total $")
	for _, r := range res.Rows {
		met := "met ✓"
		if !r.MetDeadline {
			met = "MISS ✗"
		}
		fmt.Fprintf(&b, "  %-14s %6d %8.1f %9s %6d %7d %5d %8.0f %8.4f %8.4f %9.4f\n",
			r.Label, r.CloudCores, r.TotalEmu.Seconds(), met,
			r.Boots, r.Drains, r.Peak, r.InstanceSecs,
			r.InstanceUSD, r.EgressUSD, r.TotalUSD)
	}
	for _, r := range res.Rows {
		if len(r.Events) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s decisions:", r.Label)
		for _, ev := range r.Events {
			fmt.Fprintf(&b, " [%.1fs %d→%d %s]",
				ev.AtEmu.Seconds(), ev.From, ev.To, ev.Reason)
		}
		fmt.Fprintf(&b, "\n")
	}
	if res.Match {
		fmt.Fprintf(&b, "  result digests: identical across all variants ✓\n")
	} else {
		fmt.Fprintf(&b, "  result digests: DIVERGED — membership churn changed results\n")
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "    %-14s %s\n", r.Label+":", r.Digest)
		}
	}
	return b.String()
}
