package bench

import (
	"fmt"
	"strings"
	"time"

	"cloudburst/internal/driver"
	"cloudburst/internal/metrics"
)

// The overlap experiment ablates the slave retrieval pipeline: the
// 2x2 grid of {prefetch off/on} x {chunk cache off/on}, run once over
// a retrieval-bound single pass (knn, all data in S3) and once over a
// multi-pass algorithm (pagerank power iterations), where the cache
// additionally converts every pass after the first into warm reads.
// Results must be bit-identical across variants — the pipeline is an
// optimization, never a semantics change — and the Match flag records
// that check.

// overlapCacheBytes comfortably holds every benchmark data set (they
// are 10,000x below the paper's sizes), so cache effectiveness is
// bounded by access patterns, not capacity.
const overlapCacheBytes = 256 << 20

// OverlapVariant names one corner of the prefetch x cache grid.
type OverlapVariant struct {
	Label    string
	Prefetch bool
	Cache    bool
}

// OverlapVariants returns the ablation grid in rendering order, the
// no-overlap baseline first.
func OverlapVariants() []OverlapVariant {
	return []OverlapVariant{
		{Label: "baseline", Prefetch: false, Cache: false},
		{Label: "prefetch", Prefetch: true, Cache: false},
		{Label: "cache", Prefetch: false, Cache: true},
		{Label: "prefetch+cache", Prefetch: true, Cache: true},
	}
}

// OverlapRow is one variant's outcome, summed over its iterations.
type OverlapRow struct {
	Label      string
	Prefetch   bool
	Cache      bool
	Iterations int
	// TotalEmu is the summed emulated wall time of every iteration.
	TotalEmu time.Duration
	// Retrieval aggregates the pipeline counters across iterations.
	Retrieval metrics.RetrievalReport
	// Digest is the last iteration's application result digest.
	Digest string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r OverlapRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// OverlapResult is one application's full grid.
type OverlapResult struct {
	App        string
	Env        string
	Iterations int
	Rows       []OverlapRow
	// Match is true when every variant produced the same digest.
	Match bool
}

// finish verifies digest invariance and fills the Match flag.
func (o *OverlapResult) finish() {
	o.Match = true
	for _, r := range o.Rows[1:] {
		if r.Digest != o.Rows[0].Digest {
			o.Match = false
		}
	}
}

// OverlapSinglePass runs the grid over one retrieval-bound pass: all
// data in S3, cloud cores only (the paper's env-cloud, where Figure 3
// shows retrieval dominating). Prefetch hides fetches behind compute;
// the cache sees each chunk once and only records misses.
func OverlapSinglePass(spec AppSpec, sim SimParams, logf func(string, ...any)) (*OverlapResult, error) {
	spec = spec.withDefaults()
	out := &OverlapResult{App: spec.Name, Iterations: 1}
	for _, v := range OverlapVariants() {
		cfg := RunConfig{
			Spec: spec, LocalPct: 0,
			LocalCores: 0, CloudCores: spec.CloudCores(32),
			Sim: sim, Logf: logf,
			Prefetch: v.Prefetch,
		}
		if v.Cache {
			cfg.CacheBytes = overlapCacheBytes
		}
		res, err := Execute(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: overlap %s %s: %w", spec.Name, v.Label, err)
		}
		out.Env = res.Env
		out.Rows = append(out.Rows, OverlapRow{
			Label: v.Label, Prefetch: v.Prefetch, Cache: v.Cache,
			Iterations: 1,
			TotalEmu:   res.Report.TotalWall,
			Retrieval:  res.Report.Retrieval,
			Digest:     res.Report.FinalResult,
		})
	}
	out.finish()
	return out, nil
}

// OverlapPageRank runs the grid over iters pagerank power iterations
// (all data in S3, cloud cores only). The cache arm installs one
// persistent cache per site through the driver, so every pass after
// the first reads warm chunks instead of re-paying S3 retrieval.
func OverlapPageRank(spec AppSpec, sim SimParams, iters int, logf func(string, ...any)) (*OverlapResult, error) {
	spec = spec.withDefaults()
	if iters < 1 {
		iters = 3
	}
	out := &OverlapResult{App: spec.Name, Iterations: iters}
	for _, v := range OverlapVariants() {
		cfg := RunConfig{
			Spec: spec, LocalPct: 0,
			LocalCores: 0, CloudCores: spec.CloudCores(32),
			Sim: sim, Logf: logf,
			Prefetch: v.Prefetch,
		}
		dep, err := BuildDeploy(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: overlap %s %s: %w", spec.Name, v.Label, err)
		}
		it, err := driver.PageRank(dep.Deploy, -1) // fixed iteration count
		if err != nil {
			return nil, fmt.Errorf("bench: overlap %s %s: %w", spec.Name, v.Label, err)
		}
		it.MaxIterations = iters
		if v.Cache {
			it.CacheBytes = overlapCacheBytes
		}
		row := OverlapRow{Label: v.Label, Prefetch: v.Prefetch, Cache: v.Cache}
		it.OnIteration = func(_ int, _ float64, report *metrics.RunReport) {
			row.Iterations++
			row.TotalEmu += report.TotalWall
			row.Retrieval.Add(report.Retrieval)
			row.Digest = report.FinalResult
		}
		if _, err := it.Run(); err != nil {
			return nil, fmt.Errorf("bench: overlap %s %s: %w", spec.Name, v.Label, err)
		}
		out.Env = "env-cloud"
		out.Rows = append(out.Rows, row)
	}
	out.finish()
	return out, nil
}

// RenderOverlap prints one application's grid with the speedup each
// variant achieves over the no-overlap baseline.
func RenderOverlap(title string, res *OverlapResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overlap ablation — %s (%s, %d iteration(s), emulated seconds)\n",
		title, res.Env, res.Iterations)
	fmt.Fprintf(&b, "%-16s %10s %9s %10s %10s %9s %9s %9s %10s\n",
		"variant", "total", "speedup", "prefetched", "hidden(s)", "hits", "misses", "savedMB", "poolReuse")
	base := res.Rows[0].TotalEmu.Seconds()
	for _, r := range res.Rows {
		speed := "—"
		if base > 0 && r.TotalEmu > 0 {
			speed = fmt.Sprintf("%.2fx", base/r.TotalEmu.Seconds())
		}
		reuse := "—"
		if r.Retrieval.PoolGets > 0 {
			reuse = fmt.Sprintf("%.0f%%",
				100*float64(r.Retrieval.PoolGets-r.Retrieval.PoolMisses)/float64(r.Retrieval.PoolGets))
		}
		fmt.Fprintf(&b, "%-16s %10.1f %9s %10d %10.1f %9d %9d %9.1f %10s\n",
			r.Label, r.TotalEmu.Seconds(), speed,
			r.Retrieval.PrefetchedJobs, r.Retrieval.PrefetchSavedEmu.Seconds(),
			r.Retrieval.CacheHits, r.Retrieval.CacheMisses,
			float64(r.Retrieval.CacheBytesSaved)/(1<<20),
			reuse)
	}
	if res.Match {
		fmt.Fprintf(&b, "result digests: identical across all variants ✓\n")
	} else {
		fmt.Fprintf(&b, "result digests: DIVERGED — the pipeline changed results\n")
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "  %-16s %s\n", r.Label+":", r.Digest)
		}
	}
	return b.String()
}
