package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"cloudburst/internal/advisor"
	"cloudburst/internal/elastic"
	"cloudburst/internal/metrics"
)

// The advisor experiment is the warm-vs-cold sequence: the same
// deadline-constrained workload run repeatedly, with each completed
// run's report persisted into the advisor's history database and the
// next run planned from it. Run 1 (cold) starts from the token cloud
// seed and pays the elastic controller's reactive ramp — several
// "deadline at risk" scale-up rounds before the fleet fits the ETA.
// Run 2 (warm) asks the advisor first: the plan's core count seeds the
// controller at t=0, so the fleet boots once, up front, and the ramp
// events disappear. Run 3 (warm-2) plans from two runs of history —
// including run 2's own prediction error — showing the feedback loop
// converging. Digests must be identical across every run: planning
// changes when capacity arrives, never what is computed.

// AdvisorRow is one run of the sequence.
type AdvisorRow struct {
	Label string
	// Warm marks an advisor-planned run; PlannedCores is the plan's
	// fleet (0 for the cold run), Confidence its grade.
	Warm         bool
	PlannedCores int
	Confidence   float64
	HistoryRuns  int // records on file when this run was planned
	TotalEmu     time.Duration
	MetDeadline  bool
	// Membership churn and the reactive-ramp measure: RampEvents counts
	// mid-run "deadline at risk" scale-ups (the warm-start boot at t=0
	// is excluded — it is the ramp's replacement, not part of it);
	// LastRampSecs is when commanded capacity last grew, i.e. how long
	// the run took to discover its fleet.
	Boots, Drains, WastedBoots int
	Peak                       int
	RampEvents                 int
	LastRampSecs               float64
	InstanceSecs               float64
	EgressGiB                  float64
	InstanceUSD                float64
	EgressUSD                  float64
	TotalUSD                   float64
	// Prediction feedback (warm runs): the plan's expectations and the
	// signed error against the measured outcome, as written back into
	// the history record.
	PredictedWallSecs float64
	PredictedCostUSD  float64
	WallErrPct        float64
	CostErrPct        float64
	Events            []metrics.ScaleEvent
	Digest            string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r AdvisorRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// AdvisorResult is the whole warm-vs-cold sequence for one application.
type AdvisorResult struct {
	App        string
	LocalCores int
	// BaselineEmu is the measured local-only wall the deadline derives
	// from (same derivation as the elastic experiment).
	BaselineEmu time.Duration
	Deadline    time.Duration
	HistoryDir  string
	// Plan is the advice the first warm run launched under.
	Plan advisor.Plan
	Rows []AdvisorRow
	// Headline scores: reactive ramp events eliminated by the warm
	// start, the seconds earlier the warm run settled its fleet, and
	// the cost delta (warm minus cold, paper-scale dollars).
	RampEventsSaved int
	RampSecsSaved   float64
	CostDeltaUSD    float64
	// Match is true when every run produced the same digest.
	Match bool
}

// Row returns the row with the given label, or nil.
func (a *AdvisorResult) Row(label string) *AdvisorRow {
	for i := range a.Rows {
		if a.Rows[i].Label == label {
			return &a.Rows[i]
		}
	}
	return nil
}

// AdvisorSweep measures the local-only baseline, derives the deadline,
// then runs the cold/warm/warm-2 sequence against the advisor history
// database in historyDir (created if needed; pre-existing records are
// kept — a second sweep in the same dir plans from more history).
// scaleUp projects egress to paper scale for the dollar columns, as in
// ElasticSweep.
func AdvisorSweep(spec AppSpec, sim SimParams, scaleUp float64, historyDir string, logf func(string, ...any)) (*AdvisorResult, error) {
	spec = spec.withDefaults()
	prices := AWS2011()
	coreRate := prices.InstancePerHour / float64(prices.CoresPerInstance)

	if historyDir == "" {
		// No durable database requested: the sequence still needs one to
		// warm itself, so use a throwaway.
		tmp, err := os.MkdirTemp("", "cloudburst-history-")
		if err != nil {
			return nil, err
		}
		historyDir = tmp
	}
	st, err := advisor.Open(historyDir)
	if err != nil {
		return nil, fmt.Errorf("bench: advisor history: %w", err)
	}

	data, err := CachedDataset(spec)
	if err != nil {
		return nil, err
	}
	var dataBytes int64
	for _, f := range data.Files {
		dataBytes += int64(len(f))
	}

	base := RunConfig{
		Spec: spec, Dataset: data, LocalPct: 100, LocalCores: elasticLocalCores,
		Sim: sim, Batch: elasticBatch, JobsPerRequest: elasticJobsPer,
		Logf: logf,
	}
	out := &AdvisorResult{App: spec.Name, LocalCores: elasticLocalCores, HistoryDir: st.Dir()}

	res, err := Execute(base)
	if err != nil {
		return nil, fmt.Errorf("bench: advisor %s local-only: %w", spec.Name, err)
	}
	out.BaselineEmu = res.Report.TotalWall
	out.Deadline = time.Duration(float64(out.BaselineEmu) * elasticDeadlineFrac)
	boot := time.Duration(float64(out.BaselineEmu) * elasticBootFrac)

	ctrl := func(seed int) *elastic.Config {
		return &elastic.Config{
			Site:         "cloud",
			Deadline:     out.Deadline,
			MinWorkers:   1,
			MaxWorkers:   elasticCloudOver,
			StepUp:       elasticStepUp,
			SeedWorkers:  seed,
			BootLatency:  boot,
			InstanceRate: coreRate,
			EgressRate:   prices.EgressPerGB,
			Logf:         logf,
		}
	}

	// one run of the sequence: plan (nil for cold), execute, persist
	// the record, fold the outcome into a row.
	runOne := func(label string, plan *advisor.Plan, historyRuns int) (*AdvisorRow, error) {
		seed := 0
		if plan != nil && plan.Burst {
			seed = plan.CloudCores
		}
		cfg := RunConfig{
			Spec: spec, Dataset: data, LocalPct: 50, LocalCores: elasticLocalCores,
			CloudCores: elasticCloudSeed, Sim: sim,
			Batch: elasticBatch, JobsPerRequest: elasticJobsPer,
			Elastic: ctrl(seed), Logf: logf,
		}
		res, err := Execute(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: advisor %s %s: %w", spec.Name, label, err)
		}
		el := res.Report.Elastic
		if el == nil {
			return nil, fmt.Errorf("bench: advisor %s %s: run produced no elastic report", spec.Name, label)
		}
		rec, err := advisor.FromReport(res.Report, advisor.ExtractOptions{
			DataBytes: dataBytes, Deadline: out.Deadline, Plan: plan,
		})
		if err != nil {
			return nil, err
		}
		if err := st.Append(rec); err != nil {
			return nil, fmt.Errorf("bench: advisor history append: %w", err)
		}
		row := AdvisorRow{
			Label: label, Warm: plan != nil, HistoryRuns: historyRuns,
			TotalEmu:    res.Report.TotalWall,
			MetDeadline: res.Report.TotalWall <= out.Deadline,
			Boots:       el.Boots, Drains: el.Drains,
			WastedBoots: el.WastedBoots, Peak: el.Peak,
			Events: el.Events,
			Digest: res.Report.FinalResult,
		}
		if plan != nil {
			row.PlannedCores = plan.CloudCores
			row.Confidence = plan.Confidence
			row.PredictedWallSecs = rec.PredictedWallSecs
			row.PredictedCostUSD = rec.PredictedCostUSD
			row.WallErrPct = rec.WallErrPct
			row.CostErrPct = rec.CostErrPct
		}
		for _, ev := range el.Events {
			if ev.To > ev.From && ev.Reason != elastic.ReasonWarmStart {
				row.RampEvents++
				if s := ev.AtEmu.Seconds(); s > row.LastRampSecs {
					row.LastRampSecs = s
				}
			}
		}
		scaledRow := ElasticRow{}
		fillElasticCost(&scaledRow, el.InstanceSecs, egressBytes(res.Report), scaleUp, coreRate, prices.EgressPerGB)
		row.InstanceSecs = scaledRow.InstanceSecs
		row.EgressGiB = scaledRow.EgressGiB
		row.InstanceUSD = scaledRow.InstanceUSD
		row.EgressUSD = scaledRow.EgressUSD
		row.TotalUSD = scaledRow.TotalUSD
		return &row, nil
	}

	// env is the link class every sequence run records and matches
	// under (LocalPct 50 names it env-50/50 in the report).
	const env = "env-50/50"
	advise := func() (advisor.Plan, int, error) {
		history, err := st.Load()
		if err != nil {
			return advisor.Plan{}, 0, err
		}
		plan := advisor.Advise(history, advisor.Request{
			App: spec.Name, Env: env, DataBytes: dataBytes,
			Deadline: out.Deadline, MaxCloud: elasticCloudOver,
			LocalWorkers: elasticLocalCores,
			BootLatency:  boot, InstanceRate: coreRate,
			EgressRate: prices.EgressPerGB,
		})
		return plan, len(advisor.Filter(history, spec.Name, env)), nil
	}

	cold, err := runOne("cold", nil, 0)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, *cold)

	plan, runs, err := advise()
	if err != nil {
		return nil, err
	}
	out.Plan = plan
	warm, err := runOne("warm", &plan, runs)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, *warm)

	plan2, runs2, err := advise()
	if err != nil {
		return nil, err
	}
	warm2, err := runOne("warm-2", &plan2, runs2)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, *warm2)

	out.RampEventsSaved = cold.RampEvents - warm.RampEvents
	out.RampSecsSaved = cold.LastRampSecs - warm.LastRampSecs
	out.CostDeltaUSD = warm.TotalUSD - cold.TotalUSD
	out.Match = true
	for _, r := range out.Rows[1:] {
		if r.Digest != out.Rows[0].Digest {
			out.Match = false
		}
	}
	return out, nil
}

// RenderAdvisor prints the warm-vs-cold sequence: the plan the advisor
// issued, each run's ramp and cost, and the prediction errors fed back
// into history.
func RenderAdvisor(title string, res *AdvisorResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Advisor warm-vs-cold — %s (local %d cores; deadline %.1fs = %.0f%% of local-only %.1fs; history %s)\n",
		title, res.LocalCores, res.Deadline.Seconds(),
		elasticDeadlineFrac*100, res.BaselineEmu.Seconds(), res.HistoryDir)
	fmt.Fprintf(&b, "  plan: %s\n", strings.ReplaceAll(res.Plan.String(), "\n", "\n  "))
	fmt.Fprintf(&b, "  %-8s %7s %8s %9s %5s %6s %9s %5s %9s %9s %9s\n",
		"run", "planned", "total", "deadline", "ramps", "lastΔ", "boots/dr", "peak", "inst-s", "total $", "wallerr%")
	for _, r := range res.Rows {
		met := "met ✓"
		if !r.MetDeadline {
			met = "MISS ✗"
		}
		wallErr := "-"
		if r.Warm {
			wallErr = fmt.Sprintf("%+.1f", r.WallErrPct)
		}
		planned := "-"
		if r.Warm {
			planned = fmt.Sprintf("%d", r.PlannedCores)
		}
		fmt.Fprintf(&b, "  %-8s %7s %8.1f %9s %5d %6.1f %6d/%-2d %5d %9.0f %9.4f %9s\n",
			r.Label, planned, r.TotalEmu.Seconds(), met,
			r.RampEvents, r.LastRampSecs, r.Boots, r.Drains, r.Peak,
			r.InstanceSecs, r.TotalUSD, wallErr)
	}
	for _, r := range res.Rows {
		if len(r.Events) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s decisions:", r.Label)
		for _, ev := range r.Events {
			fmt.Fprintf(&b, " [%.1fs %d→%d %s]",
				ev.AtEmu.Seconds(), ev.From, ev.To, ev.Reason)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "  warm start saved %d reactive ramp event(s) and %.1fs of fleet discovery; cost delta %+.4f $\n",
		res.RampEventsSaved, res.RampSecsSaved, res.CostDeltaUSD)
	if res.Match {
		fmt.Fprintf(&b, "  result digests: identical across all runs ✓\n")
	} else {
		fmt.Fprintf(&b, "  result digests: DIVERGED — warm start changed results\n")
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "    %-8s %s\n", r.Label+":", r.Digest)
		}
	}
	return b.String()
}
