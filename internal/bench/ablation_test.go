package bench

import (
	"strings"
	"testing"
)

func TestAblationConsecutive(t *testing.T) {
	rows, err := AblationConsecutive(tinySpec(), tinySim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Label != "consecutive" || rows[1].Label != "scattered" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if !strings.Contains(r.Result.Report.FinalResult, "20000 words") {
			t.Fatalf("%s computed wrong result: %q", r.Label, r.Result.Report.FinalResult)
		}
	}
}

func TestAblationFetchThreads(t *testing.T) {
	rows, err := AblationFetchThreads(tinySpec(), tinySim(), []int{1, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Result.Env != "env-cloud" {
			t.Fatalf("fetch ablation ran %s", r.Result.Env)
		}
	}
}

func TestAblationBatch(t *testing.T) {
	rows, err := AblationBatch(tinySpec(), tinySim(), []int{4, 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if got := r.Result.Report.JobsProcessed(); got < 32 {
			t.Fatalf("%s processed %d jobs", r.Label, got)
		}
	}
}

func TestAblationObjectSize(t *testing.T) {
	rows, err := AblationObjectSize(tinySim(), []int64{200, 400}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both sizes must produce full pagerank results (mass ~1).
	for _, r := range rows {
		if !strings.Contains(r.Result.Report.FinalResult, "mass=1.0") {
			t.Fatalf("%s result %q", r.Label, r.Result.Report.FinalResult)
		}
	}
	if out := RenderAblation("object size", rows); !strings.Contains(out, "pages=200") {
		t.Fatalf("render = %q", out)
	}
}

func TestAblationPooling(t *testing.T) {
	// Compute-dominated configuration (each chunk costs ~2.5 emulated
	// seconds, several jobs per worker) so per-core speed jitter is
	// the decisive factor.
	spec := tinySpec()
	spec.Params["cost"] = "20ms"
	spec.Jobs = 160
	sim := tinySim()
	sim.Scale = 0.01
	rows, err := AblationPooling(spec, sim, 0.6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	dynamic, static := rows[0].Result.Report, rows[1].Result.Report
	// Both must compute the full result.
	for _, r := range rows {
		if !strings.Contains(r.Result.Report.FinalResult, "20000 words") {
			t.Fatalf("%s result %q", r.Label, r.Result.Report.FinalResult)
		}
	}
	// Under heavy jitter, on-demand pooling must beat static
	// partitioning (the paper's load-balancing claim). The race
	// detector skews real CPU costs enough to drown the paced timing,
	// so the shape assertion only runs uninstrumented.
	if !raceEnabled && static.TotalWall <= dynamic.TotalWall {
		t.Fatalf("static partition (%v) beat dynamic pooling (%v) despite ±60%% jitter",
			static.TotalWall, dynamic.TotalWall)
	}
}
