package bench

import (
	"fmt"
	"strings"
	"time"

	"cloudburst/internal/metrics"
)

// Renderers produce the paper's tables and figure data as text. All
// durations print in emulated seconds.

func secs(d time.Duration) float64 { return d.Seconds() }

// coresLabel formats the "(m, n)" core annotation under each bar.
func coresLabel(r EnvResult) string {
	return fmt.Sprintf("(%d,%d)", r.LocalCores, r.CloudCores)
}

// perCore averages a cluster's worker time components over its cores,
// matching the paper's per-cluster stacked bars.
func perCore(c *metrics.ClusterReport) metrics.Snapshot {
	if c == nil {
		return metrics.Snapshot{}
	}
	return c.Workers.DivideTimes(c.Cores)
}

// RenderFig3 prints one application's Figure 3 panel: per cluster,
// the processing / data retrieval / sync stacked components.
func RenderFig3(app string, results []EnvResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — %s: execution over environment configurations (emulated seconds)\n", app)
	fmt.Fprintf(&b, "%-12s %-8s %-8s %12s %12s %12s %12s\n",
		"env", "cores", "cluster", "processing", "retrieval", "sync", "total")
	for _, r := range results {
		for _, site := range []string{"local", "cloud"} {
			c := r.Report.Cluster(site)
			if c == nil {
				continue
			}
			s := perCore(c)
			// Sync in the paper's bars also covers end-of-run idle and
			// the global-reduction barrier.
			sync := s.Sync + c.IdleAtEnd
			fmt.Fprintf(&b, "%-12s %-8s %-8s %12.1f %12.1f %12.1f %12.1f\n",
				r.Env, coresLabel(r), site,
				secs(s.Processing), secs(s.Retrieval), secs(sync),
				secs(s.Processing+s.Retrieval+sync))
		}
		fmt.Fprintf(&b, "%-12s %-8s %-8s %51s total execution: %.1f\n",
			r.Env, coresLabel(r), "run", "", secs(r.Report.TotalWall))
	}
	return b.String()
}

// RenderTable1 prints the paper's Table I: jobs processed per cluster
// and jobs the local cluster stole, for the hybrid configurations.
func RenderTable1(all [][]EnvResult) string {
	var b strings.Builder
	b.WriteString("Table I — job assignment per application\n")
	fmt.Fprintf(&b, "%-10s %-10s %8s %8s %10s\n", "app", "env", "EC2", "Local", "(stolen)")
	for _, results := range all {
		for _, r := range results {
			if r.Env == "env-local" || r.Env == "env-cloud" {
				continue
			}
			local, cloud := r.Report.Cluster("local"), r.Report.Cluster("cloud")
			if local == nil || cloud == nil {
				continue
			}
			fmt.Fprintf(&b, "%-10s %-10s %8d %8d %10d\n",
				r.App, strings.TrimPrefix(r.Env, "env-"),
				cloud.Workers.JobsProcessed, local.Workers.JobsProcessed,
				local.Workers.JobsStolen)
		}
	}
	return b.String()
}

// RenderTable2 prints the paper's Table II: global reduction time,
// per-cluster idle time, and total slowdown versus env-local.
func RenderTable2(all [][]EnvResult) string {
	var b strings.Builder
	b.WriteString("Table II — slowdowns with respect to data distribution (emulated seconds)\n")
	fmt.Fprintf(&b, "%-10s %-10s %10s %12s %12s %12s\n",
		"app", "env", "globalRed", "idle(local)", "idle(EC2)", "slowdown")
	for _, results := range all {
		slow := SlowdownVsLocal(results)
		for _, r := range results {
			if r.Env == "env-local" || r.Env == "env-cloud" {
				continue
			}
			local, cloud := r.Report.Cluster("local"), r.Report.Cluster("cloud")
			var idleL, idleC time.Duration
			if local != nil {
				idleL = local.IdleAtEnd
			}
			if cloud != nil {
				idleC = cloud.IdleAtEnd
			}
			fmt.Fprintf(&b, "%-10s %-10s %10.3f %12.3f %12.3f %12.3f\n",
				r.App, strings.TrimPrefix(r.Env, "env-"),
				secs(r.Report.GlobalRed), secs(idleL), secs(idleC), secs(slow[r.Env]))
		}
	}
	fmt.Fprintf(&b, "mean hybrid slowdown: %.2f%% (paper: 15.55%%)\n", MeanHybridSlowdownPct(all))
	return b.String()
}

// RenderFig4 prints one application's Figure 4 panel: the scalability
// sweep with per-doubling speedups.
func RenderFig4(app string, results []EnvResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — %s: system scalability, all data in S3 (emulated seconds)\n", app)
	fmt.Fprintf(&b, "%-10s %-8s %12s %12s %12s %12s\n",
		"cores", "cluster", "processing", "retrieval", "sync", "total")
	for _, r := range results {
		for _, site := range []string{"local", "cloud"} {
			c := r.Report.Cluster(site)
			if c == nil {
				continue
			}
			s := perCore(c)
			sync := s.Sync + c.IdleAtEnd
			fmt.Fprintf(&b, "%-10s %-8s %12.1f %12.1f %12.1f %12.1f\n",
				r.Env, site, secs(s.Processing), secs(s.Retrieval), secs(sync),
				secs(s.Processing+s.Retrieval+sync))
		}
		fmt.Fprintf(&b, "%-10s %-8s %51s total execution: %.1f\n", r.Env, "run", "", secs(r.Report.TotalWall))
	}
	for i, s := range Speedups(results) {
		fmt.Fprintf(&b, "speedup %s -> %s: %.1f%%\n", results[i].Env, results[i+1].Env, s)
	}
	return b.String()
}

// RenderFig1 prints the API-comparison ablation.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1 (ablation) — generalized reduction vs Map-Reduce, same workload\n")
	fmt.Fprintf(&b, "%-22s %10s %12s %12s %14s\n",
		"engine", "wall (s)", "peak pairs", "shuffled", "state bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10.3f %12d %12d %14d\n",
			r.Engine, r.WallSeconds, r.PeakPairs, r.ShuffledPairs, r.StateBytes)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %s\n", r.Engine+":", r.ResultDigest)
	}
	return b.String()
}

// RenderSummary prints the paper's two headline numbers for a full
// sweep of Fig3 and Fig4 results.
func RenderSummary(fig3 [][]EnvResult, fig4 [][]EnvResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mean hybrid slowdown:        %6.2f%%  (paper: 15.55%%)\n", MeanHybridSlowdownPct(fig3))
	fmt.Fprintf(&b, "mean speedup per doubling:   %6.2f%%  (paper: 81%%)\n", MeanSpeedupPct(fig4))
	return b.String()
}
