package bench

import (
	"fmt"
	"strings"
)

// Ablations quantify the design choices the paper describes but does
// not isolate experimentally: the consecutive-job assignment
// optimization, multi-threaded retrieval, the master's batch size, and
// the reduction-object size's effect on synchronization cost.

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label  string
	Result EnvResult
}

// AblationConsecutive compares the head's consecutive-job grouping
// against scattered assignment on an env-local run, where the storage
// node's seek model makes sequential access pay off (Section III-B:
// "the selection of consecutive jobs is an important optimization").
func AblationConsecutive(spec AppSpec, sim SimParams, logf func(string, ...any)) ([]AblationRow, error) {
	var rows []AblationRow
	for _, scatter := range []bool{false, true} {
		res, err := Execute(RunConfig{
			Spec: spec, LocalPct: 100, LocalCores: 32,
			Sim: sim, Scatter: scatter, Logf: logf,
		})
		if err != nil {
			return nil, err
		}
		label := "consecutive"
		if scatter {
			label = "scattered"
		}
		rows = append(rows, AblationRow{Label: label, Result: *res})
	}
	return rows, nil
}

// AblationFetchThreads sweeps the retrieval thread count on an
// env-cloud run (all data in the object store), quantifying the
// multi-threaded retrieval design ("to capitalize on the fast network
// interconnects").
func AblationFetchThreads(spec AppSpec, sim SimParams, threads []int, logf func(string, ...any)) ([]AblationRow, error) {
	var rows []AblationRow
	for _, th := range threads {
		s := sim
		s.FetchThreads = th
		res, err := Execute(RunConfig{
			Spec: spec, LocalPct: 0, CloudCores: 32,
			Sim: s, Logf: logf,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Label: fmt.Sprintf("threads=%d", th), Result: *res})
	}
	return rows, nil
}

// AblationBatch sweeps the master's refill batch size on a balanced
// hybrid run, quantifying the pooling-based load balancing granularity
// (too-large batches hurt balance; too-small ones pay head round
// trips).
func AblationBatch(spec AppSpec, sim SimParams, batches []int, logf func(string, ...any)) ([]AblationRow, error) {
	var rows []AblationRow
	for _, b := range batches {
		res, err := Execute(RunConfig{
			Spec: spec, LocalPct: 50, LocalCores: 16, CloudCores: spec.withDefaults().CloudCores(16),
			Sim: sim, Batch: b, Logf: logf,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Label: fmt.Sprintf("batch=%d", b), Result: *res})
	}
	return rows, nil
}

// AblationObjectSize sweeps the PageRank graph size (and with it the
// rank-vector reduction object) at fixed input bytes per page,
// reproducing the paper's conclusion that a growing reduction object
// eventually makes cloud bursting unattractive.
func AblationObjectSize(sim SimParams, pages []int64, logf func(string, ...any)) ([]AblationRow, error) {
	var rows []AblationRow
	for _, p := range pages {
		spec := PageRankSpec()
		spec.Params["pages"] = fmt.Sprint(p)
		res, err := Execute(RunConfig{
			Spec: spec, LocalPct: 50, LocalCores: 16, CloudCores: 16,
			Sim: sim, Logf: logf,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Label: fmt.Sprintf("pages=%d (object %d KB)", p, p*8>>10), Result: *res})
	}
	return rows, nil
}

// AblationPooling demonstrates the paper's claim that pooling-based
// dynamic load balancing "normalizes unpredictable performance
// changes" of virtualized cloud cores: under heavy per-core speed
// jitter, on-demand (one job at a time) assignment is compared with
// static partitioning (each core grabs its 1/N share up front).
func AblationPooling(spec AppSpec, sim SimParams, jitter float64, logf func(string, ...any)) ([]AblationRow, error) {
	spec = spec.withDefaults()
	cores := 16
	base := RunConfig{
		Spec: spec, LocalPct: 50,
		LocalCores: cores, CloudCores: spec.CloudCores(cores),
		Sim: sim, CloudJitter: jitter, Logf: logf,
	}
	var rows []AblationRow
	for _, static := range []bool{false, true} {
		cfg := base
		label := "dynamic pooling"
		if static {
			// Each worker takes its whole static share in one request.
			perCore := spec.Jobs / (cfg.LocalCores + cfg.CloudCores)
			if perCore < 1 {
				perCore = 1
			}
			cfg.JobsPerRequest = perCore
			cfg.Batch = spec.Jobs
			label = "static partition"
		}
		res, err := Execute(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Label: label, Result: *res})
	}
	return rows, nil
}

// RenderAblation prints an ablation sweep.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s (emulated seconds)\n", title)
	fmt.Fprintf(&b, "%-26s %12s %12s %12s %12s\n", "config", "total", "retrieval", "sync", "globalRed")
	for _, r := range rows {
		var retr, sync float64
		for _, c := range r.Result.Report.Clusters {
			s := perCore(&c)
			retr += s.Retrieval.Seconds()
			sync += (s.Sync + c.IdleAtEnd).Seconds()
		}
		n := float64(len(r.Result.Report.Clusters))
		fmt.Fprintf(&b, "%-26s %12.1f %12.1f %12.1f %12.3f\n",
			r.Label, r.Result.Report.TotalWall.Seconds(), retr/n, sync/n,
			r.Result.Report.GlobalRed.Seconds())
	}
	return b.String()
}
