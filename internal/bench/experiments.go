package bench

import (
	"fmt"
	"time"

	"cloudburst/internal/apps"
	"cloudburst/internal/gr"
	"cloudburst/internal/mapreduce"
	"cloudburst/internal/netsim"
)

// Fig3 runs the paper's five environment configurations for one
// application (Figure 3; Tables I and II derive from the same runs):
//
//	env-local  (32, 0)  100% data local
//	env-cloud  (0, 32*) 100% data in S3
//	env-50/50  (16,16*)  50% local
//	env-33/67  (16,16*)  33% local
//	env-17/83  (16,16*)  17% local
//
// (* kmeans uses the app's CloudCores mapping: 32->44, 16->22.)
func Fig3(spec AppSpec, sim SimParams, logf func(string, ...any)) ([]EnvResult, error) {
	spec = spec.withDefaults()
	base := 32
	half := base / 2
	runs := []RunConfig{
		{Spec: spec, LocalPct: 100, LocalCores: base, CloudCores: 0, Sim: sim, Logf: logf},
		{Spec: spec, LocalPct: 0, LocalCores: 0, CloudCores: spec.CloudCores(base), Sim: sim, Logf: logf},
		{Spec: spec, LocalPct: 50, LocalCores: half, CloudCores: spec.CloudCores(half), Sim: sim, Logf: logf},
		{Spec: spec, LocalPct: 33, LocalCores: half, CloudCores: spec.CloudCores(half), Sim: sim, Logf: logf},
		{Spec: spec, LocalPct: 17, LocalCores: half, CloudCores: spec.CloudCores(half), Sim: sim, Logf: logf},
	}
	var out []EnvResult
	for _, rc := range runs {
		res, err := Execute(rc)
		if err != nil {
			return nil, fmt.Errorf("bench: %s %s: %w", spec.Name, envName(rc), err)
		}
		out = append(out, *res)
	}
	return out, nil
}

// Fig4 runs the scalability sweep (Figure 4): every file in S3, equal
// core counts (m, m*) for m in 4, 8, 16, 32.
func Fig4(spec AppSpec, sim SimParams, logf func(string, ...any)) ([]EnvResult, error) {
	spec = spec.withDefaults()
	var out []EnvResult
	for _, m := range []int{4, 8, 16, 32} {
		res, err := Execute(RunConfig{
			Spec: spec, LocalPct: 0,
			LocalCores: m, CloudCores: spec.CloudCores(m),
			Sim: sim, Logf: logf,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s (%d,%d): %w", spec.Name, m, spec.CloudCores(m), err)
		}
		res.Env = fmt.Sprintf("(%d,%d)", m, spec.CloudCores(m))
		res.Report.Env = res.Env
		out = append(out, *res)
	}
	return out, nil
}

// Speedups returns, for a Fig4 sweep, the percentage speedup achieved
// by each core doubling: (T_prev / T_curr - 1) * 100 (the paper's
// Figure 4 annotations; 100% would be perfect scaling).
func Speedups(results []EnvResult) []float64 {
	var out []float64
	for i := 1; i < len(results); i++ {
		prev := results[i-1].Report.TotalWall.Seconds()
		curr := results[i].Report.TotalWall.Seconds()
		if curr <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, (prev/curr-1)*100)
	}
	return out
}

// SlowdownVsLocal derives the paper's Table II "total slowdown": the
// hybrid run's execution time minus env-local's, in emulated seconds.
func SlowdownVsLocal(results []EnvResult) map[string]time.Duration {
	var local time.Duration
	for _, r := range results {
		if r.Env == "env-local" {
			local = r.Report.TotalWall
		}
	}
	out := make(map[string]time.Duration)
	for _, r := range results {
		if r.Env == "env-local" || r.Env == "env-cloud" {
			continue
		}
		out[r.Env] = r.Report.TotalWall - local
	}
	return out
}

// MeanHybridSlowdownPct computes the paper's headline number (Section
// IV-B: "the average slowdown ratio ... is only 15.55%") across a set
// of Fig3 sweeps: mean of (hybrid - local)/local over the three hybrid
// configurations of every application.
func MeanHybridSlowdownPct(all [][]EnvResult) float64 {
	var sum float64
	var n int
	for _, results := range all {
		var local float64
		for _, r := range results {
			if r.Env == "env-local" {
				local = r.Report.TotalWall.Seconds()
			}
		}
		if local <= 0 {
			continue
		}
		for _, r := range results {
			if r.Env == "env-local" || r.Env == "env-cloud" {
				continue
			}
			sum += (r.Report.TotalWall.Seconds() - local) / local * 100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanSpeedupPct averages per-doubling speedups across Fig4 sweeps
// (the paper's "average speedup of 81% every time Y is doubled").
func MeanSpeedupPct(all [][]EnvResult) float64 {
	var sum float64
	var n int
	for _, results := range all {
		for _, s := range Speedups(results) {
			sum += s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fig1Row is one engine's outcome in the API-comparison ablation.
type Fig1Row struct {
	Engine        string
	WallSeconds   float64
	PeakPairs     int64 // peak buffered intermediate pairs (MR) / 0 (GR)
	ShuffledPairs int64 // pairs crossing the shuffle (MR) / 0 (GR)
	StateBytes    int   // reduction-object size (GR) / est. pair bytes (MR)
	ResultDigest  string
}

// Fig1 reproduces the Section III-A comparison quantitatively: the
// same workload through generalized reduction, Map-Reduce, and
// Map-Reduce with a combiner, reporting runtime and intermediate
// state. It uses wordcount (the canonical combiner subject) at a size
// where the differences are visible but fast.
func Fig1(records int64, workers int) ([]Fig1Row, error) {
	spec := WordCountSpec()
	spec.Records = records
	spec.Files = workers
	d, err := CachedDataset(spec)
	if err != nil {
		return nil, err
	}
	app, err := gr.New(spec.Name, spec.Params)
	if err != nil {
		return nil, err
	}
	wc := app.(*apps.WordCount)

	var rows []Fig1Row

	// Generalized reduction: one engine per worker, merge at the end.
	start := time.Now()
	reds := make([]gr.Reduction, workers)
	errs := make([]error, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			red := app.NewReduction()
			e := gr.NewEngine(app, gr.EngineOptions{Clock: netsim.Instant()})
			for f := w; f < len(d.Files); f += workers {
				if _, err := e.ProcessChunk(red, d.Files[f]); err != nil {
					errs[w] = err
					break
				}
			}
			reds[w] = red
			done <- w
		}(w)
	}
	for range reds {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	final, err := gr.MergeAll(app, reds)
	if err != nil {
		return nil, err
	}
	grWall := time.Since(start).Seconds()
	digest, _ := wc.Summarize(final)
	stateBytes := 0
	for _, r := range reds {
		stateBytes += r.Bytes()
	}
	rows = append(rows, Fig1Row{
		Engine: "generalized-reduction", WallSeconds: grWall,
		StateBytes: stateBytes, ResultDigest: digest,
	})

	// Map-Reduce without and with the combiner.
	for _, combine := range []bool{false, true} {
		cfg := mapreduce.WordCountJob(wc.Width, combine)
		cfg.Workers = workers
		start := time.Now()
		res, err := mapreduce.Run(cfg, d.Files)
		if err != nil {
			return nil, err
		}
		name := "map-reduce"
		if combine {
			name = "map-reduce+combine"
		}
		var total int64
		for _, v := range res.Values {
			total += int64(v[0])
		}
		rows = append(rows, Fig1Row{
			Engine: name, WallSeconds: time.Since(start).Seconds(),
			PeakPairs: res.Stats.PeakBuffered, ShuffledPairs: res.Stats.PairsShuffled,
			StateBytes:   int(res.Stats.ApproxBufferedBytes),
			ResultDigest: fmt.Sprintf("wordcount: %d words, %d distinct", total, len(res.Values)),
		})
	}
	return rows, nil
}
