package bench

import (
	"fmt"
	"strings"
	"time"

	"cloudburst/internal/elastic"
	"cloudburst/internal/faults"
)

// The spot experiment measures preemption tolerance: the elastic
// deadline run re-provisioned from the revocable spot tier, with the
// same seeded revocation trace replayed against four recovery
// configurations. clean never loses a worker; warned-drain gives every
// revocation a warning window the victim spends on its accelerated
// drain; unwarned-kill revokes without warning and recovers through
// checkpointed partial reductions; unwarned-nockpt replays the same
// kills with checkpointing off, paying full re-execution. Results must
// be digest-identical across every variant — preemption reshuffles who
// computes what (and how often), never what is computed.

const (
	// spotRevocations is the number of trace events; spotStartFrac /
	// spotSpreadFrac place them (as fractions of the measured
	// local-only wall) after the burst fleet has booted but well before
	// the run can finish.
	spotRevocations = 3
	spotStartFrac   = 0.35
	spotSpreadFrac  = 0.30
	// spotWarnFrac sizes the warning window: long enough to drain a
	// grant or two, far too short to finish the run.
	spotWarnFrac = 0.05
	// spotCheckpointJobs is the checkpoint cadence for the recovery
	// variants; at JobsPerRequest=1 it bounds the loss to under two
	// grants.
	spotCheckpointJobs = 2
	// spotRateFrac prices the spot tier as a fraction of the on-demand
	// core rate (2011-era spot discounts ran 60-80%).
	spotRateFrac = 0.3
	// spotODFallback is how many revocations the controller tolerates
	// before replacement boots switch to the non-revocable tier.
	spotODFallback = 2
	// spotTraceSeed makes every variant replay the identical schedule.
	spotTraceSeed = 11
)

// SpotRow is one recovery configuration's outcome under the shared
// deadline and revocation schedule.
type SpotRow struct {
	Label string
	// CheckpointJobs is the variant's checkpoint cadence (0 = off).
	CheckpointJobs int
	TotalEmu       time.Duration
	MetDeadline    bool
	// Trace-side outcomes.
	Revocations, Warned, Unwarned       int
	DrainsCompleted, DrainsAborted      int
	CheckpointsSent, CheckpointsAdopted int
	// JobsRecovered were saved from re-execution by adopted
	// checkpoints; JobsRequeued went back to the queue when a victim
	// died; JobsAbandoned were given up by warned drains.
	JobsRecovered, JobsRequeued, JobsAbandoned int
	// Membership and billing (spot vs on-demand tiers).
	Boots, Replacements, OnDemandWorkers int
	SpotUSD, OnDemandUSD, TotalUSD       float64
	Digest                               string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r SpotRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// SpotResult is the whole preemption sweep for one application.
type SpotResult struct {
	App         string
	LocalCores  int
	BaselineEmu time.Duration
	Deadline    time.Duration
	Rows        []SpotRow
	// Match is true when every row produced the same digest.
	Match bool
}

// Row returns the row with the given label, or nil.
func (e *SpotResult) Row(label string) *SpotRow {
	for i := range e.Rows {
		if e.Rows[i].Label == label {
			return &e.Rows[i]
		}
	}
	return nil
}

func (e *SpotResult) finish() {
	e.Match = true
	for _, r := range e.Rows[1:] {
		if r.Digest != e.Rows[0].Digest {
			e.Match = false
		}
	}
}

// SpotSweep measures the local-only baseline, derives the deadline and
// the revocation schedule from it, and replays the schedule against
// the recovery variants. scaleUp projects egress to paper scale for
// the dollar figures, as in ElasticSweep.
func SpotSweep(spec AppSpec, sim SimParams, scaleUp float64, logf func(string, ...any)) (*SpotResult, error) {
	spec = spec.withDefaults()
	prices := AWS2011()
	coreRate := prices.InstancePerHour / float64(prices.CoresPerInstance)

	base := RunConfig{
		Spec: spec, LocalPct: 100, LocalCores: elasticLocalCores,
		Sim: sim, Batch: elasticBatch, JobsPerRequest: elasticJobsPer,
		Logf: logf,
	}
	res, err := Execute(base)
	if err != nil {
		return nil, fmt.Errorf("bench: spot %s local-only: %w", spec.Name, err)
	}
	out := &SpotResult{
		App: spec.Name, LocalCores: elasticLocalCores,
		BaselineEmu: res.Report.TotalWall,
	}
	out.Deadline = time.Duration(float64(out.BaselineEmu) * elasticDeadlineFrac)
	boot := time.Duration(float64(out.BaselineEmu) * elasticBootFrac)
	warning := time.Duration(float64(out.BaselineEmu) * spotWarnFrac)

	ctrl := func() *elastic.Config {
		return &elastic.Config{
			Site:             "cloud",
			Deadline:         out.Deadline,
			MinWorkers:       1,
			MaxWorkers:       elasticCloudOver,
			StepUp:           elasticStepUp,
			BootLatency:      boot,
			InstanceRate:     coreRate,
			EgressRate:       prices.EgressPerGB,
			SpotRate:         coreRate * spotRateFrac,
			OnDemandFallback: spotODFallback,
			Logf:             logf,
		}
	}
	trace := func(warnedFrac float64) *faults.RevocationTrace {
		return faults.NewRevocationTrace(spotTraceSeed, faults.RevocationSpec{
			Site:       "cloud",
			Count:      spotRevocations,
			WarnedFrac: warnedFrac,
			Warning:    warning,
			Start:      time.Duration(float64(out.BaselineEmu) * spotStartFrac),
			Spread:     time.Duration(float64(out.BaselineEmu) * spotSpreadFrac),
		})
	}
	variants := []struct {
		label      string
		trace      *faults.RevocationTrace
		checkpoint int
	}{
		{"clean", nil, 0},
		{"warned-drain", trace(1), 0},
		{"unwarned-kill", trace(0), spotCheckpointJobs},
		{"unwarned-nockpt", trace(0), 0},
	}
	for _, v := range variants {
		cfg := RunConfig{
			Spec: spec, LocalPct: 50, LocalCores: elasticLocalCores,
			CloudCores: elasticCloudSeed, Sim: sim,
			Batch: elasticBatch, JobsPerRequest: elasticJobsPer,
			Elastic:        ctrl(),
			Revocations:    v.trace,
			CheckpointJobs: v.checkpoint,
			Logf:           logf,
		}
		res, err := Execute(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: spot %s %s: %w", spec.Name, v.label, err)
		}
		el := res.Report.Elastic
		if el == nil {
			return nil, fmt.Errorf("bench: spot %s %s: run produced no elastic report", spec.Name, v.label)
		}
		row := SpotRow{
			Label: v.label, CheckpointJobs: v.checkpoint,
			TotalEmu:    res.Report.TotalWall,
			MetDeadline: res.Report.TotalWall <= out.Deadline,
			Boots:       el.Boots, Replacements: el.Replacements,
			OnDemandWorkers: el.OnDemandWorkers,
			Digest:          res.Report.FinalResult,
		}
		// Re-price with projected egress, splitting the instance bill by
		// tier the way the controller metered it.
		egress := int64(float64(egressBytes(res.Report)) * scaleUp)
		_, egressUSD, _ := elastic.Cost(0, egress, coreRate, prices.EgressPerGB)
		row.SpotUSD = el.SpotUSD
		row.OnDemandUSD = el.OnDemandUSD
		row.TotalUSD = el.SpotUSD + el.OnDemandUSD + egressUSD
		if p := res.Report.Preemption; p != nil {
			row.Revocations = p.Revocations
			row.Warned = p.Warned
			row.Unwarned = p.Unwarned
			row.DrainsCompleted = p.DrainsCompleted
			row.DrainsAborted = p.DrainsAborted
			row.CheckpointsSent = p.CheckpointsSent
			row.CheckpointsAdopted = p.CheckpointsAdopted
			row.JobsRecovered = p.JobsRecovered
			row.JobsRequeued = p.JobsRequeued
			row.JobsAbandoned = p.JobsAbandoned
		}
		out.Rows = append(out.Rows, row)
	}
	out.finish()
	return out, nil
}

// RenderSpot prints the preemption sweep: per-variant wall, deadline
// outcome, revocation/drain/checkpoint tallies, and the tiered bill.
func RenderSpot(title string, res *SpotResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Spot preemption sweep — %s (local %d cores; deadline %.1fs = %.0f%% of local-only %.1fs; %d revocations)\n",
		title, res.LocalCores, res.Deadline.Seconds(),
		elasticDeadlineFrac*100, res.BaselineEmu.Seconds(), spotRevocations)
	fmt.Fprintf(&b, "  %-16s %5s %8s %9s %5s %7s %7s %6s %7s %7s %5s %8s %8s %9s\n",
		"variant", "ckpt", "total", "deadline", "revs", "drains", "adopts", "saved", "requeue", "od-wkr", "boots", "spot $", "od $", "total $")
	for _, r := range res.Rows {
		met := "met ✓"
		if !r.MetDeadline {
			met = "MISS ✗"
		}
		ckpt := "off"
		if r.CheckpointJobs > 0 {
			ckpt = fmt.Sprintf("%d", r.CheckpointJobs)
		}
		fmt.Fprintf(&b, "  %-16s %5s %8.1f %9s %5d %3d/%-3d %7d %6d %7d %7d %5d %8.4f %8.4f %9.4f\n",
			r.Label, ckpt, r.TotalEmu.Seconds(), met,
			r.Revocations, r.DrainsCompleted, r.DrainsAborted,
			r.CheckpointsAdopted, r.JobsRecovered, r.JobsRequeued,
			r.OnDemandWorkers, r.Boots, r.SpotUSD, r.OnDemandUSD, r.TotalUSD)
	}
	if res.Match {
		fmt.Fprintf(&b, "  result digests: identical across all variants ✓\n")
	} else {
		fmt.Fprintf(&b, "  result digests: DIVERGED — preemption recovery changed results\n")
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "    %-16s %s\n", r.Label+":", r.Digest)
		}
	}
	return b.String()
}
