package bench

import (
	"fmt"
	"strings"
)

// ChaosResult pairs a fault-free run with its faulted twin. The
// scenario's claim is the paper's fault-tolerance claim: injected
// failures cost time, never correctness — the faulted run must compute
// the identical reduction.
type ChaosResult struct {
	Params   ChaosParams
	Baseline *EnvResult
	Faulted  *EnvResult
	// Match reports whether the two runs produced the same result
	// digest.
	Match bool
}

// Chaos runs the hybrid env-50/50 configuration twice — once clean,
// once under the given fault plan — and compares the results. The
// faulted run exercises the whole recovery stack: injected transients
// and throttles on the S3 views, per-sub-range retries with backoff,
// and heartbeat-based stall detection.
func Chaos(spec AppSpec, sim SimParams, params ChaosParams, logf func(string, ...any)) (*ChaosResult, error) {
	spec = spec.withDefaults()
	rc := RunConfig{
		Spec: spec, LocalPct: 50,
		LocalCores: 4, CloudCores: 4,
		Sim: sim, Logf: logf,
	}
	baseline, err := Execute(rc)
	if err != nil {
		return nil, fmt.Errorf("bench: chaos baseline: %w", err)
	}
	rc.Chaos = &params
	faulted, err := Execute(rc)
	if err != nil {
		return nil, fmt.Errorf("bench: chaos run: %w", err)
	}
	return &ChaosResult{
		Params:   params,
		Baseline: baseline,
		Faulted:  faulted,
		Match:    baseline.Report.FinalResult == faulted.Report.FinalResult,
	}, nil
}

// RenderChaos prints the chaos scenario's outcome: both digests, the
// slowdown, and the recovery counters.
func RenderChaos(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos — %s, %s: fault injection vs clean run (emulated seconds)\n",
		r.Faulted.App, r.Faulted.Env)
	fmt.Fprintf(&b, "  fault plan: seed=%d firstN=%d transient=%.1f%% slowdown=%.1f%% heartbeat=%v\n",
		r.Params.Seed, r.Params.FirstN,
		100*r.Params.TransientProb, 100*r.Params.SlowDownProb, r.Params.Heartbeat)
	fmt.Fprintf(&b, "  %-10s %12s  %s\n", "run", "total", "result")
	fmt.Fprintf(&b, "  %-10s %12.1f  %s\n", "clean",
		secs(r.Baseline.Report.TotalWall), r.Baseline.Report.FinalResult)
	fmt.Fprintf(&b, "  %-10s %12.1f  %s\n", "faulted",
		secs(r.Faulted.Report.TotalWall), r.Faulted.Report.FinalResult)
	f := r.Faulted.Report.Faults
	fmt.Fprintf(&b, "  injected: %d  retries: %d  backoff: %.2fs  heartbeat misses: %d\n",
		f.Injected, f.Retries, secs(f.BackoffEmu), f.HeartbeatMisses)
	if r.Match {
		b.WriteString("  results match: faults cost time, not correctness\n")
	} else {
		b.WriteString("  RESULTS DIVERGE: fault recovery corrupted the reduction\n")
	}
	return b.String()
}
