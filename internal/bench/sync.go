package bench

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"cloudburst/internal/cluster"
	"cloudburst/internal/metrics"
)

// The sync experiment measures the global-reduction synchronization
// strategies over the paper's worst case for them: pagerank in
// env-cloud, where every core ships a full ~600 KB rank vector to the
// master and the merged vector crosses the 15 KB/s head WAN. Four
// variants run the identical workload: the monolithic baseline
// (single-frame objects, merge after the all-arrivals barrier), and
// three streamed arms (bounded part frames, merge overlapped with
// transfers) with serial, parallel, and shard-level merging. Sync is a
// transport/scheduling change, never a semantics change, so every
// variant must produce the same result digest; the win is measured
// wall clock plus the overlap the per-arrival merge bought.

// SyncVariant names one arm of the sync ablation.
type SyncVariant struct {
	Label string
	Mode  string // cluster.DeployConfig.SyncMode value
}

// SyncVariants returns the ablation arms in rendering order, the
// monolithic baseline first.
func SyncVariants() []SyncVariant {
	return []SyncVariant{
		{Label: "monolithic-serial", Mode: cluster.SyncMonolithic},
		{Label: "streamed-serial", Mode: cluster.SyncStreamed},
		{Label: "streamed-parallel", Mode: cluster.SyncStreamedParallel},
		{Label: "streamed-sharded", Mode: cluster.SyncStreamedSharded},
	}
}

// syncMergeCostPerByte restores the paper-scale merge CPU the byte
// scale-down erased: folding the paper's ~300 MB rank vector at real
// memory bandwidth costs ~0.6 s per pair merge, and our ~600 KB
// stand-in object is 10,000x smaller, so each folded byte is charged
// 1 µs of emulated time (0.6 s / 600 KB). Every variant pays it —
// what differs is whether the folds hide behind transfers (streamed),
// run concurrently (parallel/sharded), or queue after the barrier
// (monolithic).
const syncMergeCostPerByte = time.Microsecond

// syncSpec turns the calibrated pagerank workload into its large-rank-
// vector variant: 4x the pages at a quarter the degree, so the edge
// data (and thus the map phase) stays at the calibrated size while the
// reduction object the sync phase must move and merge quadruples.
func syncSpec(spec AppSpec) AppSpec {
	out := spec
	out.Params = make(map[string]string, len(spec.Params))
	for k, v := range spec.Params {
		out.Params[k] = v
	}
	for key, mul := range map[string]bool{"pages": true, "mindeg": false, "maxdeg": false} {
		n, err := strconv.ParseInt(out.Params[key], 10, 64)
		if err != nil {
			continue
		}
		if mul {
			n *= 4
		} else {
			n /= 4
		}
		if n < 1 {
			n = 1
		}
		out.Params[key] = strconv.FormatInt(n, 10)
	}
	return out
}

// SyncRow is one variant's outcome.
type SyncRow struct {
	Label string
	Mode  string
	// TotalEmu is the run's emulated wall time; GlobalRedEmu the
	// head-side merge + final-broadcast phase.
	TotalEmu     time.Duration
	GlobalRedEmu time.Duration
	// Sync is the run's sync-phase accounting (parts, bytes, merges,
	// overlap) summed over every tier.
	Sync metrics.SyncReport
	// Digest is the application result digest.
	Digest string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r SyncRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// SyncResult is the full ablation.
type SyncResult struct {
	App  string
	Env  string
	Rows []SyncRow
	// Match is true when every variant produced the same digest.
	Match bool
}

// Row returns the named row, or nil.
func (s *SyncResult) Row(label string) *SyncRow {
	for i := range s.Rows {
		if s.Rows[i].Label == label {
			return &s.Rows[i]
		}
	}
	return nil
}

// finish verifies digest invariance and fills the Match flag.
func (s *SyncResult) finish() {
	s.Match = true
	for _, r := range s.Rows[1:] {
		if r.Digest != s.Rows[0].Digest {
			s.Match = false
		}
	}
}

// SyncPageRank runs the ablation: one pagerank pass per variant, all
// data in S3, cloud cores only (the reduction-object transfers and
// merges dominated by the large rank vector).
func SyncPageRank(spec AppSpec, sim SimParams, logf func(string, ...any)) (*SyncResult, error) {
	spec = syncSpec(spec.withDefaults())
	out := &SyncResult{App: spec.Name}
	for _, v := range SyncVariants() {
		res, err := Execute(RunConfig{
			Spec: spec, LocalPct: 0,
			LocalCores: 0, CloudCores: spec.CloudCores(32),
			Sim: sim, SyncMode: v.Mode,
			MergeCost: syncMergeCostPerByte, Logf: logf,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: sync %s %s: %w", spec.Name, v.Label, err)
		}
		out.Env = res.Env
		row := SyncRow{
			Label: v.Label, Mode: v.Mode,
			TotalEmu:     res.Report.TotalWall,
			GlobalRedEmu: res.Report.GlobalRed,
			Digest:       res.Report.FinalResult,
		}
		if res.Report.Sync != nil {
			row.Sync = *res.Report.Sync
		}
		out.Rows = append(out.Rows, row)
	}
	out.finish()
	return out, nil
}

// RenderSync prints the ablation with each variant's speedup over the
// monolithic baseline and its merge-overlap accounting.
func RenderSync(title string, res *SyncResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Global-reduction sync — %s (%s, emulated seconds)\n", title, res.Env)
	fmt.Fprintf(&b, "%-18s %10s %9s %9s %7s %9s %9s %8s %8s %8s %7s\n",
		"variant", "total", "speedup", "globred", "parts", "streamMB", "estMB", "merges", "busy", "saved", "maxpar")
	base := res.Rows[0]
	for _, r := range res.Rows {
		speed := "—"
		if base.TotalEmu > 0 && r.TotalEmu > 0 {
			speed = fmt.Sprintf("%.2fx", base.TotalEmu.Seconds()/r.TotalEmu.Seconds())
		}
		fmt.Fprintf(&b, "%-18s %10.1f %9s %9.1f %7d %9.2f %9.2f %8d %8.1f %8.1f %7d\n",
			r.Label, r.TotalEmu.Seconds(), speed, r.GlobalRedEmu.Seconds(),
			r.Sync.Parts,
			float64(r.Sync.StreamedBytes)/(1<<20),
			float64(r.Sync.EstBytes)/(1<<20),
			r.Sync.Merges,
			r.Sync.MergeBusyEmu.Seconds(),
			r.Sync.OverlapSavedEmu.Seconds(),
			r.Sync.MaxParallel)
	}
	if res.Match {
		fmt.Fprintf(&b, "result digests: identical across all variants ✓\n")
	} else {
		fmt.Fprintf(&b, "result digests: DIVERGED — the sync strategy changed results\n")
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "  %-18s %s\n", r.Label+":", r.Digest)
		}
	}
	return b.String()
}
