package bench

import (
	"strings"
	"testing"
)

func TestOverlapSinglePassGrid(t *testing.T) {
	res, err := OverlapSinglePass(tinySpec(), tinySim(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Env != "env-cloud" {
		t.Fatalf("res = %+v", res)
	}
	if !res.Match {
		t.Fatalf("variants diverged: %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if !strings.Contains(r.Digest, "20000 words") {
			t.Fatalf("%s computed wrong result: %q", r.Label, r.Digest)
		}
		if r.Prefetch && r.Retrieval.PrefetchedJobs == 0 && r.Retrieval.PrefetchSkips == 0 {
			t.Fatalf("%s recorded no pipeline activity: %+v", r.Label, r.Retrieval)
		}
		if !r.Prefetch && r.Retrieval.PrefetchedJobs != 0 {
			t.Fatalf("%s prefetched without the pipeline: %+v", r.Label, r.Retrieval)
		}
		if r.Cache && r.Retrieval.CacheMisses == 0 {
			t.Fatalf("%s cache saw no traffic: %+v", r.Label, r.Retrieval)
		}
	}
}

func TestOverlapPageRankWarmsCache(t *testing.T) {
	spec := AppSpec{
		Name:   "pagerank",
		Params: map[string]string{"pages": "400", "mindeg": "2", "maxdeg": "4", "cost": "0s"},
		Files:  4, Jobs: 16,
	}
	res, err := OverlapPageRank(spec, tinySim(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("variants diverged: %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if r.Iterations != 3 {
			t.Fatalf("%s ran %d iterations", r.Label, r.Iterations)
		}
		if r.Cache {
			// The first pass misses; the two warm passes must hit.
			if r.Retrieval.CacheHits == 0 || r.Retrieval.CacheBytesSaved == 0 {
				t.Fatalf("%s never warmed: %+v", r.Label, r.Retrieval)
			}
			if r.Retrieval.CacheHits != 2*r.Retrieval.CacheMisses {
				t.Fatalf("%s hits/misses = %d/%d, want 2:1 over 3 passes",
					r.Label, r.Retrieval.CacheHits, r.Retrieval.CacheMisses)
			}
		} else if r.Retrieval.CacheHits != 0 {
			t.Fatalf("%s hit a cache that should not exist: %+v", r.Label, r.Retrieval)
		}
	}
	out := RenderOverlap("pagerank", res)
	if !strings.Contains(out, "identical across all variants") {
		t.Fatalf("render = %q", out)
	}
}
