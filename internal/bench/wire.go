package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"cloudburst/internal/store"
	"cloudburst/internal/wire"
)

// The wire experiment gates the binary codec against the gob baseline
// from two angles. The microbench measures pure encode+decode round
// trips on the two hottest message shapes — a KindJobGrant batch (the
// control plane's steady state) and a KindReadResp carrying one fetch
// range (the data plane's per-request unit) — reporting throughput
// and allocations per op for each codec. The pipeline comparison then
// runs the same full knn env-cloud execution under each codec and
// checks the application digests are identical: the codec must be a
// pure transport change, never a semantics change.

// wireReadRespBytes sizes the KindReadResp benchmark payload at the
// default fetch range (store.FetchOptions.RangeSize), so the scenario
// measures exactly what one remote read pays.
const wireReadRespBytes = 256 << 10

// WireRow is one (scenario, codec) microbench measurement.
type WireRow struct {
	Scenario string // "jobgrant" or "readresp"
	Codec    string // "binary" or "gob"
	// Ops is how many encode+decode round trips the sample ran.
	Ops int
	// NsPerOp is wall nanoseconds per round trip.
	NsPerOp float64
	// AllocsPerOp is heap allocations per round trip.
	AllocsPerOp float64
	// EncodedBytes is the payload size the codec produced.
	EncodedBytes int
	// MBPerSec is encoded payload throughput through the round trip.
	MBPerSec float64
}

// WirePipelineRow is one full-pipeline run under a codec.
type WirePipelineRow struct {
	Codec    string
	TotalEmu time.Duration
	Digest   string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r WirePipelineRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// WireResult is the whole experiment: microbench rows, the derived
// binary-vs-gob ratios per scenario, and the digest-checked pipeline
// comparison.
type WireResult struct {
	App  string
	Env  string
	Rows []WireRow
	// Speedup maps scenario -> gob ns/op divided by binary ns/op
	// (encode+decode throughput ratio).
	Speedup map[string]float64
	// AllocReduction maps scenario -> gob allocs/op divided by binary
	// allocs/op.
	AllocReduction map[string]float64
	Pipeline       []WirePipelineRow
	// Match is true when every pipeline run produced the same digest.
	Match bool
}

// Row returns the (scenario, codec) row, or nil.
func (w *WireResult) Row(scenario, codec string) *WireRow {
	for i := range w.Rows {
		if w.Rows[i].Scenario == scenario && w.Rows[i].Codec == codec {
			return &w.Rows[i]
		}
	}
	return nil
}

// wireScenarios returns the benchmark messages in rendering order.
func wireScenarios() []struct {
	name string
	msg  *wire.Message
} {
	grant := &wire.Message{Kind: wire.KindJobGrant}
	for i := int32(0); i < 8; i++ {
		grant.Jobs = append(grant.Jobs, wire.JobAssign{
			Chunk: i, File: "data-0003.bin", Offset: int64(i) * 131072,
			Length: 131072, Units: 4096, HomeSite: "cloud", Stolen: i%2 == 0,
		})
		grant.Hints = append(grant.Hints, wire.JobAssign{
			Chunk: 100 + i, File: "data-0004.bin", Offset: int64(i) * 131072,
			Length: 131072, Units: 4096, HomeSite: "cloud",
		})
	}
	data := make([]byte, wireReadRespBytes)
	for i := range data {
		data[i] = byte(i * 131)
	}
	return []struct {
		name string
		msg  *wire.Message
	}{
		{"jobgrant", grant},
		{"readresp", &wire.Message{Kind: wire.KindReadResp, Data: data}},
	}
}

// measureWire runs fn in a timed loop for roughly dur, returning ops,
// ns/op, and allocs/op. It is a hand-rolled testing.Benchmark
// replacement because the benchtime must be a caller knob (the CI
// smoke run uses a fraction of the committed snapshot's budget).
func measureWire(dur time.Duration, fn func() error) (int, float64, float64, error) {
	// Warm the code paths and pools so steady-state is measured.
	for i := 0; i < 16; i++ {
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	ops := 0
	for time.Since(start) < dur {
		for i := 0; i < 64; i++ {
			if err := fn(); err != nil {
				return 0, 0, 0, err
			}
		}
		ops += 64
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return ops,
		float64(elapsed.Nanoseconds()) / float64(ops),
		float64(after.Mallocs-before.Mallocs) / float64(ops),
		nil
}

// WireMicrobench measures encode+decode round trips for both codecs
// over both scenarios, mirroring production buffer handling: encode
// into a reused buffer, decode against a BufferPool, and recycle the
// decoded Data buffer — exactly what Conn.Send/Recv and the store
// client do per message.
func WireMicrobench(benchtime time.Duration, logf func(string, ...any)) (*WireResult, error) {
	if benchtime <= 0 {
		benchtime = time.Second
	}
	out := &WireResult{
		Speedup:        map[string]float64{},
		AllocReduction: map[string]float64{},
	}
	for _, sc := range wireScenarios() {
		for _, codec := range []wire.Codec{wire.CodecBinary, wire.CodecGob} {
			pool := store.NewBufferPool()
			var buf []byte
			encoded, err := wire.Encode(nil, sc.msg, codec)
			if err != nil {
				return nil, fmt.Errorf("bench: wire %s/%v: %w", sc.name, codec, err)
			}
			fn := func() error {
				var err error
				buf, err = wire.Encode(buf[:0], sc.msg, codec)
				if err != nil {
					return err
				}
				m, err := wire.Decode(buf, pool)
				if err != nil {
					return err
				}
				if m.Data != nil {
					pool.Put(m.Data)
				}
				return nil
			}
			if logf != nil {
				logf("wire bench: %s/%v for %v", sc.name, codec, benchtime)
			}
			ops, nsPerOp, allocsPerOp, err := measureWire(benchtime, fn)
			if err != nil {
				return nil, fmt.Errorf("bench: wire %s/%v: %w", sc.name, codec, err)
			}
			out.Rows = append(out.Rows, WireRow{
				Scenario: sc.name, Codec: codec.String(),
				Ops: ops, NsPerOp: nsPerOp, AllocsPerOp: allocsPerOp,
				EncodedBytes: len(encoded),
				MBPerSec:     float64(len(encoded)) / (1 << 20) / (nsPerOp / 1e9),
			})
		}
	}
	for _, sc := range wireScenarios() {
		bin, gob := out.Row(sc.name, "binary"), out.Row(sc.name, "gob")
		if bin == nil || gob == nil || bin.NsPerOp == 0 {
			continue
		}
		out.Speedup[sc.name] = gob.NsPerOp / bin.NsPerOp
		if bin.AllocsPerOp > 0 {
			out.AllocReduction[sc.name] = gob.AllocsPerOp / bin.AllocsPerOp
		} else {
			// A zero-alloc binary loop: report the gob count itself as the
			// (infinite) reduction, floored so the win check still reads it.
			out.AllocReduction[sc.name] = gob.AllocsPerOp
		}
	}
	return out, nil
}

// WirePipelineCompare runs the full knn env-cloud pipeline once per
// codec and records wall time and the application digest; digests must
// be identical — the codec carries the run, it must not change it.
func WirePipelineCompare(res *WireResult, spec AppSpec, sim SimParams, logf func(string, ...any)) error {
	spec = spec.withDefaults()
	res.App = spec.Name
	prev := wire.DefaultCodec()
	defer wire.SetDefaultCodec(prev)
	for _, codec := range []wire.Codec{wire.CodecGob, wire.CodecBinary} {
		wire.SetDefaultCodec(codec)
		r, err := Execute(RunConfig{
			Spec: spec, LocalPct: 0,
			LocalCores: 0, CloudCores: spec.CloudCores(32),
			Sim: sim, Logf: logf,
		})
		if err != nil {
			return fmt.Errorf("bench: wire pipeline under %v: %w", codec, err)
		}
		res.Env = r.Env
		res.Pipeline = append(res.Pipeline, WirePipelineRow{
			Codec: codec.String(), TotalEmu: r.Report.TotalWall,
			Digest: r.Report.FinalResult,
		})
	}
	res.Match = true
	for _, p := range res.Pipeline[1:] {
		if p.Digest != res.Pipeline[0].Digest {
			res.Match = false
		}
	}
	return nil
}

// RenderWire prints the microbench table and the pipeline comparison.
func RenderWire(title string, res *WireResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire codec — %s\n", title)
	fmt.Fprintf(&b, "%-10s %-8s %12s %12s %12s %10s %10s\n",
		"scenario", "codec", "ops", "ns/op", "allocs/op", "bytes", "MB/s")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-10s %-8s %12d %12.0f %12.1f %10d %10.1f\n",
			r.Scenario, r.Codec, r.Ops, r.NsPerOp, r.AllocsPerOp, r.EncodedBytes, r.MBPerSec)
	}
	for _, sc := range []string{"jobgrant", "readresp"} {
		if s, ok := res.Speedup[sc]; ok {
			fmt.Fprintf(&b, "%-10s binary vs gob: %.1fx throughput, %.1fx fewer allocs/op\n",
				sc, s, res.AllocReduction[sc])
		}
	}
	if len(res.Pipeline) > 0 {
		fmt.Fprintf(&b, "full pipeline (%s %s):\n", res.App, res.Env)
		for _, p := range res.Pipeline {
			fmt.Fprintf(&b, "  %-8s %8.1fs  digest %s\n", p.Codec, p.Seconds(), p.Digest)
		}
		if res.Match {
			fmt.Fprintf(&b, "result digests: identical across codecs ✓\n")
		} else {
			fmt.Fprintf(&b, "result digests: DIVERGED — the codec changed results\n")
		}
	}
	return b.String()
}
