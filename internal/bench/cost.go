package bench

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Cost model (extension): the paper motivates cloud bursting with
// pay-as-you-go economics but never prices its runs. This module
// estimates each configuration's dollar cost under 2011 AWS pricing,
// turning the performance trade-off of Figure 3 into a cost trade-off.
//
// Emulated seconds correspond to the paper's real seconds, so instance
// time is billed from emulated wall time directly.

// Prices captures the relevant 2011 AWS price points.
type Prices struct {
	// InstancePerHour is the m1.large on-demand price (USD).
	InstancePerHour float64
	// CoresPerInstance converts cores to instances (m1.large = 2
	// virtual cores).
	CoresPerInstance int
	// BillByFullHour rounds usage up to whole instance-hours, as EC2
	// billed in 2011.
	BillByFullHour bool
	// EgressPerGB prices S3 data leaving AWS toward the local cluster
	// (USD per GiB).
	EgressPerGB float64
	// RequestPer10K prices S3 GET requests (USD per 10,000).
	RequestPer10K float64
	// RequestSize approximates bytes per S3 request for request-count
	// estimation (the harness's fetch range).
	RequestSize int
}

// AWS2011 returns the late-2011 on-demand price points the paper's
// deployment would have paid (us-east-1).
func AWS2011() Prices {
	return Prices{
		InstancePerHour:  0.34,
		CoresPerInstance: 2,
		BillByFullHour:   true,
		EgressPerGB:      0.12,
		RequestPer10K:    0.01,
		RequestSize:      256 << 10,
	}
}

// CostReport is one run's estimated cloud bill.
type CostReport struct {
	Env           string
	InstanceHours float64
	InstanceUSD   float64
	EgressGB      float64
	EgressUSD     float64
	RequestsUSD   float64
	TotalUSD      float64
}

// EstimateCost prices one run. Scaled runs are first projected back to
// paper scale: byte quantities multiply by scaleUp (the dataset
// scale-down factor, 10,000 for the calibrated specs), while emulated
// durations are already at paper scale.
func EstimateCost(res EnvResult, prices Prices, scaleUp float64) CostReport {
	if scaleUp <= 0 {
		scaleUp = 1
	}
	out := CostReport{Env: res.Env}

	// EC2 instance time: cloud cores for the run's emulated duration.
	if res.CloudCores > 0 {
		instances := float64(res.CloudCores) / float64(prices.CoresPerInstance)
		hours := res.Report.TotalWall.Hours()
		if prices.BillByFullHour {
			hours = math.Ceil(hours)
		}
		out.InstanceHours = instances * hours
		out.InstanceUSD = out.InstanceHours * prices.InstancePerHour
	}

	// S3 egress: bytes the *local* cluster pulled out of S3 (stolen
	// jobs and skewed distributions). Reads by EC2 stay inside AWS and
	// are free; transfer into AWS (cloud stealing local data) was free
	// by late 2011.
	var egressBytes, s3Bytes float64
	if local := res.Report.Cluster("local"); local != nil {
		egressBytes = float64(local.Workers.BytesRemote) * scaleUp
	}
	if cloud := res.Report.Cluster("cloud"); cloud != nil {
		// Every byte the cloud cluster read came from S3 (home data
		// and request counts), except stolen local-cluster bytes.
		s3Bytes = float64(cloud.Workers.BytesRead-cloud.Workers.BytesRemote) * scaleUp
	}
	out.EgressGB = egressBytes / (1 << 30)
	out.EgressUSD = out.EgressGB * prices.EgressPerGB

	// S3 GET requests from both sides.
	if prices.RequestSize > 0 {
		requests := (egressBytes + s3Bytes) / float64(prices.RequestSize)
		out.RequestsUSD = requests / 10_000 * prices.RequestPer10K
	}

	out.TotalUSD = out.InstanceUSD + out.EgressUSD + out.RequestsUSD
	return out
}

// RenderCost prices a Fig3 sweep, exposing the paper's implicit
// economics: env-cloud rents the most instance time, env-local rents
// none, and skewed hybrids pay growing egress for stolen data.
func RenderCost(results []EnvResult, prices Prices, scaleUp float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cloud cost per run (2011 AWS pricing, data projected to paper scale)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %10s %10s %10s %12s\n",
		"env", "time", "inst-hours", "inst $", "egress $", "requests $", "total $")
	for _, r := range results {
		c := EstimateCost(r, prices, scaleUp)
		fmt.Fprintf(&b, "%-12s %10s %12.1f %10.2f %10.4f %10.4f %12.2f\n",
			r.Env, r.Report.TotalWall.Round(time.Second),
			c.InstanceHours, c.InstanceUSD, c.EgressUSD, c.RequestsUSD, c.TotalUSD)
	}
	return b.String()
}
