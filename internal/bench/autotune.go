package bench

import (
	"fmt"
	"strings"
	"time"

	"cloudburst/internal/metrics"
)

// The autotune experiment compares static retrieval thread counts
// against the AIMD fetch autotuner on the paper's retrieval-bound
// environments. The static rows bracket the tuning burden the paper's
// fixed per-slave thread count carries: static-2 undersaturates the
// S3 links badly, static-8 sits near the calibrated sweet spot. The
// autotune row *starts* at the mis-tuned 2 threads and must find the
// knee on its own. Results must be digest-identical across variants —
// the controller reorders and resizes range requests but never changes
// what is computed — and the Match flag records that check.

// autotuneFetchRange shrinks the sub-range size for this experiment
// (and autotuneJobsDiv grows the chunks) so every chunk splits into
// enough sub-ranges that the thread axis stays meaningful at shrunk
// benchmark scales: a divisor-10 chunk is only a few KiB, and at the
// default 2 KiB range every fetch would cap at 2 readers regardless
// of the configured thread count. With ~14 sub-ranges per chunk the
// controller also has room to climb past the static-8 row toward the
// link's real saturation knee.
const (
	autotuneFetchRange = 512
	autotuneJobsDiv    = 2
)

// autotuneHintDepth is the master hint depth used in the split-
// deployment cell, where the full pipeline (prefetch, cache, hints,
// residency-steered stealing) runs alongside the controller.
const autotuneHintDepth = 4

// AutotuneVariant is one row of the grid: a static thread count, or
// the AIMD controller seeded at a mis-tuned static count.
type AutotuneVariant struct {
	Label    string
	Threads  int
	Autotune bool
}

// AutotuneVariants returns the grid rows in rendering order.
func AutotuneVariants() []AutotuneVariant {
	return []AutotuneVariant{
		{Label: "static-2", Threads: 2},
		{Label: "static-8", Threads: 8},
		{Label: "autotune", Threads: 2, Autotune: true},
	}
}

// AutotuneRow is one variant's outcome in one environment.
type AutotuneRow struct {
	Label    string
	Threads  int // configured (static) or seed (autotune) thread count
	Autotune bool
	TotalEmu time.Duration
	// Retrieval carries the run's pipeline counters, including the
	// controller decisions and hint/steal outcomes.
	Retrieval metrics.RetrievalReport
	// Digest is the application result digest.
	Digest string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r AutotuneRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// AutotuneCell is one environment's full set of rows.
type AutotuneCell struct {
	Env  string
	Rows []AutotuneRow
	// Match is true when every row produced the same digest.
	Match bool
}

// Row returns the row with the given label, or nil.
func (c *AutotuneCell) Row(label string) *AutotuneRow {
	for i := range c.Rows {
		if c.Rows[i].Label == label {
			return &c.Rows[i]
		}
	}
	return nil
}

// finish verifies digest invariance and fills the Match flag.
func (c *AutotuneCell) finish() {
	c.Match = true
	for _, r := range c.Rows[1:] {
		if r.Digest != c.Rows[0].Digest {
			c.Match = false
		}
	}
}

// AutotuneResult is the whole grid for one application.
type AutotuneResult struct {
	App   string
	Cells []AutotuneCell
}

// Cell returns the cell for the named environment, or nil.
func (a *AutotuneResult) Cell(env string) *AutotuneCell {
	for i := range a.Cells {
		if a.Cells[i].Env == env {
			return &a.Cells[i]
		}
	}
	return nil
}

// Match reports whether every cell's digests agreed.
func (a *AutotuneResult) Match() bool {
	for _, c := range a.Cells {
		if !c.Match {
			return false
		}
	}
	return true
}

// AutotuneGrid runs the static-2 / static-8 / autotune rows over the
// two retrieval-heavy environments. env-cloud (all data in S3, cloud
// cores only — Figure 3's retrieval-dominated bars) runs the bare
// retrieval path, no prefetch or hints, so the thread count is the
// only concurrency lever and the controller's win is attributable:
// with overlap machinery on, every core already holds several fetches
// in flight and the link's aggregate cap binds at any thread count.
// The split deployment runs the full adaptive pipeline — prefetch,
// chunk cache, master hints, residency-steered stealing — so the hint
// and steal counters are exercised alongside the controller.
func AutotuneGrid(spec AppSpec, sim SimParams, logf func(string, ...any)) (*AutotuneResult, error) {
	spec = spec.withDefaults()
	sim.FetchRange = autotuneFetchRange
	if d := spec.Jobs / autotuneJobsDiv; d >= spec.Files {
		spec.Jobs = d
	}
	out := &AutotuneResult{App: spec.Name}
	envs := []struct {
		localPct, localCores, cloudCores int
		pipeline                         bool
	}{
		{0, 0, spec.CloudCores(32), false},
		{50, 16, spec.CloudCores(16), true},
	}
	for _, env := range envs {
		cell := AutotuneCell{}
		for _, v := range AutotuneVariants() {
			vsim := sim
			vsim.FetchThreads = v.Threads
			cfg := RunConfig{
				Spec: spec, LocalPct: env.localPct,
				LocalCores: env.localCores, CloudCores: env.cloudCores,
				Sim: vsim, Logf: logf,
				CacheBytes:    overlapCacheBytes,
				FetchAutotune: v.Autotune,
			}
			if env.pipeline {
				cfg.Prefetch = true
				cfg.HintDepth = autotuneHintDepth
			}
			res, err := Execute(cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: autotune %s %s %s: %w",
					spec.Name, envName(cfg), v.Label, err)
			}
			cell.Env = res.Env
			cell.Rows = append(cell.Rows, AutotuneRow{
				Label: v.Label, Threads: v.Threads, Autotune: v.Autotune,
				TotalEmu:  res.Report.TotalWall,
				Retrieval: res.Report.Retrieval,
				Digest:    res.Report.FinalResult,
			})
		}
		cell.finish()
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// RenderAutotune prints the grid with each row's speedup over the
// mis-tuned static-2 baseline of its environment.
func RenderAutotune(title string, res *AutotuneResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fetch autotune — %s (emulated seconds; speedup vs static-2)\n", title)
	for _, cell := range res.Cells {
		fmt.Fprintf(&b, "%s\n", cell.Env)
		fmt.Fprintf(&b, "  %-10s %8s %10s %9s %7s %7s %7s %7s %6s %6s\n",
			"variant", "threads", "total", "speedup", "raises", "drops", "warmed", "denied", "cold", "warm")
		base := cell.Rows[0].TotalEmu.Seconds()
		for _, r := range cell.Rows {
			speed := "—"
			if base > 0 && r.TotalEmu > 0 {
				speed = fmt.Sprintf("%.2fx", base/r.TotalEmu.Seconds())
			}
			fmt.Fprintf(&b, "  %-10s %8d %10.1f %9s %7d %7d %7d %7d %6d %6d\n",
				r.Label, r.Threads, r.TotalEmu.Seconds(), speed,
				r.Retrieval.AutotuneRaises, r.Retrieval.AutotuneDrops,
				r.Retrieval.HintsWarmed, r.Retrieval.HintsDenied,
				r.Retrieval.StealsCold, r.Retrieval.StealsWarm)
		}
		if cell.Match {
			fmt.Fprintf(&b, "  result digests: identical across all variants ✓\n")
		} else {
			fmt.Fprintf(&b, "  result digests: DIVERGED — autotuning changed results\n")
			for _, r := range cell.Rows {
				fmt.Fprintf(&b, "    %-10s %s\n", r.Label+":", r.Digest)
			}
		}
	}
	return b.String()
}
