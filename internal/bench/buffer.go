package bench

import (
	"fmt"
	"strings"
	"time"

	"cloudburst/internal/driver"
	"cloudburst/internal/metrics"
)

// The buffer experiment measures the site-shared burst-buffer tier:
// a per-site chunk cache service between S3 and the slaves. Three
// variants run over the paper's retrieval-bound env-cloud setting
// (all data in S3, cloud cores only): no buffer, a cold buffer the
// slaves read through on demand, and a staged buffer the master also
// fills ahead of demand from its queue-front prefetch hints. The tier
// is a retrieval optimization, never a semantics change, so every
// variant must produce the same result digest (the Match flag), and
// the win — wall clock and S3 egress — is measured, not asserted.

// bufferCapBytes comfortably holds every benchmark data set (they are
// 10,000x below the paper's sizes), so buffer effectiveness is bounded
// by access patterns and staging, not capacity.
const bufferCapBytes = 256 << 20

// bufferHintDepth is the master hint depth driving staged variants.
const bufferHintDepth = 4

// BufferVariant names one arm of the buffer ablation.
type BufferVariant struct {
	Label  string
	Buffer bool // the site buffer tier is deployed
	Staged bool // the master stages hinted chunks into it
}

// BufferVariants returns the ablation arms in rendering order, the
// bufferless baseline first.
func BufferVariants() []BufferVariant {
	return []BufferVariant{
		{Label: "no-buffer", Buffer: false, Staged: false},
		{Label: "cold-buffer", Buffer: true, Staged: false},
		{Label: "staged-buffer", Buffer: true, Staged: true},
	}
}

// BufferRow is one variant's outcome, summed over its iterations.
type BufferRow struct {
	Label  string
	Buffer bool
	Staged bool
	// Iterations is how many passes the row aggregates.
	Iterations int
	// TotalEmu is the summed emulated wall time of every iteration.
	TotalEmu time.Duration
	// Retrieval aggregates the pipeline counters across iterations.
	Retrieval metrics.RetrievalReport
	// EgressBytes is the run's true object-store egress: direct
	// slave reads from S3 plus the buffer's own backing fetches.
	// Everything the buffer served beyond its backing traffic was
	// absorbed by sharing and staging.
	EgressBytes int64
	// Digest is the last iteration's application result digest.
	Digest string
}

// Seconds is TotalEmu in emulated seconds (for JSON consumers).
func (r BufferRow) Seconds() float64 { return r.TotalEmu.Seconds() }

// BufferResult is one application's full ablation.
type BufferResult struct {
	App        string
	Env        string
	Iterations int
	Rows       []BufferRow
	// Match is true when every variant produced the same digest.
	Match bool
}

// Row returns the named row, or nil.
func (b *BufferResult) Row(label string) *BufferRow {
	for i := range b.Rows {
		if b.Rows[i].Label == label {
			return &b.Rows[i]
		}
	}
	return nil
}

// finish verifies digest invariance and fills the Match flag.
func (b *BufferResult) finish() {
	b.Match = true
	for _, r := range b.Rows[1:] {
		if r.Digest != b.Rows[0].Digest {
			b.Match = false
		}
	}
}

// s3EgressBytes derives one run's object-store egress from its report.
// Home reads the slaves paid directly are BytesRead minus stolen-chunk
// traffic; reads routed through the buffer swap their full size for
// the (smaller, shared) backing traffic the buffer actually fetched.
func s3EgressBytes(report *metrics.RunReport) int64 {
	var direct int64
	for _, c := range report.Clusters {
		direct += c.Workers.BytesRead - c.Workers.BytesRemote
	}
	return direct - report.Retrieval.BufferBytes + report.Retrieval.BufferBackingBytes
}

// BufferSinglePass runs the ablation over one retrieval-bound pass:
// every chunk is read exactly once, so the cold buffer can only add a
// hop while the staged variant overlaps S3 fetches with compute.
func BufferSinglePass(spec AppSpec, sim SimParams, logf func(string, ...any)) (*BufferResult, error) {
	spec = spec.withDefaults()
	out := &BufferResult{App: spec.Name, Iterations: 1}
	for _, v := range BufferVariants() {
		cfg := RunConfig{
			Spec: spec, LocalPct: 0,
			LocalCores: 0, CloudCores: spec.CloudCores(32),
			Sim: sim, Logf: logf,
		}
		if v.Buffer {
			cfg.BufferBytes = bufferCapBytes
		}
		if v.Staged {
			cfg.HintDepth = bufferHintDepth
		}
		res, err := Execute(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: buffer %s %s: %w", spec.Name, v.Label, err)
		}
		out.Env = res.Env
		out.Rows = append(out.Rows, BufferRow{
			Label: v.Label, Buffer: v.Buffer, Staged: v.Staged,
			Iterations:  1,
			TotalEmu:    res.Report.TotalWall,
			Retrieval:   res.Report.Retrieval,
			EgressBytes: s3EgressBytes(res.Report),
			Digest:      res.Report.FinalResult,
		})
	}
	out.finish()
	return out, nil
}

// BufferPageRank runs the ablation over iters pagerank power
// iterations. The buffered arms install one persistent buffer per
// HomeFetch site through the driver, so iteration N+1 replays
// iteration N's chunks out of site-local residency instead of
// re-paying S3 — the tier's headline case.
func BufferPageRank(spec AppSpec, sim SimParams, iters int, logf func(string, ...any)) (*BufferResult, error) {
	spec = spec.withDefaults()
	if iters < 1 {
		iters = 3
	}
	out := &BufferResult{App: spec.Name, Iterations: iters}
	for _, v := range BufferVariants() {
		cfg := RunConfig{
			Spec: spec, LocalPct: 0,
			LocalCores: 0, CloudCores: spec.CloudCores(32),
			Sim: sim, Logf: logf,
		}
		if v.Staged {
			cfg.HintDepth = bufferHintDepth
		}
		dep, err := BuildDeploy(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: buffer %s %s: %w", spec.Name, v.Label, err)
		}
		it, err := driver.PageRank(dep.Deploy, -1) // fixed iteration count
		if err != nil {
			return nil, fmt.Errorf("bench: buffer %s %s: %w", spec.Name, v.Label, err)
		}
		it.MaxIterations = iters
		if v.Buffer {
			it.BufferBytes = bufferCapBytes
		}
		row := BufferRow{Label: v.Label, Buffer: v.Buffer, Staged: v.Staged}
		it.OnIteration = func(_ int, _ float64, report *metrics.RunReport) {
			row.Iterations++
			row.TotalEmu += report.TotalWall
			row.Retrieval.Add(report.Retrieval)
			row.EgressBytes += s3EgressBytes(report)
			row.Digest = report.FinalResult
		}
		if _, err := it.Run(); err != nil {
			return nil, fmt.Errorf("bench: buffer %s %s: %w", spec.Name, v.Label, err)
		}
		out.Env = "env-cloud"
		out.Rows = append(out.Rows, row)
	}
	out.finish()
	return out, nil
}

// RenderBuffer prints one application's ablation with each variant's
// speedup and egress saving over the bufferless baseline.
func RenderBuffer(title string, res *BufferResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Burst buffer — %s (%s, %d iteration(s), emulated seconds)\n",
		title, res.Env, res.Iterations)
	fmt.Fprintf(&b, "%-14s %10s %9s %9s %9s %9s %9s %9s %9s\n",
		"variant", "total", "speedup", "hits", "misses", "stagedMB", "servedMB", "egressMB", "egress")
	base := res.Rows[0]
	for _, r := range res.Rows {
		speed := "—"
		if base.TotalEmu > 0 && r.TotalEmu > 0 {
			speed = fmt.Sprintf("%.2fx", base.TotalEmu.Seconds()/r.TotalEmu.Seconds())
		}
		saved := "—"
		if base.EgressBytes > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*float64(r.EgressBytes)/float64(base.EgressBytes))
		}
		fmt.Fprintf(&b, "%-14s %10.1f %9s %9d %9d %9.1f %9.1f %9.1f %9s\n",
			r.Label, r.TotalEmu.Seconds(), speed,
			r.Retrieval.BufferHits, r.Retrieval.BufferMisses,
			float64(r.Retrieval.StagedBytes)/(1<<20),
			float64(r.Retrieval.BufferBytes)/(1<<20),
			float64(r.EgressBytes)/(1<<20),
			saved)
	}
	if res.Match {
		fmt.Fprintf(&b, "result digests: identical across all variants ✓\n")
	} else {
		fmt.Fprintf(&b, "result digests: DIVERGED — the buffer changed results\n")
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "  %-14s %s\n", r.Label+":", r.Digest)
		}
	}
	return b.String()
}
