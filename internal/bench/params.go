// Package bench is the experiment harness: it reconstructs the paper's
// evaluation (Section IV) — the five cloud-bursting configurations of
// Figure 3 / Tables I-II, the scalability sweep of Figure 4, and the
// generalized-reduction vs. Map-Reduce comparison implied by Figure 1 —
// over the simulated two-site environment.
//
// Scaling model. Byte quantities are scaled ~10,000x below the paper's
// testbed (120 GB -> ~12 MB) and link bandwidths in the same
// proportion, while per-unit compute costs are raised so that the
// *emulated* per-core seconds land on the paper's Figure 3 bars.
// Emulated seconds therefore read directly against the paper's
// figures. A per-application clock scale compresses emulated time into
// wall time; it is chosen large enough that real CPU overhead (TCP,
// encoding, scheduling on the test host) stays a small fraction of the
// emulated durations.
package bench

import (
	"fmt"
	"time"

	"cloudburst/internal/netsim"
)

// SimParams fixes the emulated environment for a run.
type SimParams struct {
	// Scale is the wall-seconds-per-emulated-second clock compression.
	Scale float64
	// ScaleForced marks Scale as a user override that per-app
	// preferred scales must not replace.
	ScaleForced bool

	// LocalDisk is how the local cluster reads its own storage node:
	// per-stream bound (each core's share of the SATA-SCSI node), as
	// the paper's retrieval times show (halving the data and the cores
	// leaves per-core retrieval time unchanged).
	LocalDisk netsim.Link
	// S3Internal is EC2 reading S3 (multi-threaded ranged requests).
	S3Internal netsim.Link
	// S3External is the local cluster stealing S3 data across the WAN.
	S3External netsim.Link
	// LocalFromCloud is EC2 stealing local-cluster data across the WAN.
	LocalFromCloud netsim.Link
	// HeadWAN shapes master<->head traffic for the cloud cluster:
	// control messages and, critically, the reduction-object exchange.
	HeadWAN netsim.Link
	// HeadLAN shapes master<->head traffic for the local cluster (the
	// head runs at the local site).
	HeadLAN netsim.Link
	// SlaveLAN shapes slave<->master traffic inside a cluster.
	SlaveLAN netsim.Link

	// S3Egress / LocalEgress cap each store service's total outflow
	// (bytes per emulated second; 0 = unlimited).
	S3Egress    float64
	LocalEgress float64

	// LocalSeek is the storage node's extra cost for non-sequential
	// reads (what consecutive-job assignment avoids).
	LocalSeek time.Duration
	// FetchThreads / FetchRange tune the multi-threaded retrieval.
	FetchThreads int
	FetchRange   int
	// GroupUnits is the engine's cache-sized unit group.
	GroupUnits int
	// CloudCostScale slows cloud cores relative to local ones (the
	// paper's kmeans needed 22 EC2 cores to match 16 local cores).
	CloudCostScale float64
}

// DefaultSim returns the calibrated environment. Bandwidths are in
// bytes per emulated second, ~10,000x below the paper's hardware to
// match the dataset scale-down:
//
//   - storage node: ~3 KB/s per stream (≈30 MB/s per core in paper
//     terms), so 12 MB through 32 streams takes ~125 emulated s — the
//     knn env-local retrieval bar;
//   - S3 from EC2: ~600 B/s per range request, 8 concurrent requests
//     per core (≈4.8 KB/s effective), slightly faster in aggregate
//     than the storage node, as the paper observed;
//   - S3 across the WAN (stolen jobs): ~4x slower per stream;
//   - head WAN: 15 KB/s, making pagerank's ~600 KB rank vector cost
//     ~40 emulated s per exchange (Table II's global reduction).
func DefaultSim() SimParams {
	return SimParams{
		Scale: 0.01,
		LocalDisk: netsim.Link{
			Name: "local-disk", Latency: 4 * time.Millisecond,
			PerStream: 3 << 10, Aggregate: 160 << 10,
		},
		S3Internal: netsim.Link{
			Name: "s3-internal", Latency: 20 * time.Millisecond,
			PerStream: 600, Aggregate: 208 << 10,
		},
		S3External: netsim.Link{
			Name: "s3-external", Latency: 60 * time.Millisecond,
			PerStream: 160, Aggregate: 30 << 10,
		},
		LocalFromCloud: netsim.Link{
			Name: "local-from-cloud", Latency: 60 * time.Millisecond,
			PerStream: 160, Aggregate: 30 << 10,
		},
		HeadWAN: netsim.Link{
			Name: "head-wan", Latency: 40 * time.Millisecond,
			PerStream: 15 << 10, Burst: 8 << 10,
		},
		HeadLAN: netsim.Link{
			Name: "head-lan", Latency: 500 * time.Microsecond,
			PerStream: 10 << 20,
		},
		SlaveLAN: netsim.Link{
			Name: "slave-lan", Latency: 200 * time.Microsecond,
			PerStream: 20 << 20,
		},
		S3Egress:       208 << 10,
		LocalEgress:    160 << 10,
		LocalSeek:      12 * time.Millisecond,
		FetchThreads:   8,
		FetchRange:     2 << 10,
		GroupUnits:     4096,
		CloudCostScale: 1.0,
	}
}

// AppSpec describes one evaluation application's workload: the app
// parameters plus the data set geometry (the paper: 120 GB in 32 files
// and 960 jobs for every application).
type AppSpec struct {
	// Name is the registered application name.
	Name string
	// Params instantiate the app.
	Params map[string]string
	// Records is the total data unit count (ignored for pagerank,
	// whose edge count follows from the graph parameters).
	Records int64
	// Files / Jobs shape the data set (default 32 / 960).
	Files int
	Jobs  int
	// Scale is this app's preferred clock compression (used unless
	// SimParams.ScaleForced); heavier apps afford smaller scales.
	Scale float64
	// CloudCores maps a local core count to this app's matching cloud
	// core count (kmeans: 16 local ~ 22 EC2). Nil means equal.
	CloudCores func(local int) int
	// CloudCostScale overrides SimParams.CloudCostScale per app.
	CloudCostScale float64
}

func (a AppSpec) withDefaults() AppSpec {
	if a.Files <= 0 {
		a.Files = 32
	}
	if a.Jobs <= 0 {
		a.Jobs = 960
	}
	if a.CloudCores == nil {
		a.CloudCores = func(local int) int { return local }
	}
	if a.CloudCostScale <= 0 {
		a.CloudCostScale = 1.0
	}
	return a
}

// Shrink divides the workload (records and jobs) by divisor for quick
// runs; timing shapes are preserved, absolute emulated seconds shrink
// proportionally.
func (a AppSpec) Shrink(divisor int64) AppSpec {
	if divisor <= 1 {
		return a
	}
	a = a.withDefaults()
	out := a
	out.Params = make(map[string]string, len(a.Params))
	for k, v := range a.Params {
		out.Params[k] = v
	}
	out.Records = a.Records / divisor
	if a.Name == "pagerank" {
		// Shrink the graph rather than the (derived) edge count.
		if pages, ok := out.Params["pages"]; ok {
			var p int64
			fmt.Sscan(pages, &p)
			out.Params["pages"] = fmt.Sprint(maxI64(p/divisor, 64))
		}
	}
	// Jobs shrink by sqrt(divisor): chunks get smaller too, keeping
	// per-chunk costs (and thus hybrid overhead ratios) close to the
	// full-size calibration instead of freezing chunk size while the
	// baseline shrinks.
	jobsDiv := int64(1)
	for (jobsDiv+1)*(jobsDiv+1) <= divisor {
		jobsDiv++
	}
	out.Jobs = int(int64(a.Jobs) / jobsDiv)
	if out.Jobs < 32 {
		out.Jobs = 32
	}
	if out.Files > out.Jobs {
		out.Files = out.Jobs
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// The calibrated evaluation applications. Per-unit compute costs are
// emulated, set so the per-core processing seconds land near the
// paper's Figure 3 bars (knn ~55 s, kmeans ~2000 s, pagerank ~330 s on
// 32 cores).

// KNNSpec reproduces the paper's knn workload: low computation, high
// I/O, small reduction object (k = 1000 neighbors).
func KNNSpec() AppSpec {
	return AppSpec{
		Name: "knn",
		Params: map[string]string{
			"k": "1000", "dims": "3", "cost": "2.9ms",
		},
		Records: 600_000, // 20 B/record -> 12 MB
		Scale:   0.012,
	}
}

// KMeansSpec reproduces kmeans: heavy computation, low I/O, small
// reduction object. 22 EC2 cores match 16 local cores.
func KMeansSpec() AppSpec {
	return AppSpec{
		Name: "kmeans",
		Params: map[string]string{
			"k": "64", "dims": "8", "cost": "426ms",
		},
		Records: 150_000, // 32 B/record -> 4.8 MB
		Scale:   0.004,
		CloudCores: func(local int) int {
			return local + (local*3+4)/8 // 16 -> 22, 4 -> 6, 32 -> 44
		},
		CloudCostScale: 1.375, // 22 EC2 cores ~ 16 local cores
	}
}

// PageRankSpec reproduces pagerank: moderate computation, high I/O,
// and a very large reduction object (the full rank vector, ~600 KB
// here standing in for the paper's ~300 MB at the same bandwidth
// ratio).
func PageRankSpec() AppSpec {
	return AppSpec{
		Name: "pagerank",
		Params: map[string]string{
			"pages": "75000", "mindeg": "40", "maxdeg": "66", "cost": "2.64ms",
		},
		// ~4M edges (32 MB) follow from the graph parameters.
		Scale: 0.012,
	}
}

// WordCountSpec is the quickstart/ablation workload.
func WordCountSpec() AppSpec {
	return AppSpec{
		Name:    "wordcount",
		Params:  map[string]string{"width": "12", "cost": "250ns"},
		Records: 2_000_000,
		Scale:   0.01,
	}
}

// EvalApps returns the paper's three evaluation applications.
func EvalApps() []AppSpec {
	return []AppSpec{KNNSpec(), KMeansSpec(), PageRankSpec()}
}
