//go:build race

package bench

// raceEnabled reports that the race detector is active; timing-shape
// assertions are relaxed because instrumentation skews CPU costs by an
// order of magnitude.
const raceEnabled = true
