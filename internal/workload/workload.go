// Package workload generates the deterministic synthetic data sets the
// experiments run on, standing in for the paper's 120 GB knn/kmeans
// point sets and 50M-page web graph. Every byte of every record is a
// pure function of (seed, record index), so data can be regenerated at
// any site, sliced into arbitrary files, and validated in tests without
// shipping data around.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"cloudburst/internal/chunk"
	"cloudburst/internal/store"
)

// Generator produces record i of a data set into a caller-provided
// buffer of exactly RecordSize bytes. Implementations must be pure
// functions of (seed, i) and safe for concurrent use.
type Generator interface {
	// RecordSize is the fixed record length in bytes.
	RecordSize() int
	// Gen fills rec (len == RecordSize) with record i.
	Gen(i int64, rec []byte)
}

// splitmix64 is the per-record PRNG: tiny, seedable, and statistically
// good enough for uniform workloads.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a uint64 to [0,1).
func unitFloat(x uint64) float32 {
	return float32(x>>40) / float32(1<<24)
}

// Points generates d-dimensional float32 points, optionally prefixed
// with a uint64 record id (knn needs ids to name its neighbors).
type Points struct {
	// Dims is the point dimensionality.
	Dims int
	// Seed namespaces the data set.
	Seed uint64
	// WithID prefixes each record with its uint64 index.
	WithID bool
}

// RecordSize implements Generator.
func (p Points) RecordSize() int {
	n := 4 * p.Dims
	if p.WithID {
		n += 8
	}
	return n
}

// Gen implements Generator.
func (p Points) Gen(i int64, rec []byte) {
	off := 0
	if p.WithID {
		binary.LittleEndian.PutUint64(rec[:8], uint64(i))
		off = 8
	}
	for d := 0; d < p.Dims; d++ {
		v := unitFloat(splitmix64(p.Seed ^ uint64(i)*0x9e37 ^ uint64(d)<<32))
		binary.LittleEndian.PutUint32(rec[off+4*d:], math.Float32bits(v))
	}
}

// Coord returns coordinate d of point i, for reference computations.
func (p Points) Coord(i int64, d int) float32 {
	return unitFloat(splitmix64(p.Seed ^ uint64(i)*0x9e37 ^ uint64(d)<<32))
}

// Edges generates a link graph as fixed-size (src uint32, dst uint32)
// records, enumerated page by page: page p contributes OutDegree(p)
// consecutive edges. The out-degree is a pure function of the page id,
// so PageRank workers can compute rank[src]/outdeg(src) from a record
// alone without a degree table.
type Edges struct {
	// Pages is the number of vertices.
	Pages int64
	// MinDeg / MaxDeg bound per-page out-degrees.
	MinDeg, MaxDeg int
	// Seed namespaces the graph.
	Seed uint64
}

// RecordSize implements Generator.
func (Edges) RecordSize() int { return 8 }

// OutDegree returns page p's out-degree.
func (e Edges) OutDegree(p int64) int {
	span := e.MaxDeg - e.MinDeg + 1
	if span <= 1 {
		return e.MinDeg
	}
	return e.MinDeg + int(splitmix64(e.Seed^0xdeadbeef^uint64(p))%uint64(span))
}

// TotalEdges returns the number of edge records in the graph.
func (e Edges) TotalEdges() int64 {
	var n int64
	for p := int64(0); p < e.Pages; p++ {
		n += int64(e.OutDegree(p))
	}
	return n
}

// pageOfEdge locates which page emits edge i; O(pages) cumulative scan
// is avoided by caching boundaries in Gen callers via EdgeList; for
// random access we binary-search the prefix sums built lazily.
type edgeIndex struct {
	prefix []int64 // prefix[p] = first edge id of page p; len = Pages+1
}

func (e Edges) buildIndex() *edgeIndex {
	prefix := make([]int64, e.Pages+1)
	for p := int64(0); p < e.Pages; p++ {
		prefix[p+1] = prefix[p] + int64(e.OutDegree(p))
	}
	return &edgeIndex{prefix: prefix}
}

// Gen implements Generator. For random access it lazily builds (once)
// a prefix-sum index keyed by the generator's parameters.
func (e Edges) Gen(i int64, rec []byte) {
	idx := e.sharedIndex()
	// Binary search: find p with prefix[p] <= i < prefix[p+1].
	lo, hi := int64(0), e.Pages
	for lo < hi {
		mid := (lo + hi) / 2
		if idx.prefix[mid+1] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p := lo
	j := i - idx.prefix[p]
	dst := int64(splitmix64(e.Seed^uint64(p)<<20^uint64(j)) % uint64(e.Pages))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(p))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(dst))
}

var edgeIndexCache struct {
	mu    sync.Mutex
	key   Edges
	index *edgeIndex
}

func (e Edges) sharedIndex() *edgeIndex {
	edgeIndexCache.mu.Lock()
	defer edgeIndexCache.mu.Unlock()
	if edgeIndexCache.index == nil || edgeIndexCache.key != e {
		edgeIndexCache.key = e
		edgeIndexCache.index = e.buildIndex()
	}
	return edgeIndexCache.index
}

// RangeGenerator is an optional fast path: fill a whole run of
// consecutive records at once. Generators whose random access is
// costlier than sequential enumeration (Edges binary-searches the
// page boundaries per record) implement it.
type RangeGenerator interface {
	Generator
	// GenRange fills buf (a multiple of RecordSize) with records
	// start, start+1, ...
	GenRange(start int64, buf []byte)
}

// GenInto fills buf with records [start, start+len(buf)/RecordSize),
// using the generator's range fast path when available.
func GenInto(gen Generator, start int64, buf []byte) {
	if rg, ok := gen.(RangeGenerator); ok {
		rg.GenRange(start, buf)
		return
	}
	rs := gen.RecordSize()
	for off := 0; off < len(buf); off += rs {
		gen.Gen(start, buf[off:off+rs])
		start++
	}
}

// GenRange implements RangeGenerator: edges are enumerated by walking
// pages sequentially from the page containing edge `start`, avoiding a
// per-record binary search.
func (e Edges) GenRange(start int64, buf []byte) {
	idx := e.sharedIndex()
	// Locate the page containing edge `start`.
	lo, hi := int64(0), e.Pages
	for lo < hi {
		mid := (lo + hi) / 2
		if idx.prefix[mid+1] <= start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p := lo
	j := start - idx.prefix[p]
	for off := 0; off < len(buf); off += 8 {
		for p < e.Pages && j >= int64(e.OutDegree(p)) {
			p++
			j = 0
		}
		dst := int64(splitmix64(e.Seed^uint64(p)<<20^uint64(j)) % uint64(e.Pages))
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(p))
		binary.LittleEndian.PutUint32(buf[off+4:off+8], uint32(dst))
		j++
	}
}

// Words generates fixed-width text records drawn from a Zipf-ish
// vocabulary, for word-count style applications.
type Words struct {
	// Width is the record byte width (word padded with spaces).
	Width int
	// Vocab is the vocabulary size.
	Vocab int
	// Seed namespaces the data set.
	Seed uint64
}

// RecordSize implements Generator.
func (w Words) RecordSize() int { return w.Width }

// WordAt returns the vocabulary index of record i. Skew: index is the
// min of two uniforms, biasing toward low indices.
func (w Words) WordAt(i int64) int {
	a := splitmix64(w.Seed^uint64(i)) % uint64(w.Vocab)
	b := splitmix64(w.Seed^uint64(i)^0xabcdef) % uint64(w.Vocab)
	if b < a {
		a = b
	}
	return int(a)
}

// Word renders vocabulary index v as text ("w000123").
func (w Words) Word(v int) string { return fmt.Sprintf("w%06d", v) }

// Gen implements Generator.
func (w Words) Gen(i int64, rec []byte) {
	s := w.Word(w.WordAt(i))
	n := copy(rec, s)
	for ; n < len(rec); n++ {
		rec[n] = ' '
	}
}

// Spec describes a materialized data set: how many records, split into
// how many files, and how files are distributed across two sites.
type Spec struct {
	// Records is the total record count.
	Records int64
	// Files is how many files the data set is divided into.
	Files int
	// LocalFiles of the Files are placed at the local site (the
	// paper's data-distribution skew: env-50/50 = half, env-17/83 ≈
	// a sixth, ...). The rest go to the cloud site.
	LocalFiles int
	// LocalSite / CloudSite name the sites (default "local"/"cloud").
	LocalSite, CloudSite string
	// NamePrefix prefixes file names (default "data").
	NamePrefix string
}

func (s Spec) withDefaults() Spec {
	if s.LocalSite == "" {
		s.LocalSite = "local"
	}
	if s.CloudSite == "" {
		s.CloudSite = "cloud"
	}
	if s.NamePrefix == "" {
		s.NamePrefix = "data"
	}
	if s.Files <= 0 {
		s.Files = 1
	}
	return s
}

// Materialize generates the data set into per-site Mem stores and
// returns the file metadata in order (local files first). Records are
// split as evenly as possible across files, each file holding a
// contiguous record range.
func Materialize(gen Generator, spec Spec, stores map[string]*store.Mem) ([]chunk.FileMeta, error) {
	spec = spec.withDefaults()
	if spec.Records < int64(spec.Files) {
		return nil, fmt.Errorf("workload: %d records cannot fill %d files", spec.Records, spec.Files)
	}
	if spec.LocalFiles < 0 || spec.LocalFiles > spec.Files {
		return nil, fmt.Errorf("workload: local files %d out of range [0,%d]", spec.LocalFiles, spec.Files)
	}
	rs := gen.RecordSize()
	per := spec.Records / int64(spec.Files)
	extra := spec.Records % int64(spec.Files)
	var metas []chunk.FileMeta
	var next int64
	for f := 0; f < spec.Files; f++ {
		n := per
		if int64(f) < extra {
			n++
		}
		buf := make([]byte, n*int64(rs))
		GenInto(gen, next, buf)
		site := spec.CloudSite
		if f < spec.LocalFiles {
			site = spec.LocalSite
		}
		st, ok := stores[site]
		if !ok {
			return nil, fmt.Errorf("workload: no store for site %q", site)
		}
		name := fmt.Sprintf("%s-%02d.bin", spec.NamePrefix, f)
		st.Put(name, buf)
		metas = append(metas, chunk.FileMeta{Name: name, Site: site, Size: int64(len(buf))})
		next += n
	}
	return metas, nil
}
