package workload

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cloudburst/internal/store"
)

func TestPointsDeterministic(t *testing.T) {
	p := Points{Dims: 4, Seed: 7, WithID: true}
	a := make([]byte, p.RecordSize())
	b := make([]byte, p.RecordSize())
	p.Gen(123, a)
	p.Gen(123, b)
	if string(a) != string(b) {
		t.Fatal("Gen not deterministic")
	}
	if id := binary.LittleEndian.Uint64(a[:8]); id != 123 {
		t.Fatalf("id = %d", id)
	}
	// Coord must agree with the serialized record.
	for d := 0; d < 4; d++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(a[8+4*d:]))
		if got != p.Coord(123, d) {
			t.Fatalf("coord %d mismatch: %v vs %v", d, got, p.Coord(123, d))
		}
	}
}

func TestPointsRecordSize(t *testing.T) {
	if (Points{Dims: 3}).RecordSize() != 12 {
		t.Fatal("no-id record size")
	}
	if (Points{Dims: 3, WithID: true}).RecordSize() != 20 {
		t.Fatal("id record size")
	}
}

func TestPointsInUnitRange(t *testing.T) {
	p := Points{Dims: 2, Seed: 3}
	f := func(i uint16, d uint8) bool {
		v := p.Coord(int64(i), int(d%2))
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointsDifferentSeedsDiffer(t *testing.T) {
	a := Points{Dims: 2, Seed: 1}
	b := Points{Dims: 2, Seed: 2}
	same := 0
	for i := int64(0); i < 100; i++ {
		if a.Coord(i, 0) == b.Coord(i, 0) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seeds produce %d/100 identical coords", same)
	}
}

func TestEdgesDegreesAndTotal(t *testing.T) {
	e := Edges{Pages: 100, MinDeg: 2, MaxDeg: 8, Seed: 5}
	var sum int64
	for p := int64(0); p < 100; p++ {
		d := e.OutDegree(p)
		if d < 2 || d > 8 {
			t.Fatalf("page %d degree %d out of range", p, d)
		}
		sum += int64(d)
	}
	if e.TotalEdges() != sum {
		t.Fatalf("TotalEdges = %d, want %d", e.TotalEdges(), sum)
	}
}

func TestEdgesGenConsistentWithDegrees(t *testing.T) {
	e := Edges{Pages: 50, MinDeg: 1, MaxDeg: 5, Seed: 11}
	total := e.TotalEdges()
	counts := make(map[uint32]int64)
	rec := make([]byte, 8)
	for i := int64(0); i < total; i++ {
		e.Gen(i, rec)
		src := binary.LittleEndian.Uint32(rec[0:4])
		dst := binary.LittleEndian.Uint32(rec[4:8])
		if int64(src) >= 50 || int64(dst) >= 50 {
			t.Fatalf("edge %d out of range: %d->%d", i, src, dst)
		}
		counts[src]++
	}
	for p := int64(0); p < 50; p++ {
		if counts[uint32(p)] != int64(e.OutDegree(p)) {
			t.Fatalf("page %d emitted %d edges, degree %d", p, counts[uint32(p)], e.OutDegree(p))
		}
	}
}

func TestEdgesSrcMonotone(t *testing.T) {
	// Edges are enumerated page by page: src must be non-decreasing.
	e := Edges{Pages: 30, MinDeg: 1, MaxDeg: 4, Seed: 2}
	rec := make([]byte, 8)
	prev := uint32(0)
	for i := int64(0); i < e.TotalEdges(); i++ {
		e.Gen(i, rec)
		src := binary.LittleEndian.Uint32(rec[0:4])
		if src < prev {
			t.Fatalf("edge %d: src %d < previous %d", i, src, prev)
		}
		prev = src
	}
}

func TestWordsFixedWidthAndVocab(t *testing.T) {
	w := Words{Width: 12, Vocab: 50, Seed: 9}
	rec := make([]byte, 12)
	for i := int64(0); i < 500; i++ {
		w.Gen(i, rec)
		s := strings.TrimRight(string(rec), " ")
		if !strings.HasPrefix(s, "w") || len(s) != 7 {
			t.Fatalf("record %d = %q", i, s)
		}
		if v := w.WordAt(i); v < 0 || v >= 50 {
			t.Fatalf("vocab index %d", v)
		}
		if w.Word(w.WordAt(i)) != s {
			t.Fatalf("record %d text %q != WordAt %q", i, s, w.Word(w.WordAt(i)))
		}
	}
}

func TestWordsSkewedTowardLowIndices(t *testing.T) {
	w := Words{Width: 12, Vocab: 100, Seed: 4}
	low := 0
	const n = 2000
	for i := int64(0); i < n; i++ {
		if w.WordAt(i) < 50 {
			low++
		}
	}
	// min-of-two-uniforms gives P(low half) = 0.75.
	if low < n/2+n/10 {
		t.Fatalf("low-half frequency %d/%d not skewed", low, n)
	}
}

func TestMaterializeSplitsAndSites(t *testing.T) {
	gen := Points{Dims: 2, Seed: 1}
	stores := map[string]*store.Mem{"local": store.NewMem(), "cloud": store.NewMem()}
	metas, err := Materialize(gen, Spec{Records: 103, Files: 4, LocalFiles: 1}, stores)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 4 {
		t.Fatalf("files = %d", len(metas))
	}
	if metas[0].Site != "local" || metas[3].Site != "cloud" {
		t.Fatalf("site split wrong: %+v", metas)
	}
	var total int64
	for _, m := range metas {
		st := stores[m.Site]
		size, err := st.Size(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		if size != m.Size || size%int64(gen.RecordSize()) != 0 {
			t.Fatalf("file %s size %d", m.Name, size)
		}
		total += size
	}
	if total != 103*int64(gen.RecordSize()) {
		t.Fatalf("total bytes = %d", total)
	}
}

func TestMaterializeContentMatchesGenerator(t *testing.T) {
	gen := Points{Dims: 1, Seed: 8, WithID: true}
	stores := map[string]*store.Mem{"local": store.NewMem(), "cloud": store.NewMem()}
	metas, err := Materialize(gen, Spec{Records: 10, Files: 3, LocalFiles: 3}, stores)
	if err != nil {
		t.Fatal(err)
	}
	// Files hold contiguous record ranges: ids must run 0..9 in order.
	var next uint64
	for _, m := range metas {
		data, err := store.ReadAll(stores[m.Site], m.Name)
		if err != nil {
			t.Fatal(err)
		}
		rs := gen.RecordSize()
		for off := 0; off < len(data); off += rs {
			if id := binary.LittleEndian.Uint64(data[off:]); id != next {
				t.Fatalf("record id %d, want %d", id, next)
			}
			next++
		}
	}
	if next != 10 {
		t.Fatalf("saw %d records", next)
	}
}

func TestMaterializeErrors(t *testing.T) {
	gen := Points{Dims: 1}
	stores := map[string]*store.Mem{"local": store.NewMem(), "cloud": store.NewMem()}
	if _, err := Materialize(gen, Spec{Records: 2, Files: 5}, stores); err == nil {
		t.Fatal("too few records should error")
	}
	if _, err := Materialize(gen, Spec{Records: 10, Files: 2, LocalFiles: 3}, stores); err == nil {
		t.Fatal("local file overflow should error")
	}
	if _, err := Materialize(gen, Spec{Records: 10, Files: 2, LocalFiles: 1, LocalSite: "mars"}, stores); err == nil {
		t.Fatal("unknown site should error")
	}
}

func TestEdgesGenRangeMatchesGen(t *testing.T) {
	e := Edges{Pages: 80, MinDeg: 1, MaxDeg: 6, Seed: 9}
	total := e.TotalEdges()
	rs := e.RecordSize()
	whole := make([]byte, total*int64(rs))
	GenInto(e, 0, whole)
	one := make([]byte, rs)
	for i := int64(0); i < total; i++ {
		e.Gen(i, one)
		if string(one) != string(whole[i*int64(rs):(i+1)*int64(rs)]) {
			t.Fatalf("GenRange differs from Gen at edge %d", i)
		}
	}
	// A mid-stream range must match too.
	mid := make([]byte, 40*rs)
	GenInto(e, 17, mid)
	if string(mid) != string(whole[17*int64(rs):57*int64(rs)]) {
		t.Fatal("mid-stream GenRange mismatch")
	}
}

func TestGenIntoFallback(t *testing.T) {
	p := Points{Dims: 2, Seed: 4, WithID: true}
	buf := make([]byte, 5*p.RecordSize())
	GenInto(p, 3, buf)
	one := make([]byte, p.RecordSize())
	for i := 0; i < 5; i++ {
		p.Gen(int64(3+i), one)
		if string(one) != string(buf[i*p.RecordSize():(i+1)*p.RecordSize()]) {
			t.Fatalf("GenInto fallback differs at %d", i)
		}
	}
}
