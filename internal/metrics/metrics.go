// Package metrics defines the timing and counting instrumentation the
// paper's evaluation reports: per-slave and per-cluster breakdowns of
// processing time, data-retrieval time, and synchronization (barrier)
// time, plus global-reduction time, end-of-run idle time, and job
// accounting (processed vs. stolen). These feed Figures 3 and 4 and
// Tables I and II directly.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// heartbeatSenderStops counts heartbeat-sender goroutines that exited
// because a send failed (as opposed to being stopped deliberately). A
// dead heartbeater is otherwise invisible until the peer's idle
// deadline fires, so this is a process-wide gauge rather than a
// per-Breakdown counter: the sender usually dies exactly because the
// connection that would carry its Breakdown upstream is gone.
var heartbeatSenderStops atomic.Int64

// CountHeartbeatSenderStop records a heartbeat sender that died on a
// failed send.
func CountHeartbeatSenderStop() { heartbeatSenderStops.Add(1) }

// HeartbeatSenderStops returns the number of heartbeat senders that
// have died on a failed send since process start.
func HeartbeatSenderStops() int64 { return heartbeatSenderStops.Load() }

// Breakdown accumulates the per-worker timing decomposition used in
// Figures 3 and 4. All durations are in emulated time. Breakdown is
// safe for concurrent use.
type Breakdown struct {
	mu sync.Mutex

	processing time.Duration // local reduction compute
	retrieval  time.Duration // reading chunk data (local disk or remote store)
	sync       time.Duration // waiting at barriers / for job responses at drain

	jobsProcessed int // chunks fully reduced by this worker/cluster
	jobsStolen    int // chunks whose data lived at another site
	unitsReduced  int64
	bytesRead     int64
	bytesRemote   int64

	retries         int           // retried store/wire requests
	backoff         time.Duration // emulated time spent backing off
	heartbeatMisses int           // peers declared stalled via heartbeat

	cacheHits     int           // chunk retrievals served from the cache
	cacheMisses   int           // chunk retrievals that went to the store
	cacheBytes    int64         // bytes served from cache instead of refetched
	prefetched    int           // jobs whose chunk arrived via prefetch
	prefetchSaved time.Duration // retrieval time hidden behind compute
	prefetchSkips int           // prefetches skipped (byte budget exhausted)
	poolGets      int64         // fetch buffers handed out by the pool
	poolMisses    int64         // pool gets that had to allocate

	autotuneSamples int // fetches observed by an AIMD fetch autotuner
	autotuneRaises  int // autotuner additive thread-count increases
	autotuneDrops   int // autotuner multiplicative back-offs

	hintsReceived int // prefetch-hint jobs received from the master
	hintsWarmed   int // hint chunks fetched into the cache ahead of a grant
	hintsDenied   int // hints skipped (byte budget exhausted)
	hintTrims     int // master cuts to a slave's effective hint depth

	checkpoints        int // partial-reduction checkpoints shipped to the master
	checkpointsAdopted int // checkpoints merged after an unwarned slave loss
	jobsRecovered      int // jobs a checkpoint adoption saved from re-execution
	jobsRequeued       int // granted jobs requeued after a slave loss
	jobsAbandoned      int // in-flight jobs abandoned by a preemption drain
	preemptWarns       int // revocation warnings received / observed
	preemptDrains      int // accelerated drains that flushed before the kill

	bufferHits   int   // chunk reads the site buffer served from residency
	bufferMisses int   // buffer reads that paid a backing fetch
	bufferBytes  int64 // bytes read through the site buffer tier
	stagedBytes  int64 // bytes staged into the site buffer ahead of demand

	objectParts     int           // streamed reduction-object frames shipped/received
	objectBytes     int64         // actual encoded object bytes streamed
	objectEstBytes  int64         // Reduction.Bytes() estimates for the same objects
	checkpointSkips int           // checkpoint pushes skipped (object unchanged)
	merges          int           // reduction merge operations performed
	mergeBusy       time.Duration // summed merge spans (emu; overlapping under parallel)
	mergeTail       time.Duration // merge time left exposed after the last arrival (emu)
	mergeMaxPar     int           // peak concurrent merge workers
}

// AddProcessing records emulated compute time.
func (b *Breakdown) AddProcessing(d time.Duration) {
	b.mu.Lock()
	b.processing += d
	b.mu.Unlock()
}

// AddRetrieval records emulated data-retrieval time, along with the
// bytes read and whether they came from a remote site.
func (b *Breakdown) AddRetrieval(d time.Duration, bytes int64, remote bool) {
	b.mu.Lock()
	b.retrieval += d
	b.bytesRead += bytes
	if remote {
		b.bytesRemote += bytes
	}
	b.mu.Unlock()
}

// AddSync records emulated barrier/wait time.
func (b *Breakdown) AddSync(d time.Duration) {
	b.mu.Lock()
	b.sync += d
	b.mu.Unlock()
}

// AddRetry records one retried request and the emulated backoff spent
// before the retry.
func (b *Breakdown) AddRetry(backoff time.Duration) {
	b.mu.Lock()
	b.retries++
	b.backoff += backoff
	b.mu.Unlock()
}

// CountHeartbeatMiss records a peer declared stalled after missing its
// heartbeat deadline.
func (b *Breakdown) CountHeartbeatMiss() {
	b.mu.Lock()
	b.heartbeatMisses++
	b.mu.Unlock()
}

// CountCache records one chunk retrieval's cache outcome; bytes is
// the chunk size served from cache on a hit.
func (b *Breakdown) CountCache(hit bool, bytes int64) {
	b.mu.Lock()
	if hit {
		b.cacheHits++
		b.cacheBytes += bytes
	} else {
		b.cacheMisses++
	}
	b.mu.Unlock()
}

// AddPrefetch records one job whose chunk data was prefetched while a
// previous job computed; saved is the retrieval time the overlap hid
// from the critical path.
func (b *Breakdown) AddPrefetch(saved time.Duration) {
	b.mu.Lock()
	b.prefetched++
	b.prefetchSaved += saved
	b.mu.Unlock()
}

// CountPrefetchSkip records a prefetch forgone because the slave's
// in-flight byte budget was exhausted.
func (b *Breakdown) CountPrefetchSkip() {
	b.mu.Lock()
	b.prefetchSkips++
	b.mu.Unlock()
}

// CountAutotune records one fetch observed by an AIMD autotuner and
// the controller decision it closed: dec > 0 is an additive increase,
// dec < 0 a multiplicative back-off, 0 no epoch boundary.
func (b *Breakdown) CountAutotune(dec int) {
	b.mu.Lock()
	b.autotuneSamples++
	if dec > 0 {
		b.autotuneRaises++
	} else if dec < 0 {
		b.autotuneDrops++
	}
	b.mu.Unlock()
}

// CountHint records one prefetch-hint job received from the master and
// its outcome: warmed into the cache, or denied by the byte budget.
func (b *Breakdown) CountHint(warmed bool) {
	b.mu.Lock()
	b.hintsReceived++
	if warmed {
		b.hintsWarmed++
	} else {
		b.hintsDenied++
	}
	b.mu.Unlock()
}

// CountHintTrim records the master shrinking one slave's effective
// hint depth because its reported hint waste climbed.
func (b *Breakdown) CountHintTrim() {
	b.mu.Lock()
	b.hintTrims++
	b.mu.Unlock()
}

// CountCheckpoint records one partial-reduction checkpoint shipped to
// the master.
func (b *Breakdown) CountCheckpoint() {
	b.mu.Lock()
	b.checkpoints++
	b.mu.Unlock()
}

// CountCheckpointAdopt records the master merging a lost slave's last
// checkpoint; jobs is how many completed jobs the checkpoint covered —
// work that would otherwise have been re-executed.
func (b *Breakdown) CountCheckpointAdopt(jobs int) {
	b.mu.Lock()
	b.checkpointsAdopted++
	b.jobsRecovered += jobs
	b.mu.Unlock()
}

// CountRequeue records granted jobs returned to the queue after a
// slave loss — the re-execution cost of the loss.
func (b *Breakdown) CountRequeue(n int) {
	b.mu.Lock()
	b.jobsRequeued += n
	b.mu.Unlock()
}

// CountPreemptAbandon records in-flight jobs a warned slave abandoned
// because its warning window could not fit them.
func (b *Breakdown) CountPreemptAbandon(n int) {
	b.mu.Lock()
	b.jobsAbandoned += n
	b.mu.Unlock()
}

// CountPreemptWarn records one revocation warning.
func (b *Breakdown) CountPreemptWarn() {
	b.mu.Lock()
	b.preemptWarns++
	b.mu.Unlock()
}

// CountPreemptDrain records one accelerated drain that flushed its
// partial reduction before the hard kill landed.
func (b *Breakdown) CountPreemptDrain() {
	b.mu.Lock()
	b.preemptDrains++
	b.mu.Unlock()
}

// CountBuffer records one chunk read served through the site buffer
// tier: hit says whether the buffer had the chunk resident, bytes is
// the chunk size read.
func (b *Breakdown) CountBuffer(hit bool, bytes int64) {
	b.mu.Lock()
	if hit {
		b.bufferHits++
	} else {
		b.bufferMisses++
	}
	b.bufferBytes += bytes
	b.mu.Unlock()
}

// AddStaged records bytes the master staged into the site buffer ahead
// of slave demand.
func (b *Breakdown) AddStaged(bytes int64) {
	b.mu.Lock()
	b.stagedBytes += bytes
	b.mu.Unlock()
}

// AddObjectStream records one streamed reduction-object transfer:
// parts frames carrying bytes actual encoded bytes, against the
// object's est(imated) Reduction.Bytes() at ship time.
func (b *Breakdown) AddObjectStream(parts int, bytes, est int64) {
	b.mu.Lock()
	b.objectParts += parts
	b.objectBytes += bytes
	b.objectEstBytes += est
	b.mu.Unlock()
}

// CountCheckpointSkip records one checkpoint push elided because the
// encoded object was byte-identical to the previously acked one.
func (b *Breakdown) CountCheckpointSkip() {
	b.mu.Lock()
	b.checkpointSkips++
	b.mu.Unlock()
}

// AddMerge folds merge activity in: merges pairwise merge operations,
// busy the summed merge spans, tail the merge work left exposed after
// the last input arrived, and maxPar the peak concurrent mergers.
func (b *Breakdown) AddMerge(merges int, busy, tail time.Duration, maxPar int) {
	b.mu.Lock()
	b.merges += merges
	b.mergeBusy += busy
	b.mergeTail += tail
	if maxPar > b.mergeMaxPar {
		b.mergeMaxPar = maxPar
	}
	b.mu.Unlock()
}

// AddPool folds buffer-pool counters (gets and allocation misses) in.
func (b *Breakdown) AddPool(gets, misses int64) {
	b.mu.Lock()
	b.poolGets += gets
	b.poolMisses += misses
	b.mu.Unlock()
}

// CountJob records a completed job and whether its data was stolen
// from a remote site, along with the units it contained.
func (b *Breakdown) CountJob(stolen bool, units int64) {
	b.mu.Lock()
	b.jobsProcessed++
	if stolen {
		b.jobsStolen++
	}
	b.unitsReduced += units
	b.mu.Unlock()
}

// Merge folds other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	if other == nil {
		return
	}
	b.AddSnapshot(other.Snapshot())
}

// AddSnapshot folds a previously captured snapshot into b.
func (b *Breakdown) AddSnapshot(s Snapshot) {
	b.mu.Lock()
	b.processing += s.Processing
	b.retrieval += s.Retrieval
	b.sync += s.Sync
	b.jobsProcessed += s.JobsProcessed
	b.jobsStolen += s.JobsStolen
	b.unitsReduced += s.UnitsReduced
	b.bytesRead += s.BytesRead
	b.bytesRemote += s.BytesRemote
	b.retries += s.Retries
	b.backoff += s.BackoffEmu
	b.heartbeatMisses += s.HeartbeatMisses
	b.cacheHits += s.CacheHits
	b.cacheMisses += s.CacheMisses
	b.cacheBytes += s.CacheBytesSaved
	b.prefetched += s.PrefetchedJobs
	b.prefetchSaved += s.PrefetchSavedEmu
	b.prefetchSkips += s.PrefetchSkips
	b.poolGets += s.PoolGets
	b.poolMisses += s.PoolMisses
	b.autotuneSamples += s.AutotuneSamples
	b.autotuneRaises += s.AutotuneRaises
	b.autotuneDrops += s.AutotuneDrops
	b.hintsReceived += s.HintsReceived
	b.hintsWarmed += s.HintsWarmed
	b.hintsDenied += s.HintsDenied
	b.hintTrims += s.HintTrims
	b.checkpoints += s.Checkpoints
	b.checkpointsAdopted += s.CheckpointsAdopted
	b.jobsRecovered += s.JobsRecovered
	b.jobsRequeued += s.JobsRequeued
	b.jobsAbandoned += s.JobsAbandoned
	b.preemptWarns += s.PreemptWarns
	b.preemptDrains += s.PreemptDrains
	b.bufferHits += s.BufferHits
	b.bufferMisses += s.BufferMisses
	b.bufferBytes += s.BufferBytes
	b.stagedBytes += s.StagedBytes
	b.objectParts += s.ObjectParts
	b.objectBytes += s.ObjectBytes
	b.objectEstBytes += s.ObjectEstBytes
	b.checkpointSkips += s.CheckpointSkips
	b.merges += s.Merges
	b.mergeBusy += s.MergeBusyEmu
	b.mergeTail += s.MergeTailEmu
	if s.MergeMaxPar > b.mergeMaxPar {
		b.mergeMaxPar = s.MergeMaxPar
	}
	b.mu.Unlock()
}

// Snapshot returns a copy of the current totals.
func (b *Breakdown) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Snapshot{
		Processing:       b.processing,
		Retrieval:        b.retrieval,
		Sync:             b.sync,
		JobsProcessed:    b.jobsProcessed,
		JobsStolen:       b.jobsStolen,
		UnitsReduced:     b.unitsReduced,
		BytesRead:        b.bytesRead,
		BytesRemote:      b.bytesRemote,
		Retries:          b.retries,
		BackoffEmu:       b.backoff,
		HeartbeatMisses:  b.heartbeatMisses,
		CacheHits:        b.cacheHits,
		CacheMisses:      b.cacheMisses,
		CacheBytesSaved:  b.cacheBytes,
		PrefetchedJobs:   b.prefetched,
		PrefetchSavedEmu: b.prefetchSaved,
		PrefetchSkips:    b.prefetchSkips,
		PoolGets:         b.poolGets,
		PoolMisses:       b.poolMisses,
		AutotuneSamples:  b.autotuneSamples,
		AutotuneRaises:   b.autotuneRaises,
		AutotuneDrops:    b.autotuneDrops,
		HintsReceived:    b.hintsReceived,
		HintsWarmed:      b.hintsWarmed,
		HintsDenied:      b.hintsDenied,
		HintTrims:        b.hintTrims,

		Checkpoints:        b.checkpoints,
		CheckpointsAdopted: b.checkpointsAdopted,
		JobsRecovered:      b.jobsRecovered,
		JobsRequeued:       b.jobsRequeued,
		JobsAbandoned:      b.jobsAbandoned,
		PreemptWarns:       b.preemptWarns,
		PreemptDrains:      b.preemptDrains,

		BufferHits:   b.bufferHits,
		BufferMisses: b.bufferMisses,
		BufferBytes:  b.bufferBytes,
		StagedBytes:  b.stagedBytes,

		ObjectParts:     b.objectParts,
		ObjectBytes:     b.objectBytes,
		ObjectEstBytes:  b.objectEstBytes,
		CheckpointSkips: b.checkpointSkips,
		Merges:          b.merges,
		MergeBusyEmu:    b.mergeBusy,
		MergeTailEmu:    b.mergeTail,
		MergeMaxPar:     b.mergeMaxPar,
	}
}

// Snapshot is an immutable copy of a Breakdown.
type Snapshot struct {
	Processing    time.Duration
	Retrieval     time.Duration
	Sync          time.Duration
	JobsProcessed int
	JobsStolen    int
	UnitsReduced  int64
	BytesRead     int64
	BytesRemote   int64

	Retries         int
	BackoffEmu      time.Duration
	HeartbeatMisses int

	CacheHits        int
	CacheMisses      int
	CacheBytesSaved  int64
	PrefetchedJobs   int
	PrefetchSavedEmu time.Duration
	PrefetchSkips    int
	PoolGets         int64
	PoolMisses       int64

	AutotuneSamples int
	AutotuneRaises  int
	AutotuneDrops   int
	HintsReceived   int
	HintsWarmed     int
	HintsDenied     int
	HintTrims       int

	Checkpoints        int
	CheckpointsAdopted int
	JobsRecovered      int
	JobsRequeued       int
	JobsAbandoned      int
	PreemptWarns       int
	PreemptDrains      int

	// New counters append here: the wire codec walks Snapshot fields in
	// declaration order and drops trailing unknowns, so appending keeps
	// mixed-version peers decoding each other.
	BufferHits   int
	BufferMisses int
	BufferBytes  int64
	StagedBytes  int64

	ObjectParts     int           // streamed object frames shipped/received
	ObjectBytes     int64         // actual encoded object bytes streamed
	ObjectEstBytes  int64         // Reduction.Bytes() estimates for the same objects
	CheckpointSkips int           // checkpoint pushes elided (object unchanged)
	Merges          int           // pairwise reduction merges performed
	MergeBusyEmu    time.Duration // summed merge spans (overlapping under parallel)
	MergeTailEmu    time.Duration // merge work exposed after the last arrival
	MergeMaxPar     int           // peak concurrent mergers (max-folded, not summed)
}

// Total returns the summed time components.
func (s Snapshot) Total() time.Duration { return s.Processing + s.Retrieval + s.Sync }

// Add returns the component-wise sum of two snapshots.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Processing:       s.Processing + o.Processing,
		Retrieval:        s.Retrieval + o.Retrieval,
		Sync:             s.Sync + o.Sync,
		JobsProcessed:    s.JobsProcessed + o.JobsProcessed,
		JobsStolen:       s.JobsStolen + o.JobsStolen,
		UnitsReduced:     s.UnitsReduced + o.UnitsReduced,
		BytesRead:        s.BytesRead + o.BytesRead,
		BytesRemote:      s.BytesRemote + o.BytesRemote,
		Retries:          s.Retries + o.Retries,
		BackoffEmu:       s.BackoffEmu + o.BackoffEmu,
		HeartbeatMisses:  s.HeartbeatMisses + o.HeartbeatMisses,
		CacheHits:        s.CacheHits + o.CacheHits,
		CacheMisses:      s.CacheMisses + o.CacheMisses,
		CacheBytesSaved:  s.CacheBytesSaved + o.CacheBytesSaved,
		PrefetchedJobs:   s.PrefetchedJobs + o.PrefetchedJobs,
		PrefetchSavedEmu: s.PrefetchSavedEmu + o.PrefetchSavedEmu,
		PrefetchSkips:    s.PrefetchSkips + o.PrefetchSkips,
		PoolGets:         s.PoolGets + o.PoolGets,
		PoolMisses:       s.PoolMisses + o.PoolMisses,
		AutotuneSamples:  s.AutotuneSamples + o.AutotuneSamples,
		AutotuneRaises:   s.AutotuneRaises + o.AutotuneRaises,
		AutotuneDrops:    s.AutotuneDrops + o.AutotuneDrops,
		HintsReceived:    s.HintsReceived + o.HintsReceived,
		HintsWarmed:      s.HintsWarmed + o.HintsWarmed,
		HintsDenied:      s.HintsDenied + o.HintsDenied,
		HintTrims:        s.HintTrims + o.HintTrims,

		Checkpoints:        s.Checkpoints + o.Checkpoints,
		CheckpointsAdopted: s.CheckpointsAdopted + o.CheckpointsAdopted,
		JobsRecovered:      s.JobsRecovered + o.JobsRecovered,
		JobsRequeued:       s.JobsRequeued + o.JobsRequeued,
		JobsAbandoned:      s.JobsAbandoned + o.JobsAbandoned,
		PreemptWarns:       s.PreemptWarns + o.PreemptWarns,
		PreemptDrains:      s.PreemptDrains + o.PreemptDrains,

		BufferHits:   s.BufferHits + o.BufferHits,
		BufferMisses: s.BufferMisses + o.BufferMisses,
		BufferBytes:  s.BufferBytes + o.BufferBytes,
		StagedBytes:  s.StagedBytes + o.StagedBytes,

		ObjectParts:     s.ObjectParts + o.ObjectParts,
		ObjectBytes:     s.ObjectBytes + o.ObjectBytes,
		ObjectEstBytes:  s.ObjectEstBytes + o.ObjectEstBytes,
		CheckpointSkips: s.CheckpointSkips + o.CheckpointSkips,
		Merges:          s.Merges + o.Merges,
		MergeBusyEmu:    s.MergeBusyEmu + o.MergeBusyEmu,
		MergeTailEmu:    s.MergeTailEmu + o.MergeTailEmu,
		MergeMaxPar:     maxInt(s.MergeMaxPar, o.MergeMaxPar),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DivideTimes returns a snapshot whose time components are divided by
// n, used to average per-core breakdowns into a per-cluster figure the
// way the paper's stacked bars do. Counters are left untouched.
func (s Snapshot) DivideTimes(n int) Snapshot {
	if n <= 0 {
		return s
	}
	out := s
	out.Processing /= time.Duration(n)
	out.Retrieval /= time.Duration(n)
	out.Sync /= time.Duration(n)
	return out
}

func (s Snapshot) String() string {
	return fmt.Sprintf("proc=%v retr=%v sync=%v jobs=%d stolen=%d",
		s.Processing.Round(time.Millisecond), s.Retrieval.Round(time.Millisecond),
		s.Sync.Round(time.Millisecond), s.JobsProcessed, s.JobsStolen)
}

// ClusterReport is the per-cluster summary produced at the end of a
// run: the aggregated worker breakdown plus cluster-level events.
type ClusterReport struct {
	Site string
	// Workers is the per-core average time breakdown (paper bars).
	Workers Snapshot
	// Cores is the number of virtual cores the cluster ran.
	Cores int
	// IdleAtEnd is how long this cluster waited for the other cluster
	// to finish before the global reduction could start (Table II).
	IdleAtEnd time.Duration
	// Wall is the cluster's total emulated wall time from start to its
	// local-combine completion.
	Wall time.Duration
}

// FaultReport aggregates fault-recovery activity over a run: what the
// fault plan injected (filled by the harness), and what the retry and
// heartbeat machinery did about it (filled by the head from worker and
// master stats plus its own stall detections).
type FaultReport struct {
	Injected        int64         // faults the plan injected (harness-filled)
	Retries         int           // retried store/wire requests
	BackoffEmu      time.Duration // emulated time spent in retry backoff
	HeartbeatMisses int           // peers declared stalled and re-executed
}

// Any reports whether any fault-path activity was recorded.
func (f FaultReport) Any() bool {
	return f.Injected > 0 || f.Retries > 0 || f.BackoffEmu > 0 || f.HeartbeatMisses > 0
}

// RetrievalReport aggregates the retrieval-pipeline activity over a
// run: chunk-cache effectiveness, prefetch overlap, and buffer-pool
// reuse, summed across every worker of every cluster.
type RetrievalReport struct {
	CacheHits        int           // chunk retrievals served from cache
	CacheMisses      int           // chunk retrievals that hit the store
	CacheBytesSaved  int64         // bytes not re-read from any store
	PrefetchedJobs   int           // jobs whose chunk arrived via prefetch
	PrefetchSavedEmu time.Duration // retrieval time hidden behind compute
	PrefetchSkips    int           // prefetches denied by the byte budget
	PoolGets         int64         // fetch buffers handed out by pools
	PoolMisses       int64         // pool gets that had to allocate

	AutotuneSamples int // fetches observed by AIMD fetch autotuners
	AutotuneRaises  int // autotuner additive thread-count increases
	AutotuneDrops   int // autotuner multiplicative back-offs
	HintsReceived   int // master prefetch hints received by slaves
	HintsWarmed     int // hint chunks warmed into caches ahead of grants
	HintsDenied     int // hints denied by the prefetch byte budget
	StealsCold      int // stolen grants whose chunks were cache-cold at the victim
	StealsWarm      int // stolen grants that took cache-warm victim chunks

	// Hint-quality feedback: hint chunks a slave warmed into its cache
	// that were never granted to any of its workers — warm bytes the
	// master's hint stream wasted on work that went elsewhere.
	WastedHints     int   // hinted-and-warmed chunks never granted
	WastedWarmBytes int64 // bytes warmed for those chunks
	HintTrims       int   // master cuts to slaves' effective hint depths

	// Site-buffer tier: reads slaves routed through the shared per-site
	// burst buffer, the master's staging ahead of demand, and the bytes
	// the buffer itself paid the backing store (the run's true S3
	// egress for buffered reads — everything above BufferBackingBytes
	// was absorbed by sharing).
	BufferHits         int   // buffered reads served from residency
	BufferMisses       int   // buffered reads that paid a backing fetch
	BufferBytes        int64 // bytes slaves read through the buffer
	StagedBytes        int64 // bytes staged by masters ahead of demand
	BufferBackingBytes int64 // bytes the buffer fetched from backing stores
}

// Any reports whether any pipeline activity was recorded.
func (r RetrievalReport) Any() bool {
	return r.CacheHits > 0 || r.CacheMisses > 0 || r.PrefetchedJobs > 0 ||
		r.PrefetchSkips > 0 || r.PoolGets > 0 || r.AutotuneSamples > 0 ||
		r.HintsReceived > 0 || r.StealsCold > 0 || r.StealsWarm > 0 ||
		r.BufferHits > 0 || r.BufferMisses > 0 || r.StagedBytes > 0
}

// Add folds another report in (summing a run sequence, e.g. the
// iterations of a multi-pass algorithm).
func (r *RetrievalReport) Add(o RetrievalReport) {
	r.CacheHits += o.CacheHits
	r.CacheMisses += o.CacheMisses
	r.CacheBytesSaved += o.CacheBytesSaved
	r.PrefetchedJobs += o.PrefetchedJobs
	r.PrefetchSavedEmu += o.PrefetchSavedEmu
	r.PrefetchSkips += o.PrefetchSkips
	r.PoolGets += o.PoolGets
	r.PoolMisses += o.PoolMisses
	r.AutotuneSamples += o.AutotuneSamples
	r.AutotuneRaises += o.AutotuneRaises
	r.AutotuneDrops += o.AutotuneDrops
	r.HintsReceived += o.HintsReceived
	r.HintsWarmed += o.HintsWarmed
	r.HintsDenied += o.HintsDenied
	r.StealsCold += o.StealsCold
	r.StealsWarm += o.StealsWarm
	r.WastedHints += o.WastedHints
	r.WastedWarmBytes += o.WastedWarmBytes
	r.HintTrims += o.HintTrims
	r.BufferHits += o.BufferHits
	r.BufferMisses += o.BufferMisses
	r.BufferBytes += o.BufferBytes
	r.StagedBytes += o.StagedBytes
	r.BufferBackingBytes += o.BufferBackingBytes
}

// AddSnapshot folds one worker snapshot's pipeline counters in.
func (r *RetrievalReport) AddSnapshot(s Snapshot) {
	r.CacheHits += s.CacheHits
	r.CacheMisses += s.CacheMisses
	r.CacheBytesSaved += s.CacheBytesSaved
	r.PrefetchedJobs += s.PrefetchedJobs
	r.PrefetchSavedEmu += s.PrefetchSavedEmu
	r.PrefetchSkips += s.PrefetchSkips
	r.PoolGets += s.PoolGets
	r.PoolMisses += s.PoolMisses
	r.AutotuneSamples += s.AutotuneSamples
	r.AutotuneRaises += s.AutotuneRaises
	r.AutotuneDrops += s.AutotuneDrops
	r.HintsReceived += s.HintsReceived
	r.HintsWarmed += s.HintsWarmed
	r.HintsDenied += s.HintsDenied
	r.HintTrims += s.HintTrims
	r.BufferHits += s.BufferHits
	r.BufferMisses += s.BufferMisses
	r.BufferBytes += s.BufferBytes
	r.StagedBytes += s.StagedBytes
}

// PreemptionReport aggregates spot-revocation activity over a run:
// what the revocation trace did to the fleet (harness-filled) and how
// the drain/checkpoint machinery limited the damage (counter-derived).
type PreemptionReport struct {
	Revocations int // slaves revoked by the trace
	Warned      int // revocations that granted a warning window
	Unwarned    int // hard kills with no notice

	DrainsCompleted int // warned slaves whose accelerated drain flushed in time
	DrainsAborted   int // warned slaves killed before their flush landed
	PreemptWarns    int // warnings observed by masters

	CheckpointsSent    int // partial-reduction checkpoints slaves shipped
	CheckpointsAdopted int // checkpoints merged after an unwarned loss
	JobsRecovered      int // jobs checkpoint adoption saved from re-execution
	JobsAbandoned      int // in-flight jobs drains abandoned for lack of time
	JobsRequeued       int // granted jobs requeued for re-execution
	CheckpointSkips    int // checkpoint pushes elided (object unchanged)
}

// Any reports whether any preemption activity was recorded.
func (p PreemptionReport) Any() bool {
	return p.Revocations > 0 || p.PreemptWarns > 0 || p.CheckpointsSent > 0 ||
		p.JobsRequeued > 0 || p.JobsAbandoned > 0
}

// SyncReport summarizes the global-reduction synchronization phase:
// how reduction objects moved (streamed parts vs. monolithic frames)
// and how merge work overlapped with their arrival.
type SyncReport struct {
	Mode          string // sync mode the run used (monolithic, streamed, ...)
	Parts         int    // streamed object frames across all hops
	StreamedBytes int64  // actual encoded object bytes streamed
	EstBytes      int64  // Reduction.Bytes() estimates for the same objects

	Merges          int           // pairwise reduction merges performed
	MergeBusyEmu    time.Duration // summed merge spans (overlapping under parallel)
	MergeTailEmu    time.Duration // merge work exposed after the last arrival
	OverlapSavedEmu time.Duration // merge time hidden behind transfer (busy - tail)
	MaxParallel     int           // peak concurrent mergers observed
	CheckpointSkips int           // checkpoint pushes elided as unchanged
}

// Any reports whether any sync activity was recorded.
func (s SyncReport) Any() bool {
	return s.Parts > 0 || s.StreamedBytes > 0 || s.Merges > 0 || s.CheckpointSkips > 0
}

// RunReport is the whole-run summary the harness renders tables from.
type RunReport struct {
	App         string
	Env         string
	Clusters    []ClusterReport
	GlobalRed   time.Duration     // head-side global reduction + transfer
	TotalWall   time.Duration     // emulated end-to-end execution time
	FinalResult string            // application-rendered result digest
	Faults      FaultReport       // fault-injection and recovery counters
	Retrieval   RetrievalReport   // cache / prefetch / buffer-pool counters
	Sync        *SyncReport       // global-reduction transfer/merge summary (nil if none)
	Elastic     *ElasticReport    // scaling controller summary (nil if static)
	Preemption  *PreemptionReport // spot-revocation summary (nil if none)
}

// ScaleEvent records one scaling decision the elastic controller made.
type ScaleEvent struct {
	AtEmu  time.Duration // emulated elapsed time of the decision
	Site   string
	From   int // commanded workers before
	To     int // commanded workers after
	Reason string
}

// ElasticReport summarizes the elastic controller's run: membership
// churn, whether the deadline was met, and the cost-model accounting
// (emu instance-time plus remote egress).
type ElasticReport struct {
	Site        string        // the scaled site
	Deadline    time.Duration // emulated run deadline (0 = none)
	MetDeadline bool
	Workers     int // commanded workers at end of run
	Peak        int // maximum commanded workers
	Boots       int // workers provisioned mid-run
	Drains      int // workers retired mid-run
	WastedBoots int // booted instances that arrived after the run ended
	// SeededWorkers counts capacity the advisor's warm start commanded
	// at t=0 (included in Boots); CostCapHits counts scale-ups the
	// CostCapUSD budget trimmed or refused.
	SeededWorkers int
	CostCapHits   int
	Events        []ScaleEvent

	InstanceSecs float64 // emulated instance-seconds billed
	EgressBytes  int64   // bytes crossing sites (stolen-chunk retrieval)
	InstanceUSD  float64
	EgressUSD    float64
	TotalUSD     float64

	// Spot-tier accounting (zero unless the controller ran with a spot
	// rate configured). InstanceSecs = SpotSecs + OnDemandSecs and
	// InstanceUSD = SpotUSD + OnDemandUSD when the tier is active.
	Revocations     int     // spot workers revoked mid-run
	WarnedRevs      int     // revocations that carried a warning
	Replacements    int     // replacement boots the controller issued
	OnDemandWorkers int     // on-demand workers commanded at end of run
	SpotSecs        float64 // emulated spot instance-seconds billed
	OnDemandSecs    float64 // emulated on-demand instance-seconds billed
	SpotUSD         float64
	OnDemandUSD     float64
}

// Cluster returns the report for the named site, or nil.
func (r *RunReport) Cluster(site string) *ClusterReport {
	for i := range r.Clusters {
		if r.Clusters[i].Site == site {
			return &r.Clusters[i]
		}
	}
	return nil
}

// JobsProcessed sums processed jobs across clusters.
func (r *RunReport) JobsProcessed() int {
	n := 0
	for _, c := range r.Clusters {
		n += c.Workers.JobsProcessed
	}
	return n
}
