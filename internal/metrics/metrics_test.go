package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBreakdownAccumulates(t *testing.T) {
	var b Breakdown
	b.AddProcessing(2 * time.Second)
	b.AddProcessing(3 * time.Second)
	b.AddRetrieval(time.Second, 1024, false)
	b.AddRetrieval(4*time.Second, 2048, true)
	b.AddSync(500 * time.Millisecond)
	b.CountJob(false, 100)
	b.CountJob(true, 50)

	s := b.Snapshot()
	if s.Processing != 5*time.Second {
		t.Errorf("processing = %v", s.Processing)
	}
	if s.Retrieval != 5*time.Second {
		t.Errorf("retrieval = %v", s.Retrieval)
	}
	if s.Sync != 500*time.Millisecond {
		t.Errorf("sync = %v", s.Sync)
	}
	if s.JobsProcessed != 2 || s.JobsStolen != 1 {
		t.Errorf("jobs = %d stolen = %d", s.JobsProcessed, s.JobsStolen)
	}
	if s.UnitsReduced != 150 {
		t.Errorf("units = %d", s.UnitsReduced)
	}
	if s.BytesRead != 3072 || s.BytesRemote != 2048 {
		t.Errorf("bytes = %d remote = %d", s.BytesRead, s.BytesRemote)
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.AddProcessing(time.Second)
	a.CountJob(false, 10)
	b.AddProcessing(2 * time.Second)
	b.CountJob(true, 20)
	a.Merge(&b)
	s := a.Snapshot()
	if s.Processing != 3*time.Second {
		t.Errorf("merged processing = %v", s.Processing)
	}
	if s.JobsProcessed != 2 || s.JobsStolen != 1 {
		t.Errorf("merged jobs = %+v", s)
	}
	a.Merge(nil) // must not panic
}

func TestBreakdownConcurrent(t *testing.T) {
	var b Breakdown
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.AddProcessing(time.Millisecond)
				b.CountJob(j%2 == 0, 1)
			}
		}()
	}
	wg.Wait()
	s := b.Snapshot()
	if s.Processing != 1600*time.Millisecond {
		t.Errorf("concurrent processing = %v", s.Processing)
	}
	if s.JobsProcessed != 1600 || s.JobsStolen != 800 {
		t.Errorf("concurrent jobs = %d/%d", s.JobsProcessed, s.JobsStolen)
	}
}

func TestSnapshotTotalAndAdd(t *testing.T) {
	s := Snapshot{Processing: 1 * time.Second, Retrieval: 2 * time.Second, Sync: 3 * time.Second}
	if s.Total() != 6*time.Second {
		t.Errorf("total = %v", s.Total())
	}
	sum := s.Add(s)
	if sum.Total() != 12*time.Second {
		t.Errorf("add total = %v", sum.Total())
	}
}

func TestSnapshotDivideTimes(t *testing.T) {
	s := Snapshot{Processing: 8 * time.Second, Retrieval: 4 * time.Second, Sync: 2 * time.Second, JobsProcessed: 7}
	d := s.DivideTimes(2)
	if d.Processing != 4*time.Second || d.Retrieval != 2*time.Second || d.Sync != time.Second {
		t.Errorf("divided = %+v", d)
	}
	if d.JobsProcessed != 7 {
		t.Error("DivideTimes must not touch counters")
	}
	if got := s.DivideTimes(0); got != s {
		t.Error("divide by 0 should be identity")
	}
}

// Property: Add is commutative and Total distributes over Add.
func TestSnapshotAddProperty(t *testing.T) {
	f := func(p1, r1, s1, p2, r2, s2 uint32) bool {
		a := Snapshot{Processing: time.Duration(p1), Retrieval: time.Duration(r1), Sync: time.Duration(s1)}
		b := Snapshot{Processing: time.Duration(p2), Retrieval: time.Duration(r2), Sync: time.Duration(s2)}
		return a.Add(b) == b.Add(a) && a.Add(b).Total() == a.Total()+b.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportClusterLookup(t *testing.T) {
	r := RunReport{Clusters: []ClusterReport{
		{Site: "local", Workers: Snapshot{JobsProcessed: 480}},
		{Site: "cloud", Workers: Snapshot{JobsProcessed: 480}},
	}}
	if c := r.Cluster("cloud"); c == nil || c.Site != "cloud" {
		t.Fatal("cluster lookup failed")
	}
	if r.Cluster("mars") != nil {
		t.Fatal("missing cluster should be nil")
	}
	if r.JobsProcessed() != 960 {
		t.Fatalf("jobs processed = %d", r.JobsProcessed())
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Processing: time.Second, JobsProcessed: 3, JobsStolen: 1}
	str := s.String()
	if !strings.Contains(str, "jobs=3") || !strings.Contains(str, "stolen=1") {
		t.Fatalf("string = %q", str)
	}
}

// TestRunReportJSONRoundTrip guards the on-disk stability of the run
// report: the advisor's history extraction and every bench -json
// artifact depend on a RunReport surviving a marshal/unmarshal cycle
// with no field silently dropped. Populate every branch (sync,
// elastic, preemption, spot tier) with distinct values so a field
// that stops serializing fails loudly.
func TestRunReportJSONRoundTrip(t *testing.T) {
	rep := RunReport{
		App: "knn", Env: "env-50/50",
		Clusters: []ClusterReport{
			{
				Site: "local",
				Workers: Snapshot{
					Processing: 11 * time.Second, Retrieval: 3 * time.Second,
					Sync: time.Second, JobsProcessed: 480, JobsStolen: 12,
					BytesRead: 1 << 24, BytesRemote: 1 << 20,
				},
				Cores: 8, IdleAtEnd: 2 * time.Second, Wall: 240 * time.Second,
			},
			{
				Site: "cloud",
				Workers: Snapshot{
					Processing: 9 * time.Second, JobsProcessed: 480,
					BytesRead: 1 << 23, BytesRemote: 1 << 21,
				},
				Cores: 2, Wall: 238 * time.Second,
			},
		},
		GlobalRed: 4 * time.Second, TotalWall: 244 * time.Second,
		FinalResult: "digest-abc",
		Faults:      FaultReport{Injected: 7, Retries: 5, BackoffEmu: time.Second, HeartbeatMisses: 1},
		Retrieval: RetrievalReport{
			CacheHits: 10, CacheMisses: 20, CacheBytesSaved: 1 << 22,
			PrefetchedJobs: 30, PoolGets: 40, AutotuneSamples: 50,
		},
		Sync: &SyncReport{
			Mode: "streamed-parallel", Parts: 64, StreamedBytes: 1 << 25,
			Merges: 9, MaxParallel: 3,
		},
		Elastic: &ElasticReport{
			Site: "cloud", Deadline: 200 * time.Second, MetDeadline: true,
			Workers: 10, Peak: 12, Boots: 10, Drains: 2, WastedBoots: 1,
			SeededWorkers: 8, CostCapHits: 3,
			Events: []ScaleEvent{
				{AtEmu: 0, Site: "cloud", From: 2, To: 10, Reason: "advisor warm start"},
				{AtEmu: 90 * time.Second, Site: "cloud", From: 10, To: 12, Reason: "deadline at risk"},
			},
			InstanceSecs: 1920, EgressBytes: 1 << 21,
			InstanceUSD: 0.09, EgressUSD: 0.01, TotalUSD: 0.1,
			Revocations: 2, WarnedRevs: 1, Replacements: 2, OnDemandWorkers: 1,
			SpotSecs: 900, OnDemandSecs: 1020, SpotUSD: 0.03, OnDemandUSD: 0.06,
		},
		Preemption: &PreemptionReport{Revocations: 2, PreemptWarns: 1, CheckpointsSent: 4},
	}

	out, err := json.Marshal(&rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back RunReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed the report:\n before %+v\n after  %+v", rep, back)
	}
	// Second generation must be byte-stable (no map ordering or float
	// formatting drift feeding spurious history diffs).
	out2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(out) != string(out2) {
		t.Fatalf("re-marshal not byte-identical:\n first  %s\n second %s", out, out2)
	}
}
