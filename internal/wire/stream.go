package wire

import (
	"fmt"
	"io"
)

// DefaultPartSize is the frame budget for streamed object transfer:
// large enough to amortize framing, small enough that a part buffer
// always comes from the BufferPool's size classes and a ~300 MB
// object never forces a single giant allocation on either side.
const DefaultPartSize = 1 << 20

// Adaptive part-size bounds. MinPartSize keeps framing overhead
// amortized even on a starved WAN link; MaxPartSize keeps a part
// buffer inside the BufferPool's comfortable size classes and bounds
// how long one part monopolizes the connection's write mutex against
// interleaving heartbeats.
const (
	MinPartSize = 256 << 10
	MaxPartSize = 4 << 20
)

// adaptiveWindow is the slice of a single stream's measured goodput
// one part should carry: a quarter emulated second. Fast links get
// fewer, larger frames; slow links get parts small enough that
// progress (and failure) surfaces at sub-second granularity.
const adaptiveWindow = 0.25

// AdaptivePartSize maps a measured per-stream goodput (bytes per
// emulated second, e.g. store.Autotuner.Goodput) to an object-part
// size: one adaptiveWindow's worth of bytes, rounded up to a power of
// two so part buffers keep riding the BufferPool's size classes, then
// clamped to [MinPartSize, MaxPartSize]. A non-positive goodput (no
// tuner, or one that has not closed an epoch yet) falls back to
// DefaultPartSize.
func AdaptivePartSize(goodput float64) int {
	if goodput <= 0 {
		return DefaultPartSize
	}
	want := goodput * adaptiveWindow
	size := MinPartSize
	for float64(size) < want && size < MaxPartSize {
		size <<= 1
	}
	if size > MaxPartSize {
		size = MaxPartSize
	}
	return size
}

// ObjectWriter streams an encoded reduction object over a connection
// as bounded KindObjectPart frames. It is an io.WriteCloser: the
// object's Encode writes into it directly, each filled part ships as
// one frame (drawn from the connection's pool), and Close flushes the
// final part with Last set — possibly empty, which is how zero-length
// objects terminate. The parts are one-way pushes; the caller sends
// its terminal request (KindSlaveResult, KindClusterResult,
// KindCheckpoint, KindFinal) after Close, with a nil Object.
//
// An ObjectWriter is single-goroutine; concurrent senders on the same
// connection are already serialized by Conn.Send's write mutex, so
// heartbeats interleave between parts without tearing frames.
type ObjectWriter struct {
	c      *Conn
	buf    []byte
	n      int
	seq    int
	off    int64
	closed bool
}

// NewObjectWriter starts a part stream on c. partSize <= 0 picks
// DefaultPartSize.
func NewObjectWriter(c *Conn, partSize int) *ObjectWriter {
	if partSize <= 0 {
		partSize = DefaultPartSize
	}
	var buf []byte
	if p := c.bufferPool(); p != nil {
		buf = p.Get(int64(partSize))
	} else {
		buf = make([]byte, partSize)
	}
	return &ObjectWriter{c: c, buf: buf}
}

// Write implements io.Writer, shipping a part each time the buffer
// fills.
func (w *ObjectWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("wire: write on closed object stream")
	}
	total := 0
	for len(p) > 0 {
		if w.n == len(w.buf) {
			if err := w.flush(false); err != nil {
				return total, err
			}
		}
		n := copy(w.buf[w.n:], p)
		w.n += n
		p = p[n:]
		total += n
	}
	return total, nil
}

// flush ships the buffered bytes as one KindObjectPart frame. Seq is
// 1-based; Off is the cumulative byte offset of this part's first
// byte.
func (w *ObjectWriter) flush(last bool) error {
	w.seq++
	m := &Message{Kind: KindObjectPart, Seq: w.seq, Off: w.off, Data: w.buf[:w.n], Last: last}
	w.off += int64(w.n)
	w.n = 0
	return w.c.Send(m)
}

// Close flushes the final (Last) part and recycles the part buffer.
// It must be called exactly once, before the terminal message.
func (w *ObjectWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.flush(true)
	if p := w.c.bufferPool(); p != nil {
		p.Put(w.buf)
	}
	w.buf = nil
	return err
}

// Frames reports how many parts were shipped so far.
func (w *ObjectWriter) Frames() int { return w.seq }

// Bytes reports the total object bytes shipped so far.
func (w *ObjectWriter) Bytes() int64 { return w.off }

// ObjectStream is the receiving half: it bridges arriving
// KindObjectPart messages into an io.Reader so a decoder can consume
// the object incrementally, overlapping decode with the transfer
// still in flight. Feed runs on the connection's receive loop; the
// decoder reads from Reader() on its own goroutine. The bridge is an
// in-memory pipe, so a slow decoder backpressures the feeder (and,
// through TCP, the sender) instead of buffering the whole object.
type ObjectStream struct {
	pr *io.PipeReader
	pw *io.PipeWriter

	nextSeq int
	off     int64
	frames  int
}

// NewObjectStream opens an empty stream awaiting its first part.
func NewObjectStream() *ObjectStream {
	pr, pw := io.Pipe()
	return &ObjectStream{pr: pr, pw: pw, nextSeq: 1}
}

// Reader returns the decode side of the bridge. Reads block until
// Feed delivers bytes; EOF surfaces after the Last part, and an Abort
// (or out-of-order part) surfaces as that error.
func (s *ObjectStream) Reader() io.Reader { return s.pr }

// Feed consumes one KindObjectPart. It returns done=true once the
// Last part has been delivered (the reader will see EOF after
// draining). Out-of-order or misaligned parts poison the stream: the
// reader fails with the returned error.
func (s *ObjectStream) Feed(m *Message) (done bool, err error) {
	if m.Kind != KindObjectPart {
		return false, fmt.Errorf("wire: fed %v into object stream", m.Kind)
	}
	if m.Seq != s.nextSeq || m.Off != s.off {
		err := fmt.Errorf("wire: object part out of order: seq=%d off=%d, want seq=%d off=%d",
			m.Seq, m.Off, s.nextSeq, s.off)
		s.pw.CloseWithError(err)
		return false, err
	}
	s.nextSeq++
	s.frames++
	if len(m.Data) > 0 {
		if _, werr := s.pw.Write(m.Data); werr != nil {
			// The decode side closed early (decode error); surface it so
			// the feeder stops pushing into a dead pipe.
			return false, werr
		}
		s.off += int64(len(m.Data))
	}
	if m.Last {
		s.pw.Close()
		return true, nil
	}
	return false, nil
}

// Abort poisons both ends of the bridge: pending and future reads and
// feeds fail with err.
func (s *ObjectStream) Abort(err error) {
	s.pw.CloseWithError(err)
	s.pr.CloseWithError(err)
}

// Frames reports how many parts were fed so far.
func (s *ObjectStream) Frames() int { return s.frames }

// Bytes reports the total object bytes fed so far.
func (s *ObjectStream) Bytes() int64 { return s.off }
