package wire

import (
	"net"
	"testing"
)

func benchPair(b *testing.B) (*Conn, *Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	server := <-accepted
	b.Cleanup(func() { client.Close(); server.Close() })
	return NewConn(client), NewConn(server)
}

// BenchmarkCallSmall measures one control round trip (a job request).
func BenchmarkCallSmall(b *testing.B) {
	a, s := benchPair(b)
	go func() {
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
			grant := wireGrant()
			s.Send(&grant)
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(&Message{Kind: KindRequestJob, Max: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func wireGrant() Message {
	return Message{Kind: KindJobGrant, Jobs: []JobAssign{{Chunk: 1, File: "f", Length: 131072}}}
}

// BenchmarkSendLargeObject measures shipping a pagerank-sized
// reduction object (600 KB) through the framed codec.
func BenchmarkSendLargeObject(b *testing.B) {
	a, s := benchPair(b)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 600<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(&Message{Kind: KindClusterResult, Object: payload}); err != nil {
			b.Fatal(err)
		}
	}
}
