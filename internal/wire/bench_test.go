package wire

import (
	"net"
	"testing"
)

func benchPair(b *testing.B) (*Conn, *Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	server := <-accepted
	b.Cleanup(func() { client.Close(); server.Close() })
	return NewConn(client), NewConn(server)
}

// BenchmarkCallSmall measures one control round trip (a job request).
func BenchmarkCallSmall(b *testing.B) {
	a, s := benchPair(b)
	go func() {
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
			grant := wireGrant()
			s.Send(&grant)
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(&Message{Kind: KindRequestJob, Max: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func wireGrant() Message {
	return Message{Kind: KindJobGrant, Jobs: []JobAssign{{Chunk: 1, File: "f", Length: 131072}}}
}

// BenchmarkSendLargeObject measures shipping a pagerank-sized
// reduction object (600 KB) through the framed codec.
func BenchmarkSendLargeObject(b *testing.B) {
	a, s := benchPair(b)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 600<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(&Message{Kind: KindClusterResult, Object: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGrant is the codec benchmark message: a realistic job grant
// with a batch of jobs and piggybacked prefetch hints.
func benchGrant() *Message {
	m := &Message{Kind: KindJobGrant}
	for i := int32(0); i < 8; i++ {
		m.Jobs = append(m.Jobs, JobAssign{
			Chunk: i, File: "data-0003.bin", Offset: int64(i) * 131072,
			Length: 131072, Units: 4096, HomeSite: "cloud", Stolen: i%2 == 0,
		})
		m.Hints = append(m.Hints, JobAssign{
			Chunk: 100 + i, File: "data-0004.bin", Offset: int64(i) * 131072,
			Length: 131072, Units: 4096, HomeSite: "cloud",
		})
	}
	return m
}

// BenchmarkEncodeDecode measures a pure in-memory encode+decode round
// trip per codec — the microbench behind BENCH_wire.json.
func BenchmarkEncodeDecode(b *testing.B) {
	msgs := map[string]*Message{
		"jobgrant": benchGrant(),
		"readresp": {Kind: KindReadResp, Data: make([]byte, 256<<10)},
	}
	for name, m := range msgs {
		for _, codec := range []Codec{CodecBinary, CodecGob} {
			b.Run(name+"/"+codec.String(), func(b *testing.B) {
				b.ReportAllocs()
				var buf []byte
				for i := 0; i < b.N; i++ {
					var err error
					buf, err = Encode(buf[:0], m, codec)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := Decode(buf, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
