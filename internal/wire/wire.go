// Package wire implements the framed message protocol spoken between
// every pair of components in the system: head <-> master, master <->
// slave, and store client <-> store server. Messages are encoded with
// a hand-rolled binary codec (see codec.go; gob remains available as
// a tagged fallback) and carried in length-prefixed frames so that
// each logical message maps to a single write on the connection —
// which is what lets the netsim layer charge link latency per message
// burst the way a real request/response protocol would pay it.
//
// Encode buffers and frame payloads are recycled through an optional
// BufferSource (SetBufferPool), so the steady-state control plane
// allocates nothing per message and a chunk-read response lands in a
// pooled buffer instead of a fresh multi-megabyte allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cloudburst/internal/metrics"
)

// Kind discriminates protocol messages.
type Kind uint8

// Message kinds for the cluster protocol (head/master/slave) and the
// store protocol (client/server).
const (
	KindInvalid Kind = iota

	// Cluster protocol.
	KindRegisterMaster // master->head: Site, Cores
	KindRequestJobs    // master->head: Site, Max, Completed
	KindJobs           // head->master: Jobs, Done
	KindClusterResult  // master->head: Site, Object, Stats
	KindFinal          // head->master: Object (final reduction), Done
	KindRegisterSlave  // slave->master: Site, Cores
	KindRequestJob     // slave->master: Max, Completed
	KindJobGrant       // master->slave: Jobs, Done
	KindSlaveResult    // slave->master: Object, Stats
	KindAck            // generic acknowledgement
	KindError          // Err carries the message

	// Store protocol.
	KindReadAt   // client->server: File, Off, Len
	KindReadResp // server->client: Data (or Err)
	KindStat     // client->server: File
	KindStatResp // server->client: Len = size
	KindList     // client->server
	KindListResp // server->client: Files

	// Liveness. Heartbeats flow one way — from the requesting side
	// (slave->master, master->head) — and are never answered, so they
	// interleave safely with the strict request/response exchanges.
	KindHeartbeat

	// Elastic membership. KindJoin registers a late-joining slave
	// (elastic scale-up) and is answered like KindRegisterSlave.
	// KindDrain and KindScale are one-way pushes, like heartbeats:
	// KindDrain tells a slave to retire after its current grant, and
	// KindScale tells a master the head's new worker-count target for
	// its site. Receivers absorb them between request/response pairs,
	// so every request still sees exactly one real response.
	KindJoin  // slave->master: Site, Cores (late registration)
	KindDrain // master->slave: retire after current grant (one-way)
	KindScale // head->master: Target workers for the site (one-way)

	// Spot preemption. KindPreemptWarn is a request, answered with
	// KindAck: the worker received a revocation warning and is starting
	// an accelerated drain, and the Ack guarantees the master has the
	// connection marked draining — end-of-run grants withheld from the
	// others — before any job is abandoned, so returned work can never
	// strand. The flush itself is a normal KindSlaveResult with
	// Returned. KindCheckpoint is a one-way push, absorbed like a
	// heartbeat: a sequence-numbered partial reduction (Object), the
	// cumulative chunk ids it covers (Completed), and the worker's
	// cumulative Stats. The master keeps only the newest per connection
	// and merges it exactly once — on slave loss — so the checkpoint
	// path stays idempotent against both delivered results and
	// re-execution.
	KindPreemptWarn // slave->master: accelerated drain starting (Ack'd)
	KindCheckpoint  // slave->master: Seq, Object, Completed, Stats (one-way)

	// Burst buffer. KindStage asks a site's buffer server to pull a
	// chunk from its backing store into the shared cache without
	// shipping the bytes back — the master's hint-driven pre-warming.
	// KindStageResp answers with Len = the bytes actually staged (0
	// when the chunk was already resident). A KindReadResp served by a
	// buffer additionally carries Hit, so clients can attribute the
	// read to the buffer tier vs. a backing fetch the buffer performed
	// on their behalf.
	KindStage     // client->server: File, Off, Len
	KindStageResp // server->client: Len = bytes staged (or Err)

	// Streamed object transfer. A reduction object too large to ship as
	// one frame travels as a run of KindObjectPart pushes — bounded
	// frames (~1 MiB, drawn from the connection's BufferPool) carrying
	// Seq (1-based part number), Off (cumulative bytes before this
	// part), Data, and Last on the final part — followed by the normal
	// terminal message (KindSlaveResult / KindClusterResult /
	// KindCheckpoint / KindFinal) with a nil Object. Parts are one-way,
	// absorbed like heartbeats by anything mid-request; the receiver
	// bridges them into an io.Reader (ObjectStream) and decodes the
	// object incrementally while later parts are still in flight, so a
	// ~300 MB pagerank object never needs a single 300 MB allocation or
	// frame on either side.
	KindObjectPart // Seq, Off, Data, Last (one-way)
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid", KindRegisterMaster: "register-master",
	KindRequestJobs: "request-jobs", KindJobs: "jobs",
	KindClusterResult: "cluster-result", KindFinal: "final",
	KindRegisterSlave: "register-slave", KindRequestJob: "request-job",
	KindJobGrant: "job-grant", KindSlaveResult: "slave-result",
	KindAck: "ack", KindError: "error", KindReadAt: "read-at",
	KindReadResp: "read-resp", KindStat: "stat", KindStatResp: "stat-resp",
	KindList: "list", KindListResp: "list-resp", KindHeartbeat: "heartbeat",
	KindJoin: "join", KindDrain: "drain", KindScale: "scale",
	KindPreemptWarn: "preempt-warn", KindCheckpoint: "checkpoint",
	KindStage: "stage", KindStageResp: "stage-resp",
	KindObjectPart: "object-part",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// JobAssign describes one chunk assigned for processing. It carries
// everything a slave needs to locate and read the chunk without
// consulting the index again.
type JobAssign struct {
	// Chunk is the global chunk/job id.
	Chunk int32
	// File is the data file name holding the chunk.
	File string
	// Offset and Length locate the chunk inside the file.
	Offset int64
	Length int64
	// Units is the number of data units in the chunk.
	Units int64
	// HomeSite names the site whose store holds File.
	HomeSite string
	// Stolen marks jobs assigned across sites (work stealing).
	Stolen bool
}

// Stats mirrors the per-worker metrics carried back up the tree at the
// end of a run.
type Stats struct {
	Breakdown metrics.Snapshot
	// IdleEmu is cluster end-of-run idle time (master->head only).
	IdleEmu int64 // time.Duration in ns; int64 keeps the varints compact
	// WallEmu is the sender's emulated wall time for the run.
	WallEmu int64
}

// Message is the single on-wire envelope. Only the fields relevant to
// a Kind are populated; the codec's presence bitmap makes absent
// fields free, so a single struct beats an interface registry for an
// internal protocol.
//
// For the slice fields, nil and empty are distinct on the wire: a
// non-nil empty slice is encoded as "present, zero elements" and
// decodes back to a non-nil empty slice. Protocol semantics ride on
// that distinction for Resident and Returned — an empty report
// ("cache drained", "drain returned nothing") is not the same as no
// report — which previously required explicit HasResident/HasReturned
// flags to survive gob's empty-slice collapsing.
type Message struct {
	Kind Kind

	Site      string
	Cores     int
	Max       int
	Completed []int32
	// Progress is an advisory cumulative count of slave-reported
	// completions at the sending site (KindRequestJobs and
	// KindClusterResult). Unlike Completed — withheld until a slave's
	// reduction object lands, so re-execution stays possible — it flows
	// continuously; the elastic controller needs a live progress signal
	// and tolerates its optimism about work a dying slave will redo.
	Progress int
	Jobs     []JobAssign
	Done     bool
	Object   []byte
	Stats    Stats

	// Hints piggybacks "likely next chunks" on a KindJobGrant: jobs the
	// master expects to hand this slave soon, so its prefetch pipeline
	// can warm the chunk cache deeper than the one granted batch. Hints
	// are advisory — the slave may drop any or all of them (byte budget,
	// cache disabled) and the master may grant the chunks elsewhere.
	Hints []JobAssign

	// Resident piggybacks cache-resident chunk ids upstream: slaves
	// attach the chunk ids currently warm in their cache to
	// KindRequestJob, masters fold the union into KindRequestJobs, and
	// the head steers work stealing away from chunks a victim already
	// has warm (stealing those would waste the victim's cache). A nil
	// slice means "no report" (cache disabled); a non-nil empty slice
	// is a real report of a drained cache and clears the stale warm
	// set upstream.
	Resident []int32

	// Drain marks a KindJobGrant sent to a retiring worker: no jobs
	// follow and the worker must flush its partial reduction. It exists
	// because the one-way KindDrain push can race a request already in
	// flight; flagging the response closes the window.
	Drain bool
	// Returned lists granted-but-unprocessed chunk ids a draining slave
	// hands back to its master for re-execution elsewhere. Completions
	// in the same message stand (the partial reduction was flushed);
	// Returned jobs were never folded in. A non-nil Returned — even
	// empty ("I finished everything I was granted") — marks a drain
	// result; nil marks a normal end-of-run result.
	Returned []int32
	// Target is the desired worker count on a KindScale push.
	Target int

	// Seq orders a connection's KindCheckpoint pushes: the master keeps
	// only the highest sequence seen, so a reordered or duplicated
	// checkpoint can never roll a newer partial reduction back.
	Seq int
	// HintWasteChunks / HintWasteBytes piggyback the slave's current
	// hint-waste ledger (chunks warmed on a master hint but never
	// granted to any of its workers) on KindRequestJob, closing the
	// hint-quality feedback loop: a master seeing a slave's waste climb
	// shrinks that connection's effective hint depth. Zero means "no
	// waste", which is also the harmless reading of "no report".
	HintWasteChunks int
	HintWasteBytes  int64

	File string
	Off  int64
	Len  int64
	Data []byte

	Files []string
	Err   string

	// Hit marks a KindReadResp that a site buffer served from its
	// resident cache rather than by fetching from the backing store;
	// clients use it for per-tier retrieval accounting.
	Hit bool

	// Last marks the final KindObjectPart of a streamed object. Seq and
	// Off (shared with the checkpoint/store fields above) order and
	// position the parts; an empty-Data Last part is legal and
	// terminates a zero-length object.
	Last bool
}

// MaxFrame bounds a single frame; larger frames indicate corruption.
// SetMaxFrame lowers the bound per connection.
const MaxFrame = 1 << 30

// recvProbe is how much of a large frame Recv reads before committing
// the full allocation: a corrupted 4-byte header can claim up to the
// frame cap, so the receiver proves the peer is actually streaming a
// body before paying for one.
const recvProbe = 256 << 10

// scratchMax caps the per-connection encode/decode scratch buffers
// retained between messages when no BufferSource is configured.
const scratchMax = 1 << 20

// Conn wraps a net.Conn with framed binary message I/O. Reads and
// writes are independently serialized, so one goroutine may read while
// another writes, but concurrent writers queue behind a mutex to keep
// frames intact.
type Conn struct {
	c net.Conn

	// idle and writeTimeout arm per-operation deadlines (stall
	// detection); they are stored atomically so a heartbeater may run
	// while the owner reconfigures.
	idle         atomic.Int64 // read deadline per Recv, ns; 0 = none
	writeTimeout atomic.Int64 // write deadline per Send, ns; 0 = none
	maxFrame     atomic.Int64 // per-conn frame cap; 0 = MaxFrame

	pool atomic.Pointer[poolBox]

	wmu  sync.Mutex
	wbuf []byte // encode scratch when no pool is set; guarded by wmu
	rmu  sync.Mutex
	rbuf []byte // frame scratch when no pool is set; guarded by rmu
}

// poolBox wraps the BufferSource interface for atomic swapping.
type poolBox struct{ p BufferSource }

// NewConn wraps c.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// SetBufferPool installs a buffer recycler: Send draws its encode
// buffer from p and returns it after the write, and Recv draws frame
// payloads (and the Data/Object buffers that outlive them) from p,
// returning the frame the moment decoding finishes.
func (c *Conn) SetBufferPool(p BufferSource) {
	if p == nil {
		c.pool.Store(nil)
		return
	}
	c.pool.Store(&poolBox{p: p})
}

func (c *Conn) bufferPool() BufferSource {
	if b := c.pool.Load(); b != nil {
		return b.p
	}
	return nil
}

// Recycle hands a buffer decoded by Recv (Message.Data or .Object)
// back to the connection's pool once the caller is done with it. A
// no-op without a pool.
func (c *Conn) Recycle(buf []byte) {
	if p := c.bufferPool(); p != nil {
		p.Put(buf)
	}
}

// SetIdleTimeout arms a read deadline of d on every subsequent Recv: a
// peer that stays silent (or stalls mid-frame) for longer than d makes
// Recv fail with a timeout error instead of hanging forever. Zero
// disables the deadline.
func (c *Conn) SetIdleTimeout(d time.Duration) { c.idle.Store(int64(d)) }

// SetWriteTimeout arms a write deadline of d on every subsequent Send,
// so a peer that stops draining its socket cannot wedge the sender.
// Zero disables the deadline.
func (c *Conn) SetWriteTimeout(d time.Duration) { c.writeTimeout.Store(int64(d)) }

// SetMaxFrame lowers this connection's frame-size cap below the
// package MaxFrame: peers whose messages are known small (the control
// plane) can reject a corrupt header before it demands a large read.
// Zero or negative restores the default.
func (c *Conn) SetMaxFrame(n int) {
	if n < 0 {
		n = 0
	}
	c.maxFrame.Store(int64(n))
}

func (c *Conn) frameCap() int {
	if v := c.maxFrame.Load(); v > 0 && v < MaxFrame {
		return int(v)
	}
	return MaxFrame
}

// IsTimeout reports whether err is a deadline-exceeded (stall) error,
// as opposed to a closed or reset connection.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// RemoteError is returned by Call when the peer answered with
// KindError: the request reached the other side and was rejected
// there, which callers classify differently from a transport failure.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// Heartbeats starts a goroutine that sends KindHeartbeat on c every
// interval until the returned stop function is called or a send fails.
// Heartbeats are one-way: the receiver resets its idle deadline and
// discards them, so they coexist with request/response traffic (frame
// writes are serialized by the connection's write mutex).
func Heartbeats(c *Conn, interval time.Duration) (stop func()) {
	return HeartbeatsWith(c, interval, nil)
}

// HeartbeatsWith is Heartbeats with a logger. A sender that dies on a
// failed send is otherwise silent until the peer's idle deadline
// declares this side lost, so the death is counted through
// metrics.HeartbeatSenderStops and logged when logf is non-nil.
func HeartbeatsWith(c *Conn, interval time.Duration, logf func(string, ...any)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := c.Send(&Message{Kind: KindHeartbeat}); err != nil {
					select {
					case <-done:
						// Deliberate teardown racing the ticker: the owner
						// already stopped us, not a silent death.
					default:
						metrics.CountHeartbeatSenderStop()
						if logf != nil {
							logf("wire: heartbeat sender to %v stopped: %v", c.RemoteAddr(), err)
						}
					}
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Send encodes m and writes it as one frame (one underlying write).
// The encode buffer comes from the connection's pool (or a retained
// scratch buffer), so the steady state allocates nothing.
func (c *Conn) Send(m *Message) error {
	codec := DefaultCodec()
	c.wmu.Lock()
	defer c.wmu.Unlock()

	pool := c.bufferPool()
	var buf []byte
	pooled := false
	if codec == CodecBinary && pool != nil {
		// MaxEncodedSize is a strict upper bound, so the append below
		// never outgrows the pooled buffer and Put always recycles it.
		buf = pool.Get(int64(4 + MaxEncodedSize(m)))[:4]
		pooled = true
	} else if cap(c.wbuf) >= 4 {
		buf = c.wbuf[:4]
	} else {
		buf = make([]byte, 4, 4096)
	}

	buf, err := Encode(buf, m, codec)
	if err != nil {
		return err
	}
	release := func() {
		if pooled {
			pool.Put(buf)
		} else if cap(buf) <= scratchMax {
			c.wbuf = buf[:0]
		}
	}
	payload := len(buf) - 4
	if payload > c.frameCap() {
		release()
		return fmt.Errorf("wire: frame too large: %d", payload)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(payload))

	if d := c.writeTimeout.Load(); d > 0 {
		c.c.SetWriteDeadline(time.Now().Add(time.Duration(d)))
	}
	_, werr := c.c.Write(buf)
	release()
	if werr != nil {
		return fmt.Errorf("wire: write %v: %w", m.Kind, werr)
	}
	return nil
}

// Recv reads the next frame and decodes it. The frame buffer is
// recycled immediately; the returned Message owns all its memory
// (Data and Object live in pooled buffers when a pool is set — hand
// them back with Recycle when done).
func (c *Conn) Recv() (*Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if d := c.idle.Load(); d > 0 {
		c.c.SetReadDeadline(time.Now().Add(time.Duration(d)))
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > c.frameCap() {
		return nil, fmt.Errorf("wire: oversized frame: %d", n)
	}
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	pool := c.bufferPool()
	payload, err := c.readPayload(n, pool)
	if err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	m, derr := Decode(payload, pool)
	// The decoded message copies everything it keeps, so the frame
	// buffer goes straight back into circulation.
	if pool != nil {
		pool.Put(payload)
	} else if cap(payload) > cap(c.rbuf) && cap(payload) <= scratchMax {
		c.rbuf = payload[:0]
	}
	if derr != nil {
		return nil, derr
	}
	return m, nil
}

// readPayload reads an n-byte frame body. Frames larger than
// recvProbe are read incrementally: the full allocation is only
// committed after the first recvProbe bytes actually arrive, bounding
// what a corrupted length header can cost.
func (c *Conn) readPayload(n int, pool BufferSource) ([]byte, error) {
	get := func(sz int) []byte {
		if pool != nil {
			return pool.Get(int64(sz))
		}
		if cap(c.rbuf) >= sz {
			return c.rbuf[:sz]
		}
		return make([]byte, sz)
	}
	if n <= recvProbe {
		buf := get(n)
		if _, err := io.ReadFull(c.c, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	probe := get(recvProbe)
	if _, err := io.ReadFull(c.c, probe); err != nil {
		return nil, err
	}
	var full []byte
	if pool != nil {
		full = pool.Get(int64(n))
	} else {
		full = make([]byte, n)
	}
	copy(full, probe)
	if pool != nil {
		pool.Put(probe)
	} else if cap(probe) > cap(c.rbuf) {
		c.rbuf = probe[:0]
	}
	if _, err := io.ReadFull(c.c, full[recvProbe:]); err != nil {
		return nil, err
	}
	return full, nil
}

// Call sends m and waits for the next message, a convenience for
// strict request/response exchanges on a connection owned by one
// goroutine.
func (c *Conn) Call(m *Message) (*Message, error) {
	if err := c.Send(m); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if resp.Kind == KindError {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return resp, nil
}
