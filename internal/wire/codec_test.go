package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"cloudburst/internal/metrics"
)

// fullMessage returns a message with every field populated — the
// worst case for both codecs and the base for the presence-bit table.
func fullMessage() *Message {
	return &Message{
		Kind:  KindJobGrant,
		Site:  "cloud",
		Cores: 8,
		Max:   4,
		Completed: []int32{1, -2, 1 << 30},
		Progress:  77,
		Jobs: []JobAssign{
			{Chunk: 7, File: "data-03.bin", Offset: 4096, Length: 65536, Units: 2048, HomeSite: "cloud", Stolen: true},
			{Chunk: 8, File: "data-03.bin", Offset: 69632, Length: 65536, Units: 2048, HomeSite: "local"},
		},
		Done:   true,
		Object: []byte{1, 2, 3},
		Stats: Stats{
			Breakdown: metrics.Snapshot{
				Processing: 90 * time.Second, Retrieval: 30 * time.Second,
				JobsProcessed: 480, BytesRead: 60 << 20, PoolGets: 123,
				PreemptDrains: 2,
			},
			IdleEmu: int64(16 * time.Second),
			WallEmu: int64(125 * time.Second),
		},
		Hints: []JobAssign{
			{Chunk: 9, File: "data-04.bin", Offset: 0, Length: 65536, Units: 2048, HomeSite: "cloud"},
		},
		Resident:        []int32{3, 5},
		Drain:           true,
		Returned:        []int32{11},
		Target:          6,
		Seq:             42,
		HintWasteChunks: 5,
		HintWasteBytes:  5 << 16,
		File:            "data-00.bin",
		Off:             1 << 40,
		Len:             256 << 10,
		Data:            []byte("payload bytes"),
		Files:           []string{"data-00.bin", "data-01.bin"},
		Err:             "remote: example failure",
		Hit:             true,
		Last:            true,
	}
}

func roundTrip(t *testing.T, m *Message, codec Codec) *Message {
	t.Helper()
	enc, err := Encode(nil, m, codec)
	if err != nil {
		t.Fatalf("encode (%v): %v", codec, err)
	}
	got, err := Decode(enc, nil)
	if err != nil {
		t.Fatalf("decode (%v): %v", codec, err)
	}
	return got
}

// TestCodecRoundTripEveryKind sends a fully populated message under
// every protocol Kind through both codecs; every field must survive
// bit-exactly, including the nil/empty slice distinction.
func TestCodecRoundTripEveryKind(t *testing.T) {
	for k := KindInvalid; k <= KindStageResp; k++ {
		for _, codec := range []Codec{CodecBinary, CodecGob} {
			m := fullMessage()
			m.Kind = k
			if got := roundTrip(t, m, codec); !reflect.DeepEqual(got, m) {
				t.Fatalf("kind %v codec %v mismatch:\n got %+v\nwant %+v", k, codec, got, m)
			}
		}
	}
}

// presenceCases maps each presence bit to a mutation that sets only
// that field. The table drives single-bit coverage: each field round
// trips alone, so a mis-ordered encode/decode pair cannot hide behind
// a neighbouring field.
var presenceCases = map[string]func(*Message){
	"Site":            func(m *Message) { m.Site = "local" },
	"Cores":           func(m *Message) { m.Cores = -3 },
	"Max":             func(m *Message) { m.Max = 12 },
	"Completed":       func(m *Message) { m.Completed = []int32{9} },
	"Progress":        func(m *Message) { m.Progress = 1 },
	"Jobs":            func(m *Message) { m.Jobs = []JobAssign{{Chunk: 1, File: "f", HomeSite: "s"}} },
	"Done":            func(m *Message) { m.Done = true },
	"Object":          func(m *Message) { m.Object = []byte{0xff} },
	"Stats":           func(m *Message) { m.Stats = Stats{WallEmu: 9} },
	"Hints":           func(m *Message) { m.Hints = []JobAssign{{Chunk: 2}} },
	"Resident":        func(m *Message) { m.Resident = []int32{} },
	"Drain":           func(m *Message) { m.Drain = true },
	"Returned":        func(m *Message) { m.Returned = []int32{} },
	"Target":          func(m *Message) { m.Target = 4 },
	"Seq":             func(m *Message) { m.Seq = 17 },
	"HintWasteChunks": func(m *Message) { m.HintWasteChunks = 2 },
	"HintWasteBytes":  func(m *Message) { m.HintWasteBytes = 1 << 33 },
	"File":            func(m *Message) { m.File = "data-09.bin" },
	"Off":             func(m *Message) { m.Off = -1 },
	"Len":             func(m *Message) { m.Len = 1 << 50 },
	"Data":            func(m *Message) { m.Data = []byte{} },
	"Files":           func(m *Message) { m.Files = []string{} },
	"Err":             func(m *Message) { m.Err = "boom" },
	"Hit":             func(m *Message) { m.Hit = true },
	"Last":            func(m *Message) { m.Last = true },
}

// TestCodecRoundTripPresenceBits covers each presence bit in
// isolation, the all-bits message, and the empty message, under both
// codecs. The single-field cases use empty non-nil slices where
// protocol semantics ride on the distinction.
func TestCodecRoundTripPresenceBits(t *testing.T) {
	if want := len(presenceCases); want != 25 {
		t.Fatalf("presence table covers %d fields, want 25 (update with the Message struct)", want)
	}
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		for name, set := range presenceCases {
			m := &Message{Kind: KindAck}
			set(m)
			if got := roundTrip(t, m, codec); !reflect.DeepEqual(got, m) {
				t.Fatalf("field %s codec %v mismatch:\n got %+v\nwant %+v", name, codec, got, m)
			}
		}
		empty := &Message{Kind: KindHeartbeat}
		if got := roundTrip(t, empty, codec); !reflect.DeepEqual(got, empty) {
			t.Fatalf("empty message codec %v mismatch: %+v", codec, got)
		}
		full := fullMessage()
		if got := roundTrip(t, full, codec); !reflect.DeepEqual(got, full) {
			t.Fatalf("full message codec %v mismatch:\n got %+v\nwant %+v", codec, got, full)
		}
	}
}

// TestSnapshotFieldsAreIntKinds guards the reflection-based Stats
// encoding: every metrics.Snapshot field must be an integer kind
// (int, int64, time.Duration) or the codec cannot carry it.
func TestSnapshotFieldsAreIntKinds(t *testing.T) {
	rt := reflect.TypeOf(metrics.Snapshot{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		default:
			t.Fatalf("metrics.Snapshot.%s is %v; the wire codec only carries integer counters — extend encoder.stats before adding this field", f.Name, f.Type)
		}
	}
}

// TestMaxEncodedSizeIsUpperBound: Send relies on MaxEncodedSize being
// a strict bound so the pooled encode buffer never reallocates.
func TestMaxEncodedSizeIsUpperBound(t *testing.T) {
	msgs := []*Message{
		{Kind: KindHeartbeat},
		fullMessage(),
		{Kind: KindReadResp, Data: make([]byte, 256<<10)},
		{Kind: KindListResp, Files: []string{"a", "b", "c", strings.Repeat("x", 300)}},
	}
	for name, set := range presenceCases {
		m := &Message{Kind: KindAck}
		set(m)
		_ = name
		msgs = append(msgs, m)
	}
	for _, m := range msgs {
		enc, err := Encode(nil, m, CodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) > MaxEncodedSize(m) {
			t.Fatalf("kind %v: encoded %d bytes > MaxEncodedSize %d", m.Kind, len(enc), MaxEncodedSize(m))
		}
	}
}

// TestStringDictionaryDedupes: repeated file/site names across a
// multi-job grant must be encoded once; decode restores them exactly.
func TestStringDictionaryDedupes(t *testing.T) {
	file := "data-shared-0001.bin"
	grant := &Message{Kind: KindJobGrant}
	lone := &Message{Kind: KindJobGrant}
	for i := int32(0); i < 16; i++ {
		grant.Jobs = append(grant.Jobs, JobAssign{Chunk: i, File: file, HomeSite: "cloud"})
		lone.Jobs = append(lone.Jobs, JobAssign{Chunk: i, File: file, HomeSite: "cloud"})
		lone.Jobs[i].File = strings.Repeat("u", 10) + string(rune('a'+i)) + file
	}
	encShared, _ := Encode(nil, grant, CodecBinary)
	encUnique, _ := Encode(nil, lone, CodecBinary)
	if len(encShared) >= len(encUnique)-10*16 {
		t.Fatalf("dictionary not deduplicating: shared=%dB unique=%dB", len(encShared), len(encUnique))
	}
	if got := roundTrip(t, grant, CodecBinary); !reflect.DeepEqual(got, grant) {
		t.Fatalf("dictionary round trip mismatch")
	}
}

// TestDecodeRejectsCorruption: structural corruption must produce an
// error, not garbage or a panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid, err := Encode(nil, fullMessage(), CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"tag only":        {byte(CodecBinary)},
		"unknown tag":     {0x7f, 0x00, 0x00},
		"truncated":       valid[:len(valid)/2],
		"trailing bytes":  append(append([]byte{}, valid...), 0xaa),
		"unknown presence bit": {byte(CodecBinary), byte(KindAck), 0xff, 0xff, 0xff, 0x7f},
		"huge slice count": {byte(CodecBinary), byte(KindRequestJob),
			byte(bitCompleted), 0xff, 0xff, 0xff, 0x7f},
	}
	for name, payload := range cases {
		if _, err := Decode(payload, nil); err == nil {
			t.Fatalf("%s: decode accepted corrupt payload", name)
		}
	}
}

// TestCodecInterop: a receiver auto-detects the payload codec from
// the frame tag, so senders on different codecs interoperate on one
// connection — the deployment story for the gob escape hatch.
func TestCodecInterop(t *testing.T) {
	a, b := connPair(t)
	want := fullMessage()
	for _, codec := range []Codec{CodecGob, CodecBinary, CodecGob} {
		SetDefaultCodec(codec)
		if err := a.Send(want); err != nil {
			SetDefaultCodec(CodecBinary)
			t.Fatal(err)
		}
		got, err := b.Recv()
		if err != nil {
			SetDefaultCodec(CodecBinary)
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			SetDefaultCodec(CodecBinary)
			t.Fatalf("codec %v interop mismatch", codec)
		}
	}
	SetDefaultCodec(CodecBinary)
}

// countingPool is a BufferSource test double (wire cannot import
// store without a cycle); it tracks gets/puts and serves fresh
// buffers.
type countingPool struct {
	gets, puts int
	last       []byte
}

func (p *countingPool) Get(n int64) []byte { p.gets++; return make([]byte, n) }
func (p *countingPool) Put(buf []byte)     { p.puts++; p.last = buf }

// TestPooledSendRecvRoundTrip: with a pool installed on both ends,
// messages still round trip exactly, frames are recycled, and the
// decoded Data buffer is owned by the message (mutating the pool's
// recycled buffer must not corrupt it).
func TestPooledSendRecvRoundTrip(t *testing.T) {
	a, b := connPair(t)
	ap, bp := &countingPool{}, &countingPool{}
	a.SetBufferPool(ap)
	b.SetBufferPool(bp)
	want := fullMessage()
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pooled round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if ap.gets == 0 || ap.puts == 0 {
		t.Fatalf("sender pool unused: %+v", ap)
	}
	if bp.gets == 0 || bp.puts == 0 {
		t.Fatalf("receiver pool unused: %+v", bp)
	}
	// The frame buffer was recycled; scribble over it and confirm the
	// message's Data survived (it owns its own pooled buffer).
	for i := range bp.last {
		bp.last[i] = 0xEE
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatal("decoded Data aliases the recycled frame buffer")
	}
	b.Recycle(got.Data)
	if bp.puts < 2 {
		t.Fatalf("Recycle did not return the Data buffer: %+v", bp)
	}
}

// TestLargeFrameIncrementalRead: frames beyond the recvProbe
// threshold take the two-step read path and must still arrive intact.
func TestLargeFrameIncrementalRead(t *testing.T) {
	a, b := connPair(t)
	data := make([]byte, recvProbe+recvProbe/2)
	for i := range data {
		data[i] = byte(i * 31)
	}
	want := &Message{Kind: KindReadResp, Data: data}
	errc := make(chan error, 1)
	go func() { errc <- a.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatal("large frame corrupted on the incremental read path")
	}
}

// TestSetMaxFrameRejectsOversized: a per-connection cap must reject a
// frame the package-wide MaxFrame would admit.
func TestSetMaxFrameRejectsOversized(t *testing.T) {
	a, b := connPair(t)
	b.SetMaxFrame(1024)
	errc := make(chan error, 1)
	go func() { errc <- a.Send(&Message{Kind: KindReadResp, Data: make([]byte, 4096)}) }()
	if _, err := b.Recv(); err == nil || !strings.Contains(err.Error(), "oversized") {
		t.Fatalf("err = %v, want oversized-frame rejection", err)
	}
	<-errc // sender may or may not error depending on close timing
}
