package wire

import (
	"reflect"
	"testing"
)

// FuzzDecode exercises the decoder with arbitrary payloads: corrupted
// or truncated frames must return an error — never panic, never
// over-allocate (the decoder bounds every length claim against the
// remaining bytes). Valid payloads must re-encode to a message that
// round trips stably.
func FuzzDecode(f *testing.F) {
	seeds := []*Message{
		{Kind: KindHeartbeat},
		fullMessage(),
		{Kind: KindReadResp, Data: []byte("0123456789abcdef")},
		{Kind: KindRequestJob, Resident: []int32{}, HintWasteChunks: 3},
		{Kind: KindSlaveResult, Returned: []int32{1, 2}, Object: []byte{9}},
		{Kind: KindListResp, Files: []string{"a.bin", "b.bin"}},
		// Streamed object transfer: a mid-stream part and an empty
		// terminal part (how zero-length objects end their streams).
		{Kind: KindObjectPart, Seq: 1, Off: 0, Data: []byte("first part bytes")},
		{Kind: KindObjectPart, Seq: 3, Off: 2 << 20, Last: true},
	}
	for _, m := range seeds {
		for _, codec := range []Codec{CodecBinary, CodecGob} {
			enc, err := Encode(nil, m, codec)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(enc)
			f.Add(enc[:len(enc)/2]) // truncation
		}
	}
	f.Add([]byte{})
	f.Add([]byte{byte(CodecBinary), byte(KindAck), 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Decode(payload, nil)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		// Accepted payloads must describe a message the encoder can
		// reproduce, and the reproduction must decode to the same value
		// (a stable fixed point — guards against fields the decoder
		// accepts but the encoder cannot express).
		enc, err := Encode(nil, m, CodecBinary)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := Decode(enc, nil)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip not stable:\n first %+v\nsecond %+v", m, m2)
		}
	})
}
