package wire

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cloudburst/internal/metrics"
)

func connPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var server net.Conn
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	t.Cleanup(func() { client.Close(); server.Close() })
	return NewConn(client), NewConn(server)
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b := connPair(t)
	want := &Message{
		Kind:  KindJobs,
		Site:  "local",
		Cores: 16,
		Jobs: []JobAssign{
			{Chunk: 7, File: "data-03.bin", Offset: 4096, Length: 65536, Units: 2048, HomeSite: "cloud", Stolen: true},
			{Chunk: 8, File: "data-03.bin", Offset: 69632, Length: 65536, Units: 2048, HomeSite: "cloud"},
		},
		Done:   false,
		Object: []byte{1, 2, 3, 4},
	}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEmptyResidentReportSurvivesCodec(t *testing.T) {
	// An empty residency report ("cache enabled but drained") must stay
	// distinguishable from no report at all (nil, cache disabled):
	// without the distinction a drained cache could never clear its
	// stale warm set upstream. The codec's presence bits carry it for
	// both the binary format and the gob fallback.
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			SetDefaultCodec(codec)
			defer SetDefaultCodec(CodecBinary)
			a, b := connPair(t)
			if err := a.Send(&Message{Kind: KindRequestJob, Resident: []int32{}}); err != nil {
				t.Fatal(err)
			}
			got, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got.Resident == nil {
				t.Fatal("non-nil empty Resident report collapsed to nil in transit")
			}
			if len(got.Resident) != 0 {
				t.Fatalf("Resident = %v, want empty", got.Resident)
			}

			// And the inverse: nil must stay nil, not become empty.
			if err := a.Send(&Message{Kind: KindRequestJob}); err != nil {
				t.Fatal(err)
			}
			if got, err = b.Recv(); err != nil {
				t.Fatal(err)
			}
			if got.Resident != nil {
				t.Fatalf("nil Resident became %v in transit", got.Resident)
			}
		})
	}
}

func TestCallRequestResponse(t *testing.T) {
	a, b := connPair(t)
	go func() {
		req, err := b.Recv()
		if err != nil {
			return
		}
		b.Send(&Message{Kind: KindStatResp, Len: 12345, File: req.File})
	}()
	resp, err := a.Call(&Message{Kind: KindStat, File: "data-00.bin"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Len != 12345 || resp.File != "data-00.bin" {
		t.Fatalf("bad response: %+v", resp)
	}
}

func TestCallSurfacesRemoteError(t *testing.T) {
	a, b := connPair(t)
	go func() {
		b.Recv()
		b.Send(&Message{Kind: KindError, Err: "no such file"})
	}()
	_, err := a.Call(&Message{Kind: KindStat, File: "missing"})
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentSendersFramesIntact(t *testing.T) {
	a, b := connPair(t)
	const senders = 8
	const perSender = 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				msg := &Message{Kind: KindAck, Cores: id, Max: j, Data: make([]byte, 1000+id)}
				if err := a.Send(msg); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	got := 0
	recvDone := make(chan error, 1)
	go func() {
		for got < senders*perSender {
			m, err := b.Recv()
			if err != nil {
				recvDone <- err
				return
			}
			if m.Kind != KindAck || len(m.Data) != 1000+m.Cores {
				recvDone <- &net.AddrError{Err: "corrupt frame", Addr: ""}
				return
			}
			got++
		}
		recvDone <- nil
	}()
	wg.Wait()
	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver stalled")
	}
}

func TestRecvAfterCloseErrors(t *testing.T) {
	a, b := connPair(t)
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv on closed conn should fail")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	a, b := connPair(t)
	want := &Message{
		Kind: KindClusterResult,
		Site: "cloud",
		Stats: Stats{
			Breakdown: metrics.Snapshot{
				Processing:    90 * time.Second,
				Retrieval:     30 * time.Second,
				Sync:          5 * time.Second,
				JobsProcessed: 480,
				JobsStolen:    64,
				UnitsReduced:  1 << 20,
				BytesRead:     60 << 20,
				BytesRemote:   20 << 20,
			},
			IdleEmu: int64(16 * time.Second),
			WallEmu: int64(125 * time.Second),
		},
	}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("stats mismatch:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	// The checkpoint push carries the ordering sequence, the encoded
	// partial reduction, and its cumulative covered set; the hint-waste
	// ledger rides the same struct on KindRequestJob. All must survive
	// the codec exactly — a dropped Seq would let a stale checkpoint
	// roll a newer one back.
	a, b := connPair(t)
	want := &Message{
		Kind:      KindCheckpoint,
		Seq:       7,
		Object:    []byte{9, 8, 7},
		Completed: []int32{3, 1, 12},
		Stats: Stats{
			Breakdown: metrics.Snapshot{JobsProcessed: 3, Checkpoints: 7},
		},
		HintWasteChunks: 5,
		HintWasteBytes:  5 << 16,
	}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestKindString(t *testing.T) {
	if KindJobs.String() != "jobs" {
		t.Errorf("KindJobs = %q", KindJobs)
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Errorf("unknown kind = %q", Kind(200))
	}
}

// Property: any message with random payload fields survives the frame
// codec bit-exactly.
func TestMessageRoundTripProperty(t *testing.T) {
	a, b := connPair(t)
	f := func(site string, cores int32, data []byte, done bool, chunk int32, off int64) bool {
		want := &Message{
			Kind: KindReadResp, Site: site, Cores: int(cores), Data: data, Done: done,
			Jobs: []JobAssign{{Chunk: chunk, Offset: off}},
		}
		if err := a.Send(want); err != nil {
			return false
		}
		got, err := b.Recv()
		if err != nil {
			return false
		}
		// The binary codec preserves nil vs. empty exactly — no
		// normalization needed.
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	a, b := connPair(t)
	// Hand-craft a bogus header claiming a > MaxFrame frame.
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	go a.c.Write(raw)
	if _, err := b.Recv(); err == nil || !strings.Contains(err.Error(), "oversized") {
		t.Fatalf("err = %v", err)
	}
}

func TestIdleTimeoutTripsRecv(t *testing.T) {
	a, b := connPair(t)
	_ = a
	b.SetIdleTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := b.Recv()
	if err == nil {
		t.Fatal("Recv on a silent peer should time out")
	}
	if !IsTimeout(err) {
		t.Fatalf("expected timeout classification, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout fired far too late")
	}
}

func TestHeartbeatsKeepIdleConnAlive(t *testing.T) {
	a, b := connPair(t)
	b.SetIdleTimeout(120 * time.Millisecond)
	stop := Heartbeats(a, 30*time.Millisecond)
	defer stop()

	// The sender issues no requests, but the heartbeats must keep every
	// Recv within the idle window for several windows in a row.
	deadline := time.Now().Add(400 * time.Millisecond)
	beats := 0
	for time.Now().Before(deadline) {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("idle conn with heartbeats timed out after %d beats: %v", beats, err)
		}
		if m.Kind != KindHeartbeat {
			t.Fatalf("unexpected %v", m.Kind)
		}
		beats++
	}
	if beats < 3 {
		t.Fatalf("only %d heartbeats in 400ms at 30ms interval", beats)
	}
}

func TestHeartbeatsStopIsIdempotent(t *testing.T) {
	a, _ := connPair(t)
	stop := Heartbeats(a, time.Hour)
	stop()
	stop()
}

func TestHeartbeatSenderDeathIsObservable(t *testing.T) {
	// A heartbeat sender that dies on a failed send used to exit its
	// goroutine silently; it must now bump the process-wide counter and
	// emit a log line, so the death shows up before the peer's idle
	// timeout declares this side lost.
	a, b := connPair(t)
	before := metrics.HeartbeatSenderStops()
	logged := make(chan string, 4)
	stop := HeartbeatsWith(a, 10*time.Millisecond, func(format string, args ...any) {
		select {
		case logged <- format:
		default:
		}
	})
	defer stop()
	// Kill the transport out from under the sender.
	a.Close()
	b.Close()
	select {
	case msg := <-logged:
		if !strings.Contains(msg, "heartbeat") {
			t.Fatalf("log line %q does not mention heartbeats", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat sender death never logged")
	}
	if after := metrics.HeartbeatSenderStops(); after <= before {
		t.Fatalf("stop counter did not advance: before=%d after=%d", before, after)
	}
}

func TestHeartbeatsDeliberateStopNotCounted(t *testing.T) {
	// stop() racing the ticker must not register as a death: the owner
	// tore the connection down on purpose.
	a, _ := connPair(t)
	before := metrics.HeartbeatSenderStops()
	stop := Heartbeats(a, time.Hour)
	stop()
	a.Close()
	time.Sleep(20 * time.Millisecond)
	if after := metrics.HeartbeatSenderStops(); after != before {
		t.Fatalf("deliberate stop counted as a death: before=%d after=%d", before, after)
	}
}

func TestCallReturnsTypedRemoteError(t *testing.T) {
	a, b := connPair(t)
	go func() {
		b.Recv()
		b.Send(&Message{Kind: KindError, Err: "faults: SlowDown: request throttled"})
	}()
	_, err := a.Call(&Message{Kind: KindStat, File: "x"})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("expected *RemoteError, got %T: %v", err, err)
	}
	if !strings.Contains(re.Msg, "SlowDown") {
		t.Fatalf("message lost: %q", re.Msg)
	}
}
