// Binary wire codec: a hand-rolled, length-prefixed format for
// Message that replaces per-message gob encoding on every connection.
//
// Each frame payload starts with a one-byte codec tag, so receivers
// decode either format regardless of what the sender was configured
// with — that is the escape hatch that lets a run fall back to gob
// (CLOUDBURST_WIRE_CODEC=gob, or SetDefaultCodec) while the digest
// equality of the two codecs is still testable in-tree.
//
// The binary body is:
//
//	kind      uint8
//	presence  uvarint bitmap (one bit per Message field, see bit*)
//	fields    in bit order, only when their presence bit is set
//
// Presence bits carry real protocol meaning for the nil-able slice
// fields: a set bit with count 0 decodes to a non-nil empty slice,
// which is how "report present but empty" (a drained cache, a drain
// that returned nothing) stays distinguishable from "no report" — the
// distinction gob dropped, forcing the old HasResident/HasReturned
// flag workarounds. Bool fields live entirely in the bitmap and cost
// zero body bytes. Integers are zigzag varints; strings go through a
// small per-message dictionary so repeated file and site names (every
// multi-job grant) are encoded once.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync/atomic"

	"cloudburst/internal/metrics"
)

// Codec identifies a frame payload encoding; it is the first payload
// byte of every frame.
type Codec uint8

const (
	// CodecBinary is the hand-rolled zero-copy-friendly format.
	CodecBinary Codec = 0x01
	// CodecGob is the legacy gob encoding, kept for one release as an
	// escape hatch and as the baseline the binary codec is digest- and
	// benchmark-compared against.
	CodecGob Codec = 0x02
)

func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// defaultCodec is what Send uses; Recv always auto-detects from the
// payload tag, so mixed deployments interoperate.
var defaultCodec atomic.Uint32

func init() {
	defaultCodec.Store(uint32(CodecBinary))
	if os.Getenv("CLOUDBURST_WIRE_CODEC") == "gob" {
		defaultCodec.Store(uint32(CodecGob))
	}
}

// SetDefaultCodec selects the codec every subsequent Send encodes
// with. The environment variable CLOUDBURST_WIRE_CODEC=gob selects
// the legacy codec at startup.
func SetDefaultCodec(c Codec) {
	switch c {
	case CodecBinary, CodecGob:
		defaultCodec.Store(uint32(c))
	}
}

// DefaultCodec returns the codec Send currently encodes with.
func DefaultCodec() Codec { return Codec(defaultCodec.Load()) }

// BufferSource recycles byte buffers; *store.BufferPool satisfies it.
// A nil source degrades every Get into a fresh allocation.
type BufferSource interface {
	Get(n int64) []byte
	Put(buf []byte)
}

// Presence bits, one per Message field, in encode order. Done, Drain,
// Hit, and Last are carried by their bit alone.
const (
	bitSite = 1 << iota
	bitCores
	bitMax
	bitCompleted
	bitProgress
	bitJobs
	bitDone
	bitObject
	bitStats
	bitHints
	bitResident
	bitDrain
	bitReturned
	bitTarget
	bitSeq
	bitHintWasteChunks
	bitHintWasteBytes
	bitFile
	bitOff
	bitLen
	bitData
	bitFiles
	bitErr
	bitHit
	bitLast

	bitAll = 1<<iota - 1
)

// maxDictStrings caps the per-message string dictionary; encoder and
// decoder must agree on the cap so references stay aligned.
const maxDictStrings = 64

// snapshotFields is the number of integer counters in
// metrics.Snapshot; the codec walks them by reflection so a new
// counter is picked up without touching the wire format.
var snapshotFields = reflect.TypeOf(metrics.Snapshot{}).NumField()

var errCorrupt = errors.New("wire: corrupt frame")

// Encode appends m's frame payload (codec tag + body) to dst and
// returns the extended slice. For CodecBinary the append never
// exceeds MaxEncodedSize(m) bytes, so a caller that pre-sizes dst
// gets a zero-allocation encode.
func Encode(dst []byte, m *Message, codec Codec) ([]byte, error) {
	switch codec {
	case CodecBinary:
		return appendBinary(append(dst, byte(CodecBinary)), m), nil
	case CodecGob:
		dst = append(dst, byte(CodecGob))
		w := sliceWriter{b: dst}
		env := gobEnvelope{M: *m, Present: slicePresence(m)}
		if err := gob.NewEncoder(&w).Encode(&env); err != nil {
			return nil, fmt.Errorf("wire: encode %v: %w", m.Kind, err)
		}
		return w.b, nil
	}
	return nil, fmt.Errorf("wire: unknown codec %v", codec)
}

// Decode parses one frame payload (as produced by Encode) into a
// fresh Message that shares no memory with payload. Data and Object
// are copied into buffers from pool when one is supplied; callers
// done with them may hand them back via pool.Put (or Conn.Recycle).
// Corrupted or truncated payloads return an error, never panic.
func Decode(payload []byte, pool BufferSource) (*Message, error) {
	if len(payload) < 2 {
		return nil, errCorrupt
	}
	switch Codec(payload[0]) {
	case CodecBinary:
		return decodeBinary(payload[1:], pool)
	case CodecGob:
		var env gobEnvelope
		if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&env); err != nil {
			return nil, fmt.Errorf("wire: decode: %w", err)
		}
		m := env.M
		restoreSlicePresence(&m, env.Present)
		return &m, nil
	}
	return nil, fmt.Errorf("wire: unknown codec tag 0x%02x", payload[0])
}

// gobEnvelope wraps a Message for the legacy codec. Present records
// which slice fields were non-nil at encode time: gob turns empty
// non-nil slices into nil in transit, and without the envelope the
// binary codec's present-but-empty semantics would be lost on the
// fallback path.
type gobEnvelope struct {
	M       Message
	Present uint64
}

func slicePresence(m *Message) uint64 {
	var p uint64
	if m.Completed != nil {
		p |= bitCompleted
	}
	if m.Jobs != nil {
		p |= bitJobs
	}
	if m.Object != nil {
		p |= bitObject
	}
	if m.Hints != nil {
		p |= bitHints
	}
	if m.Resident != nil {
		p |= bitResident
	}
	if m.Returned != nil {
		p |= bitReturned
	}
	if m.Data != nil {
		p |= bitData
	}
	if m.Files != nil {
		p |= bitFiles
	}
	return p
}

func restoreSlicePresence(m *Message, p uint64) {
	if p&bitCompleted != 0 && m.Completed == nil {
		m.Completed = []int32{}
	}
	if p&bitJobs != 0 && m.Jobs == nil {
		m.Jobs = []JobAssign{}
	}
	if p&bitObject != 0 && m.Object == nil {
		m.Object = []byte{}
	}
	if p&bitHints != 0 && m.Hints == nil {
		m.Hints = []JobAssign{}
	}
	if p&bitResident != 0 && m.Resident == nil {
		m.Resident = []int32{}
	}
	if p&bitReturned != 0 && m.Returned == nil {
		m.Returned = []int32{}
	}
	if p&bitData != 0 && m.Data == nil {
		m.Data = []byte{}
	}
	if p&bitFiles != 0 && m.Files == nil {
		m.Files = []string{}
	}
}

// sliceWriter adapts append-to-slice as an io.Writer for the gob path.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// presenceOf computes m's presence bitmap.
func presenceOf(m *Message) uint64 {
	p := slicePresence(m)
	if m.Site != "" {
		p |= bitSite
	}
	if m.Cores != 0 {
		p |= bitCores
	}
	if m.Max != 0 {
		p |= bitMax
	}
	if m.Progress != 0 {
		p |= bitProgress
	}
	if m.Done {
		p |= bitDone
	}
	if m.Stats != (Stats{}) {
		p |= bitStats
	}
	if m.Drain {
		p |= bitDrain
	}
	if m.Target != 0 {
		p |= bitTarget
	}
	if m.Seq != 0 {
		p |= bitSeq
	}
	if m.HintWasteChunks != 0 {
		p |= bitHintWasteChunks
	}
	if m.HintWasteBytes != 0 {
		p |= bitHintWasteBytes
	}
	if m.File != "" {
		p |= bitFile
	}
	if m.Off != 0 {
		p |= bitOff
	}
	if m.Len != 0 {
		p |= bitLen
	}
	if m.Err != "" {
		p |= bitErr
	}
	if m.Hit {
		p |= bitHit
	}
	if m.Last {
		p |= bitLast
	}
	return p
}

// MaxEncodedSize returns an upper bound on the CodecBinary payload
// size of m (tag byte included). Send uses it to draw an exactly-
// large-enough pooled buffer, so encoding never reallocates.
func MaxEncodedSize(m *Message) int {
	const iMax = 10 // widest varint
	strMax := func(s string) int { return 2*iMax + len(s) }
	jobsMax := func(js []JobAssign) int {
		n := iMax
		for i := range js {
			n += 1 + 4*iMax + strMax(js[i].File) + strMax(js[i].HomeSite)
		}
		return n
	}
	n := 1 + 1 + iMax // tag + kind + presence
	n += 11 * iMax    // all scalar integer fields
	n += strMax(m.Site) + strMax(m.File) + strMax(m.Err)
	n += 3*iMax + 5*(len(m.Completed)+len(m.Resident)+len(m.Returned))
	n += jobsMax(m.Jobs) + jobsMax(m.Hints)
	n += 2*iMax + len(m.Object) + len(m.Data)
	n += iMax
	for _, f := range m.Files {
		n += strMax(f)
	}
	if m.Stats != (Stats{}) {
		n += (3 + snapshotFields) * iMax
	}
	return n
}

type encoder struct {
	buf  []byte
	dict []string
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) svarint(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }

func (e *encoder) str(s string) {
	for i, d := range e.dict {
		if d == s {
			e.uvarint(uint64(i + 1))
			return
		}
	}
	e.uvarint(0)
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
	if len(e.dict) < maxDictStrings {
		e.dict = append(e.dict, s)
	}
}

func (e *encoder) int32s(v []int32) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.svarint(int64(x))
	}
}

func (e *encoder) bytes(v []byte) {
	e.uvarint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

func (e *encoder) jobs(v []JobAssign) {
	e.uvarint(uint64(len(v)))
	for i := range v {
		j := &v[i]
		var flags byte
		if j.Stolen {
			flags |= 1
		}
		e.buf = append(e.buf, flags)
		e.svarint(int64(j.Chunk))
		e.svarint(j.Offset)
		e.svarint(j.Length)
		e.svarint(j.Units)
		e.str(j.File)
		e.str(j.HomeSite)
	}
}

func (e *encoder) stats(s *Stats) {
	e.svarint(s.IdleEmu)
	e.svarint(s.WallEmu)
	rv := reflect.ValueOf(&s.Breakdown).Elem()
	e.uvarint(uint64(snapshotFields))
	for i := 0; i < snapshotFields; i++ {
		e.svarint(rv.Field(i).Int())
	}
}

func appendBinary(dst []byte, m *Message) []byte {
	e := encoder{buf: append(dst, byte(m.Kind))}
	p := presenceOf(m)
	e.uvarint(p)
	if p&bitSite != 0 {
		e.str(m.Site)
	}
	if p&bitCores != 0 {
		e.svarint(int64(m.Cores))
	}
	if p&bitMax != 0 {
		e.svarint(int64(m.Max))
	}
	if p&bitCompleted != 0 {
		e.int32s(m.Completed)
	}
	if p&bitProgress != 0 {
		e.svarint(int64(m.Progress))
	}
	if p&bitJobs != 0 {
		e.jobs(m.Jobs)
	}
	if p&bitObject != 0 {
		e.bytes(m.Object)
	}
	if p&bitStats != 0 {
		e.stats(&m.Stats)
	}
	if p&bitHints != 0 {
		e.jobs(m.Hints)
	}
	if p&bitResident != 0 {
		e.int32s(m.Resident)
	}
	if p&bitReturned != 0 {
		e.int32s(m.Returned)
	}
	if p&bitTarget != 0 {
		e.svarint(int64(m.Target))
	}
	if p&bitSeq != 0 {
		e.svarint(int64(m.Seq))
	}
	if p&bitHintWasteChunks != 0 {
		e.svarint(int64(m.HintWasteChunks))
	}
	if p&bitHintWasteBytes != 0 {
		e.svarint(m.HintWasteBytes)
	}
	if p&bitFile != 0 {
		e.str(m.File)
	}
	if p&bitOff != 0 {
		e.svarint(m.Off)
	}
	if p&bitLen != 0 {
		e.svarint(m.Len)
	}
	if p&bitData != 0 {
		e.bytes(m.Data)
	}
	if p&bitFiles != 0 {
		e.uvarint(uint64(len(m.Files)))
		for _, f := range m.Files {
			e.str(f)
		}
	}
	if p&bitErr != 0 {
		e.str(m.Err)
	}
	return e.buf
}

type decoder struct {
	buf  []byte
	dict []string
	pool BufferSource
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errCorrupt
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) svarint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, errCorrupt
	}
	d.buf = d.buf[n:]
	return v, nil
}

// count reads a length prefix and rejects any claim larger than the
// remaining bytes divided by the element's minimum encoded size, so a
// corrupt frame can never demand a huge allocation.
func (d *decoder) count(minElem int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)/minElem) {
		return 0, errCorrupt
	}
	return int(v), nil
}

func (d *decoder) str() (string, error) {
	tok, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if tok != 0 {
		if tok > uint64(len(d.dict)) {
			return "", errCorrupt
		}
		return d.dict[tok-1], nil
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)) {
		return "", errCorrupt
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	if len(d.dict) < maxDictStrings {
		d.dict = append(d.dict, s)
	}
	return s, nil
}

func (d *decoder) int32s() ([]int32, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		v, err := d.svarint()
		if err != nil {
			return nil, err
		}
		if v < -1<<31 || v >= 1<<31 {
			return nil, errCorrupt
		}
		out[i] = int32(v)
	}
	return out, nil
}

// bytes copies the payload range into a pooled (or fresh) buffer, so
// the returned slice owns its memory and the frame buffer can be
// recycled the moment decoding finishes.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	var out []byte
	if d.pool != nil && n > 0 {
		out = d.pool.Get(int64(n))
	} else {
		out = make([]byte, n)
	}
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out, nil
}

func (d *decoder) jobs() ([]JobAssign, error) {
	// flags + 4 one-byte varints + 2 one-byte string tokens
	n, err := d.count(7)
	if err != nil {
		return nil, err
	}
	out := make([]JobAssign, n)
	for i := range out {
		j := &out[i]
		if len(d.buf) < 1 {
			return nil, errCorrupt
		}
		flags := d.buf[0]
		d.buf = d.buf[1:]
		if flags&^1 != 0 {
			return nil, errCorrupt
		}
		j.Stolen = flags&1 != 0
		chunk, err := d.svarint()
		if err != nil {
			return nil, err
		}
		if chunk < -1<<31 || chunk >= 1<<31 {
			return nil, errCorrupt
		}
		j.Chunk = int32(chunk)
		if j.Offset, err = d.svarint(); err != nil {
			return nil, err
		}
		if j.Length, err = d.svarint(); err != nil {
			return nil, err
		}
		if j.Units, err = d.svarint(); err != nil {
			return nil, err
		}
		if j.File, err = d.str(); err != nil {
			return nil, err
		}
		if j.HomeSite, err = d.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decoder) stats(s *Stats) error {
	var err error
	if s.IdleEmu, err = d.svarint(); err != nil {
		return err
	}
	if s.WallEmu, err = d.svarint(); err != nil {
		return err
	}
	n, err := d.count(1)
	if err != nil {
		return err
	}
	rv := reflect.ValueOf(&s.Breakdown).Elem()
	for i := 0; i < n; i++ {
		v, err := d.svarint()
		if err != nil {
			return err
		}
		// Extra trailing counters (a peer with a newer Snapshot) are
		// read and dropped rather than rejected.
		if i < snapshotFields {
			rv.Field(i).SetInt(v)
		}
	}
	return nil
}

func decodeBinary(body []byte, pool BufferSource) (*Message, error) {
	if len(body) < 1 {
		return nil, errCorrupt
	}
	d := decoder{buf: body[1:], pool: pool}
	m := &Message{Kind: Kind(body[0])}
	p, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if p&^uint64(bitAll) != 0 {
		return nil, errCorrupt
	}
	if p&bitSite != 0 {
		if m.Site, err = d.str(); err != nil {
			return nil, err
		}
	}
	if p&bitCores != 0 {
		v, err := d.svarint()
		if err != nil {
			return nil, err
		}
		m.Cores = int(v)
	}
	if p&bitMax != 0 {
		v, err := d.svarint()
		if err != nil {
			return nil, err
		}
		m.Max = int(v)
	}
	if p&bitCompleted != 0 {
		if m.Completed, err = d.int32s(); err != nil {
			return nil, err
		}
	}
	if p&bitProgress != 0 {
		v, err := d.svarint()
		if err != nil {
			return nil, err
		}
		m.Progress = int(v)
	}
	if p&bitJobs != 0 {
		if m.Jobs, err = d.jobs(); err != nil {
			return nil, err
		}
	}
	m.Done = p&bitDone != 0
	if p&bitObject != 0 {
		if m.Object, err = d.bytes(); err != nil {
			return nil, err
		}
	}
	if p&bitStats != 0 {
		if err = d.stats(&m.Stats); err != nil {
			return nil, err
		}
	}
	if p&bitHints != 0 {
		if m.Hints, err = d.jobs(); err != nil {
			return nil, err
		}
	}
	if p&bitResident != 0 {
		if m.Resident, err = d.int32s(); err != nil {
			return nil, err
		}
	}
	m.Drain = p&bitDrain != 0
	if p&bitReturned != 0 {
		if m.Returned, err = d.int32s(); err != nil {
			return nil, err
		}
	}
	if p&bitTarget != 0 {
		v, err := d.svarint()
		if err != nil {
			return nil, err
		}
		m.Target = int(v)
	}
	if p&bitSeq != 0 {
		v, err := d.svarint()
		if err != nil {
			return nil, err
		}
		m.Seq = int(v)
	}
	if p&bitHintWasteChunks != 0 {
		v, err := d.svarint()
		if err != nil {
			return nil, err
		}
		m.HintWasteChunks = int(v)
	}
	if p&bitHintWasteBytes != 0 {
		if m.HintWasteBytes, err = d.svarint(); err != nil {
			return nil, err
		}
	}
	if p&bitFile != 0 {
		if m.File, err = d.str(); err != nil {
			return nil, err
		}
	}
	if p&bitOff != 0 {
		if m.Off, err = d.svarint(); err != nil {
			return nil, err
		}
	}
	if p&bitLen != 0 {
		if m.Len, err = d.svarint(); err != nil {
			return nil, err
		}
	}
	if p&bitData != 0 {
		if m.Data, err = d.bytes(); err != nil {
			return nil, err
		}
	}
	if p&bitFiles != 0 {
		n, err := d.count(1)
		if err != nil {
			return nil, err
		}
		m.Files = make([]string, n)
		for i := range m.Files {
			if m.Files[i], err = d.str(); err != nil {
				return nil, err
			}
		}
	}
	if p&bitErr != 0 {
		if m.Err, err = d.str(); err != nil {
			return nil, err
		}
	}
	m.Hit = p&bitHit != 0
	m.Last = p&bitLast != 0
	if len(d.buf) != 0 {
		return nil, errCorrupt
	}
	return m, nil
}
