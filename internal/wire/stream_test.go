package wire

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// recordingPool is a BufferSource that tracks the largest single
// buffer ever requested — the witness that streamed transfer never
// materializes a full-object allocation on either side.
type recordingPool struct {
	mu     sync.Mutex
	maxGet int64
}

func (p *recordingPool) Get(n int64) []byte {
	p.mu.Lock()
	if n > p.maxGet {
		p.maxGet = n
	}
	p.mu.Unlock()
	return make([]byte, n)
}

func (p *recordingPool) Put([]byte) {}

func (p *recordingPool) Max() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxGet
}

// streamObject ships payload from a to b as KindObjectPart frames and
// returns the reassembled bytes plus the writer's and stream's frame
// counts.
func streamObject(t *testing.T, a, b *Conn, payload []byte, partSize int) ([]byte, int, int) {
	t.Helper()

	var (
		wErr   error
		frames int
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := NewObjectWriter(a, partSize)
		if _, err := w.Write(payload); err != nil {
			wErr = err
			return
		}
		wErr = w.Close()
		frames = w.Frames()
	}()

	s := NewObjectStream()
	var (
		got     []byte
		readErr error
		rg      sync.WaitGroup
	)
	rg.Add(1)
	go func() {
		defer rg.Done()
		got, readErr = io.ReadAll(s.Reader())
	}()
	for {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		done, err := s.Feed(m)
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		if m.Data != nil {
			b.Recycle(m.Data)
		}
		if done {
			break
		}
	}
	rg.Wait()
	wg.Wait()
	if wErr != nil {
		t.Fatalf("writer: %v", wErr)
	}
	if readErr != nil {
		t.Fatalf("reader: %v", readErr)
	}
	return got, frames, s.Frames()
}

func TestObjectStreamRoundTrip(t *testing.T) {
	a, b := connPair(t)
	payload := make([]byte, 3*DefaultPartSize+DefaultPartSize/2)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	got, wFrames, rFrames := streamObject(t, a, b, payload, 0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %d bytes in, %d out", len(payload), len(got))
	}
	// 3 full parts + 1 partial Last part.
	if wFrames != 4 || rFrames != 4 {
		t.Fatalf("frames: wrote %d, fed %d, want 4", wFrames, rFrames)
	}
}

func TestObjectStreamEmptyObject(t *testing.T) {
	a, b := connPair(t)
	got, wFrames, _ := streamObject(t, a, b, nil, 0)
	if len(got) != 0 {
		t.Fatalf("empty object produced %d bytes", len(got))
	}
	// Zero-length objects still terminate with one empty Last part.
	if wFrames != 1 {
		t.Fatalf("frames: %d, want 1", wFrames)
	}
}

// TestObjectStreamBoundedBuffers is the no-full-allocation guarantee:
// a multi-part object crosses the wire without either side ever
// requesting a buffer anywhere near the full object size — every
// allocation on the streaming path is bounded by the part budget.
func TestObjectStreamBoundedBuffers(t *testing.T) {
	a, b := connPair(t)
	pool := &recordingPool{}
	a.SetBufferPool(pool)
	b.SetBufferPool(pool)

	payload := make([]byte, 5*DefaultPartSize)
	for i := range payload {
		payload[i] = byte(i >> 3)
	}
	got, _, _ := streamObject(t, a, b, payload, 0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted")
	}
	// The largest request may exceed one part by framing overhead, but
	// must stay far below the full object.
	if max := pool.Max(); max >= 2*DefaultPartSize {
		t.Fatalf("streaming path requested a %d-byte buffer for a %d-byte object (want < %d)",
			max, len(payload), 2*DefaultPartSize)
	}
}

func TestObjectStreamOutOfOrderPoisons(t *testing.T) {
	s := NewObjectStream()
	readErr := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(s.Reader())
		readErr <- err
	}()
	if _, err := s.Feed(&Message{Kind: KindObjectPart, Seq: 1, Off: 0, Data: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	// Skip seq 2: the stream must reject the gap and poison the reader.
	if _, err := s.Feed(&Message{Kind: KindObjectPart, Seq: 3, Off: 2, Data: []byte("xx")}); err == nil {
		t.Fatal("out-of-order part accepted")
	}
	if err := <-readErr; err == nil {
		t.Fatal("reader survived a poisoned stream")
	}
}

func TestAdaptivePartSize(t *testing.T) {
	cases := []struct {
		goodput float64
		want    int
	}{
		{0, DefaultPartSize},        // no tuner / untrained
		{-5, DefaultPartSize},       // defensive
		{1 << 10, MinPartSize},      // starved link clamps low
		{1 << 22, MinPartSize * 4},  // 4 MiB/s * 0.25s = 1 MiB
		{3 << 22, MinPartSize * 16}, // 12 MiB/s * 0.25s = 3 MiB -> next pow2 4 MiB
		{1 << 30, MaxPartSize},      // fast link clamps high
	}
	for _, c := range cases {
		if got := AdaptivePartSize(c.goodput); got != c.want {
			t.Errorf("AdaptivePartSize(%v) = %d, want %d", c.goodput, got, c.want)
		}
	}
	// Every result must stay a pool-friendly power of two inside the
	// clamp band, whatever the goodput.
	for g := 1.0; g < 1e12; g *= 3.7 {
		s := AdaptivePartSize(g)
		if s < MinPartSize || s > MaxPartSize || s&(s-1) != 0 {
			t.Fatalf("AdaptivePartSize(%v) = %d outside clamp band or not a power of two", g, s)
		}
	}
}
