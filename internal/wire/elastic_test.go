package wire

import (
	"reflect"
	"testing"
)

func TestJoinRoundTrip(t *testing.T) {
	a, b := connPair(t)
	want := &Message{Kind: KindJoin, Site: "cloud", Cores: 1}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDrainPushAndFlaggedGrantRoundTrip(t *testing.T) {
	a, b := connPair(t)
	// The one-way drain push carries only its kind.
	if err := a.Send(&Message{Kind: KindDrain}); err != nil {
		t.Fatal(err)
	}
	// A drain-flagged grant carries no jobs; the flag alone must
	// survive so a slave whose request raced the push still retires.
	if err := a.Send(&Message{Kind: KindJobGrant, Drain: true}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindDrain {
		t.Fatalf("kind = %v, want drain", got.Kind)
	}
	got, err = b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindJobGrant || !got.Drain {
		t.Fatalf("grant = %+v, want Drain set", got)
	}
	if len(got.Jobs) != 0 {
		t.Fatalf("drain grant carries jobs: %v", got.Jobs)
	}
}

func TestScaleRoundTrip(t *testing.T) {
	a, b := connPair(t)
	if err := a.Send(&Message{Kind: KindScale, Site: "cloud", Target: 6}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindScale || got.Site != "cloud" || got.Target != 6 {
		t.Fatalf("scale = %+v, want site=cloud target=6", got)
	}
}

func TestEmptyReturnedSurvivesCodec(t *testing.T) {
	// A drain result that returns no work ("I finished everything
	// granted") must stay distinguishable from a normal end-of-run
	// result: the non-nil empty Returned slice is the drain marker, and
	// the codec's presence bits must carry it under both formats.
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			SetDefaultCodec(codec)
			defer SetDefaultCodec(CodecBinary)
			a, b := connPair(t)
			if err := a.Send(&Message{
				Kind:      KindSlaveResult,
				Completed: []int32{3, 4},
				Returned:  []int32{},
			}); err != nil {
				t.Fatal(err)
			}
			got, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got.Returned == nil {
				t.Fatal("non-nil empty Returned collapsed to nil in transit")
			}
			if len(got.Returned) != 0 {
				t.Fatalf("Returned = %v, want empty", got.Returned)
			}
		})
	}
}

func TestReturnedPayloadRoundTrip(t *testing.T) {
	a, b := connPair(t)
	want := []int32{10, 11, 12}
	if err := a.Send(&Message{
		Kind:      KindSlaveResult,
		Completed: []int32{9},
		Returned:  want,
		Object:    []byte{0xde, 0xad},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Returned == nil || !reflect.DeepEqual(got.Returned, want) {
		t.Fatalf("Returned = %v, want %v", got.Returned, want)
	}
}

func TestElasticKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindJoin: "join", KindDrain: "drain", KindScale: "scale",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
