package store

import (
	"testing"
	"time"
)

// feedEpoch folds one full decision window of identical samples and
// returns the decision the epoch boundary produced.
func feedEpoch(tu *Autotuner, running int, bytes int64, emu time.Duration) int {
	dec := 0
	for i := 0; i < autotuneWindow; i++ {
		if d := tu.Observe(running, bytes, emu); d != 0 {
			dec = d
		}
	}
	return dec
}

func TestNewAutotunerDefaults(t *testing.T) {
	cases := []struct {
		initial, max         int
		wantThreads, wantMax int
	}{
		{0, 0, 8, 32},   // both defaulted: seed from DefaultFetchOptions
		{-1, -1, 8, 32}, // negatives behave like zero
		{2, 0, 2, 32},   // 4x initial below the 32 floor
		{16, 0, 16, 64}, // 4x initial above the floor
		{8, 4, 8, 8},    // ceiling below seed: clamp up to the seed
		{3, 12, 3, 12},  // both explicit
	}
	for _, c := range cases {
		tu := NewAutotuner(c.initial, c.max)
		if tu.Threads() != c.wantThreads || tu.Max() != c.wantMax {
			t.Errorf("NewAutotuner(%d, %d) = threads %d max %d, want %d / %d",
				c.initial, c.max, tu.Threads(), tu.Max(), c.wantThreads, c.wantMax)
		}
	}
}

func TestAutotunerNilIsInert(t *testing.T) {
	var tu *Autotuner
	if tu.Threads() != 0 || tu.Max() != 0 {
		t.Fatal("nil tuner must report zero threads")
	}
	if dec := tu.Observe(4, 1<<10, time.Second); dec != 0 {
		t.Fatalf("nil Observe = %d", dec)
	}
	if tu.Stats() != (AutotuneStats{}) {
		t.Fatal("nil Stats must be zero")
	}
}

func TestAutotunerSlowStartDoublesToCeiling(t *testing.T) {
	tu := NewAutotuner(2, 16)
	// A steady per-stream rate means the link has headroom: slow start
	// doubles the decision every epoch until the ceiling.
	for _, want := range []int{4, 8, 16} {
		if dec := feedEpoch(tu, tu.Threads(), 8<<10, time.Second); dec != 1 {
			t.Fatalf("steady epoch toward %d returned %d, want +1", want, dec)
		}
		if got := tu.Threads(); got != want {
			t.Fatalf("threads = %d, want %d", got, want)
		}
	}
	// At the ceiling the controller holds even though the rate is good.
	if dec := feedEpoch(tu, tu.Threads(), 8<<10, time.Second); dec != 0 {
		t.Fatalf("epoch at ceiling returned %d, want 0", dec)
	}
	st := tu.Stats()
	if st.Raises != 3 || st.Drops != 0 || st.Observed != 4*autotuneWindow {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAutotunerAchievedGuardHoldsDecision(t *testing.T) {
	// The pool only ran 2 readers (sub-range scarcity); raising past a
	// target the fetch never reached would drift the decision away from
	// anything the controller has actually measured.
	tu := NewAutotuner(4, 32)
	if dec := feedEpoch(tu, 2, 8<<10, time.Second); dec != 0 {
		t.Fatalf("capped epoch returned %d, want 0", dec)
	}
	if got := tu.Threads(); got != 4 {
		t.Fatalf("threads drifted to %d under the achieved guard", got)
	}
	if st := tu.Stats(); st.Raises != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAutotunerBackoffEndsSlowStart(t *testing.T) {
	tu := NewAutotuner(2, 32)
	// Epoch 1: steady rate, slow start doubles 2 -> 4.
	if dec := feedEpoch(tu, 2, 8<<10, time.Second); dec != 1 || tu.Threads() != 4 {
		t.Fatalf("dec=%d threads=%d after steady epoch", dec, tu.Threads())
	}
	// Epoch 2: per-stream rate collapses far below the unsaturated
	// baseline -> multiplicative decrease (4 * 0.8 -> 3).
	if dec := feedEpoch(tu, 4, 1<<10, time.Second); dec != -1 || tu.Threads() != 3 {
		t.Fatalf("dec=%d threads=%d after collapsed epoch", dec, tu.Threads())
	}
	// Epoch 3: rate recovers. Slow start ended for good at the drop, so
	// the raise is additive (3 -> 4), not another doubling.
	if dec := feedEpoch(tu, 3, 8<<10, time.Second); dec != 1 || tu.Threads() != 4 {
		t.Fatalf("dec=%d threads=%d after recovery epoch, want additive raise to 4",
			dec, tu.Threads())
	}
	st := tu.Stats()
	if st.Raises != 2 || st.Drops != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAutotunerBackoffClampsAtMin(t *testing.T) {
	tu := NewAutotuner(2, 8)
	// Establish a baseline rate (and one slow-start raise to 4).
	if dec := feedEpoch(tu, 2, 8<<10, time.Second); dec != 1 {
		t.Fatalf("baseline epoch dec = %d", dec)
	}
	// Sustained collapse walks the decision down: 4 -> 3 -> 2 -> 1.
	for _, want := range []int{3, 2, 1} {
		if dec := feedEpoch(tu, tu.Threads(), 1, time.Second); dec != -1 || tu.Threads() != want {
			t.Fatalf("dec=%d threads=%d, want drop to %d", dec, tu.Threads(), want)
		}
	}
	// At the floor, further collapse changes nothing.
	if dec := feedEpoch(tu, 1, 1, time.Second); dec != 0 || tu.Threads() != 1 {
		t.Fatalf("dec=%d threads=%d at floor", dec, tu.Threads())
	}
	if st := tu.Stats(); st.Drops != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAutotunerSkipsUnusableSamples(t *testing.T) {
	// Zero-byte and zero-duration observations carry no goodput signal;
	// they count as observed but never close an epoch or move the
	// decision.
	tu := NewAutotuner(2, 8)
	for i := 0; i < 3*autotuneWindow; i++ {
		if dec := tu.Observe(2, 0, time.Second); dec != 0 {
			t.Fatalf("zero-byte sample decided %d", dec)
		}
		if dec := tu.Observe(2, 1<<10, 0); dec != 0 {
			t.Fatalf("zero-duration sample decided %d", dec)
		}
	}
	st := tu.Stats()
	if st.Observed != int64(6*autotuneWindow) {
		t.Fatalf("observed = %d, want %d", st.Observed, 6*autotuneWindow)
	}
	if st.Raises != 0 || st.Drops != 0 || tu.Threads() != 2 {
		t.Fatalf("unusable samples moved the controller: %+v threads=%d", st, tu.Threads())
	}
}

func TestAutotunerGoodputTracksBaseline(t *testing.T) {
	var nilTuner *Autotuner
	if nilTuner.Goodput() != 0 {
		t.Fatal("nil tuner goodput != 0")
	}
	tu := NewAutotuner(4, 8)
	if tu.Goodput() != 0 {
		t.Fatal("untrained tuner goodput != 0")
	}
	// One full epoch at 2 MiB per stream-second.
	for i := 0; i < autotuneWindow; i++ {
		tu.Observe(4, 2<<20, time.Second)
	}
	got := tu.Goodput()
	if got < 1.9*float64(1<<20) || got > 2.1*float64(1<<20) {
		t.Fatalf("goodput = %v, want ~2 MiB/s", got)
	}
}
