// The allocation assertion is meaningless under the race detector,
// which perturbs escape analysis and allocation accounting.
//go:build !race

package store

import (
	"testing"

	"cloudburst/internal/netsim"
)

// TestFetchRetryKeyLazyNoAlloc pins the lazy retry-key contract: the
// success path of a ranged retry — every sub-range of every clean
// fetch — must not heap-allocate. The "%s@%d" key only materializes
// when an exhaustion error needs it.
func TestFetchRetryKeyLazyNoAlloc(t *testing.T) {
	p := DefaultRetryPolicy()
	clk := netsim.Instant()
	fn := func() error { return nil }
	allocs := testing.AllocsPerRun(500, func() {
		if err := p.DoRanged(clk, "data/part-00001", 7<<20, fn, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DoRanged clean path allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkFetchRetryKey measures the per-sub-range retry wrapper on
// the clean path; run with -benchmem to see the 0 allocs/op.
func BenchmarkFetchRetryKey(b *testing.B) {
	p := DefaultRetryPolicy()
	clk := netsim.Instant()
	fn := func() error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.DoRanged(clk, "data/part-00001", int64(i)<<10, fn, nil); err != nil {
			b.Fatal(err)
		}
	}
}
