package store

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

// FetchOptions tune the multi-threaded ranged retrieval slaves use for
// chunks whose data lives at another site (Section III-B, "each slave
// retrieves jobs using multiple retrieval threads").
type FetchOptions struct {
	// Threads is the number of concurrent sub-range readers. Values
	// below 1 mean 1 (sequential).
	Threads int
	// RangeSize is the bytes each sub-range request asks for. Values
	// below 1 default to 256 KiB; the minimum honoured size is 512 B.
	RangeSize int
	// Retry governs per-sub-range retries of transient failures. The
	// zero policy disables retries.
	Retry RetryPolicy
	// Clock paces retry backoff in emulated time; nil means no pacing.
	Clock netsim.Clock
	// Stats, when set, receives retry/backoff and buffer-pool counters.
	Stats *metrics.Breakdown
	// Pool, when set, supplies the destination buffer instead of a
	// fresh allocation. The caller owns the returned buffer and must
	// eventually hand it back with Pool.Put (directly, or by letting a
	// ChunkCache built over the same pool own it).
	Pool *BufferPool
	// Tuner, when set, overrides Threads with the controller's current
	// AIMD decision and feeds the fetch's observed goodput back into
	// it. Share one Tuner across every fetch travelling the same
	// (site, link) so the controller sees the aggregate behaviour it
	// causes. Requires Clock for the goodput timings; Threads then only
	// seeds the controller (see NewAutotuner).
	Tuner *Autotuner
}

// DefaultFetchOptions matches the paper's multi-threaded retrieval
// configuration scaled to our chunk sizes.
func DefaultFetchOptions() FetchOptions {
	return FetchOptions{Threads: 8, RangeSize: 256 << 10}
}

func (o FetchOptions) normalize() FetchOptions {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.RangeSize <= 0 {
		o.RangeSize = 256 << 10
	}
	if o.RangeSize < 512 {
		o.RangeSize = 512
	}
	return o
}

// Fetch reads [off, off+length) of the named object from st into a
// buffer (pooled when opts.Pool is set, freshly allocated otherwise),
// splitting the range into RangeSize pieces fetched by concurrent
// readers — at most Threads, never more than there are sub-ranges. It
// returns an error if the object ends before the requested range does;
// with multiple failing sub-ranges, the error of the lowest offset is
// returned, deterministically.
func Fetch(st Store, name string, off, length int64, opts FetchOptions) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("store: negative fetch length %d", length)
	}
	if opts.Tuner != nil {
		opts.Threads = opts.Tuner.Threads()
	}
	opts = opts.normalize()
	buf, miss := opts.Pool.get(length)
	if opts.Pool != nil && opts.Stats != nil {
		var m int64
		if miss {
			m = 1
		}
		opts.Stats.AddPool(1, m)
	}
	if length == 0 {
		return buf, nil
	}

	rangeSize := int64(opts.RangeSize)
	subRanges := (length + rangeSize - 1) / rangeSize
	threads := int64(opts.Threads)
	if threads > subRanges {
		// Spawning more readers than sub-ranges buys nothing; the
		// surplus goroutines would only park on the channel.
		threads = subRanges
	}
	maxWorkers := threads
	if opts.Tuner != nil {
		// The controller may raise its decision mid-fetch; readers can
		// grow up to its ceiling (still never past the sub-range count).
		if m := int64(opts.Tuner.Max()); m > maxWorkers {
			maxWorkers = m
		}
		if maxWorkers > subRanges {
			maxWorkers = subRanges
		}
	}
	tuned := opts.Tuner != nil && opts.Clock != nil

	type job struct{ start, end int64 } // offsets relative to off
	type rangeErr struct {
		start int64
		err   error
	}
	// Every sub-range is enqueued up front so no producer can block on
	// a shrinking worker pool; workers bail out early once any range
	// has failed for good.
	jobs := make(chan job, subRanges)
	for start := int64(0); start < length; start += rangeSize {
		end := start + rangeSize
		if end > length {
			end = length
		}
		jobs <- job{start, end}
	}
	close(jobs)

	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first *rangeErr // lowest-offset failure among attempted ranges
	)
	fail := func(start int64, err error) {
		errMu.Lock()
		if first == nil || start < first.start {
			first = &rangeErr{start, err}
		}
		errMu.Unlock()
	}
	// After a failure, ranges above it are skipped (fail fast) but
	// ranges below it are still attempted, so the surfaced error is
	// always the lowest-offset failure regardless of scheduling.
	skip := func(start int64) bool {
		errMu.Lock()
		defer errMu.Unlock()
		return first != nil && start > first.start
	}
	onBackoff := retryStats(opts.Stats)

	// The reader pool. With a Tuner installed it is dynamic: each
	// completed sub-range feeds the controller, and the pool grows or
	// shrinks toward the current decision mid-fetch — a reader retires
	// after finishing a range when the pool is over target.
	var (
		poolMu  sync.Mutex
		running int64
		spawn   func() // requires poolMu
	)
	worker := func() {
		defer wg.Done()
		retired := false
		defer func() {
			// The failure-return and channel-drained exits decrement
			// here; a retiring reader already decremented under the lock
			// at the moment it decided, so the `running > 1` survivor
			// guarantee holds.
			if !retired {
				poolMu.Lock()
				running--
				poolMu.Unlock()
			}
		}()
		for j := range jobs {
			if skip(j.start) {
				continue
			}
			var t0 time.Time
			var issued int64
			if tuned {
				t0 = opts.Clock.Now()
				poolMu.Lock()
				issued = running
				poolMu.Unlock()
			}
			// Each sub-range retries independently: a transient
			// failure costs one range's backoff, not the whole
			// chunk. Short reads stay fatal — the object really is
			// shorter than the index said. The retry key is derived
			// lazily — the clean path never formats it.
			err := opts.Retry.DoRanged(opts.Clock, name, off+j.start, func() error {
				p := buf[j.start:j.end]
				n, err := st.ReadAt(name, p, off+j.start)
				if err != nil && err != io.EOF {
					return err
				}
				if int64(n) < j.end-j.start {
					return fmt.Errorf("store: short read of %s at %d: got %d of %d",
						name, off+j.start, n, j.end-j.start)
				}
				return nil
			}, onBackoff)
			if err != nil {
				fail(j.start, err)
				return
			}
			if tuned {
				dec := opts.Tuner.Observe(int(issued), j.end-j.start,
					opts.Clock.ToEmu(opts.Clock.Now().Sub(t0)))
				if opts.Stats != nil {
					opts.Stats.CountAutotune(dec)
				}
				target := int64(opts.Tuner.Threads())
				if target > maxWorkers {
					target = maxWorkers
				}
				poolMu.Lock()
				if running > target && running > 1 {
					// Decide and decrement atomically: releasing the lock
					// before the decrement would let a second reader see
					// the stale count and retire too, draining the pool
					// with sub-ranges still queued.
					running--
					retired = true
					poolMu.Unlock()
					return // over target: this reader retires
				}
				for running < target {
					spawn()
				}
				poolMu.Unlock()
			}
		}
	}
	spawn = func() {
		running++
		wg.Add(1)
		go worker()
	}
	poolMu.Lock()
	for i := int64(0); i < threads; i++ {
		spawn()
	}
	poolMu.Unlock()
	wg.Wait()

	if first != nil {
		opts.Pool.Put(buf)
		return nil, first.err
	}
	return buf, nil
}
