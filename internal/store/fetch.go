package store

import (
	"fmt"
	"io"
	"sync"

	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

// FetchOptions tune the multi-threaded ranged retrieval slaves use for
// chunks whose data lives at another site (Section III-B, "each slave
// retrieves jobs using multiple retrieval threads").
type FetchOptions struct {
	// Threads is the number of concurrent sub-range readers. Values
	// below 1 mean 1 (sequential).
	Threads int
	// RangeSize is the bytes each sub-range request asks for. Values
	// below 1 default to 256 KiB; the minimum honoured size is 512 B.
	RangeSize int
	// Retry governs per-sub-range retries of transient failures. The
	// zero policy disables retries.
	Retry RetryPolicy
	// Clock paces retry backoff in emulated time; nil means no pacing.
	Clock netsim.Clock
	// Stats, when set, receives retry/backoff and buffer-pool counters.
	Stats *metrics.Breakdown
	// Pool, when set, supplies the destination buffer instead of a
	// fresh allocation. The caller owns the returned buffer and must
	// eventually hand it back with Pool.Put (directly, or by letting a
	// ChunkCache built over the same pool own it).
	Pool *BufferPool
}

// DefaultFetchOptions matches the paper's multi-threaded retrieval
// configuration scaled to our chunk sizes.
func DefaultFetchOptions() FetchOptions {
	return FetchOptions{Threads: 8, RangeSize: 256 << 10}
}

func (o FetchOptions) normalize() FetchOptions {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.RangeSize <= 0 {
		o.RangeSize = 256 << 10
	}
	if o.RangeSize < 512 {
		o.RangeSize = 512
	}
	return o
}

// Fetch reads [off, off+length) of the named object from st into a
// buffer (pooled when opts.Pool is set, freshly allocated otherwise),
// splitting the range into RangeSize pieces fetched by concurrent
// readers — at most Threads, never more than there are sub-ranges. It
// returns an error if the object ends before the requested range does;
// with multiple failing sub-ranges, the error of the lowest offset is
// returned, deterministically.
func Fetch(st Store, name string, off, length int64, opts FetchOptions) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("store: negative fetch length %d", length)
	}
	opts = opts.normalize()
	buf, miss := opts.Pool.get(length)
	if opts.Pool != nil && opts.Stats != nil {
		var m int64
		if miss {
			m = 1
		}
		opts.Stats.AddPool(1, m)
	}
	if length == 0 {
		return buf, nil
	}

	rangeSize := int64(opts.RangeSize)
	subRanges := (length + rangeSize - 1) / rangeSize
	threads := int64(opts.Threads)
	if threads > subRanges {
		// Spawning more readers than sub-ranges buys nothing; the
		// surplus goroutines would only park on the channel.
		threads = subRanges
	}

	type job struct{ start, end int64 } // offsets relative to off
	type rangeErr struct {
		start int64
		err   error
	}
	jobs := make(chan job, threads)
	errc := make(chan rangeErr, threads)
	var wg sync.WaitGroup
	onBackoff := retryStats(opts.Stats)

	for i := int64(0); i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// Each sub-range retries independently: a transient
				// failure costs one range's backoff, not the whole
				// chunk. Short reads stay fatal — the object really is
				// shorter than the index said.
				key := fmt.Sprintf("%s@%d", name, off+j.start)
				err := opts.Retry.Do(opts.Clock, key, func() error {
					p := buf[j.start:j.end]
					n, err := st.ReadAt(name, p, off+j.start)
					if err != nil && err != io.EOF {
						return err
					}
					if int64(n) < j.end-j.start {
						return fmt.Errorf("store: short read of %s at %d: got %d of %d",
							name, off+j.start, n, j.end-j.start)
					}
					return nil
				}, onBackoff)
				if err != nil {
					errc <- rangeErr{j.start, err}
					return
				}
			}
		}()
	}

producer:
	for start := int64(0); start < length; start += rangeSize {
		end := start + rangeSize
		if end > length {
			end = length
		}
		select {
		case jobs <- job{start, end}:
		case re := <-errc:
			// A worker failed; stop producing, but keep its error for
			// the deterministic lowest-offset selection below.
			errc <- re
			break producer
		}
	}
	close(jobs)
	wg.Wait()
	// Every worker has exited; drain all buffered errors and surface
	// the lowest-offset one so the reported failure does not depend on
	// goroutine scheduling.
	var first *rangeErr
	for {
		select {
		case re := <-errc:
			if first == nil || re.start < first.start {
				re := re
				first = &re
			}
			continue
		default:
		}
		break
	}
	if first != nil {
		opts.Pool.Put(buf)
		return nil, first.err
	}
	return buf, nil
}
