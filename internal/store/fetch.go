package store

import (
	"fmt"
	"io"
	"sync"

	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

// FetchOptions tune the multi-threaded ranged retrieval slaves use for
// chunks whose data lives at another site (Section III-B, "each slave
// retrieves jobs using multiple retrieval threads").
type FetchOptions struct {
	// Threads is the number of concurrent sub-range readers. Values
	// below 1 mean 1 (sequential).
	Threads int
	// RangeSize is the bytes each sub-range request asks for. Values
	// below 1 default to 256 KiB; the minimum honoured size is 512 B.
	RangeSize int
	// Retry governs per-sub-range retries of transient failures. The
	// zero policy disables retries.
	Retry RetryPolicy
	// Clock paces retry backoff in emulated time; nil means no pacing.
	Clock netsim.Clock
	// Stats, when set, receives retry/backoff counters.
	Stats *metrics.Breakdown
}

// DefaultFetchOptions matches the paper's multi-threaded retrieval
// configuration scaled to our chunk sizes.
func DefaultFetchOptions() FetchOptions {
	return FetchOptions{Threads: 8, RangeSize: 256 << 10}
}

func (o FetchOptions) normalize() FetchOptions {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.RangeSize <= 0 {
		o.RangeSize = 256 << 10
	}
	if o.RangeSize < 512 {
		o.RangeSize = 512
	}
	return o
}

// Fetch reads [off, off+length) of the named object from st into a
// freshly allocated buffer, splitting the range into RangeSize pieces
// fetched by Threads concurrent readers. It returns an error if the
// object ends before the requested range does.
func Fetch(st Store, name string, off, length int64, opts FetchOptions) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("store: negative fetch length %d", length)
	}
	opts = opts.normalize()
	buf := make([]byte, length)
	if length == 0 {
		return buf, nil
	}

	type job struct{ start, end int64 } // offsets relative to off
	jobs := make(chan job, opts.Threads)
	errc := make(chan error, opts.Threads)
	var wg sync.WaitGroup
	onBackoff := retryStats(opts.Stats)

	for i := 0; i < opts.Threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// Each sub-range retries independently: a transient
				// failure costs one range's backoff, not the whole
				// chunk. Short reads stay fatal — the object really is
				// shorter than the index said.
				key := fmt.Sprintf("%s@%d", name, off+j.start)
				err := opts.Retry.Do(opts.Clock, key, func() error {
					p := buf[j.start:j.end]
					n, err := st.ReadAt(name, p, off+j.start)
					if err != nil && err != io.EOF {
						return err
					}
					if int64(n) < j.end-j.start {
						return fmt.Errorf("store: short read of %s at %d: got %d of %d",
							name, off+j.start, n, j.end-j.start)
					}
					return nil
				}, onBackoff)
				if err != nil {
					errc <- err
					return
				}
			}
		}()
	}

	rangeSize := int64(opts.RangeSize)
	for start := int64(0); start < length; start += rangeSize {
		end := start + rangeSize
		if end > length {
			end = length
		}
		select {
		case jobs <- job{start, end}:
		case err := <-errc:
			close(jobs)
			wg.Wait()
			return nil, err
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	return buf, nil
}
