package store

import (
	"bytes"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

func TestFetchOptionsNormalizeEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		in, want  FetchOptions
	}{
		{"zero threads", FetchOptions{Threads: 0, RangeSize: 1 << 10}, FetchOptions{Threads: 1, RangeSize: 1 << 10}},
		{"negative threads", FetchOptions{Threads: -3, RangeSize: 1 << 10}, FetchOptions{Threads: 1, RangeSize: 1 << 10}},
		{"zero range", FetchOptions{Threads: 4, RangeSize: 0}, FetchOptions{Threads: 4, RangeSize: 256 << 10}},
		{"negative range", FetchOptions{Threads: 4, RangeSize: -1}, FetchOptions{Threads: 4, RangeSize: 256 << 10}},
		{"tiny range clamps up", FetchOptions{Threads: 4, RangeSize: 100}, FetchOptions{Threads: 4, RangeSize: 512}},
		{"just below floor", FetchOptions{Threads: 4, RangeSize: 511}, FetchOptions{Threads: 4, RangeSize: 512}},
		{"at floor", FetchOptions{Threads: 4, RangeSize: 512}, FetchOptions{Threads: 4, RangeSize: 512}},
		{"well-formed untouched", FetchOptions{Threads: 8, RangeSize: 64 << 10}, FetchOptions{Threads: 8, RangeSize: 64 << 10}},
	}
	for _, c := range cases {
		got := c.in.normalize()
		if got.Threads != c.want.Threads || got.RangeSize != c.want.RangeSize {
			t.Errorf("%s: normalize(%+v) = threads %d range %d, want %d / %d",
				c.name, c.in, got.Threads, got.RangeSize, c.want.Threads, c.want.RangeSize)
		}
	}
}

func TestFetchZeroLengthWithPool(t *testing.T) {
	// A zero-length fetch through a pool must still round-trip the
	// buffer machinery (counted get, returnable buffer) without touching
	// the store.
	m := NewMem()
	m.Put("d", fillPattern(100, 1))
	pool := NewBufferPool()
	var stats metrics.Breakdown
	got, err := Fetch(m, "d", 50, 0, FetchOptions{Pool: pool, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("zero-length fetch = %v", got)
	}
	if st := pool.Stats(); st.Gets != 1 {
		t.Fatalf("pool gets = %d, want 1", st.Gets)
	}
	if r := stats.Snapshot(); r.PoolGets != 1 {
		t.Fatalf("breakdown pool gets = %d, want 1", r.PoolGets)
	}
	pool.Put(got)
}

// pacedConcurrency tracks peak simultaneous readers like
// maxConcurrency, but holds each read open for a fixed wall delay so
// overlap is observable and per-stream timings are stable.
type pacedConcurrency struct {
	*Mem
	active, peak atomic.Int64
	delay        time.Duration
}

func (m *pacedConcurrency) ReadAt(name string, p []byte, off int64) (int, error) {
	n := m.active.Add(1)
	for {
		old := m.peak.Load()
		if n <= old || m.peak.CompareAndSwap(old, n) {
			break
		}
	}
	defer m.active.Add(-1)
	time.Sleep(m.delay)
	return m.Mem.ReadAt(name, p, off)
}

func TestFetchTunedPoolGrowsMidFetch(t *testing.T) {
	// Seeded at 1 reader with headroom to 8, the controller must raise
	// the decision mid-fetch and the worker pool must follow it: the
	// store sees more than one simultaneous reader before the fetch
	// ends, without ever exceeding the controller ceiling.
	m := NewMem()
	data := fillPattern(256<<10, 9)
	m.Put("d", data)
	mc := &pacedConcurrency{Mem: m, delay: 200 * time.Microsecond}
	tu := NewAutotuner(1, 8)
	got, err := Fetch(mc, "d", 0, int64(len(data)), FetchOptions{
		RangeSize: 1 << 10, // 256 sub-ranges: plenty of epochs
		Clock:     netsim.Real(),
		Tuner:     tu,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tuned fetch corrupted data")
	}
	st := tu.Stats()
	if st.Observed != 256 {
		t.Fatalf("observed %d sub-ranges, want 256", st.Observed)
	}
	if st.Raises < 1 {
		t.Fatalf("controller never raised: %+v", st)
	}
	peak := mc.peak.Load()
	if peak < 2 {
		t.Fatalf("pool never grew past the seed: peak = %d", peak)
	}
	if peak > 8 {
		t.Fatalf("pool exceeded the controller ceiling: peak = %d", peak)
	}
}

func TestFetchTunedShrinkKeepsSurvivor(t *testing.T) {
	// Regression: a reader's retirement decision and its running-count
	// decrement must happen atomically under poolMu. They used to be
	// split (decrement in a deferred func after the unlock), so when the
	// controller collapsed toward 1 reader, two readers could both see
	// the stale count, both pass `running > 1`, and both retire — the
	// pool hit zero with sub-ranges still queued and Fetch returned a
	// partially-filled buffer with no error. The tuner here is rigged to
	// back off on every epoch (bestRate pinned far above anything the
	// store can achieve), driving 8 readers down to 1 mid-fetch.
	m := NewMem()
	data := fillPattern(64<<10, 7)
	m.Put("d", data)
	for i := 0; i < 30; i++ {
		mc := &pacedConcurrency{Mem: m, delay: 50 * time.Microsecond}
		tu := &Autotuner{
			threads: 8, min: 1, max: 8, window: 1,
			eps: autotuneEps, beta: autotuneBeta,
			bestRate: math.MaxFloat64 / 4,
		}
		got, err := Fetch(mc, "d", 0, int64(len(data)), FetchOptions{
			RangeSize: 512, // 128 sub-ranges: the shrink happens mid-flight
			Clock:     netsim.Real(),
			Tuner:     tu,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("iteration %d: shrinking pool dropped queued sub-ranges", i)
		}
		if st := tu.Stats(); st.Drops < 1 {
			t.Fatalf("iteration %d: tuner never backed off: %+v", i, st)
		}
	}
}

func TestFetchTunerOverridesStaticThreads(t *testing.T) {
	// With a Tuner installed, the static Threads value is only a
	// leftover seed; the controller decision governs the pool size.
	m := NewMem()
	data := fillPattern(8<<10, 3)
	m.Put("d", data)
	mc := &maxConcurrency{Mem: m}
	tu := NewAutotuner(1, 1) // decision pinned at 1
	got, err := Fetch(mc, "d", 0, int64(len(data)), FetchOptions{
		Threads:   16, // ignored in favor of the tuner
		RangeSize: 1 << 10,
		Clock:     netsim.Real(),
		Tuner:     tu,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch mismatch")
	}
	if peak := mc.peak.Load(); peak != 1 {
		t.Fatalf("pinned tuner still saw %d concurrent readers", peak)
	}
}
