package store

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func cacheKey(i int) ChunkKey {
	return ChunkKey{Site: "s", File: "d", Off: int64(i) << 10, Len: 1 << 10}
}

func chunkBytes(i int) []byte { return fillPattern(1<<10, byte(i)) }

func mustGet(t *testing.T, c *ChunkCache, i int) (data []byte, release func(), hit bool) {
	t.Helper()
	data, release, hit, err := c.GetOrFetch(cacheKey(i), func() ([]byte, error) {
		return chunkBytes(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, chunkBytes(i)) {
		t.Fatalf("chunk %d bytes mismatch", i)
	}
	return data, release, hit
}

func TestChunkCacheHitMissCounters(t *testing.T) {
	c := NewChunkCache(16<<10, nil)
	_, rel, hit := mustGet(t, c, 1)
	rel()
	if hit {
		t.Fatal("first access must miss")
	}
	_, rel, hit = mustGet(t, c, 1)
	rel()
	if !hit {
		t.Fatal("second access must hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesSaved != 1<<10 {
		t.Fatalf("stats = %+v", st)
	}
	if !c.Enabled() {
		t.Fatal("capped cache must report Enabled")
	}
}

func TestChunkCacheLRUEvictionAtByteCap(t *testing.T) {
	// Cap holds 4 of the 1 KiB chunks; inserting 6 must evict the two
	// least recently used and never exceed the cap.
	c := NewChunkCache(4<<10, nil)
	for i := 0; i < 6; i++ {
		_, rel, _ := mustGet(t, c, i)
		rel()
		if got := c.Stats().Bytes; got > 4<<10 {
			t.Fatalf("resident bytes %d exceed cap", got)
		}
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Entries != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// Chunks 0 and 1 were evicted; 2..5 are resident. Probe the hits
	// first — probing a miss inserts it and evicts another entry.
	for _, i := range []int{2, 3, 4, 5} {
		_, rel, hit := mustGet(t, c, i)
		rel()
		if !hit {
			t.Fatalf("resident chunk %d missed", i)
		}
	}
	for _, i := range []int{0, 1} {
		_, rel, hit := mustGet(t, c, i)
		rel()
		if hit {
			t.Fatalf("evicted chunk %d hit", i)
		}
	}
}

func TestChunkCacheLRUOrderFollowsUse(t *testing.T) {
	c := NewChunkCache(2<<10, nil)
	for _, i := range []int{0, 1} {
		_, rel, _ := mustGet(t, c, i)
		rel()
	}
	// Touch 0 so 1 becomes the eviction victim.
	_, rel, hit := mustGet(t, c, 0)
	rel()
	if !hit {
		t.Fatal("chunk 0 should be resident")
	}
	_, rel, _ = mustGet(t, c, 2)
	rel()
	if _, rel, hit := mustGet(t, c, 0); true {
		rel()
		if !hit {
			t.Fatal("recently used chunk 0 was evicted")
		}
	}
}

func TestChunkCacheSingleflight(t *testing.T) {
	// Many goroutines racing on the same key must trigger exactly one
	// fetch; everyone shares the result.
	c := NewChunkCache(1<<20, nil)
	var fetches atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, release, _, err := c.GetOrFetch(cacheKey(7), func() ([]byte, error) {
				fetches.Add(1)
				return chunkBytes(7), nil
			})
			if err != nil {
				panic(err)
			}
			if !bytes.Equal(data, chunkBytes(7)) {
				panic("bytes mismatch")
			}
			release()
		}()
	}
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Fatalf("fetch ran %d times, want 1", n)
	}
}

func TestChunkCacheConcurrentReadersDistinctKeys(t *testing.T) {
	c := NewChunkCache(64<<10, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				i := (g + round) % 16
				data, release, _, err := c.GetOrFetch(cacheKey(i), func() ([]byte, error) {
					return chunkBytes(i), nil
				})
				if err != nil {
					panic(err)
				}
				if !bytes.Equal(data, chunkBytes(i)) {
					panic(fmt.Sprintf("chunk %d corrupted", i))
				}
				release()
			}
		}(g)
	}
	wg.Wait()
}

func TestChunkCacheFetchErrorPropagates(t *testing.T) {
	c := NewChunkCache(1<<20, nil)
	boom := fmt.Errorf("store exploded")
	_, _, _, err := c.GetOrFetch(cacheKey(1), func() ([]byte, error) { return nil, boom })
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	// A failed fetch must not poison the key.
	_, rel, hit := mustGet(t, c, 1)
	rel()
	if hit {
		t.Fatal("failed fetch must not populate the cache")
	}
}

func TestChunkCacheDisabledPassesThroughAndRecycles(t *testing.T) {
	pool := NewBufferPool()
	c := NewChunkCache(0, pool)
	if c.Enabled() {
		t.Fatal("zero-cap cache must not report Enabled")
	}
	data, release, hit, err := c.GetOrFetch(cacheKey(1), func() ([]byte, error) {
		return pool.Get(1 << 10), nil
	})
	if err != nil || hit {
		t.Fatalf("disabled cache: hit=%v err=%v", hit, err)
	}
	_ = data
	release()
	if st := pool.Stats(); st.Puts != 1 {
		t.Fatalf("release must recycle the buffer into the pool: %+v", st)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("disabled cache retained data: %+v", st)
	}
}

func TestChunkCacheEvictionDefersRecycleToLastReader(t *testing.T) {
	// A reader still holding an evicted chunk keeps its buffer alive;
	// the pool only gets it back at release. This is what makes pooled
	// buffers safe to share through the cache.
	pool := NewBufferPool()
	c := NewChunkCache(1<<10, pool)
	data, release, _, err := c.GetOrFetch(cacheKey(0), func() ([]byte, error) {
		buf := pool.Get(1 << 10)
		copy(buf, chunkBytes(0))
		return buf, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Force chunk 0 out while the reference is held.
	_, rel1, _ := mustGet(t, c, 1)
	rel1()
	if c.Stats().Evictions != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	if pool.Stats().Puts != 0 {
		t.Fatal("buffer recycled while a reader still held it")
	}
	if !bytes.Equal(data, chunkBytes(0)) {
		t.Fatal("evicted chunk corrupted under an open reference")
	}
	release()
	if pool.Stats().Puts != 1 {
		t.Fatalf("last release must recycle: %+v", pool.Stats())
	}
}

func TestChunkCacheConcurrentEvictionVsLateRelease(t *testing.T) {
	// A cache sized for 2 chunks hammered with 8 distinct keys keeps
	// eviction running constantly while readers still hold references;
	// releases routinely land after the entry has already been evicted.
	// Under -race this exercises the refcount hand-off between the
	// eviction path and the last reader's Release: the buffer must stay
	// intact until that release, then recycle exactly once.
	pool := NewBufferPool()
	c := NewChunkCache(2<<10, pool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				i := (g*3 + round) % 8
				data, release, _, err := c.GetOrFetch(cacheKey(i), func() ([]byte, error) {
					buf := pool.Get(1 << 10)
					copy(buf, chunkBytes(i))
					return buf, nil
				})
				if err != nil {
					panic(err)
				}
				// Widen the window between eviction (by the other
				// goroutines) and this reader's release.
				runtime.Gosched()
				if !bytes.Equal(data, chunkBytes(i)) {
					panic(fmt.Sprintf("chunk %d corrupted under eviction pressure", i))
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("cache too large to exercise the race: %+v", st)
	}
	if st.Bytes > 2<<10 {
		t.Fatalf("resident bytes %d exceed cap after churn", st.Bytes)
	}
	// Every buffer is out of reader hands now; recycled puts can never
	// exceed the pool's handed-out buffers.
	ps := pool.Stats()
	if ps.Puts > ps.Gets {
		t.Fatalf("pool recycled more buffers than it issued: %+v", ps)
	}
}

func TestChunkCacheOversizedChunkNotCached(t *testing.T) {
	pool := NewBufferPool()
	c := NewChunkCache(1<<10, pool)
	big := ChunkKey{Site: "s", File: "d", Off: 0, Len: 4 << 10}
	data, release, hit, err := c.GetOrFetch(big, func() ([]byte, error) {
		return pool.Get(4 << 10), nil
	})
	if err != nil || hit || len(data) != 4<<10 {
		t.Fatalf("oversized get: hit=%v err=%v len=%d", hit, err, len(data))
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized chunk cached: %+v", st)
	}
	release()
	if pool.Stats().Puts != 1 {
		t.Fatal("oversized chunk's buffer must return to the pool on release")
	}
}

func TestChunkCacheNilIsSafe(t *testing.T) {
	var c *ChunkCache
	data, release, hit, err := c.GetOrFetch(cacheKey(3), func() ([]byte, error) {
		return chunkBytes(3), nil
	})
	if err != nil || hit || !bytes.Equal(data, chunkBytes(3)) {
		t.Fatalf("nil cache get: hit=%v err=%v", hit, err)
	}
	release()
	if c.Enabled() || c.Pool() != nil || c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache must degrade to inert")
	}
}

func TestBufferPoolReusesByClass(t *testing.T) {
	p := NewBufferPool()
	buf := p.Get(1000) // class 1024
	if len(buf) != 1000 || cap(buf) != 1024 {
		t.Fatalf("len=%d cap=%d", len(buf), cap(buf))
	}
	// sync.Pool deliberately drops a fraction of Puts under the race
	// detector, so reuse is asserted over repeated round trips rather
	// than a single one.
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		p.Put(buf)
		got := p.Get(600) // same class as the 1000-byte buffer
		if len(got) != 600 || cap(got) != 1024 {
			t.Fatalf("len=%d cap=%d", len(got), cap(got))
		}
		reused = &got[0] == &buf[0]
		buf = got
	}
	if !reused {
		t.Fatal("pool never reused a returned buffer")
	}
	if st := p.Stats(); st.Gets < 2 || st.Puts < 1 || st.Misses < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBufferPoolOutOfRangeAllocates(t *testing.T) {
	p := NewBufferPool()
	huge := p.Get(128 << 20) // above the largest class
	if len(huge) != 128<<20 {
		t.Fatal("oversized get must still allocate")
	}
	p.Put(huge) // dropped, not pooled
	tiny := p.Get(0)
	if len(tiny) != 0 {
		t.Fatal("zero get")
	}
	st := p.Stats()
	if st.Puts != 0 {
		t.Fatalf("oversized put must be dropped: %+v", st)
	}
}

func TestBufferPoolForeignBufferDropped(t *testing.T) {
	p := NewBufferPool()
	p.Put(make([]byte, 1000)) // cap 1000 is not a class size
	if st := p.Stats(); st.Puts != 0 {
		t.Fatalf("foreign buffer pooled: %+v", st)
	}
}

func TestBufferPoolNilSafe(t *testing.T) {
	var p *BufferPool
	buf := p.Get(100)
	if len(buf) != 100 {
		t.Fatal("nil pool must allocate")
	}
	p.Put(buf)
	if p.Stats() != (PoolStats{}) {
		t.Fatal("nil pool stats")
	}
}

func TestChunkCacheResidentKeysTracksMembership(t *testing.T) {
	c := NewChunkCache(4<<10, nil)
	for i := 0; i < 4; i++ {
		_, rel, _ := mustGet(t, c, i)
		rel()
	}
	if got := len(c.ResidentKeys()); got != 4 {
		t.Fatalf("resident = %d, want 4", got)
	}
	// A hit must not invalidate the memoized snapshot, and an insert
	// that evicts must: chunk 4 displaces the LRU entry.
	_, rel, _ := mustGet(t, c, 3)
	rel()
	first := c.ResidentKeys()
	_, rel, _ = mustGet(t, c, 4)
	rel()
	second := c.ResidentKeys()
	if len(second) != 4 {
		t.Fatalf("resident after eviction = %d, want 4", len(second))
	}
	seen := make(map[ChunkKey]bool, len(second))
	for _, k := range second {
		seen[k] = true
	}
	if !seen[cacheKey(4)] {
		t.Fatal("newly inserted chunk missing from resident set")
	}
	_ = first
}

// BenchmarkResidentKeys guards the hot path the dirty-flag
// memoization exists for: slaves snapshot residency on every job
// request, while hits vastly outnumber membership changes.
func BenchmarkResidentKeys(b *testing.B) {
	c := NewChunkCache(2<<20, nil)
	const chunks = 1024
	for i := 0; i < chunks; i++ {
		_, rel, _, err := c.GetOrFetch(cacheKey(i), func() ([]byte, error) {
			return chunkBytes(i), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		rel()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A hit between snapshots: membership unchanged, so the
		// memoized slice must be returned without a rebuild.
		_, rel, _, _ := c.GetOrFetch(cacheKey(i%chunks), func() ([]byte, error) {
			return chunkBytes(i % chunks), nil
		})
		rel()
		if got := len(c.ResidentKeys()); got != chunks {
			b.Fatalf("resident = %d", got)
		}
	}
}
