package store

import (
	"sync"
	"time"
)

// Autotuner is a per-(site, link) AIMD controller over the concurrent
// reader count Fetch uses. The paper fixes the retrieval thread count
// per slave (Section III-B); the right value depends on the link
// profile — per-connection bandwidth vs. the service's aggregate
// egress cap — which varies per site and shifts as other clusters
// compete for the same store. The tuner closes that loop at runtime:
//
//   - every completed sub-range reports its per-stream goodput
//     (bytes / emulated seconds, the same emu-clock timings the
//     metrics layer uses) plus the reader count running at the time;
//   - observations are folded into a window; at each window boundary
//     the mean per-stream rate is compared against the best
//     unsaturated rate seen so far;
//   - while the per-stream rate holds, concurrency is raised — the
//     link is not the bottleneck yet. A fresh controller raises
//     multiplicatively (slow start) so a badly mis-tuned seed
//     converges within a couple of range rounds, then additively
//     (+1) once it has seen the knee;
//   - when the per-stream rate collapses — the aggregate egress cap
//     is binding, so more concurrency just slices the same bandwidth
//     thinner — the count backs off multiplicatively and slow start
//     ends for good.
//
// The resulting sawtooth hugs the saturation knee from below, exactly
// the feedback-driven control VM-MAD applies to cluster sizing, here
// applied to retrieval concurrency. One Autotuner is shared by every
// worker fetching over the same link, so the controller sees the
// aggregate behaviour its decisions actually cause; Fetch grows and
// shrinks its reader pool mid-flight to follow the decisions. All
// methods are safe for concurrent use; a nil Autotuner disables
// tuning.
type Autotuner struct {
	mu sync.Mutex

	threads  int  // current concurrency decision
	min, max int
	ss       bool // slow start: raise multiplicatively until the first drop

	window int     // samples folded into one decision epoch
	eps    float64 // tolerated per-stream rate degradation before backoff
	beta   float64 // multiplicative decrease factor

	// Current epoch accumulation. maxRunning is the highest reader
	// count any sample actually ran at; the controller only raises past
	// a target the pool has genuinely reached, so fetches capped by
	// sub-range scarcity hold the decision instead of inflating it.
	samples    int
	bytes      int64
	emu        time.Duration
	maxRunning int

	// bestRate is the best per-stream goodput observed (the
	// unsaturated per-connection rate), decayed mildly each epoch so
	// the controller re-learns a link whose capacity changed.
	bestRate float64

	raises  int64 // increases taken (slow-start doublings count once)
	drops   int64 // multiplicative decreases taken
	observd int64 // sub-ranges observed (all reader counts)
}

// Autotuner controller defaults. The window is short so decisions keep
// pace with the sub-range completion rate; eps tolerates the
// per-stream rate dip right at the knee without thrashing.
const (
	autotuneWindow = 16
	autotuneEps    = 0.18
	autotuneBeta   = 0.8
	autotuneDecay  = 0.995
)

// NewAutotuner returns a controller starting at initial concurrent
// readers and growing to at most max. Values below 1 default: initial
// to DefaultFetchOptions().Threads, max to 4x initial (at least 32).
func NewAutotuner(initial, max int) *Autotuner {
	if initial < 1 {
		initial = DefaultFetchOptions().Threads
	}
	if max < 1 {
		max = 4 * initial
		if max < 32 {
			max = 32
		}
	}
	if max < initial {
		max = initial
	}
	return &Autotuner{
		threads: initial, min: 1, max: max, ss: true,
		window: autotuneWindow, eps: autotuneEps, beta: autotuneBeta,
	}
}

// Threads returns the controller's current concurrency decision.
func (t *Autotuner) Threads() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.threads
}

// Max returns the controller's concurrency ceiling (0 for nil).
func (t *Autotuner) Max() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max
}

// Observe folds one completed sub-range into the controller: running
// is the reader count active when the range was issued, bytes its
// size, emu the emulated time the stream took to deliver it. It
// returns +1 when the observation closed an epoch that grew the
// thread count, -1 when it shrank it, 0 otherwise. Observations with
// no usable signal (zero bytes or emulated time) only count as
// observed.
func (t *Autotuner) Observe(running int, bytes int64, emu time.Duration) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observd++
	if bytes <= 0 || emu <= 0 {
		return 0
	}
	t.samples++
	t.bytes += bytes
	t.emu += emu
	if running > t.maxRunning {
		t.maxRunning = running
	}
	if t.samples < t.window {
		return 0
	}
	// Mean per-stream goodput over the epoch: total bytes delivered per
	// stream-second. Below the knee this holds steady as concurrency
	// grows; past it, every added stream dilutes it.
	rate := float64(t.bytes) / t.emu.Seconds()
	achieved := t.maxRunning
	t.samples, t.bytes, t.emu, t.maxRunning = 0, 0, 0, 0

	// Decay then refresh the unsaturated baseline, so a link that
	// genuinely slowed down does not pin the controller at min forever.
	t.bestRate *= autotuneDecay
	if rate > t.bestRate {
		t.bestRate = rate
	}

	if rate >= t.bestRate*(1-t.eps) {
		// Per-stream rate held: the link still has headroom. Only probe
		// past a target the pool actually reached this epoch — when
		// sub-range scarcity caps the readers below target, raising
		// further would just drift the decision away from reality.
		if t.threads > achieved || t.threads >= t.max {
			return 0
		}
		if t.ss {
			t.threads *= 2
		} else {
			t.threads++
		}
		if t.threads > t.max {
			t.threads = t.max
		}
		t.raises++
		return 1
	}
	// Per-stream rate collapsed below the unsaturated baseline: the
	// aggregate cap is binding. Multiplicative decrease, and the end of
	// slow start — from here on the controller probes additively.
	t.ss = false
	next := int(float64(t.threads) * t.beta)
	if next >= t.threads {
		next = t.threads - 1
	}
	if next < t.min {
		next = t.min
	}
	if next == t.threads {
		return 0
	}
	t.threads = next
	t.drops++
	return -1
}

// Goodput returns the best unsaturated per-stream rate the controller
// has observed, in bytes per emulated second (0 for a nil or untrained
// controller). It is the same decayed baseline the AIMD loop compares
// against, so consumers sizing transfers from it track a link whose
// capacity drifts.
func (t *Autotuner) Goodput() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bestRate
}

// AutotuneStats is a point-in-time controller snapshot.
type AutotuneStats struct {
	Threads  int   // current concurrency decision
	Raises   int64 // increases taken
	Drops    int64 // multiplicative decreases taken
	Observed int64 // sub-ranges observed
}

// Stats returns the controller's counters.
func (t *Autotuner) Stats() AutotuneStats {
	if t == nil {
		return AutotuneStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return AutotuneStats{Threads: t.threads, Raises: t.raises, Drops: t.drops, Observed: t.observd}
}
