package store

import (
	"bytes"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
)

// countingStore wraps a Store and tallies backing traffic, so tests
// can assert how many bytes the buffer actually pulled from "S3".
type countingStore struct {
	Store
	reads atomic.Int64 // ReadAt calls
	bytes atomic.Int64 // bytes returned
}

func (c *countingStore) ReadAt(name string, p []byte, off int64) (int, error) {
	n, err := c.Store.ReadAt(name, p, off)
	c.reads.Add(1)
	c.bytes.Add(int64(n))
	return n, err
}

func newTestBuffer(capacity int64, objects map[string][]byte) (*SiteBuffer, *countingStore) {
	mem := NewMem()
	for name, data := range objects {
		mem.Put(name, data)
	}
	backing := &countingStore{Store: mem}
	buf := NewSiteBuffer(SiteBufferConfig{
		Site: "cloud", Backing: backing, Capacity: capacity,
		Fetch: DefaultFetchOptions(),
	})
	return buf, backing
}

func TestSiteBufferReadThroughAndHit(t *testing.T) {
	obj := fillPattern(64<<10, 7)
	buf, backing := newTestBuffer(1<<20, map[string][]byte{"d": obj})

	p := make([]byte, 16<<10)
	n, hit, err := buf.ReadAtHit("d", p, 8<<10)
	if err != nil || n != len(p) || hit {
		t.Fatalf("first read: n=%d hit=%v err=%v", n, hit, err)
	}
	if !bytes.Equal(p, obj[8<<10:24<<10]) {
		t.Fatal("first read returned wrong bytes")
	}
	n, hit, err = buf.ReadAtHit("d", p, 8<<10)
	if err != nil || n != len(p) || !hit {
		t.Fatalf("second read: n=%d hit=%v err=%v", n, hit, err)
	}
	if got := backing.bytes.Load(); got != 16<<10 {
		t.Fatalf("backing fetched %d bytes, want one 16 KiB chunk", got)
	}
	st := buf.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.ServedBytes != 32<<10 || st.BackingBytes != 16<<10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSiteBufferSingleflightStress(t *testing.T) {
	// 16 concurrent clients missing on the same cold chunk must cost
	// exactly one backing fetch: this is the tier's whole point.
	obj := fillPattern(256<<10, 3)
	buf, backing := newTestBuffer(1<<20, map[string][]byte{"d": obj})

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := make([]byte, 128<<10)
			n, _, err := buf.ReadAtHit("d", p, 64<<10)
			if err != nil {
				errs <- err
				return
			}
			if n != len(p) || !bytes.Equal(p, obj[64<<10:192<<10]) {
				t.Error("concurrent read returned wrong bytes")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := backing.bytes.Load(); got != 128<<10 {
		t.Fatalf("backing fetched %d bytes for %d concurrent clients, want one 128 KiB fetch", got, clients)
	}
	st := buf.Stats()
	if st.Hits+st.Misses != clients {
		t.Fatalf("hits %d + misses %d != %d clients", st.Hits, st.Misses, clients)
	}
}

func TestSiteBufferStageThenRead(t *testing.T) {
	obj := fillPattern(64<<10, 9)
	buf, backing := newTestBuffer(1<<20, map[string][]byte{"d": obj})

	staged, err := buf.Stage("d", 0, 32<<10)
	if err != nil || staged != 32<<10 {
		t.Fatalf("first stage: %d, %v", staged, err)
	}
	staged, err = buf.Stage("d", 0, 32<<10)
	if err != nil || staged != 0 {
		t.Fatalf("re-stage of resident chunk: %d, %v (want 0 bytes)", staged, err)
	}
	p := make([]byte, 32<<10)
	n, hit, err := buf.ReadAtHit("d", p, 0)
	if err != nil || n != len(p) || !hit {
		t.Fatalf("read after stage: n=%d hit=%v err=%v (want a buffer hit)", n, hit, err)
	}
	if !bytes.Equal(p, obj[:32<<10]) {
		t.Fatal("staged bytes mismatch")
	}
	if got := backing.bytes.Load(); got != 32<<10 {
		t.Fatalf("backing fetched %d bytes, want the staged 32 KiB only", got)
	}
	if st := buf.Stats(); st.StagedBytes != 32<<10 {
		t.Fatalf("StagedBytes = %d", st.StagedBytes)
	}
}

func TestSiteBufferTailKeepsReaderAtSemantics(t *testing.T) {
	// A read overlapping the object tail cannot be satisfied by the
	// ranged fetcher (short reads are errors there); the buffer must
	// degrade to one direct read and keep io.ReaderAt EOF semantics.
	obj := fillPattern(10<<10, 5)
	buf, _ := newTestBuffer(1<<20, map[string][]byte{"d": obj})

	p := make([]byte, 4<<10)
	n, hit, err := buf.ReadAtHit("d", p, 8<<10)
	if err != io.EOF || n != 2<<10 || hit {
		t.Fatalf("tail read: n=%d hit=%v err=%v, want 2 KiB + EOF", n, hit, err)
	}
	if !bytes.Equal(p[:n], obj[8<<10:]) {
		t.Fatal("tail bytes mismatch")
	}
}

func TestSiteBufferBackingErrorPropagates(t *testing.T) {
	buf, _ := newTestBuffer(1<<20, nil) // no objects: every read fails
	p := make([]byte, 1<<10)
	if _, _, err := buf.ReadAtHit("missing", p, 0); err == nil {
		t.Fatal("read of missing object must fail")
	}
	if _, err := buf.Stage("missing", 0, 1<<10); err == nil {
		t.Fatal("stage of missing object must fail")
	}
}

func TestSiteBufferDrain(t *testing.T) {
	obj := fillPattern(64<<10, 1)
	buf, backing := newTestBuffer(1<<20, map[string][]byte{"d": obj})

	p := make([]byte, 16<<10)
	if _, _, err := buf.ReadAtHit("d", p, 0); err != nil {
		t.Fatal(err)
	}
	if keys := buf.ResidentKeys(); len(keys) != 1 {
		t.Fatalf("resident keys before drain: %d", len(keys))
	}
	buf.Drain()
	if keys := buf.ResidentKeys(); len(keys) != 0 {
		t.Fatalf("resident keys after drain: %d", len(keys))
	}
	// The buffer stays usable: the next read re-warms it.
	n, hit, err := buf.ReadAtHit("d", p, 0)
	if err != nil || n != len(p) || hit {
		t.Fatalf("read after drain: n=%d hit=%v err=%v", n, hit, err)
	}
	if got := backing.bytes.Load(); got != 32<<10 {
		t.Fatalf("backing fetched %d bytes, want two 16 KiB fetches around the drain", got)
	}
}

func TestSiteBufferNilSafe(t *testing.T) {
	var b *SiteBuffer
	if _, _, err := b.ReadAtHit("d", make([]byte, 1), 0); err == nil {
		t.Fatal("nil buffer read must error")
	}
	if _, err := b.Stage("d", 0, 1); err == nil {
		t.Fatal("nil buffer stage must error")
	}
	b.Drain()
	if b.Pool() != nil || b.ResidentKeys() != nil {
		t.Fatal("nil buffer accessors must return zero values")
	}
	if st := b.Stats(); st != (BufferStats{}) {
		t.Fatalf("nil buffer stats = %+v", st)
	}
}

func TestSiteBufferServedOverWire(t *testing.T) {
	// A buffer behind a store.Server: the Hit flag must travel the
	// wire, KindStage must stage, and re-reads must hit.
	obj := fillPattern(64<<10, 11)
	buf, backing := newTestBuffer(1<<20, map[string][]byte{"d": obj})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, buf)
	defer srv.Close()
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	p := make([]byte, 16<<10)
	n, hit, err := c.ReadAtHit("d", p, 0)
	if err != nil || n != len(p) || hit {
		t.Fatalf("cold remote read: n=%d hit=%v err=%v", n, hit, err)
	}
	n, hit, err = c.ReadAtHit("d", p, 0)
	if err != nil || n != len(p) || !hit {
		t.Fatalf("warm remote read: n=%d hit=%v err=%v", n, hit, err)
	}
	if !bytes.Equal(p, obj[:16<<10]) {
		t.Fatal("remote read bytes mismatch")
	}
	staged, err := c.Stage("d", 32<<10, 16<<10)
	if err != nil || staged != 16<<10 {
		t.Fatalf("remote stage: %d, %v", staged, err)
	}
	if staged, err = c.Stage("d", 32<<10, 16<<10); err != nil || staged != 0 {
		t.Fatalf("remote re-stage: %d, %v", staged, err)
	}
	n, hit, err = c.ReadAtHit("d", p, 32<<10)
	if err != nil || n != len(p) || !hit {
		t.Fatalf("read of remotely staged chunk: n=%d hit=%v err=%v", n, hit, err)
	}
	if got := backing.bytes.Load(); got != 32<<10 {
		t.Fatalf("backing fetched %d bytes, want 32 KiB across the exchange", got)
	}
}

func TestPlainStoreRejectsStageAndNeverHits(t *testing.T) {
	mem := NewMem()
	mem.Put("d", fillPattern(4<<10, 2))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, mem)
	defer srv.Close()
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	p := make([]byte, 1<<10)
	for i := 0; i < 2; i++ {
		_, hit, err := c.ReadAtHit("d", p, 0)
		if err != nil || hit {
			t.Fatalf("plain store read %d: hit=%v err=%v", i, hit, err)
		}
	}
	if _, err := c.Stage("d", 0, 1<<10); err == nil {
		t.Fatal("plain store must reject staging")
	}
}
