package store

import (
	"container/list"
	"sync"
)

// ChunkKey identifies one chunk's bytes: the owning site's file plus
// the exact [Off, Off+Len) window. Identical keys always denote
// identical bytes (data files are immutable for a run — and, for
// iterative drivers, across a whole multi-pass computation).
type ChunkKey struct {
	Site string
	File string
	Off  int64
	Len  int64
}

// ChunkCache is a byte-capped LRU over fetched chunk data, shared by
// all workers of a slave and — when installed into a persistent
// SiteSpec — across driver iterations, so multi-pass algorithms stop
// re-paying object-store retrieval for the same chunks every pass.
//
// Entries are reference counted: GetOrFetch hands out the cached slice
// together with a release func, and an entry evicted while readers
// still hold it is only recycled into the buffer pool after the last
// release. Concurrent misses on one key fetch once (singleflight);
// the remaining callers wait and share the result.
type ChunkCache struct {
	mu       sync.Mutex
	capBytes int64
	size     int64
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[ChunkKey]*list.Element
	inflight map[ChunkKey]*cacheFlight
	pool     *BufferPool // receives evicted buffers; may be nil

	hits       int64
	misses     int64
	evictions  int64
	bytesSaved int64 // bytes served from cache instead of the store

	// residentSnap memoizes ResidentKeys between membership changes, so
	// the per-request residency piggyback stops rescanning (and
	// reallocating) the full key set on every call. Hits only reorder
	// the LRU — membership is unchanged — so they do not invalidate it.
	residentSnap  []ChunkKey
	residentDirty bool
}

type cacheEntry struct {
	key  ChunkKey
	data []byte
	refs int  // readers currently holding data
	dead bool // evicted; recycle the buffer when refs hits 0
}

// cacheFlight is one in-progress fetch other callers wait on.
type cacheFlight struct {
	done chan struct{}
	data []byte
	err  error
}

// NewChunkCache returns a cache holding at most capBytes of chunk
// data. Evicted (and uncacheably large) buffers are returned to pool
// when it is non-nil. A capBytes below 1 disables caching entirely —
// GetOrFetch degrades to calling fetch — so a zero-config cache is
// safe to thread through unconditionally.
func NewChunkCache(capBytes int64, pool *BufferPool) *ChunkCache {
	return &ChunkCache{
		capBytes:      capBytes,
		lru:           list.New(),
		entries:       make(map[ChunkKey]*list.Element),
		inflight:      make(map[ChunkKey]*cacheFlight),
		pool:          pool,
		residentDirty: true,
	}
}

// GetOrFetch returns the chunk's bytes and whether they came from the
// cache. On a miss it runs fetch (outside the cache lock), caches the
// result, and returns it. The returned release func MUST be called
// exactly once when the caller is done reading data, and data must not
// be read after release; release is never nil. The fetch callback must
// return a buffer the cache may own (pooled buffers are recycled on
// eviction).
func (c *ChunkCache) GetOrFetch(key ChunkKey, fetch func() ([]byte, error)) (data []byte, release func(), hit bool, err error) {
	if c == nil || c.capBytes < 1 {
		data, err = fetch()
		if err != nil {
			return nil, nil, false, err
		}
		return data, func() { c.recycle(data) }, false, nil
	}

	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*cacheEntry)
			c.lru.MoveToFront(el)
			e.refs++
			c.hits++
			c.bytesSaved += int64(len(e.data))
			c.mu.Unlock()
			return e.data, func() { c.release(e) }, true, nil
		}
		if fl, ok := c.inflight[key]; ok {
			// Another worker is fetching this chunk; share its result.
			c.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, nil, false, fl.err
			}
			// The winner inserted the entry; loop to take a reference.
			// (It may already have been evicted under pressure — then we
			// fetch it ourselves.)
			c.mu.Lock()
			if el, ok := c.entries[key]; ok {
				e := el.Value.(*cacheEntry)
				c.lru.MoveToFront(el)
				e.refs++
				c.hits++
				c.bytesSaved += int64(len(e.data))
				c.mu.Unlock()
				return e.data, func() { c.release(e) }, true, nil
			}
			c.mu.Unlock()
			continue
		}
		fl := &cacheFlight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.misses++
		c.mu.Unlock()

		fl.data, fl.err = fetch()
		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err != nil {
			c.mu.Unlock()
			close(fl.done)
			return nil, nil, false, fl.err
		}
		e := c.insertLocked(key, fl.data)
		c.mu.Unlock()
		close(fl.done)
		if e == nil {
			// Too large to cache: the caller owns the buffer alone.
			data := fl.data
			return data, func() { c.recycle(data) }, false, nil
		}
		return e.data, func() { c.release(e) }, false, nil
	}
}

// insertLocked adds a fetched chunk, evicting LRU entries to fit, and
// returns the entry holding one reference for the caller. Chunks
// larger than the cap are not cached (nil return).
func (c *ChunkCache) insertLocked(key ChunkKey, data []byte) *cacheEntry {
	n := int64(len(data))
	if n > c.capBytes {
		return nil
	}
	for c.size+n > c.capBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.evictLocked(back)
	}
	e := &cacheEntry{key: key, data: data, refs: 1}
	c.entries[key] = c.lru.PushFront(e)
	c.size += n
	c.residentDirty = true
	return e
}

// evictLocked removes one entry from the LRU; its buffer is recycled
// now if unreferenced, otherwise when the last reader releases.
func (c *ChunkCache) evictLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.size -= int64(len(e.data))
	c.evictions++
	c.residentDirty = true
	e.dead = true
	if e.refs == 0 {
		c.recycle(e.data)
		e.data = nil
	}
}

// release drops one reader reference.
func (c *ChunkCache) release(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	free := e.dead && e.refs == 0
	data := e.data
	if free {
		e.data = nil
	}
	c.mu.Unlock()
	if free {
		c.recycle(data)
	}
}

func (c *ChunkCache) recycle(data []byte) {
	if c != nil && c.pool != nil {
		c.pool.Put(data)
	}
}

// Pool returns the buffer pool evicted chunks recycle into (nil for a
// nil cache), so callers can fetch with the same pool the cache fills.
func (c *ChunkCache) Pool() *BufferPool {
	if c == nil {
		return nil
	}
	return c.pool
}

// ResidentKeys returns the keys of every chunk currently resident.
// Slaves report these upstream so the head can steer work stealing
// away from chunks already warm here. Consumers use membership only,
// so the snapshot is memoized between insertions and evictions (cache
// hits do not rebuild it) and no MRU ordering is promised. The
// returned slice is shared across calls until the membership changes:
// treat it as read-only.
func (c *ChunkCache) ResidentKeys() []ChunkKey {
	if c == nil || c.capBytes < 1 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.residentDirty {
		c.residentSnap = make([]ChunkKey, 0, len(c.entries))
		for el := c.lru.Front(); el != nil; el = el.Next() {
			c.residentSnap = append(c.residentSnap, el.Value.(*cacheEntry).key)
		}
		c.residentDirty = false
	}
	return c.residentSnap
}

// Drain evicts every resident chunk: buffers nobody holds recycle into
// the pool now, buffers still referenced recycle on their last
// release. Counters survive and the cache stays usable — this is the
// burst buffer's end-of-run teardown, returning its bricks to the
// pool the way the burstbuffer model deprovisions a per-job pool.
func (c *ChunkCache) Drain() {
	if c == nil {
		return
	}
	c.mu.Lock()
	for el := c.lru.Back(); el != nil; el = c.lru.Back() {
		c.evictLocked(el)
	}
	c.mu.Unlock()
}

// Enabled reports whether the cache actually retains chunks (non-nil
// with a positive byte cap), as opposed to the pass-through degraded
// modes.
func (c *ChunkCache) Enabled() bool { return c != nil && c.capBytes > 0 }

// CacheStats is a point-in-time snapshot of the cache's counters.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	BytesSaved int64 // bytes served from cache instead of refetched
	Bytes      int64 // resident chunk bytes
	Entries    int
}

// Stats returns the cache's counters.
func (c *ChunkCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		BytesSaved: c.bytesSaved, Bytes: c.size, Entries: len(c.entries),
	}
}
