package store

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cloudburst/internal/faults"
	"cloudburst/internal/netsim"
	"cloudburst/internal/wire"
)

// ServerOptions configure fault injection on a store server: when
// Faults is set, each incoming request is checked against the plan
// (attributed to Site) before it touches the store. Clock paces
// injected stalls in emulated time.
type ServerOptions struct {
	Faults *faults.Plan
	Site   string
	Clock  netsim.Clock
}

// Server exposes a Store over the wire protocol so remote sites can
// read it through (shaped) network connections. Used by the cmd/
// daemons and by integration tests; in-process deployments talk to
// stores directly.
type Server struct {
	store Store
	opts  ServerOptions
	pool  *BufferPool // recycles read buffers and wire frames

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// maxReadLen bounds a single KindReadAt request: a corrupt or hostile
// length must not translate into an arbitrary server-side allocation.
// Chunks are tens of megabytes at most; this leaves generous headroom.
const maxReadLen = 256 << 20

// hitReader is the optional Store extension a SiteBuffer implements:
// a ReadAt that also reports whether the bytes were already resident.
// A Server whose store implements it marks each KindReadResp with the
// Hit flag, so clients can attribute reads to the buffer tier.
type hitReader interface {
	ReadAtHit(name string, p []byte, off int64) (int, bool, error)
}

// stager is the optional Store extension behind KindStage: pull a
// chunk into a shared cache without returning its bytes. Servers whose
// store lacks it answer KindStage with a remote error.
type stager interface {
	Stage(name string, off, length int64) (int64, error)
}

// Serve starts serving store on l and returns immediately; the server
// owns the listener until Close.
func Serve(l net.Listener, s Store) *Server {
	return ServeWith(l, s, ServerOptions{})
}

// ServeWith is Serve with fault-injection options.
func ServeWith(l net.Listener, s Store, opts ServerOptions) *Server {
	if opts.Clock == nil {
		opts.Clock = netsim.Instant()
	}
	srv := &Server{store: s, opts: opts, ln: l, pool: NewBufferPool()}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Transient accept failures (EMFILE, aborted handshakes)
			// must not kill the server; back off and keep listening.
			// Exit only when the listener itself is gone.
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 5 * time.Millisecond
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			wc := wire.NewConn(conn)
			wc.SetBufferPool(s.pool)
			s.handle(wc)
		}()
	}
}

func (s *Server) handle(c *wire.Conn) {
	defer c.Close()
	for {
		req, err := c.Recv()
		if err != nil {
			return
		}
		if s.opts.Faults != nil && req.Kind == wire.KindReadAt {
			if d := s.opts.Faults.Decide(s.opts.Site, req.File); d.Kind != faults.None {
				switch d.Kind {
				case faults.Reset:
					// Drop the connection mid-exchange; the client sees
					// a transport error and retries on a fresh stream.
					return
				case faults.Stall:
					s.opts.Clock.Sleep(d.Stall)
				default:
					ferr := faults.RequestError(d, s.opts.Site, req.File)
					if err := c.Send(&wire.Message{Kind: wire.KindError, Err: ferr.Error()}); err != nil {
						return
					}
					continue
				}
			}
		}
		var resp wire.Message
		var recycle []byte // pooled read buffer, returned after the send
		switch req.Kind {
		case wire.KindReadAt:
			if req.Len < 0 || req.Len > maxReadLen {
				resp = wire.Message{Kind: wire.KindError,
					Err: fmt.Sprintf("store: read length %d out of range", req.Len)}
				break
			}
			buf := s.pool.Get(req.Len)
			recycle = buf
			var n int
			var hit bool
			var err error
			if hr, ok := s.store.(hitReader); ok {
				n, hit, err = hr.ReadAtHit(req.File, buf, req.Off)
			} else {
				n, err = s.store.ReadAt(req.File, buf, req.Off)
			}
			if err != nil && err != io.EOF {
				resp = wire.Message{Kind: wire.KindError, Err: err.Error()}
			} else {
				resp = wire.Message{Kind: wire.KindReadResp, Data: buf[:n], Done: err == io.EOF, Hit: hit}
			}
		case wire.KindStat:
			size, err := s.store.Size(req.File)
			if err != nil {
				resp = wire.Message{Kind: wire.KindError, Err: err.Error()}
			} else {
				resp = wire.Message{Kind: wire.KindStatResp, Len: size}
			}
		case wire.KindList:
			names, err := s.store.List()
			if err != nil {
				resp = wire.Message{Kind: wire.KindError, Err: err.Error()}
			} else {
				resp = wire.Message{Kind: wire.KindListResp, Files: names}
			}
		case wire.KindStage:
			st, ok := s.store.(stager)
			if !ok {
				resp = wire.Message{Kind: wire.KindError, Err: "store: staging unsupported"}
				break
			}
			if req.Len < 0 || req.Len > maxReadLen {
				resp = wire.Message{Kind: wire.KindError,
					Err: fmt.Sprintf("store: stage length %d out of range", req.Len)}
				break
			}
			staged, err := st.Stage(req.File, req.Off, req.Len)
			if err != nil {
				resp = wire.Message{Kind: wire.KindError, Err: err.Error()}
			} else {
				resp = wire.Message{Kind: wire.KindStageResp, Len: staged}
			}
		default:
			resp = wire.Message{Kind: wire.KindError, Err: fmt.Sprintf("store: unexpected %v", req.Kind)}
		}
		err = c.Send(&resp)
		if recycle != nil {
			// Send has copied Data into the frame; the read buffer is free.
			s.pool.Put(recycle)
		}
		if err != nil {
			return
		}
	}
}

// Dialer opens a connection to a store server; netsim shapers supply
// shaped dialers for cross-site access.
type Dialer func(network, addr string) (net.Conn, error)

// Client is a Store backed by a remote Server. It maintains a pool of
// connections so the multi-threaded chunk fetcher's concurrent range
// requests each travel on their own (individually shaped) stream.
type Client struct {
	addr string
	dial Dialer
	pool *BufferPool // recycles wire frames and response Data buffers

	mu     sync.Mutex
	idle   []*wire.Conn
	closed bool
}

// NewClient returns a client for the server at addr. A nil dialer
// uses net.Dial.
func NewClient(addr string, dial Dialer) *Client {
	if dial == nil {
		dial = net.Dial
	}
	return &Client{addr: addr, dial: dial, pool: NewBufferPool()}
}

var errClientClosed = errors.New("store: client closed")

func (c *Client) get() (*wire.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	raw, err := c.dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	conn := wire.NewConn(raw)
	conn.SetBufferPool(c.pool)
	return conn, nil
}

func (c *Client) put(conn *wire.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= 64 {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// Close tears down pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}

func (c *Client) call(req *wire.Message) (*wire.Message, error) {
	conn, err := c.get()
	if err != nil {
		if errors.Is(err, errClientClosed) {
			return nil, err // deliberate shutdown: fatal
		}
		return nil, &transportError{addr: c.addr, err: err}
	}
	resp, err := conn.Call(req)
	if err != nil {
		conn.Close()
		var re *wire.RemoteError
		if errors.As(err, &re) {
			// The server answered with an error: pass it through so the
			// retry layer classifies it by content (a SlowDown retries,
			// a not-found does not).
			return nil, err
		}
		// Transport failure: the pooled stream is broken, but a retry
		// travels a freshly dialed one, so mark it transient.
		return nil, &transportError{addr: c.addr, err: err}
	}
	c.put(conn)
	return resp, nil
}

// ReadAt implements Store.
func (c *Client) ReadAt(name string, p []byte, off int64) (int, error) {
	resp, err := c.call(&wire.Message{Kind: wire.KindReadAt, File: name, Off: off, Len: int64(len(p))})
	if err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	// The response Data landed in a pooled buffer (the conn shares
	// c.pool); now that it is copied out, recycle it.
	c.pool.Put(resp.Data)
	if resp.Done || n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ReadAtHit is ReadAt plus the server's buffer-tier attribution: hit
// is true when a site buffer on the other end served the bytes from
// its resident cache. Servers fronting a plain store always answer
// hit=false, so the method is safe against any server.
func (c *Client) ReadAtHit(name string, p []byte, off int64) (int, bool, error) {
	resp, err := c.call(&wire.Message{Kind: wire.KindReadAt, File: name, Off: off, Len: int64(len(p))})
	if err != nil {
		return 0, false, err
	}
	n := copy(p, resp.Data)
	c.pool.Put(resp.Data)
	if resp.Done || n < len(p) {
		return n, resp.Hit, io.EOF
	}
	return n, resp.Hit, nil
}

// Stage asks the server to pull [off, off+length) of name into its
// shared cache (a site buffer) without shipping the bytes back; it
// returns the bytes the server actually staged (0 when already
// resident). Servers without staging answer with a RemoteError.
func (c *Client) Stage(name string, off, length int64) (int64, error) {
	resp, err := c.call(&wire.Message{Kind: wire.KindStage, File: name, Off: off, Len: length})
	if err != nil {
		return 0, err
	}
	return resp.Len, nil
}

// Size implements Store.
func (c *Client) Size(name string) (int64, error) {
	resp, err := c.call(&wire.Message{Kind: wire.KindStat, File: name})
	if err != nil {
		return 0, err
	}
	return resp.Len, nil
}

// List implements Store.
func (c *Client) List() ([]string, error) {
	resp, err := c.call(&wire.Message{Kind: wire.KindList})
	if err != nil {
		return nil, err
	}
	return resp.Files, nil
}
