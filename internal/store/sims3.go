package store

import (
	"sync"
	"time"

	"cloudburst/internal/faults"
	"cloudburst/internal/netsim"
)

// SimS3 wraps a backing store with the access characteristics of a
// cloud object store as seen from one client site:
//
//   - every request pays a first-byte latency,
//   - every request's stream is capped at a per-request bandwidth,
//   - all clients of the service share an aggregate egress cap.
//
// This reproduces the incentive the paper's retrieval layer exploits:
// a single reader cannot saturate the path to S3, so slaves fetch a
// chunk with multiple concurrent sub-range readers, and concurrency
// helps until the aggregate cap is reached.
//
// Distinct sites see the same objects through different SimS3 views
// (e.g. cloud-internal vs. across the WAN) while sharing one aggregate
// bucket; build such views with NewSimS3 using a shared *Service.
type SimS3 struct {
	backing   Store
	clk       netsim.Clock
	latency   time.Duration
	perStream float64
	aggregate *netsim.Bucket

	// plan, when set, injects faults into reads on behalf of site.
	plan *faults.Plan
	site string

	// seekPenalty, when set, is charged on reads that do not continue
	// one of the object's active read streams — a storage-node model
	// with per-stream readahead, which is what makes the head's
	// consecutive-job assignment worth anything. Object stores leave
	// it zero: every ranged GET costs the same.
	seekPenalty time.Duration
	seekMu      sync.Mutex
	// tails[name] holds the end offsets of recent sequential streams.
	tails map[string][]int64
}

// maxSeekTails bounds the per-object stream tails tracked by the seek
// model (a storage node's readahead contexts).
const maxSeekTails = 64

// Service is the shared, site-independent half of a simulated S3
// deployment: the object bytes plus the service-wide egress cap.
type Service struct {
	// Objects holds the stored data.
	Objects *Mem
	clk     netsim.Clock
	egress  *netsim.Bucket
}

// NewService creates a simulated S3 service with the given aggregate
// egress bandwidth (bytes per emulated second; 0 = unlimited).
func NewService(clk netsim.Clock, egress float64) *Service {
	if clk == nil {
		clk = netsim.Instant()
	}
	burst := egress / 20
	if burst < 256<<10 {
		burst = 256 << 10
	}
	return &Service{
		Objects: NewMem(),
		clk:     clk,
		egress:  netsim.NewBucket(clk, egress, burst),
	}
}

// View returns this service as seen across the given link: requests
// pay the link's latency and are capped at its per-stream bandwidth,
// while still sharing the service's aggregate egress budget.
func (s *Service) View(link netsim.Link) *SimS3 {
	return &SimS3{
		backing:   s.Objects,
		clk:       s.clk,
		latency:   link.Latency,
		perStream: link.PerStream,
		aggregate: s.egress,
	}
}

// NewSimS3 wraps an arbitrary backing store with S3-like shaping. Pass
// a nil aggregate for no service-wide cap.
func NewSimS3(backing Store, clk netsim.Clock, latency time.Duration, perStream float64, aggregate *netsim.Bucket) *SimS3 {
	if clk == nil {
		clk = netsim.Instant()
	}
	return &SimS3{backing: backing, clk: clk, latency: latency, perStream: perStream, aggregate: aggregate}
}

// WithSeekPenalty enables the disk seek model: reads that do not
// continue one of the object's recent read streams pay the extra
// penalty. It returns s for chaining.
func (s *SimS3) WithSeekPenalty(d time.Duration) *SimS3 {
	s.seekPenalty = d
	s.tails = make(map[string][]int64)
	return s
}

// WithFaults consults plan on every read, injecting faults attributed
// to site. Transient, SlowDown, and Reset decisions fail the read with
// a retryable error after charging the request latency (the failed
// round-trip still costs a round-trip); Stall decisions delay the read
// by the spec's duration and then let it proceed. It returns s for
// chaining.
func (s *SimS3) WithFaults(plan *faults.Plan, site string) *SimS3 {
	s.plan = plan
	s.site = site
	return s
}

// seekCost reports the penalty for a read at off and records the new
// stream position.
func (s *SimS3) seekCost(name string, off int64, n int) time.Duration {
	if s.seekPenalty <= 0 {
		return 0
	}
	s.seekMu.Lock()
	defer s.seekMu.Unlock()
	tails := s.tails[name]
	for i, tail := range tails {
		if tail == off {
			tails[i] = off + int64(n)
			return 0
		}
	}
	if len(tails) >= maxSeekTails {
		tails = tails[1:]
	}
	s.tails[name] = append(tails, off+int64(n))
	return s.seekPenalty
}

// ReadAt implements Store, charging the request's latency and
// bandwidth before returning.
func (s *SimS3) ReadAt(name string, p []byte, off int64) (int, error) {
	if d := s.plan.Decide(s.site, name); d.Kind != faults.None {
		switch d.Kind {
		case faults.Stall:
			s.clk.Sleep(d.Stall)
		default:
			s.clk.Sleep(s.latency)
			return 0, faults.RequestError(d, s.site, name)
		}
	}
	start := s.clk.Now()
	n, err := s.backing.ReadAt(name, p, off)
	if n > 0 {
		s.aggregate.Take(n)
	}
	// Enforce the per-request floor: latency (+ seek) + bytes/perStream,
	// counting whatever time the aggregate bucket already consumed.
	minEmu := s.latency + s.seekCost(name, off, n)
	if s.perStream > 0 && n > 0 {
		minEmu += time.Duration(float64(n) / s.perStream * float64(time.Second))
	}
	if elapsed := s.clk.ToEmu(s.clk.Now().Sub(start)); elapsed < minEmu {
		s.clk.Sleep(minEmu - elapsed)
	}
	return n, err
}

// Size implements Store; metadata requests pay one latency.
func (s *SimS3) Size(name string) (int64, error) {
	s.clk.Sleep(s.latency)
	return s.backing.Size(name)
}

// List implements Store; pays one latency.
func (s *SimS3) List() ([]string, error) {
	s.clk.Sleep(s.latency)
	return s.backing.List()
}
