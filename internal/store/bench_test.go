package store

import (
	"fmt"
	"testing"

	"cloudburst/internal/netsim"
)

// BenchmarkFetchThreads measures the unshaped multi-threaded chunk
// fetcher at several thread counts (protocol overhead only; bandwidth
// effects are covered by the experiment harness).
func BenchmarkFetchThreads(b *testing.B) {
	m := NewMem()
	data := fillPattern(4<<20, 1)
	m.Put("d", data)
	for _, threads := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := Fetch(m, "d", 0, int64(len(data)), FetchOptions{
					Threads: threads, RangeSize: 256 << 10,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemoteReadAt measures one ranged read through the TCP store
// protocol.
func BenchmarkRemoteReadAt(b *testing.B) {
	m := NewMem()
	m.Put("d", fillPattern(1<<20, 2))
	ln, err := newLocalListener()
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(ln, m)
	defer srv.Close()
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadAt("d", buf, int64(i%16)<<16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimS3Unshaped measures the SimS3 wrapper's bookkeeping
// overhead with shaping disabled.
func BenchmarkSimS3Unshaped(b *testing.B) {
	svc := NewService(netsim.Instant(), 0)
	svc.Objects.Put("d", fillPattern(1<<20, 3))
	view := svc.View(netsim.Link{})
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := view.ReadAt("d", buf, int64(i%16)<<16); err != nil {
			b.Fatal(err)
		}
	}
}
