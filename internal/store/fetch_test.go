package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cloudburst/internal/faults"
	"cloudburst/internal/metrics"
)

func TestFetchWholeObject(t *testing.T) {
	m := NewMem()
	data := fillPattern(1<<20, 13)
	m.Put("d", data)
	got, err := Fetch(m, "d", 0, int64(len(data)), DefaultFetchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch mismatch")
	}
}

func TestFetchSubRange(t *testing.T) {
	m := NewMem()
	data := fillPattern(100_000, 4)
	m.Put("d", data)
	got, err := Fetch(m, "d", 12_345, 50_000, FetchOptions{Threads: 4, RangeSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[12_345:62_345]) {
		t.Fatal("sub-range fetch mismatch")
	}
}

func TestFetchSequentialFallback(t *testing.T) {
	m := NewMem()
	data := fillPattern(10_000, 2)
	m.Put("d", data)
	got, err := Fetch(m, "d", 0, 10_000, FetchOptions{Threads: 0, RangeSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential fetch mismatch")
	}
}

func TestFetchZeroLength(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(10, 0))
	got, err := Fetch(m, "d", 5, 0, DefaultFetchOptions())
	if err != nil || len(got) != 0 {
		t.Fatalf("zero fetch = %v, %v", got, err)
	}
	if _, err := Fetch(m, "d", 0, -1, DefaultFetchOptions()); err == nil {
		t.Fatal("negative length should error")
	}
}

func TestFetchPastEndErrors(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(1000, 0))
	if _, err := Fetch(m, "d", 500, 1000, FetchOptions{Threads: 2, RangeSize: 4 << 10}); err == nil {
		t.Fatal("fetch past end should error")
	}
}

func TestFetchMissingObject(t *testing.T) {
	m := NewMem()
	if _, err := Fetch(m, "ghost", 0, 100, DefaultFetchOptions()); err == nil {
		t.Fatal("fetch of missing object should error")
	}
}

type flakyStore struct {
	*Mem
	failAfter int64 // error on reads at offset >= failAfter
}

func (f *flakyStore) ReadAt(name string, p []byte, off int64) (int, error) {
	if off >= f.failAfter {
		return 0, errors.New("injected failure")
	}
	return f.Mem.ReadAt(name, p, off)
}

func TestFetchPropagatesWorkerError(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(1<<20, 0))
	f := &flakyStore{Mem: m, failAfter: 512 << 10}
	_, err := Fetch(f, "d", 0, 1<<20, FetchOptions{Threads: 4, RangeSize: 64 << 10})
	if err == nil || err.Error() != "injected failure" {
		t.Fatalf("err = %v", err)
	}
}

// Property: Fetch with arbitrary thread/range parameters equals the
// backing bytes for arbitrary in-range windows.
func TestFetchProperty(t *testing.T) {
	m := NewMem()
	data := fillPattern(200_000, 77)
	m.Put("d", data)
	f := func(off uint16, length uint16, threads uint8, rangeKB uint8) bool {
		o := int64(off) % 100_000
		l := int64(length) % 100_000
		got, err := Fetch(m, "d", o, l, FetchOptions{
			Threads:   int(threads%8) + 1,
			RangeSize: (int(rangeKB%32) + 1) << 10,
		})
		if err != nil {
			return false
		}
		return bytes.Equal(got, data[o:o+l])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// faultAtOffset fails reads starting at a given offset until the
// failure budget is used up, then serves normally.
type faultAtOffset struct {
	*Mem
	off   int64
	fails int
	calls int
}

func (f *faultAtOffset) ReadAt(name string, p []byte, off int64) (int, error) {
	if off == f.off && f.fails > 0 {
		f.fails--
		return 0, faults.ErrTransient
	}
	f.calls++
	return f.Mem.ReadAt(name, p, off)
}

func TestFetchZeroLengthAgainstFaultyStore(t *testing.T) {
	// A zero-length fetch issues no requests, so even a store that
	// fails every request cannot fail it.
	m := NewMem()
	m.Put("d", fillPattern(1000, 1))
	s3 := NewSimS3(m, nil, 0, 0, nil).WithFaults(
		faults.NewPlan(1, faults.Spec{Kind: faults.Transient, FirstN: 1 << 20}), "site")
	got, err := Fetch(s3, "d", 100, 0, FetchOptions{Threads: 4, Retry: DefaultRetryPolicy()})
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length fetch = %v, %v", got, err)
	}
}

func TestFetchRetriesFaultOnLastSubRange(t *testing.T) {
	m := NewMem()
	data := fillPattern(10_000, 9)
	m.Put("d", data)
	// 10000 bytes at RangeSize 4096 -> sub-ranges at 0, 4096, 8192; the
	// last one fails twice before succeeding.
	f := &faultAtOffset{Mem: m, off: 8192, fails: 2}
	got, err := Fetch(f, "d", 0, 10_000, FetchOptions{
		Threads: 1, RangeSize: 4096,
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after retried last sub-range")
	}
}

func TestFetchLastSubRangeExhaustsRetries(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(10_000, 9))
	f := &faultAtOffset{Mem: m, off: 8192, fails: 1 << 30}
	_, err := Fetch(f, "d", 0, 10_000, FetchOptions{
		Threads: 2, RangeSize: 4096,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
	})
	if err == nil {
		t.Fatal("exhausted retries must surface an error")
	}
	if !strings.Contains(err.Error(), "attempts exhausted") || !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchEveryAttemptFailsReturnsClassifiedError(t *testing.T) {
	// Every request against every range fails: Fetch must return the
	// classified error promptly, not hang or spin.
	m := NewMem()
	m.Put("d", fillPattern(100_000, 5))
	s3 := NewSimS3(m, nil, 0, 0, nil).WithFaults(
		faults.NewPlan(2, faults.Spec{Kind: faults.SlowDown, Prob: 1}), "cloud")
	done := make(chan error, 1)
	go func() {
		_, err := Fetch(s3, "d", 0, 100_000, FetchOptions{
			Threads: 4, RangeSize: 16 << 10,
			Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, faults.ErrSlowDown) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Fetch hung with an always-failing store")
	}
}

func TestFetchWithFaultPlanRecordsRetries(t *testing.T) {
	m := NewMem()
	data := fillPattern(64<<10, 17)
	m.Put("d", data)
	plan := faults.NewPlan(3, faults.Spec{Kind: faults.Transient, FirstN: 2})
	s3 := NewSimS3(m, nil, 0, 0, nil).WithFaults(plan, "cloud")
	var b metrics.Breakdown
	got, err := Fetch(s3, "d", 0, 64<<10, FetchOptions{
		Threads: 4, RangeSize: 8 << 10,
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond},
		Stats: &b,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	snap := b.Snapshot()
	if snap.Retries < 2 || snap.BackoffEmu <= 0 {
		t.Fatalf("retries not recorded: %+v", snap)
	}
	if plan.Total() < 2 {
		t.Fatalf("plan injected %d", plan.Total())
	}
}

func TestFetchFromRemoteStore(t *testing.T) {
	m := NewMem()
	data := fillPattern(300_000, 21)
	m.Put("d", data)
	srv := startServer(t, m)
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	got, err := Fetch(c, "d", 1000, 250_000, FetchOptions{Threads: 6, RangeSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1000:251_000]) {
		t.Fatal("remote fetch mismatch")
	}
}
