package store

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"cloudburst/internal/faults"
	"cloudburst/internal/metrics"
)

func TestFetchWholeObject(t *testing.T) {
	m := NewMem()
	data := fillPattern(1<<20, 13)
	m.Put("d", data)
	got, err := Fetch(m, "d", 0, int64(len(data)), DefaultFetchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch mismatch")
	}
}

func TestFetchSubRange(t *testing.T) {
	m := NewMem()
	data := fillPattern(100_000, 4)
	m.Put("d", data)
	got, err := Fetch(m, "d", 12_345, 50_000, FetchOptions{Threads: 4, RangeSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[12_345:62_345]) {
		t.Fatal("sub-range fetch mismatch")
	}
}

func TestFetchSequentialFallback(t *testing.T) {
	m := NewMem()
	data := fillPattern(10_000, 2)
	m.Put("d", data)
	got, err := Fetch(m, "d", 0, 10_000, FetchOptions{Threads: 0, RangeSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential fetch mismatch")
	}
}

func TestFetchZeroLength(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(10, 0))
	got, err := Fetch(m, "d", 5, 0, DefaultFetchOptions())
	if err != nil || len(got) != 0 {
		t.Fatalf("zero fetch = %v, %v", got, err)
	}
	if _, err := Fetch(m, "d", 0, -1, DefaultFetchOptions()); err == nil {
		t.Fatal("negative length should error")
	}
}

func TestFetchPastEndErrors(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(1000, 0))
	if _, err := Fetch(m, "d", 500, 1000, FetchOptions{Threads: 2, RangeSize: 4 << 10}); err == nil {
		t.Fatal("fetch past end should error")
	}
}

func TestFetchMissingObject(t *testing.T) {
	m := NewMem()
	if _, err := Fetch(m, "ghost", 0, 100, DefaultFetchOptions()); err == nil {
		t.Fatal("fetch of missing object should error")
	}
}

type flakyStore struct {
	*Mem
	failAfter int64 // error on reads at offset >= failAfter
}

func (f *flakyStore) ReadAt(name string, p []byte, off int64) (int, error) {
	if off >= f.failAfter {
		return 0, errors.New("injected failure")
	}
	return f.Mem.ReadAt(name, p, off)
}

func TestFetchPropagatesWorkerError(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(1<<20, 0))
	f := &flakyStore{Mem: m, failAfter: 512 << 10}
	_, err := Fetch(f, "d", 0, 1<<20, FetchOptions{Threads: 4, RangeSize: 64 << 10})
	if err == nil || err.Error() != "injected failure" {
		t.Fatalf("err = %v", err)
	}
}

// Property: Fetch with arbitrary thread/range parameters equals the
// backing bytes for arbitrary in-range windows.
func TestFetchProperty(t *testing.T) {
	m := NewMem()
	data := fillPattern(200_000, 77)
	m.Put("d", data)
	f := func(off uint16, length uint16, threads uint8, rangeKB uint8) bool {
		o := int64(off) % 100_000
		l := int64(length) % 100_000
		got, err := Fetch(m, "d", o, l, FetchOptions{
			Threads:   int(threads%8) + 1,
			RangeSize: (int(rangeKB%32) + 1) << 10,
		})
		if err != nil {
			return false
		}
		return bytes.Equal(got, data[o:o+l])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// faultAtOffset fails reads starting at a given offset until the
// failure budget is used up, then serves normally.
type faultAtOffset struct {
	*Mem
	off   int64
	fails int
	calls int
}

func (f *faultAtOffset) ReadAt(name string, p []byte, off int64) (int, error) {
	if off == f.off && f.fails > 0 {
		f.fails--
		return 0, faults.ErrTransient
	}
	f.calls++
	return f.Mem.ReadAt(name, p, off)
}

func TestFetchZeroLengthAgainstFaultyStore(t *testing.T) {
	// A zero-length fetch issues no requests, so even a store that
	// fails every request cannot fail it.
	m := NewMem()
	m.Put("d", fillPattern(1000, 1))
	s3 := NewSimS3(m, nil, 0, 0, nil).WithFaults(
		faults.NewPlan(1, faults.Spec{Kind: faults.Transient, FirstN: 1 << 20}), "site")
	got, err := Fetch(s3, "d", 100, 0, FetchOptions{Threads: 4, Retry: DefaultRetryPolicy()})
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length fetch = %v, %v", got, err)
	}
}

func TestFetchRetriesFaultOnLastSubRange(t *testing.T) {
	m := NewMem()
	data := fillPattern(10_000, 9)
	m.Put("d", data)
	// 10000 bytes at RangeSize 4096 -> sub-ranges at 0, 4096, 8192; the
	// last one fails twice before succeeding.
	f := &faultAtOffset{Mem: m, off: 8192, fails: 2}
	got, err := Fetch(f, "d", 0, 10_000, FetchOptions{
		Threads: 1, RangeSize: 4096,
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after retried last sub-range")
	}
}

func TestFetchLastSubRangeExhaustsRetries(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(10_000, 9))
	f := &faultAtOffset{Mem: m, off: 8192, fails: 1 << 30}
	_, err := Fetch(f, "d", 0, 10_000, FetchOptions{
		Threads: 2, RangeSize: 4096,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
	})
	if err == nil {
		t.Fatal("exhausted retries must surface an error")
	}
	if !strings.Contains(err.Error(), "attempts exhausted") || !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchEveryAttemptFailsReturnsClassifiedError(t *testing.T) {
	// Every request against every range fails: Fetch must return the
	// classified error promptly, not hang or spin.
	m := NewMem()
	m.Put("d", fillPattern(100_000, 5))
	s3 := NewSimS3(m, nil, 0, 0, nil).WithFaults(
		faults.NewPlan(2, faults.Spec{Kind: faults.SlowDown, Prob: 1}), "cloud")
	done := make(chan error, 1)
	go func() {
		_, err := Fetch(s3, "d", 0, 100_000, FetchOptions{
			Threads: 4, RangeSize: 16 << 10,
			Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, faults.ErrSlowDown) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Fetch hung with an always-failing store")
	}
}

func TestFetchWithFaultPlanRecordsRetries(t *testing.T) {
	m := NewMem()
	data := fillPattern(64<<10, 17)
	m.Put("d", data)
	plan := faults.NewPlan(3, faults.Spec{Kind: faults.Transient, FirstN: 2})
	s3 := NewSimS3(m, nil, 0, 0, nil).WithFaults(plan, "cloud")
	var b metrics.Breakdown
	got, err := Fetch(s3, "d", 0, 64<<10, FetchOptions{
		Threads: 4, RangeSize: 8 << 10,
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond},
		Stats: &b,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	snap := b.Snapshot()
	if snap.Retries < 2 || snap.BackoffEmu <= 0 {
		t.Fatalf("retries not recorded: %+v", snap)
	}
	if plan.Total() < 2 {
		t.Fatalf("plan injected %d", plan.Total())
	}
}

// offsetTaggedErrors fails every read with an error naming its offset.
type offsetTaggedErrors struct{ *Mem }

func (f *offsetTaggedErrors) ReadAt(name string, p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("boom@%d", off)
}

func TestFetchReturnsLowestOffsetErrorDeterministically(t *testing.T) {
	// With several workers failing on different sub-ranges, the error
	// surfaced must always be the lowest-offset one, independent of
	// goroutine scheduling.
	m := NewMem()
	m.Put("d", fillPattern(64<<10, 3))
	f := &offsetTaggedErrors{Mem: m}
	for round := 0; round < 50; round++ {
		_, err := Fetch(f, "d", 0, 64<<10, FetchOptions{Threads: 4, RangeSize: 1 << 10})
		if err == nil || err.Error() != "boom@0" {
			t.Fatalf("round %d: err = %v, want boom@0", round, err)
		}
	}
}

// maxConcurrency tracks the peak number of simultaneous readers.
type maxConcurrency struct {
	*Mem
	active, peak atomic.Int64
}

func (m *maxConcurrency) ReadAt(name string, p []byte, off int64) (int, error) {
	n := m.active.Add(1)
	for {
		old := m.peak.Load()
		if n <= old || m.peak.CompareAndSwap(old, n) {
			break
		}
	}
	defer m.active.Add(-1)
	return m.Mem.ReadAt(name, p, off)
}

func TestFetchSpawnsNoMoreReadersThanSubRanges(t *testing.T) {
	m := NewMem()
	data := fillPattern(8<<10, 11)
	m.Put("d", data)
	mc := &maxConcurrency{Mem: m}
	// 8 KiB at 4 KiB ranges = 2 sub-ranges; Threads 16 must not put
	// more than 2 readers on the store.
	got, err := Fetch(mc, "d", 0, 8<<10, FetchOptions{Threads: 16, RangeSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch mismatch")
	}
	if peak := mc.peak.Load(); peak > 2 {
		t.Fatalf("peak concurrent readers = %d, want <= 2", peak)
	}
}

func TestFetchPooledBuffersRoundTrip(t *testing.T) {
	// Fetches through a shared pool must never alias live buffers:
	// each result stays intact while later fetches reuse returned
	// buffers. Run under -race in CI.
	m := NewMem()
	objs := make([][]byte, 8)
	for i := range objs {
		objs[i] = fillPattern(32<<10, byte(i+1))
		m.Put(fmt.Sprintf("o%d", i), objs[i])
	}
	pool := NewBufferPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				i := (g + round) % len(objs)
				got, err := Fetch(m, fmt.Sprintf("o%d", i), 0, 32<<10, FetchOptions{
					Threads: 3, RangeSize: 8 << 10, Pool: pool,
				})
				if err != nil {
					panic(err)
				}
				if !bytes.Equal(got, objs[i]) {
					panic("pooled fetch corrupted data")
				}
				pool.Put(got)
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	if st.Gets != 8*30 || st.Puts != 8*30 {
		t.Fatalf("pool stats = %+v", st)
	}
	if st.Misses == 8*30 {
		t.Fatal("pool never reused a buffer")
	}
}

func TestFetchErrorReturnsBufferToPool(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(1000, 0))
	pool := NewBufferPool()
	if _, err := Fetch(m, "d", 500, 1000, FetchOptions{Threads: 2, RangeSize: 512, Pool: pool}); err == nil {
		t.Fatal("fetch past end should error")
	}
	if st := pool.Stats(); st.Puts != 1 {
		t.Fatalf("failed fetch must recycle its buffer: %+v", st)
	}
}

func TestFetchCountsPoolStats(t *testing.T) {
	m := NewMem()
	m.Put("d", fillPattern(4<<10, 1))
	pool := NewBufferPool()
	var b metrics.Breakdown
	got, err := Fetch(m, "d", 0, 4<<10, FetchOptions{Threads: 2, RangeSize: 1 << 10, Pool: pool, Stats: &b})
	if err != nil {
		t.Fatal(err)
	}
	// sync.Pool guarantees no retention — under the race detector it
	// drops a quarter of all Puts on purpose — so retry the put/fetch
	// round until a pooled reuse lands; the get count stays exact.
	for round := 1; round <= 50; round++ {
		pool.Put(got)
		if got, err = Fetch(m, "d", 0, 4<<10, FetchOptions{Threads: 2, RangeSize: 1 << 10, Pool: pool, Stats: &b}); err != nil {
			t.Fatal(err)
		}
		snap := b.Snapshot()
		if want := int64(round + 1); snap.PoolGets != want {
			t.Fatalf("round %d: PoolGets = %d, want %d", round, snap.PoolGets, want)
		}
		if snap.PoolMisses < snap.PoolGets {
			return // at least one buffer came back from the pool
		}
	}
	t.Fatal("pool never reused a buffer across 50 put/fetch rounds")
}

func TestFetchFromRemoteStore(t *testing.T) {
	m := NewMem()
	data := fillPattern(300_000, 21)
	m.Put("d", data)
	srv := startServer(t, m)
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	got, err := Fetch(c, "d", 1000, 250_000, FetchOptions{Threads: 6, RangeSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1000:251_000]) {
		t.Fatal("remote fetch mismatch")
	}
}
