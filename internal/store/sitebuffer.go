package store

import (
	"errors"
	"io"
	"sync"
)

// SiteBuffer is the site-shared burst-buffer tier: one chunk cache per
// site, interposed between the object store and the site's slaves, so
// the same hot chunk is fetched from S3 once per *site* instead of
// once per slave — and, across iterations, once per computation. It is
// the provision/drain per-job pool of the burstbuffer model applied to
// chunk retrieval: provisioned with a byte capacity for a run, warmed
// by demand misses and master-driven staging, and drained back into
// the buffer pool when the run completes.
//
// The buffer is a Store (slaves mount it like any remote store, served
// over the wire codec by Server), plus two extensions Server exposes
// when present:
//
//   - ReadAtHit: ReadAt that also reports whether the bytes came from
//     the buffer's cache (the per-tier hit accounting slaves feed into
//     RunReport.Retrieval);
//   - Stage: fetch a chunk into the cache without returning its bytes
//     (the master's hint-driven pre-warming).
//
// Concurrent misses on one chunk collapse into a single backing fetch
// (ChunkCache singleflight), so N slaves asking for the same cold
// chunk cost one S3 retrieval. All backing fetches share one
// Autotuner when autotuning is enabled: the site probes its S3 link
// with a single AIMD budget instead of N independent per-slave
// controllers that collectively overshoot the aggregate egress cap.
type SiteBuffer struct {
	site    string
	backing Store
	cache   *ChunkCache
	pool    *BufferPool
	fetch   FetchOptions
	tuner   *Autotuner

	mu           sync.Mutex
	hits         int64
	misses       int64
	servedBytes  int64 // bytes handed to clients (hits and misses)
	stagedBytes  int64 // bytes staged ahead of demand
	backingBytes int64 // bytes actually fetched from the backing store
}

// SiteBufferConfig configures one site's buffer.
type SiteBufferConfig struct {
	// Site names the site the buffer serves; it namespaces cache keys.
	Site string
	// Backing is the store the buffer reads through to (the S3 view).
	Backing Store
	// Capacity is the cache's byte cap. Below 1 the buffer still works
	// but retains nothing (every read is a backing fetch).
	Capacity int64
	// Fetch tunes the buffer->backing ranged retrieval (threads, range
	// size, retry, clock). The pool is supplied by the buffer.
	Fetch FetchOptions
	// Pool recycles chunk buffers; nil builds a fresh pool.
	Pool *BufferPool
	// Autotune replaces Fetch.Threads with one site-wide AIMD
	// controller shared by every backing fetch (demand misses and
	// staging alike); Fetch.Threads seeds it. Requires Fetch.Clock.
	Autotune bool
}

// NewSiteBuffer builds a buffer over cfg.Backing.
func NewSiteBuffer(cfg SiteBufferConfig) *SiteBuffer {
	pool := cfg.Pool
	if pool == nil {
		pool = NewBufferPool()
	}
	b := &SiteBuffer{
		site:    cfg.Site,
		backing: cfg.Backing,
		cache:   NewChunkCache(cfg.Capacity, pool),
		pool:    pool,
		fetch:   cfg.Fetch,
	}
	if cfg.Autotune && cfg.Fetch.Clock != nil {
		b.tuner = NewAutotuner(cfg.Fetch.Threads, 0)
	}
	return b
}

// fetchChunk pulls [off, off+length) of name from the backing store
// with the buffer's shared fetch configuration.
func (b *SiteBuffer) fetchChunk(name string, off, length int64) ([]byte, error) {
	opts := b.fetch
	opts.Pool = b.pool
	if b.tuner != nil {
		opts.Tuner = b.tuner
	}
	data, err := Fetch(b.backing, name, off, length, opts)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.backingBytes += length
	b.mu.Unlock()
	return data, nil
}

// ReadAtHit fills p from the object's bytes starting at off and
// reports whether the bytes were already resident in the buffer. A
// miss reads through to the backing store under singleflight and
// caches the chunk for the next caller.
func (b *SiteBuffer) ReadAtHit(name string, p []byte, off int64) (int, bool, error) {
	if b == nil {
		return 0, false, errors.New("store: nil site buffer")
	}
	length := int64(len(p))
	key := ChunkKey{Site: b.site, File: name, Off: off, Len: length}
	data, release, hit, err := b.cache.GetOrFetch(key, func() ([]byte, error) {
		return b.fetchChunk(name, off, length)
	})
	if err != nil {
		// The ranged fetcher treats short reads as errors; retry as one
		// direct (uncached) read so the buffer keeps io.ReaderAt
		// semantics at object tails. Genuine backing failures surface
		// the fetch error.
		n, derr := b.backing.ReadAt(name, p, off)
		if derr == nil || derr == io.EOF {
			b.mu.Lock()
			b.misses++
			b.servedBytes += int64(n)
			b.backingBytes += int64(n)
			b.mu.Unlock()
			return n, false, derr
		}
		return 0, false, err
	}
	n := copy(p, data)
	release()
	b.mu.Lock()
	if hit {
		b.hits++
	} else {
		b.misses++
	}
	b.servedBytes += int64(n)
	b.mu.Unlock()
	return n, hit, nil
}

// ReadAt implements Store.
func (b *SiteBuffer) ReadAt(name string, p []byte, off int64) (int, error) {
	n, _, err := b.ReadAtHit(name, p, off)
	return n, err
}

// Size implements Store.
func (b *SiteBuffer) Size(name string) (int64, error) { return b.backing.Size(name) }

// List implements Store.
func (b *SiteBuffer) List() ([]string, error) { return b.backing.List() }

// Stage fetches [off, off+length) of name into the buffer's cache
// without returning the bytes, so the chunk is warm before any slave
// asks. It returns the bytes actually staged: 0 when the chunk was
// already resident (or another caller is fetching it), length when
// this call paid the backing fetch.
func (b *SiteBuffer) Stage(name string, off, length int64) (int64, error) {
	if b == nil {
		return 0, errors.New("store: nil site buffer")
	}
	key := ChunkKey{Site: b.site, File: name, Off: off, Len: length}
	_, release, hit, err := b.cache.GetOrFetch(key, func() ([]byte, error) {
		return b.fetchChunk(name, off, length)
	})
	if err != nil {
		return 0, err
	}
	release()
	if hit {
		return 0, nil
	}
	b.mu.Lock()
	b.stagedBytes += length
	b.mu.Unlock()
	return length, nil
}

// Drain evicts every resident chunk back into the buffer pool — the
// end-of-run deprovisioning step. The buffer stays usable (a
// subsequent read re-warms it), so iterative drivers drain only after
// the last iteration.
func (b *SiteBuffer) Drain() {
	if b == nil {
		return
	}
	b.cache.Drain()
}

// Pool returns the buffer pool chunk buffers recycle into.
func (b *SiteBuffer) Pool() *BufferPool {
	if b == nil {
		return nil
	}
	return b.pool
}

// ResidentKeys returns the cache's resident chunk keys (see
// ChunkCache.ResidentKeys); the master folds these into the site's
// residency report so placement can account for buffer warmth.
func (b *SiteBuffer) ResidentKeys() []ChunkKey {
	if b == nil {
		return nil
	}
	return b.cache.ResidentKeys()
}

// BufferStats is a point-in-time snapshot of a SiteBuffer's counters.
type BufferStats struct {
	Hits         int64 // reads served from resident chunks
	Misses       int64 // reads that paid a backing fetch
	ServedBytes  int64 // bytes handed to clients
	StagedBytes  int64 // bytes pre-warmed by Stage
	BackingBytes int64 // bytes fetched from the backing store
	Cache        CacheStats
	Autotune     AutotuneStats
}

// Stats returns the buffer's counters.
func (b *SiteBuffer) Stats() BufferStats {
	if b == nil {
		return BufferStats{}
	}
	b.mu.Lock()
	s := BufferStats{
		Hits: b.hits, Misses: b.misses, ServedBytes: b.servedBytes,
		StagedBytes: b.stagedBytes, BackingBytes: b.backingBytes,
	}
	b.mu.Unlock()
	s.Cache = b.cache.Stats()
	s.Autotune = b.tuner.Stats()
	return s
}
