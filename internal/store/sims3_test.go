package store

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"cloudburst/internal/faults"
	"cloudburst/internal/netsim"
)

func TestSimS3DataIntact(t *testing.T) {
	svc := NewService(netsim.Instant(), 0)
	data := fillPattern(2048, 5)
	svc.Objects.Put("d", data)
	view := svc.View(netsim.DefaultS3Internal())

	got, err := ReadAll(view, "d")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("SimS3 corrupted data")
	}
	if size, err := view.Size("d"); err != nil || size != 2048 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	names, err := view.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestSimS3RequestLatency(t *testing.T) {
	clk := netsim.Scaled(0.01) // 1 emulated s = 10ms wall
	svc := NewService(clk, 0)
	svc.Objects.Put("d", fillPattern(10, 0))
	view := svc.View(netsim.Link{Latency: 100 * time.Millisecond}) // 1ms wall

	start := time.Now()
	buf := make([]byte, 10)
	view.ReadAt("d", buf, 0)
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Fatalf("latency not charged: %v", elapsed)
	}
}

func TestSimS3PerStreamFloor(t *testing.T) {
	clk := netsim.Scaled(0.001)
	svc := NewService(clk, 0)
	data := fillPattern(1<<20, 0)
	svc.Objects.Put("d", data)
	// 1 MB at 1 MB/emulated-second = 1 emulated s = 1ms wall minimum.
	view := svc.View(netsim.Link{PerStream: 1 << 20})
	start := time.Now()
	buf := make([]byte, 1<<20)
	view.ReadAt("d", buf, 0)
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Fatalf("per-stream cap not enforced: %v", elapsed)
	}
}

func TestSimS3ConcurrencyBeatsSerial(t *testing.T) {
	// With a per-stream cap far below the aggregate cap, 4 concurrent
	// readers should finish much faster than 4 serial reads — the
	// property the paper's multi-threaded retrieval relies on.
	// Small buffers (cheap copies even under -race on one CPU) with a
	// slow per-stream link, so emulated pacing dominates: serial = 4
	// emulated s (~40ms wall), parallel = 1 emulated s (~10ms).
	clk := netsim.Scaled(0.01)
	mk := func() *SimS3 {
		svc := NewService(clk, 64<<20)
		svc.Objects.Put("d", fillPattern(256<<10, 0))
		return svc.View(netsim.Link{PerStream: 64 << 10, Burst: 1})
	}

	serialView := mk()
	buf := make([]byte, 64<<10)
	serialStart := time.Now()
	for i := 0; i < 4; i++ {
		serialView.ReadAt("d", buf, int64(i)<<16)
	}
	serial := time.Since(serialStart)

	parView := mk()
	parStart := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := make([]byte, 64<<10)
			parView.ReadAt("d", b, int64(i)<<16)
		}(i)
	}
	wg.Wait()
	parallel := time.Since(parStart)

	if parallel >= serial*3/4 {
		t.Fatalf("parallel reads (%v) not meaningfully faster than serial (%v)", parallel, serial)
	}
}

func TestSimS3SharedAggregateAcrossViews(t *testing.T) {
	// Two views (cloud-internal and WAN) share the service egress cap:
	// together they cannot exceed it.
	clk := netsim.Scaled(0.001)
	svc := NewService(clk, 2<<20) // 2 MB per emulated second total
	svc.Objects.Put("d", fillPattern(4<<20, 0))
	internal := svc.View(netsim.Link{PerStream: 0})
	external := svc.View(netsim.Link{PerStream: 0})

	start := time.Now()
	var wg sync.WaitGroup
	for _, v := range []*SimS3{internal, external} {
		wg.Add(1)
		go func(v *SimS3) {
			defer wg.Done()
			b := make([]byte, 2<<20)
			v.ReadAt("d", b, 0)
		}(v)
	}
	wg.Wait()
	// 4 MB total at 2 MB/s = ~2 emulated s = ~2ms wall (minus burst).
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("shared egress cap violated: %v", elapsed)
	}
}

func TestSeekPenaltyChargesRandomAccess(t *testing.T) {
	clk := netsim.Scaled(0.01) // 1 emulated s = 10ms wall
	svc := NewService(clk, 0)
	svc.Objects.Put("d", fillPattern(64<<10, 0))
	view := svc.View(netsim.Link{}).WithSeekPenalty(200 * time.Millisecond)

	buf := make([]byte, 4<<10)
	// First read of a stream: one seek.
	start := time.Now()
	view.ReadAt("d", buf, 0)
	first := time.Since(start)
	if first < time.Millisecond {
		t.Fatalf("first read paid no seek: %v", first)
	}
	// Sequential continuation: no seek.
	start = time.Now()
	view.ReadAt("d", buf, 4<<10)
	if seq := time.Since(start); seq > first/2 {
		t.Fatalf("sequential read paid a seek: %v vs %v", seq, first)
	}
	// Random jump: seek again.
	start = time.Now()
	view.ReadAt("d", buf, 32<<10)
	if jump := time.Since(start); jump < time.Millisecond {
		t.Fatalf("random read paid no seek: %v", jump)
	}
}

func TestSeekPenaltyTracksMultipleStreams(t *testing.T) {
	clk := netsim.Scaled(0.01)
	svc := NewService(clk, 0)
	svc.Objects.Put("d", fillPattern(64<<10, 0))
	view := svc.View(netsim.Link{}).WithSeekPenalty(100 * time.Millisecond)

	buf := make([]byte, 1<<10)
	// Two interleaved sequential streams must both avoid seeks after
	// their first read.
	view.ReadAt("d", buf, 0)      // stream A seek
	view.ReadAt("d", buf, 32<<10) // stream B seek
	start := time.Now()
	view.ReadAt("d", buf, 1<<10)  // A continues
	view.ReadAt("d", buf, 33<<10) // B continues
	view.ReadAt("d", buf, 2<<10)  // A continues
	if elapsed := time.Since(start); elapsed > 2*time.Millisecond {
		t.Fatalf("interleaved sequential streams paid seeks: %v", elapsed)
	}
}

func TestSimS3StallFaultDelaysButSucceeds(t *testing.T) {
	clk := netsim.Scaled(0.01) // 1 emulated s = 10ms wall
	svc := NewService(clk, 0)
	data := fillPattern(100, 3)
	svc.Objects.Put("d", data)
	view := svc.View(netsim.Link{}).WithFaults(
		faults.NewPlan(5, faults.Spec{Kind: faults.Stall, FirstN: 1, Stall: 200 * time.Millisecond}),
		"cloud")

	start := time.Now()
	buf := make([]byte, 100)
	n, err := view.ReadAt("d", buf, 0)
	if err != nil || n != 100 {
		t.Fatalf("stalled read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("stalled read corrupted data")
	}
	// 200ms emulated at 0.01 scale = 2ms wall.
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("stall not charged: %v", elapsed)
	}
	// Second read is fault-free and fast.
	if _, err := view.ReadAt("d", buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSimS3FaultErrorsAreTransient(t *testing.T) {
	svc := NewService(netsim.Instant(), 0)
	svc.Objects.Put("d", fillPattern(10, 0))
	view := svc.View(netsim.Link{}).WithFaults(
		faults.NewPlan(6, faults.Spec{Kind: faults.SlowDown, FirstN: 1}), "cloud")
	_, err := view.ReadAt("d", make([]byte, 10), 0)
	if err == nil || !Retryable(err) {
		t.Fatalf("injected SlowDown = %v", err)
	}
	if n, err := view.ReadAt("d", make([]byte, 10), 0); err != nil || n != 10 {
		t.Fatalf("post-fault read = %d, %v", n, err)
	}
}
