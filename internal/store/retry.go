package store

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"syscall"
	"time"

	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

// RetryPolicy retries failed store requests with capped exponential
// backoff and deterministic jitter. Backoff is emulated time, paced
// through a netsim.Clock, so retry behaviour compresses with the rest
// of the simulation. The zero policy (MaxAttempts 0 or 1) disables
// retries, preserving single-shot semantics.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 initial + retries).
	// Values below 2 mean "no retries".
	MaxAttempts int
	// BaseBackoff is the emulated backoff before the first retry; each
	// subsequent retry doubles it, capped at MaxBackoff. Zero defaults
	// to 20ms when retries are enabled.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero defaults to 1s.
	MaxBackoff time.Duration
	// ThrottleBackoff is the base backoff after a throttle response
	// (S3 SlowDown). Throttles mean the store is shedding load, so
	// retrying at the plain-transient cadence just feeds the storm; a
	// longer base gives the store room to recover. Zero defaults to 5×
	// the effective BaseBackoff.
	ThrottleBackoff time.Duration
	// Seed perturbs the deterministic jitter so independent callers
	// sharing a policy do not back off in lockstep.
	Seed uint64
}

// DefaultRetryPolicy matches S3 client practice scaled to the
// simulation: 4 attempts, 20ms emulated base (100ms after a throttle),
// 1s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:     4,
		BaseBackoff:     20 * time.Millisecond,
		ThrottleBackoff: 100 * time.Millisecond,
		MaxBackoff:      time.Second,
	}
}

// Enabled reports whether the policy performs any retries.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Backoff returns the emulated delay before retry number retry
// (1-based) of the request identified by key. Jitter is a
// deterministic function of (Seed, key, retry): full-jitter style,
// uniform in [base/2, base].
func (p RetryPolicy) Backoff(key string, retry int) time.Duration {
	return p.backoffHashed(hash64(key), retry, false)
}

// ThrottledBackoff is Backoff for a retry that answers a throttle
// response: the doubling starts from the longer ThrottleBackoff base.
func (p RetryPolicy) ThrottledBackoff(key string, retry int) time.Duration {
	return p.backoffHashed(hash64(key), retry, true)
}

// backoffHashed is Backoff over an already-hashed key, so hot callers
// can derive the jitter input numerically without building the key
// string at all. throttled selects the throttle base.
func (p RetryPolicy) backoffHashed(keyHash uint64, retry int, throttled bool) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if throttled {
		if p.ThrottleBackoff > 0 {
			base = p.ThrottleBackoff
		} else {
			base *= 5
		}
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	d := base
	for i := 1; i < retry && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	h := mix64(p.Seed ^ keyHash ^ uint64(retry)*0x9e3779b97f4a7c15)
	frac := float64(h>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// Do runs fn until it succeeds, fails fatally, or the policy is
// exhausted. key identifies the request for jitter and error context;
// onBackoff (may be nil) observes each emulated backoff before it is
// slept, for metrics. Exhaustion returns the final classified error
// wrapped with the attempt count — never a hang.
func (p RetryPolicy) Do(clk netsim.Clock, key string, fn func() error, onBackoff func(time.Duration)) error {
	return p.do(clk, hash64(key), func() string { return key }, fn, onBackoff)
}

// DoRanged is Do for a sub-range request identified by (name, off).
// The "%s@%d" retry key is derived lazily: jitter comes from a numeric
// hash of the pair, and the key string is only materialized when an
// exhaustion error actually needs it — the success path, which is
// every sub-range of every clean fetch, never formats it.
func (p RetryPolicy) DoRanged(clk netsim.Clock, name string, off int64, fn func() error, onBackoff func(time.Duration)) error {
	return p.do(clk, hash64(name)^mix64(uint64(off)),
		func() string { return fmt.Sprintf("%s@%d", name, off) }, fn, onBackoff)
}

func (p RetryPolicy) do(clk netsim.Clock, keyHash uint64, key func() string, fn func() error, onBackoff func(time.Duration)) error {
	if clk == nil {
		clk = netsim.Instant()
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if !Retryable(err) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("store: %s: %d attempts exhausted: %w", key(), attempts, err)
		}
		d := p.backoffHashed(keyHash, attempt, Throttled(err))
		if onBackoff != nil {
			onBackoff(d)
		}
		clk.Sleep(d)
	}
}

// Retryable classifies an error as transient (worth retrying) or
// fatal. Transient errors are: anything carrying the Transient()
// marker (injected faults, transport failures), network timeouts,
// reset/closed connections, and throttle or transient markers that
// crossed the wire as flattened strings. Application errors — not
// found, short object, protocol violations — are fatal.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	// Server-side injected faults arrive as KindError strings; real S3
	// throttle responses would arrive the same way.
	msg := err.Error()
	for _, marker := range []string{"SlowDown", "injected transient", "injected connection reset",
		"connection reset", "broken pipe"} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

// Throttled reports whether err is a store throttle response rather
// than a plain transient failure. Throttles are detected by the
// SlowDown marker, which survives both locally (faults.ErrSlowDown
// wrapping) and across the wire (KindError flattens errors to their
// strings).
func Throttled(err error) bool {
	return err != nil && strings.Contains(err.Error(), "SlowDown")
}

// transportError marks a store client transport failure (dial, send,
// or receive) as transient: the connection pool replaces the broken
// connection, so a retry travels a fresh stream.
type transportError struct {
	addr string
	err  error
}

func (e *transportError) Error() string   { return fmt.Sprintf("store: remote %s: %v", e.addr, e.err) }
func (e *transportError) Unwrap() error   { return e.err }
func (e *transportError) Transient() bool { return true }

// retryStats adapts an optional *metrics.Breakdown into an onBackoff
// callback.
func retryStats(b *metrics.Breakdown) func(time.Duration) {
	if b == nil {
		return nil
	}
	return b.AddRetry
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
