package store

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"cloudburst/internal/faults"
	"cloudburst/internal/metrics"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, false},
		{errors.New("store: object ghost not found"), false},
		{faults.ErrTransient, true},
		{faults.ErrSlowDown, true},
		{fmt.Errorf("wrapped: %w", faults.ErrTransient), true},
		{&transportError{addr: "x", err: errors.New("broken")}, true},
		// Server-reported injected faults arrive flattened to strings.
		{errors.New("wire: remote error: faults: SlowDown: request throttled"), true},
		{errors.New("wire: remote error: faults: injected transient error (site=s object=o)"), true},
		{errors.New("read tcp: connection reset by peer"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryDoFirstNThenSuccess(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: time.Millisecond}
	calls := 0
	var backoffs []time.Duration
	err := p.Do(nil, "k", func() error {
		calls++
		if calls <= 2 {
			return faults.ErrTransient
		}
		return nil
	}, func(d time.Duration) { backoffs = append(backoffs, d) })
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 || len(backoffs) != 2 {
		t.Fatalf("calls=%d backoffs=%d", calls, len(backoffs))
	}
}

func TestRetryDoFatalErrorNotRetried(t *testing.T) {
	p := DefaultRetryPolicy()
	calls := 0
	fatal := errors.New("store: object ghost not found")
	err := p.Do(nil, "k", func() error { calls++; return fatal }, nil)
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryDoExhaustionWrapsError(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}
	calls := 0
	err := p.Do(nil, "obj@0", func() error { calls++; return faults.ErrSlowDown }, nil)
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if err == nil || !errors.Is(err, faults.ErrSlowDown) {
		t.Fatalf("exhaustion err = %v", err)
	}
	if !strings.Contains(err.Error(), "3 attempts exhausted") {
		t.Fatalf("missing attempt count: %v", err)
	}
	if !Retryable(err) {
		t.Fatal("exhausted error lost its classification")
	}
}

func TestRetryBackoffCappedAndDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 5}
	for retry := 1; retry <= 9; retry++ {
		d := p.Backoff("k", retry)
		if d > 80*time.Millisecond {
			t.Fatalf("retry %d backoff %v exceeds cap", retry, d)
		}
		if d < 5*time.Millisecond {
			t.Fatalf("retry %d backoff %v below base/2", retry, d)
		}
		if d != p.Backoff("k", retry) {
			t.Fatalf("retry %d backoff not deterministic", retry)
		}
	}
	if p.Backoff("k", 1) == p.Backoff("other", 1) && p.Backoff("k", 2) == p.Backoff("other", 2) {
		t.Fatal("jitter ignores the request key")
	}
}

func TestRetryZeroPolicySingleShot(t *testing.T) {
	var p RetryPolicy
	calls := 0
	err := p.Do(nil, "k", func() error { calls++; return faults.ErrTransient }, nil)
	if calls != 1 || err == nil {
		t.Fatalf("zero policy: calls=%d err=%v", calls, err)
	}
}

func TestRetryStatsRecorded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}
	var b metrics.Breakdown
	calls := 0
	err := p.Do(nil, "k", func() error {
		calls++
		if calls == 1 {
			return faults.ErrTransient
		}
		return nil
	}, retryStats(&b))
	if err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	if snap.Retries != 1 || snap.BackoffEmu <= 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestThrottledClassification(t *testing.T) {
	if !Throttled(faults.ErrSlowDown) {
		t.Fatal("ErrSlowDown not classified as throttle")
	}
	if !Throttled(fmt.Errorf("remote: %w", faults.ErrSlowDown)) {
		t.Fatal("wrapped ErrSlowDown not classified as throttle")
	}
	// Wire errors flatten to strings; the marker must survive.
	if !Throttled(errors.New("store: remote 1.2.3.4: injected SlowDown (throttle)")) {
		t.Fatal("flattened SlowDown string not classified as throttle")
	}
	if Throttled(faults.ErrTransient) {
		t.Fatal("plain transient classified as throttle")
	}
	if Throttled(nil) {
		t.Fatal("nil classified as throttle")
	}
}

func TestThrottleBackoffLongerThanTransient(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond,
		ThrottleBackoff: 80 * time.Millisecond, MaxBackoff: time.Second}
	for retry := 1; retry <= 3; retry++ {
		tr := p.Backoff("k", retry)
		th := p.ThrottledBackoff("k", retry)
		if th <= tr {
			t.Fatalf("retry %d: throttle backoff %v not longer than transient %v", retry, th, tr)
		}
		// Full-jitter keeps the throttle delay in [base/2, base] before
		// doubling; at retry 1 it must be at least half the throttle base.
		if retry == 1 && th < 40*time.Millisecond {
			t.Fatalf("throttle backoff %v below half its base", th)
		}
	}
	// Zero ThrottleBackoff defaults to 5x the effective base.
	d := RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond}
	if got := d.ThrottledBackoff("k", 1); got < 25*time.Millisecond {
		t.Fatalf("defaulted throttle backoff %v below half of 5x base", got)
	}
}

func TestRetryDoUsesThrottleBase(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond,
		ThrottleBackoff: 500 * time.Millisecond}
	var slept time.Duration
	_ = p.Do(nil, "k", func() error { return faults.ErrSlowDown },
		func(d time.Duration) { slept += d })
	if slept < 250*time.Millisecond {
		t.Fatalf("SlowDown retry backed off only %v, want at least half the throttle base", slept)
	}
	slept = 0
	_ = p.Do(nil, "k", func() error { return faults.ErrTransient },
		func(d time.Duration) { slept += d })
	if slept > 10*time.Millisecond {
		t.Fatalf("plain transient backed off %v, should use the short base", slept)
	}
}
