package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func fillPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestMemPutReadAt(t *testing.T) {
	m := NewMem()
	data := fillPattern(1000, 3)
	m.Put("obj", data)

	buf := make([]byte, 100)
	n, err := m.ReadAt("obj", buf, 50)
	if err != nil || n != 100 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[50:150]) {
		t.Fatal("data mismatch")
	}
}

func TestMemReadAtEOFSemantics(t *testing.T) {
	m := NewMem()
	m.Put("obj", fillPattern(100, 0))

	// Read ending exactly at EOF: full read, nil error.
	buf := make([]byte, 50)
	if n, err := m.ReadAt("obj", buf, 50); n != 50 || err != nil {
		t.Fatalf("exact-end read = %d, %v", n, err)
	}
	// Read crossing EOF: partial + EOF.
	if n, err := m.ReadAt("obj", buf, 80); n != 20 || err != io.EOF {
		t.Fatalf("crossing read = %d, %v", n, err)
	}
	// Read past EOF: 0 + EOF.
	if n, err := m.ReadAt("obj", buf, 200); n != 0 || err != io.EOF {
		t.Fatalf("past-end read = %d, %v", n, err)
	}
	// Negative offset errors.
	if _, err := m.ReadAt("obj", buf, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestMemMissingObject(t *testing.T) {
	m := NewMem()
	if _, err := m.ReadAt("ghost", make([]byte, 1), 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := m.Size("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size err = %v", err)
	}
}

func TestMemListSortedAndDelete(t *testing.T) {
	m := NewMem()
	m.Put("b", nil)
	m.Put("a", nil)
	m.Put("c", nil)
	names, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("list = %v", names)
	}
	m.Delete("b")
	names, _ = m.List()
	if len(names) != 2 {
		t.Fatalf("after delete: %v", names)
	}
}

func TestLocalStore(t *testing.T) {
	dir := t.TempDir()
	data := fillPattern(4096, 9)
	if err := os.WriteFile(filepath.Join(dir, "file-0.bin"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLocal(dir)
	defer l.Close()

	size, err := l.Size("file-0.bin")
	if err != nil || size != 4096 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	buf := make([]byte, 256)
	if n, err := l.ReadAt("file-0.bin", buf, 1024); n != 256 || err != nil {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[1024:1280]) {
		t.Fatal("local data mismatch")
	}
	names, err := l.List()
	if err != nil || len(names) != 1 || names[0] != "file-0.bin" {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestLocalStoreMissingAndTraversal(t *testing.T) {
	l := NewLocal(t.TempDir())
	defer l.Close()
	if _, err := l.Size("missing.bin"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
	for _, bad := range []string{"../etc/passwd", "a/b", `a\b`, "", ".", ".."} {
		if _, err := l.Size(bad); err == nil {
			t.Fatalf("name %q should be rejected", bad)
		}
	}
}

func TestReadAllHelper(t *testing.T) {
	m := NewMem()
	data := fillPattern(10_000, 1)
	m.Put("x", data)
	got, err := ReadAll(m, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadAll mismatch")
	}
	if _, err := ReadAll(m, "ghost"); err == nil {
		t.Fatal("ReadAll of missing object should error")
	}
}

// Property: any in-range read of Mem returns exactly the backing bytes.
func TestMemReadAtProperty(t *testing.T) {
	m := NewMem()
	data := fillPattern(5000, 42)
	m.Put("p", data)
	f := func(off uint16, length uint8) bool {
		o := int64(off) % 5000
		buf := make([]byte, int(length)+1)
		n, err := m.ReadAt("p", buf, o)
		if err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(buf[:n], data[o:o+int64(n)])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
