// Package store provides the storage substrate: the Store interface
// every data source implements, a disk-backed store (the paper's
// dedicated storage node), an in-memory store, a simulated S3 object
// store with the latency/bandwidth behaviour the paper's retrieval
// layer was built around, a TCP store server/client pair, and the
// multi-threaded ranged chunk fetcher slaves use for remote data.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a named object does not exist.
var ErrNotFound = errors.New("store: object not found")

// Store is a read-only object store holding a data set's files.
// Implementations must be safe for concurrent use: slaves issue many
// parallel ranged reads.
type Store interface {
	// ReadAt fills p from the object's bytes starting at off. Reads
	// that begin past the end return 0, io.EOF; reads that end past
	// the end return the bytes read and io.EOF, matching io.ReaderAt.
	ReadAt(name string, p []byte, off int64) (int, error)
	// Size returns the object's length in bytes.
	Size(name string) (int64, error)
	// List returns all object names, sorted.
	List() ([]string, error)
}

// Mem is an in-memory Store, used by tests and as the backing of the
// simulated S3 service.
type Mem struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{objects: make(map[string][]byte)} }

// Put stores (or replaces) an object. The slice is retained.
func (m *Mem) Put(name string, data []byte) {
	m.mu.Lock()
	m.objects[name] = data
	m.mu.Unlock()
}

// Delete removes an object if present.
func (m *Mem) Delete(name string) {
	m.mu.Lock()
	delete(m.objects, name)
	m.mu.Unlock()
}

// ReadAt implements Store.
func (m *Mem) ReadAt(name string, p []byte, off int64) (int, error) {
	m.mu.RLock()
	data, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 {
		return 0, fmt.Errorf("store: negative offset %d", off)
	}
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements Store.
func (m *Mem) Size(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(data)), nil
}

// List implements Store.
func (m *Mem) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.objects))
	for name := range m.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Local is a directory-backed Store: each object is a regular file
// directly under Dir. It models the paper's dedicated storage node.
type Local struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File // lazily opened, kept for the store's life
}

// NewLocal returns a store over the files in dir.
func NewLocal(dir string) *Local {
	return &Local{dir: dir, files: make(map[string]*os.File)}
}

// Dir returns the backing directory.
func (l *Local) Dir() string { return l.dir }

func (l *Local) open(name string) (*os.File, error) {
	if strings.ContainsAny(name, `/\`) || name == "" || name == "." || name == ".." {
		return nil, fmt.Errorf("store: invalid object name %q", name)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if f, ok := l.files[name]; ok {
		return f, nil
	}
	f, err := os.Open(filepath.Join(l.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, err
	}
	l.files[name] = f
	return f, nil
}

// ReadAt implements Store.
func (l *Local) ReadAt(name string, p []byte, off int64) (int, error) {
	f, err := l.open(name)
	if err != nil {
		return 0, err
	}
	return f.ReadAt(p, off)
}

// Size implements Store.
func (l *Local) Size(name string) (int64, error) {
	f, err := l.open(name)
	if err != nil {
		return 0, err
	}
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// List implements Store.
func (l *Local) List() ([]string, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Close releases any files Local has opened.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for name, f := range l.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(l.files, name)
	}
	return first
}

// ReadAll reads the whole object from any store.
func ReadAll(s Store, name string) ([]byte, error) {
	size, err := s.Size(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := s.ReadAt(name, buf, 0)
	if int64(n) == size && (err == nil || err == io.EOF) {
		return buf, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, err
}
