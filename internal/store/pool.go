package store

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// BufferPool recycles chunk buffers through size-classed sync.Pools,
// killing the per-fetch make([]byte, length) churn on the slave hot
// path. Buffers are handed out with exactly the requested length but
// are backed by power-of-two capacity classes, so a returned buffer
// serves any later request that fits its class. A BufferPool is safe
// for concurrent use; the zero-value-nil pool degrades every Get into
// a fresh allocation.
type BufferPool struct {
	classes [poolClasses]sync.Pool

	gets   atomic.Int64 // buffers handed out
	misses atomic.Int64 // gets served by a fresh allocation
	puts   atomic.Int64 // buffers returned
}

// poolClasses covers capacities 1<<minPoolShift .. 1<<(minPoolShift+
// poolClasses-1); requests outside the range allocate directly.
const (
	minPoolShift = 9  // 512 B — the minimum honoured fetch range
	poolClasses  = 18 // up to 64 MiB
)

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

// class maps a byte count to its size class, or -1 when the count is
// outside the pooled range.
func class(n int64) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len64(uint64(n-1)) - minPoolShift
	if c < 0 {
		c = 0
	}
	if c >= poolClasses {
		return -1
	}
	return c
}

// Get returns a buffer of length n. The buffer's contents are
// unspecified — callers overwrite every byte. A nil pool allocates.
func (p *BufferPool) Get(n int64) []byte {
	buf, _ := p.get(n)
	return buf
}

// get additionally reports whether the request was served by a fresh
// allocation (a pool miss); Fetch uses it for per-worker stats.
func (p *BufferPool) get(n int64) ([]byte, bool) {
	if p == nil {
		return make([]byte, n), true
	}
	p.gets.Add(1)
	c := class(n)
	if c < 0 {
		p.misses.Add(1)
		return make([]byte, n), true
	}
	if v := p.classes[c].Get(); v != nil {
		return (*v.(*[]byte))[:n], false
	}
	p.misses.Add(1)
	return make([]byte, n, 1<<(c+minPoolShift)), true
}

// Put returns a buffer obtained from Get. Callers must not touch buf
// afterwards: it will be handed to a future Get. Foreign or oversized
// buffers are dropped.
func (p *BufferPool) Put(buf []byte) {
	if p == nil || buf == nil {
		return
	}
	c := class(int64(cap(buf)))
	if c < 0 || cap(buf) != 1<<(c+minPoolShift) {
		return // not one of ours; let GC take it
	}
	p.puts.Add(1)
	full := buf[:cap(buf)]
	p.classes[c].Put(&full)
}

// PoolStats is a point-in-time counter snapshot.
type PoolStats struct {
	Gets   int64 // buffers handed out
	Misses int64 // gets that had to allocate
	Puts   int64 // buffers returned for reuse
}

// Stats returns the pool's counters.
func (p *BufferPool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: p.gets.Load(), Misses: p.misses.Load(), Puts: p.puts.Load()}
}
