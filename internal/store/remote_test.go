package store

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudburst/internal/faults"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

func startServer(t *testing.T, s Store) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, s)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestRemoteReadAt(t *testing.T) {
	m := NewMem()
	data := fillPattern(64<<10, 11)
	m.Put("remote.bin", data)
	srv := startServer(t, m)

	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	buf := make([]byte, 1000)
	n, err := c.ReadAt("remote.bin", buf, 500)
	if err != nil || n != 1000 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[500:1500]) {
		t.Fatal("remote data mismatch")
	}
}

func TestRemoteEOFSemantics(t *testing.T) {
	m := NewMem()
	m.Put("small", fillPattern(100, 0))
	srv := startServer(t, m)
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	buf := make([]byte, 60)
	if n, err := c.ReadAt("small", buf, 80); n != 20 || err != io.EOF {
		t.Fatalf("crossing read = %d, %v", n, err)
	}
}

func TestRemoteSizeListAndErrors(t *testing.T) {
	m := NewMem()
	m.Put("a.bin", fillPattern(7, 0))
	m.Put("b.bin", fillPattern(9, 0))
	srv := startServer(t, m)
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	if size, err := c.Size("b.bin"); err != nil || size != 9 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	names, err := c.List()
	if err != nil || len(names) != 2 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if _, err := c.Size("ghost"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing err = %v", err)
	}
	if _, err := c.ReadAt("ghost", make([]byte, 4), 0); err == nil {
		t.Fatal("missing ReadAt should error")
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	m := NewMem()
	data := fillPattern(256<<10, 3)
	m.Put("big", data)
	srv := startServer(t, m)
	c := NewClient(srv.Addr(), nil)
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * 10_000
			buf := make([]byte, 10_000)
			n, err := c.ReadAt("big", buf, off)
			if err != nil && err != io.EOF {
				t.Error(err)
				return
			}
			if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
				t.Errorf("reader %d mismatch", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestRemoteThroughShapedLink(t *testing.T) {
	m := NewMem()
	data := fillPattern(32<<10, 8)
	m.Put("x", data)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shaper := netsim.NewShaper(netsim.Instant(), netsim.DefaultWAN())
	srv := Serve(shaper.Listener(ln), m)
	defer srv.Close()

	c := NewClient(ln.Addr().String(), Dialer(shaper.Dialer()))
	defer c.Close()
	got, err := ReadAll(c, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("shaped remote read mismatch")
	}
}

func TestClientClosedRejects(t *testing.T) {
	m := NewMem()
	srv := startServer(t, m)
	c := NewClient(srv.Addr(), nil)
	c.Close()
	if _, err := c.List(); err == nil {
		t.Fatal("closed client should error")
	}
}

// newLocalListener is shared by tests and benchmarks.
func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// flakyListener fails the first n Accept calls with a transient error.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	fails int
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fails > 0 {
		l.fails--
		l.mu.Unlock()
		return nil, tempErr{}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

func TestServerSurvivesTransientAcceptErrors(t *testing.T) {
	m := NewMem()
	data := fillPattern(4<<10, 6)
	m.Put("x", data)
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(&flakyListener{Listener: ln, fails: 3}, m)
	defer srv.Close()

	// Despite three failed accepts, the server must still be serving.
	c := NewClient(ln.Addr().String(), nil)
	defer c.Close()
	got, err := ReadAll(c, "x")
	if err != nil {
		t.Fatalf("read after accept errors: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
}

func TestServerInjectedTransientRetriedByFetch(t *testing.T) {
	m := NewMem()
	data := fillPattern(64<<10, 12)
	m.Put("d", data)
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(11, faults.Spec{Kind: faults.Transient, FirstN: 2})
	srv := ServeWith(ln, m, ServerOptions{Faults: plan, Site: "cloud"})
	defer srv.Close()

	c := NewClient(srv.Addr(), nil)
	defer c.Close()
	var b metrics.Breakdown
	got, err := Fetch(c, "d", 0, 64<<10, FetchOptions{
		Threads: 2, RangeSize: 16 << 10,
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond},
		Stats: &b,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	if snap := b.Snapshot(); snap.Retries < 2 {
		t.Fatalf("server-injected faults not retried: %+v", snap)
	}
	if plan.Injected()[faults.Transient] != 2 {
		t.Fatalf("injected = %v", plan.Injected())
	}
}

func TestServerInjectedResetIsTransientTransportError(t *testing.T) {
	m := NewMem()
	data := fillPattern(8<<10, 4)
	m.Put("d", data)
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(13, faults.Spec{Kind: faults.Reset, FirstN: 1})
	srv := ServeWith(ln, m, ServerOptions{Faults: plan, Site: "cloud"})
	defer srv.Close()

	c := NewClient(srv.Addr(), nil)
	defer c.Close()
	// First request is severed mid-exchange: the client must surface a
	// retryable transport error, and a retry on a fresh stream succeeds.
	_, err = c.ReadAt("d", make([]byte, 100), 0)
	if err == nil {
		t.Fatal("severed request should error")
	}
	if !Retryable(err) {
		t.Fatalf("reset not classified transient: %v", err)
	}
	got, err := Fetch(c, "d", 0, 8<<10, FetchOptions{
		Threads: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after reset recovery")
	}
}

func TestRemoteNotFoundStaysFatal(t *testing.T) {
	m := NewMem()
	srv := startServer(t, m)
	c := NewClient(srv.Addr(), nil)
	defer c.Close()
	_, err := c.Size("ghost")
	if err == nil || Retryable(err) {
		t.Fatalf("not-found must be fatal, got %v", err)
	}
}
