package apps

import (
	"sort"
	"testing"

	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

// genPoints materializes n records of the generator into one buffer.
func genRecords(gen workload.Generator, n int64) []byte {
	rs := gen.RecordSize()
	buf := make([]byte, n*int64(rs))
	for i := int64(0); i < n; i++ {
		gen.Gen(i, buf[i*int64(rs):(i+1)*int64(rs)])
	}
	return buf
}

func TestKNNMatchesBruteForce(t *testing.T) {
	app, err := NewKNN(Params{"k": "10", "dims": "3"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Points{Dims: 3, Seed: 99, WithID: true}
	if gen.RecordSize() != app.RecordSize() {
		t.Fatalf("record size mismatch: %d vs %d", gen.RecordSize(), app.RecordSize())
	}
	const n = 5000
	data := genRecords(gen, n)

	// Engine result.
	e := gr.NewEngine(app, gr.EngineOptions{GroupUnits: 128})
	red := app.NewReduction()
	if _, err := e.ProcessChunk(red, data); err != nil {
		t.Fatal(err)
	}
	got := red.(*knnRed).Neighbors()

	// Brute force.
	rs := app.RecordSize()
	type pair struct {
		id   int64
		dist float64
	}
	all := make([]pair, n)
	for i := 0; i < n; i++ {
		all[i] = pair{int64(i), app.Distance(data[i*rs : (i+1)*rs])}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].id < all[j].id
	})

	if len(got) != 10 {
		t.Fatalf("got %d neighbors", len(got))
	}
	for i := range got {
		if got[i].Score != all[i].dist {
			t.Fatalf("neighbor %d: dist %v, brute force %v", i, got[i].Score, all[i].dist)
		}
	}
}

func TestKNNMergeEqualsWhole(t *testing.T) {
	app, _ := NewKNN(Params{"k": "25", "dims": "2"})
	gen := workload.Points{Dims: 2, Seed: 5, WithID: true}
	data := genRecords(gen, 4000)
	rs := app.RecordSize()
	half := (4000 / 2) * rs

	e := gr.NewEngine(app, gr.EngineOptions{})
	whole := app.NewReduction()
	e.ProcessChunk(whole, data)

	a, b := app.NewReduction(), app.NewReduction()
	e.ProcessChunk(a, data[:half])
	e.ProcessChunk(b, data[half:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}

	wn, an := whole.(*knnRed).Neighbors(), a.(*knnRed).Neighbors()
	if len(wn) != len(an) {
		t.Fatalf("lengths differ: %d vs %d", len(wn), len(an))
	}
	for i := range wn {
		if wn[i].Score != an[i].Score {
			t.Fatalf("split+merge differs at %d", i)
		}
	}
}

func TestKNNCodecRoundTrip(t *testing.T) {
	app, _ := NewKNN(Params{"k": "5", "dims": "2"})
	gen := workload.Points{Dims: 2, Seed: 1, WithID: true}
	data := genRecords(gen, 100)
	e := gr.NewEngine(app, gr.EngineOptions{})
	red := app.NewReduction()
	e.ProcessChunk(red, data)

	enc, err := gr.EncodeReduction(red)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := gr.DecodeReduction(app, enc)
	if err != nil {
		t.Fatal(err)
	}
	a, b := red.(*knnRed).Neighbors(), dec.(*knnRed).Neighbors()
	if len(a) != len(b) {
		t.Fatal("codec changed neighbor count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("codec changed neighbors")
		}
	}
}

func TestKNNQueryDeterministic(t *testing.T) {
	a, _ := NewKNN(Params{"dims": "4", "qseed": "11"})
	b, _ := NewKNN(Params{"dims": "4", "qseed": "11"})
	c, _ := NewKNN(Params{"dims": "4", "qseed": "12"})
	for d := 0; d < 4; d++ {
		if a.Query()[d] != b.Query()[d] {
			t.Fatal("query not deterministic")
		}
	}
	diff := false
	for d := 0; d < 4; d++ {
		if a.Query()[d] != c.Query()[d] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical query")
	}
}

func TestKNNSummarize(t *testing.T) {
	app, _ := NewKNN(Params{"k": "3", "dims": "2"})
	gen := workload.Points{Dims: 2, Seed: 2, WithID: true}
	data := genRecords(gen, 50)
	e := gr.NewEngine(app, gr.EngineOptions{})
	red := app.NewReduction()
	e.ProcessChunk(red, data)
	s, err := app.Summarize(red)
	if err != nil || s == "" {
		t.Fatalf("Summarize = %q, %v", s, err)
	}
	if _, err := app.Summarize(mustWC(t).NewReduction()); err == nil {
		t.Fatal("wrong type should error")
	}
}

func TestKNNBadParams(t *testing.T) {
	for _, p := range []Params{
		{"k": "0"}, {"dims": "-1"}, {"k": "abc"}, {"cost": "xyz"},
	} {
		if _, err := NewKNN(p); err == nil {
			t.Fatalf("params %v accepted", p)
		}
	}
}

func TestKNNRegistered(t *testing.T) {
	app, err := gr.New("knn", map[string]string{"k": "7", "dims": "2"})
	if err != nil {
		t.Fatal(err)
	}
	if app.(*KNN).K != 7 {
		t.Fatal("params not applied through registry")
	}
}
