// Package apps implements the paper's three evaluation applications —
// k-nearest-neighbor search, k-means clustering, and PageRank — plus a
// word-count quickstart, all against the generalized reduction API.
//
// The three applications were chosen by the paper for their contrasting
// characteristics, which this package preserves:
//
//   - knn: low computation, medium/high I/O demand, small reduction
//     object (a k-element neighbor heap).
//   - kmeans: heavy computation, low/medium I/O, small reduction
//     object (k centroid accumulators).
//   - pagerank: low/medium computation, high I/O, very large reduction
//     object (the full rank vector), which makes its global reduction
//     expensive across clusters.
//
// Each application registers a factory with the gr registry so the
// command-line tools can instantiate it from string parameters.
package apps

import (
	"fmt"
	"strconv"
	"time"
)

// Params provides typed access with defaults over the string parameter
// maps the gr registry passes to factories.
type Params map[string]string

// Int returns the named integer parameter or def.
func (p Params) Int(key string, def int) (int, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("apps: parameter %s=%q: %w", key, s, err)
	}
	return v, nil
}

// Int64 returns the named int64 parameter or def.
func (p Params) Int64(key string, def int64) (int64, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("apps: parameter %s=%q: %w", key, s, err)
	}
	return v, nil
}

// Uint64 returns the named uint64 parameter or def.
func (p Params) Uint64(key string, def uint64) (uint64, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("apps: parameter %s=%q: %w", key, s, err)
	}
	return v, nil
}

// Float returns the named float parameter or def.
func (p Params) Float(key string, def float64) (float64, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("apps: parameter %s=%q: %w", key, s, err)
	}
	return v, nil
}

// Duration returns the named duration parameter or def.
func (p Params) Duration(key string, def time.Duration) (time.Duration, error) {
	s, ok := p[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("apps: parameter %s=%q: %w", key, s, err)
	}
	return v, nil
}
