package apps

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"cloudburst/internal/gr"
)

func init() {
	gr.Register("knn", func(params map[string]string) (gr.App, error) {
		return NewKNN(Params(params))
	})
}

// KNN is the k-nearest-neighbors search application: find the k points
// of the data set closest to a fixed query point. Records are
// [id uint64][dims x float32]; the reduction object is a bounded heap
// of the k best (id, distance) pairs — small, so global reduction is
// cheap (the paper's knn has a "small reduction object").
type KNN struct {
	// K is the neighbor count (the paper uses 1000).
	K int
	// Dims is the point dimensionality.
	Dims int
	// QuerySeed derives the deterministic query point.
	QuerySeed uint64
	// Cost is the modeled per-unit compute time (knn is the paper's
	// low-computation application).
	Cost time.Duration

	query []float32
}

// NewKNN builds a KNN app from parameters k, dims, qseed, cost.
func NewKNN(p Params) (*KNN, error) {
	k, err := p.Int("k", 1000)
	if err != nil {
		return nil, err
	}
	dims, err := p.Int("dims", 3)
	if err != nil {
		return nil, err
	}
	seed, err := p.Uint64("qseed", 42)
	if err != nil {
		return nil, err
	}
	cost, err := p.Duration("cost", 300*time.Nanosecond)
	if err != nil {
		return nil, err
	}
	if k <= 0 || dims <= 0 {
		return nil, fmt.Errorf("apps: knn needs positive k and dims, got k=%d dims=%d", k, dims)
	}
	a := &KNN{K: k, Dims: dims, QuerySeed: seed, Cost: cost}
	a.query = make([]float32, dims)
	x := seed
	for d := range a.query {
		x = x*6364136223846793005 + 1442695040888963407
		a.query[d] = float32(x>>40) / float32(1<<24)
	}
	return a, nil
}

// Name implements gr.App.
func (a *KNN) Name() string { return "knn" }

// RecordSize implements gr.App.
func (a *KNN) RecordSize() int { return 8 + 4*a.Dims }

// UnitCost implements gr.App.
func (a *KNN) UnitCost() time.Duration { return a.Cost }

// Query returns the query point.
func (a *KNN) Query() []float32 { return a.query }

// NewReduction implements gr.App.
func (a *KNN) NewReduction() gr.Reduction {
	return &knnRed{app: a, top: gr.NewTopK(a.K)}
}

// Distance computes the squared euclidean distance from the query to
// the point encoded in rec (exported for reference computations).
func (a *KNN) Distance(rec []byte) float64 {
	var sum float64
	for d := 0; d < a.Dims; d++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(rec[8+4*d:]))
		diff := float64(v - a.query[d])
		sum += diff * diff
	}
	return sum
}

// Summarize implements gr.Summarizer.
func (a *KNN) Summarize(red gr.Reduction) (string, error) {
	r, ok := red.(*knnRed)
	if !ok {
		return "", fmt.Errorf("apps: knn cannot summarize %T", red)
	}
	best := r.top.Sorted()
	if len(best) == 0 {
		return "knn: no neighbors", nil
	}
	return fmt.Sprintf("knn: %d neighbors, best id=%d dist=%.6f, worst dist=%.6f",
		len(best), best[0].ID, best[0].Score, best[len(best)-1].Score), nil
}

type knnRed struct {
	app *KNN
	top *gr.TopK
}

func (r *knnRed) Update(unit []byte) error {
	id := int64(binary.LittleEndian.Uint64(unit[:8]))
	r.top.Consider(gr.Scored{ID: id, Score: r.app.Distance(unit)})
	return nil
}

func (r *knnRed) Merge(other gr.Reduction) error {
	o, ok := other.(*knnRed)
	if !ok {
		return fmt.Errorf("apps: knn merge with %T", other)
	}
	return r.top.Merge(o.top)
}

func (r *knnRed) Encode(w io.Writer) error { return r.top.Encode(w) }
func (r *knnRed) Decode(rd io.Reader) error {
	r.top = &gr.TopK{}
	return r.top.Decode(rd)
}
func (r *knnRed) Bytes() int { return r.top.Bytes() }

// Neighbors exposes the current best set, ordered best-first.
func (r *knnRed) Neighbors() []gr.Scored { return r.top.Sorted() }
