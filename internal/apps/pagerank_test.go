package apps

import (
	"encoding/binary"
	"math"
	"testing"

	"cloudburst/internal/gr"
)

func newPR(t *testing.T, params Params) *PageRank {
	t.Helper()
	app, err := NewPageRank(params)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestPageRankMatchesReference(t *testing.T) {
	app := newPR(t, Params{"pages": "200", "mindeg": "2", "maxdeg": "6", "gseed": "3"})
	total := app.Graph.TotalEdges()
	data := genRecords(app.Graph, total)

	e := gr.NewEngine(app, gr.EngineOptions{GroupUnits: 64})
	red := app.NewReduction()
	if _, err := e.ProcessChunk(red, data); err != nil {
		t.Fatal(err)
	}
	got := red.(*pagerankRed).NextRanks()

	// Reference: dense single-threaded iteration over the same edges.
	want := make([]float64, 200)
	teleport := (1 - app.Damping) / 200.0
	for i := range want {
		want[i] = teleport
	}
	rs := app.RecordSize()
	for i := int64(0); i < total; i++ {
		rec := data[i*int64(rs) : (i+1)*int64(rs)]
		src := int64(binary.LittleEndian.Uint32(rec[0:4]))
		dst := int64(binary.LittleEndian.Uint32(rec[4:8]))
		want[dst] += app.Damping * app.Ranks()[src] / float64(app.Graph.OutDegree(src))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("rank %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestPageRankMassConservation(t *testing.T) {
	// After one full iteration over ALL edges, total rank mass is 1
	// (every page has out-degree >= 1, so no dangling mass).
	app := newPR(t, Params{"pages": "500", "mindeg": "1", "maxdeg": "9"})
	data := genRecords(app.Graph, app.Graph.TotalEdges())
	e := gr.NewEngine(app, gr.EngineOptions{})
	red := app.NewReduction()
	if _, err := e.ProcessChunk(red, data); err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, v := range red.(*pagerankRed).NextRanks() {
		mass += v
	}
	if math.Abs(mass-1.0) > 1e-9 {
		t.Fatalf("rank mass = %v, want 1", mass)
	}
}

func TestPageRankSplitMergeEqualsWhole(t *testing.T) {
	app := newPR(t, Params{"pages": "100", "mindeg": "2", "maxdeg": "4"})
	total := app.Graph.TotalEdges()
	data := genRecords(app.Graph, total)
	rs := app.RecordSize()

	e := gr.NewEngine(app, gr.EngineOptions{})
	whole := app.NewReduction()
	e.ProcessChunk(whole, data)

	mid := (total / 2) * int64(rs)
	a, b := app.NewReduction(), app.NewReduction()
	e.ProcessChunk(a, data[:mid])
	e.ProcessChunk(b, data[mid:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	w, m := whole.(*pagerankRed).NextRanks(), a.(*pagerankRed).NextRanks()
	for i := range w {
		if math.Abs(w[i]-m[i]) > 1e-12 {
			t.Fatalf("rank %d differs after split+merge", i)
		}
	}
}

func TestPageRankCodecAndSize(t *testing.T) {
	app := newPR(t, Params{"pages": "1000", "mindeg": "1", "maxdeg": "3"})
	red := app.NewReduction()
	// The reduction object is the full rank vector: 8 bytes per page.
	if red.Bytes() != 8000 {
		t.Fatalf("reduction object size = %d, want 8000", red.Bytes())
	}
	enc, err := gr.EncodeReduction(red)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) < 8000 {
		t.Fatalf("encoded size = %d", len(enc))
	}
	dec, err := gr.DecodeReduction(app, enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Bytes() != 8000 {
		t.Fatal("codec changed object size")
	}
}

func TestPageRankMultipleIterations(t *testing.T) {
	// Two iterations driven through SetRanks must converge toward the
	// stationary distribution (mass stays 1, ranks change).
	app := newPR(t, Params{"pages": "300", "mindeg": "2", "maxdeg": "8"})
	data := genRecords(app.Graph, app.Graph.TotalEdges())
	e := gr.NewEngine(app, gr.EngineOptions{})

	first := app.NewReduction()
	e.ProcessChunk(first, data)
	r1 := first.(*pagerankRed).NextRanks()
	if err := app.SetRanks(r1); err != nil {
		t.Fatal(err)
	}

	second := app.NewReduction()
	e.ProcessChunk(second, data)
	r2 := second.(*pagerankRed).NextRanks()

	var mass, delta float64
	for i := range r2 {
		mass += r2[i]
		delta += math.Abs(r2[i] - r1[i])
	}
	if math.Abs(mass-1.0) > 1e-9 {
		t.Fatalf("iteration 2 mass = %v", mass)
	}
	if delta == 0 {
		t.Fatal("ranks did not change between iterations")
	}
	if err := app.SetRanks(make([]float64, 5)); err == nil {
		t.Fatal("bad rank vector length accepted")
	}
}

func TestPageRankRejectsOutOfRangeEdge(t *testing.T) {
	app := newPR(t, Params{"pages": "10", "mindeg": "1", "maxdeg": "1"})
	red := app.NewReduction()
	bad := make([]byte, 8)
	binary.LittleEndian.PutUint32(bad[0:4], 99)
	if err := red.Update(bad); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestPageRankBadParams(t *testing.T) {
	for _, p := range []Params{
		{"pages": "0"}, {"mindeg": "0"}, {"mindeg": "5", "maxdeg": "2"}, {"pages": "zzz"},
	} {
		if _, err := NewPageRank(p); err == nil {
			t.Fatalf("params %v accepted", p)
		}
	}
}

func TestPageRankSummarize(t *testing.T) {
	app := newPR(t, Params{"pages": "50", "mindeg": "1", "maxdeg": "2"})
	data := genRecords(app.Graph, app.Graph.TotalEdges())
	e := gr.NewEngine(app, gr.EngineOptions{})
	red := app.NewReduction()
	e.ProcessChunk(red, data)
	s, err := app.Summarize(red)
	if err != nil || s == "" {
		t.Fatalf("Summarize = %q, %v", s, err)
	}
}
