package apps

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"cloudburst/internal/gr"
)

func init() {
	gr.Register("kmeans", func(params map[string]string) (gr.App, error) {
		return NewKMeans(Params(params))
	})
}

// KMeans is one iteration of Lloyd's k-means: assign every point to
// its nearest centroid and accumulate per-centroid sums and counts.
// Records are [dims x float32]; the reduction object holds k
// accumulators — small, so global reduction is cheap. kmeans is the
// paper's compute-heavy application: every unit costs k distance
// evaluations.
type KMeans struct {
	// K is the cluster count (the paper uses 1000).
	K int
	// Dims is the point dimensionality.
	Dims int
	// CentroidSeed derives the deterministic initial centroids.
	CentroidSeed uint64
	// Cost is the modeled per-unit compute time.
	Cost time.Duration

	centroids [][]float32
}

// NewKMeans builds a KMeans app from parameters k, dims, cseed, cost.
func NewKMeans(p Params) (*KMeans, error) {
	k, err := p.Int("k", 64)
	if err != nil {
		return nil, err
	}
	dims, err := p.Int("dims", 4)
	if err != nil {
		return nil, err
	}
	seed, err := p.Uint64("cseed", 7)
	if err != nil {
		return nil, err
	}
	cost, err := p.Duration("cost", 6*time.Microsecond)
	if err != nil {
		return nil, err
	}
	if k <= 0 || dims <= 0 {
		return nil, fmt.Errorf("apps: kmeans needs positive k and dims, got k=%d dims=%d", k, dims)
	}
	a := &KMeans{K: k, Dims: dims, CentroidSeed: seed, Cost: cost}
	a.centroids = make([][]float32, k)
	x := seed
	for c := range a.centroids {
		a.centroids[c] = make([]float32, dims)
		for d := range a.centroids[c] {
			x = x*6364136223846793005 + 1442695040888963407
			a.centroids[c][d] = float32(x>>40) / float32(1<<24)
		}
	}
	return a, nil
}

// Name implements gr.App.
func (a *KMeans) Name() string { return "kmeans" }

// RecordSize implements gr.App.
func (a *KMeans) RecordSize() int { return 4 * a.Dims }

// UnitCost implements gr.App.
func (a *KMeans) UnitCost() time.Duration { return a.Cost }

// Centroids returns the current centroids.
func (a *KMeans) Centroids() [][]float32 { return a.centroids }

// SetCentroids installs centroids for the next Lloyd iteration.
func (a *KMeans) SetCentroids(c [][]float64) error {
	if len(c) != a.K {
		return fmt.Errorf("apps: kmeans set %d centroids, want %d", len(c), a.K)
	}
	next := make([][]float32, a.K)
	for i, v := range c {
		if len(v) != a.Dims {
			return fmt.Errorf("apps: kmeans centroid %d has %d dims, want %d", i, len(v), a.Dims)
		}
		next[i] = make([]float32, a.Dims)
		for d, x := range v {
			next[i][d] = float32(x)
		}
	}
	a.centroids = next
	return nil
}

// Iterate runs red's accumulated statistics into a new centroid set on
// the app (one Lloyd step) and reports the largest centroid movement.
func (a *KMeans) Iterate(red gr.Reduction) (float64, error) {
	r, ok := red.(*kmeansRed)
	if !ok {
		return 0, fmt.Errorf("apps: kmeans cannot iterate %T", red)
	}
	means := r.Means()
	var maxMove float64
	for c := range means {
		var dist float64
		for d := range means[c] {
			diff := means[c][d] - float64(a.centroids[c][d])
			dist += diff * diff
		}
		if dist > maxMove {
			maxMove = dist
		}
	}
	if err := a.SetCentroids(means); err != nil {
		return 0, err
	}
	return maxMove, nil
}

// NewReduction implements gr.App.
func (a *KMeans) NewReduction() gr.Reduction {
	return &kmeansRed{
		app:  a,
		sums: gr.NewVectorSum(a.K * a.Dims),
		n:    make([]int64, a.K),
	}
}

// Assign returns the nearest centroid index for the point in rec.
func (a *KMeans) Assign(rec []byte) int {
	best, bestDist := 0, math.Inf(1)
	for c := 0; c < a.K; c++ {
		var sum float64
		cen := a.centroids[c]
		for d := 0; d < a.Dims; d++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(rec[4*d:]))
			diff := float64(v - cen[d])
			sum += diff * diff
		}
		if sum < bestDist {
			best, bestDist = c, sum
		}
	}
	return best
}

// Summarize implements gr.Summarizer.
func (a *KMeans) Summarize(red gr.Reduction) (string, error) {
	r, ok := red.(*kmeansRed)
	if !ok {
		return "", fmt.Errorf("apps: kmeans cannot summarize %T", red)
	}
	nonEmpty := 0
	var total int64
	for _, n := range r.n {
		if n > 0 {
			nonEmpty++
		}
		total += n
	}
	return fmt.Sprintf("kmeans: %d points over %d/%d non-empty clusters", total, nonEmpty, a.K), nil
}

type kmeansRed struct {
	app  *KMeans
	sums *gr.VectorSum // k*dims coordinate sums
	n    []int64       // k point counts
}

func (r *kmeansRed) Update(unit []byte) error {
	c := r.app.Assign(unit)
	base := c * r.app.Dims
	for d := 0; d < r.app.Dims; d++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(unit[4*d:]))
		r.sums.V[base+d] += float64(v)
	}
	r.n[c]++
	return nil
}

func (r *kmeansRed) Merge(other gr.Reduction) error {
	o, ok := other.(*kmeansRed)
	if !ok {
		return fmt.Errorf("apps: kmeans merge with %T", other)
	}
	if err := r.sums.Merge(o.sums); err != nil {
		return err
	}
	if len(r.n) != len(o.n) {
		return fmt.Errorf("apps: kmeans merge k mismatch: %d vs %d", len(r.n), len(o.n))
	}
	for i, v := range o.n {
		r.n[i] += v
	}
	return nil
}

func (r *kmeansRed) Encode(w io.Writer) error {
	if err := r.sums.Encode(w); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(r.n))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, r.n)
}

func (r *kmeansRed) Decode(rd io.Reader) error {
	r.sums = &gr.VectorSum{}
	if err := r.sums.Decode(rd); err != nil {
		return err
	}
	var k int64
	if err := binary.Read(rd, binary.LittleEndian, &k); err != nil {
		return err
	}
	if k < 0 || k > 1<<24 {
		return fmt.Errorf("apps: kmeans decode bad k %d", k)
	}
	r.n = make([]int64, k)
	return binary.Read(rd, binary.LittleEndian, r.n)
}

func (r *kmeansRed) Bytes() int { return r.sums.Bytes() + 8*len(r.n) }

// Means returns the post-iteration centroids (empty clusters keep
// their previous centroid).
func (r *kmeansRed) Means() [][]float64 {
	out := make([][]float64, r.app.K)
	for c := range out {
		out[c] = make([]float64, r.app.Dims)
		base := c * r.app.Dims
		for d := 0; d < r.app.Dims; d++ {
			if r.n[c] > 0 {
				out[c][d] = r.sums.V[base+d] / float64(r.n[c])
			} else {
				out[c][d] = float64(r.app.centroids[c][d])
			}
		}
	}
	return out
}

// Counts returns per-cluster point counts.
func (r *kmeansRed) Counts() []int64 { return append([]int64(nil), r.n...) }
