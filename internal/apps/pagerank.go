package apps

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

func init() {
	gr.Register("pagerank", func(params map[string]string) (gr.App, error) {
		return NewPageRank(Params(params))
	})
}

// PageRank performs one power iteration of Google's PageRank over an
// edge-list data set: each edge record (src, dst) contributes
// damping * rank[src]/outdeg(src) to next[dst]. The reduction object
// is the *entire* next-rank vector — the paper's "very large reduction
// object" (~300 MB at 50M pages) whose inter-cluster transfer
// dominates pagerank's synchronization time.
//
// The graph's out-degrees are pure functions of the page id (see
// workload.Edges), so workers need no degree table: the app only
// carries the current rank vector, which all sites derive identically
// (uniform 1/N for the first iteration, or decoded from a previous
// iteration's result).
type PageRank struct {
	// Graph describes the edge generator (pages, degree bounds, seed).
	Graph workload.Edges
	// Damping is the PageRank damping factor.
	Damping float64
	// Cost is the modeled per-unit (per-edge) compute time.
	Cost time.Duration

	ranks []float64
}

// NewPageRank builds a PageRank app from parameters pages, mindeg,
// maxdeg, gseed, damping, cost.
func NewPageRank(p Params) (*PageRank, error) {
	pages, err := p.Int64("pages", 100_000)
	if err != nil {
		return nil, err
	}
	minDeg, err := p.Int("mindeg", 8)
	if err != nil {
		return nil, err
	}
	maxDeg, err := p.Int("maxdeg", 28)
	if err != nil {
		return nil, err
	}
	gseed, err := p.Uint64("gseed", 13)
	if err != nil {
		return nil, err
	}
	damping, err := p.Float("damping", 0.85)
	if err != nil {
		return nil, err
	}
	cost, err := p.Duration("cost", 500*time.Nanosecond)
	if err != nil {
		return nil, err
	}
	if pages <= 0 || minDeg < 1 || maxDeg < minDeg {
		return nil, fmt.Errorf("apps: pagerank bad graph: pages=%d deg=[%d,%d]", pages, minDeg, maxDeg)
	}
	a := &PageRank{
		Graph:   workload.Edges{Pages: pages, MinDeg: minDeg, MaxDeg: maxDeg, Seed: gseed},
		Damping: damping,
		Cost:    cost,
	}
	a.ranks = make([]float64, pages)
	uniform := 1.0 / float64(pages)
	for i := range a.ranks {
		a.ranks[i] = uniform
	}
	return a, nil
}

// Name implements gr.App.
func (a *PageRank) Name() string { return "pagerank" }

// RecordSize implements gr.App.
func (a *PageRank) RecordSize() int { return a.Graph.RecordSize() }

// UnitCost implements gr.App.
func (a *PageRank) UnitCost() time.Duration { return a.Cost }

// Ranks returns the current (input) rank vector.
func (a *PageRank) Ranks() []float64 { return a.ranks }

// SetRanks installs the rank vector for the next iteration.
func (a *PageRank) SetRanks(r []float64) error {
	if int64(len(r)) != a.Graph.Pages {
		return fmt.Errorf("apps: pagerank rank vector length %d != pages %d", len(r), a.Graph.Pages)
	}
	a.ranks = r
	return nil
}

// NewReduction implements gr.App.
func (a *PageRank) NewReduction() gr.Reduction {
	return &pagerankRed{app: a, next: gr.NewVectorSum(int(a.Graph.Pages))}
}

// Summarize implements gr.Summarizer.
func (a *PageRank) Summarize(red gr.Reduction) (string, error) {
	r, ok := red.(*pagerankRed)
	if !ok {
		return "", fmt.Errorf("apps: pagerank cannot summarize %T", red)
	}
	next := r.NextRanks()
	var sum, max float64
	var argmax int
	for i, v := range next {
		sum += v
		if v > max {
			max, argmax = v, i
		}
	}
	return fmt.Sprintf("pagerank: %d pages, mass=%.6f, top page=%d rank=%.8f",
		len(next), sum, argmax, max), nil
}

type pagerankRed struct {
	app *PageRank
	// next accumulates damping * rank[src]/outdeg(src) per dst; the
	// teleport term is added when the vector is finalized.
	next *gr.VectorSum
}

func (r *pagerankRed) Update(unit []byte) error {
	src := int64(binary.LittleEndian.Uint32(unit[0:4]))
	dst := int64(binary.LittleEndian.Uint32(unit[4:8]))
	if src >= r.app.Graph.Pages || dst >= r.app.Graph.Pages {
		return fmt.Errorf("apps: pagerank edge %d->%d outside %d pages", src, dst, r.app.Graph.Pages)
	}
	r.next.V[dst] += r.app.Damping * r.app.ranks[src] / float64(r.app.Graph.OutDegree(src))
	return nil
}

func (r *pagerankRed) Merge(other gr.Reduction) error {
	o, ok := other.(*pagerankRed)
	if !ok {
		return fmt.Errorf("apps: pagerank merge with %T", other)
	}
	return r.next.Merge(o.next)
}

func (r *pagerankRed) Encode(w io.Writer) error  { return r.next.Encode(w) }
func (r *pagerankRed) Decode(rd io.Reader) error { r.next = &gr.VectorSum{}; return r.next.Decode(rd) }
func (r *pagerankRed) Bytes() int                { return r.next.Bytes() }

// Shards implements gr.ShardedReduction: the rank vector splits into
// contiguous index ranges that merge concurrently — the paper's ~300
// MB pagerank object is exactly the case shard-parallel merging
// exists for.
func (r *pagerankRed) Shards() int { return r.next.Shards() }

// MergeShard implements gr.ShardedReduction.
func (r *pagerankRed) MergeShard(i int, other gr.Reduction) error {
	o, ok := other.(*pagerankRed)
	if !ok {
		return fmt.Errorf("apps: pagerank merge with %T", other)
	}
	return r.next.MergeShard(i, o.next)
}

// NextRanks finalizes the iteration: accumulated link mass plus the
// uniform teleport term.
func (r *pagerankRed) NextRanks() []float64 {
	n := len(r.next.V)
	teleport := (1 - r.app.Damping) / float64(n)
	out := make([]float64, n)
	for i, v := range r.next.V {
		out[i] = teleport + v
	}
	return out
}
