package apps

import (
	"testing"

	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

func TestWordCountMatchesReference(t *testing.T) {
	app, err := NewWordCount(Params{"width": "12"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Words{Width: 12, Vocab: 40, Seed: 17}
	const n = 4000
	data := genRecords(gen, n)

	e := gr.NewEngine(app, gr.EngineOptions{GroupUnits: 256})
	red := app.NewReduction()
	if _, err := e.ProcessChunk(red, data); err != nil {
		t.Fatal(err)
	}
	got := red.(*wordCountRed).Counts()

	want := make(map[string]int64)
	for i := int64(0); i < n; i++ {
		want[gen.Word(gen.WordAt(i))]++
	}
	if len(got) != len(want) {
		t.Fatalf("distinct words %d != %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("word %q: %d != %d", w, got[w], c)
		}
	}
}

func TestWordCountMergeAndCodec(t *testing.T) {
	app, _ := NewWordCount(Params{"width": "12"})
	gen := workload.Words{Width: 12, Vocab: 10, Seed: 2}
	data := genRecords(gen, 1000)
	rs := app.RecordSize()

	e := gr.NewEngine(app, gr.EngineOptions{})
	a, b := app.NewReduction(), app.NewReduction()
	e.ProcessChunk(a, data[:500*rs])
	e.ProcessChunk(b, data[500*rs:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}

	enc, err := gr.EncodeReduction(a)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := gr.DecodeReduction(app, enc)
	if err != nil {
		t.Fatal(err)
	}
	gotA, gotDec := a.(*wordCountRed).Counts(), dec.(*wordCountRed).Counts()
	var total int64
	for w, c := range gotA {
		if gotDec[w] != c {
			t.Fatalf("codec count for %q differs", w)
		}
		total += c
	}
	if total != 1000 {
		t.Fatalf("total = %d", total)
	}
}

func TestWordCountEmptyRecordSkipped(t *testing.T) {
	app, _ := NewWordCount(Params{"width": "4"})
	red := app.NewReduction()
	if err := red.Update([]byte("    ")); err != nil {
		t.Fatal(err)
	}
	if len(red.(*wordCountRed).Counts()) != 0 {
		t.Fatal("blank record counted")
	}
}

func TestWordCountSummarizeAndParams(t *testing.T) {
	app, _ := NewWordCount(Params{})
	red := app.NewReduction()
	red.Update([]byte("hello       "))
	s, err := app.Summarize(red)
	if err != nil || s == "" {
		t.Fatalf("Summarize = %q, %v", s, err)
	}
	if _, err := NewWordCount(Params{"width": "0"}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewWordCount(Params{"width": "nan"}); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestAllAppsRegistered(t *testing.T) {
	for _, name := range []string{"knn", "kmeans", "pagerank", "wordcount"} {
		app, err := gr.New(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if app.Name() != name {
			t.Fatalf("%s reports name %q", name, app.Name())
		}
		if app.RecordSize() <= 0 {
			t.Fatalf("%s record size %d", name, app.RecordSize())
		}
		if _, ok := app.(gr.Summarizer); !ok {
			t.Fatalf("%s does not implement Summarizer", name)
		}
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{"i": "5", "f": "2.5", "d": "3s", "u": "9"}
	if v, err := p.Int("i", 0); err != nil || v != 5 {
		t.Fatalf("Int = %d, %v", v, err)
	}
	if v, err := p.Int("missing", 7); err != nil || v != 7 {
		t.Fatalf("Int default = %d, %v", v, err)
	}
	if v, err := p.Float("f", 0); err != nil || v != 2.5 {
		t.Fatalf("Float = %v, %v", v, err)
	}
	if v, err := p.Duration("d", 0); err != nil || v.Seconds() != 3 {
		t.Fatalf("Duration = %v, %v", v, err)
	}
	if v, err := p.Uint64("u", 0); err != nil || v != 9 {
		t.Fatalf("Uint64 = %v, %v", v, err)
	}
	if v, err := p.Int64("missing", -2); err != nil || v != -2 {
		t.Fatalf("Int64 default = %v, %v", v, err)
	}
	for _, bad := range []string{"i", "f", "d", "u"} {
		bp := Params{bad: "@@@"}
		var err error
		switch bad {
		case "i":
			_, err = bp.Int(bad, 0)
		case "f":
			_, err = bp.Float(bad, 0)
		case "d":
			_, err = bp.Duration(bad, 0)
		case "u":
			_, err = bp.Uint64(bad, 0)
		}
		if err == nil {
			t.Fatalf("bad %s accepted", bad)
		}
	}
}
