package apps

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"cloudburst/internal/gr"
)

func init() {
	gr.Register("wordcount", func(params map[string]string) (gr.App, error) {
		return NewWordCount(Params(params))
	})
}

// WordCount counts fixed-width text records — the quickstart
// application and the Map-Reduce comparison workload (word count is
// the canonical combiner example, which makes it the natural
// generalized-reduction vs. Map-Reduce ablation subject).
type WordCount struct {
	// Width is the record byte width; words are space-padded.
	Width int
	// Cost is the modeled per-unit compute time.
	Cost time.Duration
}

// NewWordCount builds a WordCount app from parameters width, cost.
func NewWordCount(p Params) (*WordCount, error) {
	width, err := p.Int("width", 12)
	if err != nil {
		return nil, err
	}
	cost, err := p.Duration("cost", 200*time.Nanosecond)
	if err != nil {
		return nil, err
	}
	if width <= 0 {
		return nil, fmt.Errorf("apps: wordcount needs positive width, got %d", width)
	}
	return &WordCount{Width: width, Cost: cost}, nil
}

// Name implements gr.App.
func (a *WordCount) Name() string { return "wordcount" }

// RecordSize implements gr.App.
func (a *WordCount) RecordSize() int { return a.Width }

// UnitCost implements gr.App.
func (a *WordCount) UnitCost() time.Duration { return a.Cost }

// NewReduction implements gr.App.
func (a *WordCount) NewReduction() gr.Reduction { return &wordCountRed{c: gr.NewShardedCounter()} }

// Summarize implements gr.Summarizer.
func (a *WordCount) Summarize(red gr.Reduction) (string, error) {
	r, ok := red.(*wordCountRed)
	if !ok {
		return "", fmt.Errorf("apps: wordcount cannot summarize %T", red)
	}
	top := r.c.Top(3)
	return fmt.Sprintf("wordcount: %d words, %d distinct, top=%v", r.c.Total(), r.c.Len(), top), nil
}

// wordCountRed counts words in a hash-sharded counter, so two
// reduction objects merge shard-parallel (disjoint key partitions)
// instead of serializing on one Go map.
type wordCountRed struct {
	c *gr.ShardedCounter
}

func (r *wordCountRed) Update(unit []byte) error {
	word := string(bytes.TrimRight(unit, " "))
	if word != "" {
		r.c.Inc(word, 1)
	}
	return nil
}

func (r *wordCountRed) Merge(other gr.Reduction) error {
	o, ok := other.(*wordCountRed)
	if !ok {
		return fmt.Errorf("apps: wordcount merge with %T", other)
	}
	return r.c.Merge(o.c)
}

func (r *wordCountRed) Encode(w io.Writer) error  { return r.c.Encode(w) }
func (r *wordCountRed) Decode(rd io.Reader) error { r.c = gr.NewShardedCounter(); return r.c.Decode(rd) }
func (r *wordCountRed) Bytes() int                { return r.c.Bytes() }

// Shards implements gr.ShardedReduction.
func (r *wordCountRed) Shards() int { return r.c.Shards() }

// MergeShard implements gr.ShardedReduction.
func (r *wordCountRed) MergeShard(i int, other gr.Reduction) error {
	o, ok := other.(*wordCountRed)
	if !ok {
		return fmt.Errorf("apps: wordcount merge with %T", other)
	}
	return r.c.MergeShard(i, o.c)
}

// Counts exposes the merged counter for result inspection.
func (r *wordCountRed) Counts() map[string]int64 { return r.c.Counts() }
