package apps

import "testing"

// mustWC returns a WordCount app used as a "wrong type" foil in
// cross-application type-safety tests.
func mustWC(t *testing.T) *WordCount {
	t.Helper()
	app, err := NewWordCount(Params{})
	if err != nil {
		t.Fatal(err)
	}
	return app
}
