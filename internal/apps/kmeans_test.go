package apps

import (
	"encoding/binary"
	"math"
	"testing"

	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

func TestKMeansMatchesBruteForce(t *testing.T) {
	app, err := NewKMeans(Params{"k": "8", "dims": "3"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Points{Dims: 3, Seed: 21}
	const n = 3000
	data := genRecords(gen, n)
	rs := app.RecordSize()

	e := gr.NewEngine(app, gr.EngineOptions{GroupUnits: 100})
	red := app.NewReduction()
	if _, err := e.ProcessChunk(red, data); err != nil {
		t.Fatal(err)
	}
	r := red.(*kmeansRed)

	// Brute force accumulation.
	sums := make([]float64, 8*3)
	counts := make([]int64, 8)
	for i := 0; i < n; i++ {
		rec := data[i*rs : (i+1)*rs]
		c := app.Assign(rec)
		counts[c]++
		for d := 0; d < 3; d++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(rec[4*d:]))
			sums[c*3+d] += float64(v)
		}
	}
	for c := 0; c < 8; c++ {
		if counts[c] != r.n[c] {
			t.Fatalf("cluster %d count %d != %d", c, r.n[c], counts[c])
		}
	}
	for i := range sums {
		if math.Abs(sums[i]-r.sums.V[i]) > 1e-9 {
			t.Fatalf("sum %d: %v != %v", i, r.sums.V[i], sums[i])
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("points lost: %d", total)
	}
}

func TestKMeansSplitMergeEqualsWhole(t *testing.T) {
	app, _ := NewKMeans(Params{"k": "5", "dims": "2"})
	gen := workload.Points{Dims: 2, Seed: 3}
	data := genRecords(gen, 2000)
	rs := app.RecordSize()

	e := gr.NewEngine(app, gr.EngineOptions{})
	whole := app.NewReduction()
	e.ProcessChunk(whole, data)

	parts := make([]gr.Reduction, 4)
	for i := range parts {
		parts[i] = app.NewReduction()
		e.ProcessChunk(parts[i], data[i*500*rs:(i+1)*500*rs])
	}
	merged, err := gr.MergeAll(app, parts)
	if err != nil {
		t.Fatal(err)
	}
	w, m := whole.(*kmeansRed), merged.(*kmeansRed)
	for c := range w.n {
		if w.n[c] != m.n[c] {
			t.Fatalf("cluster %d: %d != %d", c, w.n[c], m.n[c])
		}
	}
	for i := range w.sums.V {
		if math.Abs(w.sums.V[i]-m.sums.V[i]) > 1e-9 {
			t.Fatalf("sum %d differs", i)
		}
	}
}

func TestKMeansCodec(t *testing.T) {
	app, _ := NewKMeans(Params{"k": "4", "dims": "2"})
	gen := workload.Points{Dims: 2, Seed: 6}
	data := genRecords(gen, 500)
	e := gr.NewEngine(app, gr.EngineOptions{})
	red := app.NewReduction()
	e.ProcessChunk(red, data)

	enc, err := gr.EncodeReduction(red)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := gr.DecodeReduction(app, enc)
	if err != nil {
		t.Fatal(err)
	}
	a, b := red.(*kmeansRed), dec.(*kmeansRed)
	for i := range a.sums.V {
		if a.sums.V[i] != b.sums.V[i] {
			t.Fatal("codec sums differ")
		}
	}
	for i := range a.n {
		if a.n[i] != b.n[i] {
			t.Fatal("codec counts differ")
		}
	}
}

func TestKMeansMeans(t *testing.T) {
	app, _ := NewKMeans(Params{"k": "3", "dims": "1"})
	red := app.NewReduction().(*kmeansRed)
	// Assign two synthetic points manually to cluster accounting.
	red.sums.V[0] = 10 // cluster 0, dim 0
	red.n[0] = 4
	means := red.Means()
	if means[0][0] != 2.5 {
		t.Fatalf("mean = %v", means[0][0])
	}
	// Empty cluster keeps its initial centroid.
	if means[1][0] != float64(app.Centroids()[1][0]) {
		t.Fatal("empty cluster centroid not preserved")
	}
	counts := red.Counts()
	if counts[0] != 4 || counts[1] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestKMeansSummarizeAndErrors(t *testing.T) {
	app, _ := NewKMeans(Params{"k": "2", "dims": "2"})
	red := app.NewReduction()
	if s, err := app.Summarize(red); err != nil || s == "" {
		t.Fatalf("Summarize = %q, %v", s, err)
	}
	if _, err := app.Summarize(mustWC(t).NewReduction()); err == nil {
		t.Fatal("wrong type should error")
	}
	other, _ := NewKMeans(Params{"k": "3", "dims": "2"})
	if err := red.Merge(other.NewReduction()); err == nil {
		t.Fatal("k mismatch merge should error")
	}
	for _, p := range []Params{{"k": "0"}, {"dims": "0"}, {"k": "x"}} {
		if _, err := NewKMeans(p); err == nil {
			t.Fatalf("params %v accepted", p)
		}
	}
}
