// Package driver runs iterative algorithms on top of the single-pass
// cloud-bursting runtime: each iteration is one complete deployment
// (local reduction everywhere, global reduction at the head), and the
// globally reduced object feeds the next iteration's application
// state. This is how multi-pass analyses (Lloyd's k-means, PageRank
// power iterations) compose with the paper's middleware.
package driver

import (
	"fmt"

	"cloudburst/internal/apps"
	"cloudburst/internal/cluster"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/store"
)

// StepFunc consumes one iteration's final reduction object, installs
// whatever the next iteration needs into the application, and reports
// whether the algorithm has converged. delta is a caller-defined
// progress measure recorded per iteration.
type StepFunc func(final gr.Reduction) (delta float64, done bool, err error)

// Iterative drives repeated deployments until a StepFunc declares
// convergence or MaxIterations is reached.
type Iterative struct {
	// Deploy is the per-iteration deployment; its App must carry any
	// cross-iteration state (centroids, rank vectors).
	Deploy cluster.DeployConfig
	// Step processes each iteration's result.
	Step StepFunc
	// MaxIterations bounds the run (default 50).
	MaxIterations int
	// CacheBytes, when positive, installs a persistent per-site chunk
	// cache of that many bytes before the first iteration, so every
	// pass after the first reads warm chunks instead of re-paying
	// object-store/WAN retrieval. Sites that already carry a cache are
	// left alone.
	CacheBytes int64
	// BufferBytes, when positive, installs a persistent burst buffer of
	// that capacity on every HomeFetch site before the first iteration
	// (sites already carrying one are left alone), so chunks staged or
	// faulted in during iteration N serve iteration N+1 from the site
	// tier instead of the backing store. All buffers are drained when
	// the iteration loop finishes.
	BufferBytes int64
	// OnIteration, if set, observes each iteration's report.
	OnIteration func(iter int, delta float64, report *metrics.RunReport)
}

// Result summarizes an iterative run.
type Result struct {
	Iterations int
	Converged  bool
	// Deltas holds each iteration's progress measure.
	Deltas []float64
	// Final is the last iteration's reduction object.
	Final gr.Reduction
}

// Run executes the iteration loop.
func (it *Iterative) Run() (*Result, error) {
	if it.Step == nil {
		return nil, fmt.Errorf("driver: Step is required")
	}
	maxIter := it.MaxIterations
	if maxIter <= 0 {
		maxIter = 50
	}
	if it.CacheBytes > 0 {
		for i := range it.Deploy.Sites {
			if it.Deploy.Sites[i].Cache == nil {
				it.Deploy.Sites[i].Cache = store.NewChunkCache(it.CacheBytes, store.NewBufferPool())
			}
		}
	}
	if it.BufferBytes > 0 {
		for i := range it.Deploy.Sites {
			site := &it.Deploy.Sites[i]
			if !site.HomeFetch || site.Buffer != nil {
				continue
			}
			fetch := it.Deploy.Fetch
			if fetch.Threads == 0 && fetch.RangeSize == 0 {
				fetch = store.DefaultFetchOptions()
			}
			fetch.Clock = it.Deploy.Clock
			pool := site.Cache.Pool()
			site.Buffer = store.NewSiteBuffer(store.SiteBufferConfig{
				Site: site.Name, Backing: site.HomeStore, Capacity: it.BufferBytes,
				Fetch: fetch, Pool: pool, Autotune: it.Deploy.FetchAutotune,
			})
			defer site.Buffer.Drain()
		}
	}
	res := &Result{}
	for iter := 1; iter <= maxIter; iter++ {
		out, err := cluster.Run(it.Deploy)
		if err != nil {
			return nil, fmt.Errorf("driver: iteration %d: %w", iter, err)
		}
		delta, done, err := it.Step(out.Final)
		if err != nil {
			return nil, fmt.Errorf("driver: iteration %d step: %w", iter, err)
		}
		res.Iterations = iter
		res.Deltas = append(res.Deltas, delta)
		res.Final = out.Final
		if it.OnIteration != nil {
			it.OnIteration(iter, delta, out.Report)
		}
		if done {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// KMeans builds an Iterative driving Lloyd's algorithm to convergence:
// each iteration reassigns every point and moves the centroids;
// convergence is the largest squared centroid movement dropping below
// tolerance.
func KMeans(deploy cluster.DeployConfig, tolerance float64) (*Iterative, error) {
	app, ok := deploy.App.(*apps.KMeans)
	if !ok {
		return nil, fmt.Errorf("driver: KMeans needs a kmeans app, got %T", deploy.App)
	}
	return &Iterative{
		Deploy: deploy,
		Step: func(final gr.Reduction) (float64, bool, error) {
			move, err := app.Iterate(final)
			if err != nil {
				return 0, false, err
			}
			return move, move < tolerance, nil
		},
	}, nil
}

// PageRank builds an Iterative driving power iterations to
// convergence: the globally reduced rank vector becomes the next
// iteration's input; convergence is the L1 rank change dropping below
// tolerance.
func PageRank(deploy cluster.DeployConfig, tolerance float64) (*Iterative, error) {
	app, ok := deploy.App.(*apps.PageRank)
	if !ok {
		return nil, fmt.Errorf("driver: PageRank needs a pagerank app, got %T", deploy.App)
	}
	type ranker interface{ NextRanks() []float64 }
	return &Iterative{
		Deploy: deploy,
		Step: func(final gr.Reduction) (float64, bool, error) {
			r, ok := final.(ranker)
			if !ok {
				return 0, false, fmt.Errorf("driver: unexpected reduction %T", final)
			}
			next := r.NextRanks()
			prev := app.Ranks()
			var delta float64
			for i := range next {
				d := next[i] - prev[i]
				if d < 0 {
					d = -d
				}
				delta += d
			}
			if err := app.SetRanks(next); err != nil {
				return 0, false, err
			}
			return delta, delta < tolerance, nil
		},
	}, nil
}
