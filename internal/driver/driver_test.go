package driver

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"cloudburst/internal/apps"
	"cloudburst/internal/chunk"
	"cloudburst/internal/cluster"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/store"
	"cloudburst/internal/workload"
)

// deployFor wires a two-site deployment over a generator's data.
func deployFor(t *testing.T, app gr.App, gen workload.Generator, records int64) cluster.DeployConfig {
	t.Helper()
	stores := map[string]*store.Mem{"local": store.NewMem(), "cloud": store.NewMem()}
	metas, err := workload.Materialize(gen, workload.Spec{
		Records: records, Files: 4, LocalFiles: 2,
	}, stores)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := chunk.Build(map[string]store.Store{"local": stores["local"], "cloud": stores["cloud"]},
		metas, chunk.BuildOptions{
			RecordSize: int32(app.RecordSize()),
			ChunkBytes: int64(app.RecordSize()) * 512,
		})
	if err != nil {
		t.Fatal(err)
	}
	return cluster.DeployConfig{
		App: app, Index: idx,
		Sites: []cluster.SiteSpec{
			{Name: "local", Cores: 2, HomeStore: stores["local"],
				RemoteStores: map[string]store.Store{"cloud": stores["cloud"]}},
			{Name: "cloud", Cores: 2, HomeStore: stores["cloud"],
				RemoteStores: map[string]store.Store{"local": stores["local"]}},
		},
	}
}

func TestKMeansDriverConverges(t *testing.T) {
	app, err := apps.NewKMeans(apps.Params{"k": "4", "dims": "2", "cost": "0s"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Points{Dims: 2, Seed: 17}
	it, err := KMeans(deployFor(t, app, gen, 20_000), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	it.MaxIterations = 40
	res, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("kmeans did not converge in %d iterations (last delta %v)",
			res.Iterations, res.Deltas[len(res.Deltas)-1])
	}
	// Deltas must be (weakly) decreasing toward zero overall.
	if res.Deltas[len(res.Deltas)-1] >= res.Deltas[0] {
		t.Fatalf("no progress: first %v last %v", res.Deltas[0], res.Deltas[len(res.Deltas)-1])
	}
}

func TestKMeansDriverMatchesSequentialLloyd(t *testing.T) {
	// The distributed iterative result must equal a plain sequential
	// Lloyd implementation run over the same data from the same seed.
	const records = 8000
	gen := workload.Points{Dims: 2, Seed: 23}
	params := apps.Params{"k": "3", "dims": "2", "cseed": "5", "cost": "0s"}

	distApp, err := apps.NewKMeans(params)
	if err != nil {
		t.Fatal(err)
	}
	it, err := KMeans(deployFor(t, distApp, gen, records), -1) // never converges early
	if err != nil {
		t.Fatal(err)
	}
	const iters = 5
	it.MaxIterations = iters
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}

	// Sequential reference with an identical app instance.
	refApp, err := apps.NewKMeans(params)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, records*int64(refApp.RecordSize()))
	workload.GenInto(gen, 0, data)
	engine := gr.NewEngine(refApp, gr.EngineOptions{})
	for i := 0; i < iters; i++ {
		red := refApp.NewReduction()
		if _, err := engine.ProcessChunk(red, data); err != nil {
			t.Fatal(err)
		}
		if _, err := refApp.Iterate(red); err != nil {
			t.Fatal(err)
		}
	}

	for c := range refApp.Centroids() {
		for d := range refApp.Centroids()[c] {
			got := distApp.Centroids()[c][d]
			want := refApp.Centroids()[c][d]
			if math.Abs(float64(got-want)) > 1e-5 {
				t.Fatalf("centroid %d dim %d: distributed %v, sequential %v", c, d, got, want)
			}
		}
	}
}

func TestPageRankDriverConverges(t *testing.T) {
	app, err := apps.NewPageRank(apps.Params{
		"pages": "2000", "mindeg": "2", "maxdeg": "8", "cost": "0s",
	})
	if err != nil {
		t.Fatal(err)
	}
	it, err := PageRank(deployFor(t, app, app.Graph, app.Graph.TotalEdges()), 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pagerank did not converge: %d iterations, deltas %v", res.Iterations, res.Deltas)
	}
	// Mass conservation at the fixed point.
	var mass float64
	for _, r := range app.Ranks() {
		mass += r
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("rank mass = %v", mass)
	}
}

func TestPageRankDriverMatchesDenseIteration(t *testing.T) {
	app, err := apps.NewPageRank(apps.Params{
		"pages": "500", "mindeg": "1", "maxdeg": "4", "cost": "0s",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the edges for the dense reference before running.
	total := app.Graph.TotalEdges()
	data := make([]byte, total*int64(app.RecordSize()))
	workload.GenInto(app.Graph, 0, data)

	it, err := PageRank(deployFor(t, app, app.Graph, total), -1)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 3
	it.MaxIterations = iters
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}

	// Dense reference.
	n := int(app.Graph.Pages)
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for iter := 0; iter < iters; iter++ {
		next := make([]float64, n)
		teleport := (1 - app.Damping) / float64(n)
		for i := range next {
			next[i] = teleport
		}
		for off := int64(0); off < int64(len(data)); off += 8 {
			src := int64(binary.LittleEndian.Uint32(data[off : off+4]))
			dst := int64(binary.LittleEndian.Uint32(data[off+4 : off+8]))
			next[dst] += app.Damping * ranks[src] / float64(app.Graph.OutDegree(src))
		}
		ranks = next
	}
	for i := range ranks {
		if math.Abs(ranks[i]-app.Ranks()[i]) > 1e-12 {
			t.Fatalf("page %d: distributed %v, dense %v", i, app.Ranks()[i], ranks[i])
		}
	}
}

func TestDriverValidation(t *testing.T) {
	if _, err := (&Iterative{}).Run(); err == nil {
		t.Fatal("missing Step accepted")
	}
	wc, _ := apps.NewWordCount(apps.Params{})
	if _, err := KMeans(cluster.DeployConfig{App: wc}, 1e-3); err == nil {
		t.Fatal("KMeans accepted a wordcount app")
	}
	if _, err := PageRank(cluster.DeployConfig{App: wc}, 1e-3); err == nil {
		t.Fatal("PageRank accepted a wordcount app")
	}
}

func TestDriverStepErrorPropagates(t *testing.T) {
	app, _ := apps.NewWordCount(apps.Params{"cost": "0s"})
	gen := workload.Words{Width: 12, Vocab: 10, Seed: 1}
	it := &Iterative{
		Deploy: deployFor(t, app, gen, 5000),
		Step: func(final gr.Reduction) (float64, bool, error) {
			return 0, false, fmt.Errorf("step boom")
		},
		MaxIterations: 3,
	}
	if _, err := it.Run(); err == nil {
		t.Fatal("step error swallowed")
	}
}

func TestDriverPersistentCacheWarmsAcrossIterations(t *testing.T) {
	// With CacheBytes set, the driver installs one chunk cache per site
	// that survives cluster.Run: the first pass fills it (all misses),
	// every later pass reads warm chunks (all hits, nothing refetched).
	app, _ := apps.NewWordCount(apps.Params{"cost": "0s"})
	gen := workload.Words{Width: 12, Vocab: 10, Seed: 1}
	deploy := deployFor(t, app, gen, 5000)
	// One site only: with two, work stealing may re-home chunks between
	// passes and the per-site caches would legitimately miss. The local
	// site can still reach the cloud store for stolen chunks.
	deploy.Sites = deploy.Sites[:1]
	var reports []*metrics.RunReport
	it := &Iterative{
		Deploy: deploy,
		Step: func(final gr.Reduction) (float64, bool, error) {
			return 1, false, nil
		},
		MaxIterations: 3,
		CacheBytes:    32 << 20,
		OnIteration: func(iter int, delta float64, report *metrics.RunReport) {
			reports = append(reports, report)
		},
	}
	res, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 || len(reports) != 3 {
		t.Fatalf("iterations = %d, reports = %d", res.Iterations, len(reports))
	}
	first := reports[0].Retrieval
	if first.CacheHits != 0 || first.CacheMisses == 0 {
		t.Fatalf("first pass must be all misses: %+v", first)
	}
	jobs := reports[0].JobsProcessed()
	for i, r := range reports[1:] {
		warm := r.Retrieval
		if warm.CacheMisses != 0 {
			t.Fatalf("pass %d refetched %d chunks despite a warm cache", i+2, warm.CacheMisses)
		}
		if warm.CacheHits != jobs {
			t.Fatalf("pass %d: %d hits for %d jobs", i+2, warm.CacheHits, jobs)
		}
		if warm.CacheBytesSaved == 0 {
			t.Fatalf("pass %d saved no bytes: %+v", i+2, warm)
		}
		if r.FinalResult != reports[0].FinalResult {
			t.Fatalf("pass %d digest diverged under caching", i+2)
		}
	}
}

func TestDriverMaxIterationsRespected(t *testing.T) {
	app, _ := apps.NewWordCount(apps.Params{"cost": "0s"})
	gen := workload.Words{Width: 12, Vocab: 10, Seed: 1}
	calls := 0
	observed := 0
	it := &Iterative{
		Deploy: deployFor(t, app, gen, 5000),
		Step: func(final gr.Reduction) (float64, bool, error) {
			calls++
			return 1, false, nil // never converges
		},
		MaxIterations: 3,
		OnIteration: func(iter int, delta float64, report *metrics.RunReport) {
			observed++
			if report == nil || delta != 1 {
				t.Errorf("iteration %d: delta %v report %v", iter, delta, report)
			}
		},
	}
	res, err := it.Run()
	if observed != 3 {
		t.Fatalf("OnIteration called %d times", observed)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 3 || calls != 3 {
		t.Fatalf("res = %+v calls = %d", res, calls)
	}
}
