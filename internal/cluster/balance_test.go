package cluster

import (
	"testing"

	"cloudburst/internal/netsim"
)

// The paper's load-balancing claims (Section III-B): on-demand job
// requests make faster compute naturally process more jobs, at both
// the slave and the cluster level.

func TestFasterClusterProcessesMoreJobs(t *testing.T) {
	cfg, gen := fixture(t, 12_000, 6, 3, 2, 2)
	// Pace compute so per-job time dominates real protocol overhead,
	// with the cloud's cores three times slower than local ones.
	cfg.Clock = netsim.Scaled(0.01)
	cfg.GroupUnits = 500
	cfg.Sites[0].UnitCostScale = 1.0
	cfg.Sites[1].UnitCostScale = 3.0
	setAppCost(t, &cfg, "5ms")

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 12_000))
	local := res.Report.Cluster("local").Workers.JobsProcessed
	cloud := res.Report.Cluster("cloud").Workers.JobsProcessed
	if local <= cloud {
		t.Fatalf("faster cluster processed %d jobs, slower %d — pooling did not balance", local, cloud)
	}
	// The slow cluster must still have contributed meaningfully.
	if cloud == 0 {
		t.Fatal("slow cluster starved entirely")
	}
}

func TestBalancedClustersFinishTogether(t *testing.T) {
	cfg, _ := fixture(t, 12_000, 6, 3, 2, 2)
	cfg.Clock = netsim.Scaled(0.01)
	setAppCost(t, &cfg, "2ms")

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With identical speeds and even data, end-of-run idle times must
	// be small relative to total execution.
	total := res.Report.TotalWall
	for _, c := range res.Report.Clusters {
		if c.IdleAtEnd > total/2 {
			t.Fatalf("cluster %s idled %v of %v", c.Site, c.IdleAtEnd, total)
		}
	}
}

// setAppCost rebuilds the fixture's wordcount app with a paced unit
// cost so compute dominates the (unshaped) retrieval.
func setAppCost(t *testing.T, cfg *DeployConfig, cost string) {
	t.Helper()
	app, err := newFixtureApp(cost)
	if err != nil {
		t.Fatal(err)
	}
	cfg.App = app
}

func TestHeterogeneousSlavesWithinCluster(t *testing.T) {
	// Two slaves in one cluster, one 4x slower: the on-demand model
	// must give the fast slave more jobs.
	cfg, gen := fixture(t, 8_000, 4, 4, 1, 0)
	clk := netsim.Scaled(0.01)
	app, err := newFixtureApp("20ms")
	if err != nil {
		t.Fatal(err)
	}

	head, err := NewHead(HeadConfig{App: app, Index: cfg.Index, Clusters: 1, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	headLn := mustListen(t)
	head.Serve(headLn)

	master, err := NewMaster(MasterConfig{Site: "local", App: app, Cores: 2, Slaves: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	masterLn := mustListen(t)
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headLn.Addr().String(), dialTCP, masterLn)
		masterDone <- err
	}()

	runSlave := func(scale float64, out chan<- int) {
		slave, err := NewSlave(SlaveConfig{
			Site: "local", App: app, Cores: 1,
			HomeStore: cfg.Sites[0].HomeStore,
			Clock:     clk, UnitCostScale: scale, GroupUnits: 250,
		})
		if err != nil {
			out <- -1
			return
		}
		stats, err := slave.Run(masterLn.Addr().String(), dialTCP)
		if err != nil {
			out <- -1
			return
		}
		out <- stats.Snapshot().JobsProcessed
	}
	fast, slow := make(chan int, 1), make(chan int, 1)
	go runSlave(1.0, fast)
	go runSlave(4.0, slow)

	fastJobs, slowJobs := <-fast, <-slow
	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	if _, final, err := head.Wait(); err != nil {
		t.Fatal(err)
	} else {
		checkCounts(t, final, wantCounts(gen, 8_000))
	}
	if fastJobs < 0 || slowJobs < 0 {
		t.Fatal("a slave failed")
	}
	if fastJobs <= slowJobs {
		t.Fatalf("fast slave got %d jobs, slow got %d", fastJobs, slowJobs)
	}
}
