package cluster

import (
	"net"
	"strings"
	"testing"
	"time"

	"cloudburst/internal/apps"
	"cloudburst/internal/chunk"
	"cloudburst/internal/gr"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/workload"
)

// fixture materializes a word-count data set split across two sites
// and returns a ready-to-run deployment config.
func fixture(t *testing.T, records int64, files, localFiles, coresLocal, coresCloud int) (DeployConfig, workload.Words) {
	t.Helper()
	gen := workload.Words{Width: 12, Vocab: 64, Seed: 31}
	app, err := apps.NewWordCount(apps.Params{"width": "12"})
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]*store.Mem{"local": store.NewMem(), "cloud": store.NewMem()}
	metas, err := workload.Materialize(gen, workload.Spec{
		Records: records, Files: files, LocalFiles: localFiles,
	}, stores)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := chunk.Build(map[string]store.Store{"local": stores["local"], "cloud": stores["cloud"]},
		metas, chunk.BuildOptions{RecordSize: 12, ChunkBytes: 12 * 64})
	if err != nil {
		t.Fatal(err)
	}

	cfg := DeployConfig{
		App:   app,
		Index: idx,
		Sites: []SiteSpec{
			{
				Name: "local", Cores: coresLocal, HomeStore: stores["local"],
				RemoteStores: map[string]store.Store{"cloud": stores["cloud"]},
			},
			{
				Name: "cloud", Cores: coresCloud, HomeStore: stores["cloud"],
				RemoteStores: map[string]store.Store{"local": stores["local"]},
			},
		},
	}
	if coresLocal == 0 {
		cfg.Sites = cfg.Sites[1:]
	} else if coresCloud == 0 {
		cfg.Sites = cfg.Sites[:1]
	}
	return cfg, gen
}

// wantCounts computes the reference word histogram.
func wantCounts(gen workload.Words, records int64) map[string]int64 {
	want := make(map[string]int64)
	for i := int64(0); i < records; i++ {
		want[gen.Word(gen.WordAt(i))]++
	}
	return want
}

func checkCounts(t *testing.T, final gr.Reduction, want map[string]int64) {
	t.Helper()
	type counter interface{ Counts() map[string]int64 }
	got := final.(counter).Counts()
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("word %q: got %d want %d", w, got[w], c)
		}
	}
}

func TestRunSingleSite(t *testing.T) {
	cfg, gen := fixture(t, 4000, 4, 4, 4, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 4000))
	if got := res.Report.JobsProcessed(); got != len(cfg.Index.Chunks) {
		t.Fatalf("jobs processed %d != %d chunks", got, len(cfg.Index.Chunks))
	}
	if res.Report.FinalResult == "" {
		t.Fatal("missing final result digest")
	}
}

func TestRunTwoSitesEvenSplit(t *testing.T) {
	cfg, gen := fixture(t, 8000, 8, 4, 3, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 8000))
	// Both clusters processed something.
	for _, site := range []string{"local", "cloud"} {
		c := res.Report.Cluster(site)
		if c == nil || c.Workers.JobsProcessed == 0 {
			t.Fatalf("cluster %s processed nothing: %+v", site, c)
		}
	}
	total := res.Report.Cluster("local").Workers.JobsProcessed +
		res.Report.Cluster("cloud").Workers.JobsProcessed
	if total != len(cfg.Index.Chunks) {
		t.Fatalf("job conservation: %d != %d", total, len(cfg.Index.Chunks))
	}
}

func TestRunSkewedDistributionSteals(t *testing.T) {
	// 1 of 8 files local (12.5%): the local cluster must steal from
	// the cloud to balance (paper Table I, env-17/83 behaviour).
	cfg, gen := fixture(t, 16_000, 8, 1, 4, 4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 16_000))
	local := res.Report.Cluster("local").Workers
	if local.JobsStolen == 0 {
		t.Fatalf("local cluster stole nothing despite 12.5%% local data: %+v", local)
	}
	if local.BytesRemote == 0 {
		t.Fatal("stolen jobs should count remote bytes")
	}
	// Work stealing balances: both clusters should process a
	// non-trivial share.
	cloud := res.Report.Cluster("cloud").Workers
	if local.JobsProcessed < len(cfg.Index.Chunks)/5 {
		t.Fatalf("local processed only %d of %d", local.JobsProcessed, len(cfg.Index.Chunks))
	}
	if cloud.JobsProcessed < len(cfg.Index.Chunks)/5 {
		t.Fatalf("cloud processed only %d of %d", cloud.JobsProcessed, len(cfg.Index.Chunks))
	}
}

func TestRunAllDataRemote(t *testing.T) {
	// Paper Fig. 4 setting: all data in the cloud store, both clusters
	// compute. The local cluster's jobs are all stolen.
	cfg, gen := fixture(t, 6000, 6, 0, 2, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 6000))
	local := res.Report.Cluster("local").Workers
	if local.JobsProcessed != local.JobsStolen {
		t.Fatalf("every local job should be stolen: %+v", local)
	}
}

func TestRunPerSiteFinalAgrees(t *testing.T) {
	cfg, gen := fixture(t, 3000, 3, 2, 2, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := wantCounts(gen, 3000)
	for site, final := range res.PerSiteFinal {
		t.Run(site, func(t *testing.T) { checkCounts(t, final, want) })
	}
}

func TestRunKNNEndToEnd(t *testing.T) {
	// A second application through the full stack: knn results must
	// equal a sequential reference reduction.
	app, err := apps.NewKNN(apps.Params{"k": "50", "dims": "2"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Points{Dims: 2, Seed: 77, WithID: true}
	stores := map[string]*store.Mem{"local": store.NewMem(), "cloud": store.NewMem()}
	metas, err := workload.Materialize(gen, workload.Spec{Records: 8000, Files: 4, LocalFiles: 2}, stores)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := chunk.Build(map[string]store.Store{"local": stores["local"], "cloud": stores["cloud"]},
		metas, chunk.BuildOptions{RecordSize: int32(app.RecordSize()), ChunkBytes: int64(app.RecordSize()) * 256})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DeployConfig{
		App: app, Index: idx,
		Sites: []SiteSpec{
			{Name: "local", Cores: 2, HomeStore: stores["local"],
				RemoteStores: map[string]store.Store{"cloud": stores["cloud"]}},
			{Name: "cloud", Cores: 2, HomeStore: stores["cloud"],
				RemoteStores: map[string]store.Store{"local": stores["local"]}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference.
	data := make([]byte, 8000*app.RecordSize())
	for i := int64(0); i < 8000; i++ {
		gen.Gen(i, data[i*int64(app.RecordSize()):(i+1)*int64(app.RecordSize())])
	}
	ref := app.NewReduction()
	engine := gr.NewEngine(app, gr.EngineOptions{})
	if _, err := engine.ProcessChunk(ref, data); err != nil {
		t.Fatal(err)
	}
	refSummary, _ := app.Summarize(ref)
	gotSummary, _ := app.Summarize(res.Final)
	if refSummary != gotSummary {
		t.Fatalf("knn result mismatch:\n got %s\nwant %s", gotSummary, refSummary)
	}
}

func TestRunWithShapedLinksAndPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// A fast but real timing run: scaled clock, shaped links. Checks
	// that the time breakdowns come out non-zero and consistent.
	cfg, gen := fixture(t, 4000, 4, 2, 2, 2)
	clk := netsim.Scaled(0.002)
	cfg.Clock = clk
	wan := netsim.Link{Name: "wan", Latency: 20 * time.Millisecond, PerStream: 8 << 20, Aggregate: 32 << 20}
	lan := netsim.Link{Name: "lan", Latency: time.Millisecond, PerStream: 200 << 20}
	for i := range cfg.Sites {
		cfg.Sites[i].HeadLink = wan
		cfg.Sites[i].SlaveLink = lan
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 4000))
	if res.Report.TotalWall <= 0 {
		t.Fatal("no emulated wall time recorded")
	}
	for _, c := range res.Report.Clusters {
		if c.Workers.Sync <= 0 {
			t.Fatalf("cluster %s recorded no sync time", c.Site)
		}
	}
}

func TestHeadRejectsBadConfig(t *testing.T) {
	if _, err := NewHead(HeadConfig{}); err == nil {
		t.Fatal("empty head config accepted")
	}
	if _, err := NewMaster(MasterConfig{}); err == nil {
		t.Fatal("empty master config accepted")
	}
	if _, err := NewSlave(SlaveConfig{}); err == nil {
		t.Fatal("empty slave config accepted")
	}
	if _, err := Run(DeployConfig{}); err == nil {
		t.Fatal("empty deploy config accepted")
	}
}

func TestRunReportIdleAndGlobalRed(t *testing.T) {
	cfg, _ := fixture(t, 4000, 4, 2, 2, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one cluster has zero idle (the last to finish).
	zeros := 0
	for _, c := range res.Report.Clusters {
		if c.IdleAtEnd == 0 {
			zeros++
		}
		if c.IdleAtEnd < 0 {
			t.Fatalf("negative idle for %s", c.Site)
		}
	}
	if zeros < 1 {
		t.Fatal("no cluster with zero idle")
	}
	if res.Report.GlobalRed < 0 {
		t.Fatal("negative global reduction time")
	}
	if !strings.Contains(res.Report.FinalResult, "wordcount") {
		t.Fatalf("summary = %q", res.Report.FinalResult)
	}
}

// newFixtureApp rebuilds the fixture's wordcount app with an explicit
// per-unit cost.
func newFixtureApp(cost string) (gr.App, error) {
	return apps.NewWordCount(apps.Params{"width": "12", "cost": cost})
}

// mustListen opens a loopback listener or fails the test.
func mustListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

// dialTCP adapts net.Dial for store.Dialer parameters.
func dialTCP(network, addr string) (net.Conn, error) { return net.Dial(network, addr) }
