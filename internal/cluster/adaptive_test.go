package cluster

import (
	"testing"

	"cloudburst/internal/netsim"
)

// TestResidentUnionDistinguishesEmptyFromNone: the union must stay
// non-nil whenever any slave has reported — even a drained cache —
// so the head runs SetResident's delete path and sheds the site's
// stale warm set, instead of skipping the update. (The wire codec
// preserves the nil vs. empty distinction end to end.)
func TestResidentUnionDistinguishesEmptyFromNone(t *testing.T) {
	m := &Master{resident: make(map[int][]int32)}
	if ids := m.residentUnionLocked(); ids != nil {
		t.Fatalf("no reports: got %v, want nil", ids)
	}
	m.resident[1] = nil // a slave with an enabled but drained cache
	if ids := m.residentUnionLocked(); ids == nil || len(ids) != 0 {
		t.Fatalf("drained report: got %v, want non-nil empty", ids)
	}
	m.resident[2] = []int32{3, 5, 3}
	ids := m.residentUnionLocked()
	if ids == nil || len(ids) != 2 {
		t.Fatalf("union = %v, want deduped {3,5}", ids)
	}
}

// TestRunHintsWarmCacheMatchesBaseline: master-piggybacked prefetch
// hints are an optimization on top of prefetch + cache — the final
// object and digest must match a hint-free run, and the hint counters
// must show the pipeline actually ran (grants carried hints, slaves
// warmed the cache from them).
func TestRunHintsWarmCacheMatchesBaseline(t *testing.T) {
	base, gen := fixture(t, 8000, 8, 4, 3, 3)
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	hinted, _ := fixture(t, 8000, 8, 4, 3, 3)
	hinted.Prefetch = true
	hinted.CacheBytes = 32 << 20
	hinted.HintDepth = 4
	hintedRes, err := Run(hinted)
	if err != nil {
		t.Fatal(err)
	}

	want := wantCounts(gen, 8000)
	checkCounts(t, baseRes.Final, want)
	checkCounts(t, hintedRes.Final, want)
	if baseRes.Report.FinalResult != hintedRes.Report.FinalResult {
		t.Fatalf("digest changed under hints:\n base   %s\n hinted %s",
			baseRes.Report.FinalResult, hintedRes.Report.FinalResult)
	}
	r := hintedRes.Report.Retrieval
	if r.HintsReceived == 0 {
		t.Fatalf("no hints reached the slaves: %+v", r)
	}
	if r.HintsWarmed == 0 {
		t.Fatalf("hints received but none warmed the cache: %+v", r)
	}
	if b := baseRes.Report.Retrieval; b.HintsReceived != 0 || b.HintsWarmed != 0 {
		t.Fatalf("hint-free run recorded hint traffic: %+v", b)
	}
}

// TestRunHintsWithoutCacheDegradeSilently: hints flowing to a slave
// with no cache to warm must be dropped without affecting the result.
func TestRunHintsWithoutCacheDegradeSilently(t *testing.T) {
	cfg, gen := fixture(t, 4000, 4, 2, 2, 2)
	cfg.Prefetch = true
	cfg.HintDepth = 4 // no CacheBytes: nothing to warm into
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 4000))
	if r := res.Report.Retrieval; r.HintsWarmed != 0 {
		t.Fatalf("cacheless run warmed hints: %+v", r)
	}
}

// TestRunFetchAutotuneMatchesBaseline: the AIMD fetch controller
// resizes and reorders range requests but never changes what is
// computed. All data is homed at "local" while only the cloud site has
// cores, so every chunk travels the remote fetch path the controller
// governs.
func TestRunFetchAutotuneMatchesBaseline(t *testing.T) {
	base, gen := fixture(t, 8000, 8, 8, 0, 3)
	base.Clock = netsim.Real()
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	tuned, _ := fixture(t, 8000, 8, 8, 0, 3)
	tuned.Clock = netsim.Real()
	tuned.FetchAutotune = true
	tunedRes, err := Run(tuned)
	if err != nil {
		t.Fatal(err)
	}

	want := wantCounts(gen, 8000)
	checkCounts(t, baseRes.Final, want)
	checkCounts(t, tunedRes.Final, want)
	if baseRes.Report.FinalResult != tunedRes.Report.FinalResult {
		t.Fatalf("digest changed under autotune:\n base  %s\n tuned %s",
			baseRes.Report.FinalResult, tunedRes.Report.FinalResult)
	}
	r := tunedRes.Report.Retrieval
	if r.AutotuneSamples == 0 {
		t.Fatalf("autotune run observed no fetches: %+v", r)
	}
	if b := baseRes.Report.Retrieval; b.AutotuneSamples != 0 {
		t.Fatalf("static run recorded controller samples: %+v", b)
	}
}
