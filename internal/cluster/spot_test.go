package cluster

import (
	"strings"
	"testing"
	"time"

	"cloudburst/internal/elastic"
	"cloudburst/internal/faults"
	"cloudburst/internal/gr"
	"cloudburst/internal/netsim"
	"cloudburst/internal/wire"
	"cloudburst/internal/workload"
)

// Spot-preemption tests: checkpoint adoption on unwarned kills, the
// checkpoint-vs-delivered-result supersede rule, the warned-drain /
// kill race, and the revocation trace end to end. Conservation is
// always the same invariant — no chunk lost, none double-counted —
// proven by exact word counts against the sequential reference.

// startMasterLogged is startMaster with a log tap, so tests can wait
// for asynchronous master-side transitions (slave loss, adoption)
// instead of sleeping.
func startMasterLogged(t *testing.T, cfg DeployConfig, headAddr string, slaves int, logs chan<- string) (*Master, string, chan error) {
	t.Helper()
	master, err := NewMaster(MasterConfig{
		Site: "local", App: cfg.App, Cores: slaves, Slaves: slaves,
		Batch: 8, Watermark: 4,
		Logf: func(format string, args ...any) {
			select {
			case logs <- strings.ReplaceAll(format, "%", "") + join(args):
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln := mustListen(t)
	done := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, dialTCP, ln)
		done <- err
	}()
	return master, ln.Addr().String(), done
}

func join(args []any) string {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(" ")
		switch v := a.(type) {
		case string:
			b.WriteString(v)
		}
	}
	return b.String()
}

// awaitLog blocks until a master log line containing want arrives.
func awaitLog(t *testing.T, logs <-chan string, want string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line := <-logs:
			if strings.Contains(line, want) {
				return
			}
		case <-deadline:
			t.Fatalf("no %q log within 10s", want)
		}
	}
}

// checkpointNow ships a checkpoint for everything the worker has
// processed since its last report (the cumulative covered set).
func checkpointNow(t *testing.T, w *rawWorker, seq int) {
	t.Helper()
	enc, err := gr.EncodeReduction(w.red)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.c.Send(&wire.Message{
		Kind: wire.KindCheckpoint, Seq: seq, Object: enc,
		Completed: append([]int32(nil), w.done...),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointAdoptedOnUnwarnedKill(t *testing.T) {
	// A worker processes half its grant, checkpoints, and is killed
	// without warning. The master must adopt the checkpoint (covered
	// chunks are NOT re-executed) and requeue only the remainder.
	cfg, gen := fixture(t, 2000, 2, 2, 2, 0)
	head, headAddr := startHead(t, cfg)
	logs := make(chan string, 64)
	_, masterAddr, masterDone := startMasterLogged(t, cfg, headAddr, 2, logs)

	w1 := newRawWorker(t, masterAddr, cfg)
	w2 := newRawWorker(t, masterAddr, cfg)
	if g := w1.grant(6); len(g.Jobs) < 2 {
		t.Fatalf("w1 got %d jobs, want >= 2", len(g.Jobs))
	}
	w1.process(len(w1.held) / 2)
	covered := append([]int32(nil), w1.done...)
	remainder := make(map[int32]bool)
	for _, j := range w1.held {
		remainder[j.Chunk] = true
	}
	checkpointNow(t, w1, 1)
	// Unwarned revocation: the connection just dies. The checkpoint
	// races the close on the same stream; the master reads the push
	// before seeing the error.
	w1.c.Close()
	awaitLog(t, logs, "adopted checkpoint")

	// The survivor mops up everything still unaccounted.
	for {
		w2.process(len(w2.held))
		g := w2.grant(8)
		if g.Done {
			break
		}
	}
	w2.finish(false)

	if err := <-masterDone; err != nil {
		t.Fatalf("master: %v", err)
	}
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 2000))
	for _, id := range covered {
		if w2.all[id] {
			t.Fatalf("checkpointed chunk %d was re-executed despite adoption", id)
		}
	}
	for id := range remainder {
		if !w2.all[id] {
			t.Fatalf("unckeckpointed chunk %d of the dead worker never re-executed", id)
		}
	}
}

func TestCheckpointSupersededByDeliveredResult(t *testing.T) {
	// A worker checkpoints and then delivers its full result (the
	// warned-drain flush): the delivered result must supersede the
	// stored checkpoint — merging both would double-count every covered
	// chunk, which the exact counts would expose.
	cfg, gen := fixture(t, 2000, 2, 2, 2, 0)
	head, headAddr := startHead(t, cfg)
	_, masterAddr, masterDone := startMaster(t, cfg, headAddr, 2)

	w1 := newRawWorker(t, masterAddr, cfg)
	w2 := newRawWorker(t, masterAddr, cfg)
	if g := w1.grant(4); len(g.Jobs) == 0 {
		t.Fatal("w1 got no jobs")
	}
	w1.process(len(w1.held))
	checkpointNow(t, w1, 1)
	w1.finish(false) // delivered result supersedes the checkpoint

	for {
		w2.process(len(w2.held))
		g := w2.grant(8)
		if g.Done {
			break
		}
	}
	w2.finish(false)

	if err := <-masterDone; err != nil {
		t.Fatalf("master: %v", err)
	}
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 2000))
}

func TestPreemptWarnAcknowledged(t *testing.T) {
	// KindPreemptWarn is a request: the master must mark the connection
	// draining and ack before the slave abandons anything, so the
	// returned chunks always find a live re-execution path.
	cfg, gen := fixture(t, 2000, 2, 2, 2, 0)
	head, headAddr := startHead(t, cfg)
	_, masterAddr, masterDone := startMaster(t, cfg, headAddr, 2)

	w1 := newRawWorker(t, masterAddr, cfg)
	w2 := newRawWorker(t, masterAddr, cfg)
	if g := w1.grant(4); len(g.Jobs) < 2 {
		t.Fatalf("w1 got %d jobs, want >= 2", len(g.Jobs))
	}
	resp, err := w1.c.Call(&wire.Message{Kind: wire.KindPreemptWarn})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindAck {
		t.Fatalf("preempt-warn answered %v, want ack", resp.Kind)
	}
	// Accelerated drain: process one, abandon the rest.
	w1.process(1)
	w1.finish(true)

	for {
		w2.process(len(w2.held))
		g := w2.grant(8)
		if g.Done {
			break
		}
	}
	w2.finish(false)

	if err := <-masterDone; err != nil {
		t.Fatalf("master: %v", err)
	}
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 2000))
}

func TestWarnedDrainRacingKillConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// A real slave is warned and then killed while its accelerated
	// drain may still be in flight. Whether the flush lands (drain
	// counted, returned chunks requeued) or the kill wins (checkpoint
	// adopted or everything requeued), the counts must stay exact.
	const records = 6000
	cfg, gen := fixture(t, records, 4, 4, 2, 0)
	setAppCost(t, &cfg, "20ms")
	clk := netsim.Scaled(0.01)
	cfg.Clock = clk
	head, headAddr := startHead(t, cfg)
	_, masterAddr, masterDone := startMaster(t, cfg, headAddr, 2)

	mk := func() *Slave {
		sl, err := NewSlave(SlaveConfig{
			Site: "local", App: cfg.App, Cores: 1,
			HomeStore: cfg.Sites[0].HomeStore, CheckpointJobs: 1,
			JobsPerRequest: 2, Clock: clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sl
	}
	victim, survivor := mk(), mk()
	victimDone, survivorDone := make(chan error, 1), make(chan error, 1)
	go func() { _, err := victim.Run(masterAddr, dialTCP); victimDone <- err }()
	go func() { _, err := survivor.Run(masterAddr, dialTCP); survivorDone <- err }()

	time.Sleep(150 * time.Millisecond) // let both take real work
	victim.PreemptWarn(2 * time.Second)
	time.Sleep(5 * time.Millisecond) // drain mid-flight
	victim.Kill()

	if err := <-survivorDone; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if err := <-victimDone; err != nil && !victim.Revoked() {
		t.Fatalf("victim failed without being revoked: %v", err)
	}
	if err := <-masterDone; err != nil {
		t.Fatalf("master: %v", err)
	}
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, records))
}

func TestSpotRevocationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Full deployment under a revocation trace: the elastic controller
	// bursts, the preemptor kills provisioned spot workers on schedule,
	// checkpoints bound the re-execution, and the controller replaces
	// lost capacity (on-demand once the fallback trips). Counts stay
	// exact throughout.
	cfg, records := elasticFixture(t, 1)
	// The trace is paced on the emulated clock; a gentler scale keeps
	// the schedule long enough in wall time that the burst fleet is
	// actually up when the preemptor strikes, even under -race.
	cfg.Clock = netsim.Scaled(0.05)
	cfg.Elastic = &elastic.Config{
		Site: "cloud", Deadline: 4 * time.Second,
		MinWorkers: 1, MaxWorkers: 6, StepUp: 2,
		BootLatency: 500 * time.Millisecond, Interval: 500 * time.Millisecond,
		InstanceRate: 0.17, EgressRate: 0.12,
		SpotRate: 0.05, OnDemandFallback: 1,
	}
	cfg.CheckpointJobs = 2
	cfg.Revocations = faults.NewRevocationTrace(7, faults.RevocationSpec{
		Site: "cloud", Count: 2, WarnedFrac: 0,
		Start: 2500 * time.Millisecond, Spread: 1500 * time.Millisecond,
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Words{Width: 12, Vocab: 64, Seed: 31}
	checkCounts(t, res.Final, wantCounts(gen, records))
	p := res.Report.Preemption
	if p == nil {
		t.Fatal("no preemption report")
	}
	if p.Revocations == 0 {
		t.Fatalf("trace fired no revocations: %+v", p)
	}
	if p.Unwarned != p.Revocations {
		t.Fatalf("unwarned trace produced warned revocations: %+v", p)
	}
	el := res.Report.Elastic
	if el == nil {
		t.Fatal("no elastic report")
	}
	if el.Revocations != p.Revocations {
		t.Fatalf("controller saw %d revocations, trace recorded %d", el.Revocations, p.Revocations)
	}
	if el.Replacements == 0 {
		t.Fatalf("no replacement capacity booted: %+v", el)
	}
}
