package cluster

import (
	"testing"

	"cloudburst/internal/store"
	"cloudburst/internal/workload"
)

// bufferFixture is the standard two-site fixture with the cloud site
// reading its home data object-store style (HomeFetch), which is the
// configuration the burst buffer exists for.
func bufferFixture(t *testing.T, records int64) (DeployConfig, workload.Words) {
	t.Helper()
	cfg, gen := fixture(t, records, 8, 4, 3, 3)
	for i := range cfg.Sites {
		if cfg.Sites[i].Name == "cloud" {
			cfg.Sites[i].HomeFetch = true
		}
	}
	return cfg, gen
}

// TestRunBufferInvariance: the buffer tier is a retrieval optimization,
// not a semantics change — digests and job accounting must be identical
// with and without it, while the buffered run shows per-tier counters.
func TestRunBufferInvariance(t *testing.T) {
	base, gen := bufferFixture(t, 8000)
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	buffered, _ := bufferFixture(t, 8000)
	buffered.BufferBytes = 64 << 20
	bufRes, err := Run(buffered)
	if err != nil {
		t.Fatal(err)
	}

	want := wantCounts(gen, 8000)
	checkCounts(t, baseRes.Final, want)
	checkCounts(t, bufRes.Final, want)
	if baseRes.Report.FinalResult != bufRes.Report.FinalResult {
		t.Fatalf("digest changed under buffering:\n base %s\n  buf %s",
			baseRes.Report.FinalResult, bufRes.Report.FinalResult)
	}
	if baseRes.Report.JobsProcessed() != bufRes.Report.JobsProcessed() {
		t.Fatalf("job counts diverged: %d vs %d",
			baseRes.Report.JobsProcessed(), bufRes.Report.JobsProcessed())
	}
	r := bufRes.Report.Retrieval
	if r.BufferHits+r.BufferMisses == 0 {
		t.Fatalf("buffered run recorded no buffer traffic: %+v", r)
	}
	if r.BufferBackingBytes == 0 {
		t.Fatalf("buffered run recorded no backing traffic: %+v", r)
	}
	if r.BufferBytes < r.BufferBackingBytes {
		t.Fatalf("served %d < backing %d: the tier amplified egress", r.BufferBytes, r.BufferBackingBytes)
	}
	b := baseRes.Report.Retrieval
	if b.BufferHits+b.BufferMisses != 0 || b.BufferBackingBytes != 0 {
		t.Fatalf("bufferless run recorded buffer traffic: %+v", b)
	}
}

// TestRunBufferStaging: with hints flowing, the master must stage
// queue-front chunks into the buffer ahead of demand, bounded by the
// staging budget, and the staged bytes must show in the report.
func TestRunBufferStaging(t *testing.T) {
	cfg, gen := bufferFixture(t, 8000)
	cfg.BufferBytes = 64 << 20
	cfg.HintDepth = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 8000))
	r := res.Report.Retrieval
	if r.StagedBytes == 0 {
		t.Fatalf("hinted buffered run staged nothing: %+v", r)
	}
	if r.BufferHits == 0 {
		t.Fatalf("staging produced no buffer hits: %+v", r)
	}
}

// TestRunBufferStageBudget: a one-byte budget must suppress staging
// entirely without affecting correctness.
func TestRunBufferStageBudget(t *testing.T) {
	cfg, gen := bufferFixture(t, 4000)
	cfg.BufferBytes = 64 << 20
	cfg.HintDepth = 4
	cfg.StageBudget = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 4000))
	if r := res.Report.Retrieval; r.StagedBytes != 0 {
		t.Fatalf("staging ran past a 1-byte budget: %+v", r)
	}
}

// TestRunBufferDownDegrades: a buffer whose backing store dies must not
// take the run down — slaves latch buffer-down and fall back to direct
// object-store fetches, and the result stays correct.
func TestRunBufferDownDegrades(t *testing.T) {
	cfg, gen := bufferFixture(t, 8000)
	for i := range cfg.Sites {
		site := &cfg.Sites[i]
		if site.Name != "cloud" {
			continue
		}
		// The buffer reads through a store that fails after 2 reads;
		// the slaves' direct path keeps the healthy HomeStore.
		failing := &failAfterReads{Store: site.HomeStore}
		failing.left.Store(2)
		site.Buffer = store.NewSiteBuffer(store.SiteBufferConfig{
			Site: site.Name, Backing: failing, Capacity: 64 << 20,
			Fetch: store.DefaultFetchOptions(),
		})
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 8000))
	if res.Report.FinalResult == "" {
		t.Fatal("missing final result digest")
	}
}
