package cluster

import (
	"fmt"
	"io"

	"cloudburst/internal/gr"
	"cloudburst/internal/wire"
)

// Sync modes: how reduction objects travel upstream and how each
// receiver merges them. The empty string resolves to the streamed
// parallel default; "monolithic" keeps the pre-streaming behavior —
// whole objects in single frames, merged after an all-arrivals
// barrier — as the measured baseline.
const (
	SyncMonolithic       = "monolithic"
	SyncStreamed         = "streamed"
	SyncStreamedParallel = "streamed-parallel"
	SyncStreamedSharded  = "streamed-sharded"
)

// syncPlan is a resolved sync mode: whether objects ship as bounded
// KindObjectPart streams and which merge strategy receivers run.
type syncPlan struct {
	name     string
	streamed bool
	merge    gr.MergeMode
}

// mergeWorkers is the modeled head/master node's merge fan-out (the
// paper's nodes are 8-core machines). It deliberately does not follow
// the emulation host's GOMAXPROCS: emulated merge costs are clock
// sleeps, which overlap across goroutines however few host cores back
// them, so a 1-core test host can still emulate an 8-way merge.
const mergeWorkers = 8

func resolveSyncMode(mode string) (syncPlan, error) {
	switch mode {
	case "", SyncStreamedParallel:
		return syncPlan{name: SyncStreamedParallel, streamed: true, merge: gr.MergeParallel}, nil
	case SyncMonolithic:
		return syncPlan{name: SyncMonolithic, streamed: false, merge: gr.MergeSerial}, nil
	case SyncStreamed:
		return syncPlan{name: SyncStreamed, streamed: true, merge: gr.MergeSerial}, nil
	case SyncStreamedSharded:
		return syncPlan{name: SyncStreamedSharded, streamed: true, merge: gr.MergeSharded}, nil
	}
	return syncPlan{}, fmt.Errorf("cluster: unknown sync mode %q (want monolithic, streamed, streamed-parallel, or streamed-sharded)", mode)
}

// objectCollector incrementally decodes streamed reduction objects
// arriving on one connection, one object at a time: feed consumes
// KindObjectPart messages on the receive loop while a decode goroutine
// drains the bridged reader, so decode overlaps the transfer still in
// flight and the full encoded object is never materialized. take joins
// the decode once the stream's terminal message arrives and resets the
// collector for the connection's next object.
type objectCollector struct {
	app    gr.App
	conn   *wire.Conn
	stream *wire.ObjectStream
	resCh  chan collectResult
}

type collectResult struct {
	obj gr.Reduction
	err error
}

// feed consumes one KindObjectPart, starting the decode goroutine on
// the stream's first part. The part's pooled Data buffer is recycled
// once the pipe has absorbed it.
func (oc *objectCollector) feed(m *wire.Message) error {
	if oc.stream == nil {
		oc.stream = wire.NewObjectStream()
		oc.resCh = make(chan collectResult, 1)
		go func(s *wire.ObjectStream, ch chan collectResult) {
			obj, err := gr.DecodeReductionFrom(oc.app, s.Reader())
			if err != nil {
				// Poison the pipe so the feeder stops pushing parts into a
				// dead decoder instead of blocking forever.
				s.Abort(err)
			} else {
				// Drain trailing bytes (none expected) so a decoder that
				// stopped short can never block the final parts.
				_, _ = io.Copy(io.Discard, s.Reader())
			}
			ch <- collectResult{obj: obj, err: err}
		}(oc.stream, oc.resCh)
	}
	_, err := oc.stream.Feed(m)
	if m.Data != nil && oc.conn != nil {
		// The pipe write completed (the decoder copied the bytes), so the
		// part buffer can go straight back to the pool.
		oc.conn.Recycle(m.Data)
	}
	return err
}

// pending reports whether a stream is mid-flight.
func (oc *objectCollector) pending() bool { return oc.stream != nil }

// take returns the decoded object after the stream's terminal message,
// plus the stream's frame and byte counts, resetting the collector.
func (oc *objectCollector) take() (gr.Reduction, int, int64, error) {
	if oc.stream == nil {
		return nil, 0, 0, fmt.Errorf("cluster: terminal message named a streamed object but no parts arrived")
	}
	res := <-oc.resCh
	parts, bytes := oc.stream.Frames(), oc.stream.Bytes()
	oc.stream, oc.resCh = nil, nil
	return res.obj, parts, bytes, res.err
}

// abort poisons a mid-flight stream (connection died between parts)
// and joins the decode goroutine so it cannot leak. A no-op when no
// stream is pending.
func (oc *objectCollector) abort(err error) {
	if oc.stream == nil {
		return
	}
	oc.stream.Abort(err)
	<-oc.resCh
	oc.stream, oc.resCh = nil, nil
}

// takeObject resolves a terminal message's reduction object: the
// single-frame Object when present (monolithic mode), otherwise the
// connection's just-completed part stream.
func takeObject(app gr.App, oc *objectCollector, req *wire.Message) (gr.Reduction, error) {
	if req.Object != nil {
		return gr.DecodeReduction(app, req.Object)
	}
	obj, _, _, err := oc.take()
	return obj, err
}

// hashBytes is FNV-1a over the encoded object — the cheap identity
// check behind checkpoint-cadence dedup.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
