package cluster

import (
	"net"
	"runtime"
	"testing"
	"time"

	"cloudburst/internal/apps"
	"cloudburst/internal/chunk"
	"cloudburst/internal/faults"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
	"cloudburst/internal/workload"
)

// Fault-tolerance tests for the re-execution extension: a worker or a
// whole cluster dying mid-run must not lose data — everything it was
// granted is re-executed elsewhere, because its partial reduction
// object died with it.

// startHead spins up a head over the given fixture config.
func startHead(t *testing.T, cfg DeployConfig) (*Head, string) {
	t.Helper()
	head, err := NewHead(HeadConfig{
		App: cfg.App, Index: cfg.Index, Clusters: len(cfg.Sites), Clock: cfg.Clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	head.Serve(ln)
	return head, ln.Addr().String()
}

func TestSlaveDeathJobsReexecuted(t *testing.T) {
	cfg, gen := fixture(t, 6000, 6, 6, 1, 0) // single site, all data local
	cfg.Sites[0].Cores = 1                   // one real worker...
	head, headAddr := startHead(t, cfg)

	master, err := NewMaster(MasterConfig{
		Site: "local", App: cfg.App, Cores: 2, Slaves: 2, // ...plus one doomed worker
		Batch: 4, Watermark: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	masterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()

	// Doomed worker: register, grab jobs, die without completing them.
	raw, err := net.Dial("tcp", masterLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	grant, err := doomed.Call(&wire.Message{Kind: wire.KindRequestJob, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Jobs) == 0 {
		t.Fatal("doomed worker got no jobs")
	}
	doomed.Close() // dies holding its grant

	// Real slave processes everything, including the requeued jobs.
	slave, err := NewSlave(SlaveConfig{
		Site: "local", App: cfg.App, Cores: 1,
		HomeStore: cfg.Sites[0].HomeStore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slave.Run(masterLn.Addr().String(), net.Dial); err != nil {
		t.Fatal(err)
	}
	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	report, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 6000))
	if got := report.JobsProcessed(); got != len(cfg.Index.Chunks) {
		t.Fatalf("jobs processed %d != %d", got, len(cfg.Index.Chunks))
	}
}

func TestMasterDeathClusterReexecuted(t *testing.T) {
	cfg, gen := fixture(t, 6000, 6, 3, 1, 1)
	head, headAddr := startHead(t, cfg)

	// Doomed master: registers as "cloud", takes a batch, dies.
	raw, err := net.Dial("tcp", headAddr)
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterMaster, Site: "cloud", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	grant, err := doomed.Call(&wire.Message{Kind: wire.KindRequestJobs, Site: "cloud", Max: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Jobs) == 0 {
		t.Fatal("doomed master got no jobs")
	}
	doomed.Close()

	// Surviving cluster: a real master + slave for "local". It must
	// steal and re-execute everything, including the doomed batch.
	master, err := NewMaster(MasterConfig{Site: "local", App: cfg.App, Cores: 1, Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	masterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()
	slave, err := NewSlave(SlaveConfig{
		Site: "local", App: cfg.App, Cores: 1,
		HomeStore: cfg.Sites[0].HomeStore,
		RemoteStores: map[string]store.Store{
			"cloud": cfg.Sites[1].HomeStore,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the head a moment to notice the dead master so its batch is
	// requeued before the survivor drains the pool.
	time.Sleep(50 * time.Millisecond)
	if _, err := slave.Run(masterLn.Addr().String(), net.Dial); err != nil {
		t.Fatal(err)
	}
	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 6000))
}

func TestAllClustersLostFailsRun(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	head, headAddr := startHead(t, cfg)

	raw, err := net.Dial("tcp", headAddr)
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterMaster, Site: "local", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	doomed.Close()

	_, _, err = head.Wait()
	if err == nil {
		t.Fatal("run with all clusters lost should fail")
	}
}

// TestAllSlavesLostFailsCluster drives a master whose only slave dies.
func TestAllSlavesLostFailsCluster(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	_, headAddr := startHead(t, cfg)

	master, err := NewMaster(MasterConfig{Site: "local", App: cfg.App, Cores: 1, Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	masterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()

	raw, err := net.Dial("tcp", masterLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	doomed.Close()

	select {
	case err := <-masterDone:
		if err == nil {
			t.Fatal("master with no surviving slaves should fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master did not detect total slave loss")
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack, failing the test otherwise — fault-path runs must not
// leak heartbeaters, handlers, or retry workers.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d+%d\n%s",
				runtime.NumGoroutine(), base, slack, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStalledSlaveHeartbeatReexecution is the stall-path counterpart of
// TestSlaveDeathJobsReexecuted: the doomed slave keeps its connection
// OPEN but stops responding, so crash detection via connection close
// never fires — only the heartbeat deadline can catch it.
func TestStalledSlaveHeartbeatReexecution(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	cfg, gen := fixture(t, 3000, 3, 3, 1, 0)
	head, headAddr := startHead(t, cfg)

	master, err := NewMaster(MasterConfig{
		Site: "local", App: cfg.App, Cores: 2, Slaves: 2,
		Batch: 4, Watermark: 2,
		HeartbeatInterval: 20 * time.Millisecond, HeartbeatMisses: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	masterLn := mustListen(t)
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()

	// Stalled worker: register, grab jobs, then go silent WITHOUT
	// closing the connection.
	raw, err := net.Dial("tcp", masterLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	stalled := wire.NewConn(raw)
	defer stalled.Close()
	if _, err := stalled.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	grant, err := stalled.Call(&wire.Message{Kind: wire.KindRequestJob, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Jobs) == 0 {
		t.Fatal("stalled worker got no jobs")
	}
	// ... silence. Give the master time to hit the heartbeat deadline
	// (2 * 20ms) and requeue the grant before the real slave drains the
	// pool.
	time.Sleep(120 * time.Millisecond)

	slave, err := NewSlave(SlaveConfig{
		Site: "local", App: cfg.App, Cores: 1,
		HomeStore:         cfg.Sites[0].HomeStore,
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slave.Run(masterLn.Addr().String(), net.Dial); err != nil {
		t.Fatal(err)
	}
	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	report, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 3000))
	if got := report.JobsProcessed(); got != len(cfg.Index.Chunks) {
		t.Fatalf("jobs processed %d != %d", got, len(cfg.Index.Chunks))
	}
	if report.Faults.HeartbeatMisses < 1 {
		t.Fatalf("stall not detected via heartbeat: %+v", report.Faults)
	}
	waitGoroutines(t, baseGoroutines, 4)
}

// chaosRun executes a single-site deployment under a full fault plan:
// probabilistic transient + SlowDown store faults (retried by the
// fetch layer) plus one slave that stalls mid-run holding jobs
// (recovered via heartbeat re-execution). It returns the run report,
// the final reduction, and the plan's injected-fault totals.
func chaosRun(t *testing.T, seed int64) (*metrics.RunReport, gr.Reduction, map[faults.Kind]int64) {
	t.Helper()
	cfg, _ := fixture(t, 3000, 3, 3, 1, 0)
	plan := faults.NewPlan(seed,
		faults.Spec{Kind: faults.Transient, FirstN: 2, Prob: 0.05},
		faults.Spec{Kind: faults.SlowDown, Prob: 0.05},
	)
	// The site's store becomes a faulty SimS3; HomeFetch routes all
	// reads through the retrying multi-threaded fetcher. Threads=1
	// keeps the per-object request order deterministic so injected
	// totals are reproducible across runs.
	faulty := store.NewSimS3(cfg.Sites[0].HomeStore, nil, 0, 0, nil).WithFaults(plan, "local")
	fetch := store.FetchOptions{
		Threads: 1, RangeSize: 512,
		Retry: store.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Microsecond},
	}

	head, headAddr := startHead(t, cfg)
	master, err := NewMaster(MasterConfig{
		Site: "local", App: cfg.App, Cores: 2, Slaves: 2,
		Batch: 4, Watermark: 2,
		HeartbeatInterval: 15 * time.Millisecond, HeartbeatMisses: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	masterLn := mustListen(t)
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()

	// The stalled slave registers, grabs jobs, and goes silent.
	raw, err := net.Dial("tcp", masterLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	stalled := wire.NewConn(raw)
	defer stalled.Close()
	if _, err := stalled.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	if grant, err := stalled.Call(&wire.Message{Kind: wire.KindRequestJob, Max: 3}); err != nil {
		t.Fatal(err)
	} else if len(grant.Jobs) == 0 {
		t.Fatal("stalled worker got no jobs")
	}
	time.Sleep(100 * time.Millisecond) // let the heartbeat deadline fire

	slave, err := NewSlave(SlaveConfig{
		Site: "local", App: cfg.App, Cores: 1,
		HomeStore: faulty, HomeFetch: true, Fetch: fetch,
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slave.Run(masterLn.Addr().String(), net.Dial); err != nil {
		t.Fatal(err)
	}
	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	report, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return report, final, plan.Injected()
}

// TestChaosRunCompletesCorrectAndReproducible is the acceptance
// scenario: under transient faults, SlowDown throttling, and a stalled
// slave, the run completes with a reduction identical to the
// fault-free one, records retries and a heartbeat re-execution, and
// injects the exact same fault multiset when replayed from the seed.
func TestChaosRunCompletesCorrectAndReproducible(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	gen := workload.Words{Width: 12, Vocab: 64, Seed: 31}
	want := wantCounts(gen, 3000)

	report, final, injected := chaosRun(t, 42)
	checkCounts(t, final, want)
	if report.Faults.Retries == 0 {
		t.Fatalf("no retries recorded under a fault plan: %+v", report.Faults)
	}
	if report.Faults.BackoffEmu <= 0 {
		t.Fatalf("retries without backoff time: %+v", report.Faults)
	}
	if report.Faults.HeartbeatMisses < 1 {
		t.Fatalf("stalled slave not re-executed via heartbeat: %+v", report.Faults)
	}
	if len(injected) == 0 {
		t.Fatal("plan injected nothing")
	}
	if injected[faults.Transient] < 2 {
		t.Fatalf("FirstN transient faults not injected: %v", injected)
	}

	// Replay from the same seed: identical reduction, identical
	// injected-fault multiset.
	report2, final2, injected2 := chaosRun(t, 42)
	checkCounts(t, final2, want)
	if len(injected2) != len(injected) {
		t.Fatalf("injected kinds differ: %v vs %v", injected, injected2)
	}
	for k, n := range injected {
		if injected2[k] != n {
			t.Fatalf("seed 42 not reproducible: kind %v %d vs %d", k, n, injected2[k])
		}
	}
	if report2.Faults.HeartbeatMisses < 1 {
		t.Fatalf("replay lost the stall detection: %+v", report2.Faults)
	}
	waitGoroutines(t, baseGoroutines, 4)
}

// TestFixtureAppsAgree sanity-checks the fixture across two app types.
func TestFixtureAppsAgree(t *testing.T) {
	app, err := apps.NewWordCount(apps.Params{"width": "12"})
	if err != nil {
		t.Fatal(err)
	}
	if app.RecordSize() != 12 {
		t.Fatal("fixture record size drifted")
	}
	if _, err := chunk.Build(nil, nil, chunk.BuildOptions{RecordSize: 12, ChunkBytes: 1}); err != nil {
		t.Fatal("empty build should succeed with no files")
	}
}
