package cluster

import (
	"net"
	"testing"
	"time"

	"cloudburst/internal/apps"
	"cloudburst/internal/chunk"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
)

// Fault-tolerance tests for the re-execution extension: a worker or a
// whole cluster dying mid-run must not lose data — everything it was
// granted is re-executed elsewhere, because its partial reduction
// object died with it.

// startHead spins up a head over the given fixture config.
func startHead(t *testing.T, cfg DeployConfig) (*Head, string) {
	t.Helper()
	head, err := NewHead(HeadConfig{
		App: cfg.App, Index: cfg.Index, Clusters: len(cfg.Sites), Clock: cfg.Clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	head.Serve(ln)
	return head, ln.Addr().String()
}

func TestSlaveDeathJobsReexecuted(t *testing.T) {
	cfg, gen := fixture(t, 6000, 6, 6, 1, 0) // single site, all data local
	cfg.Sites[0].Cores = 1                   // one real worker...
	head, headAddr := startHead(t, cfg)

	master, err := NewMaster(MasterConfig{
		Site: "local", App: cfg.App, Cores: 2, Slaves: 2, // ...plus one doomed worker
		Batch: 4, Watermark: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	masterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()

	// Doomed worker: register, grab jobs, die without completing them.
	raw, err := net.Dial("tcp", masterLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	grant, err := doomed.Call(&wire.Message{Kind: wire.KindRequestJob, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Jobs) == 0 {
		t.Fatal("doomed worker got no jobs")
	}
	doomed.Close() // dies holding its grant

	// Real slave processes everything, including the requeued jobs.
	slave, err := NewSlave(SlaveConfig{
		Site: "local", App: cfg.App, Cores: 1,
		HomeStore: cfg.Sites[0].HomeStore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slave.Run(masterLn.Addr().String(), net.Dial); err != nil {
		t.Fatal(err)
	}
	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	report, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 6000))
	if got := report.JobsProcessed(); got != len(cfg.Index.Chunks) {
		t.Fatalf("jobs processed %d != %d", got, len(cfg.Index.Chunks))
	}
}

func TestMasterDeathClusterReexecuted(t *testing.T) {
	cfg, gen := fixture(t, 6000, 6, 3, 1, 1)
	head, headAddr := startHead(t, cfg)

	// Doomed master: registers as "cloud", takes a batch, dies.
	raw, err := net.Dial("tcp", headAddr)
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterMaster, Site: "cloud", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	grant, err := doomed.Call(&wire.Message{Kind: wire.KindRequestJobs, Site: "cloud", Max: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Jobs) == 0 {
		t.Fatal("doomed master got no jobs")
	}
	doomed.Close()

	// Surviving cluster: a real master + slave for "local". It must
	// steal and re-execute everything, including the doomed batch.
	master, err := NewMaster(MasterConfig{Site: "local", App: cfg.App, Cores: 1, Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	masterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()
	slave, err := NewSlave(SlaveConfig{
		Site: "local", App: cfg.App, Cores: 1,
		HomeStore: cfg.Sites[0].HomeStore,
		RemoteStores: map[string]store.Store{
			"cloud": cfg.Sites[1].HomeStore,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the head a moment to notice the dead master so its batch is
	// requeued before the survivor drains the pool.
	time.Sleep(50 * time.Millisecond)
	if _, err := slave.Run(masterLn.Addr().String(), net.Dial); err != nil {
		t.Fatal(err)
	}
	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 6000))
}

func TestAllClustersLostFailsRun(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	head, headAddr := startHead(t, cfg)

	raw, err := net.Dial("tcp", headAddr)
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterMaster, Site: "local", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	doomed.Close()

	_, _, err = head.Wait()
	if err == nil {
		t.Fatal("run with all clusters lost should fail")
	}
}

// TestAllSlavesLostFailsCluster drives a master whose only slave dies.
func TestAllSlavesLostFailsCluster(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	_, headAddr := startHead(t, cfg)

	master, err := NewMaster(MasterConfig{Site: "local", App: cfg.App, Cores: 1, Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	masterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	masterDone := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, net.Dial, masterLn)
		masterDone <- err
	}()

	raw, err := net.Dial("tcp", masterLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	doomed := wire.NewConn(raw)
	if _, err := doomed.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	doomed.Close()

	select {
	case err := <-masterDone:
		if err == nil {
			t.Fatal("master with no surviving slaves should fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master did not detect total slave loss")
	}
}

// TestFixtureAppsAgree sanity-checks the fixture across two app types.
func TestFixtureAppsAgree(t *testing.T) {
	app, err := apps.NewWordCount(apps.Params{"width": "12"})
	if err != nil {
		t.Fatal(err)
	}
	if app.RecordSize() != 12 {
		t.Fatal("fixture record size drifted")
	}
	if _, err := chunk.Build(nil, nil, chunk.BuildOptions{RecordSize: 12, ChunkBytes: 1}); err != nil {
		t.Fatal("empty build should succeed with no files")
	}
}
