package cluster

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"cloudburst/internal/store"
)

// TestRunPrefetchMatchesBaseline: the pipeline is an optimization, not
// a semantics change — final objects, digests, and job accounting must
// be identical with and without it.
func TestRunPrefetchMatchesBaseline(t *testing.T) {
	base, gen := fixture(t, 8000, 8, 4, 3, 3)
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	pf, _ := fixture(t, 8000, 8, 4, 3, 3)
	pf.Prefetch = true
	pfRes, err := Run(pf)
	if err != nil {
		t.Fatal(err)
	}

	want := wantCounts(gen, 8000)
	checkCounts(t, baseRes.Final, want)
	checkCounts(t, pfRes.Final, want)
	if baseRes.Report.FinalResult != pfRes.Report.FinalResult {
		t.Fatalf("digest changed under prefetch:\n base %s\n  pf  %s",
			baseRes.Report.FinalResult, pfRes.Report.FinalResult)
	}
	if baseRes.Report.JobsProcessed() != pfRes.Report.JobsProcessed() {
		t.Fatalf("job counts diverged: %d vs %d",
			baseRes.Report.JobsProcessed(), pfRes.Report.JobsProcessed())
	}
	if pfRes.Report.Retrieval.PrefetchedJobs == 0 {
		t.Fatal("prefetch run recorded no prefetched jobs")
	}
	if baseRes.Report.Retrieval.PrefetchedJobs != 0 {
		t.Fatal("baseline run recorded prefetched jobs")
	}
}

// TestRunPrefetchBudgetDeniesAndDegrades: an exhausted byte budget must
// downgrade prefetches to on-demand fetches, never break the run.
func TestRunPrefetchBudgetDeniesAndDegrades(t *testing.T) {
	cfg, gen := fixture(t, 4000, 4, 2, 2, 2)
	cfg.Prefetch = true
	cfg.PrefetchBudget = 1 // below any chunk size: every prefetch denied
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 4000))
	r := res.Report.Retrieval
	if r.PrefetchSkips == 0 {
		t.Fatalf("no budget denials recorded: %+v", r)
	}
	if r.PrefetchedJobs != 0 {
		t.Fatalf("prefetches admitted past a 1-byte budget: %+v", r)
	}
}

// TestRunCacheInvariance: caching must not change results; within one
// pass every chunk is granted once, so the cache records only misses.
func TestRunCacheInvariance(t *testing.T) {
	base, gen := fixture(t, 6000, 6, 3, 2, 2)
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cached, _ := fixture(t, 6000, 6, 3, 2, 2)
	cached.CacheBytes = 32 << 20
	cachedRes, err := Run(cached)
	if err != nil {
		t.Fatal(err)
	}

	want := wantCounts(gen, 6000)
	checkCounts(t, baseRes.Final, want)
	checkCounts(t, cachedRes.Final, want)
	if baseRes.Report.FinalResult != cachedRes.Report.FinalResult {
		t.Fatal("digest changed under caching")
	}
	r := cachedRes.Report.Retrieval
	if r.CacheMisses == 0 {
		t.Fatalf("cache saw no traffic: %+v", r)
	}
	if r.CacheHits != 0 {
		t.Fatalf("single-pass run cannot have cache hits: %+v", r)
	}
	if baseRes.Report.Retrieval.CacheMisses != 0 {
		t.Fatal("cache-off run recorded cache traffic")
	}
}

// TestRunPrefetchWithCacheAndBothTogether exercises the remaining
// ablation corners through the full deployment.
func TestRunPrefetchWithCacheTogether(t *testing.T) {
	cfg, gen := fixture(t, 4000, 4, 2, 2, 2)
	cfg.Prefetch = true
	cfg.CacheBytes = 16 << 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Final, wantCounts(gen, 4000))
	r := res.Report.Retrieval
	if r.PrefetchedJobs == 0 || r.CacheMisses == 0 {
		t.Fatalf("combined run missing pipeline counters: %+v", r)
	}
	if r.PoolGets == 0 {
		t.Fatalf("pooled fetches not counted: %+v", r)
	}
}

// failAfterReads serves n reads then fails everything, from any
// goroutine.
type failAfterReads struct {
	store.Store
	left atomic.Int64
}

func (f *failAfterReads) ReadAt(name string, p []byte, off int64) (int, error) {
	if f.left.Add(-1) < 0 {
		return 0, errors.New("store went away")
	}
	return f.Store.ReadAt(name, p, off)
}

// TestRunPrefetchErrorPropagatesCleanly: a retrieval failure while the
// pipeline has a grant in flight must surface the error — not hang the
// worker waiting on its prefetch goroutine or leak budget bytes.
func TestRunPrefetchErrorPropagatesCleanly(t *testing.T) {
	cfg, _ := fixture(t, 8000, 8, 4, 2, 2)
	for i := range cfg.Sites {
		site := &cfg.Sites[i]
		failing := &failAfterReads{Store: site.HomeStore}
		failing.left.Store(3)
		site.HomeStore = failing
	}
	cfg.Prefetch = true
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("run with a dying store must fail")
	}
	// Which error wins the race to the head varies (the worker's
	// retrieval error vs. the head noticing the cluster vanish); what
	// matters is that the run fails promptly instead of deadlocking on
	// the in-flight prefetch.
	if !strings.Contains(err.Error(), "job") && !strings.Contains(err.Error(), "lost") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

// TestSlavePrefetchReleasesBudgetOnError drives the slave directly
// against a master and checks the shared byte budget is made whole
// after a mid-run failure (i.e., error paths release what prefetch
// acquired).
func TestSlavePrefetchReleasesBudgetOnError(t *testing.T) {
	cfg, _ := fixture(t, 8000, 8, 4, 2, 0)
	site := &cfg.Sites[0]
	failing := &failAfterReads{Store: site.HomeStore}
	failing.left.Store(2)
	site.HomeStore = failing
	cfg.Prefetch = true
	cfg.PrefetchBudget = 1 << 20
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("expected failure")
	}
	// The deployment tears down; reaching here without a deadlock (the
	// worker's deferred cleanup drained its in-flight prefetch) is the
	// point. Budget accounting is checked at the unit level below.
}

func TestByteBudgetAccounting(t *testing.T) {
	b := &byteBudget{avail: 100}
	if !b.tryAcquire(60) || !b.tryAcquire(40) {
		t.Fatal("acquires within budget denied")
	}
	if b.tryAcquire(1) {
		t.Fatal("over-budget acquire admitted")
	}
	b.release(40)
	if !b.tryAcquire(30) {
		t.Fatal("released bytes not reusable")
	}
	var nilBudget *byteBudget
	if !nilBudget.tryAcquire(1 << 40) {
		t.Fatal("nil budget must be unlimited")
	}
	nilBudget.release(1) // must not panic
}
