// Package cluster implements the paper's three-tier runtime (Section
// III-B): the head node owns the global job pool and the final global
// reduction; one master per cluster pulls job batches from the head on
// demand and feeds its slaves; slaves retrieve chunk data (sequential
// local reads, multi-threaded remote fetches for stolen jobs) and run
// local reduction on paced virtual cores.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudburst/internal/chunk"
	"cloudburst/internal/elastic"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
)

// HeadConfig configures a head node run.
type HeadConfig struct {
	// App is the application whose reduction objects the head merges.
	App gr.App
	// Index describes the data set; the head builds its job pool from it.
	Index *chunk.Index
	// Clusters is the number of masters expected to register.
	Clusters int
	// Scatter disables the consecutive-job assignment optimization
	// (ablation knob; see chunk.PoolOptions).
	Scatter bool
	// Clock converts measured wall time back to emulated durations.
	Clock netsim.Clock
	// HeartbeatInterval, when positive, requires each registered master
	// to show traffic (requests or heartbeats) at least every
	// HeartbeatInterval * HeartbeatMisses; a silent master is declared
	// stalled and its cluster re-executed elsewhere.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals count as a stall
	// (default 3).
	HeartbeatMisses int
	// Elastic, when set, watches per-site completion rates against the
	// configured deadline and issues scale decisions for its site. The
	// head applies them: scale-ups go to the ScaleUp callback (the
	// provisioner boots new slaves that join the site's master), and
	// scale-downs are pushed to the site's master as KindScale, which
	// drains the surplus workers.
	Elastic *elastic.Controller
	// ScaleUp provisions n additional workers for site; nil ignores
	// scale-up decisions. It must not block. onDemand is true when the
	// controller has fallen back to the non-revocable tier after repeated
	// spot revocations — the provisioner must exempt those workers from
	// the revocation trace.
	ScaleUp func(site string, n int, onDemand bool)
	// Pool recycles wire encode/frame buffers on master connections
	// (default: a fresh BufferPool).
	Pool *store.BufferPool
	// SyncMode selects the global-reduction strategy: how cluster
	// results arrive (streamed parts vs single frames), how they merge
	// (as each cluster finishes vs after the all-clusters barrier), and
	// how the Final broadcast ships back. Empty picks streamed-parallel.
	SyncMode string
	// MergeCost charges each global-reduction fold an emulated duration
	// per byte of the folded object (see gr.MergerOptions.CostPerByte);
	// zero charges nothing.
	MergeCost time.Duration
	// Logf receives progress logging; nil silences it.
	Logf func(format string, args ...any)
}

// Head is the head node: it assigns jobs to requesting clusters
// (locality first, then stealing from the least-contended remote
// file), collects per-cluster reduction objects, and produces the
// final result.
type Head struct {
	cfg  HeadConfig
	pool *chunk.Pool
	plan syncPlan

	// merger runs the availability-driven global reduction under a
	// streamed plan: each cluster's object merges as it arrives, so a
	// fast cluster's merge hides behind a slow cluster's WAN transfer.
	// Monolithic mode accumulates objects and merges after the barrier.
	merger *gr.Merger

	mu          sync.Mutex
	started     time.Time
	arrivals    map[string]time.Time // site -> cluster-result arrival
	stats       map[string]wire.Stats
	objects     []gr.Reduction
	registered  int
	expected    int // clusters still expected to deliver a result
	lastArrival time.Time
	sendsDone   int
	broadcastT  time.Time // when the last Final send completed
	mergeEmu    time.Duration
	faults      metrics.Breakdown // head-side stall detections

	// mergeReady is closed when the global reduction has produced the
	// final object (or failed); handlers then broadcast it.
	mergeReady chan struct{}
	mergeOnce  sync.Once
	finalObj   gr.Reduction
	finalEnc   []byte // monolithic broadcast; streamed re-encodes per master
	finalEst   int    // finalObj.Bytes() estimate for stream accounting
	runErr     error

	resultOnce sync.Once
	resultCh   chan headResult

	// conns tracks each registered master's connection so scale-down
	// pushes can reach the right site without holding mu during sends.
	conns map[string]*wire.Conn
	// progress holds each site's advisory completion gauge (the live
	// feed for the elastic controller) and totalJobs the pool size it
	// is measured against.
	progress  map[string]int
	totalJobs int

	wg sync.WaitGroup
	ln net.Listener
}

type headResult struct {
	report *metrics.RunReport
	final  gr.Reduction
	err    error
}

// NewHead builds a head node.
func NewHead(cfg HeadConfig) (*Head, error) {
	if cfg.App == nil || cfg.Index == nil {
		return nil, fmt.Errorf("cluster: head needs an app and an index")
	}
	if cfg.Clusters <= 0 {
		return nil, fmt.Errorf("cluster: head needs a positive cluster count")
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.Instant()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.HeartbeatMisses < 1 {
		cfg.HeartbeatMisses = 3
	}
	if cfg.Pool == nil {
		cfg.Pool = store.NewBufferPool()
	}
	plan, err := resolveSyncMode(cfg.SyncMode)
	if err != nil {
		return nil, err
	}
	h := &Head{
		cfg:        cfg,
		plan:       plan,
		pool:       chunk.NewPoolWith(cfg.Index, chunk.PoolOptions{Scatter: cfg.Scatter}),
		expected:   cfg.Clusters,
		arrivals:   make(map[string]time.Time),
		stats:      make(map[string]wire.Stats),
		mergeReady: make(chan struct{}),
		resultCh:   make(chan headResult, 1),
		conns:      make(map[string]*wire.Conn),
		progress:   make(map[string]int),
	}
	h.merger = gr.NewMerger(cfg.App, gr.MergerOptions{
		Mode: plan.merge, Workers: mergeWorkers,
		Clock: cfg.Clock, CostPerByte: cfg.MergeCost,
	})
	return h, nil
}

// Serve accepts master connections on l until the run completes.
func (h *Head) Serve(l net.Listener) {
	h.mu.Lock()
	h.ln = l
	h.started = h.cfg.Clock.Now()
	h.totalJobs = h.pool.Remaining()
	h.mu.Unlock()
	if h.cfg.Elastic != nil {
		// The controller sizes the scaled site against its own backlog,
		// so it needs the pool's per-home-site job composition.
		idx := h.pool.Index()
		byHome := make(map[string]int)
		for _, c := range idx.Chunks {
			byHome[idx.Files[c.File].Site]++
		}
		// A warm-started controller (advisor-seeded) may command its
		// first boot immediately; apply it like any mid-run decision.
		h.apply(h.cfg.Elastic.Start(h.totalJobs, byHome))
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				wc := wire.NewConn(conn)
				wc.SetBufferPool(h.cfg.Pool)
				if err := h.handleMaster(wc); err != nil {
					h.fail(err)
				}
			}()
		}
	}()
}

// Wait blocks until the run completes, returning the run report and
// the final reduction object. Wait may be called repeatedly.
func (h *Head) Wait() (*metrics.RunReport, gr.Reduction, error) {
	res := <-h.resultCh
	h.resultCh <- res
	if h.ln != nil {
		h.ln.Close()
	}
	return res.report, res.final, res.err
}

func (h *Head) fail(err error) {
	// Release any handlers blocked waiting for the merge so they can
	// observe the failure instead of hanging.
	h.mu.Lock()
	if h.runErr == nil {
		h.runErr = err
	}
	h.mu.Unlock()
	h.mergeOnce.Do(func() { close(h.mergeReady) })
	h.resultOnce.Do(func() {
		h.resultCh <- headResult{err: err}
	})
}

// handleMaster drives one master connection through the protocol:
// register -> (request-jobs)* -> cluster-result -> final.
func (h *Head) handleMaster(c *wire.Conn) error {
	defer c.Close()
	addr := c.RemoteAddr()
	reg, err := c.Recv()
	if err != nil {
		return fmt.Errorf("cluster: head: master %v register: %w", addr, err)
	}
	if reg.Kind != wire.KindRegisterMaster || reg.Site == "" {
		return fmt.Errorf("cluster: head: master %v: expected register-master, got %v", addr, reg.Kind)
	}
	site := reg.Site
	// oc incrementally decodes the site's streamed cluster result.
	oc := objectCollector{app: h.cfg.App, conn: c}
	defer oc.abort(fmt.Errorf("cluster: head: master %s connection closed mid-stream", site))
	h.mu.Lock()
	h.registered++
	n := h.registered
	h.mu.Unlock()
	if n > h.cfg.Clusters {
		return fmt.Errorf("cluster: head: unexpected extra master %q (%v)", site, addr)
	}
	h.cfg.Logf("head: master %s registered (%d cores)", site, reg.Cores)
	h.mu.Lock()
	h.conns[site] = c
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		if h.conns[site] == c {
			delete(h.conns, site)
		}
		h.mu.Unlock()
	}()
	if err := c.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
		return err
	}
	if h.cfg.HeartbeatInterval > 0 {
		window := h.cfg.HeartbeatInterval * time.Duration(h.cfg.HeartbeatMisses)
		c.SetIdleTimeout(window)
		c.SetWriteTimeout(window)
	}

	for {
		req, err := c.Recv()
		if err != nil {
			if wire.IsTimeout(err) {
				// Open connection, silent master: a stall. Recovery is
				// identical to a crashed master.
				h.faults.CountHeartbeatMiss()
				h.cfg.Logf("head: master %s (%v) stalled (no traffic for %v), declaring lost",
					site, addr, h.cfg.HeartbeatInterval*time.Duration(h.cfg.HeartbeatMisses))
				err = fmt.Errorf("cluster: head: master %s (%v) heartbeat timeout: %w", site, addr, err)
			}
			// A master dying mid-run: requeue its outstanding jobs so
			// surviving clusters pick them up, and stop expecting a
			// result from this site (fault-tolerance extension; the
			// paper defers this).
			h.clusterLost(site, err)
			return nil
		}
		switch req.Kind {
		case wire.KindHeartbeat:
			continue // liveness only; Recv re-armed the idle deadline

		case wire.KindObjectPart:
			// One bounded frame of the site's streamed cluster result;
			// the collector decodes it while later parts cross the WAN.
			if err := oc.feed(req); err != nil {
				h.clusterLost(site, fmt.Errorf("cluster: head: %s object stream: %w", site, err))
				return nil
			}
			continue

		case wire.KindRequestJobs:
			if len(req.Completed) > 0 {
				if err := h.pool.Complete(req.Completed); err != nil {
					return err
				}
			}
			if req.Resident != nil {
				// The cluster's reported cache residency steers stealing:
				// thieves are granted this site's cold chunks first. An
				// empty report runs SetResident's delete path so a
				// drained cache sheds its stale warm set.
				h.pool.SetResident(site, req.Resident)
			}
			h.observe(site, req.Progress)
			grants := h.pool.Acquire(site, req.Max)
			resp := &wire.Message{Kind: wire.KindJobs, Done: len(grants) == 0}
			for _, g := range grants {
				ch := g.Chunk
				f := h.cfg.Index.Files[ch.File]
				resp.Jobs = append(resp.Jobs, wire.JobAssign{
					Chunk: ch.ID, File: f.Name, Offset: ch.Offset, Length: ch.Length,
					Units: ch.Units, HomeSite: f.Site, Stolen: g.Stolen,
				})
			}
			if err := c.Send(resp); err != nil {
				return err
			}

		case wire.KindClusterResult:
			if len(req.Completed) > 0 {
				if err := h.pool.Complete(req.Completed); err != nil {
					return err
				}
			}
			h.observe(site, req.Progress)
			obj, err := takeObject(h.cfg.App, &oc, req)
			if err != nil {
				return fmt.Errorf("cluster: head: decode %s result: %w", site, err)
			}
			if h.recordResult(site, obj, req.Stats) {
				h.merge()
			}
			<-h.mergeReady
			h.mu.Lock()
			runErr, enc := h.runErr, h.finalEnc
			final, est := h.finalObj, h.finalEst
			h.mu.Unlock()
			if runErr != nil {
				c.Send(&wire.Message{Kind: wire.KindError, Err: runErr.Error()})
				h.fail(runErr)
				return nil
			}
			// The Final broadcast carries the merged reduction object
			// back across the (shaped) inter-cluster links; its cost
			// is part of the global reduction (Table II). The master's
			// ack marks actual delivery — a plain Send would complete
			// into the socket buffer long before the shaped link
			// finished carrying the object.
			if h.plan.streamed {
				// Stream the final object in bounded parts (each master
				// gets its own encode pass straight into part frames — the
				// whole encoded object is never allocated), then the
				// terminal Final with no Object.
				ow := wire.NewObjectWriter(c, 0)
				if err = final.Encode(ow); err == nil {
					err = ow.Close()
				}
				if err == nil {
					h.faults.AddObjectStream(ow.Frames(), ow.Bytes(), int64(est))
					err = c.Send(&wire.Message{Kind: wire.KindFinal, Done: true})
				}
			} else {
				err = c.Send(&wire.Message{Kind: wire.KindFinal, Object: enc, Done: true})
			}
			for err == nil {
				// Wait for the delivery ack, discarding any heartbeats
				// the master queued while the broadcast was in flight.
				var ack *wire.Message
				if ack, err = c.Recv(); err == nil && ack.Kind != wire.KindHeartbeat {
					break
				}
			}
			if err != nil {
				// The cluster's result is already merged; losing the
				// connection now only means it misses the broadcast.
				h.clusterLost(site, err)
				return nil
			}
			h.broadcastDone()
			return nil

		default:
			return fmt.Errorf("cluster: head: unexpected %v from %s", req.Kind, site)
		}
	}
}

// observe feeds a site's advisory progress gauge to the elastic controller
// and applies any scaling decisions: boots through the provisioner
// callback, drains as a KindScale push to the site's master. Pushes
// are best-effort — a master that dies before reading one takes the
// cluster-lost path anyway.
func (h *Head) observe(site string, gauge int) {
	ctrl := h.cfg.Elastic
	if ctrl == nil {
		return
	}
	h.mu.Lock()
	// The gauge is cumulative and advisory: take the max against what
	// the site already reported (messages can be reordered relative to
	// each other) and feed the controller the delta. Remaining work is
	// measured against the same gauges, not the pool's acked
	// completions — those are withheld until reduction objects land.
	prev := h.progress[site]
	if gauge < prev {
		gauge = prev
	}
	h.progress[site] = gauge
	delta := gauge - prev
	sum := 0
	for _, v := range h.progress {
		sum += v
	}
	remaining := h.totalJobs - sum
	elapsed := h.cfg.Clock.ToEmu(h.cfg.Clock.Now().Sub(h.started))
	h.mu.Unlock()
	h.apply(ctrl.Observe(site, delta, elapsed, remaining))
}

// apply executes a batch of elastic decisions: boots through the
// provisioner callback, drains as a KindScale push to the site's
// master.
func (h *Head) apply(decisions []elastic.Decision) {
	for _, d := range decisions {
		switch {
		case d.Delta > 0:
			h.cfg.Logf("head: elastic scale-up %s +%d -> %d (%s)", d.Site, d.Delta, d.Target, d.Reason)
			if h.cfg.ScaleUp != nil {
				h.cfg.ScaleUp(d.Site, d.Delta, d.OnDemand)
			}
		case d.Delta < 0:
			h.cfg.Logf("head: elastic scale-down %s %d -> %d (%s)", d.Site, d.Delta, d.Target, d.Reason)
			h.mu.Lock()
			c := h.conns[d.Site]
			h.mu.Unlock()
			if c != nil {
				_ = c.Send(&wire.Message{Kind: wire.KindScale, Site: d.Site, Target: d.Target})
			}
		}
	}
}

// NoteRevocation informs the elastic controller that n of site's spot
// workers were revoked (warned or not) and applies any replacement
// boots the controller issues. It is a no-op without a controller.
func (h *Head) NoteRevocation(site string, n int, warned bool) {
	ctrl := h.cfg.Elastic
	if ctrl == nil {
		return
	}
	h.mu.Lock()
	elapsed := h.cfg.Clock.ToEmu(h.cfg.Clock.Now().Sub(h.started))
	h.mu.Unlock()
	h.apply(ctrl.NoteRevocation(site, n, warned, elapsed))
}

// recordResult stores one cluster's result, returning true when every
// expected cluster has reported. Under a streamed plan the object is
// handed to the merger BEFORE the arrival is bookkept: the handler
// that completes the set calls merge(), and every earlier arrival's
// Add must already be in by then.
func (h *Head) recordResult(site string, obj gr.Reduction, stats wire.Stats) bool {
	h.mu.Lock()
	if _, dup := h.arrivals[site]; dup {
		h.mu.Unlock()
		return false
	}
	h.mu.Unlock()
	if h.plan.streamed {
		h.merger.Add(obj)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.arrivals[site]; dup {
		return false
	}
	now := h.cfg.Clock.Now()
	h.arrivals[site] = now
	if now.After(h.lastArrival) {
		h.lastArrival = now
	}
	h.stats[site] = stats
	if !h.plan.streamed {
		h.objects = append(h.objects, obj)
	}
	h.cfg.Logf("head: cluster %s finished (%d jobs)", site, stats.Breakdown.JobsProcessed)
	return len(h.arrivals) == h.expected
}

// clusterLost handles a master connection dying: if the cluster's
// result had not yet arrived, its outstanding jobs are requeued and
// the cluster is no longer expected (its result died with it). If it
// was the last expected cluster, the run fails.
func (h *Head) clusterLost(site string, cause error) {
	h.mu.Lock()
	if _, delivered := h.arrivals[site]; delivered {
		// The result is already safe; losing the connection while
		// broadcasting Final only means the master misses the final
		// object.
		h.mu.Unlock()
		h.broadcastDone()
		return
	}
	requeued := h.pool.RequeueSite(site)
	h.expected--
	remaining := h.expected
	ready := remaining > 0 && len(h.arrivals) == remaining
	h.cfg.Logf("head: cluster %s lost, %d jobs requeued, %d clusters remain (%v)",
		site, requeued, remaining, cause)
	h.mu.Unlock()
	if remaining <= 0 {
		h.fail(fmt.Errorf("cluster: head: all clusters lost: %w", cause))
		return
	}
	if ready {
		h.merge()
	}
	h.broadcastDone()
}

// merge runs the global reduction once all clusters have reported and
// releases the handlers to broadcast the final object. Under a
// streamed plan the merger absorbed each object at arrival, so Finish
// pays only the exposed tail; monolithic pays the whole fold here.
func (h *Head) merge() {
	h.mu.Lock()
	defer h.mu.Unlock()
	start := h.cfg.Clock.Now()
	var final gr.Reduction
	var mstats gr.MergerStats
	var err error
	for _, o := range h.objects {
		// Monolithic mode held the objects back; fold them now, after
		// the barrier. Streamed plans fed the merger at each arrival.
		if err = h.merger.Add(o); err != nil {
			break
		}
	}
	if err == nil {
		final, mstats, err = h.merger.Finish()
	}
	if err == nil {
		h.finalObj = final
		h.finalEst = final.Bytes()
		if !h.plan.streamed {
			h.finalEnc, err = gr.EncodeReduction(final)
		}
	}
	h.mergeEmu = h.cfg.Clock.ToEmu(h.cfg.Clock.Now().Sub(start))
	h.faults.AddMerge(mstats.Merges, h.cfg.Clock.ToEmu(mstats.Busy), h.mergeEmu, mstats.MaxParallel)
	if h.runErr == nil {
		h.runErr = err
	}
	h.mergeOnce.Do(func() { close(h.mergeReady) })
}

// broadcastDone is called as each handler finishes sending Final; the
// last one assembles and publishes the run report.
func (h *Head) broadcastDone() {
	h.mu.Lock()
	h.sendsDone++
	now := h.cfg.Clock.Now()
	if now.After(h.broadcastT) {
		h.broadcastT = now
	}
	done := h.sendsDone == h.cfg.Clusters
	h.mu.Unlock()
	if done {
		h.publish()
	}
}

// publish assembles the final run report.
func (h *Head) publish() {
	h.mu.Lock()
	defer h.mu.Unlock()

	report := &metrics.RunReport{
		App: h.cfg.App.Name(),
		// Global reduction = in-memory merge plus broadcasting the
		// final object back to every cluster.
		GlobalRed: h.mergeEmu + h.cfg.Clock.ToEmu(h.broadcastT.Sub(h.lastArrival)),
		TotalWall: h.cfg.Clock.ToEmu(h.broadcastT.Sub(h.started)),
	}
	for site, t := range h.arrivals {
		st := h.stats[site]
		report.Clusters = append(report.Clusters, metrics.ClusterReport{
			Site:      site,
			Workers:   st.Breakdown,
			IdleAtEnd: h.cfg.Clock.ToEmu(h.lastArrival.Sub(t)),
			Wall:      time.Duration(st.WallEmu),
		})
		report.Faults.Retries += st.Breakdown.Retries
		report.Faults.BackoffEmu += st.Breakdown.BackoffEmu
		report.Faults.HeartbeatMisses += st.Breakdown.HeartbeatMisses
		report.Retrieval.AddSnapshot(st.Breakdown)
	}
	// The head's own stall detections (masters that went silent) are not
	// inside any surviving cluster's stats.
	report.Faults.HeartbeatMisses += h.faults.Snapshot().HeartbeatMisses
	// Steal residency outcomes live in the head's pool, not in any
	// worker snapshot.
	report.Retrieval.StealsCold, report.Retrieval.StealsWarm = h.pool.StealStats()
	// Preemption machinery counters aggregate from the surviving
	// clusters' snapshots; the trace-side tallies (revocations, drain
	// outcomes) are filled in by the deployment harness, which owns the
	// revocation schedule.
	var pre metrics.PreemptionReport
	for _, st := range h.stats {
		pre.PreemptWarns += st.Breakdown.PreemptWarns
		pre.CheckpointsSent += st.Breakdown.Checkpoints
		pre.CheckpointsAdopted += st.Breakdown.CheckpointsAdopted
		pre.JobsRecovered += st.Breakdown.JobsRecovered
		pre.JobsAbandoned += st.Breakdown.JobsAbandoned
		pre.JobsRequeued += st.Breakdown.JobsRequeued
		pre.CheckpointSkips += st.Breakdown.CheckpointSkips
	}
	if pre.Any() {
		report.Preemption = &pre
	}
	// Sync accounting: fold the head's own stream/merge counters with
	// every surviving cluster's snapshot. Senders alone count streamed
	// bytes, so the sum is each object counted exactly once per hop.
	agg := h.faults.Snapshot()
	for _, st := range h.stats {
		agg = agg.Add(st.Breakdown)
	}
	sync := &metrics.SyncReport{
		Mode:            h.plan.name,
		Parts:           agg.ObjectParts,
		StreamedBytes:   agg.ObjectBytes,
		EstBytes:        agg.ObjectEstBytes,
		Merges:          agg.Merges,
		MergeBusyEmu:    agg.MergeBusyEmu,
		MergeTailEmu:    agg.MergeTailEmu,
		MaxParallel:     agg.MergeMaxPar,
		CheckpointSkips: agg.CheckpointSkips,
	}
	if saved := sync.MergeBusyEmu - sync.MergeTailEmu; saved > 0 {
		// Merge work that ran while transfers were still in flight —
		// the barrier would have paid all of Busy after the last arrival.
		sync.OverlapSavedEmu = saved
	}
	report.Sync = sync
	if s, ok := h.cfg.App.(gr.Summarizer); ok {
		if digest, err := s.Summarize(h.finalObj); err == nil {
			report.FinalResult = digest
		}
	}
	if h.cfg.Elastic != nil {
		// Egress under the cost model is every byte retrieved across
		// sites (stolen-chunk reads), summed over all workers.
		var egress int64
		for _, st := range h.stats {
			egress += st.Breakdown.BytesRemote
		}
		report.Elastic = h.cfg.Elastic.Report(report.TotalWall, egress)
	}
	err := h.runErr
	if err == nil && !h.pool.Done() {
		err = fmt.Errorf("cluster: head: run finished with %d jobs unaccounted", h.pool.Remaining())
	}
	final := h.finalObj
	h.resultOnce.Do(func() { h.resultCh <- headResult{report: report, final: final, err: err} })
}
