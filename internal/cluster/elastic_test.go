package cluster

import (
	"strings"
	"testing"
	"time"

	"cloudburst/internal/elastic"
	"cloudburst/internal/gr"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
	"cloudburst/internal/workload"
)

// Membership tests for the elastic extension: late joins, drains, and
// the conservation invariant — no chunk lost, none double-counted —
// checked by exact word counts against the sequential reference.

// rawWorker drives the slave side of the master protocol by hand, but
// does the reductions for real so final digests stay exact.
type rawWorker struct {
	t    *testing.T
	c    *wire.Conn
	eng  *gr.Engine
	st   store.Store
	red  gr.Reduction
	done []int32          // processed since the last report
	held []wire.JobAssign // granted, not yet processed
	all  map[int32]bool   // every chunk this worker ever processed
}

func newRawWorker(t *testing.T, addr string, cfg DeployConfig) *rawWorker {
	t.Helper()
	c := dialWire(t, addr)
	resp, err := c.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindAck {
		t.Fatalf("register answered %v", resp.Kind)
	}
	return &rawWorker{
		t: t, c: c,
		eng: gr.NewEngine(cfg.App, gr.EngineOptions{}),
		st:  cfg.Sites[0].HomeStore,
		red: cfg.App.NewReduction(),
		all: make(map[int32]bool),
	}
}

// grant reports processed work, asks for max more jobs, and returns
// the master's grant — absorbing any one-way drain pushes on the way.
func (w *rawWorker) grant(max int) *wire.Message {
	w.t.Helper()
	if err := w.c.Send(&wire.Message{Kind: wire.KindRequestJob, Max: max, Completed: w.done}); err != nil {
		w.t.Fatal(err)
	}
	w.done = nil
	for {
		resp, err := w.c.Recv()
		if err != nil {
			w.t.Fatal(err)
		}
		if resp.Kind == wire.KindDrain {
			continue
		}
		if resp.Kind != wire.KindJobGrant {
			w.t.Fatalf("request answered %v", resp.Kind)
		}
		w.held = append(w.held, resp.Jobs...)
		return resp
	}
}

// process reduces the first n held jobs for real.
func (w *rawWorker) process(n int) {
	w.t.Helper()
	for _, j := range w.held[:n] {
		data := make([]byte, j.Length)
		if _, err := w.st.ReadAt(j.File, data, j.Offset); err != nil {
			w.t.Fatal(err)
		}
		if _, err := w.eng.ProcessChunk(w.red, data); err != nil {
			w.t.Fatal(err)
		}
		w.done = append(w.done, j.Chunk)
		w.all[j.Chunk] = true
	}
	w.held = w.held[n:]
}

// finish ships the final reduction. With retire it hands every held
// (unprocessed) job back; otherwise holding jobs is a test bug.
func (w *rawWorker) finish(retire bool) {
	w.t.Helper()
	enc, err := gr.EncodeReduction(w.red)
	if err != nil {
		w.t.Fatal(err)
	}
	msg := &wire.Message{Kind: wire.KindSlaveResult, Object: enc, Completed: w.done}
	if retire {
		// Non-nil even when empty: that marks the result as a drain.
		msg.Returned = []int32{}
		for _, j := range w.held {
			msg.Returned = append(msg.Returned, j.Chunk)
		}
		w.held = nil
	} else if len(w.held) > 0 {
		w.t.Fatalf("finishing while holding %d jobs", len(w.held))
	}
	if err := w.c.Send(msg); err != nil {
		w.t.Fatal(err)
	}
	for {
		resp, err := w.c.Recv()
		if err != nil {
			w.t.Fatal(err)
		}
		if resp.Kind == wire.KindDrain {
			continue
		}
		if resp.Kind != wire.KindAck {
			w.t.Fatalf("result answered %v", resp.Kind)
		}
		return
	}
}

func startMaster(t *testing.T, cfg DeployConfig, headAddr string, slaves int) (*Master, string, chan error) {
	t.Helper()
	master, err := NewMaster(MasterConfig{
		Site: "local", App: cfg.App, Cores: slaves, Slaves: slaves,
		Batch: 8, Watermark: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln := mustListen(t)
	done := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, dialTCP, ln)
		done <- err
	}()
	return master, ln.Addr().String(), done
}

func TestJoinAdmitsLateSlave(t *testing.T) {
	// One expected slave grabs a grant and retires, returning half of
	// it unprocessed; a KindJoin late-comer must be admitted and must
	// finish everything, with the merged counts exact.
	cfg, gen := fixture(t, 2000, 2, 2, 1, 0)
	head, headAddr := startHead(t, cfg)
	_, masterAddr, masterDone := startMaster(t, cfg, headAddr, 1)

	w1 := newRawWorker(t, masterAddr, cfg)
	g := w1.grant(4)
	if len(g.Jobs) == 0 {
		t.Fatal("no jobs granted")
	}

	joined, err := NewSlave(SlaveConfig{
		Site: "local", App: cfg.App, Cores: 1, Join: true,
		HomeStore: cfg.Sites[0].HomeStore,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinDone := make(chan error, 1)
	go func() {
		_, err := joined.Run(masterAddr, dialTCP)
		joinDone <- err
	}()

	// Process half the grant, hand the rest back, retire.
	w1.process(len(w1.held) / 2)
	w1.finish(true)

	if err := <-masterDone; err != nil {
		t.Fatalf("master: %v", err)
	}
	if err := <-joinDone; err != nil {
		t.Fatalf("joined slave: %v", err)
	}
	// Raw workers ship no stats, so the exact count check (not the
	// stats-derived JobsProcessed) is the conservation proof here.
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 2000))
}

func TestDrainRacingStealConservation(t *testing.T) {
	// Two workers each hold a grant when a drain command lands. The
	// victim completes part of its grant and returns the rest; the
	// survivor must be re-granted exactly the returned chunks — none
	// lost, none twice — proven by exact final counts.
	cfg, gen := fixture(t, 2000, 2, 2, 2, 0)
	head, headAddr := startHead(t, cfg)
	master, masterAddr, masterDone := startMaster(t, cfg, headAddr, 2)

	w1 := newRawWorker(t, masterAddr, cfg)
	w2 := newRawWorker(t, masterAddr, cfg)
	if g := w1.grant(4); len(g.Jobs) == 0 {
		t.Fatal("w1 got no jobs")
	}
	if g := w2.grant(4); len(g.Jobs) == 0 {
		t.Fatal("w2 got no jobs")
	}

	if n := master.DrainSlaves(1); n != 1 {
		t.Fatalf("DrainSlaves = %d, want 1", n)
	}

	// Both process one job and report in; exactly one gets the drain
	// flag (whichever the master picked).
	w1.process(1)
	w2.process(1)
	r1, r2 := w1.grant(4), w2.grant(4)
	if r1.Drain == r2.Drain {
		t.Fatalf("drain flags: w1=%v w2=%v, want exactly one", r1.Drain, r2.Drain)
	}
	victim, survivor := w1, w2
	if r2.Drain {
		victim, survivor = w2, w1
	}

	// The victim retires mid-grant: completes one more job, returns
	// the rest unprocessed.
	victim.process(1)
	returned := make(map[int32]bool)
	for _, j := range victim.held {
		returned[j.Chunk] = true
	}
	if len(returned) == 0 {
		t.Fatal("victim had nothing left to return — grant too small")
	}
	victim.finish(true)

	// The survivor mops up everything, including the returned chunks.
	for {
		survivor.process(len(survivor.held))
		g := survivor.grant(8)
		if g.Done {
			break
		}
		if len(g.Jobs) == 0 && !g.Done {
			t.Fatal("empty non-done grant")
		}
	}
	survivor.finish(false)

	if err := <-masterDone; err != nil {
		t.Fatalf("master: %v", err)
	}
	_, final, err := head.Wait()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, final, wantCounts(gen, 2000))
	for id := range returned {
		if !survivor.all[id] {
			t.Fatalf("returned chunk %d never re-executed", id)
		}
		if victim.all[id] {
			t.Fatalf("returned chunk %d also processed by the victim", id)
		}
	}
}

func TestDrainReturnOverlapFailsRun(t *testing.T) {
	// Returning a chunk that was already completed would double-count
	// it; the master must fail the run loudly.
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	_, headAddr := startHead(t, cfg)
	_, masterAddr, masterDone := startMaster(t, cfg, headAddr, 1)

	w := newRawWorker(t, masterAddr, cfg)
	if g := w.grant(2); len(g.Jobs) == 0 {
		t.Fatal("no jobs granted")
	}
	w.process(1)
	dup := w.done[0]
	enc, err := gr.EncodeReduction(w.red)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.c.Send(&wire.Message{
		Kind: wire.KindSlaveResult, Object: enc,
		Completed: w.done, Returned: []int32{dup},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-masterDone:
		if err == nil || !strings.Contains(err.Error(), "returned chunk") {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master accepted an overlapping return")
	}
}

// elasticFixture builds a two-site deployment with paced compute on a
// scaled clock so the controller sees real emulated progress. Small
// refill batches keep master<->head traffic flowing for the whole
// run — that traffic is both the controller's progress feed and the
// channel scale commands are absorbed on.
func elasticFixture(t *testing.T, coresCloud int) (DeployConfig, int64) {
	t.Helper()
	const records = 6000
	cfg, _ := fixture(t, records, 4, 2, 1, coresCloud)
	setAppCost(t, &cfg, "3ms")
	cfg.Clock = netsim.Scaled(0.005)
	cfg.Batch = 2
	cfg.Watermark = 1
	cfg.JobsPerRequest = 1
	return cfg, records
}

func TestElasticScaleUpEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Two paced workers face ~12s of emulated work against a 4s
	// deadline: the controller must boot extra cloud workers, the
	// provisioner must join them mid-run, and the counts stay exact.
	cfg, records := elasticFixture(t, 1)
	cfg.Elastic = &elastic.Config{
		Site: "cloud", Deadline: 4 * time.Second,
		MinWorkers: 1, MaxWorkers: 6, StepUp: 2,
		BootLatency: 500 * time.Millisecond, Interval: 500 * time.Millisecond,
		InstanceRate: 0.17, EgressRate: 0.12,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Words{Width: 12, Vocab: 64, Seed: 31}
	checkCounts(t, res.Final, wantCounts(gen, records))
	el := res.Report.Elastic
	if el == nil {
		t.Fatal("no elastic report")
	}
	if el.Boots == 0 || el.Peak <= 1 {
		t.Fatalf("no scale-up happened: boots=%d peak=%d events=%v", el.Boots, el.Peak, el.Events)
	}
	if el.InstanceSecs <= 0 || el.TotalUSD <= 0 {
		t.Fatalf("billing not accrued: %+v", el)
	}
}

func TestElasticScaleDownDrainsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Four cloud workers against a very loose deadline: the controller
	// must drain the surplus mid-run, and drained workers' returned
	// chunks must all be re-executed (exact counts).
	cfg, records := elasticFixture(t, 4)
	cfg.Elastic = &elastic.Config{
		Site: "cloud", Deadline: 300 * time.Second,
		MinWorkers: 1, MaxWorkers: 4,
		BootLatency: 500 * time.Millisecond, Interval: 500 * time.Millisecond,
		InstanceRate: 0.17, EgressRate: 0.12,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Words{Width: 12, Vocab: 64, Seed: 31}
	checkCounts(t, res.Final, wantCounts(gen, records))
	el := res.Report.Elastic
	if el == nil {
		t.Fatal("no elastic report")
	}
	if el.Drains == 0 {
		t.Fatalf("no scale-down happened: %+v", el)
	}
	if first := el.Events[0].AtEmu; first >= res.Report.TotalWall {
		t.Fatalf("scale-down at %v only fired at run end %v", first, res.Report.TotalWall)
	}
	if !el.MetDeadline {
		t.Fatalf("loose deadline missed: wall=%v report=%+v", res.Report.TotalWall, el)
	}
}
