package cluster

import (
	"net"
	"strings"
	"testing"
	"time"

	"cloudburst/internal/gr"
	"cloudburst/internal/wire"
)

// Protocol-level negative tests: drive raw wire messages against head
// and master and check that malformed or out-of-order traffic is
// rejected without wedging the run.

func dialWire(t *testing.T, addr string) *wire.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(raw)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestHeadRejectsNonRegisterFirst(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	head, addr := startHead(t, cfg)

	c := dialWire(t, addr)
	if err := c.Send(&wire.Message{Kind: wire.KindRequestJobs, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	// The head drops the connection and the run fails (its only
	// expected cluster is gone).
	if _, err := c.Recv(); err == nil {
		t.Fatal("head answered an unregistered master")
	}
	if _, _, err := head.Wait(); err == nil {
		t.Fatal("run should fail after protocol violation")
	}
}

func TestHeadRejectsEmptySiteName(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	head, addr := startHead(t, cfg)
	c := dialWire(t, addr)
	if err := c.Send(&wire.Message{Kind: wire.KindRegisterMaster, Site: ""}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("head accepted an empty site name")
	}
	if _, _, err := head.Wait(); err == nil {
		t.Fatal("run should fail")
	}
}

func TestHeadRejectsExtraMaster(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0) // single site expected
	head, addr := startHead(t, cfg)

	first := dialWire(t, addr)
	if _, err := first.Call(&wire.Message{Kind: wire.KindRegisterMaster, Site: "local", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	extra := dialWire(t, addr)
	if err := extra.Send(&wire.Message{Kind: wire.KindRegisterMaster, Site: "mars", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := extra.Recv(); err == nil {
		t.Fatal("head accepted a master beyond the configured cluster count")
	}
	_, _, err := head.Wait()
	if err == nil || !strings.Contains(err.Error(), "extra master") {
		t.Fatalf("err = %v", err)
	}
}

func TestHeadRejectsUnexpectedKindMidRun(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	head, addr := startHead(t, cfg)
	c := dialWire(t, addr)
	if _, err := c.Call(&wire.Message{Kind: wire.KindRegisterMaster, Site: "local", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&wire.Message{Kind: wire.KindReadAt, File: "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := head.Wait(); err == nil {
		t.Fatal("head tolerated a store message on the cluster protocol")
	}
}

func TestHeadRejectsBogusCompletion(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	head, addr := startHead(t, cfg)
	c := dialWire(t, addr)
	if _, err := c.Call(&wire.Message{Kind: wire.KindRegisterMaster, Site: "local", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	// Completing a job that was never assigned is a protocol bug.
	if err := c.Send(&wire.Message{Kind: wire.KindRequestJobs, Site: "local", Max: 1, Completed: []int32{7}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := head.Wait(); err == nil {
		t.Fatal("head accepted completion of an unassigned job")
	}
}

func TestMasterRejectsNonRegisterSlave(t *testing.T) {
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	_, headAddr := startHead(t, cfg)
	master, err := NewMaster(MasterConfig{Site: "local", App: cfg.App, Cores: 1, Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln := mustListen(t)
	done := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, dialTCP, ln)
		done <- err
	}()

	c := dialWire(t, ln.Addr().String())
	if err := c.Send(&wire.Message{Kind: wire.KindRequestJob}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("master tolerated an unregistered slave")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master did not fail")
	}
}

func TestMasterDetectsShortCompletion(t *testing.T) {
	// A slave shipping its result while jobs it was granted remain
	// unreported indicates lost work; the master must reject it.
	cfg, _ := fixture(t, 1000, 2, 2, 1, 0)
	_, headAddr := startHead(t, cfg)
	master, err := NewMaster(MasterConfig{Site: "local", App: cfg.App, Cores: 1, Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln := mustListen(t)
	done := make(chan error, 1)
	go func() {
		_, err := master.Run(headAddr, dialTCP, ln)
		done <- err
	}()

	c := dialWire(t, ln.Addr().String())
	if _, err := c.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: "local"}); err != nil {
		t.Fatal(err)
	}
	grant, err := c.Call(&wire.Message{Kind: wire.KindRequestJob, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Jobs) == 0 {
		t.Fatal("no jobs granted")
	}
	// Ship a result without reporting the granted jobs complete.
	enc, err := gr.EncodeReduction(cfg.App.NewReduction())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&wire.Message{Kind: wire.KindSlaveResult, Object: enc}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "completed") {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master did not detect lost completions")
	}
}
