package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
)

// BufferStore is the site-shared burst buffer a slave consults before
// the object store itself: a hit-aware whole-chunk reader. Both
// *store.SiteBuffer (in-process deployments) and *store.Client
// (talking to a cbstore -mode buffer daemon) satisfy it.
type BufferStore interface {
	ReadAtHit(name string, p []byte, off int64) (int, bool, error)
}

// SlaveConfig configures one slave node.
type SlaveConfig struct {
	// Site is the cluster this slave belongs to.
	Site string
	// App is the application to run.
	App gr.App
	// Cores is the number of virtual cores (worker goroutines).
	Cores int
	// HomeStore reads data stored at this slave's own site
	// (sequential, fast path).
	HomeStore store.Store
	// RemoteStores maps other sites to the (shaped) stores used when
	// processing stolen jobs.
	RemoteStores map[string]store.Store
	// Fetch tunes the multi-threaded remote retrieval.
	Fetch store.FetchOptions
	// FetchAutotune replaces the static Fetch.Threads with a per-link
	// AIMD controller: one store.Autotuner per remote site (plus one
	// for the home object store when HomeFetch is set), shared by every
	// core, grows the reader count while added threads pay and backs
	// off when the link's aggregate cap binds. Fetch.Threads seeds each
	// controller. The sequential local-disk path is never tuned.
	FetchAutotune bool
	// GroupUnits is the cache-sized unit group for local reduction.
	GroupUnits int
	// JobsPerRequest is how many jobs a worker asks the master for at
	// once (default 1, the paper's on-demand model).
	JobsPerRequest int
	// HomeFetch uses multi-threaded ranged retrieval even for home
	// data. The cloud cluster sets this: its "local" data lives in the
	// object store, which rewards concurrent range requests just like
	// stolen data does.
	HomeFetch bool
	// Prefetch overlaps retrieval with compute: while a core reduces
	// its current grant, a background goroutine requests the next
	// grant and fetches its chunk data (double buffering).
	Prefetch bool
	// PrefetchBudget caps the slave-wide bytes of prefetched chunk
	// data held ahead of compute (all cores together), so the pipeline
	// cannot silently inflate memory or egress. Zero picks 64 MiB;
	// negative means unlimited.
	PrefetchBudget int64
	// Cache serves repeated chunk retrievals from memory. Nil gets a
	// zero-capacity cache that never caches but still recycles fetch
	// buffers into Pool.
	Cache *store.ChunkCache
	// Buffer, when non-nil, is the site's shared burst buffer: home
	// object-store reads (HomeFetch) consult it before the store, so a
	// chunk is fetched from the backing store once per site instead of
	// once per slave. The first buffer read failure degrades this slave
	// to direct fetches for the rest of the run (the buffer may be
	// down); correctness is unaffected, only the sharing win is lost.
	Buffer BufferStore
	// Pool recycles chunk buffers between fetches; nil gets a fresh
	// pool private to this slave.
	Pool *store.BufferPool
	// UnitCostScale multiplies the app's per-unit compute cost for
	// this slave's cores (cloud instances slower than local Xeons).
	// Zero means 1.
	UnitCostScale float64
	// CostJitter models EC2-style performance variability: each core's
	// effective unit cost is further scaled by a deterministic factor
	// in [1-CostJitter, 1+CostJitter]. The paper observes that the
	// pooling-based load balancer normalizes exactly this.
	CostJitter float64
	// Join registers this slave's workers with KindJoin instead of
	// KindRegisterSlave: the master admits them mid-run (elastic
	// scale-up) rather than counting them against the deploy-time
	// membership.
	Join bool
	// CheckpointJobs, when positive, ships a sequence-numbered partial-
	// reduction checkpoint (KindCheckpoint) to the master every N
	// processed jobs. If the slave is later revoked without warning, the
	// master adopts the newest checkpoint and re-executes only the work
	// since it, instead of the slave's whole grant history. Zero
	// disables checkpointing.
	CheckpointJobs int
	// SyncMode selects how results and checkpoints ship upstream: the
	// streamed modes encode straight into bounded KindObjectPart frames
	// (no whole-object allocation on the wire path), "monolithic" keeps
	// the single-frame baseline. Empty picks streamed-parallel.
	SyncMode string
	// HeartbeatInterval, when positive, makes each worker heartbeat its
	// master connection so long retrievals are not mistaken for stalls.
	HeartbeatInterval time.Duration
	// Clock paces compute and converts wall to emulated time.
	Clock netsim.Clock
	// Logf receives progress logging; nil silences it.
	Logf func(format string, args ...any)
}

func (c SlaveConfig) withDefaults() SlaveConfig {
	if c.Cores < 1 {
		c.Cores = 1
	}
	if c.JobsPerRequest < 1 {
		c.JobsPerRequest = 1
	}
	if c.Fetch.Threads == 0 && c.Fetch.RangeSize == 0 {
		c.Fetch = store.DefaultFetchOptions()
	}
	if c.Pool == nil {
		c.Pool = store.NewBufferPool()
	}
	if c.Cache == nil {
		c.Cache = store.NewChunkCache(0, c.Pool)
	}
	if c.Prefetch && c.PrefetchBudget == 0 {
		c.PrefetchBudget = 64 << 20
	}
	if c.Clock == nil {
		c.Clock = netsim.Instant()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Slave runs Cores worker goroutines, each with its own connection to
// the master and its own private reduction object. Workers request
// jobs on demand (so faster cores naturally process more jobs — the
// paper's pooling-based load balancing), retrieve the chunk data
// (sequential local reads; multi-threaded ranged fetches for stolen
// jobs), and run local reduction in cache-sized unit groups. When the
// pool drains, the workers' objects are merged and shipped to the
// master as this slave's result.
//
// With Prefetch on, each worker double-buffers: a background goroutine
// requests the next grant and retrieves its chunks while the current
// grant reduces, so remote-read latency hides behind compute instead
// of landing on the critical path.
type Slave struct {
	cfg    SlaveConfig
	plan   syncPlan    // resolved SyncMode (streamed vs monolithic shipping)
	budget *byteBudget // caps in-flight prefetched bytes; nil = unlimited

	// tuners holds one AIMD controller per retrieval link (keyed by the
	// chunk's home site), shared by every core so each controller sees
	// the aggregate concurrency its decisions cause.
	tunersMu sync.Mutex
	tuners   map[string]*store.Autotuner

	// chunkIDs remembers each seen chunk's global id by cache key, so
	// cache residency (keyed by ChunkKey) can be reported upstream as
	// the chunk ids the head's steal heuristic speaks.
	idsMu    sync.Mutex
	chunkIDs map[store.ChunkKey]int32

	// Hint-quality feedback: hintWarm holds chunks warmed on a master
	// hint that no worker of this slave has (yet) been granted; whatever
	// remains at end of run was warm bytes the hint stream wasted.
	wasteMu     sync.Mutex
	hintWarm    map[int32]int64
	hintGranted map[int32]bool

	// Spot-preemption state. A warning arms warned + warnWallNS (the
	// wall-clock instant of the hard kill); every worker notices at its
	// next grant boundary and runs an accelerated, deadline-bounded
	// drain. A kill arms revoked and severs every live master
	// connection, which routes recovery through the master's slave-lost
	// re-execution (softened by any checkpoint it holds).
	connsMu    sync.Mutex
	liveConns  map[*wire.Conn]bool
	revoked    atomic.Bool
	warned     atomic.Bool
	warnWallNS atomic.Int64
	flushes    atomic.Int32 // workers whose preempt drain flushed in time

	// bufferDown latches after the first failed buffer read; every
	// later home fetch goes straight to the object store instead of
	// re-probing a dead buffer once per chunk.
	bufferDown atomic.Bool
}

// ErrRevoked marks a slave whose workers died because the harness
// revoked the instance (spot preemption). Deployments treat it as an
// expected membership event — recovery runs through the master — not a
// run failure.
var ErrRevoked = errors.New("cluster: slave revoked")

// NewSlave builds a slave node.
func NewSlave(cfg SlaveConfig) (*Slave, error) {
	cfg = cfg.withDefaults()
	if cfg.Site == "" || cfg.App == nil {
		return nil, fmt.Errorf("cluster: slave needs a site and an app")
	}
	if cfg.HomeStore == nil {
		return nil, fmt.Errorf("cluster: slave needs a home store")
	}
	plan, err := resolveSyncMode(cfg.SyncMode)
	if err != nil {
		return nil, err
	}
	s := &Slave{
		cfg:         cfg,
		plan:        plan,
		tuners:      make(map[string]*store.Autotuner),
		chunkIDs:    make(map[store.ChunkKey]int32),
		hintWarm:    make(map[int32]int64),
		hintGranted: make(map[int32]bool),
		liveConns:   make(map[*wire.Conn]bool),
	}
	if cfg.Prefetch && cfg.PrefetchBudget > 0 {
		s.budget = &byteBudget{avail: cfg.PrefetchBudget}
	}
	return s, nil
}

// tunerFor returns the shared AIMD controller for the link to site,
// creating it on first use seeded from the configured thread count.
func (s *Slave) tunerFor(site string) *store.Autotuner {
	s.tunersMu.Lock()
	defer s.tunersMu.Unlock()
	t, ok := s.tuners[site]
	if !ok {
		t = store.NewAutotuner(s.cfg.Fetch.Threads, 0)
		s.tuners[site] = t
	}
	return t
}

// partSize sizes streamed-object upload parts from the best measured
// per-stream goodput across this slave's tuned links: a slave behind a
// starved WAN link ships the reduction in smaller parts (sub-second
// progress granularity), a well-fed one in larger parts (less framing
// overhead). Untrained or absent tuners yield wire.DefaultPartSize, so
// the adaptive path degrades to the previous fixed sizing.
func (s *Slave) partSize() int {
	var best float64
	s.tunersMu.Lock()
	for _, t := range s.tuners {
		if g := t.Goodput(); g > best {
			best = g
		}
	}
	s.tunersMu.Unlock()
	return wire.AdaptivePartSize(best)
}

// noteChunk remembers a job's cache-key -> chunk-id mapping for
// residency reporting.
func (s *Slave) noteChunk(job wire.JobAssign) {
	key := store.ChunkKey{Site: job.HomeSite, File: job.File, Off: job.Offset, Len: job.Length}
	s.idsMu.Lock()
	s.chunkIDs[key] = job.Chunk
	s.idsMu.Unlock()
}

// residentIDs translates the cache's currently resident keys into
// chunk ids. Keys from before this slave saw their job (e.g. warmed by
// a driver across iterations) are skipped; they will be reported once
// a job or hint names them.
func (s *Slave) residentIDs() []int32 {
	keys := s.cfg.Cache.ResidentKeys()
	if len(keys) == 0 {
		return nil
	}
	s.idsMu.Lock()
	defer s.idsMu.Unlock()
	out := make([]int32, 0, len(keys))
	for _, k := range keys {
		if id, ok := s.chunkIDs[k]; ok {
			out = append(out, id)
		}
	}
	return out
}

// noteHintWarm records a hint chunk warmed into the cache; it stays on
// the waste ledger until some worker of this slave is granted it.
func (s *Slave) noteHintWarm(id int32, bytes int64) {
	s.wasteMu.Lock()
	if !s.hintGranted[id] {
		s.hintWarm[id] = bytes
	}
	s.wasteMu.Unlock()
}

// markGranted clears a chunk from the waste ledger: it was granted to
// one of this slave's workers, so warming it paid off.
func (s *Slave) markGranted(id int32) {
	s.wasteMu.Lock()
	s.hintGranted[id] = true
	delete(s.hintWarm, id)
	s.wasteMu.Unlock()
}

// HintWaste reports the hinted chunks this slave warmed that were
// never granted to any of its workers — the measurement half of hint
// quality. (Shared caches mean a chunk warmed here and granted to a
// co-located slave still counts as this slave's waste; the
// approximation overstates waste slightly rather than hiding it.)
func (s *Slave) HintWaste() (chunks int, bytes int64) {
	s.wasteMu.Lock()
	defer s.wasteMu.Unlock()
	for _, n := range s.hintWarm {
		chunks++
		bytes += n
	}
	return chunks, bytes
}

// trackConn registers a worker's live master connection so Kill can
// sever it; untrackConn removes it when the worker retires.
func (s *Slave) trackConn(c *wire.Conn) {
	s.connsMu.Lock()
	s.liveConns[c] = true
	s.connsMu.Unlock()
}

func (s *Slave) untrackConn(c *wire.Conn) {
	s.connsMu.Lock()
	delete(s.liveConns, c)
	s.connsMu.Unlock()
}

// PreemptWarn delivers a spot revocation warning: the slave has the
// given emulated window before the hard kill. Every worker notices at
// its next grant boundary and runs an accelerated drain — finishing
// in-flight jobs only while the remaining window fits them, returning
// the rest, and flushing its partial reduction to the master.
func (s *Slave) PreemptWarn(warning time.Duration) {
	deadline := s.cfg.Clock.Now().Add(s.cfg.Clock.ToWall(warning))
	s.warnWallNS.Store(deadline.UnixNano())
	s.warned.Store(true)
	s.cfg.Logf("slave %s: revocation warning, %v window", s.cfg.Site, warning)
}

// Kill revokes the instance: every live master connection is severed,
// so the master declares the workers lost and re-executes their
// outstanding work (minus whatever a checkpoint saved). Workers that
// already flushed a drain result are unaffected.
func (s *Slave) Kill() {
	s.revoked.Store(true)
	s.connsMu.Lock()
	conns := make([]*wire.Conn, 0, len(s.liveConns))
	for c := range s.liveConns {
		conns = append(conns, c)
	}
	s.connsMu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	s.cfg.Logf("slave %s: revoked (%d live connections severed)", s.cfg.Site, len(conns))
}

// Revoked reports whether Kill has fired.
func (s *Slave) Revoked() bool { return s.revoked.Load() }

// DrainFlushed reports whether every worker completed its accelerated
// preemption drain — flushed its partial reduction and returned its
// unprocessed work — before the kill landed.
func (s *Slave) DrainFlushed() bool {
	return int(s.flushes.Load()) >= s.cfg.Cores
}

// preemptDeadline returns the wall-clock kill instant, or zero time if
// no warning is armed.
func (s *Slave) preemptDeadline() time.Time {
	ns := s.warnWallNS.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Run connects every virtual core to the master, processes jobs until
// the pool drains, and ships each core's reduction object; the master
// performs the intra-cluster combine. It returns the slave's
// aggregated metrics.
func (s *Slave) Run(masterAddr string, dial store.Dialer) (*metrics.Breakdown, error) {
	type workerOut struct {
		stats metrics.Snapshot
		err   error
	}
	outs := make([]workerOut, s.cfg.Cores)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats, err := s.worker(masterAddr, dial, w)
			outs[w] = workerOut{stats, err}
		}(w)
	}
	wg.Wait()

	total := &metrics.Breakdown{}
	for _, o := range outs {
		if o.err != nil {
			if s.revoked.Load() {
				// Worker deaths caused by the revocation are the expected
				// shape of a spot kill, not a run failure: the master's
				// slave-lost path re-executes everything outstanding.
				return nil, fmt.Errorf("%w: %v", ErrRevoked, o.err)
			}
			return nil, o.err
		}
		total.AddSnapshot(o.stats)
	}
	return total, nil
}

// byteBudget caps the slave's total in-flight prefetched bytes across
// all cores. A nil budget admits everything.
type byteBudget struct {
	mu    sync.Mutex
	avail int64
}

// tryAcquire claims n bytes without blocking; a denial means the
// caller should skip prefetching and fetch on demand instead.
func (b *byteBudget) tryAcquire(n int64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.avail {
		return false
	}
	b.avail -= n
	return true
}

func (b *byteBudget) release(n int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.avail += n
	b.mu.Unlock()
}

// jobItem is one granted job plus, when prefetched, its chunk bytes.
type jobItem struct {
	job     wire.JobAssign
	data    []byte // non-nil once a prefetch delivered the chunk
	release func() // hands the bytes back (cache reference / pool)
	budget  int64  // bytes still held against the prefetch budget

	fetchEmu   time.Duration // background retrieval time (emulated)
	exposedEmu time.Duration // part of fetchEmu the foreground waited out
	savedEmu   time.Duration // part of fetchEmu hidden behind compute
}

// grantResult is one master response, possibly produced ahead of time
// by the prefetch goroutine.
type grantResult struct {
	resp  *wire.Message
	items []*jobItem
	err   error
}

func makeItems(jobs []wire.JobAssign) []*jobItem {
	items := make([]*jobItem, len(jobs))
	for i, job := range jobs {
		items[i] = &jobItem{job: job}
	}
	return items
}

// jitterFactor derives worker w's deterministic speed factor in
// [1-j, 1+j] from its index.
func jitterFactor(w int, j float64) float64 {
	if j <= 0 {
		return 1
	}
	x := uint64(w)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	frac := float64(x>>40) / float64(1<<24)
	return 1 + j*(2*frac-1)
}

// worker is one virtual core: its own master connection, engine, and
// private reduction object, shipped to the master when the pool dries.
func (s *Slave) worker(masterAddr string, dial store.Dialer, idx int) (metrics.Snapshot, error) {
	var zero metrics.Snapshot
	raw, err := dial("tcp", masterAddr)
	if err != nil {
		return zero, fmt.Errorf("cluster: slave %s: dial master: %w", s.cfg.Site, err)
	}
	conn := wire.NewConn(raw)
	conn.SetBufferPool(s.cfg.Pool)
	defer conn.Close()
	s.trackConn(conn)
	defer s.untrackConn(conn)

	// drainReq latches the master's retire command. It may arrive as an
	// asynchronous KindDrain push (absorbed below, possibly on the
	// prefetch goroutine) or as a drain-flagged grant; either way the
	// worker retires at the top of its next loop iteration.
	var drainReq atomic.Bool
	call := func(m *wire.Message) (*wire.Message, error) {
		if err := conn.Send(m); err != nil {
			return nil, err
		}
		for {
			resp, err := conn.Recv()
			if err != nil {
				return nil, err
			}
			switch resp.Kind {
			case wire.KindDrain:
				drainReq.Store(true)
				continue
			case wire.KindError:
				return nil, &wire.RemoteError{Msg: resp.Err}
			}
			return resp, nil
		}
	}

	regKind := wire.KindRegisterSlave
	if s.cfg.Join {
		regKind = wire.KindJoin
	}
	if _, err := call(&wire.Message{Kind: regKind, Site: s.cfg.Site}); err != nil {
		return zero, err
	}
	if s.cfg.HeartbeatInterval > 0 {
		stop := wire.HeartbeatsWith(conn, s.cfg.HeartbeatInterval, s.cfg.Logf)
		defer stop()
	}

	scale := s.cfg.UnitCostScale
	if scale <= 0 {
		scale = 1
	}
	scale *= jitterFactor(idx, s.cfg.CostJitter)
	stats := &metrics.Breakdown{}
	engine := gr.NewEngine(s.cfg.App, gr.EngineOptions{
		GroupUnits:    s.cfg.GroupUnits,
		Clock:         s.cfg.Clock,
		Stats:         stats,
		UnitCostScale: scale,
	})
	red := s.cfg.App.NewReduction()
	var pending []int32 // completions not yet reported

	// Checkpoint state: covered is every job this worker has reduced
	// into red, cumulatively — the job-set tag that lets the master
	// merge an adopted checkpoint idempotently against re-execution.
	// jobWallEMA tracks the wall cost of one job so a preemption drain
	// can judge what still fits in the warning window.
	var covered []int32
	ckptSeq, sinceCkpt := 0, 0
	var jobWallEMA time.Duration
	noteJobWall := func(d time.Duration) {
		if jobWallEMA == 0 {
			jobWallEMA = d
		} else {
			jobWallEMA = (jobWallEMA + d) / 2
		}
	}
	// checkpoint ships the current partial reduction as a one-way,
	// sequence-numbered push. Failure is harmless — the master just
	// keeps the previous checkpoint — so errors are swallowed; a dead
	// connection surfaces at the next request anyway.
	//
	// Cadence guard: the encoded object is hashed, and a checkpoint
	// byte-identical to the previous one is skipped — the master's copy
	// is already current, so re-shipping it buys nothing. (The skipped
	// push's extra covered chunks are safe to omit: re-executing a chunk
	// that contributed nothing reproduces the same reduction.)
	var lastCkptHash uint64
	var lastCkptLen int
	checkpoint := func() {
		enc, release, err := gr.EncodeReductionTo(red, s.cfg.Pool)
		if err != nil {
			return
		}
		defer release()
		h := hashBytes(enc)
		if ckptSeq > 0 && len(enc) == lastCkptLen && h == lastCkptHash {
			stats.CountCheckpointSkip()
			return
		}
		lastCkptHash, lastCkptLen = h, len(enc)
		stats.CountCheckpoint()
		ckptSeq++
		msg := &wire.Message{
			Kind: wire.KindCheckpoint, Seq: ckptSeq,
			Completed: append([]int32(nil), covered...),
		}
		if s.plan.streamed {
			ow := wire.NewObjectWriter(conn, s.partSize())
			if _, err := ow.Write(enc); err != nil {
				return
			}
			if err := ow.Close(); err != nil {
				return
			}
			stats.AddObjectStream(ow.Frames(), ow.Bytes(), int64(red.Bytes()))
		} else {
			msg.Object = enc
		}
		msg.Stats = wire.Stats{Breakdown: stats.Snapshot()}
		_ = conn.Send(msg)
	}

	// shipResult encodes and ships this worker's reduction as its
	// KindSlaveResult (a non-nil Returned marks a drain flush). Under a
	// streamed plan the object encodes straight into bounded part
	// frames — the full encoded object is never materialized — and the
	// terminal message carries no Object. Returns the snapshot shipped.
	shipResult := func(returned []int32) (metrics.Snapshot, error) {
		msg := &wire.Message{Kind: wire.KindSlaveResult, Completed: pending, Returned: returned}
		if s.plan.streamed {
			ow := wire.NewObjectWriter(conn, s.partSize())
			if err := red.Encode(ow); err != nil {
				return zero, err
			}
			if err := ow.Close(); err != nil {
				return zero, err
			}
			stats.AddObjectStream(ow.Frames(), ow.Bytes(), int64(red.Bytes()))
		} else {
			enc, err := gr.EncodeReduction(red)
			if err != nil {
				return zero, err
			}
			msg.Object = enc
		}
		snap := stats.Snapshot()
		msg.Stats = wire.Stats{Breakdown: snap}
		if _, err := call(msg); err != nil {
			return zero, err
		}
		return snap, nil
	}

	request := func(completed []int32) (*wire.Message, error) {
		// A nil Resident means "no report" (cache disabled); with the
		// cache enabled the report is always non-nil — even empty — so a
		// drained cache clears the master's stale warm set.
		var resident []int32
		if s.cfg.Cache.Enabled() {
			if resident = s.residentIDs(); resident == nil {
				resident = []int32{}
			}
		}
		// Piggyback the hint-waste ledger so the master can trim this
		// slave's effective hint depth when its warm bytes stop paying.
		wasteChunks, wasteBytes := s.HintWaste()
		return call(&wire.Message{
			Kind: wire.KindRequestJob, Max: s.cfg.JobsPerRequest,
			Completed: completed, Resident: resident,
			HintWasteChunks: wasteChunks, HintWasteBytes: wasteBytes,
		})
	}

	// Hint warming runs beside compute: chunks the master expects to
	// grant soon are fetched into the shared cache, each admission
	// charged against the prefetch byte budget while its fetch is in
	// flight (once cached, the cache's own cap bounds retention). A
	// denied or failed hint degrades silently to an on-demand fetch.
	var warmWG sync.WaitGroup
	defer warmWG.Wait() // warming writes stats; finish before snapshot
	warmHints := func(hints []wire.JobAssign) {
		defer warmWG.Done()
		for _, job := range hints {
			s.noteChunk(job)
			key := store.ChunkKey{Site: job.HomeSite, File: job.File, Off: job.Offset, Len: job.Length}
			if !s.budget.tryAcquire(job.Length) {
				stats.CountHint(false)
				continue
			}
			job := job
			_, release, _, err := s.cfg.Cache.GetOrFetch(key, func() ([]byte, error) {
				return s.rawFetch(job, stats)
			})
			s.budget.release(job.Length)
			if err != nil {
				stats.CountHint(false)
				continue
			}
			release()
			stats.CountHint(true)
			s.noteHintWarm(job.Chunk, job.Length)
		}
	}

	// At most one grant is in flight on the prefetch goroutine; the
	// foreground never touches the connection while one is out, which
	// is the strict alternation that keeps the single master
	// connection request/response clean.
	nextCh := make(chan *grantResult, 1)
	inflight := false
	var cur *grantResult

	releaseItems := func(items []*jobItem) {
		for _, it := range items {
			if it.budget > 0 {
				s.budget.release(it.budget)
				it.budget = 0
			}
			if it.release != nil {
				it.release()
				it.release, it.data = nil, nil
			}
		}
	}
	defer func() {
		// Error exits: wait out any in-flight prefetch and hand every
		// unprocessed chunk's buffer (and budget bytes) back.
		if inflight {
			releaseItems((<-nextCh).items)
		}
		if cur != nil {
			releaseItems(cur.items)
		}
	}()

	// prefetchGrant requests the next grant and retrieves its chunks
	// ahead of compute, within the slave's byte budget. Denied items
	// stay data-less and are fetched on demand at processing time.
	prefetchGrant := func(completed []int32) {
		g := &grantResult{}
		g.resp, g.err = request(completed)
		if g.err != nil {
			g.err = fmt.Errorf("cluster: slave %s: request job: %w", s.cfg.Site, g.err)
		} else if g.resp.Kind == wire.KindJobGrant {
			g.items = makeItems(g.resp.Jobs)
			for _, it := range g.items {
				if !s.budget.tryAcquire(it.job.Length) {
					stats.CountPrefetchSkip()
					continue
				}
				f0 := s.cfg.Clock.Now()
				data, release, err := s.fetchJob(it.job, stats)
				if err != nil {
					s.budget.release(it.job.Length)
					g.err = fmt.Errorf("cluster: slave %s: prefetch job %d: %w",
						s.cfg.Site, it.job.Chunk, err)
					break
				}
				it.data, it.release = data, release
				it.budget = it.job.Length
				it.fetchEmu = s.cfg.Clock.ToEmu(s.cfg.Clock.Now().Sub(f0))
			}
		}
		nextCh <- g
	}

	// receive waits for the in-flight grant and attributes the exposed
	// wait: the part that overlaps background retrieval counts as
	// retrieval (spread over the prefetched items in proportion to
	// their fetch times), the remainder as sync. Whatever retrieval
	// time compute hid is recorded as the prefetch's win.
	receive := func() *grantResult {
		w0 := s.cfg.Clock.Now()
		g := <-nextCh
		inflight = false
		exposed := s.cfg.Clock.ToEmu(s.cfg.Clock.Now().Sub(w0))
		var totalFetch time.Duration
		for _, it := range g.items {
			if it.data != nil {
				totalFetch += it.fetchEmu
			}
		}
		exposedFetch := exposed
		if exposedFetch > totalFetch {
			exposedFetch = totalFetch
		}
		stats.AddSync(exposed - exposedFetch)
		if totalFetch > 0 {
			for _, it := range g.items {
				if it.data == nil {
					continue
				}
				frac := float64(it.fetchEmu) / float64(totalFetch)
				it.exposedEmu = time.Duration(frac * float64(exposedFetch))
				it.savedEmu = it.fetchEmu - it.exposedEmu
			}
		}
		return g
	}

	// preemptFlush runs the accelerated, deadline-bounded drain a spot
	// warning triggers. Any in-flight prefetch is resolved first (its
	// grant joins the unprocessed set — the connection must be quiet
	// before we can announce). The announcement is a request: once its
	// Ack lands the master has this connection marked draining, so no
	// other worker can slip away with an end-of-run grant while our
	// returns are still in flight. Then jobs are finished only while
	// the remaining window comfortably fits them (twice the per-job
	// EMA, leaving room for the flush itself); the rest are returned
	// unprocessed with the partial reduction.
	preemptFlush := func(unprocessed []*jobItem) (metrics.Snapshot, error) {
		if inflight {
			g := <-nextCh
			inflight = false
			if g.err != nil {
				return zero, g.err
			}
			if g.resp.Kind == wire.KindJobGrant {
				for _, j := range g.resp.Jobs {
					s.markGranted(j.Chunk)
				}
				unprocessed = append(unprocessed, g.items...)
			}
		}
		if _, err := call(&wire.Message{Kind: wire.KindPreemptWarn}); err != nil {
			return zero, fmt.Errorf("cluster: slave %s: announce preempt drain: %w", s.cfg.Site, err)
		}
		deadline := s.preemptDeadline()
		kept := 0
		for _, it := range unprocessed {
			remaining := deadline.Sub(s.cfg.Clock.Now())
			if remaining <= 0 || (jobWallEMA > 0 && remaining < 2*jobWallEMA) {
				break
			}
			j0 := s.cfg.Clock.Now()
			if it.budget > 0 {
				s.budget.release(it.budget)
				it.budget = 0
			}
			if it.data != nil {
				stats.AddRetrieval(it.exposedEmu, it.job.Length, it.job.Stolen)
				stats.AddPrefetch(it.savedEmu)
			}
			err := s.processJob(engine, red, it, stats)
			it.release, it.data = nil, nil
			if err != nil {
				return zero, err
			}
			pending = append(pending, it.job.Chunk)
			covered = append(covered, it.job.Chunk)
			noteJobWall(s.cfg.Clock.Now().Sub(j0))
			kept++
		}
		abandoned := unprocessed[kept:]
		returned := make([]int32, 0, len(abandoned))
		for _, it := range abandoned {
			returned = append(returned, it.job.Chunk)
		}
		if len(abandoned) > 0 {
			stats.CountPreemptAbandon(len(abandoned))
		}
		releaseItems(abandoned)
		cur = nil
		warmWG.Wait()
		stats.CountPreemptDrain()
		// Returned is non-nil even when empty: that is what marks this
		// result as a drain flush rather than a normal end-of-run one.
		snap, err := shipResult(returned)
		if err != nil {
			return zero, fmt.Errorf("cluster: slave %s: ship preempt drain result: %w", s.cfg.Site, err)
		}
		s.flushes.Add(1)
		s.cfg.Logf("slave %s[%d]: preempt drain flushed (%d done, %d returned, %d abandoned)",
			s.cfg.Site, idx, len(pending), len(returned), len(abandoned))
		return snap, nil
	}

	// The first grant is always requested synchronously; with Prefetch
	// on, every later grant is requested — and its chunks fetched —
	// while the current one reduces.
	waitStart := s.cfg.Clock.Now()
	resp, err := request(nil)
	stats.AddSync(s.cfg.Clock.ToEmu(s.cfg.Clock.Now().Sub(waitStart)))
	if err != nil {
		return zero, fmt.Errorf("cluster: slave %s: request job: %w", s.cfg.Site, err)
	}
	cur = &grantResult{resp: resp, items: makeItems(resp.Jobs)}

	for {
		if cur.err != nil {
			return zero, cur.err
		}
		if cur.resp.Kind != wire.KindJobGrant {
			return zero, fmt.Errorf("cluster: slave %s: unexpected %v", s.cfg.Site, cur.resp.Kind)
		}
		for _, j := range cur.resp.Jobs {
			s.markGranted(j.Chunk)
		}
		if cur.resp.Drain {
			drainReq.Store(true)
		}
		if drainReq.Load() {
			// Retire: this grant's prefetched-but-unprocessed jobs go
			// back to the master, while everything already reduced is
			// flushed upstream as a partial result so no chunk is lost
			// or reduced twice. (No prefetch is in flight at the top of
			// the loop, so the connection is ours to use.)
			returned := make([]int32, 0, len(cur.items))
			for _, it := range cur.items {
				returned = append(returned, it.job.Chunk)
			}
			releaseItems(cur.items)
			cur = nil
			warmWG.Wait()
			snap, err := shipResult(returned)
			if err != nil {
				return zero, fmt.Errorf("cluster: slave %s: ship drain result: %w", s.cfg.Site, err)
			}
			s.cfg.Logf("slave %s[%d]: drained (%d completed, %d returned)",
				s.cfg.Site, idx, len(pending), len(returned))
			return snap, nil
		}
		done := cur.resp.Done && len(cur.resp.Jobs) == 0
		if len(cur.resp.Hints) > 0 && s.cfg.Prefetch && s.cfg.Cache.Enabled() {
			warmWG.Add(1)
			go warmHints(cur.resp.Hints)
		}
		if !done && s.cfg.Prefetch {
			// Snapshot the completions now: the request they ride on
			// goes out concurrently with this grant's compute. Jobs of
			// the current grant are reported once they finish, on the
			// next request (or the final result message).
			carry := pending
			pending = nil
			inflight = true
			go prefetchGrant(carry)
		}
		for i, it := range cur.items {
			if s.warned.Load() {
				// Revocation warning: switch to the accelerated drain for
				// this grant's remainder (plus any in-flight prefetch).
				return preemptFlush(cur.items[i:])
			}
			if it.budget > 0 {
				// Handing the bytes to compute frees their budget: they
				// are no longer "in flight ahead of the core".
				s.budget.release(it.budget)
				it.budget = 0
			}
			if it.data != nil {
				stats.AddRetrieval(it.exposedEmu, it.job.Length, it.job.Stolen)
				stats.AddPrefetch(it.savedEmu)
			}
			j0 := s.cfg.Clock.Now()
			err := s.processJob(engine, red, it, stats)
			it.release, it.data = nil, nil
			if err != nil {
				return zero, err
			}
			noteJobWall(s.cfg.Clock.Now().Sub(j0))
			pending = append(pending, it.job.Chunk)
			covered = append(covered, it.job.Chunk)
			if s.cfg.CheckpointJobs > 0 {
				if sinceCkpt++; sinceCkpt >= s.cfg.CheckpointJobs {
					sinceCkpt = 0
					checkpoint()
				}
			}
		}
		if done {
			break
		}
		if s.cfg.Prefetch {
			cur = receive()
		} else {
			waitStart := s.cfg.Clock.Now()
			resp, err := request(pending)
			stats.AddSync(s.cfg.Clock.ToEmu(s.cfg.Clock.Now().Sub(waitStart)))
			if err != nil {
				return zero, fmt.Errorf("cluster: slave %s: request job: %w", s.cfg.Site, err)
			}
			pending = nil
			cur = &grantResult{resp: resp, items: makeItems(resp.Jobs)}
		}
	}

	warmWG.Wait() // hint warmers write stats; their counters ship too
	snap, err := shipResult(nil)
	if err != nil {
		return zero, fmt.Errorf("cluster: slave %s: ship result: %w", s.cfg.Site, err)
	}
	return snap, nil
}

// processJob reduces one job, first retrieving its chunk unless a
// prefetch already delivered it.
func (s *Slave) processJob(engine *gr.Engine, red gr.Reduction, it *jobItem, stats *metrics.Breakdown) error {
	data, release := it.data, it.release
	if data == nil {
		retrStart := s.cfg.Clock.Now()
		var err error
		data, release, err = s.fetchJob(it.job, stats)
		if err != nil {
			return fmt.Errorf("cluster: slave %s: retrieve job %d: %w", s.cfg.Site, it.job.Chunk, err)
		}
		stats.AddRetrieval(s.cfg.Clock.ToEmu(s.cfg.Clock.Now().Sub(retrStart)), it.job.Length, it.job.Stolen)
	}
	defer release()
	units, err := engine.ProcessChunk(red, data)
	if err != nil {
		return err
	}
	stats.CountJob(it.job.Stolen, int64(units))
	return nil
}

// fetchJob resolves one job's chunk bytes through the slave's chunk
// cache — a byte-capped LRU shared by every core and, when the driver
// installs a persistent per-site cache, across iterations. The
// returned release must be called exactly once after the bytes have
// been reduced.
func (s *Slave) fetchJob(job wire.JobAssign, stats *metrics.Breakdown) ([]byte, func(), error) {
	s.noteChunk(job)
	key := store.ChunkKey{Site: job.HomeSite, File: job.File, Off: job.Offset, Len: job.Length}
	data, release, hit, err := s.cfg.Cache.GetOrFetch(key, func() ([]byte, error) {
		return s.rawFetch(job, stats)
	})
	if err != nil {
		return nil, nil, err
	}
	if s.cfg.Cache.Enabled() {
		stats.CountCache(hit, job.Length)
	}
	return data, release, nil
}

// rawFetch reads one chunk from its store: the home store for local
// jobs (a single sequential read for disk data; ranged concurrent
// requests when the site's data lives in an object store) or the
// shaped remote store for stolen jobs. Buffers come from the slave's
// pool.
func (s *Slave) rawFetch(job wire.JobAssign, stats *metrics.Breakdown) ([]byte, error) {
	opts := s.cfg.Fetch
	opts.Stats = stats
	opts.Clock = s.cfg.Clock
	opts.Pool = s.cfg.Pool
	st := s.cfg.HomeStore
	ranged := true
	if job.HomeSite == s.cfg.Site {
		if !s.cfg.HomeFetch {
			// Local disk data: one continuous sequential read, retried
			// as a whole on transient failure.
			opts.Threads = 1
			opts.RangeSize = int(job.Length)
			ranged = false
		} else if s.cfg.Buffer != nil && !s.bufferDown.Load() {
			// Tier 2: the site-shared burst buffer. One whole-chunk read
			// keeps the buffer's cache key identical to the master's
			// staging key; the buffer parallelizes its own backing fetch
			// under the site-wide autotune budget, so the per-slave
			// tuner stays out of this path.
			if data, err := s.bufferFetch(job, stats); err == nil {
				return data, nil
			} else if !s.bufferDown.Swap(true) {
				s.cfg.Logf("slave %s: buffer read failed (%v); degrading to direct fetches", s.cfg.Site, err)
			}
			// Fall through to the direct object-store path.
		}
	} else {
		var ok bool
		st, ok = s.cfg.RemoteStores[job.HomeSite]
		if !ok {
			return nil, fmt.Errorf("cluster: slave %s: no remote store for site %q", s.cfg.Site, job.HomeSite)
		}
	}
	if s.cfg.FetchAutotune && ranged {
		opts.Tuner = s.tunerFor(job.HomeSite)
	}
	return store.Fetch(st, job.File, job.Offset, job.Length, opts)
}

// bufferFetch reads one whole chunk through the site's burst buffer
// and attributes it to the buffer tier. A short read is an error: the
// caller falls back to the direct path and the bytes stay correct.
func (s *Slave) bufferFetch(job wire.JobAssign, stats *metrics.Breakdown) ([]byte, error) {
	buf := s.cfg.Pool.Get(job.Length)
	n, hit, err := s.cfg.Buffer.ReadAtHit(job.File, buf, job.Offset)
	if err != nil && err != io.EOF {
		s.cfg.Pool.Put(buf)
		return nil, err
	}
	if int64(n) < job.Length {
		s.cfg.Pool.Put(buf)
		return nil, fmt.Errorf("cluster: slave %s: buffer short read of %s@%d: %d of %d bytes",
			s.cfg.Site, job.File, job.Offset, n, job.Length)
	}
	stats.CountBuffer(hit, job.Length)
	return buf, nil
}
