package cluster

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
)

// SlaveConfig configures one slave node.
type SlaveConfig struct {
	// Site is the cluster this slave belongs to.
	Site string
	// App is the application to run.
	App gr.App
	// Cores is the number of virtual cores (worker goroutines).
	Cores int
	// HomeStore reads data stored at this slave's own site
	// (sequential, fast path).
	HomeStore store.Store
	// RemoteStores maps other sites to the (shaped) stores used when
	// processing stolen jobs.
	RemoteStores map[string]store.Store
	// Fetch tunes the multi-threaded remote retrieval.
	Fetch store.FetchOptions
	// GroupUnits is the cache-sized unit group for local reduction.
	GroupUnits int
	// JobsPerRequest is how many jobs a worker asks the master for at
	// once (default 1, the paper's on-demand model).
	JobsPerRequest int
	// HomeFetch uses multi-threaded ranged retrieval even for home
	// data. The cloud cluster sets this: its "local" data lives in the
	// object store, which rewards concurrent range requests just like
	// stolen data does.
	HomeFetch bool
	// UnitCostScale multiplies the app's per-unit compute cost for
	// this slave's cores (cloud instances slower than local Xeons).
	// Zero means 1.
	UnitCostScale float64
	// CostJitter models EC2-style performance variability: each core's
	// effective unit cost is further scaled by a deterministic factor
	// in [1-CostJitter, 1+CostJitter]. The paper observes that the
	// pooling-based load balancer normalizes exactly this.
	CostJitter float64
	// HeartbeatInterval, when positive, makes each worker heartbeat its
	// master connection so long retrievals are not mistaken for stalls.
	HeartbeatInterval time.Duration
	// Clock paces compute and converts wall to emulated time.
	Clock netsim.Clock
	// Logf receives progress logging; nil silences it.
	Logf func(format string, args ...any)
}

func (c SlaveConfig) withDefaults() SlaveConfig {
	if c.Cores < 1 {
		c.Cores = 1
	}
	if c.JobsPerRequest < 1 {
		c.JobsPerRequest = 1
	}
	if c.Fetch.Threads == 0 && c.Fetch.RangeSize == 0 {
		c.Fetch = store.DefaultFetchOptions()
	}
	if c.Clock == nil {
		c.Clock = netsim.Instant()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Slave runs Cores worker goroutines, each with its own connection to
// the master and its own private reduction object. Workers request
// jobs on demand (so faster cores naturally process more jobs — the
// paper's pooling-based load balancing), retrieve the chunk data
// (sequential local reads; multi-threaded ranged fetches for stolen
// jobs), and run local reduction in cache-sized unit groups. When the
// pool drains, the workers' objects are merged and shipped to the
// master as this slave's result.
type Slave struct {
	cfg SlaveConfig
}

// NewSlave builds a slave node.
func NewSlave(cfg SlaveConfig) (*Slave, error) {
	cfg = cfg.withDefaults()
	if cfg.Site == "" || cfg.App == nil {
		return nil, fmt.Errorf("cluster: slave needs a site and an app")
	}
	if cfg.HomeStore == nil {
		return nil, fmt.Errorf("cluster: slave needs a home store")
	}
	return &Slave{cfg: cfg}, nil
}

// Run connects every virtual core to the master, processes jobs until
// the pool drains, and ships each core's reduction object; the master
// performs the intra-cluster combine. It returns the slave's
// aggregated metrics.
func (s *Slave) Run(masterAddr string, dial store.Dialer) (*metrics.Breakdown, error) {
	type workerOut struct {
		stats metrics.Snapshot
		err   error
	}
	outs := make([]workerOut, s.cfg.Cores)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats, err := s.worker(masterAddr, dial, w)
			outs[w] = workerOut{stats, err}
		}(w)
	}
	wg.Wait()

	total := &metrics.Breakdown{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		total.AddSnapshot(o.stats)
	}
	return total, nil
}

// jitterFactor derives worker w's deterministic speed factor in
// [1-j, 1+j] from its index.
func jitterFactor(w int, j float64) float64 {
	if j <= 0 {
		return 1
	}
	x := uint64(w)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	frac := float64(x>>40) / float64(1<<24)
	return 1 + j*(2*frac-1)
}

// worker is one virtual core: its own master connection, engine, and
// private reduction object, shipped to the master when the pool dries.
func (s *Slave) worker(masterAddr string, dial store.Dialer, idx int) (metrics.Snapshot, error) {
	var zero metrics.Snapshot
	raw, err := dial("tcp", masterAddr)
	if err != nil {
		return zero, fmt.Errorf("cluster: slave %s: dial master: %w", s.cfg.Site, err)
	}
	conn := wire.NewConn(raw)
	defer conn.Close()
	if _, err := conn.Call(&wire.Message{Kind: wire.KindRegisterSlave, Site: s.cfg.Site}); err != nil {
		return zero, err
	}
	if s.cfg.HeartbeatInterval > 0 {
		stop := wire.Heartbeats(conn, s.cfg.HeartbeatInterval)
		defer stop()
	}

	scale := s.cfg.UnitCostScale
	if scale <= 0 {
		scale = 1
	}
	scale *= jitterFactor(idx, s.cfg.CostJitter)
	stats := &metrics.Breakdown{}
	engine := gr.NewEngine(s.cfg.App, gr.EngineOptions{
		GroupUnits:    s.cfg.GroupUnits,
		Clock:         s.cfg.Clock,
		Stats:         stats,
		UnitCostScale: scale,
	})
	red := s.cfg.App.NewReduction()
	var pending []int32 // completions not yet reported

	for {
		waitStart := s.cfg.Clock.Now()
		resp, err := conn.Call(&wire.Message{
			Kind: wire.KindRequestJob, Max: s.cfg.JobsPerRequest, Completed: pending,
		})
		stats.AddSync(s.cfg.Clock.ToEmu(s.cfg.Clock.Now().Sub(waitStart)))
		if err != nil {
			return zero, fmt.Errorf("cluster: slave %s: request job: %w", s.cfg.Site, err)
		}
		pending = nil
		if resp.Kind != wire.KindJobGrant {
			return zero, fmt.Errorf("cluster: slave %s: unexpected %v", s.cfg.Site, resp.Kind)
		}
		if resp.Done && len(resp.Jobs) == 0 {
			break
		}
		for _, job := range resp.Jobs {
			if err := s.processJob(engine, red, job, stats); err != nil {
				return zero, err
			}
			pending = append(pending, job.Chunk)
		}
	}

	enc, err := gr.EncodeReduction(red)
	if err != nil {
		return zero, err
	}
	snap := stats.Snapshot()
	if _, err := conn.Call(&wire.Message{
		Kind: wire.KindSlaveResult, Object: enc, Completed: pending,
		Stats: wire.Stats{Breakdown: snap},
	}); err != nil {
		return zero, fmt.Errorf("cluster: slave %s: ship result: %w", s.cfg.Site, err)
	}
	return snap, nil
}

// processJob retrieves one chunk and locally reduces it.
func (s *Slave) processJob(engine *gr.Engine, red gr.Reduction, job wire.JobAssign, stats *metrics.Breakdown) error {
	var (
		data []byte
		err  error
	)
	// Per-job copy of the fetch options, carrying this worker's stats
	// sink and clock so retries and backoff land in the run report.
	opts := s.cfg.Fetch
	opts.Stats = stats
	opts.Clock = s.cfg.Clock
	retrStart := s.cfg.Clock.Now()
	if job.HomeSite == s.cfg.Site {
		if s.cfg.HomeFetch {
			// Object-store home data (the cloud cluster): concurrent
			// range requests, same as stolen jobs.
			data, err = store.Fetch(s.cfg.HomeStore, job.File, job.Offset, job.Length, opts)
		} else {
			// Local disk data: one continuous sequential read, retried
			// as a whole on transient failure.
			data = make([]byte, job.Length)
			err = opts.Retry.Do(s.cfg.Clock, fmt.Sprintf("%s@%d", job.File, job.Offset), func() error {
				n, err := s.cfg.HomeStore.ReadAt(job.File, data, job.Offset)
				if err == io.EOF && int64(n) == job.Length {
					err = nil
				}
				if err == nil && int64(n) != job.Length {
					err = fmt.Errorf("cluster: slave %s: short local read of %s: %d of %d",
						s.cfg.Site, job.File, n, job.Length)
				}
				return err
			}, stats.AddRetry)
		}
	} else {
		// Stolen job: multi-threaded ranged retrieval from the remote
		// site's store.
		st, ok := s.cfg.RemoteStores[job.HomeSite]
		if !ok {
			return fmt.Errorf("cluster: slave %s: no remote store for site %q", s.cfg.Site, job.HomeSite)
		}
		data, err = store.Fetch(st, job.File, job.Offset, job.Length, opts)
	}
	if err != nil {
		return fmt.Errorf("cluster: slave %s: retrieve job %d: %w", s.cfg.Site, job.Chunk, err)
	}
	stats.AddRetrieval(s.cfg.Clock.ToEmu(s.cfg.Clock.Now().Sub(retrStart)), job.Length, job.Stolen)

	units, err := engine.ProcessChunk(red, data)
	if err != nil {
		return err
	}
	stats.CountJob(job.Stolen, int64(units))
	return nil
}
