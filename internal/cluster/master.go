package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
)

// MasterConfig configures one cluster's master node.
type MasterConfig struct {
	// Site is this cluster's name ("local", "cloud").
	Site string
	// App is the application (used to merge slave reduction objects).
	App gr.App
	// Cores is the cluster's total virtual core count (reported to the
	// head for logging; the slaves bring the actual workers).
	Cores int
	// Slaves is the number of slave nodes that will register; the
	// master finishes its local combine after hearing from all.
	Slaves int
	// Batch is how many jobs to request from the head per refill
	// (values below 1 default to 2x cores or 8).
	Batch int
	// Watermark refills the pool when it drops below this many jobs
	// (default: half the batch).
	Watermark int
	// HintDepth piggybacks up to this many "likely next" jobs — the
	// front of the local queue — as prefetch hints on every job grant,
	// so slaves can warm their chunk cache deeper than one grant. Zero
	// disables hints. Hinted jobs may still be granted to a different
	// slave; every slave at a site shares one cache, so the warming
	// pays either way.
	HintDepth int
	// Clock converts wall time to emulated durations.
	Clock netsim.Clock
	// HeartbeatInterval, when positive, enables liveness: the master
	// heartbeats the head at this period and expects slave traffic
	// (requests or heartbeats) at least every HeartbeatInterval *
	// HeartbeatMisses. A slave that stays silent longer is declared
	// stalled and treated exactly like a dead one: its jobs requeue.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals count as a stall
	// (default 3).
	HeartbeatMisses int
	// Pool recycles wire encode/frame buffers on the head and slave
	// connections (default: a fresh BufferPool).
	Pool *store.BufferPool
	// Buffer, when non-nil, is the site's burst-buffer staging hook:
	// every time queue-front hints go out with a grant, the master also
	// asks the buffer (asynchronously) to pull those chunks from the
	// backing store, so a slave's first read of an upcoming chunk finds
	// it already resident. Both *store.SiteBuffer and *store.Client
	// satisfy it.
	Buffer Stager
	// StageBudget caps the total bytes the master may stage into the
	// buffer over the run (0 = no staging budget, stage freely).
	StageBudget int64
	// SyncMode selects the reduction-synchronization strategy: how slave
	// objects arrive (streamed parts vs single frames), how they merge
	// into the local combine (availability-driven as each slave finishes
	// vs after the all-slaves barrier), and how the cluster result ships
	// to the head. Empty picks streamed-parallel.
	SyncMode string
	// MergeCost charges each local-combine fold an emulated duration
	// per byte of the folded object (see gr.MergerOptions.CostPerByte);
	// zero charges nothing.
	MergeCost time.Duration
	// Logf receives progress logging; nil silences it.
	Logf func(format string, args ...any)
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.HeartbeatMisses < 1 {
		c.HeartbeatMisses = 3
	}
	if c.Batch < 1 {
		c.Batch = 2 * c.Cores
		if c.Batch < 8 {
			c.Batch = 8
		}
	}
	if c.Watermark < 1 {
		c.Watermark = c.Batch / 2
		if c.Watermark < 1 {
			c.Watermark = 1
		}
	}
	if c.Clock == nil {
		c.Clock = netsim.Instant()
	}
	if c.Pool == nil {
		c.Pool = store.NewBufferPool()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Master manages one cluster: it keeps a local pool of jobs topped up
// from the head on demand (pooling-based load balancing) and serves
// them to requesting slaves; when the head's pool drains it collects
// slave reduction objects, combines them, and ships the cluster result
// to the head.
type Master struct {
	cfg  MasterConfig
	head *wire.Conn
	plan syncPlan

	// merger runs the availability-driven local combine under a streamed
	// plan: every delivered slave object is fed in as it arrives, so
	// merging overlaps the transfers still in flight. Monolithic mode
	// instead accumulates slaveObjs and merges after the barrier.
	merger *gr.Merger
	// finalOC collects the head's streamed Final broadcast.
	finalOC objectCollector

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []wire.JobAssign
	completed []int32 // finished job ids not yet reported to the head
	headDone  bool
	failed    error
	expected  int  // slave results still awaited (starts at cfg.Slaves, grows on joins)
	finished  bool // doneCh delivered; later results are absorbed silently

	// Dynamic membership: conns tracks every registered slave
	// connection still in play; draining marks connections commanded to
	// retire whose results have not yet arrived. While any OTHER
	// connection is draining, end-of-run grants are held back — the
	// drain may return work to the queue, and handing out done=true
	// early would strand it.
	conns    map[int]*wire.Conn
	draining map[int]bool
	drains   int // completed drains (logging)
	// progress counts every slave-reported completion as it happens —
	// the advisory gauge piggybacked upstream for the elastic
	// controller. Unlike m.completed it is never withheld: the head
	// needs a live rate signal, and tolerates the gauge's optimism
	// about work a dying slave will end up redoing.
	progress int

	slaveObjs  []gr.Reduction // monolithic mode only; streamed feeds merger
	slaveStats []wire.Stats
	results    int // objects collected (delivered results + adopted checkpoints)
	started    time.Time
	faults     metrics.Breakdown // master-side stall detections and sync counters

	// resident holds each slave connection's latest reported set of
	// cache-resident chunk ids; the refill loop folds the union into
	// its upstream requests so the head can steer stealing away from
	// chunks this cluster already has warm.
	resident map[int][]int32
	nextConn int // slave connection ids for the resident map

	// ckpts holds each connection's newest partial-reduction checkpoint
	// (highest Seq wins; a delivered result deletes it). A checkpoint is
	// merged exactly once — in slaveLost, when the connection dies
	// without a result — and adopted counts those merges so the
	// "all results in" conditions can balance objects against expected:
	// an adopted checkpoint adds an object without consuming an
	// expected slot (the dead slave's slot was already subtracted).
	ckpts   map[int]*checkpoint
	adopted int

	// Staging dedup and budget ledger: staged marks chunk ids already
	// submitted to the buffer (never re-staged), stagedBytes charges
	// them against cfg.StageBudget. stageWG tracks in-flight async
	// stage calls so their stats land before the final report.
	staged      map[int32]bool
	stagedBytes int64
	stageWG     sync.WaitGroup

	// Hint-depth feedback: hintDepth is each connection's effective
	// hint depth (seeded from cfg.HintDepth), halved when the slave's
	// reported hint-waste ledger grows and restored one step at a time
	// while it subsides. hintWastePrev remembers the last report for
	// the trend comparison.
	hintDepth     map[int]int
	hintWastePrev map[int]int

	wg sync.WaitGroup
	ln net.Listener

	doneCh chan error
}

// NewMaster builds a master for the given site.
func NewMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	if cfg.Site == "" || cfg.App == nil {
		return nil, fmt.Errorf("cluster: master needs a site and an app")
	}
	if cfg.Slaves <= 0 {
		return nil, fmt.Errorf("cluster: master needs a positive slave count")
	}
	plan, err := resolveSyncMode(cfg.SyncMode)
	if err != nil {
		return nil, err
	}
	m := &Master{cfg: cfg, plan: plan, expected: cfg.Slaves, doneCh: make(chan error, 1),
		resident: make(map[int][]int32), conns: make(map[int]*wire.Conn),
		draining: make(map[int]bool), ckpts: make(map[int]*checkpoint),
		hintDepth: make(map[int]int), hintWastePrev: make(map[int]int),
		staged: make(map[int32]bool)}
	m.merger = gr.NewMerger(cfg.App, gr.MergerOptions{
		Mode: plan.merge, Workers: mergeWorkers,
		Clock: cfg.Clock, CostPerByte: cfg.MergeCost,
	})
	m.finalOC.app = cfg.App
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

// Run connects to the head through dial, serves slaves on l, and
// blocks until the cluster's part of the run completes. It returns the
// final (globally reduced) object received from the head.
func (m *Master) Run(headAddr string, dial store.Dialer, l net.Listener) (gr.Reduction, error) {
	raw, err := dial("tcp", headAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: master %s: dial head: %w", m.cfg.Site, err)
	}
	m.head = wire.NewConn(raw)
	m.head.SetBufferPool(m.cfg.Pool)
	m.finalOC.conn = m.head
	defer m.head.Close()

	if _, err := m.head.Call(&wire.Message{
		Kind: wire.KindRegisterMaster, Site: m.cfg.Site, Cores: m.cfg.Cores,
	}); err != nil {
		return nil, fmt.Errorf("cluster: master %s: register with head %s: %w", m.cfg.Site, headAddr, err)
	}
	if m.cfg.HeartbeatInterval > 0 {
		// Keep the head convinced we are alive through the long quiet
		// stretches (local combine, waiting for slow slaves).
		stop := wire.HeartbeatsWith(m.head, m.cfg.HeartbeatInterval, m.cfg.Logf)
		defer stop()
	}
	m.mu.Lock()
	m.started = m.cfg.Clock.Now()
	m.mu.Unlock()

	// Accept slave connections.
	m.ln = l
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				wc := wire.NewConn(conn)
				wc.SetBufferPool(m.cfg.Pool)
				if err := m.handleSlave(wc); err != nil {
					m.fail(err)
				}
			}()
		}
	}()

	// Pump the head for jobs until it reports the pool dry.
	if err := m.refillLoop(); err != nil {
		m.fail(err)
	}

	// Wait for every slave's result (or a failure).
	if err := <-m.doneCh; err != nil {
		l.Close()
		m.wg.Wait()
		return nil, err
	}
	l.Close()
	m.wg.Wait()

	return m.combineAndReport()
}

func (m *Master) fail(err error) {
	m.mu.Lock()
	if m.failed == nil {
		m.failed = err
		m.headDone = true // release blocked slaves
		select {
		case m.doneCh <- err:
		default:
		}
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// refillLoop keeps the local pool topped up: whenever the queue drops
// below the watermark it requests a batch from the head, piggybacking
// completed-job acknowledgements.
func (m *Master) refillLoop() error {
	for {
		m.mu.Lock()
		for len(m.queue) >= m.cfg.Watermark && m.failed == nil {
			m.cond.Wait()
		}
		if m.failed != nil {
			m.mu.Unlock()
			return nil
		}
		completed := m.completed
		m.completed = nil
		progress := m.progress
		resident := m.residentUnionLocked()
		m.mu.Unlock()

		resp, err := m.callHead(&wire.Message{
			Kind: wire.KindRequestJobs, Site: m.cfg.Site,
			Max: m.cfg.Batch, Completed: completed, Progress: progress,
			Resident: resident,
		})
		if err != nil {
			return fmt.Errorf("cluster: master %s: request jobs: %w", m.cfg.Site, err)
		}
		if resp.Kind != wire.KindJobs {
			return fmt.Errorf("cluster: master %s: unexpected %v", m.cfg.Site, resp.Kind)
		}

		m.mu.Lock()
		m.queue = append(m.queue, resp.Jobs...)
		if resp.Done {
			m.headDone = true
		}
		m.cond.Broadcast()
		done := m.headDone
		m.mu.Unlock()
		if done {
			m.cfg.Logf("master %s: head pool dry, draining", m.cfg.Site)
			return nil
		}
	}
}

// callHead is Call on the head connection, absorbing the one-way
// KindScale pushes the elastic controller may interleave with our
// request/response traffic. Scale pushes sit in the socket until the
// next head exchange reads them — decision latency is bounded by the
// refill cadence, which is frequent exactly when scaling matters.
func (m *Master) callHead(msg *wire.Message) (*wire.Message, error) {
	if err := m.head.Send(msg); err != nil {
		return nil, err
	}
	for {
		resp, err := m.head.Recv()
		if err != nil {
			return nil, err
		}
		switch resp.Kind {
		case wire.KindScale:
			m.applyScale(resp.Target)
			continue
		case wire.KindObjectPart:
			// A part of the head's streamed Final broadcast; decode
			// overlaps the parts still crossing the WAN.
			if err := m.finalOC.feed(resp); err != nil {
				return nil, err
			}
			continue
		case wire.KindError:
			return nil, &wire.RemoteError{Msg: resp.Err}
		}
		return resp, nil
	}
}

// applyScale reacts to the head's new worker-count target for this
// site. Scaling down drains the surplus; scaling up is the
// provisioner's job (new slaves arrive via KindJoin), so a target
// above the current membership is a no-op here.
func (m *Master) applyScale(target int) {
	m.mu.Lock()
	active := len(m.conns) - len(m.draining)
	m.mu.Unlock()
	if surplus := active - target; surplus > 0 {
		m.DrainSlaves(surplus)
	}
}

// DrainSlaves commands up to n non-draining slaves to retire after
// their current grant, always keeping at least one active worker so
// queued work can never strand. It returns how many were commanded.
func (m *Master) DrainSlaves(n int) int {
	m.mu.Lock()
	var victims []*wire.Conn
	for id, c := range m.conns {
		if len(victims) >= n {
			break
		}
		if m.draining[id] {
			continue
		}
		if len(m.conns)-len(m.draining) <= 1 {
			break // never drain the last active worker
		}
		m.draining[id] = true
		victims = append(victims, c)
	}
	m.mu.Unlock()
	m.cond.Broadcast() // waiters in takeJobs re-check their drain flag
	for _, c := range victims {
		// Push is best-effort: a conn that dies here takes the
		// slave-lost path, which re-executes everything it held.
		_ = c.Send(&wire.Message{Kind: wire.KindDrain})
	}
	if len(victims) > 0 {
		m.cfg.Logf("master %s: draining %d slave(s)", m.cfg.Site, len(victims))
	}
	return len(victims)
}

// Stager is the staging face of the site's burst buffer: pull a chunk
// into the shared cache without shipping its bytes anywhere.
type Stager interface {
	Stage(name string, off, length int64) (int64, error)
}

// stageHints submits this grant's queue-front hints to the burst
// buffer so the chunks are (being) fetched from the backing store by
// the time a slave asks for them. Each chunk is staged at most once,
// charged against StageBudget up front (with a refund for bytes the
// buffer reports it did not actually stage, e.g. already-resident
// chunks), and pulled asynchronously so grants never wait on S3.
func (m *Master) stageHints(hints []wire.JobAssign) {
	if m.cfg.Buffer == nil || len(hints) == 0 {
		return
	}
	var todo []wire.JobAssign
	m.mu.Lock()
	for _, h := range hints {
		if h.HomeSite != m.cfg.Site {
			continue // the buffer fronts this site's own backing store
		}
		if m.staged[h.Chunk] {
			continue
		}
		if m.cfg.StageBudget > 0 && m.stagedBytes+h.Length > m.cfg.StageBudget {
			continue
		}
		m.staged[h.Chunk] = true
		m.stagedBytes += h.Length
		todo = append(todo, h)
	}
	m.mu.Unlock()
	for _, h := range todo {
		h := h
		m.stageWG.Add(1)
		go func() {
			defer m.stageWG.Done()
			n, err := m.cfg.Buffer.Stage(h.File, h.Offset, h.Length)
			if err != nil {
				n = 0
				m.cfg.Logf("master %s: stage chunk %d: %v", m.cfg.Site, h.Chunk, err)
			}
			m.faults.AddStaged(n)
			if refund := h.Length - n; refund > 0 {
				m.mu.Lock()
				m.stagedBytes -= refund
				m.mu.Unlock()
			}
		}()
	}
}

// checkpoint is one connection's newest shipped partial reduction,
// decoded at arrival (streamed checkpoints decode incrementally as
// their parts land, so the encoded form never rematerializes).
type checkpoint struct {
	seq     int
	object  gr.Reduction
	covered []int32 // cumulative chunk ids reduced into object
	stats   wire.Stats
}

// noteHintWaste folds one slave's reported hint-waste ledger into its
// effective hint depth: waste climbing means the hints this connection
// warms are being granted elsewhere, so its depth halves (the trims are
// counted); waste flat or subsiding earns the depth back one step per
// report, up to the configured ceiling.
func (m *Master) noteHintWaste(connID, waste int) {
	if m.cfg.HintDepth <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	prev, seen := m.hintWastePrev[connID]
	m.hintWastePrev[connID] = waste
	depth, ok := m.hintDepth[connID]
	if !ok {
		depth = m.cfg.HintDepth
	}
	switch {
	case seen && waste > prev:
		if depth > 1 {
			depth /= 2
			m.faults.CountHintTrim()
			m.cfg.Logf("master %s: conn %d hint waste %d->%d, depth trimmed to %d",
				m.cfg.Site, connID, prev, waste, depth)
		}
	case waste <= prev && depth < m.cfg.HintDepth:
		depth++
	}
	m.hintDepth[connID] = depth
}

// hintDepthLocked is the effective hint depth for a connection.
func (m *Master) hintDepthLocked(connID int) int {
	if d, ok := m.hintDepth[connID]; ok {
		return d
	}
	return m.cfg.HintDepth
}

// drainsPendingExceptLocked reports whether any connection other than
// connID has been commanded to drain but not yet delivered its result.
func (m *Master) drainsPendingExceptLocked(connID int) bool {
	for id := range m.draining {
		if id != connID {
			return true
		}
	}
	return false
}

// handleSlave serves one slave connection: grant jobs until the pool
// is dry, then collect the slave's reduction object.
//
// Fault tolerance (an extension beyond the paper): a slave's completed
// jobs are only acknowledged upstream once its reduction object has
// arrived safely. If the slave dies first, every job it was ever
// granted is requeued — its partial reduction object died with it, so
// even "completed" jobs must be re-executed.
func (m *Master) handleSlave(c *wire.Conn) error {
	defer c.Close()
	addr := c.RemoteAddr()
	reg, err := c.Recv()
	if err != nil {
		return fmt.Errorf("cluster: master %s: slave %v register: %w", m.cfg.Site, addr, err)
	}
	switch reg.Kind {
	case wire.KindRegisterSlave:
		// Expected at deploy time; counted in cfg.Slaves.
	case wire.KindJoin:
		// Late join (elastic scale-up): admit the worker and expect one
		// more result before the local combine.
		m.mu.Lock()
		m.expected++
		joined := m.expected
		m.mu.Unlock()
		m.cfg.Logf("master %s: slave %v joined mid-run (%d expected)", m.cfg.Site, addr, joined)
	default:
		return fmt.Errorf("cluster: master %s: slave %v: expected register-slave or join, got %v",
			m.cfg.Site, addr, reg.Kind)
	}
	if err := c.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
		return err
	}
	if m.cfg.HeartbeatInterval > 0 {
		// A registered slave must show signs of life — a request or a
		// heartbeat — within every miss window, or Recv times out and
		// the slave is declared stalled.
		window := m.cfg.HeartbeatInterval * time.Duration(m.cfg.HeartbeatMisses)
		c.SetIdleTimeout(window)
		c.SetWriteTimeout(window)
	}

	granted := make(map[int32]wire.JobAssign)
	var completed []int32
	// oc incrementally decodes this connection's streamed objects
	// (checkpoints, then the result), one at a time.
	oc := objectCollector{app: m.cfg.App, conn: c}

	m.mu.Lock()
	connID := m.nextConn
	m.nextConn++
	m.conns[connID] = c
	m.mu.Unlock()
	defer func() {
		oc.abort(fmt.Errorf("cluster: master %s: slave %v connection closed mid-stream", m.cfg.Site, addr))
		m.mu.Lock()
		delete(m.resident, connID)
		delete(m.conns, connID)
		delete(m.draining, connID)
		delete(m.ckpts, connID)
		delete(m.hintDepth, connID)
		delete(m.hintWastePrev, connID)
		m.mu.Unlock()
		// A vanished drain no longer holds back end-of-run grants.
		m.cond.Broadcast()
	}()

	for {
		req, err := c.Recv()
		if err != nil {
			if wire.IsTimeout(err) {
				// The connection is still open but the slave went
				// silent: a stall, not a crash. Same recovery path —
				// everything it held is re-executed.
				m.faults.CountHeartbeatMiss()
				m.cfg.Logf("master %s: slave %v stalled (no traffic for %v), declaring lost",
					m.cfg.Site, addr, m.cfg.HeartbeatInterval*time.Duration(m.cfg.HeartbeatMisses))
			}
			m.slaveLost(connID, granted)
			return nil
		}
		switch req.Kind {
		case wire.KindHeartbeat:
			continue // liveness only; Recv re-armed the idle deadline

		case wire.KindObjectPart:
			// One bounded frame of a streamed object (checkpoint or
			// result); the collector's decode goroutine consumes it while
			// later parts are still in flight.
			if err := oc.feed(req); err != nil {
				return fmt.Errorf("cluster: master %s: slave %v object stream: %w", m.cfg.Site, addr, err)
			}
			continue

		case wire.KindCheckpoint:
			// One-way push: keep only the newest sequence, so a delayed
			// duplicate can never roll a partial reduction back. The
			// checkpoint is merged only if this connection dies without
			// delivering a result.
			obj, err := takeObject(m.cfg.App, &oc, req)
			if err != nil {
				// A checkpoint that cannot be decoded is dropped, not
				// fatal: the master just keeps the previous one.
				m.cfg.Logf("master %s: discarding undecodable checkpoint from %v: %v", m.cfg.Site, addr, err)
				continue
			}
			m.mu.Lock()
			if old := m.ckpts[connID]; old == nil || req.Seq > old.seq {
				m.ckpts[connID] = &checkpoint{
					seq: req.Seq, object: obj,
					covered: req.Completed, stats: req.Stats,
				}
			}
			m.mu.Unlock()
			continue

		case wire.KindPreemptWarn:
			// The slave is revocation-warned and starts an accelerated
			// drain; mark it draining BEFORE acking so no other worker
			// can take an end-of-run grant while the drain's returned
			// jobs are still in flight back to the queue.
			m.mu.Lock()
			m.draining[connID] = true
			m.mu.Unlock()
			m.faults.CountPreemptWarn()
			m.cfg.Logf("master %s: slave %v preempt-warned, accelerated drain", m.cfg.Site, addr)
			m.cond.Broadcast()
			if err := c.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
				m.slaveLost(connID, granted)
				return nil
			}

		case wire.KindRequestJob:
			completed = append(completed, req.Completed...)
			if n := len(req.Completed); n > 0 {
				m.mu.Lock()
				m.progress += n
				m.mu.Unlock()
			}
			m.noteHintWaste(connID, req.HintWasteChunks)
			if req.Resident != nil {
				// An empty report still replaces the previous one: a
				// drained cache must clear its stale warm set.
				m.mu.Lock()
				m.resident[connID] = req.Resident
				m.mu.Unlock()
			}
			jobs, hints, done, drain := m.takeJobs(max(req.Max, 1), connID)
			for _, j := range jobs {
				granted[j.Chunk] = j
			}
			m.stageHints(hints)
			if err := c.Send(&wire.Message{
				Kind: wire.KindJobGrant, Jobs: jobs, Hints: hints, Done: done, Drain: drain,
			}); err != nil {
				m.slaveLost(connID, granted)
				return nil
			}

		case wire.KindSlaveResult:
			completed = append(completed, req.Completed...)
			// Chunk conservation: completions plus drain-returns must
			// cover everything ever granted to this connection, exactly
			// once each. A drain that drops a chunk or a return that
			// overlaps a completion would silently skew the reduction,
			// so both fail the run loudly here.
			outstanding := make(map[int32]bool, len(granted))
			for id := range granted {
				outstanding[id] = true
			}
			for _, id := range completed {
				if !outstanding[id] {
					return fmt.Errorf("cluster: master %s: slave %v completed chunk %d it did not hold",
						m.cfg.Site, addr, id)
				}
				delete(outstanding, id)
			}
			var returned []wire.JobAssign
			for _, id := range req.Returned {
				if !outstanding[id] {
					return fmt.Errorf("cluster: master %s: slave %v returned chunk %d it did not hold",
						m.cfg.Site, addr, id)
				}
				delete(outstanding, id)
				returned = append(returned, granted[id])
			}
			if len(outstanding) != 0 {
				return fmt.Errorf("cluster: master %s: slave %v completed or returned %d of %d granted jobs",
					m.cfg.Site, addr, len(granted)-len(outstanding), len(granted))
			}
			obj, err := takeObject(m.cfg.App, &oc, req)
			if err != nil {
				return fmt.Errorf("cluster: master %s: decode slave %v result: %w", m.cfg.Site, addr, err)
			}
			if err := c.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
				return err
			}
			if m.plan.streamed {
				// Availability-driven combine: the object merges now, on
				// this handler's goroutine (or a merge worker), while
				// other slaves are still streaming theirs.
				m.merger.Add(obj)
			}
			m.mu.Lock()
			// The delivered result supersedes any checkpoint: merging
			// both would double-count every job the checkpoint covers.
			delete(m.ckpts, connID)
			m.completed = append(m.completed, completed...)
			m.progress += len(req.Completed)
			if !m.plan.streamed {
				m.slaveObjs = append(m.slaveObjs, obj)
			}
			m.results++
			m.slaveStats = append(m.slaveStats, req.Stats)
			if req.Returned != nil {
				// Drain result: the partial reduction above stands, and
				// the unprocessed remainder goes back to the local queue
				// for the surviving workers (or cross-site stealing once
				// the head re-pools it).
				m.queue = append(m.queue, returned...)
				m.drains++
				m.cfg.Logf("master %s: slave %v drained: %d done, %d returned",
					m.cfg.Site, addr, len(completed), len(returned))
			}
			ready := !m.finished && m.results == m.expected+m.adopted && m.failed == nil
			if ready {
				m.finished = true
			}
			m.mu.Unlock()
			m.cond.Broadcast() // returned work and cleared drains wake takeJobs
			if ready {
				m.doneCh <- nil
			}
			return nil

		default:
			return fmt.Errorf("cluster: master %s: unexpected %v from slave %v", m.cfg.Site, req.Kind, addr)
		}
	}
}

// slaveLost requeues everything a dead slave had been granted and
// lowers the expected-result count. If the connection shipped a
// checkpoint before dying, its newest partial reduction is adopted
// first: the jobs it covers are subtracted from the requeue set and
// acknowledged upstream, so only work since the checkpoint is
// re-executed. If no slaves remain, the cluster cannot finish and the
// run fails.
func (m *Master) slaveLost(connID int, granted map[int32]wire.JobAssign) {
	m.mu.Lock()
	if ck := m.ckpts[connID]; ck != nil {
		delete(m.ckpts, connID)
		// Every covered chunk must still be on this connection's granted
		// ledger (granted entries are never removed before the result);
		// anything else means a corrupt or foreign checkpoint, which is
		// discarded rather than risking a double merge.
		valid := true
		for _, id := range ck.covered {
			if _, ok := granted[id]; !ok {
				valid = false
				break
			}
		}
		if valid {
			for _, id := range ck.covered {
				delete(granted, id)
			}
			m.completed = append(m.completed, ck.covered...)
			if m.plan.streamed {
				m.merger.Add(ck.object)
			} else {
				m.slaveObjs = append(m.slaveObjs, ck.object)
			}
			m.results++
			m.slaveStats = append(m.slaveStats, ck.stats)
			m.adopted++
			m.faults.CountCheckpointAdopt(len(ck.covered))
			m.cfg.Logf("master %s: adopted checkpoint seq %d (%d jobs saved from re-execution)",
				m.cfg.Site, ck.seq, len(ck.covered))
		} else {
			m.cfg.Logf("master %s: discarding checkpoint covering un-granted chunks", m.cfg.Site)
		}
	}
	for _, j := range granted {
		m.queue = append(m.queue, j)
	}
	if len(granted) > 0 {
		m.faults.CountRequeue(len(granted))
	}
	m.expected--
	remaining := m.expected
	results := m.results
	m.cfg.Logf("master %s: slave lost, requeued %d jobs, %d slaves remain",
		m.cfg.Site, len(granted), remaining)
	m.cond.Broadcast()
	ready := remaining > 0 && results == remaining+m.adopted && m.failed == nil && !m.finished
	if ready {
		m.finished = true
	}
	m.mu.Unlock()
	if remaining <= 0 {
		m.fail(fmt.Errorf("cluster: master %s: all slaves lost", m.cfg.Site))
		return
	}
	if ready {
		m.doneCh <- nil
	}
}

// takeJobs pops up to max jobs, blocking while the pool is being
// refilled; done is true only when the head has no more jobs AND the
// local queue is empty. hints is a copy of the queue front after the
// pop — the jobs most likely to be granted next — capped at HintDepth.
//
// Two membership twists: a connection commanded to drain gets the
// drain flag instead of jobs (even if it was already parked here when
// the command landed), and end-of-run done grants are withheld while
// any other connection's drain is still pending — its result may
// return work to the queue, and a worker released with done=true
// would never come back for it.
func (m *Master) takeJobs(max, connID int) (jobs, hints []wire.JobAssign, done, drain bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.draining[connID] {
			return nil, nil, false, true
		}
		if len(m.queue) > 0 {
			break
		}
		if m.failed != nil {
			return nil, nil, true, false
		}
		if m.headDone && !m.drainsPendingExceptLocked(connID) {
			return nil, nil, true, false
		}
		m.cond.Wait()
	}
	n := len(m.queue)
	if max < n {
		n = max
	}
	jobs = append([]wire.JobAssign(nil), m.queue[:n]...)
	m.queue = m.queue[n:]
	if h := m.hintDepthLocked(connID); h > 0 && len(m.queue) > 0 {
		if h > len(m.queue) {
			h = len(m.queue)
		}
		hints = append([]wire.JobAssign(nil), m.queue[:h]...)
	}
	// Dropping below the watermark wakes the refill loop.
	if len(m.queue) < m.cfg.Watermark {
		m.cond.Broadcast()
	}
	return jobs, hints, false, false
}

// residentUnionLocked merges every slave connection's latest reported
// cache-resident chunk ids — plus the chunks staged into the site's
// burst buffer, which are just as warm from the head's point of view —
// into one deduplicated set for the head. It returns nil only when no
// slave has reported and nothing was staged; an empty union from
// drained caches still returns a non-nil empty slice (which the codec
// preserves) so the head clears the site's stale warm set.
func (m *Master) residentUnionLocked() []int32 {
	if len(m.resident) == 0 && len(m.staged) == 0 {
		return nil
	}
	seen := make(map[int32]bool)
	out := []int32{}
	for _, ids := range m.resident {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for id := range m.staged {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// combineAndReport performs the intra-cluster combine, ships the
// result (plus aggregated stats and any unreported completions) to the
// head, and waits for the final object.
func (m *Master) combineAndReport() (gr.Reduction, error) {
	// Let in-flight stage calls land: their staged-bytes stats must be
	// in m.faults before the snapshot below ships upstream.
	m.stageWG.Wait()
	m.mu.Lock()
	objs := m.slaveObjs
	m.slaveObjs = nil
	stats := m.slaveStats
	completed := m.completed
	m.completed = nil
	progress := m.progress
	started := m.started
	m.mu.Unlock()
	defer m.finalOC.abort(fmt.Errorf("cluster: master %s: head connection closed mid-stream", m.cfg.Site))

	// The local combine. Under a streamed plan the merger has been
	// absorbing objects since the first slave finished, so Finish only
	// pays for whatever merge work the arrivals did not already hide —
	// the exposed tail. Monolithic mode held every object back and pays
	// the whole fold here, after the all-slaves barrier.
	t0 := m.cfg.Clock.Now()
	for _, o := range objs {
		if err := m.merger.Add(o); err != nil {
			return nil, fmt.Errorf("cluster: master %s: combine: %w", m.cfg.Site, err)
		}
	}
	combined, mstats, err := m.merger.Finish()
	if err != nil {
		return nil, fmt.Errorf("cluster: master %s: combine: %w", m.cfg.Site, err)
	}
	tail := m.cfg.Clock.ToEmu(m.cfg.Clock.Now().Sub(t0))
	m.faults.AddMerge(mstats.Merges, m.cfg.Clock.ToEmu(mstats.Busy), tail, mstats.MaxParallel)

	msg := &wire.Message{
		Kind: wire.KindClusterResult, Site: m.cfg.Site,
		Completed: completed, Progress: progress,
	}
	var shipped int64
	if m.plan.streamed {
		// Stream the combined object to the head in bounded parts — the
		// full encoded form is never allocated — then send the terminal
		// message (Object nil) once the last part is on the wire.
		ow := wire.NewObjectWriter(m.head, 0)
		if err := combined.Encode(ow); err != nil {
			return nil, fmt.Errorf("cluster: master %s: stream result: %w", m.cfg.Site, err)
		}
		if err := ow.Close(); err != nil {
			return nil, fmt.Errorf("cluster: master %s: stream result: %w", m.cfg.Site, err)
		}
		m.faults.AddObjectStream(ow.Frames(), ow.Bytes(), int64(combined.Bytes()))
		shipped = ow.Bytes()
	} else {
		enc, err := gr.EncodeReduction(combined)
		if err != nil {
			return nil, err
		}
		msg.Object = enc
		shipped = int64(len(enc))
	}

	var agg wire.Stats
	for _, s := range stats {
		agg.Breakdown = agg.Breakdown.Add(s.Breakdown)
	}
	// Fold in the master's own stall detections and sync counters so
	// they reach the run report alongside the workers' counters.
	agg.Breakdown = agg.Breakdown.Add(m.faults.Snapshot())
	agg.WallEmu = int64(m.cfg.Clock.ToEmu(m.cfg.Clock.Now().Sub(started)))
	msg.Stats = agg

	m.cfg.Logf("master %s: local combine done, %d jobs, shipping %d-byte object",
		m.cfg.Site, agg.Breakdown.JobsProcessed, shipped)
	resp, err := m.callHead(msg)
	if err != nil {
		return nil, fmt.Errorf("cluster: master %s: report: %w", m.cfg.Site, err)
	}
	if resp.Kind != wire.KindFinal {
		return nil, fmt.Errorf("cluster: master %s: expected final, got %v", m.cfg.Site, resp.Kind)
	}
	// Confirm receipt: the head charges the broadcast's (shaped)
	// transfer time to the global reduction only once this ack lands.
	if err := m.head.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
		return nil, err
	}
	if resp.Object != nil {
		return gr.DecodeReduction(m.cfg.App, resp.Object)
	}
	final, _, _, err := m.finalOC.take()
	if err != nil {
		return nil, fmt.Errorf("cluster: master %s: decode final: %w", m.cfg.Site, err)
	}
	return final, nil
}
