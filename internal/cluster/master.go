package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
	"cloudburst/internal/wire"
)

// MasterConfig configures one cluster's master node.
type MasterConfig struct {
	// Site is this cluster's name ("local", "cloud").
	Site string
	// App is the application (used to merge slave reduction objects).
	App gr.App
	// Cores is the cluster's total virtual core count (reported to the
	// head for logging; the slaves bring the actual workers).
	Cores int
	// Slaves is the number of slave nodes that will register; the
	// master finishes its local combine after hearing from all.
	Slaves int
	// Batch is how many jobs to request from the head per refill
	// (values below 1 default to 2x cores or 8).
	Batch int
	// Watermark refills the pool when it drops below this many jobs
	// (default: half the batch).
	Watermark int
	// HintDepth piggybacks up to this many "likely next" jobs — the
	// front of the local queue — as prefetch hints on every job grant,
	// so slaves can warm their chunk cache deeper than one grant. Zero
	// disables hints. Hinted jobs may still be granted to a different
	// slave; every slave at a site shares one cache, so the warming
	// pays either way.
	HintDepth int
	// Clock converts wall time to emulated durations.
	Clock netsim.Clock
	// HeartbeatInterval, when positive, enables liveness: the master
	// heartbeats the head at this period and expects slave traffic
	// (requests or heartbeats) at least every HeartbeatInterval *
	// HeartbeatMisses. A slave that stays silent longer is declared
	// stalled and treated exactly like a dead one: its jobs requeue.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals count as a stall
	// (default 3).
	HeartbeatMisses int
	// Logf receives progress logging; nil silences it.
	Logf func(format string, args ...any)
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.HeartbeatMisses < 1 {
		c.HeartbeatMisses = 3
	}
	if c.Batch < 1 {
		c.Batch = 2 * c.Cores
		if c.Batch < 8 {
			c.Batch = 8
		}
	}
	if c.Watermark < 1 {
		c.Watermark = c.Batch / 2
		if c.Watermark < 1 {
			c.Watermark = 1
		}
	}
	if c.Clock == nil {
		c.Clock = netsim.Instant()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Master manages one cluster: it keeps a local pool of jobs topped up
// from the head on demand (pooling-based load balancing) and serves
// them to requesting slaves; when the head's pool drains it collects
// slave reduction objects, combines them, and ships the cluster result
// to the head.
type Master struct {
	cfg  MasterConfig
	head *wire.Conn

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []wire.JobAssign
	completed []int32 // finished job ids not yet reported to the head
	headDone  bool
	failed    error
	expected  int // slave results still awaited (starts at cfg.Slaves)

	slaveObjs  []gr.Reduction
	slaveStats []wire.Stats
	started    time.Time
	faults     metrics.Breakdown // master-side stall detections

	// resident holds each slave connection's latest reported set of
	// cache-resident chunk ids; the refill loop folds the union into
	// its upstream requests so the head can steer stealing away from
	// chunks this cluster already has warm.
	resident map[int][]int32
	nextConn int // slave connection ids for the resident map

	wg sync.WaitGroup
	ln net.Listener

	doneCh chan error
}

// NewMaster builds a master for the given site.
func NewMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	if cfg.Site == "" || cfg.App == nil {
		return nil, fmt.Errorf("cluster: master needs a site and an app")
	}
	if cfg.Slaves <= 0 {
		return nil, fmt.Errorf("cluster: master needs a positive slave count")
	}
	m := &Master{cfg: cfg, expected: cfg.Slaves, doneCh: make(chan error, 1),
		resident: make(map[int][]int32)}
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

// Run connects to the head through dial, serves slaves on l, and
// blocks until the cluster's part of the run completes. It returns the
// final (globally reduced) object received from the head.
func (m *Master) Run(headAddr string, dial store.Dialer, l net.Listener) (gr.Reduction, error) {
	raw, err := dial("tcp", headAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: master %s: dial head: %w", m.cfg.Site, err)
	}
	m.head = wire.NewConn(raw)
	defer m.head.Close()

	if _, err := m.head.Call(&wire.Message{
		Kind: wire.KindRegisterMaster, Site: m.cfg.Site, Cores: m.cfg.Cores,
	}); err != nil {
		return nil, fmt.Errorf("cluster: master %s: register with head %s: %w", m.cfg.Site, headAddr, err)
	}
	if m.cfg.HeartbeatInterval > 0 {
		// Keep the head convinced we are alive through the long quiet
		// stretches (local combine, waiting for slow slaves).
		stop := wire.Heartbeats(m.head, m.cfg.HeartbeatInterval)
		defer stop()
	}
	m.mu.Lock()
	m.started = m.cfg.Clock.Now()
	m.mu.Unlock()

	// Accept slave connections.
	m.ln = l
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				if err := m.handleSlave(wire.NewConn(conn)); err != nil {
					m.fail(err)
				}
			}()
		}
	}()

	// Pump the head for jobs until it reports the pool dry.
	if err := m.refillLoop(); err != nil {
		m.fail(err)
	}

	// Wait for every slave's result (or a failure).
	if err := <-m.doneCh; err != nil {
		l.Close()
		m.wg.Wait()
		return nil, err
	}
	l.Close()
	m.wg.Wait()

	return m.combineAndReport()
}

func (m *Master) fail(err error) {
	m.mu.Lock()
	if m.failed == nil {
		m.failed = err
		m.headDone = true // release blocked slaves
		select {
		case m.doneCh <- err:
		default:
		}
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// refillLoop keeps the local pool topped up: whenever the queue drops
// below the watermark it requests a batch from the head, piggybacking
// completed-job acknowledgements.
func (m *Master) refillLoop() error {
	for {
		m.mu.Lock()
		for len(m.queue) >= m.cfg.Watermark && m.failed == nil {
			m.cond.Wait()
		}
		if m.failed != nil {
			m.mu.Unlock()
			return nil
		}
		completed := m.completed
		m.completed = nil
		resident, hasResident := m.residentUnionLocked()
		m.mu.Unlock()

		resp, err := m.head.Call(&wire.Message{
			Kind: wire.KindRequestJobs, Site: m.cfg.Site,
			Max: m.cfg.Batch, Completed: completed,
			Resident: resident, HasResident: hasResident,
		})
		if err != nil {
			return fmt.Errorf("cluster: master %s: request jobs: %w", m.cfg.Site, err)
		}
		if resp.Kind != wire.KindJobs {
			return fmt.Errorf("cluster: master %s: unexpected %v", m.cfg.Site, resp.Kind)
		}

		m.mu.Lock()
		m.queue = append(m.queue, resp.Jobs...)
		if resp.Done {
			m.headDone = true
		}
		m.cond.Broadcast()
		done := m.headDone
		m.mu.Unlock()
		if done {
			m.cfg.Logf("master %s: head pool dry, draining", m.cfg.Site)
			return nil
		}
	}
}

// handleSlave serves one slave connection: grant jobs until the pool
// is dry, then collect the slave's reduction object.
//
// Fault tolerance (an extension beyond the paper): a slave's completed
// jobs are only acknowledged upstream once its reduction object has
// arrived safely. If the slave dies first, every job it was ever
// granted is requeued — its partial reduction object died with it, so
// even "completed" jobs must be re-executed.
func (m *Master) handleSlave(c *wire.Conn) error {
	defer c.Close()
	addr := c.RemoteAddr()
	reg, err := c.Recv()
	if err != nil {
		return fmt.Errorf("cluster: master %s: slave %v register: %w", m.cfg.Site, addr, err)
	}
	if reg.Kind != wire.KindRegisterSlave {
		return fmt.Errorf("cluster: master %s: slave %v: expected register-slave, got %v",
			m.cfg.Site, addr, reg.Kind)
	}
	if err := c.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
		return err
	}
	if m.cfg.HeartbeatInterval > 0 {
		// A registered slave must show signs of life — a request or a
		// heartbeat — within every miss window, or Recv times out and
		// the slave is declared stalled.
		window := m.cfg.HeartbeatInterval * time.Duration(m.cfg.HeartbeatMisses)
		c.SetIdleTimeout(window)
		c.SetWriteTimeout(window)
	}

	granted := make(map[int32]wire.JobAssign)
	var completed []int32

	m.mu.Lock()
	connID := m.nextConn
	m.nextConn++
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.resident, connID)
		m.mu.Unlock()
	}()

	for {
		req, err := c.Recv()
		if err != nil {
			if wire.IsTimeout(err) {
				// The connection is still open but the slave went
				// silent: a stall, not a crash. Same recovery path —
				// everything it held is re-executed.
				m.faults.CountHeartbeatMiss()
				m.cfg.Logf("master %s: slave %v stalled (no traffic for %v), declaring lost",
					m.cfg.Site, addr, m.cfg.HeartbeatInterval*time.Duration(m.cfg.HeartbeatMisses))
			}
			m.slaveLost(granted)
			return nil
		}
		switch req.Kind {
		case wire.KindHeartbeat:
			continue // liveness only; Recv re-armed the idle deadline

		case wire.KindRequestJob:
			completed = append(completed, req.Completed...)
			if req.HasResident {
				// An empty report still replaces the previous one: a
				// drained cache must clear its stale warm set.
				m.mu.Lock()
				m.resident[connID] = req.Resident
				m.mu.Unlock()
			}
			jobs, hints, done := m.takeJobs(max(req.Max, 1))
			for _, j := range jobs {
				granted[j.Chunk] = j
			}
			if err := c.Send(&wire.Message{
				Kind: wire.KindJobGrant, Jobs: jobs, Hints: hints, Done: done,
			}); err != nil {
				m.slaveLost(granted)
				return nil
			}

		case wire.KindSlaveResult:
			completed = append(completed, req.Completed...)
			if len(completed) != len(granted) {
				return fmt.Errorf("cluster: master %s: slave %v completed %d of %d granted jobs",
					m.cfg.Site, addr, len(completed), len(granted))
			}
			obj, err := gr.DecodeReduction(m.cfg.App, req.Object)
			if err != nil {
				return fmt.Errorf("cluster: master %s: decode slave %v result: %w", m.cfg.Site, addr, err)
			}
			if err := c.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
				return err
			}
			m.mu.Lock()
			m.completed = append(m.completed, completed...)
			m.slaveObjs = append(m.slaveObjs, obj)
			m.slaveStats = append(m.slaveStats, req.Stats)
			ready := len(m.slaveObjs) == m.expected && m.failed == nil
			m.mu.Unlock()
			if ready {
				m.doneCh <- nil
			}
			return nil

		default:
			return fmt.Errorf("cluster: master %s: unexpected %v from slave %v", m.cfg.Site, req.Kind, addr)
		}
	}
}

// slaveLost requeues everything a dead slave had been granted and
// lowers the expected-result count. If no slaves remain, the cluster
// cannot finish and the run fails.
func (m *Master) slaveLost(granted map[int32]wire.JobAssign) {
	m.mu.Lock()
	for _, j := range granted {
		m.queue = append(m.queue, j)
	}
	m.expected--
	remaining := m.expected
	results := len(m.slaveObjs)
	m.cfg.Logf("master %s: slave lost, requeued %d jobs, %d slaves remain",
		m.cfg.Site, len(granted), remaining)
	m.cond.Broadcast()
	ready := remaining > 0 && results == remaining && m.failed == nil
	m.mu.Unlock()
	if remaining <= 0 {
		m.fail(fmt.Errorf("cluster: master %s: all slaves lost", m.cfg.Site))
		return
	}
	if ready {
		m.doneCh <- nil
	}
}

// takeJobs pops up to max jobs, blocking while the pool is being
// refilled; done is true only when the head has no more jobs AND the
// local queue is empty. hints is a copy of the queue front after the
// pop — the jobs most likely to be granted next — capped at HintDepth.
func (m *Master) takeJobs(max int) (jobs, hints []wire.JobAssign, done bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.headDone && m.failed == nil {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return nil, nil, true
	}
	n := len(m.queue)
	if max < n {
		n = max
	}
	jobs = append([]wire.JobAssign(nil), m.queue[:n]...)
	m.queue = m.queue[n:]
	if h := m.cfg.HintDepth; h > 0 && len(m.queue) > 0 {
		if h > len(m.queue) {
			h = len(m.queue)
		}
		hints = append([]wire.JobAssign(nil), m.queue[:h]...)
	}
	// Dropping below the watermark wakes the refill loop.
	if len(m.queue) < m.cfg.Watermark {
		m.cond.Broadcast()
	}
	return jobs, hints, false
}

// residentUnionLocked merges every slave connection's latest reported
// cache-resident chunk ids into one deduplicated set for the head. The
// second return is false only when no slave has reported at all; an
// empty union from drained caches still reports true so the head
// clears the site's stale warm set.
func (m *Master) residentUnionLocked() ([]int32, bool) {
	if len(m.resident) == 0 {
		return nil, false
	}
	seen := make(map[int32]bool)
	var out []int32
	for _, ids := range m.resident {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out, true
}

// combineAndReport performs the intra-cluster combine, ships the
// result (plus aggregated stats and any unreported completions) to the
// head, and waits for the final object.
func (m *Master) combineAndReport() (gr.Reduction, error) {
	m.mu.Lock()
	objs := m.slaveObjs
	stats := m.slaveStats
	completed := m.completed
	m.completed = nil
	started := m.started
	m.mu.Unlock()

	combined, err := gr.MergeAll(m.cfg.App, objs)
	if err != nil {
		return nil, fmt.Errorf("cluster: master %s: combine: %w", m.cfg.Site, err)
	}
	enc, err := gr.EncodeReduction(combined)
	if err != nil {
		return nil, err
	}

	var agg wire.Stats
	for _, s := range stats {
		agg.Breakdown = agg.Breakdown.Add(s.Breakdown)
	}
	// Fold in the master's own stall detections so they reach the run
	// report alongside the workers' retry counters.
	agg.Breakdown = agg.Breakdown.Add(m.faults.Snapshot())
	agg.WallEmu = int64(m.cfg.Clock.ToEmu(m.cfg.Clock.Now().Sub(started)))

	m.cfg.Logf("master %s: local combine done, %d jobs, shipping %d-byte object",
		m.cfg.Site, agg.Breakdown.JobsProcessed, len(enc))
	resp, err := m.head.Call(&wire.Message{
		Kind: wire.KindClusterResult, Site: m.cfg.Site,
		Object: enc, Stats: agg, Completed: completed,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: master %s: report: %w", m.cfg.Site, err)
	}
	if resp.Kind != wire.KindFinal {
		return nil, fmt.Errorf("cluster: master %s: expected final, got %v", m.cfg.Site, resp.Kind)
	}
	// Confirm receipt: the head charges the broadcast's (shaped)
	// transfer time to the global reduction only once this ack lands.
	if err := m.head.Send(&wire.Message{Kind: wire.KindAck}); err != nil {
		return nil, err
	}
	return gr.DecodeReduction(m.cfg.App, resp.Object)
}
