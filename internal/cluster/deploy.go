package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cloudburst/internal/chunk"
	"cloudburst/internal/elastic"
	"cloudburst/internal/faults"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
)

// SiteSpec describes one cluster of a deployment.
type SiteSpec struct {
	// Name is the site/cluster name referenced by the index's files.
	Name string
	// Cores is the number of virtual cores the site contributes.
	Cores int
	// HomeStore reads the site's own data (unshaped fast path).
	HomeStore store.Store
	// RemoteStores are (shaped) views of other sites' data, used for
	// stolen jobs.
	RemoteStores map[string]store.Store
	// HeadLink shapes the master<->head connection (the inter-cluster
	// path the reduction objects travel).
	HeadLink netsim.Link
	// SlaveLink shapes slave<->master connections (intra-cluster).
	SlaveLink netsim.Link
	// HomeFetch makes home reads use multi-threaded ranged retrieval
	// (the cloud cluster reading its object store).
	HomeFetch bool
	// Cache, when non-nil, is this site's chunk cache. It outlives the
	// run: the iterative driver installs one per site so multi-pass
	// algorithms keep chunks warm between iterations. When nil,
	// DeployConfig.CacheBytes > 0 builds a fresh per-run cache.
	Cache *store.ChunkCache
	// Buffer, when non-nil, is this site's burst buffer: a site-shared
	// chunk cache fronting the home store for HomeFetch reads, consulted
	// by every slave before S3 and staged into by the master. Like Cache
	// it outlives the run (the iterative driver installs one per site);
	// when nil, DeployConfig.BufferBytes > 0 builds a fresh per-run
	// buffer that is drained when the run completes.
	Buffer *store.SiteBuffer
	// UnitCostScale adjusts this site's per-core compute speed.
	UnitCostScale float64
	// CostJitter spreads per-core speeds by ±CostJitter (EC2-style
	// performance variability).
	CostJitter float64
}

// DeployConfig describes a whole in-process deployment: one head, one
// master per site, and each site's cores as slave workers, all
// connected over loopback TCP through shaped links.
type DeployConfig struct {
	App   gr.App
	Index *chunk.Index
	Sites []SiteSpec
	Clock netsim.Clock

	// Batch/Watermark tune master refills; GroupUnits the engine's
	// cache group; JobsPerRequest the slave's request size; Fetch the
	// remote retrieval. Zero values pick defaults.
	Batch          int
	Watermark      int
	GroupUnits     int
	JobsPerRequest int
	Fetch          store.FetchOptions
	// Prefetch turns on the slave retrieval pipeline: each core
	// requests its next grant and fetches its chunks while the current
	// grant reduces.
	Prefetch bool
	// PrefetchBudget caps each slave's in-flight prefetched bytes;
	// zero picks the slave default (64 MiB), negative is unlimited.
	PrefetchBudget int64
	// FetchAutotune replaces the static fetch thread count with
	// per-link AIMD controllers on every slave (see
	// SlaveConfig.FetchAutotune); Fetch.Threads seeds the controllers.
	FetchAutotune bool
	// HintDepth makes masters piggyback up to this many likely-next
	// jobs as prefetch hints on every grant, so slaves warm their
	// caches deeper than one grant. Zero disables hints; effective only
	// with Prefetch and a cache.
	HintDepth int
	// CacheBytes gives each site without an explicit SiteSpec.Cache a
	// per-run chunk cache of this many bytes; zero disables caching.
	CacheBytes int64
	// BufferBytes gives each HomeFetch site without an explicit
	// SiteSpec.Buffer a per-run burst buffer of this capacity fronting
	// its home store, drained when the run completes. Zero disables the
	// buffer tier. With FetchAutotune the buffer's backing fetches share
	// one site-wide AIMD budget instead of N per-slave probes.
	BufferBytes int64
	// StageBudget caps the bytes each master may proactively stage into
	// its site's burst buffer (0 = unlimited staging).
	StageBudget int64
	// Scatter disables consecutive-job assignment (ablation knob).
	Scatter bool
	// HeartbeatInterval enables stall detection throughout the tree:
	// slaves heartbeat masters, masters heartbeat the head, and each
	// server side declares a peer lost after HeartbeatMisses silent
	// intervals. Zero disables liveness (crash detection still works
	// through connection closes).
	HeartbeatInterval time.Duration
	HeartbeatMisses   int

	// Elastic enables the deadline/cost scaling controller for one
	// site: the head observes progress and issues decisions, a
	// provisioner boots 1-core join slaves after Elastic.BootLatency of
	// emulated time, and the site's master drains surplus workers. The
	// named site's SiteSpec.Cores seeds the initial membership.
	Elastic *elastic.Config

	// Revocations, when set, schedules spot preemptions against the
	// elastic site's provisioned workers: at each trace event's time one
	// live spot join slave is revoked — killed outright, or, when the
	// event carries a warning window, warned first (the slave runs its
	// accelerated drain) and killed when the window closes. Workers
	// booted on the on-demand fallback tier are exempt. Requires
	// Elastic; without provisioned spot workers events fire into the
	// void.
	Revocations *faults.RevocationTrace
	// CheckpointJobs makes every slave ship a sequence-numbered partial
	// reduction checkpoint to its master every N processed jobs; when
	// the slave dies, the master adopts the newest checkpoint and
	// re-executes only the post-checkpoint remainder. Zero disables
	// checkpointing.
	CheckpointJobs int

	// SyncMode selects the global-reduction sync strategy for every
	// tier: "monolithic" (single-frame objects, merge after the
	// all-arrivals barrier), "streamed" (bounded KindObjectPart frames,
	// serial merge overlapped with transfers), "streamed-parallel"
	// (streamed plus a worker-pool tree merge), or "streamed-sharded"
	// (streamed plus shard-level merge for apps that support it). Empty
	// picks streamed-parallel.
	SyncMode string
	// MergeCost charges every combine fold (master and head) an
	// emulated duration per byte of the folded reduction object,
	// restoring the paper-scale merge CPU the ~10,000x byte scale-down
	// erased (see gr.MergerOptions.CostPerByte). Zero charges nothing.
	MergeCost time.Duration

	Logf func(format string, args ...any)
}

// RunResult is everything a deployment run produces.
type RunResult struct {
	Report *metrics.RunReport
	// Final is the globally reduced object (head's copy).
	Final gr.Reduction
	// PerSiteFinal holds each master's decoded copy of the final
	// object (they must agree with Final; tests check).
	PerSiteFinal map[string]gr.Reduction
}

// provisioner boots additional 1-core slaves for the elastic site,
// each paying the configured emulated boot latency before it can dial
// in and join. Provisioned workers never fail the run: a worker lost
// after joining re-executes through the slave-lost path, and a boot
// that lands after the run ends is merely wasted money.
type provisioner struct {
	clock netsim.Clock
	boot  time.Duration
	logf  func(format string, args ...any)

	mu        sync.Mutex
	stopped   bool
	spawn     func(onDemand bool) error // set once the elastic site's master listens
	ready     chan struct{}             // closed when spawn is installed
	halted    chan struct{}             // closed by stop()
	slaves    []*Slave                  // every provisioned slave (hint-waste folding)
	revocable []*Slave                  // live spot join slaves (preemption victims)
	wasted    int                       // boots that arrived after the run ended
	wg        sync.WaitGroup
}

// ScaleUp implements HeadConfig.ScaleUp; it returns immediately and
// boots n workers in the background. onDemand workers are exempt from
// the revocation trace. A worker revoked mid-run did real work before
// dying, so it is not a wasted boot.
func (p *provisioner) ScaleUp(site string, n int, onDemand bool) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.clock.Sleep(p.boot) // simulated instance boot
			// An advisor warm start boots at t=0; under a fast emulated
			// clock the boot can mature before the deployment has wired
			// the elastic site's master. Such a boot is early, not
			// wasted: hold it until spawn is installed (or the run ends).
			select {
			case <-p.ready:
			case <-p.halted:
			}
			p.mu.Lock()
			spawn, stopped := p.spawn, p.stopped
			p.mu.Unlock()
			if stopped || spawn == nil {
				p.noteWasted()
				return
			}
			if err := spawn(onDemand); err != nil && !errors.Is(err, ErrRevoked) {
				p.noteWasted()
				p.logf("provisioner: %s worker boot wasted: %v", site, err)
			}
		}()
	}
}

// addRevocable registers a live spot join slave as a preemption
// victim; dropRevocable removes it when it exits for any reason.
func (p *provisioner) addRevocable(s *Slave) {
	p.mu.Lock()
	p.revocable = append(p.revocable, s)
	p.mu.Unlock()
}

func (p *provisioner) dropRevocable(s *Slave) {
	p.mu.Lock()
	for i, v := range p.revocable {
		if v == s {
			p.revocable = append(p.revocable[:i], p.revocable[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// victim pops one live spot slave for revocation, or nil when none
// remain. Popping (rather than peeking) guarantees a slave is revoked
// at most once even when trace events land close together. The oldest
// worker goes first: spot markets reclaim long-lived instances as
// readily as fresh ones, and the oldest holds the most granted work —
// the worst case the checkpoint machinery exists for.
func (p *provisioner) victim() *Slave {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.revocable) == 0 {
		return nil
	}
	s := p.revocable[0]
	p.revocable = p.revocable[1:]
	return s
}

func (p *provisioner) noteWasted() {
	p.mu.Lock()
	p.wasted++
	p.mu.Unlock()
}

func (p *provisioner) stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.halted)
	}
	p.mu.Unlock()
}

// preemptor paces a revocation trace against the provisioner's live
// spot slaves on the run's wall clock. Each event picks one victim:
// warned events arm the slave's accelerated drain and kill it when the
// warning window closes; unwarned events kill it outright. Every
// revocation is reported to the head so the elastic controller can
// re-provision (and eventually fall back to on-demand capacity).
type preemptor struct {
	clk   netsim.Clock
	trace *faults.RevocationTrace
	prov  *provisioner
	head  *Head
	logf  func(format string, args ...any)

	stop chan struct{}
	wg   sync.WaitGroup

	mu  sync.Mutex
	rep metrics.PreemptionReport // trace-side tallies only
}

func newPreemptor(clk netsim.Clock, trace *faults.RevocationTrace, prov *provisioner, head *Head, logf func(string, ...any)) *preemptor {
	p := &preemptor{clk: clk, trace: trace, prov: prov, head: head, logf: logf, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.run()
	return p
}

// sleepUntil waits (interruptibly — netsim sleeps are not) until the
// emulated trace offset at, measured from start. Returns false when
// the run ended first.
func (p *preemptor) sleepUntil(start time.Time, at time.Duration) bool {
	wait := p.clk.ToWall(at) - p.clk.Now().Sub(start)
	if wait <= 0 {
		return true
	}
	select {
	case <-time.After(wait):
		return true
	case <-p.stop:
		return false
	}
}

func (p *preemptor) run() {
	defer p.wg.Done()
	start := p.clk.Now()
	for _, ev := range p.trace.Events {
		if !p.sleepUntil(start, ev.At) {
			return
		}
		v := p.prov.victim()
		if v == nil {
			p.logf("preemptor: %s revocation at %v skipped, no live spot worker", p.trace.Site, ev.At)
			continue
		}
		if ev.Warned() {
			p.logf("preemptor: %s spot worker warned, %v to drain", p.trace.Site, ev.Warning)
			v.PreemptWarn(ev.Warning)
			p.note(func(r *metrics.PreemptionReport) { r.Revocations++; r.Warned++ })
			p.head.NoteRevocation(p.trace.Site, 1, true)
			// The kill lands when the warning window closes, whether or
			// not the drain finished; a run that ends first leaves the
			// kill moot but the drain outcome still counts.
			p.wg.Add(1)
			go func(v *Slave, warning time.Duration) {
				defer p.wg.Done()
				select {
				case <-time.After(p.clk.ToWall(warning)):
					v.Kill()
				case <-p.stop:
				}
				p.note(func(r *metrics.PreemptionReport) {
					if v.DrainFlushed() {
						r.DrainsCompleted++
					} else {
						r.DrainsAborted++
					}
				})
			}(v, ev.Warning)
		} else {
			p.logf("preemptor: %s spot worker revoked without warning", p.trace.Site)
			v.Kill()
			p.note(func(r *metrics.PreemptionReport) { r.Revocations++; r.Unwarned++ })
			p.head.NoteRevocation(p.trace.Site, 1, false)
		}
	}
}

func (p *preemptor) note(f func(*metrics.PreemptionReport)) {
	p.mu.Lock()
	f(&p.rep)
	p.mu.Unlock()
}

// halt stops the event loop and pending kills, then returns the
// trace-side tallies.
func (p *preemptor) halt() metrics.PreemptionReport {
	close(p.stop)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rep
}

// Run executes one complete job: it starts the head, masters, and
// slaves, processes every chunk of the index, performs local and
// global reductions, and returns the merged result and the run report.
func Run(cfg DeployConfig) (*RunResult, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("cluster: deployment needs at least one site")
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.Instant()
	}
	if _, err := resolveSyncMode(cfg.SyncMode); err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var ctrl *elastic.Controller
	var prov *provisioner
	if cfg.Elastic != nil {
		ecfg := *cfg.Elastic
		if ecfg.Workers == nil {
			ecfg.Workers = make(map[string]int, len(cfg.Sites))
			for _, s := range cfg.Sites {
				ecfg.Workers[s.Name] = s.Cores
			}
		}
		if ecfg.Logf == nil {
			ecfg.Logf = cfg.Logf
		}
		ctrl = elastic.New(ecfg)
		prov = &provisioner{
			clock: cfg.Clock, boot: ecfg.BootLatency, logf: logf,
			ready: make(chan struct{}), halted: make(chan struct{}),
		}
	}
	if cfg.Revocations != nil && len(cfg.Revocations.Events) > 0 && prov == nil {
		return nil, fmt.Errorf("cluster: revocation trace needs elastic provisioning (no spot workers without it)")
	}

	head, err := NewHead(HeadConfig{
		App: cfg.App, Index: cfg.Index, Clusters: len(cfg.Sites),
		Scatter: cfg.Scatter, Clock: cfg.Clock, Logf: cfg.Logf,
		SyncMode: cfg.SyncMode, MergeCost: cfg.MergeCost,
		HeartbeatInterval: cfg.HeartbeatInterval, HeartbeatMisses: cfg.HeartbeatMisses,
		Elastic: ctrl, ScaleUp: func() func(string, int, bool) {
			if prov == nil {
				return nil
			}
			return prov.ScaleUp
		}(),
	})
	if err != nil {
		return nil, err
	}
	headLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	head.Serve(headLn)
	headAddr := headLn.Addr().String()

	result := &RunResult{PerSiteFinal: make(map[string]gr.Reduction)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var slaves []*Slave // every static slave (hint-waste folding)
	// bufferState tracks each site's burst buffer for post-run stats
	// folding and (for per-run buffers) draining. startBacking remembers
	// the backing-bytes counter at run start, so a persistent buffer
	// carried across iterations contributes only this run's delta.
	type bufferState struct {
		buf          *store.SiteBuffer
		perRun       bool
		startBacking int64
	}
	var buffers []bufferState
	errs := make(chan error, 2*len(cfg.Sites))

	for _, site := range cfg.Sites {
		// A persistent site cache brings its own pool (so recycled
		// buffers keep flowing across iterations); otherwise the slave
		// gets a per-run pool, and a per-run cache when CacheBytes asks
		// for one.
		cache := site.Cache
		pool := cache.Pool()
		if pool == nil {
			pool = store.NewBufferPool()
		}
		if cache == nil && cfg.CacheBytes > 0 {
			cache = store.NewChunkCache(cfg.CacheBytes, pool)
		}
		// The burst buffer follows the same persistence rule. Only
		// HomeFetch sites get one: it fronts the site's own object
		// store, which local-disk sites do not have.
		buffer := site.Buffer
		perRunBuffer := false
		if buffer == nil && cfg.BufferBytes > 0 && site.HomeFetch {
			fetch := cfg.Fetch
			if fetch.Threads == 0 && fetch.RangeSize == 0 {
				fetch = store.DefaultFetchOptions()
			}
			fetch.Clock = cfg.Clock
			buffer = store.NewSiteBuffer(store.SiteBufferConfig{
				Site: site.Name, Backing: site.HomeStore, Capacity: cfg.BufferBytes,
				Fetch: fetch, Pool: pool, Autotune: cfg.FetchAutotune,
			})
			perRunBuffer = true
		}
		if buffer != nil {
			buffers = append(buffers, bufferState{
				buf: buffer, perRun: perRunBuffer,
				startBacking: buffer.Stats().BackingBytes,
			})
		}

		masterCfg := MasterConfig{
			Site: site.Name, App: cfg.App, Cores: site.Cores, Slaves: site.Cores,
			Batch: cfg.Batch, Watermark: cfg.Watermark, HintDepth: cfg.HintDepth,
			Clock: cfg.Clock, Logf: cfg.Logf,
			HeartbeatInterval: cfg.HeartbeatInterval, HeartbeatMisses: cfg.HeartbeatMisses,
			StageBudget: cfg.StageBudget,
			SyncMode:    cfg.SyncMode,
			MergeCost:   cfg.MergeCost,
		}
		if buffer != nil {
			// Typed-nil care: assign the interface only when a buffer
			// exists, so Buffer == nil stays a valid "no staging" check.
			masterCfg.Buffer = buffer
		}
		master, err := NewMaster(masterCfg)
		if err != nil {
			headLn.Close()
			return nil, err
		}
		masterLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			headLn.Close()
			return nil, err
		}
		headShaper := netsim.NewShaper(cfg.Clock, site.HeadLink)
		slaveShaper := netsim.NewShaper(cfg.Clock, site.SlaveLink)

		wg.Add(1)
		go func(site SiteSpec) {
			defer wg.Done()
			final, err := master.Run(headAddr, headShaper.DialerBoth(), masterLn)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			result.PerSiteFinal[site.Name] = final
			mu.Unlock()
		}(site)

		slaveCfg := SlaveConfig{
			Site: site.Name, App: cfg.App, Cores: site.Cores,
			HomeStore: site.HomeStore, RemoteStores: site.RemoteStores,
			Fetch: cfg.Fetch, FetchAutotune: cfg.FetchAutotune,
			GroupUnits:     cfg.GroupUnits,
			JobsPerRequest: cfg.JobsPerRequest,
			HomeFetch:      site.HomeFetch, UnitCostScale: site.UnitCostScale,
			CostJitter: site.CostJitter,
			Prefetch:   cfg.Prefetch, PrefetchBudget: cfg.PrefetchBudget,
			Cache: cache, Pool: pool,
			CheckpointJobs:    cfg.CheckpointJobs,
			HeartbeatInterval: cfg.HeartbeatInterval,
			SyncMode:          cfg.SyncMode,
			Clock:             cfg.Clock, Logf: cfg.Logf,
		}
		if buffer != nil {
			slaveCfg.Buffer = buffer
		}
		slave, err := NewSlave(slaveCfg)
		if err != nil {
			headLn.Close()
			return nil, err
		}
		slaves = append(slaves, slave)
		wg.Add(1)
		go func(site SiteSpec, addr string) {
			defer wg.Done()
			if _, err := slave.Run(addr, store.Dialer(slaveShaper.DialerBoth())); err != nil {
				errs <- err
			}
		}(site, masterLn.Addr().String())

		// The elastic site's provisioner spawns 1-core join slaves that
		// share the site's cache, pool, and shaped master link.
		if prov != nil && site.Name == cfg.Elastic.Site {
			spawnCfg := SlaveConfig{
				Site: site.Name, App: cfg.App, Cores: 1, Join: true,
				HomeStore: site.HomeStore, RemoteStores: site.RemoteStores,
				Fetch: cfg.Fetch, FetchAutotune: cfg.FetchAutotune,
				GroupUnits:     cfg.GroupUnits,
				JobsPerRequest: cfg.JobsPerRequest,
				HomeFetch:      site.HomeFetch, UnitCostScale: site.UnitCostScale,
				CostJitter: site.CostJitter,
				Prefetch:   cfg.Prefetch, PrefetchBudget: cfg.PrefetchBudget,
				Cache: cache, Pool: pool,
				CheckpointJobs:    cfg.CheckpointJobs,
				HeartbeatInterval: cfg.HeartbeatInterval,
				SyncMode:          cfg.SyncMode,
				Clock:             cfg.Clock, Logf: cfg.Logf,
			}
			if buffer != nil {
				spawnCfg.Buffer = buffer
			}
			masterAddr := masterLn.Addr().String()
			dial := store.Dialer(slaveShaper.DialerBoth())
			revoking := cfg.Revocations != nil && len(cfg.Revocations.Events) > 0
			prov.mu.Lock()
			prov.spawn = func(onDemand bool) error {
				js, err := NewSlave(spawnCfg)
				if err != nil {
					return err
				}
				prov.mu.Lock()
				prov.slaves = append(prov.slaves, js)
				prov.mu.Unlock()
				if revoking && !onDemand {
					prov.addRevocable(js)
					defer prov.dropRevocable(js)
				}
				_, err = js.Run(masterAddr, dial)
				return err
			}
			prov.mu.Unlock()
			close(prov.ready) // release early warm-start boots
		}
	}
	if prov != nil && prov.spawn == nil {
		headLn.Close()
		return nil, fmt.Errorf("cluster: elastic site %q not in deployment", cfg.Elastic.Site)
	}
	var pre *preemptor
	if cfg.Revocations != nil && len(cfg.Revocations.Events) > 0 {
		pre = newPreemptor(cfg.Clock, cfg.Revocations, prov, head, logf)
	}

	report, final, err := head.Wait()
	var preRep metrics.PreemptionReport
	if pre != nil {
		preRep = pre.halt()
	}
	if prov != nil {
		prov.stop()
		prov.wg.Wait()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		// Revoked workers died on schedule; their work recovers through
		// checkpoint adoption and re-execution, not by failing the run.
		if err == nil && !errors.Is(e, ErrRevoked) {
			err = e
		}
	}
	if err != nil {
		return nil, err
	}
	if preRep.Revocations > 0 && report != nil {
		// Graft the trace-side tallies onto the counter-derived report
		// the head assembled (created here when no counters fired).
		if report.Preemption == nil {
			report.Preemption = &metrics.PreemptionReport{}
		}
		report.Preemption.Revocations = preRep.Revocations
		report.Preemption.Warned = preRep.Warned
		report.Preemption.Unwarned = preRep.Unwarned
		report.Preemption.DrainsCompleted = preRep.DrainsCompleted
		report.Preemption.DrainsAborted = preRep.DrainsAborted
	}
	result.Report = report
	result.Final = final
	if prov != nil {
		slaves = append(slaves, prov.slaves...)
		if report.Elastic != nil {
			report.Elastic.WastedBoots = prov.wasted
		}
	}
	// Hints the slaves warmed but never got granted are wasted remote
	// bytes; fold them into the retrieval report.
	for _, s := range slaves {
		chunks, bytes := s.HintWaste()
		report.Retrieval.WastedHints += chunks
		report.Retrieval.WastedWarmBytes += bytes
	}
	// The buffers' backing-store traffic is the run's true remote egress
	// through the buffer tier (everything above it was absorbed by
	// sharing); fold this run's delta in, then drain per-run buffers —
	// persistent ones stay warm for the driver's next iteration.
	for _, bs := range buffers {
		report.Retrieval.BufferBackingBytes += bs.buf.Stats().BackingBytes - bs.startBacking
		if bs.perRun {
			bs.buf.Drain()
		}
	}
	// Annotate core counts (the head does not know them).
	for i := range report.Clusters {
		for _, site := range cfg.Sites {
			if site.Name == report.Clusters[i].Site {
				report.Clusters[i].Cores = site.Cores
			}
		}
	}
	return result, nil
}
