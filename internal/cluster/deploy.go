package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cloudburst/internal/chunk"
	"cloudburst/internal/elastic"
	"cloudburst/internal/gr"
	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
	"cloudburst/internal/store"
)

// SiteSpec describes one cluster of a deployment.
type SiteSpec struct {
	// Name is the site/cluster name referenced by the index's files.
	Name string
	// Cores is the number of virtual cores the site contributes.
	Cores int
	// HomeStore reads the site's own data (unshaped fast path).
	HomeStore store.Store
	// RemoteStores are (shaped) views of other sites' data, used for
	// stolen jobs.
	RemoteStores map[string]store.Store
	// HeadLink shapes the master<->head connection (the inter-cluster
	// path the reduction objects travel).
	HeadLink netsim.Link
	// SlaveLink shapes slave<->master connections (intra-cluster).
	SlaveLink netsim.Link
	// HomeFetch makes home reads use multi-threaded ranged retrieval
	// (the cloud cluster reading its object store).
	HomeFetch bool
	// Cache, when non-nil, is this site's chunk cache. It outlives the
	// run: the iterative driver installs one per site so multi-pass
	// algorithms keep chunks warm between iterations. When nil,
	// DeployConfig.CacheBytes > 0 builds a fresh per-run cache.
	Cache *store.ChunkCache
	// UnitCostScale adjusts this site's per-core compute speed.
	UnitCostScale float64
	// CostJitter spreads per-core speeds by ±CostJitter (EC2-style
	// performance variability).
	CostJitter float64
}

// DeployConfig describes a whole in-process deployment: one head, one
// master per site, and each site's cores as slave workers, all
// connected over loopback TCP through shaped links.
type DeployConfig struct {
	App   gr.App
	Index *chunk.Index
	Sites []SiteSpec
	Clock netsim.Clock

	// Batch/Watermark tune master refills; GroupUnits the engine's
	// cache group; JobsPerRequest the slave's request size; Fetch the
	// remote retrieval. Zero values pick defaults.
	Batch          int
	Watermark      int
	GroupUnits     int
	JobsPerRequest int
	Fetch          store.FetchOptions
	// Prefetch turns on the slave retrieval pipeline: each core
	// requests its next grant and fetches its chunks while the current
	// grant reduces.
	Prefetch bool
	// PrefetchBudget caps each slave's in-flight prefetched bytes;
	// zero picks the slave default (64 MiB), negative is unlimited.
	PrefetchBudget int64
	// FetchAutotune replaces the static fetch thread count with
	// per-link AIMD controllers on every slave (see
	// SlaveConfig.FetchAutotune); Fetch.Threads seeds the controllers.
	FetchAutotune bool
	// HintDepth makes masters piggyback up to this many likely-next
	// jobs as prefetch hints on every grant, so slaves warm their
	// caches deeper than one grant. Zero disables hints; effective only
	// with Prefetch and a cache.
	HintDepth int
	// CacheBytes gives each site without an explicit SiteSpec.Cache a
	// per-run chunk cache of this many bytes; zero disables caching.
	CacheBytes int64
	// Scatter disables consecutive-job assignment (ablation knob).
	Scatter bool
	// HeartbeatInterval enables stall detection throughout the tree:
	// slaves heartbeat masters, masters heartbeat the head, and each
	// server side declares a peer lost after HeartbeatMisses silent
	// intervals. Zero disables liveness (crash detection still works
	// through connection closes).
	HeartbeatInterval time.Duration
	HeartbeatMisses   int

	// Elastic enables the deadline/cost scaling controller for one
	// site: the head observes progress and issues decisions, a
	// provisioner boots 1-core join slaves after Elastic.BootLatency of
	// emulated time, and the site's master drains surplus workers. The
	// named site's SiteSpec.Cores seeds the initial membership.
	Elastic *elastic.Config

	Logf func(format string, args ...any)
}

// RunResult is everything a deployment run produces.
type RunResult struct {
	Report *metrics.RunReport
	// Final is the globally reduced object (head's copy).
	Final gr.Reduction
	// PerSiteFinal holds each master's decoded copy of the final
	// object (they must agree with Final; tests check).
	PerSiteFinal map[string]gr.Reduction
}

// provisioner boots additional 1-core slaves for the elastic site,
// each paying the configured emulated boot latency before it can dial
// in and join. Provisioned workers never fail the run: a worker lost
// after joining re-executes through the slave-lost path, and a boot
// that lands after the run ends is merely wasted money.
type provisioner struct {
	clock netsim.Clock
	boot  time.Duration
	logf  func(format string, args ...any)

	mu      sync.Mutex
	stopped bool
	spawn   func() error // set once the elastic site's master listens
	slaves  []*Slave     // every provisioned slave (hint-waste folding)
	wasted  int          // boots that arrived after the run ended
	wg      sync.WaitGroup
}

// ScaleUp implements HeadConfig.ScaleUp; it returns immediately and
// boots n workers in the background.
func (p *provisioner) ScaleUp(site string, n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.clock.Sleep(p.boot) // simulated instance boot
			p.mu.Lock()
			spawn, stopped := p.spawn, p.stopped
			p.mu.Unlock()
			if stopped || spawn == nil {
				p.noteWasted()
				return
			}
			if err := spawn(); err != nil {
				p.noteWasted()
				p.logf("provisioner: %s worker boot wasted: %v", site, err)
			}
		}()
	}
}

func (p *provisioner) noteWasted() {
	p.mu.Lock()
	p.wasted++
	p.mu.Unlock()
}

func (p *provisioner) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

// Run executes one complete job: it starts the head, masters, and
// slaves, processes every chunk of the index, performs local and
// global reductions, and returns the merged result and the run report.
func Run(cfg DeployConfig) (*RunResult, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("cluster: deployment needs at least one site")
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.Instant()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var ctrl *elastic.Controller
	var prov *provisioner
	if cfg.Elastic != nil {
		ecfg := *cfg.Elastic
		if ecfg.Workers == nil {
			ecfg.Workers = make(map[string]int, len(cfg.Sites))
			for _, s := range cfg.Sites {
				ecfg.Workers[s.Name] = s.Cores
			}
		}
		if ecfg.Logf == nil {
			ecfg.Logf = cfg.Logf
		}
		ctrl = elastic.New(ecfg)
		prov = &provisioner{clock: cfg.Clock, boot: ecfg.BootLatency, logf: logf}
	}

	head, err := NewHead(HeadConfig{
		App: cfg.App, Index: cfg.Index, Clusters: len(cfg.Sites),
		Scatter: cfg.Scatter, Clock: cfg.Clock, Logf: cfg.Logf,
		HeartbeatInterval: cfg.HeartbeatInterval, HeartbeatMisses: cfg.HeartbeatMisses,
		Elastic: ctrl, ScaleUp: func() func(string, int) {
			if prov == nil {
				return nil
			}
			return prov.ScaleUp
		}(),
	})
	if err != nil {
		return nil, err
	}
	headLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	head.Serve(headLn)
	headAddr := headLn.Addr().String()

	result := &RunResult{PerSiteFinal: make(map[string]gr.Reduction)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var slaves []*Slave // every static slave (hint-waste folding)
	errs := make(chan error, 2*len(cfg.Sites))

	for _, site := range cfg.Sites {
		master, err := NewMaster(MasterConfig{
			Site: site.Name, App: cfg.App, Cores: site.Cores, Slaves: site.Cores,
			Batch: cfg.Batch, Watermark: cfg.Watermark, HintDepth: cfg.HintDepth,
			Clock: cfg.Clock, Logf: cfg.Logf,
			HeartbeatInterval: cfg.HeartbeatInterval, HeartbeatMisses: cfg.HeartbeatMisses,
		})
		if err != nil {
			headLn.Close()
			return nil, err
		}
		masterLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			headLn.Close()
			return nil, err
		}
		headShaper := netsim.NewShaper(cfg.Clock, site.HeadLink)
		slaveShaper := netsim.NewShaper(cfg.Clock, site.SlaveLink)

		wg.Add(1)
		go func(site SiteSpec) {
			defer wg.Done()
			final, err := master.Run(headAddr, headShaper.DialerBoth(), masterLn)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			result.PerSiteFinal[site.Name] = final
			mu.Unlock()
		}(site)

		// A persistent site cache brings its own pool (so recycled
		// buffers keep flowing across iterations); otherwise the slave
		// gets a per-run pool, and a per-run cache when CacheBytes asks
		// for one.
		cache := site.Cache
		pool := cache.Pool()
		if pool == nil {
			pool = store.NewBufferPool()
		}
		if cache == nil && cfg.CacheBytes > 0 {
			cache = store.NewChunkCache(cfg.CacheBytes, pool)
		}
		slave, err := NewSlave(SlaveConfig{
			Site: site.Name, App: cfg.App, Cores: site.Cores,
			HomeStore: site.HomeStore, RemoteStores: site.RemoteStores,
			Fetch: cfg.Fetch, FetchAutotune: cfg.FetchAutotune,
			GroupUnits:     cfg.GroupUnits,
			JobsPerRequest: cfg.JobsPerRequest,
			HomeFetch:      site.HomeFetch, UnitCostScale: site.UnitCostScale,
			CostJitter: site.CostJitter,
			Prefetch:   cfg.Prefetch, PrefetchBudget: cfg.PrefetchBudget,
			Cache: cache, Pool: pool,
			HeartbeatInterval: cfg.HeartbeatInterval,
			Clock:             cfg.Clock, Logf: cfg.Logf,
		})
		if err != nil {
			headLn.Close()
			return nil, err
		}
		slaves = append(slaves, slave)
		wg.Add(1)
		go func(site SiteSpec, addr string) {
			defer wg.Done()
			if _, err := slave.Run(addr, store.Dialer(slaveShaper.DialerBoth())); err != nil {
				errs <- err
			}
		}(site, masterLn.Addr().String())

		// The elastic site's provisioner spawns 1-core join slaves that
		// share the site's cache, pool, and shaped master link.
		if prov != nil && site.Name == cfg.Elastic.Site {
			spawnCfg := SlaveConfig{
				Site: site.Name, App: cfg.App, Cores: 1, Join: true,
				HomeStore: site.HomeStore, RemoteStores: site.RemoteStores,
				Fetch: cfg.Fetch, FetchAutotune: cfg.FetchAutotune,
				GroupUnits:     cfg.GroupUnits,
				JobsPerRequest: cfg.JobsPerRequest,
				HomeFetch:      site.HomeFetch, UnitCostScale: site.UnitCostScale,
				CostJitter: site.CostJitter,
				Prefetch:   cfg.Prefetch, PrefetchBudget: cfg.PrefetchBudget,
				Cache: cache, Pool: pool,
				HeartbeatInterval: cfg.HeartbeatInterval,
				Clock:             cfg.Clock, Logf: cfg.Logf,
			}
			masterAddr := masterLn.Addr().String()
			dial := store.Dialer(slaveShaper.DialerBoth())
			prov.mu.Lock()
			prov.spawn = func() error {
				js, err := NewSlave(spawnCfg)
				if err != nil {
					return err
				}
				prov.mu.Lock()
				prov.slaves = append(prov.slaves, js)
				prov.mu.Unlock()
				_, err = js.Run(masterAddr, dial)
				return err
			}
			prov.mu.Unlock()
		}
	}
	if prov != nil && prov.spawn == nil {
		headLn.Close()
		return nil, fmt.Errorf("cluster: elastic site %q not in deployment", cfg.Elastic.Site)
	}

	report, final, err := head.Wait()
	if prov != nil {
		prov.stop()
		prov.wg.Wait()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		if err == nil {
			err = e
		}
	}
	if err != nil {
		return nil, err
	}
	result.Report = report
	result.Final = final
	if prov != nil {
		slaves = append(slaves, prov.slaves...)
		if report.Elastic != nil {
			report.Elastic.WastedBoots = prov.wasted
		}
	}
	// Hints the slaves warmed but never got granted are wasted remote
	// bytes; fold them into the retrieval report.
	for _, s := range slaves {
		chunks, bytes := s.HintWaste()
		report.Retrieval.WastedHints += chunks
		report.Retrieval.WastedWarmBytes += bytes
	}
	// Annotate core counts (the head does not know them).
	for i := range report.Clusters {
		for _, site := range cfg.Sites {
			if site.Name == report.Clusters[i].Site {
				report.Clusters[i].Cores = site.Cores
			}
		}
	}
	return result, nil
}
