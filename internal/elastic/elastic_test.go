package elastic

import (
	"math"
	"testing"
	"time"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func base(deadline time.Duration) Config {
	return Config{
		Site:        "cloud",
		Deadline:    deadline,
		MinWorkers:  1,
		MaxWorkers:  8,
		StepUp:      2,
		BootLatency: 5 * time.Second,
		Interval:    time.Second,
		Margin:      1.15,
		Workers:     map[string]int{"local": 4, "cloud": 2},
	}
}

func TestScaleUpWhenDeadlineAtRisk(t *testing.T) {
	c := New(base(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	// 10s in: 20 local + 10 cloud done, 970 left. Current throughput
	// ~2.5 jobs/s projects far past the 100s deadline. The first
	// observation lands inside the decision interval (gated), so the
	// second one decides with both rate samples on the books.
	c.Observe("local", 20, sec(0.5), 980)
	ds := c.Observe("cloud", 10, sec(10), 970)
	if len(ds) != 1 {
		t.Fatalf("decisions = %v, want one scale-up", ds)
	}
	d := ds[0]
	if d.Site != "cloud" || d.Delta != 2 || d.Target != 4 {
		t.Fatalf("decision = %+v, want cloud +2 -> 4", d)
	}
}

func TestDecisionIntervalGates(t *testing.T) {
	c := New(base(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	c.Observe("local", 20, sec(0.5), 980)
	if ds := c.Observe("cloud", 10, sec(10), 970); len(ds) == 0 {
		t.Fatal("expected initial scale-up")
	}
	// Within the decision interval: no further action even though the
	// deadline is still at risk.
	if ds := c.Observe("local", 2, sec(10.5), 968); len(ds) != 0 {
		t.Fatalf("decision inside interval: %v", ds)
	}
}

func TestScaleUpCappedAtMax(t *testing.T) {
	c := New(base(40 * time.Second))
	c.Start(10000, map[string]int{"local": 5000, "cloud": 5000})
	target := 2
	for i := 1; i <= 20; i++ {
		el := sec(float64(10 + i))
		for _, d := range c.Observe("local", 5, el, 10000-10*i) {
			if d.Delta <= 0 {
				t.Fatalf("unexpected scale-down %+v", d)
			}
			target = d.Target
		}
	}
	if target != 8 {
		t.Fatalf("final target = %d, want MaxWorkers (8)", target)
	}
}

func TestScaleDownOnSurplus(t *testing.T) {
	cfg := base(10000 * time.Second)
	cfg.Workers = map[string]int{"local": 4, "cloud": 8}
	c := New(cfg)
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	c.Observe("local", 20, sec(0.5), 980)
	// First surplus verdict only opens the streak — a single optimistic
	// window must not shed capacity.
	if ds := c.Observe("cloud", 40, sec(10), 940); len(ds) != 0 {
		t.Fatalf("drained on first surplus window: %v", ds)
	}
	// Second consecutive surplus verdict drains, capped at StepDown
	// (defaulted from StepUp = 2): 8 -> 6, not straight to MinWorkers.
	ds := c.Observe("cloud", 10, sec(12), 930)
	if len(ds) != 1 {
		t.Fatalf("decisions = %v, want one scale-down", ds)
	}
	d := ds[0]
	if d.Delta != -2 || d.Target != 6 {
		t.Fatalf("decision = %+v, want cloud -2 -> 6", d)
	}
}

func TestNoScaleDownWhileBootPending(t *testing.T) {
	c := New(base(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	c.Observe("local", 20, sec(0.5), 980)
	if ds := c.Observe("cloud", 10, sec(10), 970); len(ds) != 1 || ds[0].Delta <= 0 {
		t.Fatalf("expected scale-up, got %v", ds)
	}
	// Sudden flood of completions makes the surplus obvious, but the
	// booted capacity hasn't matured: hold the drain.
	if ds := c.Observe("local", 900, sec(12), 70); len(ds) != 0 {
		t.Fatalf("scale-down before boot matured: %v", ds)
	}
}

func TestNoScaleUpForShortTail(t *testing.T) {
	c := New(base(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	c.Observe("local", 400, sec(0.5), 590)
	// ~1s of work left at the measured ~10 jobs/s; the 5s boot latency
	// cannot pay for itself even though the deadline is already blown.
	if ds := c.Observe("cloud", 580, sec(99), 10); len(ds) != 0 {
		t.Fatalf("booted for a short tail: %v", ds)
	}
}

func TestInstantClockElapsedNeverDecides(t *testing.T) {
	c := New(base(time.Second))
	c.Start(100, map[string]int{"local": 50, "cloud": 50})
	for i := 0; i < 10; i++ {
		if ds := c.Observe("cloud", 5, 0, 100-5*i); len(ds) != 0 {
			t.Fatalf("decision at zero elapsed: %v", ds)
		}
	}
}

func TestBillingIntegralAndCost(t *testing.T) {
	cfg := base(0) // no deadline: accounting only
	cfg.InstanceRate = 0.36
	cfg.EgressRate = 0.12
	c := New(cfg)
	c.Start(100, map[string]int{"local": 50, "cloud": 50})
	c.Observe("cloud", 10, sec(40), 90)
	r := c.Report(sec(100), 1<<30)
	if math.Abs(r.InstanceSecs-200) > 1e-6 { // 2 workers x 100s
		t.Fatalf("InstanceSecs = %v, want 200", r.InstanceSecs)
	}
	wantInst := 200.0 / 3600 * 0.36
	if math.Abs(r.InstanceUSD-wantInst) > 1e-9 {
		t.Fatalf("InstanceUSD = %v, want %v", r.InstanceUSD, wantInst)
	}
	if math.Abs(r.EgressUSD-0.12) > 1e-9 { // exactly one GiB
		t.Fatalf("EgressUSD = %v, want 0.12", r.EgressUSD)
	}
	if !r.MetDeadline {
		t.Fatal("no deadline set should count as met")
	}
}

func TestBootedInstancesBilledFromLaunch(t *testing.T) {
	c := New(base(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	c.Observe("local", 20, sec(0.5), 980)
	if ds := c.Observe("cloud", 10, sec(10), 970); len(ds) != 1 {
		t.Fatalf("expected scale-up, got %v", ds)
	}
	r := c.Report(sec(20), 0)
	// 2 workers for 10s, then 4 commanded (2 still booting) for 10s.
	if math.Abs(r.InstanceSecs-60) > 1e-6 {
		t.Fatalf("InstanceSecs = %v, want 60", r.InstanceSecs)
	}
	if r.Boots != 2 || r.Peak != 4 || len(r.Events) != 1 {
		t.Fatalf("report = boots=%d peak=%d events=%d, want 2/4/1", r.Boots, r.Peak, len(r.Events))
	}
	if r.MetDeadline != true {
		t.Fatal("run finished at 20s with a 100s deadline: met")
	}
}

func TestWastedBootsCounted(t *testing.T) {
	c := New(base(0))
	c.Start(10, map[string]int{"local": 5, "cloud": 5})
	c.NoteWastedBoot(3)
	if r := c.Report(sec(1), 0); r.WastedBoots != 3 {
		t.Fatalf("WastedBoots = %d, want 3", r.WastedBoots)
	}
}

func TestStaticCostHelperMatchesController(t *testing.T) {
	inst, eg, total := Cost(7200, 2<<30, 0.17, 0.12)
	if math.Abs(inst-0.34) > 1e-9 || math.Abs(eg-0.24) > 1e-9 || math.Abs(total-0.58) > 1e-9 {
		t.Fatalf("Cost = %v %v %v", inst, eg, total)
	}
}

func spotBase(deadline time.Duration) Config {
	cfg := base(deadline)
	cfg.InstanceRate = 0.68
	cfg.SpotRate = 0.2
	cfg.OnDemandFallback = 2
	return cfg
}

func TestNoteRevocationReplacesCapacity(t *testing.T) {
	c := New(spotBase(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	// Grow the spot slice first so there is something to revoke.
	c.Observe("local", 20, sec(0.5), 980)
	if ds := c.Observe("cloud", 10, sec(10), 970); len(ds) != 1 || ds[0].OnDemand {
		t.Fatalf("initial scale-up = %v, want one spot boot", ds)
	}
	ds := c.NoteRevocation("cloud", 1, true, sec(12))
	if len(ds) != 1 {
		t.Fatalf("revocation decisions = %v, want one replacement boot", ds)
	}
	d := ds[0]
	if d.Delta != 1 || d.Target != 4 || d.OnDemand {
		t.Fatalf("replacement = %+v, want +1 -> 4 on spot (first revocation under fallback=2)", d)
	}
	rep := c.Report(sec(90), 0)
	if rep.Revocations != 1 || rep.WarnedRevs != 1 || rep.Replacements != 1 {
		t.Fatalf("report revs=%d warned=%d repl=%d, want 1/1/1",
			rep.Revocations, rep.WarnedRevs, rep.Replacements)
	}
}

func TestOnDemandFallbackAfterRepeatedRevocations(t *testing.T) {
	c := New(spotBase(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	c.Observe("local", 20, sec(0.5), 980)
	if ds := c.Observe("cloud", 10, sec(10), 970); len(ds) != 1 {
		t.Fatalf("want initial scale-up, got %v", ds)
	}
	// First revocation: below the fallback threshold, replaced on spot.
	ds := c.NoteRevocation("cloud", 1, false, sec(12))
	if len(ds) != 1 || ds[0].OnDemand {
		t.Fatalf("first replacement = %v, want spot", ds)
	}
	// Second revocation reaches OnDemandFallback=2: replacement must be
	// on-demand, and so must any later growth.
	ds = c.NoteRevocation("cloud", 1, false, sec(14))
	if len(ds) != 1 || !ds[0].OnDemand {
		t.Fatalf("second replacement = %v, want on-demand", ds)
	}
	rep := c.Report(sec(90), 0)
	if rep.OnDemandWorkers < 3 {
		t.Fatalf("on-demand workers = %d, want seed 2 + 1 fallback replacement", rep.OnDemandWorkers)
	}
	if rep.Revocations != 2 {
		t.Fatalf("revocations = %d, want 2", rep.Revocations)
	}
}

func TestRevocationClampedToSpotSlice(t *testing.T) {
	c := New(spotBase(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	// No boots yet: the whole fleet is the on-demand seed, so a trace
	// firing early has nothing to revoke.
	if ds := c.NoteRevocation("cloud", 1, false, sec(5)); len(ds) != 0 {
		t.Fatalf("revocation of on-demand seed produced decisions: %v", ds)
	}
	if rep := c.Report(sec(10), 0); rep.Revocations != 0 {
		t.Fatalf("clamped revocation still counted: %d", rep.Revocations)
	}
}

func TestSpotBillingSplit(t *testing.T) {
	c := New(spotBase(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	// Boot 2 spot workers at t=10 (seed 2 stays on-demand).
	c.Observe("local", 20, sec(0.5), 980)
	if ds := c.Observe("cloud", 10, sec(10), 970); len(ds) != 1 || ds[0].Delta != 2 {
		t.Fatalf("want +2 boot, got %v", ds)
	}
	rep := c.Report(sec(20), 0)
	// On-demand: 2 workers x 20s = 40 od-secs. Spot: 2 workers from
	// t=10 -> 20 spot-secs. Totals must add up exactly.
	if math.Abs(rep.OnDemandSecs-40) > 1e-9 || math.Abs(rep.SpotSecs-20) > 1e-9 {
		t.Fatalf("od=%v spot=%v, want 40/20", rep.OnDemandSecs, rep.SpotSecs)
	}
	if math.Abs(rep.InstanceSecs-(rep.OnDemandSecs+rep.SpotSecs)) > 1e-9 {
		t.Fatalf("instance=%v != od+spot=%v", rep.InstanceSecs, rep.OnDemandSecs+rep.SpotSecs)
	}
	wantSpotUSD := 20.0 / 3600 * 0.2
	wantODUSD := 40.0 / 3600 * 0.68
	if math.Abs(rep.SpotUSD-wantSpotUSD) > 1e-9 || math.Abs(rep.OnDemandUSD-wantODUSD) > 1e-9 {
		t.Fatalf("spotUSD=%v odUSD=%v, want %v/%v", rep.SpotUSD, rep.OnDemandUSD, wantSpotUSD, wantODUSD)
	}
	if math.Abs(rep.InstanceUSD-(wantSpotUSD+wantODUSD)) > 1e-9 {
		t.Fatalf("instanceUSD=%v, want tier sum %v", rep.InstanceUSD, wantSpotUSD+wantODUSD)
	}
	// Spot pricing must undercut an all-on-demand bill for the same
	// instance-seconds — the whole point of riding the spot market.
	allOD := rep.InstanceSecs / 3600 * 0.68
	if rep.InstanceUSD >= allOD {
		t.Fatalf("tiered bill %v not below all-on-demand %v", rep.InstanceUSD, allOD)
	}
}

func TestSpotDisabledKeepsLegacyBilling(t *testing.T) {
	c := New(base(100 * time.Second))
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	c.Observe("local", 20, sec(0.5), 980)
	c.Observe("cloud", 10, sec(10), 970)
	if ds := c.NoteRevocation("cloud", 1, false, sec(12)); len(ds) != 0 {
		t.Fatalf("spot-disabled controller issued revocation decisions: %v", ds)
	}
	rep := c.Report(sec(20), 0)
	if rep.SpotSecs != 0 || rep.OnDemandSecs != 0 || rep.Revocations != 0 {
		t.Fatalf("spot fields leaked into spot-disabled report: %+v", rep)
	}
}

func TestWarmStartSeedsCapacity(t *testing.T) {
	cfg := base(100 * time.Second)
	cfg.SeedWorkers = 6
	c := New(cfg)
	ds := c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	if len(ds) != 1 {
		t.Fatalf("decisions = %v, want one warm-start boot", ds)
	}
	d := ds[0]
	if d.Site != "cloud" || d.Delta != 4 || d.Target != 6 {
		t.Fatalf("decision = %+v, want cloud +4 -> 6", d)
	}
	if d.Reason != "advisor warm start" {
		t.Fatalf("reason = %q, want advisor warm start", d.Reason)
	}
	rep := c.Report(sec(20), 0)
	if rep.SeededWorkers != 4 || rep.Boots != 4 {
		t.Fatalf("seeded=%d boots=%d, want 4/4", rep.SeededWorkers, rep.Boots)
	}
	if len(rep.Events) == 0 || rep.Events[0].Reason != "advisor warm start" || rep.Events[0].AtEmu != 0 {
		t.Fatalf("events[0] = %+v, want warm start at t=0", rep.Events)
	}
}

func TestWarmStartClampedToMaxWorkers(t *testing.T) {
	cfg := base(100 * time.Second)
	cfg.SeedWorkers = 50 // far above MaxWorkers (8)
	c := New(cfg)
	ds := c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	if len(ds) != 1 || ds[0].Target != 8 {
		t.Fatalf("decisions = %v, want target clamped to 8", ds)
	}
}

func TestWarmStartRefusedByCostCap(t *testing.T) {
	cfg := base(100 * time.Second)
	cfg.SeedWorkers = 6
	cfg.InstanceRate = 0.68
	cfg.CostCapUSD = 0.0001 // cannot afford even one extra core to the deadline
	c := New(cfg)
	if ds := c.Start(1000, map[string]int{"local": 500, "cloud": 500}); len(ds) != 0 {
		t.Fatalf("cost-capped warm start still booted: %v", ds)
	}
	rep := c.Report(sec(20), 0)
	if rep.SeededWorkers != 0 || rep.CostCapHits == 0 {
		t.Fatalf("seeded=%d capHits=%d, want 0 seeded and cap hits recorded", rep.SeededWorkers, rep.CostCapHits)
	}
}

func TestCostCapRefusesScaleUp(t *testing.T) {
	cfg := base(100 * time.Second)
	cfg.InstanceRate = 0.68
	cfg.CostCapUSD = 0.0001
	c := New(cfg)
	c.Start(1000, map[string]int{"local": 500, "cloud": 500})
	// Same deadline-at-risk sequence that normally triggers a +2 boot.
	c.Observe("local", 20, sec(0.5), 980)
	if ds := c.Observe("cloud", 10, sec(10), 970); len(ds) != 0 {
		t.Fatalf("cost-capped controller still scaled up: %v", ds)
	}
	rep := c.Report(sec(20), 0)
	if rep.CostCapHits == 0 {
		t.Fatal("refused scale-up not counted in CostCapHits")
	}
	if rep.Boots != 0 {
		t.Fatalf("boots = %d, want 0 under cap", rep.Boots)
	}
}
