// Package elastic implements the head-side scaling controller that
// turns cloud bursting from a deployment-time choice into a runtime
// decision. The controller watches per-site completion rates and the
// remaining pool depth, maintains an ETA estimate for the run,
// compares it against a deadline, and decides how many cloud workers
// the run should hold at each moment: scale up (boot instances, paid
// from launch and useless until boot latency passes) when the ETA
// slips past the deadline, scale down (drain workers) when the ETA has
// comfortable slack. Cost is accounted in emulated instance-seconds
// plus per-GiB cross-site egress, mirroring the EC2 pricing the paper
// ran against.
//
// The controller is deliberately time-source-free: callers feed it
// emulated elapsed durations, so it works identically under scaled,
// real, and instant clocks (instant clocks report zero elapsed time
// and the controller simply never acts — unit tests drive it with
// synthetic durations instead).
package elastic

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudburst/internal/metrics"
)

// Config parameterizes a Controller.
type Config struct {
	// Site is the elastic (cloud) site whose worker count is scaled.
	Site string
	// Deadline is the emulated wall-time target for the run. Zero
	// disables scaling decisions (the controller still accounts cost).
	Deadline time.Duration
	// MinWorkers and MaxWorkers bound the commanded worker count.
	// MinWorkers is clamped to at least 1: a site master must always
	// keep one live worker or its queue could strand work.
	MinWorkers int
	MaxWorkers int
	// StepUp caps how many workers one decision may boot (default 2);
	// ramping in steps lets the next rate sample confirm the trend
	// before more money is committed.
	StepUp int
	// StepDown caps how many workers one decision may drain (default
	// StepUp). Draining gradually keeps a mistaken surplus call cheap:
	// capacity given up must be re-bought at boot latency.
	StepDown int
	// BootLatency is the emulated delay between a boot decision and the
	// instance contributing work. Booting instances are billed.
	BootLatency time.Duration
	// Interval is the minimum emulated time between decisions (default
	// Deadline/15, or 1s when no deadline is set).
	Interval time.Duration
	// Margin shrinks the deadline budget the ETA is compared against
	// (default 1.15): the run aims to finish Margin times faster than
	// strictly required, absorbing estimation error.
	Margin float64
	// InstanceRate is USD per worker per emulated hour; EgressRate is
	// USD per GiB crossing sites.
	InstanceRate float64
	EgressRate   float64
	// SpotRate is USD per spot worker per emulated hour. Zero disables
	// the spot tier: every worker bills at InstanceRate and decisions
	// never mark capacity on-demand. When set, the initial fleet is
	// billed on-demand (the static seed) and boots are cheap spot
	// capacity — until revocations force the on-demand fallback.
	SpotRate float64
	// SeedWorkers, when above the scaled site's initial worker count,
	// warm-starts the fleet: Start immediately commands a boot up to
	// this size (uncapped by StepUp — the whole point is skipping the
	// reactive ramp), typically from an advisor plan sized on run
	// history. The live controller keeps full authority afterwards: a
	// bad seed is corrected by the same rate-driven decisions that
	// would have grown a cold fleet.
	SeedWorkers int
	// CostCapUSD caps the projected instance bill: scale-ups whose
	// projected billing integral (time already billed plus the proposed
	// fleet carried to its projected finish, priced at InstanceRate)
	// would exceed the cap are trimmed or refused, even with the
	// deadline at risk. Zero disables the cap.
	CostCapUSD float64
	// OnDemandFallback is how many revocations the controller tolerates
	// before it stops re-buying spot capacity and boots replacement and
	// growth workers on-demand instead (default 3). On-demand workers
	// cost more but cannot be revoked, so a run that keeps losing spot
	// capacity still converges on its deadline.
	OnDemandFallback int
	// Workers maps every site to its initial worker count. The scaled
	// site's entry seeds the commanded count; the rest contribute the
	// "other capacity" half of the ETA model.
	Workers map[string]int
	// Logf receives decision traces; nil disables.
	Logf func(format string, args ...any)
}

// Decision is one scaling action the caller must apply: boot Delta new
// workers (Delta > 0, via the provisioner) or retire -Delta workers
// (Delta < 0, via the drain protocol).
type Decision struct {
	Site   string
	Delta  int
	Target int // commanded workers after this decision
	Reason string
	// OnDemand marks booted capacity (Delta > 0) as non-revocable
	// on-demand instances rather than spot; the provisioner must keep
	// such workers off the revocation trace's victim list.
	OnDemand bool
}

type bootRec struct {
	ready time.Duration // emulated elapsed time the workers come online
	n     int
}

// Controller tracks run progress and issues scaling decisions. All
// methods are safe for concurrent use.
type Controller struct {
	cfg Config

	mu           sync.Mutex
	started      bool
	total        int
	homeCloud    int // jobs whose data lives at the scaled site
	done         int
	siteDone     map[string]int
	otherWorkers int // fixed workers at non-scaled sites

	target       int // commanded workers at cfg.Site, booting included
	contributing int // commanded workers past boot latency
	pendingBoots []bootRec
	peak         int

	lastEmu    time.Duration // accrual frontier
	lastDecide time.Duration
	holdUntil  time.Duration // no scale-down until boots mature + settle

	// Windowed rate model: per-decision deltas folded into EMAs, so the
	// ETA tracks phase changes (a site finishing its home data and
	// falling back to slow cross-site stealing) instead of trusting the
	// whole-run average. prev* snapshot the last decision's counters.
	rateOther   float64 // EMA jobs/s across the non-scaled sites
	ratePer     float64 // EMA per-worker jobs/s at the scaled site
	haveRates   bool
	prevOther   int
	prevCloud   int
	prevContrib float64
	// downStreak counts consecutive surplus verdicts; draining waits
	// for two, so one optimistic window cannot shed real capacity.
	downStreak int

	instanceSecs float64 // integral of target over emulated seconds
	contribSecs  float64 // integral of contributing (rate estimation)

	// Spot-tier state (active when cfg.SpotRate > 0). odTarget is the
	// on-demand slice of target; the rest is revocable spot capacity.
	// odSecs integrates odTarget the way instanceSecs integrates target,
	// so the billing split follows tier changes exactly.
	odTarget     int
	odSecs       float64
	revocations  int
	warnedRevs   int
	replacements int

	events  []metrics.ScaleEvent
	boots   int
	drains  int
	wasted  int
	seeded  int // workers warm-start-booted by Start (advisor seed)
	capHits int // scale-ups trimmed or refused by CostCapUSD
}

// New builds a controller; zero config fields take the documented
// defaults.
func New(cfg Config) *Controller {
	if cfg.MinWorkers < 1 {
		cfg.MinWorkers = 1
	}
	if cfg.MaxWorkers < cfg.MinWorkers {
		cfg.MaxWorkers = cfg.MinWorkers
	}
	if cfg.StepUp <= 0 {
		cfg.StepUp = 2
	}
	if cfg.StepDown <= 0 {
		cfg.StepDown = cfg.StepUp
	}
	if cfg.Margin <= 1 {
		cfg.Margin = 1.15
	}
	if cfg.OnDemandFallback <= 0 {
		cfg.OnDemandFallback = 3
	}
	if cfg.Interval <= 0 {
		if cfg.Deadline > 0 {
			cfg.Interval = cfg.Deadline / 15
		} else {
			cfg.Interval = time.Second
		}
	}
	return &Controller{cfg: cfg, siteDone: make(map[string]int)}
}

// Start arms the controller with the run's total job count, the
// per-home-site job composition (jobsByHome maps each site to the
// number of jobs whose data lives there), and the initial membership
// from cfg.Workers. The composition matters: the scaled site is sized
// against its own backlog, because cross-site stealing over the WAN is
// too slow for one side's capacity to meaningfully absorb the other
// side's work.
//
// When cfg.SeedWorkers exceeds the initial membership, Start issues a
// warm-start boot up to the seed (the advisor's plan replacing the
// cold-start ramp) and returns it for the caller to apply; otherwise
// the returned slice is empty.
func (c *Controller) Start(totalJobs int, jobsByHome map[string]int) []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	c.total = totalJobs
	c.homeCloud = jobsByHome[c.cfg.Site]
	c.target = c.cfg.Workers[c.cfg.Site]
	c.contributing = c.target
	c.peak = c.target
	if c.cfg.SpotRate > 0 {
		// The statically deployed seed is on-demand; only capacity the
		// controller boots later rides the spot market.
		c.odTarget = c.target
	}
	c.otherWorkers = 0
	for site, n := range c.cfg.Workers {
		if site != c.cfg.Site {
			c.otherWorkers += n
		}
	}
	c.logf("elastic: start total=%d %s=%d other=%d deadline=%v",
		totalJobs, c.cfg.Site, c.target, c.otherWorkers, c.cfg.Deadline)

	seed := c.cfg.SeedWorkers
	if seed > c.cfg.MaxWorkers {
		seed = c.cfg.MaxWorkers
	}
	if c.cfg.Deadline <= 0 || seed <= c.target {
		return nil
	}
	// Warm start: command the advised fleet now instead of discovering
	// it one reactive step at a time. The cost cap still binds — a seed
	// the budget cannot carry to the deadline is trimmed before a
	// single instance launches.
	step := seed - c.target
	if c.cfg.CostCapUSD > 0 {
		for step > 0 && c.projectedCostLocked(c.target+step, 0, c.cfg.Deadline.Seconds()) > c.cfg.CostCapUSD {
			step--
			c.capHits++
		}
		if step <= 0 {
			c.logf("elastic: warm-start seed refused by $%.4f cost cap", c.cfg.CostCapUSD)
			return nil
		}
	}
	from := c.target
	c.target += step
	c.boots += step
	c.seeded = step
	od := c.onDemandTierLocked()
	if od {
		c.odTarget += step
	}
	if c.target > c.peak {
		c.peak = c.target
	}
	c.pendingBoots = append(c.pendingBoots, bootRec{ready: c.cfg.BootLatency, n: step})
	c.holdUntil = c.cfg.BootLatency + c.cfg.Interval
	c.eventLocked(0, from, c.target, ReasonWarmStart)
	return []Decision{{Site: c.cfg.Site, Delta: step, Target: c.target, Reason: ReasonWarmStart, OnDemand: od}}
}

// ReasonWarmStart tags the advisor-seeded boot Start issues, so report
// consumers can separate the planned warm start from the reactive
// mid-run ramp it replaces.
const ReasonWarmStart = "advisor warm start"

// projectedCostLocked prices the projected billing integral: what has
// already been billed plus n workers carried from elapsed time el to
// the projected finish, at the on-demand instance rate (conservative
// when a spot tier discounts part of the fleet).
func (c *Controller) projectedCostLocked(n int, el, finish float64) float64 {
	secs := c.instanceSecs
	if finish > el {
		secs += float64(n) * (finish - el)
	}
	return secs / 3600 * c.cfg.InstanceRate
}

// Observe feeds a completion batch from site at the given emulated
// elapsed time, with the pool's remaining (uncompleted) job count, and
// returns any scaling decisions due. Decisions are already applied to
// the controller's own bookkeeping; the caller applies them to the
// cluster.
func (c *Controller) Observe(site string, completed int, elapsed time.Duration, remaining int) []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return nil
	}
	if elapsed < c.lastEmu {
		elapsed = c.lastEmu // concurrent observers may land out of order
	}
	c.accrueLocked(elapsed)
	c.done += completed
	c.siteDone[site] += completed
	return c.decideLocked(elapsed, remaining)
}

func (c *Controller) decideLocked(elapsed time.Duration, remaining int) []Decision {
	if c.cfg.Deadline <= 0 || remaining <= 0 || elapsed.Seconds() <= 0 {
		return nil
	}
	if elapsed < c.lastDecide+c.cfg.Interval {
		return nil
	}
	prev := c.lastDecide
	c.lastDecide = elapsed

	el := elapsed.Seconds()
	cloudDone := c.siteDone[c.cfg.Site]
	otherDone := c.done - cloudDone

	// Fold this window's rates into the EMAs. The first sample is the
	// lifetime average (prev counters start at zero).
	dt := (elapsed - prev).Seconds()
	instOther := float64(otherDone-c.prevOther) / dt
	dContrib := c.contribSecs - c.prevContrib
	var instPer float64
	if dContrib > 0 {
		instPer = float64(cloudDone-c.prevCloud) / dContrib
	}
	c.prevOther, c.prevCloud, c.prevContrib = otherDone, cloudDone, c.contribSecs
	if !c.haveRates {
		c.rateOther, c.haveRates = instOther, true
	} else {
		c.rateOther = emaAlpha*instOther + (1-emaAlpha)*c.rateOther
	}
	if dContrib > 0 {
		if c.ratePer == 0 {
			c.ratePer = instPer
		} else {
			c.ratePer = emaAlpha*instPer + (1-emaAlpha)*c.ratePer
		}
	}

	otherRate := c.rateOther
	perWorker := c.ratePer
	switch {
	case perWorker > 0:
	case otherRate > 0 && c.otherWorkers > 0:
		// No cloud signal yet: assume parity with the measured
		// per-worker rate of the static sites.
		perWorker = otherRate / float64(c.otherWorkers)
	default:
		return nil // no rate signal at all yet
	}

	budget := c.cfg.Deadline.Seconds() / c.cfg.Margin

	// The scaled site is sized against its own remaining backlog (a
	// no-sharing makespan model): booting cloud workers cannot absorb
	// the other sites' work at a useful rate, because stolen chunks
	// cross the WAN orders of magnitude slower than home reads. remC
	// approximates the scaled site's backlog as its home jobs minus its
	// completions — stealing in either direction skews it conservative,
	// which errs toward keeping capacity.
	remC := c.homeCloud - cloudDone
	if remC > remaining {
		remC = remaining
	}
	if remC < 0 {
		remC = 0
	}
	eta := func(n int) float64 {
		if remC == 0 {
			return 0 // nothing left on this side at any fleet size
		}
		r := float64(n) * perWorker
		if r <= 0 {
			return budget + 1 // unbounded: any n fails the budget
		}
		t := el + float64(remC)/r
		if n > c.target {
			t += c.cfg.BootLatency.Seconds() // new capacity arrives late
		}
		return t
	}

	// Minimal worker count whose projected finish fits the budget;
	// best-effort Max when even that misses.
	need := c.cfg.MaxWorkers
	for n := c.cfg.MinWorkers; n <= c.cfg.MaxWorkers; n++ {
		if eta(n) <= budget {
			need = n
			break
		}
	}

	switch {
	case need > c.target:
		c.downStreak = 0
		// Don't pay a boot for a tail shorter than the boot itself.
		if cur := float64(c.target) * perWorker; cur > 0 &&
			float64(remC)/cur < 2*c.cfg.BootLatency.Seconds() {
			return nil
		}
		step := need - c.target
		if step > c.cfg.StepUp {
			step = c.cfg.StepUp
		}
		if c.cfg.CostCapUSD > 0 {
			// Refuse (or trim) growth whose projected bill busts the cap:
			// the already-billed integral plus the proposed fleet carried
			// to its own projected finish. Under a cap the deadline is the
			// soft constraint, the budget the hard one.
			trimmed := false
			for step > 0 && c.projectedCostLocked(c.target+step, el, eta(c.target+step)) > c.cfg.CostCapUSD {
				step--
				trimmed = true
			}
			if trimmed {
				c.capHits++
			}
			if step <= 0 {
				c.logf("elastic: t=%v scale-up to %d refused by $%.4f cost cap",
					elapsed.Round(time.Millisecond), need, c.cfg.CostCapUSD)
				return nil
			}
		}
		from := c.target
		c.target += step
		c.boots += step
		od := c.onDemandTierLocked()
		if od {
			c.odTarget += step
		}
		if c.target > c.peak {
			c.peak = c.target
		}
		c.pendingBoots = append(c.pendingBoots, bootRec{ready: elapsed + c.cfg.BootLatency, n: step})
		c.holdUntil = elapsed + c.cfg.BootLatency + c.cfg.Interval
		reason := "deadline at risk"
		if od {
			reason = "deadline at risk (on-demand)"
		}
		c.eventLocked(elapsed, from, c.target, reason)
		return []Decision{{Site: c.cfg.Site, Delta: step, Target: c.target, Reason: reason, OnDemand: od}}

	case need < c.target:
		if elapsed < c.holdUntil || len(c.pendingBoots) > 0 {
			c.downStreak = 0
			return nil // let booted capacity prove itself first
		}
		c.downStreak++
		if c.downStreak < 2 {
			return nil // one optimistic window doesn't prove surplus
		}
		k := c.target - need
		if k > c.cfg.StepDown {
			k = c.cfg.StepDown
		}
		from := c.target
		c.target -= k
		// Retire spot capacity first: it is cheaper to re-buy and is the
		// slice that can vanish on its own anyway.
		if spot := c.target + k - c.odTarget; k > spot {
			c.odTarget -= k - spot
		}
		c.contributing = c.target
		c.drains += k
		c.eventLocked(elapsed, from, c.target, "surplus capacity")
		return []Decision{{Site: c.cfg.Site, Delta: -k, Target: c.target, Reason: "surplus capacity"}}
	default:
		c.downStreak = 0
	}
	return nil
}

// emaAlpha weights the newest rate window when folding it into the
// EMAs; 0.5 forgets a finished phase within a couple of decisions.
const emaAlpha = 0.5

// accrueLocked advances the billing and rate integrals to now,
// splitting segments at boot-maturity points so booting instances bill
// from launch but only count toward throughput once online.
func (c *Controller) accrueLocked(now time.Duration) {
	t := c.lastEmu
	for len(c.pendingBoots) > 0 && c.pendingBoots[0].ready <= now {
		b := c.pendingBoots[0]
		c.pendingBoots = c.pendingBoots[1:]
		at := b.ready
		if at < t {
			at = t
		}
		seg := (at - t).Seconds()
		c.instanceSecs += float64(c.target) * seg
		c.odSecs += float64(c.odTarget) * seg
		c.contribSecs += float64(c.contributing) * seg
		c.contributing += b.n
		t = at
	}
	if now > t {
		seg := (now - t).Seconds()
		c.instanceSecs += float64(c.target) * seg
		c.odSecs += float64(c.odTarget) * seg
		c.contribSecs += float64(c.contributing) * seg
	}
	if now > c.lastEmu {
		c.lastEmu = now
	}
}

func (c *Controller) eventLocked(at time.Duration, from, to int, reason string) {
	c.events = append(c.events, metrics.ScaleEvent{
		AtEmu: at, Site: c.cfg.Site, From: from, To: to, Reason: reason,
	})
	c.logf("elastic: t=%v %s %d -> %d (%s)", at.Round(time.Millisecond), c.cfg.Site, from, to, reason)
}

// onDemandTierLocked reports whether new capacity should be bought
// on-demand: the spot tier is configured and the run has already been
// burned by enough revocations to stop trusting the spot market.
func (c *Controller) onDemandTierLocked() bool {
	return c.cfg.SpotRate > 0 && c.revocations >= c.cfg.OnDemandFallback
}

// NoteRevocation tells the controller n spot workers at site were
// revoked at the given emulated elapsed time (warned marks revocations
// that granted a drain window). The controller books the loss and
// issues a replacement boot so the fleet recovers its commanded size —
// on the spot tier while revocations are rare, on-demand once
// OnDemandFallback revocations have shown the spot market is hostile.
// The returned decisions are applied to the controller's bookkeeping;
// the caller boots the instances.
func (c *Controller) NoteRevocation(site string, n int, warned bool, elapsed time.Duration) []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started || site != c.cfg.Site || n <= 0 || c.cfg.SpotRate <= 0 {
		// Without a spot tier there is no revocable capacity to replace;
		// the loss still recovers through re-execution.
		return nil
	}
	c.accrueLocked(elapsed)
	// Only the spot slice is revocable; clamp in case a stale trace
	// fires after drains already shrank the fleet.
	if spot := c.target - c.odTarget; n > spot {
		n = spot
	}
	if n <= 0 {
		return nil
	}
	c.revocations += n
	if warned {
		c.warnedRevs += n
	}
	from := c.target
	c.target -= n
	if c.contributing > c.target {
		c.contributing = c.target
	}
	c.eventLocked(elapsed, from, c.target, "spot revoked")

	// Replace the lost capacity. The revoked workers' backlog has been
	// requeued, so the fleet the last deadline decision sized is still
	// the fleet the run needs.
	repl := n
	if c.cfg.MaxWorkers > 0 && c.target+repl > c.cfg.MaxWorkers {
		repl = c.cfg.MaxWorkers - c.target
	}
	if repl <= 0 {
		return nil
	}
	od := c.onDemandTierLocked()
	from = c.target
	c.target += repl
	c.replacements += repl
	if od {
		c.odTarget += repl
	}
	if c.target > c.peak {
		c.peak = c.target
	}
	c.pendingBoots = append(c.pendingBoots, bootRec{ready: elapsed + c.cfg.BootLatency, n: repl})
	c.holdUntil = elapsed + c.cfg.BootLatency + c.cfg.Interval
	c.downStreak = 0
	reason := "replace revoked spot"
	if od {
		reason = "replace revoked spot (on-demand)"
	}
	c.eventLocked(elapsed, from, c.target, reason)
	return []Decision{{Site: c.cfg.Site, Delta: repl, Target: c.target, Reason: reason, OnDemand: od}}
}

// NoteWastedBoot records instances whose boot completed only after the
// run ended — money spent on capacity that never worked.
func (c *Controller) NoteWastedBoot(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wasted += n
}

// Report closes the accounting at the run's final emulated elapsed
// time and returns the summary, pricing instance time and the given
// cross-site egress byte count.
func (c *Controller) Report(finalElapsed time.Duration, egressBytes int64) *metrics.ElasticReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accrueLocked(finalElapsed)
	events := make([]metrics.ScaleEvent, len(c.events))
	copy(events, c.events)
	sort.Slice(events, func(i, j int) bool { return events[i].AtEmu < events[j].AtEmu })
	instUSD, egUSD, total := Cost(c.instanceSecs, egressBytes, c.cfg.InstanceRate, c.cfg.EgressRate)
	rep := &metrics.ElasticReport{
		Site:          c.cfg.Site,
		Deadline:      c.cfg.Deadline,
		MetDeadline:   c.cfg.Deadline <= 0 || finalElapsed <= c.cfg.Deadline,
		Workers:       c.target,
		Peak:          c.peak,
		Boots:         c.boots,
		Drains:        c.drains,
		WastedBoots:   c.wasted,
		SeededWorkers: c.seeded,
		CostCapHits:   c.capHits,
		Events:        events,
		InstanceSecs:  c.instanceSecs,
		EgressBytes:   egressBytes,
		InstanceUSD:   instUSD,
		EgressUSD:     egUSD,
		TotalUSD:      total,
	}
	if c.cfg.SpotRate > 0 {
		spotSecs := c.instanceSecs - c.odSecs
		if spotSecs < 0 {
			spotSecs = 0
		}
		rep.Revocations = c.revocations
		rep.WarnedRevs = c.warnedRevs
		rep.Replacements = c.replacements
		rep.OnDemandWorkers = c.odTarget
		rep.SpotSecs = spotSecs
		rep.OnDemandSecs = c.odSecs
		rep.SpotUSD = spotSecs / 3600 * c.cfg.SpotRate
		rep.OnDemandUSD = c.odSecs / 3600 * c.cfg.InstanceRate
		rep.InstanceUSD = rep.SpotUSD + rep.OnDemandUSD
		rep.TotalUSD = rep.InstanceUSD + rep.EgressUSD
	}
	return rep
}

// Cost prices instance time (emulated seconds, per-second billing) and
// egress under the given rates. Shared with the bench harness so
// static deployments are priced identically to elastic ones.
func Cost(instanceSecs float64, egressBytes int64, instanceRate, egressRate float64) (instUSD, egressUSD, totalUSD float64) {
	instUSD = instanceSecs / 3600 * instanceRate
	egressUSD = float64(egressBytes) / (1 << 30) * egressRate
	return instUSD, egressUSD, instUSD + egressUSD
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// String renders a compact one-line summary of a report, used by the
// CLI tools.
func String(r *metrics.ElasticReport) string {
	if r == nil {
		return "elastic: off"
	}
	met := "met"
	if !r.MetDeadline {
		met = "MISSED"
	}
	return fmt.Sprintf("elastic[%s]: deadline %v %s, workers end=%d peak=%d boots=%d drains=%d, cost $%.4f (inst $%.4f + egress $%.4f)",
		r.Site, r.Deadline, met, r.Workers, r.Peak, r.Boots, r.Drains, r.TotalUSD, r.InstanceUSD, r.EgressUSD)
}
