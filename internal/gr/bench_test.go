package gr

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the generalized reduction engine: raw local
// reduction throughput without pacing.

func benchEngine(b *testing.B, group int) {
	data, _ := sumData(100_000, 1)
	e := NewEngine(sumApp{}, EngineOptions{GroupUnits: group})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := &sumRed{}
		if _, err := e.ProcessChunk(red, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessChunk measures unpaced local-reduction throughput at
// several cache-group sizes.
func BenchmarkProcessChunk(b *testing.B) {
	for _, group := range []int{64, 1024, 4096, 65536} {
		b.Run(fmt.Sprintf("group-%d", group), func(b *testing.B) {
			benchEngine(b, group)
		})
	}
}

// BenchmarkTopKConsider measures the knn reduction object's hot path.
func BenchmarkTopKConsider(b *testing.B) {
	tk := NewTopK(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Consider(Scored{ID: int64(i), Score: float64(i % 9973)})
	}
}

// BenchmarkVectorSumMerge measures the pagerank-style large-object
// global reduction.
func BenchmarkVectorSumMerge(b *testing.B) {
	const n = 75_000 // the calibrated pagerank rank vector
	a, o := NewVectorSum(n), NewVectorSum(n)
	for i := range o.V {
		o.V[i] = float64(i)
	}
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReductionCodec measures reduction-object serialization (the
// inter-cluster transfer payload).
func BenchmarkReductionCodec(b *testing.B) {
	s := NewVectorSum(75_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := EncodeReduction(vecReduction{s})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(enc)))
	}
}

// vecReduction adapts VectorSum for the codec benchmark.
type vecReduction struct{ *VectorSum }

func (v vecReduction) Update(unit []byte) error    { return nil }
func (v vecReduction) Merge(other Reduction) error { return nil }
