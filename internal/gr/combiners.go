package gr

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// This file provides the "common combination functions already
// implemented in the generalized reduction system library (such as
// aggregation, concatenation, etc.)" the paper's API section
// describes. Applications embed or compose these instead of writing
// Merge/Encode/Decode by hand.

// VectorSum is a reduction object that sums fixed-length float64
// vectors element-wise (aggregation).
type VectorSum struct {
	V []float64
}

// NewVectorSum allocates an n-element accumulator.
func NewVectorSum(n int) *VectorSum { return &VectorSum{V: make([]float64, n)} }

// Add folds one vector into the accumulator.
func (s *VectorSum) Add(v []float64) error {
	if len(v) != len(s.V) {
		return fmt.Errorf("gr: vector length %d != %d", len(v), len(s.V))
	}
	for i, x := range v {
		s.V[i] += x
	}
	return nil
}

// Merge implements the global-reduction fold for VectorSum.
func (s *VectorSum) Merge(other *VectorSum) error { return s.Add(other.V) }

// Encode writes the vector in little-endian binary.
func (s *VectorSum) Encode(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(s.V))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s.V)
}

// Decode restores the vector.
func (s *VectorSum) Decode(r io.Reader) error {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n < 0 || n > 1<<30 {
		return fmt.Errorf("gr: bad vector length %d", n)
	}
	s.V = make([]float64, n)
	return binary.Read(r, binary.LittleEndian, s.V)
}

// Bytes reports the accumulator's approximate size.
func (s *VectorSum) Bytes() int { return 8 * len(s.V) }

// Vector sharding: the accumulator splits into contiguous index
// ranges so two same-length vectors can be merged shard-parallel with
// zero copies. Shard sizing targets ~16K elements (128 KB) per shard —
// big enough to amortize goroutine dispatch, small enough that large
// rank vectors expose real parallelism.
const (
	vectorShardUnit = 16384
	vectorShardMax  = 64
)

// Shards reports how many index-range shards the vector splits into.
func (s *VectorSum) Shards() int {
	n := len(s.V) / vectorShardUnit
	if n < 1 {
		n = 1
	}
	if n > vectorShardMax {
		n = vectorShardMax
	}
	return n
}

// MergeShard folds shard i of other into shard i of the receiver.
// Distinct shards touch disjoint index ranges, so calls with distinct
// i values are safe to run concurrently.
func (s *VectorSum) MergeShard(i int, other *VectorSum) error {
	if len(other.V) != len(s.V) {
		return fmt.Errorf("gr: vector length %d != %d", len(other.V), len(s.V))
	}
	shards := s.Shards()
	if i < 0 || i >= shards {
		return fmt.Errorf("gr: vector shard %d of %d", i, shards)
	}
	lo := i * len(s.V) / shards
	hi := (i + 1) * len(s.V) / shards
	for j := lo; j < hi; j++ {
		s.V[j] += other.V[j]
	}
	return nil
}

// counterShards fixes the hash-partition count of a ShardedCounter.
// It is part of the encoding (each shard ships separately), so it
// must not change without a decode migration.
const counterShards = 16

// ShardedCounter counts occurrences by string key across fixed hash
// partitions, so two counters merge shard-parallel: distinct shards
// hold disjoint key sets (same FNV partition function on both sides),
// which makes concurrent MergeShard calls safe — something a single
// Go map can never offer.
type ShardedCounter struct {
	shards [counterShards]map[string]int64
}

// NewShardedCounter allocates an empty sharded counter.
func NewShardedCounter() *ShardedCounter {
	c := &ShardedCounter{}
	for i := range c.shards {
		c.shards[i] = make(map[string]int64)
	}
	return c
}

// counterShardOf maps a key to its shard (FNV-1a).
func counterShardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % counterShards)
}

// Inc adds delta to key's count.
func (c *ShardedCounter) Inc(key string, delta int64) {
	c.shards[counterShardOf(key)][key] += delta
}

// Shards reports the fixed hash-partition count.
func (c *ShardedCounter) Shards() int { return counterShards }

// Merge folds other's counts into c (all shards).
func (c *ShardedCounter) Merge(other *ShardedCounter) error {
	for i := range c.shards {
		if err := c.MergeShard(i, other); err != nil {
			return err
		}
	}
	return nil
}

// MergeShard folds shard i of other into shard i of c. Distinct
// shards hold disjoint keys, so calls with distinct i values are safe
// to run concurrently.
func (c *ShardedCounter) MergeShard(i int, other *ShardedCounter) error {
	if i < 0 || i >= counterShards {
		return fmt.Errorf("gr: counter shard %d of %d", i, counterShards)
	}
	for k, v := range other.shards[i] {
		c.shards[i][k] += v
	}
	return nil
}

// Counts materializes the merged key->count map (the Counter-shaped
// accessor applications and examples read results through).
func (c *ShardedCounter) Counts() map[string]int64 {
	n := 0
	for i := range c.shards {
		n += len(c.shards[i])
	}
	out := make(map[string]int64, n)
	for i := range c.shards {
		for k, v := range c.shards[i] {
			out[k] = v
		}
	}
	return out
}

// Len reports the number of distinct keys without materializing.
func (c *ShardedCounter) Len() int {
	n := 0
	for i := range c.shards {
		n += len(c.shards[i])
	}
	return n
}

// Total sums every count without materializing.
func (c *ShardedCounter) Total() int64 {
	var n int64
	for i := range c.shards {
		for _, v := range c.shards[i] {
			n += v
		}
	}
	return n
}

// Encode gob-encodes the shard slice.
func (c *ShardedCounter) Encode(w io.Writer) error {
	shards := make([]map[string]int64, counterShards)
	for i := range c.shards {
		shards[i] = c.shards[i]
	}
	return gob.NewEncoder(w).Encode(shards)
}

// Decode restores the shards. Keys are re-hashed on the way in, so a
// peer with a different (future) shard constant still decodes into
// the local partitioning.
func (c *ShardedCounter) Decode(r io.Reader) error {
	var shards []map[string]int64
	if err := gob.NewDecoder(r).Decode(&shards); err != nil {
		return err
	}
	for i := range c.shards {
		c.shards[i] = make(map[string]int64)
	}
	for _, m := range shards {
		for k, v := range m {
			c.Inc(k, v)
		}
	}
	return nil
}

// Bytes estimates the counter's size.
func (c *ShardedCounter) Bytes() int {
	n := 0
	for i := range c.shards {
		for k := range c.shards[i] {
			n += len(k) + 8
		}
	}
	return n
}

// Top returns the n highest-count keys, ties broken lexicographically.
func (c *ShardedCounter) Top(n int) []string {
	counts := c.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// Counter is a reduction object counting occurrences by string key
// (keyed aggregation; the generalized-reduction equivalent of a
// word-count combiner).
type Counter struct {
	Counts map[string]int64
}

// NewCounter allocates an empty counter.
func NewCounter() *Counter { return &Counter{Counts: make(map[string]int64)} }

// Inc adds delta to key's count.
func (c *Counter) Inc(key string, delta int64) { c.Counts[key] += delta }

// Merge folds other's counts into c.
func (c *Counter) Merge(other *Counter) error {
	for k, v := range other.Counts {
		c.Counts[k] += v
	}
	return nil
}

// Encode gob-encodes the map.
func (c *Counter) Encode(w io.Writer) error { return gob.NewEncoder(w).Encode(c.Counts) }

// Decode restores the map.
func (c *Counter) Decode(r io.Reader) error {
	c.Counts = make(map[string]int64)
	return gob.NewDecoder(r).Decode(&c.Counts)
}

// Bytes estimates the counter's size.
func (c *Counter) Bytes() int {
	n := 0
	for k := range c.Counts {
		n += len(k) + 8
	}
	return n
}

// Top returns the n highest-count keys, ties broken lexicographically,
// for rendering results.
func (c *Counter) Top(n int) []string {
	keys := make([]string, 0, len(c.Counts))
	for k := range c.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c.Counts[keys[i]] != c.Counts[keys[j]] {
			return c.Counts[keys[i]] > c.Counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// Scored is one element of a TopK set.
type Scored struct {
	ID    int64
	Score float64
}

// TopK keeps the k lowest-score elements seen (e.g. the k nearest
// neighbors by distance). It is a bounded max-heap: the worst element
// sits at the root and is evicted first.
type TopK struct {
	K    int
	Heap []Scored // max-heap by Score
}

// NewTopK allocates a selector of capacity k.
func NewTopK(k int) *TopK { return &TopK{K: k, Heap: make([]Scored, 0, k)} }

// Consider offers an element; it is kept iff it beats the current
// worst (or the set is not yet full).
func (t *TopK) Consider(e Scored) {
	if t.K <= 0 {
		return
	}
	if len(t.Heap) < t.K {
		t.Heap = append(t.Heap, e)
		t.siftUp(len(t.Heap) - 1)
		return
	}
	if e.Score >= t.Heap[0].Score {
		return
	}
	t.Heap[0] = e
	t.siftDown(0)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.Heap[parent].Score >= t.Heap[i].Score {
			return
		}
		t.Heap[parent], t.Heap[i] = t.Heap[i], t.Heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.Heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.Heap[l].Score > t.Heap[largest].Score {
			largest = l
		}
		if r < n && t.Heap[r].Score > t.Heap[largest].Score {
			largest = r
		}
		if largest == i {
			return
		}
		t.Heap[i], t.Heap[largest] = t.Heap[largest], t.Heap[i]
		i = largest
	}
}

// Merge folds other's elements into t.
func (t *TopK) Merge(other *TopK) error {
	for _, e := range other.Heap {
		t.Consider(e)
	}
	return nil
}

// Sorted returns the kept elements ordered best (lowest score) first.
func (t *TopK) Sorted() []Scored {
	out := append([]Scored(nil), t.Heap...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Worst returns the current eviction-boundary score, or +Inf semantics
// via ok=false when not yet full.
func (t *TopK) Worst() (float64, bool) {
	if len(t.Heap) < t.K || len(t.Heap) == 0 {
		return 0, false
	}
	return t.Heap[0].Score, true
}

// Encode writes k and the elements.
func (t *TopK) Encode(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, int64(t.K)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(t.Heap))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, t.Heap)
}

// Decode restores the selector.
func (t *TopK) Decode(r io.Reader) error {
	var k, n int64
	if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if k < 0 || n < 0 || n > k || k > 1<<30 {
		return fmt.Errorf("gr: bad TopK header k=%d n=%d", k, n)
	}
	t.K = int(k)
	t.Heap = make([]Scored, n)
	return binary.Read(r, binary.LittleEndian, t.Heap)
}

// Bytes estimates the selector's size.
func (t *TopK) Bytes() int { return 16 * len(t.Heap) }

// Concat collects byte records in arbitrary order (the paper's
// concatenation combiner).
type Concat struct {
	Items [][]byte
}

// Append adds one record (the slice is copied).
func (c *Concat) Append(rec []byte) {
	c.Items = append(c.Items, append([]byte(nil), rec...))
}

// Merge folds other's items into c.
func (c *Concat) Merge(other *Concat) error {
	c.Items = append(c.Items, other.Items...)
	return nil
}

// Encode gob-encodes the items.
func (c *Concat) Encode(w io.Writer) error { return gob.NewEncoder(w).Encode(c.Items) }

// Decode restores the items.
func (c *Concat) Decode(r io.Reader) error {
	c.Items = nil
	return gob.NewDecoder(r).Decode(&c.Items)
}

// Bytes estimates the collection's size.
func (c *Concat) Bytes() int {
	n := 0
	for _, it := range c.Items {
		n += len(it)
	}
	return n
}
