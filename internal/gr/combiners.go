package gr

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// This file provides the "common combination functions already
// implemented in the generalized reduction system library (such as
// aggregation, concatenation, etc.)" the paper's API section
// describes. Applications embed or compose these instead of writing
// Merge/Encode/Decode by hand.

// VectorSum is a reduction object that sums fixed-length float64
// vectors element-wise (aggregation).
type VectorSum struct {
	V []float64
}

// NewVectorSum allocates an n-element accumulator.
func NewVectorSum(n int) *VectorSum { return &VectorSum{V: make([]float64, n)} }

// Add folds one vector into the accumulator.
func (s *VectorSum) Add(v []float64) error {
	if len(v) != len(s.V) {
		return fmt.Errorf("gr: vector length %d != %d", len(v), len(s.V))
	}
	for i, x := range v {
		s.V[i] += x
	}
	return nil
}

// Merge implements the global-reduction fold for VectorSum.
func (s *VectorSum) Merge(other *VectorSum) error { return s.Add(other.V) }

// Encode writes the vector in little-endian binary.
func (s *VectorSum) Encode(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(s.V))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s.V)
}

// Decode restores the vector.
func (s *VectorSum) Decode(r io.Reader) error {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n < 0 || n > 1<<30 {
		return fmt.Errorf("gr: bad vector length %d", n)
	}
	s.V = make([]float64, n)
	return binary.Read(r, binary.LittleEndian, s.V)
}

// Bytes reports the accumulator's approximate size.
func (s *VectorSum) Bytes() int { return 8 * len(s.V) }

// Counter is a reduction object counting occurrences by string key
// (keyed aggregation; the generalized-reduction equivalent of a
// word-count combiner).
type Counter struct {
	Counts map[string]int64
}

// NewCounter allocates an empty counter.
func NewCounter() *Counter { return &Counter{Counts: make(map[string]int64)} }

// Inc adds delta to key's count.
func (c *Counter) Inc(key string, delta int64) { c.Counts[key] += delta }

// Merge folds other's counts into c.
func (c *Counter) Merge(other *Counter) error {
	for k, v := range other.Counts {
		c.Counts[k] += v
	}
	return nil
}

// Encode gob-encodes the map.
func (c *Counter) Encode(w io.Writer) error { return gob.NewEncoder(w).Encode(c.Counts) }

// Decode restores the map.
func (c *Counter) Decode(r io.Reader) error {
	c.Counts = make(map[string]int64)
	return gob.NewDecoder(r).Decode(&c.Counts)
}

// Bytes estimates the counter's size.
func (c *Counter) Bytes() int {
	n := 0
	for k := range c.Counts {
		n += len(k) + 8
	}
	return n
}

// Top returns the n highest-count keys, ties broken lexicographically,
// for rendering results.
func (c *Counter) Top(n int) []string {
	keys := make([]string, 0, len(c.Counts))
	for k := range c.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c.Counts[keys[i]] != c.Counts[keys[j]] {
			return c.Counts[keys[i]] > c.Counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// Scored is one element of a TopK set.
type Scored struct {
	ID    int64
	Score float64
}

// TopK keeps the k lowest-score elements seen (e.g. the k nearest
// neighbors by distance). It is a bounded max-heap: the worst element
// sits at the root and is evicted first.
type TopK struct {
	K    int
	Heap []Scored // max-heap by Score
}

// NewTopK allocates a selector of capacity k.
func NewTopK(k int) *TopK { return &TopK{K: k, Heap: make([]Scored, 0, k)} }

// Consider offers an element; it is kept iff it beats the current
// worst (or the set is not yet full).
func (t *TopK) Consider(e Scored) {
	if t.K <= 0 {
		return
	}
	if len(t.Heap) < t.K {
		t.Heap = append(t.Heap, e)
		t.siftUp(len(t.Heap) - 1)
		return
	}
	if e.Score >= t.Heap[0].Score {
		return
	}
	t.Heap[0] = e
	t.siftDown(0)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.Heap[parent].Score >= t.Heap[i].Score {
			return
		}
		t.Heap[parent], t.Heap[i] = t.Heap[i], t.Heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.Heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.Heap[l].Score > t.Heap[largest].Score {
			largest = l
		}
		if r < n && t.Heap[r].Score > t.Heap[largest].Score {
			largest = r
		}
		if largest == i {
			return
		}
		t.Heap[i], t.Heap[largest] = t.Heap[largest], t.Heap[i]
		i = largest
	}
}

// Merge folds other's elements into t.
func (t *TopK) Merge(other *TopK) error {
	for _, e := range other.Heap {
		t.Consider(e)
	}
	return nil
}

// Sorted returns the kept elements ordered best (lowest score) first.
func (t *TopK) Sorted() []Scored {
	out := append([]Scored(nil), t.Heap...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Worst returns the current eviction-boundary score, or +Inf semantics
// via ok=false when not yet full.
func (t *TopK) Worst() (float64, bool) {
	if len(t.Heap) < t.K || len(t.Heap) == 0 {
		return 0, false
	}
	return t.Heap[0].Score, true
}

// Encode writes k and the elements.
func (t *TopK) Encode(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, int64(t.K)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(t.Heap))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, t.Heap)
}

// Decode restores the selector.
func (t *TopK) Decode(r io.Reader) error {
	var k, n int64
	if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if k < 0 || n < 0 || n > k || k > 1<<30 {
		return fmt.Errorf("gr: bad TopK header k=%d n=%d", k, n)
	}
	t.K = int(k)
	t.Heap = make([]Scored, n)
	return binary.Read(r, binary.LittleEndian, t.Heap)
}

// Bytes estimates the selector's size.
func (t *TopK) Bytes() int { return 16 * len(t.Heap) }

// Concat collects byte records in arbitrary order (the paper's
// concatenation combiner).
type Concat struct {
	Items [][]byte
}

// Append adds one record (the slice is copied).
func (c *Concat) Append(rec []byte) {
	c.Items = append(c.Items, append([]byte(nil), rec...))
}

// Merge folds other's items into c.
func (c *Concat) Merge(other *Concat) error {
	c.Items = append(c.Items, other.Items...)
	return nil
}

// Encode gob-encodes the items.
func (c *Concat) Encode(w io.Writer) error { return gob.NewEncoder(w).Encode(c.Items) }

// Decode restores the items.
func (c *Concat) Decode(r io.Reader) error {
	c.Items = nil
	return gob.NewDecoder(r).Decode(&c.Items)
}

// Bytes estimates the collection's size.
func (c *Concat) Bytes() int {
	n := 0
	for _, it := range c.Items {
		n += len(it)
	}
	return n
}
