package gr

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

// sumApp is a minimal test App: records are uint32 values, the
// reduction object is their sum and count.
type sumApp struct{ cost time.Duration }

func (sumApp) Name() string              { return "sum" }
func (sumApp) RecordSize() int           { return 4 }
func (a sumApp) UnitCost() time.Duration { return a.cost }
func (sumApp) NewReduction() Reduction   { return &sumRed{} }

type sumRed struct {
	Sum   uint64
	Count uint64
}

func (s *sumRed) Update(unit []byte) error {
	s.Sum += uint64(binary.LittleEndian.Uint32(unit))
	s.Count++
	return nil
}

func (s *sumRed) Merge(other Reduction) error {
	o, ok := other.(*sumRed)
	if !ok {
		return fmt.Errorf("bad type %T", other)
	}
	s.Sum += o.Sum
	s.Count += o.Count
	return nil
}

func (s *sumRed) Encode(w io.Writer) error { return binary.Write(w, binary.LittleEndian, s) }
func (s *sumRed) Decode(r io.Reader) error { return binary.Read(r, binary.LittleEndian, s) }
func (s *sumRed) Bytes() int               { return 16 }

func sumData(n int, seed int64) ([]byte, uint64) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 4*n)
	var want uint64
	for i := 0; i < n; i++ {
		v := rng.Uint32() % 1000
		binary.LittleEndian.PutUint32(data[4*i:], v)
		want += uint64(v)
	}
	return data, want
}

func TestProcessChunkCorrectSum(t *testing.T) {
	data, want := sumData(10_000, 1)
	e := NewEngine(sumApp{}, EngineOptions{GroupUnits: 512})
	red := &sumRed{}
	units, err := e.ProcessChunk(red, data)
	if err != nil {
		t.Fatal(err)
	}
	if units != 10_000 {
		t.Fatalf("units = %d", units)
	}
	if red.Sum != want || red.Count != 10_000 {
		t.Fatalf("sum=%d count=%d want sum=%d", red.Sum, red.Count, want)
	}
}

func TestProcessChunkGroupSizeInvariance(t *testing.T) {
	data, want := sumData(7777, 2)
	for _, group := range []int{1, 7, 100, 4096, 1_000_000} {
		e := NewEngine(sumApp{}, EngineOptions{GroupUnits: group})
		red := &sumRed{}
		if _, err := e.ProcessChunk(red, data); err != nil {
			t.Fatal(err)
		}
		if red.Sum != want {
			t.Fatalf("group %d: sum %d != %d", group, red.Sum, want)
		}
	}
}

func TestProcessChunkRejectsMisaligned(t *testing.T) {
	e := NewEngine(sumApp{}, EngineOptions{})
	if _, err := e.ProcessChunk(&sumRed{}, make([]byte, 10)); err == nil {
		t.Fatal("misaligned chunk accepted")
	}
}

func TestProcessChunkEmpty(t *testing.T) {
	e := NewEngine(sumApp{}, EngineOptions{})
	units, err := e.ProcessChunk(&sumRed{}, nil)
	if err != nil || units != 0 {
		t.Fatalf("empty chunk = %d, %v", units, err)
	}
}

func TestProcessChunkRecordsProcessingTime(t *testing.T) {
	var stats metrics.Breakdown
	e := NewEngine(sumApp{cost: time.Millisecond}, EngineOptions{
		GroupUnits: 100,
		Clock:      netsim.Instant(),
		Stats:      &stats,
	})
	data, _ := sumData(500, 3)
	if _, err := e.ProcessChunk(&sumRed{}, data); err != nil {
		t.Fatal(err)
	}
	// 500 units at 1ms modeled cost = 500ms charged.
	if got := stats.Snapshot().Processing; got != 500*time.Millisecond {
		t.Fatalf("processing charged %v, want 500ms", got)
	}
}

func TestProcessChunkPacedWallTime(t *testing.T) {
	e := NewEngine(sumApp{cost: time.Millisecond}, EngineOptions{
		GroupUnits: 1000,
		Clock:      netsim.Scaled(0.001), // 1000 emulated ms -> 1ms wall
	})
	data, _ := sumData(5000, 4)
	start := time.Now()
	if _, err := e.ProcessChunk(&sumRed{}, data); err != nil {
		t.Fatal(err)
	}
	// 5000 units * 1ms = 5s emulated = 5ms wall minimum.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("pacing not applied: %v", elapsed)
	}
}

func TestMergeAllEqualsSequential(t *testing.T) {
	app := sumApp{}
	var objs []Reduction
	var want uint64
	for i := 0; i < 5; i++ {
		data, sum := sumData(1000, int64(i))
		e := NewEngine(app, EngineOptions{})
		red := app.NewReduction()
		if _, err := e.ProcessChunk(red, data); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, red)
		want += sum
	}
	final, err := MergeAll(app, objs)
	if err != nil {
		t.Fatal(err)
	}
	if got := final.(*sumRed).Sum; got != want {
		t.Fatalf("global reduction sum = %d, want %d", got, want)
	}
}

func TestMergeAllSkipsNil(t *testing.T) {
	app := sumApp{}
	final, err := MergeAll(app, []Reduction{nil, &sumRed{Sum: 5, Count: 1}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if final.(*sumRed).Sum != 5 {
		t.Fatal("nil entries mishandled")
	}
}

func TestEncodeDecodeReduction(t *testing.T) {
	app := sumApp{}
	red := &sumRed{Sum: 12345, Count: 99}
	data, err := EncodeReduction(red)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReduction(app, data)
	if err != nil {
		t.Fatal(err)
	}
	if *got.(*sumRed) != *red {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	s := &sumRed{}
	if err := s.Merge(NewCounterReduction()); err == nil {
		t.Fatal("cross-type merge should error")
	}
}

// NewCounterReduction adapts Counter for the mismatch test.
func NewCounterReduction() Reduction { return &counterRed{NewCounter()} }

type counterRed struct{ *Counter }

func (c *counterRed) Update(unit []byte) error { c.Inc(string(unit), 1); return nil }
func (c *counterRed) Merge(other Reduction) error {
	o, ok := other.(*counterRed)
	if !ok {
		return fmt.Errorf("bad type %T", other)
	}
	return c.Counter.Merge(o.Counter)
}

// Order-independence property (the API contract): processing the same
// units in shuffled chunk order yields the same final object.
func TestOrderIndependenceProperty(t *testing.T) {
	app := sumApp{}
	data, want := sumData(4000, 9)
	chunks := make([][]byte, 8)
	for i := range chunks {
		chunks[i] = data[i*2000 : (i+1)*2000]
	}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		order := rng.Perm(len(chunks))
		red := app.NewReduction()
		e := NewEngine(app, EngineOptions{GroupUnits: 64})
		for _, i := range order {
			if _, err := e.ProcessChunk(red, chunks[i]); err != nil {
				t.Fatal(err)
			}
		}
		if red.(*sumRed).Sum != want {
			t.Fatalf("trial %d: order-dependent result", trial)
		}
	}
}

func TestRegistry(t *testing.T) {
	Register("test-sum", func(params map[string]string) (App, error) {
		return sumApp{}, nil
	})
	app, err := New("test-sum", nil)
	if err != nil || app.Name() != "sum" {
		t.Fatalf("New = %v, %v", app, err)
	}
	if _, err := New("nonexistent", nil); err == nil {
		t.Fatal("unknown app should error")
	}
	found := false
	for _, n := range Apps() {
		if n == "test-sum" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered app not listed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register("test-sum", func(map[string]string) (App, error) { return nil, nil })
}
