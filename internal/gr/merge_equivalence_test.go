package gr_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cloudburst/internal/bench" // registers every application
	"cloudburst/internal/gr"
	"cloudburst/internal/workload"
)

// mergeTestParams shrinks each registered application to test scale
// while keeping its merge path interesting: pagerank's page count
// clears two VectorSum shard units so MergeSharded actually
// shard-splits, and wordcount's ShardedCounter is shard-split at any
// size.
//
// The pagerank parameters also make its floating-point sums exactly
// associative, so digest equality across merge orders is a true
// invariant rather than a lucky one: with 2^15 pages, uniform
// out-degree 4, and damping 1, every edge contributes exactly 2^-17
// to its target element, and sums of dyadic rationals this small are
// exact in float64. (With arbitrary degrees the true element sums sit
// arbitrarily close to the digest's rounding boundaries, where
// single-ulp reorder noise can legitimately flip the last printed
// digit.) The other applications are exact as-is: wordcount counts
// integers, and knn/kmeans fold values derived from 24-bit-mantissa
// workload floats whose sums stay well inside float64 exactness.
var mergeTestParams = map[string]map[string]string{
	"pagerank":  {"pages": "32768", "mindeg": "4", "maxdeg": "4", "damping": "1"},
	"knn":       {"k": "16", "dims": "3"},
	"kmeans":    {"k": "8", "dims": "3"},
	"wordcount": {"width": "12"},
}

// buildEncodedObjects locally reduces total records split into n
// contiguous spans — one reduction object per span, as if n workers
// each processed a slice — and returns each object encoded, so every
// merge-strategy trial can decode its own fresh, mutation-safe copies.
func buildEncodedObjects(t *testing.T, app gr.App, gen workload.Generator, total int64, n int) [][]byte {
	t.Helper()
	rs := gen.RecordSize()
	if rs != app.RecordSize() {
		t.Fatalf("record size mismatch: generator %d, app %d", rs, app.RecordSize())
	}
	encoded := make([][]byte, 0, n)
	rec := make([]byte, rs)
	for w := 0; w < n; w++ {
		lo := total * int64(w) / int64(n)
		hi := total * int64(w+1) / int64(n)
		red := app.NewReduction()
		for i := lo; i < hi; i++ {
			gen.Gen(i, rec)
			if err := red.Update(rec); err != nil {
				t.Fatalf("update record %d: %v", i, err)
			}
		}
		enc, err := gr.EncodeReduction(red)
		if err != nil {
			t.Fatalf("encode object %d: %v", w, err)
		}
		encoded = append(encoded, enc)
	}
	return encoded
}

// decodeObjects materializes fresh reduction objects in the given
// order (indices into encoded).
func decodeObjects(t *testing.T, app gr.App, encoded [][]byte, order []int) []gr.Reduction {
	t.Helper()
	objs := make([]gr.Reduction, 0, len(order))
	for _, i := range order {
		o, err := gr.DecodeReduction(app, encoded[i])
		if err != nil {
			t.Fatalf("decode object %d: %v", i, err)
		}
		objs = append(objs, o)
	}
	return objs
}

func digestOf(t *testing.T, app gr.App, red gr.Reduction) string {
	t.Helper()
	s, ok := app.(gr.Summarizer)
	if !ok {
		t.Fatalf("app %s does not implement Summarizer", app.Name())
	}
	d, err := s.Summarize(red)
	if err != nil {
		t.Fatalf("summarize: %v", err)
	}
	return d
}

// TestMergeStrategiesRandomOrderEquivalence is the gr contract check
// behind the sync-mode ablation: for every registered application, the
// serial fold, the worker-pool pair-merge tree, and the shard-parallel
// fold must all produce the same result digest regardless of the order
// objects arrive in — merge strategy and arrival order are scheduling
// choices, never semantic ones.
func TestMergeStrategiesRandomOrderEquivalence(t *testing.T) {
	const (
		nObjects = 8
		nRecords = 8000
		trials   = 3
	)
	strategies := []struct {
		name  string
		merge func(app gr.App, objs []gr.Reduction) (gr.Reduction, error)
	}{
		{"serial", func(app gr.App, objs []gr.Reduction) (gr.Reduction, error) {
			return gr.MergeAll(app, objs)
		}},
		{"parallel", func(app gr.App, objs []gr.Reduction) (gr.Reduction, error) {
			return gr.MergeAllParallel(app, objs, 4)
		}},
		{"sharded", func(app gr.App, objs []gr.Reduction) (gr.Reduction, error) {
			return gr.MergeAllSharded(app, objs, 4)
		}},
	}

	for _, name := range gr.Apps() {
		t.Run(name, func(t *testing.T) {
			app, err := gr.New(name, mergeTestParams[name])
			if err != nil {
				t.Fatal(err)
			}
			gen, total, err := bench.GeneratorFor(app, nRecords)
			if err != nil {
				// Other test files register fixture apps in the shared
				// registry; only real applications have workloads.
				t.Skipf("no workload generator for %q: %v", name, err)
			}
			encoded := buildEncodedObjects(t, app, gen, total, nObjects)

			order := make([]int, nObjects)
			for i := range order {
				order[i] = i
			}
			base, err := gr.MergeAll(app, decodeObjects(t, app, encoded, order))
			if err != nil {
				t.Fatal(err)
			}
			want := digestOf(t, app, base)

			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				for _, s := range strategies {
					got, err := s.merge(app, decodeObjects(t, app, encoded, order))
					if err != nil {
						t.Fatalf("trial %d %s: %v", trial, s.name, err)
					}
					if d := digestOf(t, app, got); d != want {
						t.Fatalf("trial %d %s: digest %s, want %s (order %v)", trial, s.name, d, want, order)
					}
				}
			}
		})
	}
}

// TestMergerConcurrentAddEquivalence models the cluster receive path:
// one Add per connection-handler goroutine, all concurrent, under
// every merge mode. Digests must match the serial baseline, and the
// run must be race-clean (the serial/sharded modes fold into one
// shared accumulator behind the merger's fold mutex).
func TestMergerConcurrentAddEquivalence(t *testing.T) {
	const (
		nObjects = 12
		nRecords = 6000
	)
	for _, name := range gr.Apps() {
		t.Run(name, func(t *testing.T) {
			app, err := gr.New(name, mergeTestParams[name])
			if err != nil {
				t.Fatal(err)
			}
			gen, total, err := bench.GeneratorFor(app, nRecords)
			if err != nil {
				t.Skipf("no workload generator for %q: %v", name, err)
			}
			encoded := buildEncodedObjects(t, app, gen, total, nObjects)
			order := make([]int, nObjects)
			for i := range order {
				order[i] = i
			}
			base, err := gr.MergeAll(app, decodeObjects(t, app, encoded, order))
			if err != nil {
				t.Fatal(err)
			}
			want := digestOf(t, app, base)

			for _, mode := range []gr.MergeMode{gr.MergeSerial, gr.MergeParallel, gr.MergeSharded} {
				t.Run(fmt.Sprint(mode), func(t *testing.T) {
					m := gr.NewMerger(app, gr.MergerOptions{Mode: mode, Workers: 4})
					objs := decodeObjects(t, app, encoded, order)
					var wg sync.WaitGroup
					for _, o := range objs {
						wg.Add(1)
						go func(o gr.Reduction) {
							defer wg.Done()
							if err := m.Add(o); err != nil {
								t.Errorf("add: %v", err)
							}
						}(o)
					}
					wg.Wait()
					got, stats, err := m.Finish()
					if err != nil {
						t.Fatal(err)
					}
					if stats.Merges == 0 {
						t.Fatal("merger reported zero merges")
					}
					if d := digestOf(t, app, got); d != want {
						t.Fatalf("mode %v: digest %s, want %s", mode, d, want)
					}
				})
			}
		})
	}
}
