package gr

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds an App from string parameters (parsed from command
// lines or experiment configs). Unknown parameters should be rejected.
type Factory func(params map[string]string) (App, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register installs a factory under name. Registering a duplicate name
// panics: it is a programmer error wired at init time.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("gr: duplicate app registration %q", name))
	}
	registry[name] = f
}

// New instantiates a registered App.
func New(name string, params map[string]string) (App, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("gr: unknown app %q (have %v)", name, Apps())
	}
	return f(params)
}

// Apps lists registered application names, sorted.
func Apps() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
