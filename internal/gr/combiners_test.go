package gr

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestVectorSum(t *testing.T) {
	s := NewVectorSum(3)
	if err := s.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.V, []float64{11, 22, 33}) {
		t.Fatalf("V = %v", s.V)
	}
	if err := s.Add([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	o := NewVectorSum(3)
	o.Add([]float64{1, 1, 1})
	if err := s.Merge(o); err != nil {
		t.Fatal(err)
	}
	if s.V[0] != 12 {
		t.Fatalf("merged V = %v", s.V)
	}
	if s.Bytes() != 24 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

func TestVectorSumCodec(t *testing.T) {
	s := NewVectorSum(5)
	s.Add([]float64{1.5, -2, 3e10, 0, 42})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got := &VectorSum{}
	if err := got.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.V, s.V) {
		t.Fatalf("codec mismatch: %v", got.V)
	}
	if err := got.Decode(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated decode accepted")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a", 1)
	c.Inc("b", 2)
	c.Inc("a", 3)
	o := NewCounter()
	o.Inc("a", 10)
	o.Inc("c", 1)
	if err := c.Merge(o); err != nil {
		t.Fatal(err)
	}
	if c.Counts["a"] != 14 || c.Counts["b"] != 2 || c.Counts["c"] != 1 {
		t.Fatalf("counts = %v", c.Counts)
	}
	top := c.Top(2)
	if len(top) != 2 || top[0] != "a" || top[1] != "b" {
		t.Fatalf("top = %v", top)
	}
	if c.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestCounterCodec(t *testing.T) {
	c := NewCounter()
	c.Inc("hello", 7)
	c.Inc("world", 3)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got := NewCounter()
	if err := got.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counts, c.Counts) {
		t.Fatalf("codec mismatch: %v", got.Counts)
	}
}

func TestTopKKeepsLowestScores(t *testing.T) {
	tk := NewTopK(3)
	for i, s := range []float64{5, 1, 9, 3, 7, 2} {
		tk.Consider(Scored{ID: int64(i), Score: s})
	}
	got := tk.Sorted()
	if len(got) != 3 {
		t.Fatalf("kept %d", len(got))
	}
	if got[0].Score != 1 || got[1].Score != 2 || got[2].Score != 3 {
		t.Fatalf("sorted = %v", got)
	}
	if w, ok := tk.Worst(); !ok || w != 3 {
		t.Fatalf("worst = %v, %v", w, ok)
	}
}

func TestTopKMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b, all := NewTopK(10), NewTopK(10), NewTopK(10)
	for i := 0; i < 200; i++ {
		e := Scored{ID: int64(i), Score: rng.Float64()}
		all.Consider(e)
		if i%2 == 0 {
			a.Consider(e)
		} else {
			b.Consider(e)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sorted(), all.Sorted()) {
		t.Fatal("merge != union")
	}
}

func TestTopKCodec(t *testing.T) {
	tk := NewTopK(4)
	for i := 0; i < 10; i++ {
		tk.Consider(Scored{ID: int64(i), Score: float64(10 - i)})
	}
	var buf bytes.Buffer
	if err := tk.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got := &TopK{}
	if err := got.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sorted(), tk.Sorted()) {
		t.Fatal("codec mismatch")
	}
	if got.Bytes() != 16*4 {
		t.Fatalf("Bytes = %d", got.Bytes())
	}
}

func TestTopKZeroCapacity(t *testing.T) {
	tk := NewTopK(0)
	tk.Consider(Scored{ID: 1, Score: 1})
	if len(tk.Heap) != 0 {
		t.Fatal("zero-capacity TopK kept an element")
	}
}

// Property: TopK(k) over any input equals sorting and truncating.
func TestTopKProperty(t *testing.T) {
	f := func(scores []float64, k uint8) bool {
		kk := int(k%20) + 1
		tk := NewTopK(kk)
		for i, s := range scores {
			tk.Consider(Scored{ID: int64(i), Score: s})
		}
		want := make([]Scored, 0, len(scores))
		for i, s := range scores {
			want = append(want, Scored{ID: int64(i), Score: s})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Score != want[j].Score {
				return want[i].Score < want[j].Score
			}
			return want[i].ID < want[j].ID
		})
		if len(want) > kk {
			want = want[:kk]
		}
		got := tk.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	var c Concat
	c.Append([]byte("one"))
	c.Append([]byte("two"))
	var o Concat
	o.Append([]byte("three"))
	if err := c.Merge(&o); err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 3 || string(c.Items[2]) != "three" {
		t.Fatalf("items = %q", c.Items)
	}
	if c.Bytes() != 11 {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var got Concat
	if err := got.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Items, c.Items) {
		t.Fatal("codec mismatch")
	}
}

func TestConcatAppendCopies(t *testing.T) {
	var c Concat
	buf := []byte("mutable")
	c.Append(buf)
	buf[0] = 'X'
	if string(c.Items[0]) != "mutable" {
		t.Fatal("Append aliased the caller's buffer")
	}
}
