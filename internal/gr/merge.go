package gr

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cloudburst/internal/netsim"
)

// ShardedReduction is an optional refinement of Reduction for objects
// whose state splits into independent shards (a rank vector's index
// ranges, a counter's hash partitions). Two reductions of the same
// shape merge shard-parallel with zero copies: MergeShard(i, other)
// folds only shard i of other into shard i of the receiver, and
// distinct shards may be merged concurrently.
type ShardedReduction interface {
	Reduction
	// Shards reports the shard count. Two reductions merge
	// shard-parallel only when their counts agree.
	Shards() int
	// MergeShard folds shard i of other into shard i of the receiver.
	// Calls with distinct i values must be safe to run concurrently;
	// other is only read.
	MergeShard(i int, other Reduction) error
}

// MergeMode selects how a Merger combines arriving reductions.
type MergeMode int

const (
	// MergeSerial folds each arrival into one accumulator on the
	// caller's goroutine (the classic MergeAll order, incremental).
	MergeSerial MergeMode = iota
	// MergeParallel runs availability-driven pair merges on a worker
	// pool: any two ready objects merge as soon as a worker frees,
	// forming a binary tree whose shape follows arrival order.
	MergeParallel
	// MergeSharded serializes arrivals but parallelizes each merge
	// across the reduction's shards (ShardedReduction); non-shardable
	// objects fall back to a whole-object merge.
	MergeSharded
)

func (m MergeMode) String() string {
	switch m {
	case MergeSerial:
		return "serial"
	case MergeParallel:
		return "parallel"
	case MergeSharded:
		return "sharded"
	}
	return fmt.Sprintf("MergeMode(%d)", int(m))
}

// MergerStats describes the work a Merger performed. Busy sums the
// wall-clock spans of every merge operation — under parallel modes the
// spans overlap, so Busy exceeding the Finish tail is exactly the
// merge time hidden behind transfer.
type MergerStats struct {
	// Merges is the number of merge operations performed (pair merges,
	// or whole arrivals under serial/sharded modes).
	Merges int
	// Busy is the summed wall-clock span of all merge operations.
	Busy time.Duration
	// MaxParallel is the peak number of concurrently running merge
	// workers (1 under serial mode).
	MaxParallel int
}

// Merger combines reduction objects incrementally, so merging overlaps
// with whatever produces the objects (typically network transfer of
// the remaining peers' results). Add hands over ownership of the
// object; Finish waits out in-flight work and returns the combined
// result. A Merger is safe for concurrent Add calls.
type Merger struct {
	app     App
	mode    MergeMode
	workers int
	clock   netsim.Clock
	cost    time.Duration // emulated cost per folded byte

	mu      sync.Mutex
	cond    *sync.Cond
	ready   []Reduction // objects awaiting a merge partner
	running int         // pair-merge workers currently busy
	acc     Reduction   // serial/sharded accumulator
	stats   MergerStats
	err     error

	// serial serializes accumulator merges under serial/sharded modes:
	// Adds may arrive from concurrent connection handlers, but those
	// modes fold into one shared accumulator, so the folds must queue.
	serial sync.Mutex
}

// MergerOptions configures a Merger. The zero value is a serial
// merger on an instant clock.
type MergerOptions struct {
	// Mode selects the merge strategy.
	Mode MergeMode
	// Workers bounds the merge worker pool for MergeParallel and the
	// shard fan-out for MergeSharded; <=0 picks GOMAXPROCS.
	Workers int
	// Clock times merge spans (wall side); nil picks netsim.Instant.
	Clock netsim.Clock
	// CostPerByte charges each merge an emulated duration per byte of
	// the folded-in object, paced through Clock. The benchmark harness
	// scales data (and thus reduction objects) ~10,000x below the
	// paper's sizes, which silently erases the very real CPU cost of
	// folding a paper-scale (~300 MB) object; this knob restores it the
	// same way the engine's per-unit cost restores map-phase compute.
	// Sharded merges divide the charge across their shard parallelism.
	// Zero charges nothing (merges cost only their real CPU).
	CostPerByte time.Duration
}

// NewMerger builds a merger for app's reductions.
func NewMerger(app App, opts MergerOptions) *Merger {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Clock == nil {
		opts.Clock = netsim.Instant()
	}
	m := &Merger{app: app, mode: opts.Mode, workers: opts.Workers,
		clock: opts.Clock, cost: opts.CostPerByte}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// pace charges the emulated cost of folding other, divided by par (the
// fold's internal parallelism; 1 for whole-object merges).
func (m *Merger) pace(other Reduction, par int) {
	if m.cost <= 0 {
		return
	}
	if par < 1 {
		par = 1
	}
	m.clock.Sleep(time.Duration(other.Bytes()) * m.cost / time.Duration(par))
}

// Add submits one reduction object. Ownership transfers to the
// merger; the object must not be touched afterwards. Nil objects are
// skipped (mirroring MergeAll). A latched merge error is returned
// early so callers can stop feeding a dead merger.
func (m *Merger) Add(red Reduction) error {
	if red == nil {
		return nil
	}
	switch m.mode {
	case MergeParallel:
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.err != nil {
			return m.err
		}
		m.ready = append(m.ready, red)
		m.kick()
		return nil
	case MergeSharded:
		return m.addSharded(red)
	default:
		return m.addSerial(red)
	}
}

// addSerial folds red into the accumulator on the caller's goroutine.
func (m *Merger) addSerial(red Reduction) error {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return m.err
	}
	if m.acc == nil {
		m.acc = m.app.NewReduction()
	}
	acc := m.acc
	if m.stats.MaxParallel < 1 {
		m.stats.MaxParallel = 1
	}
	m.mu.Unlock()

	// The accumulator merge runs outside the state lock so stats reads
	// never block behind a long fold, but concurrent Adds (one per
	// connection handler) must still queue on the shared accumulator.
	m.serial.Lock()
	t0 := m.clock.Now()
	err := acc.Merge(red)
	if err == nil {
		m.pace(red, 1)
	}
	span := m.clock.Now().Sub(t0)
	m.serial.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Merges++
	m.stats.Busy += span
	if err != nil && m.err == nil {
		m.err = fmt.Errorf("gr: merge: %w", err)
	}
	return m.err
}

// addSharded folds red into the accumulator, parallelizing across the
// object's shards when both sides are shardable with matching counts.
func (m *Merger) addSharded(red Reduction) error {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return m.err
	}
	if m.acc == nil {
		m.acc = m.app.NewReduction()
	}
	acc := m.acc
	m.mu.Unlock()

	sa, okA := acc.(ShardedReduction)
	sr, okR := red.(ShardedReduction)
	m.serial.Lock()
	t0 := m.clock.Now()
	var err error
	par := 1
	if okA && okR && sa.Shards() == sr.Shards() && sa.Shards() > 1 {
		err = mergeShards(sa, red, m.workers)
		if par = sa.Shards(); par > m.workers {
			par = m.workers
		}
	} else {
		err = acc.Merge(red)
	}
	if err == nil {
		m.pace(red, par)
	}
	span := m.clock.Now().Sub(t0)
	m.serial.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Merges++
	m.stats.Busy += span
	if par > m.stats.MaxParallel {
		m.stats.MaxParallel = par
	}
	if err != nil && m.err == nil {
		m.err = fmt.Errorf("gr: merge: %w", err)
	}
	return m.err
}

// mergeShards fans MergeShard calls for every shard of other into dst
// across at most workers goroutines.
func mergeShards(dst ShardedReduction, other Reduction, workers int) error {
	shards := dst.Shards()
	if workers > shards {
		workers = shards
	}
	var (
		next int64
		mu   sync.Mutex
		wg   sync.WaitGroup
		errs error
	)
	next = -1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				next++
				i := next
				mu.Unlock()
				if i >= int64(shards) {
					return
				}
				if err := dst.MergeShard(int(i), other); err != nil {
					mu.Lock()
					if errs == nil {
						errs = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return errs
}

// kick (parallel mode, caller holds mu) starts pair merges while two
// objects are ready and a worker slot is free.
func (m *Merger) kick() {
	for m.err == nil && len(m.ready) >= 2 && m.running < m.workers {
		a := m.ready[len(m.ready)-1]
		b := m.ready[len(m.ready)-2]
		m.ready = m.ready[:len(m.ready)-2]
		m.running++
		if m.running > m.stats.MaxParallel {
			m.stats.MaxParallel = m.running
		}
		go m.pair(a, b)
	}
}

// pair merges b into a off-lock, then returns a to the ready list.
func (m *Merger) pair(a, b Reduction) {
	t0 := m.clock.Now()
	err := a.Merge(b)
	if err == nil {
		m.pace(b, 1)
	}
	span := m.clock.Now().Sub(t0)

	m.mu.Lock()
	m.running--
	m.stats.Merges++
	m.stats.Busy += span
	if err != nil && m.err == nil {
		m.err = fmt.Errorf("gr: merge: %w", err)
	}
	if m.err == nil {
		m.ready = append(m.ready, a)
		m.kick()
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Finish waits for in-flight merges, folds any remainder, and returns
// the combined object with the merger's stats. With no Adds the
// result is a fresh (identity) reduction. The merger must not be
// reused afterwards.
func (m *Merger) Finish() (Reduction, MergerStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.running > 0 {
		m.cond.Wait()
	}
	if m.err != nil {
		return nil, m.stats, m.err
	}
	switch m.mode {
	case MergeParallel:
		// At most one object can remain once workers drain, unless the
		// pool was 1-wide and arrivals raced Finish; fold what's left.
		for len(m.ready) >= 2 {
			a := m.ready[len(m.ready)-1]
			b := m.ready[len(m.ready)-2]
			m.ready = m.ready[:len(m.ready)-2]
			t0 := m.clock.Now()
			if err := a.Merge(b); err != nil {
				m.err = fmt.Errorf("gr: merge: %w", err)
				return nil, m.stats, m.err
			}
			m.pace(b, 1)
			m.stats.Busy += m.clock.Now().Sub(t0)
			m.stats.Merges++
			m.ready = append(m.ready, a)
		}
		if len(m.ready) == 1 {
			return m.ready[0], m.stats, nil
		}
		return m.app.NewReduction(), m.stats, nil
	default:
		if m.acc == nil {
			m.acc = m.app.NewReduction()
		}
		return m.acc, m.stats, nil
	}
}

// Stats returns the merger's work tallies so far.
func (m *Merger) Stats() MergerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// MergeAllParallel merges objs with a worker-pool binary tree: any two
// available objects merge as soon as a worker frees, so the tree shape
// adapts to per-merge cost instead of a fixed bracket. The result is
// content-equal to MergeAll for any order-independent Reduction (the
// gr contract). workers <= 0 picks GOMAXPROCS.
func MergeAllParallel(app App, objs []Reduction, workers int) (Reduction, error) {
	m := NewMerger(app, MergerOptions{Mode: MergeParallel, Workers: workers})
	for _, o := range objs {
		if err := m.Add(o); err != nil {
			return nil, fmt.Errorf("gr: global reduction: %w", err)
		}
	}
	red, _, err := m.Finish()
	if err != nil {
		return nil, fmt.Errorf("gr: global reduction: %w", err)
	}
	return red, nil
}

// MergeAllSharded merges objs serially at the object level but
// shard-parallel within each merge (ShardedReduction); objects without
// shards fall back to whole-object merges. workers <= 0 picks
// GOMAXPROCS.
func MergeAllSharded(app App, objs []Reduction, workers int) (Reduction, error) {
	m := NewMerger(app, MergerOptions{Mode: MergeSharded, Workers: workers})
	for _, o := range objs {
		if err := m.Add(o); err != nil {
			return nil, fmt.Errorf("gr: global reduction: %w", err)
		}
	}
	red, _, err := m.Finish()
	if err != nil {
		return nil, fmt.Errorf("gr: global reduction: %w", err)
	}
	return red, nil
}
