// Package gr implements the paper's core contribution: the
// generalized reduction API (Section III-A), a FREERIDE-style
// alternative to Map-Reduce that folds map, combine, and reduce into a
// single in-place update of a reduction object.
//
// An application supplies a Reduction (the reduction object plus its
// local-reduction update and global-reduction merge) and a record
// size. The engine processes each chunk's data units in cache-sized
// groups, calling Update (the paper's proc(e)) per unit; when all data
// is processed, reduction objects from every worker, node, and cluster
// are folded together with Merge in a global reduction.
//
// The API contract mirrors the paper: the result of local reduction
// must be independent of the order in which data units are processed
// on each processor, because the runtime chooses the order.
package gr

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"cloudburst/internal/metrics"
	"cloudburst/internal/netsim"
)

// Reduction is a reduction object: user-designed state updated in
// place by local reduction and folded by global reduction. A Reduction
// need not be safe for concurrent use; each worker owns a private copy
// (memory allocation is managed by the middleware).
type Reduction interface {
	// Update performs local reduction of one data unit ("proc(e)"):
	// process the element and fold it into the object immediately.
	Update(unit []byte) error
	// Merge performs global reduction, folding other (an object of
	// the same concrete type) into the receiver.
	Merge(other Reduction) error
	// Encode serializes the object for inter-cluster transfer.
	Encode(w io.Writer) error
	// Decode replaces the object's state from Encode's output.
	Decode(r io.Reader) error
	// Bytes estimates the object's in-memory size; the harness uses
	// it to report reduction-object transfer volumes (the paper's
	// pagerank object is ~300 MB and dominates sync time).
	Bytes() int
}

// App couples a data set's record format with its reduction and the
// compute intensity the pacer models.
type App interface {
	// Name identifies the application ("knn", "kmeans", ...).
	Name() string
	// RecordSize is the fixed byte length of one data unit.
	RecordSize() int
	// NewReduction allocates a fresh reduction object.
	NewReduction() Reduction
	// UnitCost is the emulated compute time one core spends per data
	// unit (how the paper's "low computation" knn vs. "heavy
	// computation" kmeans distinction is expressed).
	UnitCost() time.Duration
}

// Summarizer is implemented by applications that can render a final
// reduction object as a short human-readable result digest.
type Summarizer interface {
	Summarize(red Reduction) (string, error)
}

// Engine runs local reduction over chunk data. One Engine serves one
// worker (virtual core); it is not safe for concurrent use.
type Engine struct {
	app App
	// groupUnits is how many units are reduced per paced group — the
	// paper's cache-sized unit group.
	groupUnits int
	pacer      *netsim.Pacer
	stats      *metrics.Breakdown
}

// EngineOptions configure an Engine.
type EngineOptions struct {
	// GroupUnits is the units per processing group (cache sizing).
	// Values below 1 default to 4096.
	GroupUnits int
	// Clock paces compute; nil disables pacing.
	Clock netsim.Clock
	// Stats receives processing-time accounting; nil discards it.
	Stats *metrics.Breakdown
	// UnitCostScale multiplies the app's per-unit cost, modelling
	// cores slower or faster than the reference (e.g. EC2 compute
	// units vs. the local cluster's Xeons). Zero means 1.
	UnitCostScale float64
}

// NewEngine builds an engine for app.
func NewEngine(app App, opts EngineOptions) *Engine {
	if opts.GroupUnits < 1 {
		opts.GroupUnits = 4096
	}
	stats := opts.Stats
	if stats == nil {
		stats = &metrics.Breakdown{}
	}
	cost := app.UnitCost()
	if opts.UnitCostScale > 0 {
		cost = time.Duration(float64(cost) * opts.UnitCostScale)
	}
	return &Engine{
		app:        app,
		groupUnits: opts.GroupUnits,
		pacer:      netsim.NewPacer(opts.Clock, cost),
		stats:      stats,
	}
}

// App returns the engine's application.
func (e *Engine) App() App { return e.app }

// ProcessChunk locally reduces every data unit in data into red,
// working in cache-sized unit groups, and returns the number of units
// processed. data's length must be a multiple of the record size.
func (e *Engine) ProcessChunk(red Reduction, data []byte) (int, error) {
	rs := e.app.RecordSize()
	if rs <= 0 {
		return 0, fmt.Errorf("gr: app %s has non-positive record size", e.app.Name())
	}
	if len(data)%rs != 0 {
		return 0, fmt.Errorf("gr: chunk of %d bytes not a multiple of record size %d", len(data), rs)
	}
	units := len(data) / rs
	group := e.groupUnits * rs
	for off := 0; off < len(data); off += group {
		end := off + group
		if end > len(data) {
			end = len(data)
		}
		start := e.pacer.Begin()
		for u := off; u < end; u += rs {
			if err := red.Update(data[u : u+rs]); err != nil {
				return 0, fmt.Errorf("gr: local reduction: %w", err)
			}
		}
		e.stats.AddProcessing(e.pacer.End(start, (end-off)/rs))
	}
	return units, nil
}

// BufferSource provides recycled byte buffers for encoding. It is the
// same shape as wire.BufferSource, restated here so gr does not depend
// on the wire layer; *store.BufferPool satisfies both.
type BufferSource interface {
	Get(n int64) []byte
	Put(buf []byte)
}

// poolWriter is an io.Writer that accumulates into a pooled buffer,
// growing by doubling through the pool's size classes so the full
// object is encoded with at most O(log n) buffer swaps and zero
// garbage on the steady state.
type poolWriter struct {
	pool BufferSource
	buf  []byte
	n    int
}

func newPoolWriter(pool BufferSource, sizeHint int) *poolWriter {
	if sizeHint < 512 {
		sizeHint = 512
	}
	w := &poolWriter{pool: pool}
	if pool != nil {
		w.buf = pool.Get(int64(sizeHint))
	} else {
		w.buf = make([]byte, sizeHint)
	}
	return w
}

func (w *poolWriter) Write(p []byte) (int, error) {
	if need := w.n + len(p); need > len(w.buf) {
		size := len(w.buf) * 2
		for size < need {
			size *= 2
		}
		var grown []byte
		if w.pool != nil {
			grown = w.pool.Get(int64(size))
		} else {
			grown = make([]byte, size)
		}
		copy(grown, w.buf[:w.n])
		if w.pool != nil {
			w.pool.Put(w.buf)
		}
		w.buf = grown
	}
	copy(w.buf[w.n:], p)
	w.n += len(p)
	return len(p), nil
}

// EncodeReduction serializes red to bytes for transfer. The returned
// slice is freshly owned by the caller.
func EncodeReduction(red Reduction) ([]byte, error) {
	data, _, err := EncodeReductionTo(red, nil)
	return data, err
}

// EncodeReductionTo serializes red into a buffer drawn from pool
// (sized from red.Bytes(), grown by doubling when the estimate runs
// short). release hands the backing buffer to the pool; the caller
// must not touch data afterwards. A nil pool allocates and release is
// a no-op.
func EncodeReductionTo(red Reduction, pool BufferSource) (data []byte, release func(), err error) {
	w := newPoolWriter(pool, red.Bytes()+64)
	if err := red.Encode(w); err != nil {
		if pool != nil {
			pool.Put(w.buf)
		}
		return nil, nil, err
	}
	release = func() {}
	if pool != nil {
		buf := w.buf
		release = func() { pool.Put(buf) }
	}
	return w.buf[:w.n], release, nil
}

// DecodeReduction materializes a fresh reduction object for app from
// encoded bytes.
func DecodeReduction(app App, data []byte) (Reduction, error) {
	return DecodeReductionFrom(app, bytes.NewReader(data))
}

// DecodeReductionFrom materializes a fresh reduction object for app
// from an encoded stream — the receiving half of streamed object
// transfer, where r is bridged from arriving wire parts and decoding
// overlaps the transfer itself.
func DecodeReductionFrom(app App, r io.Reader) (Reduction, error) {
	red := app.NewReduction()
	if err := red.Decode(r); err != nil {
		return nil, err
	}
	return red, nil
}

// MergeAll folds every object in objs into a single fresh reduction
// object for app — the head node's global reduction.
func MergeAll(app App, objs []Reduction) (Reduction, error) {
	final := app.NewReduction()
	for _, o := range objs {
		if o == nil {
			continue
		}
		if err := final.Merge(o); err != nil {
			return nil, fmt.Errorf("gr: global reduction: %w", err)
		}
	}
	return final, nil
}
